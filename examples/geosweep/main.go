// Geosweep: at what distance do search results start to change? This
// example walks a great-circle path eastward from Cleveland in exponential
// steps (1 km → ~2000 km), querying a local term at every stop, and prints
// result difference as a function of distance — the continuous version of
// the paper's county/state/national comparison.
//
//	go run ./examples/geosweep
package main

import (
	"fmt"
	"log"
	"strings"

	"geoserp"

	"geoserp/internal/browser"
	"geoserp/internal/geo"
	"geoserp/internal/metrics"
)

func main() {
	study, err := geoserp.NewStudy(geoserp.DefaultStudyConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	origin := geoserp.Point{Lat: 41.4993, Lon: -81.6944} // Cleveland
	term := "Hospital"

	search := func(pt geoserp.Point) *geoserp.Page {
		b, err := browser.New(study.ServerURL(), browser.WithSourceIP("10.0.0.1"))
		if err != nil {
			log.Fatal(err)
		}
		b.OverrideGeolocation(pt)
		page, err := b.Search(term)
		if err != nil {
			log.Fatal(err)
		}
		return page
	}

	base := search(origin)
	fmt.Printf("Sweeping %q eastward from Cleveland:\n\n", term)
	fmt.Printf("%10s %10s %8s  %s\n", "distance", "jaccard", "edit", "difference")
	fmt.Println(strings.Repeat("-", 64))
	for _, km := range []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000} {
		pt := geo.Destination(origin, 90, km)
		page := search(pt)
		cmp := metrics.ComparePages(base, page)
		bars := strings.Repeat("#", cmp.EditDistance)
		fmt.Printf("%8.0fkm %10.2f %8d  %s\n", km, cmp.Jaccard, cmp.EditDistance, bars)
	}
	fmt.Println("\nDifferences grow with distance: small reorderings within a county,")
	fmt.Println("wholesale replacement of local results across states — Figure 5's")
	fmt.Println("county→state jump, continuously.")
}
