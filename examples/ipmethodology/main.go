// Ipmethodology: why the paper needed GPS spoofing. Prior measurement work
// ([11], Bobble) could only vary the client's IP address, and geolocation
// databases carry tens of kilometres of error — coarser than entire
// counties, let alone the 1-mile spacing of Cuyahoga's voting districts.
// This example registers one crawl IP per district, measures where the
// engine actually places each one, and contrasts the IP-based methodology
// with the paper's Geolocation-API spoofing.
//
//	go run ./examples/ipmethodology
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/metrics"
	"geoserp/internal/simclock"
)

func main() {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := engine.DefaultConfig()
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	eng := engine.New(cfg, clk)

	districts := geo.StudyDataset().At(geo.County)

	fmt.Println("IP-based vs GPS-based location resolution (county granularity):")
	fmt.Printf("%-24s %14s %14s\n", "district", "IP error (km)", "GPS error (km)")
	fmt.Println(strings.Repeat("-", 56))

	var ipPages, gpsPages [][]string
	for i, d := range districts {
		ip := fmt.Sprintf("10.50.%d.1", i)
		eng.RegisterIPLocation(ip, d.Point)

		// Prior-work methodology: IP only.
		rIP, err := eng.Search(engine.Request{Query: "School", ClientIP: ip})
		if err != nil {
			log.Fatal(err)
		}
		// The paper's methodology: spoofed Geolocation API.
		pt := d.Point
		rGPS, err := eng.Search(engine.Request{Query: "School", GPS: &pt, ClientIP: ip})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %14.1f %14.1f\n", d.Name,
			geo.DistanceKm(rIP.Location, d.Point),
			geo.DistanceKm(rGPS.Location, d.Point))
		ipPages = append(ipPages, rIP.Page.Links())
		gpsPages = append(gpsPages, rGPS.Page.Links())
	}

	// How much do adjacent districts' pages differ under each method?
	pairMean := func(pages [][]string) float64 {
		var sum float64
		var n int
		for i := range pages {
			for j := i + 1; j < len(pages); j++ {
				sum += float64(metrics.EditDistance(pages[i], pages[j]))
				n++
			}
		}
		return sum / float64(n)
	}
	fmt.Printf("\nmean pairwise edit distance across districts:\n")
	fmt.Printf("  IP-based:  %.2f  (reflects ~25 km database error, not the 1-mile truth)\n", pairMean(ipPages))
	fmt.Printf("  GPS-based: %.2f  (reflects the true district geometry)\n", pairMean(gpsPages))
	fmt.Println("\nWith district spacing of ~1 mile and database error of ~25 km, the")
	fmt.Println("IP methodology cannot place users at the study's vantage points at")
	fmt.Println("all — the reason the paper overrides the JavaScript Geolocation API.")
}
