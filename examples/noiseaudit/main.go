// Noiseaudit: measure how noisy a search engine's results are, using the
// paper's treatment/control design — two identical queries at the same
// instant from the same location. Useful before attributing ANY result
// difference to personalization.
//
//	go run ./examples/noiseaudit
package main

import (
	"fmt"
	"log"
	"sort"

	"geoserp"

	"geoserp/internal/queries"
)

func main() {
	study, err := geoserp.NewStudy(geoserp.DefaultStudyConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	corpus := geoserp.StudyCorpus()
	var terms []geoserp.Query
	terms = append(terms, corpus.Category(queries.Local)...) // all 33 local terms
	phases := []geoserp.Phase{{
		Name:          "noise-audit",
		Terms:         terms,
		Granularities: []geoserp.Granularity{geoserp.County},
		Days:          1,
	}}
	obs, err := study.RunPhases(phases)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := geoserp.NewDataset(obs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Noise audit: identical simultaneous queries, same location")
	fmt.Println("===========================================================")
	perTerm := ds.NoisePerTerm("local")
	sort.Slice(perTerm, func(i, j int) bool {
		return perTerm[i].EditByGranularity["county"] < perTerm[j].EditByGranularity["county"]
	})
	fmt.Printf("%-22s %12s %10s\n", "term", "avg edit", "jaccard")
	for _, ts := range perTerm {
		fmt.Printf("%-22s %12.2f %10.2f\n", ts.Term,
			ts.EditByGranularity["county"], ts.JaccardByGranularity["county"])
	}

	// Brand vs generic: the paper's observation that brand names are
	// quieter because they do not draw Maps cards.
	var brandSum, brandN, genericSum, genericN float64
	for _, ts := range perTerm {
		q, _ := corpus.ByTerm(ts.Term)
		if q.Brand {
			brandSum += ts.EditByGranularity["county"]
			brandN++
		} else {
			genericSum += ts.EditByGranularity["county"]
			genericN++
		}
	}
	fmt.Printf("\nbrand terms mean noise:   %.2f\n", brandSum/brandN)
	fmt.Printf("generic terms mean noise: %.2f\n", genericSum/genericN)
	fmt.Println("\nAny personalization claim must clear these noise floors first.")
}
