// Customworld: the paper's §5 future work — "our methodology can easily be
// extended to other countries and search engines" — made concrete. This
// example builds a UK-flavoured world (UK query corpus, England/Scotland/
// Wales regions, UK establishment taxonomy), serves it over HTTP, and runs
// the same treatment/control measurement against it.
//
//	go run ./examples/customworld
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"geoserp/internal/browser"
	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/metrics"
	"geoserp/internal/queries"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/webcorpus"
)

func main() {
	corpus, err := queries.NewCorpus([]queries.Query{
		{Term: "Chemist", Category: queries.Local},
		{Term: "Chip Shop", Category: queries.Local},
		{Term: "GP Surgery", Category: queries.Local},
		{Term: "Greggs", Category: queries.Local, Brand: true},
		{Term: "Pret A Manger", Category: queries.Local, Brand: true},
		{Term: "Scottish Independence", Category: queries.Controversial},
		{Term: "NHS Funding", Category: queries.Controversial},
		{Term: "Prime Minister", Category: queries.Politician, Scope: queries.ScopeNationalFigure},
	})
	if err != nil {
		log.Fatal(err)
	}

	london := geo.Point{Lat: 51.5074, Lon: -0.1278}
	edinburgh := geo.Point{Lat: 55.9533, Lon: -3.1883}
	cardiff := geo.Point{Lat: 51.4816, Lon: -3.1791}
	regions := []engine.RegionInfo{
		{Region: webcorpus.Region{Slug: "england", Name: "England"}, Centroid: london},
		{Region: webcorpus.Region{Slug: "scotland", Name: "Scotland"}, Centroid: edinburgh},
		{Region: webcorpus.Region{Slug: "wales", Name: "Wales"}, Centroid: cardiff},
	}
	kinds := []webcorpus.PlaceKind{
		{Key: "chemist", Density: 1.2, NameSuffixes: []string{"Pharmacy", "Chemist"}},
		{Key: "chip-shop", Density: 0.9, NameSuffixes: []string{"Fish Bar", "Chippy", "Fish & Chips"}},
		{Key: "gp-surgery", Density: 0.7, NameSuffixes: []string{"Medical Practice", "Surgery", "Health Centre"}},
		{Key: "greggs", Density: 0.8, Brand: true},
		{Key: "pret-a-manger", Density: 0.3, Brand: true},
	}

	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := engine.DefaultConfig()
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	eng := engine.NewCustom(cfg, clk,
		engine.WithCorpus(corpus),
		engine.WithRegions(regions),
		engine.WithPlaceKinds(kinds))

	srv, err := serpserver.Listen("127.0.0.1:0", serpserver.NewHandler(eng))
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	fmt.Printf("UK-world engine serving at %s\n\n", srv.URL())

	search := func(pt geo.Point, term string) []string {
		b, err := browser.New(srv.URL(), browser.WithSourceIP("10.0.0.1"))
		if err != nil {
			log.Fatal(err)
		}
		b.OverrideGeolocation(pt)
		page, err := b.Search(term)
		if err != nil {
			log.Fatal(err)
		}
		return page.Links()
	}

	fmt.Printf("%-22s %12s %12s\n", "query", "LDN vs EDI", "LDN vs LDN")
	fmt.Println("------------------------------------------------")
	for _, q := range corpus.All() {
		cross := metrics.EditDistance(search(london, q.Term), search(edinburgh, q.Term))
		same := metrics.EditDistance(search(london, q.Term), search(london, q.Term))
		fmt.Printf("%-22s %12d %12d\n", q.Term, cross, same)
	}
	fmt.Println("\nLondon vs Edinburgh local results diverge; same-city repeats differ")
	fmt.Println("only by noise — the paper's methodology, transplanted to a new world.")
}
