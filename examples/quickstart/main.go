// Quickstart: start the synthetic engine, issue the same query from two
// coordinates on opposite ends of the US, and diff the result pages — the
// paper's core observation in thirty lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"geoserp"

	"geoserp/internal/browser"
	"geoserp/internal/metrics"
)

func main() {
	study, err := geoserp.NewStudy(geoserp.DefaultStudyConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	cleveland := geoserp.Point{Lat: 41.4993, Lon: -81.6944}
	losAngeles := geoserp.Point{Lat: 34.0522, Lon: -118.2437}

	search := func(pt geoserp.Point, term string) *geoserp.Page {
		b, err := browser.New(study.ServerURL(), browser.WithSourceIP("10.0.0.1"))
		if err != nil {
			log.Fatal(err)
		}
		b.OverrideGeolocation(pt)
		page, err := b.Search(term)
		if err != nil {
			log.Fatal(err)
		}
		return page
	}

	for _, term := range []string{"Coffee", "Gay Marriage"} {
		a := search(cleveland, term)
		b := search(losAngeles, term)
		cmp := metrics.ComparePages(a, b)
		fmt.Printf("query %-14q  Cleveland vs Los Angeles:  jaccard=%.2f  edit=%d\n",
			term, cmp.Jaccard, cmp.EditDistance)
		fmt.Printf("  Cleveland top results:\n")
		for i, l := range a.Links() {
			if i == 3 {
				break
			}
			fmt.Printf("    %d. %s\n", i+1, l)
		}
		fmt.Printf("  Los Angeles top results:\n")
		for i, l := range b.Links() {
			if i == 3 {
				break
			}
			fmt.Printf("    %d. %s\n", i+1, l)
		}
		fmt.Println()
	}
	fmt.Println("Local queries are heavily personalized by location; controversial")
	fmt.Println("queries barely move — the paper's headline finding.")
}
