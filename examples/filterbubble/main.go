// Filterbubble: the paper's motivating question — do controversial
// political topics get locally personalized results ("geolocal Filter
// Bubbles")? This example crawls a set of controversial terms from every
// county-level voting district plus far-apart states, compares the pages,
// and reports whether differences exceed the measured noise floor.
//
//	go run ./examples/filterbubble
package main

import (
	"fmt"
	"log"

	"geoserp"

	"geoserp/internal/queries"
)

func main() {
	study, err := geoserp.NewStudy(geoserp.DefaultStudyConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	corpus := geoserp.StudyCorpus()
	terms := corpus.Category(queries.Controversial)[:10]

	phases := []geoserp.Phase{{
		Name:          "filter-bubble-audit",
		Terms:         terms,
		Granularities: []geoserp.Granularity{geoserp.County, geoserp.National},
		Days:          2,
	}}
	obs, err := study.RunPhases(phases)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := geoserp.NewDataset(obs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Filter Bubble audit: controversial queries")
	fmt.Println("==========================================")
	for _, cell := range ds.PersonalizationByGranularity() {
		if cell.Category != "controversial" {
			continue
		}
		excess := cell.Edit.Mean - cell.NoiseEdit
		verdict := "within noise — no geolocal filter bubble detected"
		if excess > 1.0 {
			verdict = "above noise — location-dependent results detected"
		}
		fmt.Printf("\n%s:\n", cell.Granularity)
		fmt.Printf("  cross-location edit distance: %.2f (noise floor %.2f)\n",
			cell.Edit.Mean, cell.NoiseEdit)
		fmt.Printf("  jaccard overlap:              %.2f\n", cell.Jaccard.Mean)
		fmt.Printf("  verdict: %s\n", verdict)
	}

	fmt.Println("\nPer-term personalization (edit distance, national granularity):")
	for _, ts := range ds.PersonalizationPerTerm("controversial") {
		fmt.Printf("  %-34s %.2f\n", ts.Term, ts.EditByGranularity["national"])
	}
	fmt.Println("\nThe paper found controversial terms see only small, News-driven")
	fmt.Println("changes — mostly at large distances — rather than a filter bubble.")
}
