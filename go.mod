module geoserp

go 1.24
