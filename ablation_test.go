package geoserp

// Ablation suite: each test disables one engine mechanism and asserts the
// phenomenon it implements disappears (and nothing else does). Together
// they demonstrate that every headline effect in the reproduction is
// attributable to the mechanism DESIGN.md claims — not an accident of the
// corpus. Matching Benchmark variants time the engine with each mechanism
// removed, quantifying what each costs on the hot path.

import (
	"fmt"
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/metrics"
	"geoserp/internal/simclock"
)

var (
	ablCleveland = geo.Point{Lat: 41.4993, Lon: -81.6944}
	ablColumbus  = geo.Point{Lat: 39.9612, Lon: -82.9988}
	ablDenver    = geo.Point{Lat: 39.7392, Lon: -104.9903}
)

func ablEngine(mutate func(*engine.Config)) *engine.Engine {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := engine.DefaultConfig()
	cfg.RateBurst = 1 << 30
	cfg.RatePerMinute = 1 << 30
	if mutate != nil {
		mutate(&cfg)
	}
	return engine.New(cfg, clk)
}

// ablMeasure returns (mean noise edit, mean personalization edit) for the
// given terms between two locations.
func ablMeasure(t testing.TB, e *engine.Engine, terms []string, a, b geo.Point, rounds int) (noise, pers float64) {
	t.Helper()
	var nSum, pSum float64
	var n int
	for _, term := range terms {
		for r := 0; r < rounds; r++ {
			ra1, err := e.Search(engine.Request{Query: term, GPS: &a, ClientIP: "10.0.0.1"})
			if err != nil {
				t.Fatal(err)
			}
			ra2, err := e.Search(engine.Request{Query: term, GPS: &a, ClientIP: "10.0.0.2"})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := e.Search(engine.Request{Query: term, GPS: &b, ClientIP: "10.0.0.1"})
			if err != nil {
				t.Fatal(err)
			}
			nSum += float64(metrics.ComparePages(ra1.Page, ra2.Page).EditDistance)
			pSum += float64(metrics.ComparePages(ra1.Page, rb.Page).EditDistance)
			n++
		}
	}
	return nSum / float64(n), pSum / float64(n)
}

var ablLocalTerms = []string{"School", "Coffee", "Bank", "Hospital", "Park", "Airport"}

// TestAblationNoiseModel: with every stochastic mechanism off, noise
// collapses to zero while location personalization survives — the two are
// independent, as the paper's treatment/control design assumes.
func TestAblationNoiseModel(t *testing.T) {
	quiet := ablEngine(func(c *engine.Config) {
		c.WebJitterSigma, c.PlaceJitterSigma, c.NewsJitterSigma = 0, 0, 0
		c.Buckets, c.BucketWeightSpread = 1, 0
		c.ReplicaSkew = 0
		c.Datacenters = 1
		c.MapsCardProb = 1
	})
	noise, pers := ablMeasure(t, quiet, ablLocalTerms, ablCleveland, ablDenver, 3)
	if noise != 0 {
		t.Errorf("quiet engine noise = %.2f, want 0", noise)
	}
	if pers < 4 {
		t.Errorf("quiet engine personalization = %.2f, want >= 4 (signal must survive)", pers)
	}

	noisy := ablEngine(nil)
	nNoise, _ := ablMeasure(t, noisy, ablLocalTerms, ablCleveland, ablDenver, 3)
	if nNoise <= 1 {
		t.Errorf("default engine noise = %.2f, want > 1", nNoise)
	}
}

// TestAblationMapsCards: disabling Maps cards removes the Maps share of
// local differences and reduces — but does not eliminate — local
// personalization, matching the paper's "most changes hit typical
// results".
func TestAblationMapsCards(t *testing.T) {
	noMaps := ablEngine(func(c *engine.Config) { c.MapsCardProb = 0 })
	withMaps := ablEngine(nil)

	sumBreakdown := func(e *engine.Engine) (maps, other float64) {
		for _, term := range ablLocalTerms {
			ra, err := e.Search(engine.Request{Query: term, GPS: &ablCleveland, ClientIP: "10.0.0.1"})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := e.Search(engine.Request{Query: term, GPS: &ablDenver, ClientIP: "10.0.0.1"})
			if err != nil {
				t.Fatal(err)
			}
			bd := metrics.BreakdownPages(ra.Page, rb.Page)
			maps += float64(bd.Maps)
			other += float64(bd.Other)
		}
		return maps, other
	}
	m0, o0 := sumBreakdown(noMaps)
	m1, o1 := sumBreakdown(withMaps)
	if m0 != 0 {
		t.Errorf("maps differences with MapsCardProb=0: %.1f", m0)
	}
	if m1 == 0 {
		t.Error("no maps differences with default config")
	}
	if o0 == 0 || o1 == 0 {
		t.Errorf("typical-result personalization should survive either way (%.1f, %.1f)", o0, o1)
	}
}

// TestAblationGPSPriority: without GPS the engine falls back to IP
// geolocation, so two coordinates "visited" from the same IP become
// indistinguishable — the mechanism the §2.2 validation experiment relies
// on, inverted.
func TestAblationGPSPriority(t *testing.T) {
	e := ablEngine(func(c *engine.Config) {
		c.WebJitterSigma, c.PlaceJitterSigma, c.NewsJitterSigma = 0, 0, 0
		c.Buckets, c.BucketWeightSpread = 1, 0
		c.ReplicaSkew = 0
		c.Datacenters = 1
		c.MapsCardProb = 1
	})
	// Same IP, no GPS: the "two locations" collapse to one.
	for _, term := range ablLocalTerms[:3] {
		r1, err := e.Search(engine.Request{Query: term, ClientIP: "10.0.0.1"})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e.Search(engine.Request{Query: term, ClientIP: "10.0.0.1"})
		if err != nil {
			t.Fatal(err)
		}
		if cmp := metrics.ComparePages(r1.Page, r2.Page); cmp.EditDistance != 0 {
			t.Errorf("%s: GPS-less same-IP queries differ by %d", term, cmp.EditDistance)
		}
	}
}

// TestAblationRegionBoost: zeroing the region boost removes the
// cross-state personalization of controversial queries (which rides on
// region-tagged documents) while local personalization (which rides on
// Places) survives.
func TestAblationRegionBoost(t *testing.T) {
	noRegion := ablEngine(func(c *engine.Config) {
		c.RegionBoost = 0
		c.NewsRegionBoost = 0
		c.OffRegionPenalty = 1
		c.WebJitterSigma, c.PlaceJitterSigma, c.NewsJitterSigma = 0, 0, 0
		c.Buckets, c.BucketWeightSpread = 1, 0
		c.ReplicaSkew = 0
		c.Datacenters = 1
		c.MapsCardProb = 1
	})
	controversial := []string{"Gay Marriage", "Health", "Abortion", "Obamacare", "Fracking", "Gun Control"}
	_, persControversial := ablMeasure(t, noRegion, controversial, ablCleveland, ablDenver, 1)
	if persControversial != 0 {
		t.Errorf("controversial personalization without region machinery = %.2f, want 0", persControversial)
	}
	_, persLocal := ablMeasure(t, noRegion, ablLocalTerms, ablCleveland, ablDenver, 1)
	if persLocal < 3 {
		t.Errorf("local personalization without region machinery = %.2f, want >= 3", persLocal)
	}
}

// TestAblationHistoryWindow: zero history boost removes same-session
// personalization entirely.
func TestAblationHistoryWindow(t *testing.T) {
	e := ablEngine(func(c *engine.Config) {
		c.HistoryBoost = 0
		c.WebJitterSigma, c.PlaceJitterSigma, c.NewsJitterSigma = 0, 0, 0
		c.Buckets, c.BucketWeightSpread = 1, 0
		c.ReplicaSkew = 0
		c.Datacenters = 1
		c.MapsCardProb = 1
	})
	pt := ablCleveland
	r1, err := e.Search(engine.Request{Query: "Coffee", GPS: &pt, ClientIP: "10.0.0.1", SessionID: "s"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Search(engine.Request{Query: "Coffee", GPS: &pt, ClientIP: "10.0.0.1", SessionID: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if cmp := metrics.ComparePages(r1.Page, r2.Page); cmp.EditDistance != 0 {
		t.Errorf("history boost 0 but session queries differ by %d", cmp.EditDistance)
	}
}

// TestAblationPlacesVertical: removing the Places vertical from pages (no
// Maps cards, no place-backed organic results) collapses local-query
// personalization to the level of non-local queries — places ARE the
// mechanism behind the paper's local findings.
func TestAblationPlacesVertical(t *testing.T) {
	quiet := func(c *engine.Config) {
		c.WebJitterSigma, c.PlaceJitterSigma, c.NewsJitterSigma = 0, 0, 0
		c.Buckets, c.BucketWeightSpread = 1, 0
		c.ReplicaSkew = 0
		c.Datacenters = 1
	}
	noPlaces := ablEngine(func(c *engine.Config) {
		quiet(c)
		c.MapsCardProb = 0
		c.PlaceWeight = 0
		c.PopWeight = 0
		c.MaxPlaceOrganic = 0
	})
	withPlaces := ablEngine(func(c *engine.Config) { quiet(c); c.MapsCardProb = 1 })

	// Within one state (Cleveland vs Columbus) the regional web content is
	// identical, so with Places removed local queries should show zero
	// location personalization; with Places on, plenty.
	_, pers0 := ablMeasure(t, noPlaces, ablLocalTerms, ablCleveland, ablColumbus, 1)
	_, pers1 := ablMeasure(t, withPlaces, ablLocalTerms, ablCleveland, ablColumbus, 1)
	if pers0 != 0 {
		t.Errorf("local personalization without places vertical = %.2f, want 0", pers0)
	}
	if pers1 < 4 {
		t.Errorf("local personalization with places vertical = %.2f, want >= 4", pers1)
	}
}

// ---- ablation benchmarks: what each mechanism costs ----

func benchAblation(b *testing.B, mutate func(*engine.Config)) {
	e := ablEngine(mutate)
	b.ResetTimer()
	i := 0
	for ; i < b.N; i++ {
		term := ablLocalTerms[i%len(ablLocalTerms)]
		if _, err := e.Search(engine.Request{Query: term, GPS: &ablCleveland, ClientIP: "10.0.0.1"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFull times the default engine (all mechanisms on).
func BenchmarkAblationFull(b *testing.B) { benchAblation(b, nil) }

// BenchmarkAblationNoNoise times the engine with the noise model off.
func BenchmarkAblationNoNoise(b *testing.B) {
	benchAblation(b, func(c *engine.Config) {
		c.WebJitterSigma, c.PlaceJitterSigma, c.NewsJitterSigma = 0, 0, 0
		c.Buckets, c.BucketWeightSpread = 1, 0
	})
}

// BenchmarkAblationNoMaps times the engine with Maps cards disabled.
func BenchmarkAblationNoMaps(b *testing.B) {
	benchAblation(b, func(c *engine.Config) { c.MapsCardProb = 0 })
}

// BenchmarkAblationWidePlaces times the engine with a 4x place radius —
// the cost of drawing candidates from a wider area.
func BenchmarkAblationWidePlaces(b *testing.B) {
	benchAblation(b, func(c *engine.Config) { c.PlaceRadiusKm = 40 })
}

var _ = fmt.Sprintf
