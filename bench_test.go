package geoserp

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each BenchmarkTableN/
// BenchmarkFigureN times the full regeneration of that artifact from a
// shared campaign fixture; the remaining benchmarks measure the substrate
// (engine, HTTP path, SERP codec, comparison metrics) so regressions in
// the expensive inner loops are visible.

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"geoserp/internal/analysis"
	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/metrics"
	"geoserp/internal/queries"
	"geoserp/internal/report"
	"geoserp/internal/serp"
	"geoserp/internal/simclock"
	"geoserp/internal/storage"
	"geoserp/internal/telemetry"

	"time"
)

// ---- shared campaign fixture ----

var (
	fixtureOnce sync.Once
	fixtureObs  []storage.Observation
	fixtureDS   *analysis.Dataset
	fixtureErr  error
)

// fixture runs one scaled campaign (8 terms per category × 2 days × all
// granularities) and indexes it; every figure benchmark reuses it.
func fixture(b *testing.B) *analysis.Dataset {
	b.Helper()
	fixtureOnce.Do(func() {
		study, err := NewStudy(DefaultStudyConfig())
		if err != nil {
			fixtureErr = err
			return
		}
		defer study.Close()
		fixtureObs, fixtureErr = study.RunPhases(study.ScaledPhases(8, 2))
		if fixtureErr != nil {
			return
		}
		fixtureDS, fixtureErr = analysis.NewDataset(fixtureObs)
	})
	if fixtureErr != nil {
		b.Fatalf("fixture: %v", fixtureErr)
	}
	return fixtureDS
}

// ---- tables and figures ----

// BenchmarkTable1Corpus regenerates Table 1 (the controversial-term
// examples) from the study corpus.
func BenchmarkTable1Corpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		terms := Table1Terms()
		if out := report.Table1(terms); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure2Noise regenerates Figure 2: noise by granularity and
// query type from treatment/control pairs.
func BenchmarkFigure2Noise(b *testing.B) {
	d := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := d.NoiseByGranularity()
		if len(cells) != 9 {
			b.Fatalf("cells = %d", len(cells))
		}
	}
}

// BenchmarkFigure3NoisePerTerm regenerates Figure 3: per-term noise for
// local queries at each granularity.
func BenchmarkFigure3NoisePerTerm(b *testing.B) {
	d := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if terms := d.NoisePerTerm("local"); len(terms) == 0 {
			b.Fatal("no terms")
		}
	}
}

// BenchmarkFigure4NoiseTypes regenerates Figure 4: the noise attribution
// to Maps/News results for local queries at county granularity.
func BenchmarkFigure4NoiseTypes(b *testing.B) {
	d := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if attr := d.NoiseByResultType("local", "county"); len(attr) == 0 {
			b.Fatal("no attribution")
		}
	}
}

// BenchmarkFigure5Personalization regenerates Figure 5: all-pairs
// cross-location personalization with noise floors.
func BenchmarkFigure5Personalization(b *testing.B) {
	d := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cells := d.PersonalizationByGranularity(); len(cells) != 9 {
			b.Fatalf("cells = %d", len(cells))
		}
	}
}

// BenchmarkFigure6PersonalizationPerTerm regenerates Figure 6: per-term
// personalization of local queries.
func BenchmarkFigure6PersonalizationPerTerm(b *testing.B) {
	d := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if terms := d.PersonalizationPerTerm("local"); len(terms) == 0 {
			b.Fatal("no terms")
		}
	}
}

// BenchmarkFigure7TypeBreakdown regenerates Figure 7: the Maps/News/Other
// decomposition of personalization.
func BenchmarkFigure7TypeBreakdown(b *testing.B) {
	d := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cells := d.PersonalizationByResultType(); len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// BenchmarkFigure8Consistency regenerates Figure 8: the day-by-day
// baseline-vs-locations series per granularity.
func BenchmarkFigure8Consistency(b *testing.B) {
	d := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if series := d.ConsistencyOverTime("local"); len(series) != 3 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

// BenchmarkValidationGPSvsIP regenerates the §2.2 validation experiment:
// identical queries, fixed GPS, many vantage IPs, over the live HTTP path.
func BenchmarkValidationGPSvsIP(b *testing.B) {
	study, err := NewStudy(DefaultStudyConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer study.Close()
	terms := StudyCorpus().Category(queries.Controversial)[:3]
	gps := Point{Lat: 41.4993, Lon: -81.6944}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := study.RunValidation(terms, gps, 10)
		if err != nil {
			b.Fatal(err)
		}
		if res.MeanResultOverlap < 0.5 {
			b.Fatalf("overlap = %v", res.MeanResultOverlap)
		}
	}
}

// BenchmarkDemographicsCorrelation regenerates the §3.2 demographics
// analysis over the campaign fixture.
func BenchmarkDemographicsCorrelation(b *testing.B) {
	d := fixture(b)
	locs := geo.StudyDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := d.DemographicCorrelations(locs, "local"); len(rows) != 26 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// ---- substrate benchmarks ----

func benchEngine(b *testing.B) *engine.Engine {
	b.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := engine.DefaultConfig()
	cfg.RateBurst = 1 << 30
	cfg.RatePerMinute = 1 << 30
	return engine.New(cfg, clk)
}

func benchSearch(b *testing.B, term string) {
	e := benchEngine(b)
	pt := geo.Point{Lat: 41.4993, Lon: -81.6944}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(engine.Request{Query: term, GPS: &pt, ClientIP: "10.0.0.1"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSearchLocal measures the engine's hot path for a generic
// local query (index retrieval + Places generation + assembly).
func BenchmarkEngineSearchLocal(b *testing.B) { benchSearch(b, "School") }

// BenchmarkEngineSearchControversial measures a news-bearing query.
func BenchmarkEngineSearchControversial(b *testing.B) { benchSearch(b, "Gay Marriage") }

// BenchmarkEngineSearchPolitician measures a politician query.
func BenchmarkEngineSearchPolitician(b *testing.B) { benchSearch(b, "Barack Obama") }

// BenchmarkEngineSearchParallel measures contended throughput.
func BenchmarkEngineSearchParallel(b *testing.B) {
	e := benchEngine(b)
	pt := geo.Point{Lat: 41.4993, Lon: -81.6944}
	terms := []string{"School", "Coffee", "Gay Marriage", "Barack Obama"}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			term := terms[i%len(terms)]
			i++
			if _, err := e.Search(engine.Request{Query: term, GPS: &pt, ClientIP: fmt.Sprintf("10.0.%d.1", i%200)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSERPRenderParse measures the HTML wire codec round trip the
// crawler pays per page.
func BenchmarkSERPRenderParse(b *testing.B) {
	e := benchEngine(b)
	pt := geo.Point{Lat: 41.4993, Lon: -81.6944}
	resp, err := e.Search(engine.Request{Query: "School", GPS: &pt, ClientIP: "10.0.0.1"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := serp.RenderHTML(resp.Page)
		if _, err := serp.ParseHTML(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsComparePages measures one page-pair comparison (Jaccard
// + edit distance), the inner loop of all figure regenerations.
func BenchmarkMetricsComparePages(b *testing.B) {
	e := benchEngine(b)
	pt1 := geo.Point{Lat: 41.4993, Lon: -81.6944}
	pt2 := geo.Point{Lat: 39.9612, Lon: -82.9988}
	r1, err := e.Search(engine.Request{Query: "School", GPS: &pt1, ClientIP: "10.0.0.1"})
	if err != nil {
		b.Fatal(err)
	}
	r2, err := e.Search(engine.Request{Query: "School", GPS: &pt2, ClientIP: "10.0.0.1"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.ComparePages(r1.Page, r2.Page)
	}
}

// BenchmarkCampaignSweep measures one full lock-step term sweep (all 59
// locations × 2 roles over HTTP) — the unit of crawl cost.
func BenchmarkCampaignSweep(b *testing.B) {
	study, err := NewStudy(DefaultStudyConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer study.Close()
	term := StudyCorpus().Category(queries.Local)[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phases := []Phase{{
			Name:          "bench",
			Terms:         term,
			Granularities: []Granularity{County},
			Days:          1,
		}}
		obs, err := study.RunPhases(phases)
		if err != nil {
			b.Fatal(err)
		}
		if len(obs) != 30 {
			b.Fatalf("obs = %d", len(obs))
		}
	}
}

// BenchmarkMetricsRank measures the rank-aware comparison metrics over
// realistic page-sized lists.
func BenchmarkMetricsRank(b *testing.B) {
	a := make([]string, 18)
	c := make([]string, 18)
	for i := range a {
		a[i] = fmt.Sprintf("https://site-%d.example/", i)
		c[i] = fmt.Sprintf("https://site-%d.example/", (i*7+3)%20)
	}
	b.Run("KendallTau", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			metrics.KendallTau(a, c)
		}
	})
	b.Run("RBO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			metrics.RBO(a, c, 0.9)
		}
	})
}

// BenchmarkReportSVG measures figure-image generation from the campaign
// fixture.
func BenchmarkReportSVG(b *testing.B) {
	d := fixture(b)
	cells := d.NoiseByGranularity()
	terms := d.NoisePerTerm("local")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if svg := report.Figure2SVG(cells); len(svg) == 0 {
			b.Fatal("empty svg")
		}
		if svg := report.Figure3SVG(terms); len(svg) == 0 {
			b.Fatal("empty svg")
		}
	}
}

// ---- telemetry hot path ----

// The telemetry layer sits on the engine's and server's per-request path,
// so its primitives must be effectively free: single atomic ops, no
// allocations, no locks held across observation.

// BenchmarkTelemetryCounterInc measures the bare counter increment — the
// cost added to every served request.
func BenchmarkTelemetryCounterInc(b *testing.B) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("bench_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetryCounterVecWith measures the labelled-counter fast path
// (existing child: one RLock map hit + atomic add).
func BenchmarkTelemetryCounterVecWith(b *testing.B) {
	reg := telemetry.NewRegistry()
	v := reg.CounterVec("bench_by_code_total", "bench", "code")
	v.With("200") // pre-create the child, as the serving path does
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("200").Inc()
	}
}

// BenchmarkTelemetryHistogramObserve measures one latency observation
// (linear bucket scan + two atomics).
func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("bench_seconds", "bench", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

// BenchmarkTelemetryCounterParallel measures counter contention at
// engine-parallel request rates.
func BenchmarkTelemetryCounterParallel(b *testing.B) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("bench_total", "bench")
	v := reg.CounterVec("bench_by_code_total", "bench", "code")
	h := reg.Histogram("bench_seconds", "bench", nil)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
			v.With("200").Inc()
			h.Observe(0.001)
		}
	})
}

// BenchmarkTelemetryPrometheusRender measures one /metricsz scrape over a
// registry shaped like serpd's (a scrape must not perturb serving).
func BenchmarkTelemetryPrometheusRender(b *testing.B) {
	reg := telemetry.NewRegistry()
	reg.Counter("engine_served_total", "x").Add(12345)
	v := reg.CounterVec("serpd_http_responses_total", "x", "code")
	for _, code := range []string{"200", "400", "404", "429"} {
		v.With(code).Add(100)
	}
	dc := reg.CounterVec("engine_requests_total", "x", "datacenter")
	for i := 0; i < 3; i++ {
		dc.With(fmt.Sprintf("dc-%d", i)).Add(50)
	}
	h := reg.Histogram("serpd_http_request_duration_seconds", "x", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 10000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTelemetryHotPathZeroAlloc pins the zero-allocation guarantee of the
// per-request instrument path at the integration level: if any of these
// allocates, every engine search and HTTP request pays it.
func TestTelemetryHotPathZeroAlloc(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("zero_total", "x")
	v := reg.CounterVec("zero_by_code_total", "x", "code")
	v.With("200")
	h := reg.Histogram("zero_seconds", "x", nil)
	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"CounterVec.With":   func() { v.With("200").Inc() },
		"Histogram.Observe": func() { h.Observe(0.002) },
	} {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %.0f per op, want 0", name, allocs)
		}
	}
}

// BenchmarkStorageRoundTrip measures JSONL encode+decode of one thousand
// observations (the persistence cost per campaign chunk).
func BenchmarkStorageRoundTrip(b *testing.B) {
	d := fixture(b)
	_ = d
	obs := fixtureObs
	if len(obs) > 1000 {
		obs = obs[:1000]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := storage.WriteJSONL(&buf, obs); err != nil {
			b.Fatal(err)
		}
		back, err := storage.ReadJSONL(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(back) != len(obs) {
			b.Fatal("lost observations")
		}
	}
}
