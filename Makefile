# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test check lint lint-sarif chaos soak soak-legacy soak-mono bench bench-json bench-check repro repro-full examples clean

all: build vet test

# check is the CI gate: formatting, vet, the project linter, build, and
# the full suite under the race detector (the telemetry layer is
# lock-free by design — prove it).
check: lint
	go build ./...
	go test -race ./...

# lint runs gofmt, go vet, and geoserplint — the project analyzer suite
# that machine-enforces the determinism, clock, concurrency, and span
# invariants (docs/LINTING.md). Any finding, or any stale //lint:allow,
# fails. `make lint-sarif` writes the same findings as a SARIF 2.1.0 log
# (lint.sarif) for code-scanning uploads; CI publishes it on every run.
lint:
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	go vet ./...
	go run ./cmd/geoserplint ./...

lint-sarif:
	go run ./cmd/geoserplint -format sarif ./... > lint.sarif || true
	@echo "wrote lint.sarif"

# soak runs the chaos soak harness under the race detector against the
# full replicated cluster topology — a serprouter-style coordinator
# scatter-gathering over 3 in-process shards x 2 replicas — through a
# multi-phase fault schedule that includes a deterministic 26-hour outage
# of replica 0 on every shard, asserting the overload-resilience
# invariants (no deadlock, breakers re-close, shed fraction within
# budget, zero terminal failures) plus the replication invariants (zero
# partial pages — failover absorbs every replica fault — background
# health probes re-admit the replicas, breaker ledger balanced), and
# writing the full span timeline to soak-trace.json. Cluster runs
# additionally assert the trace-stitching invariants (every sampled
# request stitches completely, fault attribution matches the schedule)
# and export the post-campaign probes' stitched critical-path reports and
# multi-process Chrome trace. `make soak-legacy` runs the single-replica
# cluster (whole-day shard-0 outage, graded degradation to partial
# pages); `make soak-mono` keeps the original single-node rig.
soak:
	go run -race ./cmd/soak -cluster-shards 3 -trace-out soak-trace.json \
		-clustertracez-out soak-clustertracez.json -cluster-trace-out soak-cluster-trace.json

soak-legacy:
	go run -race ./cmd/soak -cluster-shards 3 -cluster-replicas 1 -trace-out soak-trace.json \
		-clustertracez-out soak-clustertracez.json -cluster-trace-out soak-cluster-trace.json

soak-mono:
	go run -race ./cmd/soak -trace-out soak-trace.json

# chaos runs the fault-injection suite under the race detector: chaos
# transport/middleware, retry classification, failure budgets, and
# checkpoint resume (see docs/RELIABILITY.md).
chaos:
	go test -race -run 'Chaos|Retry|FailSoft|FailureBudget|Resume|Transient|SearchContext' \
		./internal/browser/ ./internal/crawler/ ./internal/serpserver/

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-output:
	go test ./... 2>&1 | tee test_output.txt

bench:
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# bench-json runs the benchmarks and writes machine-readable results to
# BENCH_core.json (name -> ns/op, B/op, allocs/op; sorted keys, so
# successive runs diff cleanly). Override BENCHTIME for a quick smoke:
#   make bench-json BENCHTIME=10x
BENCHTIME ?= 1s
bench-json:
	go test -bench=. -benchmem -benchtime=$(BENCHTIME) -run='^$$' ./... 2>&1 | tee bench_output.txt
	go run ./cmd/benchjson -in bench_output.txt -out BENCH_core.json

# bench-check is the benchmark regression gate: it re-runs the benchmarks
# briefly and fails when any allocs/op or B/op exceeds the committed
# BENCH_core.json baseline beyond tolerance. Allocation metrics are
# machine-independent, so the committed baseline holds on any hardware;
# wall-time gating stays opt-in (benchjson -check-ns). After an
# intentional perf change, regenerate the baseline with `make bench-json`
# and commit the diff. 1000x keeps one-time setup well amortized (at 100x
# the RunParallel benchmarks over-report allocs/op) while staying much
# quicker than the baseline's 1s-per-benchmark run.
CHECK_BENCHTIME ?= 1000x
bench-check:
	go test -bench=. -benchmem -benchtime=$(CHECK_BENCHTIME) -run='^$$' ./... 2>&1 | tee bench_check_output.txt
	go run ./cmd/benchjson -in bench_check_output.txt -check BENCH_core.json

repro:
	go run ./cmd/repro

repro-full:
	go run ./cmd/repro -full -extended

examples:
	go run ./examples/quickstart
	go run ./examples/noiseaudit
	go run ./examples/geosweep
	go run ./examples/filterbubble
	go run ./examples/customworld
	go run ./examples/ipmethodology

clean:
	rm -f campaign.jsonl test_output.txt bench_output.txt bench_check_output.txt trace.json \
		soak-trace.json soak-clustertracez.json soak-cluster-trace.json
