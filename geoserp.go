package geoserp

import (
	"context"
	"fmt"
	"io"
	"time"

	"geoserp/internal/analysis"
	"geoserp/internal/crawler"
	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/serp"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/storage"
	"geoserp/internal/telemetry"
)

// Re-exported core types: the public API surface mirrors the paper's
// vocabulary. Aliases keep the internal packages as the single source of
// truth while letting downstream users import only this package.
type (
	// Point is a WGS-84 coordinate.
	Point = geo.Point
	// Location is a study vantage point.
	Location = geo.Location
	// Granularity is the county/state/national scale.
	Granularity = geo.Granularity
	// Query is one corpus search term.
	Query = queries.Query
	// Page is one page of search results.
	Page = serp.Page
	// Observation is one crawled page with experimental context.
	Observation = storage.Observation
	// Phase is one campaign sweep (term set × granularities × days).
	Phase = crawler.Phase
	// Dataset indexes observations for figure regeneration.
	Dataset = analysis.Dataset
	// EngineConfig tunes the synthetic engine.
	EngineConfig = engine.Config
	// CrawlerConfig describes the crawl infrastructure.
	CrawlerConfig = crawler.Config
	// EngineRequest is a single direct (non-HTTP) engine query.
	EngineRequest = engine.Request
	// FeatureCorrelation is one demographics-analysis row.
	FeatureCorrelation = analysis.FeatureCorrelation
	// ValidationResult summarizes the GPS-vs-IP experiment.
	ValidationResult = analysis.ValidationResult
	// SpanRecorder is the bounded ring buffer collecting finished spans.
	SpanRecorder = telemetry.SpanRecorder
	// SpanRecord is one finished span as read back from a recorder.
	SpanRecord = telemetry.SpanRecord
)

// WriteChromeTrace renders recorded spans in Chrome trace-event format
// (loadable in Perfetto or chrome://tracing); byte-deterministic for a
// deterministic span set.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	return telemetry.WriteChromeTrace(w, spans)
}

// Granularity constants, fine to coarse.
const (
	County   = geo.County
	State    = geo.State
	National = geo.National
)

// QueryCategory is the paper's query taxonomy.
type QueryCategory = queries.Category

// Query category constants.
const (
	LocalCategory         = queries.Local
	ControversialCategory = queries.Controversial
	PoliticianCategory    = queries.Politician
)

// NewDataset indexes crawl observations for analysis.
func NewDataset(obs []Observation) (*Dataset, error) { return analysis.NewDataset(obs) }

// ValidateGPSOverIP evaluates validation-experiment pages.
func ValidateGPSOverIP(pages map[string][]*Page) ValidationResult {
	return analysis.ValidateGPSOverIP(pages)
}

// StudyLocations returns the paper's 59 vantage points.
func StudyLocations() *geo.Dataset { return geo.StudyDataset() }

// StudyCorpus returns the paper's 240-term query corpus.
func StudyCorpus() *queries.Corpus { return queries.StudyCorpus() }

// Table1Terms returns the paper's Table 1 (example controversial terms).
func Table1Terms() []string { return queries.Table1Terms() }

// DefaultEngineConfig returns the calibrated engine configuration.
func DefaultEngineConfig() EngineConfig { return engine.DefaultConfig() }

// DefaultCrawlerConfig mirrors the study's crawl infrastructure.
func DefaultCrawlerConfig() CrawlerConfig { return crawler.DefaultConfig() }

// StudyConfig configures a Study.
type StudyConfig struct {
	// Engine tunes the synthetic search engine.
	Engine EngineConfig
	// Crawler describes the measurement infrastructure.
	Crawler CrawlerConfig
	// ListenAddr is the address the in-process SERP server binds
	// (default "127.0.0.1:0").
	ListenAddr string
	// Epoch is the virtual day-0 instant (default 2015-06-01 UTC, the
	// season of the paper's data collection).
	Epoch time.Time
	// TraceCapacity, when positive, turns on span recording: NewStudy
	// builds a SpanRecorder of this capacity on the study's virtual
	// clock (so the recorded timeline is deterministic) and exposes it
	// as Study.Spans. Export it with WriteChromeTrace — cmd/repro's
	// -trace-out does exactly that.
	TraceCapacity int
}

// DefaultStudyConfig returns the full-fidelity study setup.
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		Engine:     engine.DefaultConfig(),
		Crawler:    crawler.DefaultConfig(),
		ListenAddr: "127.0.0.1:0",
		Epoch:      time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC),
	}
}

// Study wires the complete experiment: a virtual clock, the synthetic
// engine, a real HTTP server in front of it, and the crawler pool — the
// in-process equivalent of the paper's full measurement deployment.
type Study struct {
	// Clock is the virtual clock shared by engine and crawler.
	Clock *simclock.Manual
	// Engine is the synthetic search engine under measurement.
	Engine *engine.Engine
	// Crawler is the measurement harness.
	Crawler *crawler.Crawler
	// Spans is the study's span timeline (nil unless
	// StudyConfig.TraceCapacity was positive).
	Spans *SpanRecorder

	server *serpserver.Server
}

// NewStudy builds and starts a study: the engine is constructed at the
// epoch, served over a real TCP socket, and the crawler pointed at it.
func NewStudy(cfg StudyConfig) (*Study, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	}
	clk := simclock.NewManual(cfg.Epoch)
	eng := engine.New(cfg.Engine, clk)
	var spans *telemetry.SpanRecorder
	var handlerOpts []serpserver.HandlerOption
	if cfg.TraceCapacity > 0 {
		spans = telemetry.NewSpanRecorder(cfg.TraceCapacity, clk)
		handlerOpts = append(handlerOpts, serpserver.WithSpans(spans))
	}
	srv, err := serpserver.Listen(cfg.ListenAddr, serpserver.NewHandler(eng, handlerOpts...))
	if err != nil {
		return nil, fmt.Errorf("geoserp: %w", err)
	}
	srv.Start()
	cr, err := crawler.New(cfg.Crawler, clk, srv.URL(), geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		srv.Shutdown(context.Background())
		return nil, fmt.Errorf("geoserp: %w", err)
	}
	cr.Spans = spans
	return &Study{Clock: clk, Engine: eng, Crawler: cr, Spans: spans, server: srv}, nil
}

// ServerURL returns the in-process SERP server's base URL.
func (s *Study) ServerURL() string { return s.server.URL() }

// Close shuts the SERP server down.
func (s *Study) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.server.Shutdown(ctx)
}

// StudyPhases returns the paper's two campaign phases (local+controversial
// then politicians, 5 days each at all three granularities).
func (s *Study) StudyPhases() []Phase {
	return crawler.StudyPhases(queries.StudyCorpus())
}

// ScaledPhases returns a proportionally reduced campaign: terms-per-
// category and days are capped, granularities kept. Scale 1 reproduces the
// full study; smaller inputs make quick demos.
func (s *Study) ScaledPhases(termsPerCategory, days int) []Phase {
	corpus := queries.StudyCorpus()
	take := func(qs []Query) []Query {
		if termsPerCategory > 0 && len(qs) > termsPerCategory {
			return qs[:termsPerCategory]
		}
		return qs
	}
	if days <= 0 {
		days = 5
	}
	lc := append([]Query{}, take(corpus.Category(queries.Local))...)
	lc = append(lc, take(corpus.Category(queries.Controversial))...)
	return []Phase{
		{Name: "local+controversial", Terms: lc, Granularities: geo.Granularities, Days: days},
		{Name: "politicians", Terms: take(corpus.Category(queries.Politician)), Granularities: geo.Granularities, Days: days},
	}
}

// RunPhases executes a campaign under virtual time and returns the
// observations.
func (s *Study) RunPhases(phases []Phase) ([]Observation, error) {
	return s.Crawler.RunCampaignVirtual(s.Clock, phases)
}

// RunValidation runs the §2.2 GPS-vs-IP validation experiment with the
// given number of vantage machines and returns its summary. The default
// inputs match the paper: controversial terms, 50 vantages.
func (s *Study) RunValidation(terms []Query, gps Point, vantages int) (ValidationResult, error) {
	type result struct {
		pages map[string][]*Page
		err   error
	}
	done := make(chan result, 1)
	stop := make(chan struct{})
	go func() {
		pages, err := s.Crawler.RunValidation(terms, gps, vantages)
		done <- result{pages, err}
		close(stop)
	}()
	s.Clock.DriveUntil(stop)
	r := <-done
	if r.err != nil {
		return ValidationResult{}, r.err
	}
	return analysis.ValidateGPSOverIP(r.pages), nil
}
