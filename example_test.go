package geoserp_test

import (
	"fmt"
	"log"

	"geoserp"

	"geoserp/internal/metrics"
)

// quietStudy builds a fully deterministic study (all noise mechanisms
// disabled) so the examples have stable output.
func quietStudy() *geoserp.Study {
	cfg := geoserp.DefaultStudyConfig()
	cfg.Engine.WebJitterSigma = 0
	cfg.Engine.PlaceJitterSigma = 0
	cfg.Engine.NewsJitterSigma = 0
	cfg.Engine.Buckets = 1
	cfg.Engine.BucketWeightSpread = 0
	cfg.Engine.Datacenters = 1
	cfg.Engine.ReplicaSkew = 0
	cfg.Engine.MapsCardProb = 1
	cfg.Engine.RateBurst = 1 << 20
	cfg.Engine.RatePerMinute = 1 << 20
	study, err := geoserp.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return study
}

// Example_corpus shows the study's fixed datasets.
func Example_corpus() {
	corpus := geoserp.StudyCorpus()
	locs := geoserp.StudyLocations()
	fmt.Println("queries:", corpus.Len())
	fmt.Println("locations:", locs.Len())
	fmt.Println("table 1 terms:", len(geoserp.Table1Terms()))
	// Output:
	// queries: 240
	// locations: 59
	// table 1 terms: 18
}

// Example_campaign runs a miniature campaign and measures location
// personalization the way the paper does.
func Example_campaign() {
	study := quietStudy()
	defer study.Close()

	phases := []geoserp.Phase{{
		Name:          "mini",
		Terms:         geoserp.StudyCorpus().Category(geoserp.LocalCategory)[:1],
		Granularities: []geoserp.Granularity{geoserp.National},
		Days:          1,
	}}
	obs, err := study.RunPhases(phases)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := geoserp.NewDataset(obs)
	if err != nil {
		log.Fatal(err)
	}
	for _, cell := range ds.PersonalizationByGranularity() {
		fmt.Printf("%s %s: personalized=%v\n",
			cell.Granularity, cell.Category, cell.Edit.Mean > cell.NoiseEdit)
	}
	// Output:
	// national local: personalized=true
}

// Example_metrics demonstrates the paper's two comparison metrics.
func Example_metrics() {
	a := []string{"u1", "u2", "u3", "u4"}
	b := []string{"u1", "u3", "u2", "u5"}
	fmt.Printf("jaccard: %.2f\n", metrics.Jaccard(a, b))
	fmt.Printf("edit distance: %d\n", metrics.EditDistance(a, b))
	// Output:
	// jaccard: 0.60
	// edit distance: 3
}
