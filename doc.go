// Package geoserp is a full reproduction of "Location, Location, Location:
// The Impact of Geolocation on Web Search Personalization" (Kliman-Silver,
// Hannák, Lazer, Wilson, Mislove — IMC 2015) as a reusable Go library.
//
// The paper measured how Google Search personalizes mobile results by
// GPS coordinate. This library contains both halves of that experiment:
//
//   - A synthetic personalized search engine (internal/engine) serving
//     mobile card-style result pages over real HTTP, with GPS-first
//     location resolution, Maps and News meta-cards, per-IP rate limiting,
//     ten-minute search-history personalization, A/B-bucket noise, and
//     multi-datacenter replicas — every mechanism the paper observed or
//     controlled for.
//
//   - The measurement methodology: a machine pool in one /24, scripted
//     browsers with spoofed Geolocation coordinates and cleared cookies,
//     lock-step treatment/control scheduling, Jaccard/edit-distance
//     comparison, and the analysis that regenerates every table and
//     figure in the paper's evaluation.
//
// The Study type wires everything together:
//
//	study, err := geoserp.NewStudy(geoserp.DefaultStudyConfig())
//	if err != nil { ... }
//	defer study.Close()
//	obs, err := study.RunPhases(study.StudyPhases())
//	ds, err := geoserp.NewDataset(obs)
//	for _, cell := range ds.PersonalizationByGranularity() { ... }
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every figure.
package geoserp
