package lint

import "go/ast"

// wallclockForbidden are the package-level time functions that read or
// schedule against the process wall clock. Anything touching them outside
// internal/simclock bypasses the injected Clock, so virtual-time campaigns
// stop being deterministic.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

var wallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Sleep/Since/After/Tick and friends outside internal/simclock; " +
		"all time must flow through an injected simclock.Clock",
	SkipTestFiles: true,
	run:           runWallclock,
}

func runWallclock(p *Pass, f *ast.File) {
	// simclock is the one place allowed to touch real time: Wall() is the
	// sanctioned bridge, and callers inject it as a Clock.
	if p.InScope("internal/simclock") {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, ok := p.resolvePkgSel(f, sel)
		if !ok || path != "time" || !wallclockForbidden[name] {
			return true
		}
		p.Reportf(sel.Pos(),
			"inject a simclock.Clock (simclock.Wall() at the process edge) so virtual-time runs stay deterministic",
			"time.%s reads the process wall clock outside internal/simclock", name)
		return true
	})
}
