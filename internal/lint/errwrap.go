package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// errwrapScoped are the module-relative packages whose errors feed retry
// classification (browser.IsTransient walks the %w chain via errors.As).
// An error formatted with %v or %s inside them is flattened to text: the
// transient marker is lost, a retryable 503 becomes permanent, and the
// campaign's failure budget is charged for noise that one retry would
// have absorbed.
var errwrapScoped = []string{
	"internal/browser",
	"internal/crawler",
}

var errwrapAnalyzer = &Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf in retry-classified packages must wrap error operands with %w " +
		"so transient/permanent classification survives",
	run: runErrwrap,
}

func runErrwrap(p *Pass, f *ast.File) {
	inScope := false
	for _, rel := range errwrapScoped {
		if p.InScope(rel) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, ok := p.resolvePkgSel(f, sel)
		if !ok || path != "fmt" || name != "Errorf" || len(call.Args) < 2 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		verbs := formatVerbs(format)
		for i, verb := range verbs {
			argIdx := 1 + i
			if argIdx >= len(call.Args) || verb == 'w' {
				continue
			}
			arg := call.Args[argIdx]
			if !p.isErrorArg(arg) {
				continue
			}
			p.Reportf(arg.Pos(),
				"use %w so errors.Is/As — and the browser's transient/permanent retry classification — still see the cause",
				"error operand formatted with %%%c loses the wrapped cause", verb)
		}
		return true
	})
}

// formatVerbs returns the verb rune for each operand the format string
// consumes, in order ('*' width/precision operands appear as '*').
func formatVerbs(format string) []rune {
	var verbs []rune
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Flags.
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// Width.
		for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
				if format[i] == '*' {
					verbs = append(verbs, '*')
				}
				i++
			}
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
			i++
		}
	}
	return verbs
}

// isErrorArg reports whether arg carries an error. Typed mode asks the
// type checker; syntactic mode falls back to the naming convention (an
// identifier or selector called err / *Err).
func (p *Pass) isErrorArg(arg ast.Expr) bool {
	if p.Info != nil {
		tv, ok := p.Info.Types[arg]
		if !ok || tv.Type == nil {
			return false
		}
		errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
		if !ok {
			return false
		}
		return types.Implements(tv.Type, errType)
	}
	name := ""
	switch e := arg.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	return name == "err" || name == "error" ||
		strings.HasSuffix(name, "Err") || strings.HasSuffix(name, "err")
}
