package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Options configures a typed analysis run over the module.
type Options struct {
	// Dir is where `go list` runs ("" = current directory; must be inside
	// the module).
	Dir string
	// Patterns are go package patterns; default ["./..."].
	Patterns []string
	// SkipTests drops _test.go files from the run entirely. By default
	// test files are analyzed syntactically with the analyzers that apply
	// to them (detrand, rngkey, errwrap).
	SkipTests bool
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	Standard     bool
	DepOnly      bool
	Module       *struct{ Path string }
}

// Run loads every package matching opts.Patterns with full type
// information — export data for all dependencies comes from
// `go list -export`, so no source re-checking of the stdlib is needed —
// runs the analyzer suite, and returns the surviving diagnostics.
func Run(opts Options) ([]Diagnostic, error) {
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	pkgs, err := goList(opts.Dir, opts.Patterns)
	if err != nil {
		return nil, err
	}

	exportFor := make(map[string]string, len(pkgs))
	var targets []*listedPkg
	module := ""
	for _, pk := range pkgs {
		if pk.Export != "" {
			exportFor[pk.ImportPath] = pk.Export
		}
		if pk.Standard || pk.DepOnly || pk.Module == nil {
			continue
		}
		targets = append(targets, pk)
		if module == "" {
			module = pk.Module.Path
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", opts.Patterns)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})
	runner := NewRunner(module, fset)

	for _, pk := range targets {
		files, err := parsePkgFiles(fset, pk.Dir, pk.GoFiles)
		if err != nil {
			return nil, err
		}
		if len(files) > 0 {
			info := &types.Info{
				Types: make(map[ast.Expr]types.TypeAndValue),
				Uses:  make(map[*ast.Ident]types.Object),
				Defs:  make(map[*ast.Ident]types.Object),
			}
			cfg := types.Config{Importer: imp}
			if _, err := cfg.Check(pk.ImportPath, fset, files, info); err != nil {
				return nil, fmt.Errorf("lint: type-check %s: %w", pk.ImportPath, err)
			}
			runner.CheckPackage(pk.ImportPath, files, info)
		}
		if opts.SkipTests {
			continue
		}
		// Test files are analyzed syntactically: they are not part of the
		// export graph, and the analyzers that apply to them resolve
		// imports from the file's own import table.
		testFiles, err := parsePkgFiles(fset, pk.Dir, append(append([]string{}, pk.TestGoFiles...), pk.XTestGoFiles...))
		if err != nil {
			return nil, err
		}
		if len(testFiles) > 0 {
			runner.CheckPackage(pk.ImportPath, testFiles, nil)
		}
	}
	return runner.Finish(), nil
}

// goList shells out to `go list -export -deps -json`, which both resolves
// the module's package graph and materializes export data for every
// dependency (stdlib included) in the build cache.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, strings.TrimSpace(stderr.String()))
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listedPkg
	for {
		var pk listedPkg
		if err := dec.Decode(&pk); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, &pk)
	}
	return pkgs, nil
}

// parsePkgFiles parses the named files (with comments, for //lint:allow).
func parsePkgFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// ParseDir parses every .go file in dir syntactically (no type-check) —
// the hermetic path used by the golden-file harness.
func ParseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return parsePkgFiles(fset, dir, names)
}
