package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The repo parse is cached across iterations: the benchmark isolates
// analysis cost (the dataflow walks, the allow audit, the cross-package
// finish passes), which is the part that grows as analyzers are added.
// Parsing is the same for any suite size and is measured by the compiler
// anyway.
var (
	benchRepoOnce sync.Once
	benchRepoFset *token.FileSet
	benchRepoPkgs map[string][]*ast.File // import path -> parsed files
	benchRepoErr  error
)

func loadBenchRepo() {
	benchRepoFset = token.NewFileSet()
	benchRepoPkgs = make(map[string][]*ast.File)
	root := filepath.Join("..", "..")
	benchRepoErr = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			if strings.HasPrefix(d.Name(), ".") && d.Name() != "." && d.Name() != ".." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(benchRepoFset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		rel, rerr := filepath.Rel(root, filepath.Dir(path))
		if rerr != nil {
			return rerr
		}
		imp := "geoserp"
		if rel != "." {
			imp = "geoserp/" + filepath.ToSlash(rel)
		}
		benchRepoPkgs[imp] = append(benchRepoPkgs[imp], f)
		return nil
	})
}

// BenchmarkLintRepo times one full nine-analyzer pass over every Go file
// in the repository in syntactic mode, pinning linter runtime in
// BENCH_core.json so an analyzer that regresses from linear scans to
// accidental quadratic path enumeration fails the bench-check gate.
func BenchmarkLintRepo(b *testing.B) {
	benchRepoOnce.Do(loadBenchRepo)
	if benchRepoErr != nil {
		b.Fatalf("load repo: %v", benchRepoErr)
	}
	paths := make([]string, 0, len(benchRepoPkgs))
	for p := range benchRepoPkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRunner("geoserp", benchRepoFset)
		for _, p := range paths {
			r.CheckPackage(p, benchRepoPkgs[p], nil)
		}
		_ = r.Finish()
	}
}
