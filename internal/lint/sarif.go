package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// This file renders diagnostics in the machine-readable formats behind
// `geoserplint -format`: a flat JSON array for scripting, and SARIF 2.1.0
// for code-scanning pipelines (CI uploads lint.sarif so findings annotate
// the changed lines of a pull request instead of scrolling by in a log).
// Only the subset of SARIF the consumers actually read is emitted —
// tool.driver.rules, results with ruleId/level/message/location — but
// every emitted field follows the 2.1.0 schema so strict validators pass.

// sarifSchema and sarifVersion pin the emitted log format.
const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

// sarifLog is the top-level SARIF document.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifRules returns the rule table: the analyzer suite plus the "allow"
// pseudo-rule that the stale-annotation audit reports under.
func sarifRules() []sarifRule {
	var rules []sarifRule
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	rules = append(rules, sarifRule{
		ID: "allow",
		ShortDescription: sarifMessage{Text: "//lint:allow annotations must be well-formed " +
			"and must each suppress a real diagnostic"},
	})
	return rules
}

// WriteSARIF writes diags to w as a SARIF 2.1.0 log. File paths are made
// relative to root (the repo checkout) so the log is portable across
// machines and uploadable to code-scanning services; paths outside root
// are kept as-is.
func WriteSARIF(w io.Writer, diags []Diagnostic, root string) error {
	rules := sarifRules()
	index := make(map[string]int, len(rules))
	for i, r := range rules {
		index[r.ID] = i
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		msg := d.Message
		if d.Hint != "" {
			msg += " (" + d.Hint + ")"
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(d.Pos.Filename, root),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "geoserplint",
				InformationURI: "https://example.invalid/geoserp/docs/LINTING.md",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI renders filename as a forward-slash URI relative to root.
func sarifURI(filename, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			filename = rel
		}
	}
	return filepath.ToSlash(filename)
}

// jsonDiagnostic is the flat shape behind `geoserplint -format json`.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Hint     string `json:"hint,omitempty"`
}

// WriteJSON writes diags to w as a JSON array (never null: an empty run
// emits []). Paths are made root-relative like WriteSARIF.
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     sarifURI(d.Pos.Filename, root),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Hint:     d.Hint,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
