package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"sort"
	"strconv"
)

// rngkey checks that no two detrand.NewKeyed call sites share the same
// constant key prefix. NewKeyed(seed, parts...) seeds a stream from a hash
// of its parts; two sites whose leading constant parts coincide can
// collide on their dynamic remainder, correlating noise streams the
// analysis treats as independent (a Maps-presence flip and a news-rotation
// draw moving in lockstep would masquerade as personalization).
//
// The leading run of constant string arguments is the stream name; sites
// with no constant prefix (fully dynamic or spread calls) are skipped.
var rngkeyAnalyzer = &Analyzer{
	Name: "rngkey",
	Doc: "rejects duplicate constant key prefixes across detrand.NewKeyed call sites; " +
		"a collision would correlate supposedly independent noise streams",
	run:    runRngkey,
	finish: finishRngkey,
}

// rngSite is one recorded NewKeyed call site.
type rngSite struct {
	pos token.Position
}

func runRngkey(p *Pass, f *ast.File) {
	detrandPath := p.Module + "/internal/detrand"
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, ok := p.resolvePkgSel(f, sel)
		if !ok || path != detrandPath || name != "NewKeyed" {
			return true
		}
		prefix := p.constPrefix(call)
		if prefix == "" {
			return true
		}
		p.runner.rngSites[prefix] = append(p.runner.rngSites[prefix],
			rngSite{pos: p.Fset.Position(call.Pos())})
		return true
	})
}

// constPrefix joins the leading constant string arguments of a NewKeyed
// call (after the seed) with the same 0x1f separator detrand.Hash uses, so
// prefixes compare exactly as the hash would see them.
func (p *Pass) constPrefix(call *ast.CallExpr) string {
	if len(call.Args) < 2 {
		return ""
	}
	var parts []string
	for _, arg := range call.Args[1:] {
		s, ok := p.constString(arg)
		if !ok {
			break
		}
		parts = append(parts, s)
	}
	if len(parts) == 0 {
		return ""
	}
	out := ""
	for i, s := range parts {
		if i > 0 {
			out += "\x1f"
		}
		out += s
	}
	return out
}

// constString evaluates arg as a compile-time string constant. Typed mode
// sees named constants and concatenations; syntactic mode only literals.
func (p *Pass) constString(arg ast.Expr) (string, bool) {
	if p.Info != nil {
		if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
		return "", false
	}
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// finishRngkey compares the collected sites: the first (in position order)
// owns its prefix; every later site sharing it is flagged.
func finishRngkey(r *Runner) {
	for prefix, sites := range r.rngSites {
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool {
			a, b := sites[i].pos, sites[j].pos
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Column < b.Column
		})
		first := sites[0].pos
		for _, s := range sites[1:] {
			r.report(Diagnostic{
				Pos:      s.pos,
				Analyzer: "rngkey",
				Message: fmt.Sprintf("detrand.NewKeyed key prefix %s duplicates the stream opened at %s:%d",
					printableKey(prefix), first.Filename, first.Line),
				Hint: "give each call site a unique leading key string so noise streams stay independent",
			})
		}
	}
}

// printableKey renders a prefix for diagnostics, showing the separator
// between parts as '/'.
func printableKey(prefix string) string {
	out := ""
	for _, r := range prefix {
		if r == '\x1f' {
			out += "/"
		} else {
			out += string(r)
		}
	}
	return strconv.Quote(out)
}
