package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicmix checks that a struct field accessed through sync/atomic
// anywhere in the module is never read or written non-atomically anywhere
// else. Mixing the two is not a stylistic wart: the Go memory model gives
// a plain load racing an atomic store undefined ordering, the race
// detector flags it, and on the cluster's hot paths (breaker trip
// counters, span ring cursors, chaos attempt maps) a torn or stale read
// silently corrupts the very counters the determinism scorecard audits.
//
// The analyzer records, per field, every `&x.f` passed to a sync/atomic
// function and every plain selector access `x.f` elsewhere, then joins
// them module-wide in a finish pass (like rngkey's collision check): any
// field with both kinds of access produces one diagnostic per plain
// access. Composite-literal initialization (`T{f: 0}`) is not flagged —
// zero-init before a value is published is idiomatic. Fields of the
// atomic.Int64-family types are immune by construction (no plain access
// compiles) and never appear. Test files are exempt: local counters
// synchronized by WaitGroup joins are a test idiom, not a hot-path hazard.
var atomicmixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc: "a field accessed via sync/atomic must be accessed atomically everywhere; a " +
		"mixed plain read/write races and the memory model guarantees nothing",
	SkipTestFiles: true,
	run:           runAtomicmix,
	finish:        finishAtomicmix,
}

const atomicmixHint = "use the matching sync/atomic Load/Store at this site, or migrate " +
	"the field to atomic.Int64-style types so plain access cannot compile"

// atomicAccess is one recorded access to a tracked field.
type atomicAccess struct {
	pos   token.Position
	field string // display name for diagnostics
}

func runAtomicmix(p *Pass, f *ast.File) {
	// First pass: record fields whose address is taken inside a
	// sync/atomic call, and remember those selector nodes so the plain
	// pass skips them.
	inAtomic := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, _, ok := p.resolvePkgSel(f, sel)
		if !ok || path != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			fsel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			key, name, ok := p.fieldKey(fsel)
			if !ok {
				continue
			}
			inAtomic[fsel] = true
			if p.runner.atomicFields[key] == nil {
				p.runner.atomicFields[key] = &atomicFieldState{field: name}
			}
			st := p.runner.atomicFields[key]
			if st.atomicAt.Filename == "" {
				st.atomicAt = p.Fset.Position(fsel.Pos())
			}
		}
		return true
	})
	// Second pass: record every other selector access to a struct field.
	ast.Inspect(f, func(n ast.Node) bool {
		fsel, ok := n.(*ast.SelectorExpr)
		if !ok || inAtomic[fsel] {
			return true
		}
		key, name, ok := p.fieldKey(fsel)
		if !ok {
			return true
		}
		if p.runner.atomicFields[key] == nil {
			p.runner.atomicFields[key] = &atomicFieldState{field: name}
		}
		p.runner.atomicFields[key].plain = append(p.runner.atomicFields[key].plain,
			atomicAccess{pos: p.Fset.Position(fsel.Pos()), field: name})
		return true
	})
}

// atomicFieldState accumulates, per field, where it was touched.
type atomicFieldState struct {
	field    string
	atomicAt token.Position // zero Filename: never accessed atomically
	plain    []atomicAccess
}

// fieldKey identifies the struct field a selector resolves to. Typed mode
// keys on the field object's declaration position (unique module-wide);
// syntactic mode falls back to package path + field name, which is exact
// enough for the hermetic golden fixtures.
func (p *Pass) fieldKey(sel *ast.SelectorExpr) (key, name string, ok bool) {
	if p.Info != nil {
		selection, found := p.Info.Selections[sel]
		if !found || selection.Kind() != types.FieldVal {
			return "", "", false
		}
		obj := selection.Obj()
		pos := p.Fset.Position(obj.Pos())
		return fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column),
			fieldDisplayName(obj, selection), true
	}
	// Syntactic mode: skip package selectors (pkg.Name) and method calls;
	// everything else is treated as a candidate field access.
	if id, isIdent := sel.X.(*ast.Ident); isIdent {
		if _, isPkg := p.importTable(fileOf(p, sel))[id.Name]; isPkg {
			return "", "", false
		}
	}
	return p.Path + ":" + sel.Sel.Name, sel.Sel.Name, true
}

// fieldDisplayName renders "Type.field" for diagnostics.
func fieldDisplayName(obj types.Object, selection *types.Selection) string {
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	if named, isNamed := recv.(*types.Named); isNamed {
		return named.Obj().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// fileOf finds the *ast.File in the pass containing n.
func fileOf(p *Pass, n ast.Node) *ast.File {
	for _, f := range p.Files {
		if f.Pos() <= n.Pos() && n.Pos() <= f.End() {
			return f
		}
	}
	return p.Files[0]
}

// finishAtomicmix joins the module-wide record: every plain access to a
// field that is also accessed atomically is a diagnostic.
func finishAtomicmix(r *Runner) {
	keys := make([]string, 0, len(r.atomicFields))
	for k := range r.atomicFields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := r.atomicFields[k]
		if st.atomicAt.Filename == "" || len(st.plain) == 0 {
			continue
		}
		for _, acc := range st.plain {
			r.report(Diagnostic{
				Pos:      acc.pos,
				Analyzer: "atomicmix",
				Message: fmt.Sprintf("plain access to field %q, which is accessed atomically at %s:%d",
					acc.field, st.atomicAt.Filename, st.atomicAt.Line),
				Hint: atomicmixHint,
			})
		}
	}
}
