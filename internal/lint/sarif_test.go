package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "/repo/internal/engine/engine.go", Line: 42, Column: 7},
			Analyzer: "wallclock",
			Message:  "call to time.Now in deterministic package",
			Hint:     "inject a simclock.Clock",
		},
		{
			Pos:      token.Position{Filename: "/repo/internal/router/shard.go", Line: 9, Column: 2},
			Analyzer: "maporder",
			Message:  `append to "keys" inside range over map without a deterministic sort after the loop`,
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/x.go", Line: 1, Column: 1},
			Analyzer: "allow",
			Message:  "unused //lint:allow wallclock (it suppresses no diagnostic)",
		},
	}
}

// TestWriteSARIF validates the emitted log against the structural subset
// of the SARIF 2.1.0 schema that code-scanning consumers require:
// version/$schema, a single run, a rule table covering every analyzer,
// and results whose ruleId/ruleIndex/location all resolve.
func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleDiags(), "/repo"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a 2.1.0 schema reference", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "geoserplint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}

	// The rule table must cover the full suite plus the allow audit.
	ruleIdx := make(map[string]int)
	for i, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %q has no shortDescription", r.ID)
		}
		ruleIdx[r.ID] = i
	}
	for _, name := range append(AnalyzerNames(), "allow") {
		if _, ok := ruleIdx[name]; !ok {
			t.Errorf("rule table missing analyzer %q", name)
		}
	}

	if len(run.Results) != len(sampleDiags()) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(sampleDiags()))
	}
	for i, res := range run.Results {
		idx, known := ruleIdx[res.RuleID]
		if !known {
			t.Errorf("result %d: ruleId %q not in rule table", i, res.RuleID)
		}
		if res.RuleIndex != idx {
			t.Errorf("result %d: ruleIndex = %d, want %d", i, res.RuleIndex, idx)
		}
		if res.Level != "error" {
			t.Errorf("result %d: level = %q", i, res.Level)
		}
		if res.Message.Text == "" {
			t.Errorf("result %d: empty message", i)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d: locations = %d, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.Region.StartLine <= 0 {
			t.Errorf("result %d: startLine = %d", i, loc.Region.StartLine)
		}
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("result %d: uriBaseId = %q", i, loc.ArtifactLocation.URIBaseID)
		}
	}

	// Paths under root are relativized with forward slashes; paths outside
	// root are preserved.
	if uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/engine/engine.go" {
		t.Errorf("in-root uri = %q, want internal/engine/engine.go", uri)
	}
	if uri := run.Results[2].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/elsewhere/x.go" {
		t.Errorf("out-of-root uri = %q, want /elsewhere/x.go", uri)
	}

	// The hint must travel with the message — it is the fix recipe.
	if msg := run.Results[0].Message.Text; !strings.Contains(msg, "simclock.Clock") {
		t.Errorf("hint missing from message: %q", msg)
	}
}

// TestWriteSARIFEmpty checks a clean run still emits a schema-valid log
// (results: [] — not null, which strict consumers reject).
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	runs := log["runs"].([]any)
	results, ok := runs[0].(map[string]any)["results"]
	if !ok || results == nil {
		t.Fatalf("results must be [] on a clean run, got %v", results)
	}
}

// TestWriteJSON checks the flat array format, including the never-null
// empty case scripting loops depend on.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleDiags(), "/repo"); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out []jsonDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
	if out[0].File != "internal/engine/engine.go" || out[0].Line != 42 || out[0].Analyzer != "wallclock" {
		t.Errorf("first diagnostic mangled: %+v", out[0])
	}

	buf.Reset()
	if err := WriteJSON(&buf, nil, ""); err != nil {
		t.Fatalf("WriteJSON(empty): %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty run = %q, want []", got)
	}
}
