package lint

import "go/ast"

// This file is the package's small intraprocedural dataflow framework:
// statement walking, path discovery, and two bounded control-flow
// traversals shared by the flow-sensitive analyzers. spanend ("every
// started span is ended on all paths") was its first client; lockhold
// ("every Lock is unlocked on all paths, and nothing blocking happens in
// between") reuses the same machinery with different hooks, and future
// taint-style analyzers can parameterize the same walks.
//
// The model is deliberately syntactic: a "path" is a chain of statement
// list suffixes (the continuation after a statement of interest), and the
// evaluators interpret branching statements — if/else, switch, select,
// loops — conservatively, with a budget bounding the branch-product
// blowup. An exhausted budget concedes permissively (no diagnostic)
// rather than false-positive.

// walkStmts visits every statement in stmts and its nested statement
// lists, in source order, without descending into function literals.
func walkStmts(stmts []ast.Stmt, fn func(ast.Stmt)) {
	for _, s := range stmts {
		fn(s)
		for _, sub := range subLists(s) {
			walkStmts(sub.list, fn)
		}
	}
}

// stmtList is one nested statement list; loop marks loop bodies, where
// falling off the end re-enters the loop rather than the enclosing list.
type stmtList struct {
	list []ast.Stmt
	loop bool
}

// subLists returns the statement lists nested directly inside s.
func subLists(s ast.Stmt) []stmtList {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return []stmtList{{st.List, false}}
	case *ast.IfStmt:
		out := []stmtList{{st.Body.List, false}}
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			out = append(out, stmtList{e.List, false})
		case *ast.IfStmt:
			out = append(out, stmtList{[]ast.Stmt{e}, false})
		}
		return out
	case *ast.ForStmt:
		return []stmtList{{st.Body.List, true}}
	case *ast.RangeStmt:
		return []stmtList{{st.Body.List, true}}
	case *ast.SwitchStmt:
		return caseLists(st.Body)
	case *ast.TypeSwitchStmt:
		return caseLists(st.Body)
	case *ast.SelectStmt:
		var out []stmtList
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, stmtList{cc.Body, false})
			}
		}
		return out
	case *ast.LabeledStmt:
		return []stmtList{{[]ast.Stmt{st.Stmt}, false}}
	}
	return nil
}

func caseLists(body *ast.BlockStmt) []stmtList {
	var out []stmtList
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, stmtList{cc.Body, false})
		}
	}
	return out
}

// pathFrame locates one level of the nesting chain from a function body
// down to a target statement.
type pathFrame struct {
	list []ast.Stmt
	idx  int
	loop bool
}

// findStmtPath returns the outermost-first chain of statement lists
// leading to target.
func findStmtPath(stmts []ast.Stmt, target ast.Stmt, loop bool) ([]pathFrame, bool) {
	for i, s := range stmts {
		if s == target {
			return []pathFrame{{stmts, i, loop}}, true
		}
		for _, sub := range subLists(s) {
			if chain, ok := findStmtPath(sub.list, target, sub.loop); ok {
				return append([]pathFrame{{stmts, i, loop}}, chain...), true
			}
		}
	}
	return nil, false
}

// continuation builds the statement segments executed after the target, in
// order: the remainder of each enclosing list, innermost first, stopping
// at the first loop-body boundary (the iteration ends there).
func continuation(path []pathFrame) [][]ast.Stmt {
	var segs [][]ast.Stmt
	for i := len(path) - 1; i >= 0; i-- {
		segs = append(segs, path[i].list[path[i].idx+1:])
		if path[i].loop {
			break
		}
	}
	return segs
}

func prepend(head []ast.Stmt, tail [][]ast.Stmt) [][]ast.Stmt {
	return append([][]ast.Stmt{head}, tail...)
}

// terminates reports whether call never returns: panic, os.Exit, or a
// Fatal-family logger call.
func terminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln":
			return true
		}
	}
	return false
}

// ---- all-paths obligation evaluation ----

// pathEval checks an "obligation" — some call that must happen before the
// region of interest is left on every control-flow path. The hooks define
// what discharges it:
//
//   - satisfy: a plain call statement that discharges the obligation
//     (v.End(), mu.Unlock()).
//   - deferSatisfy: a deferred call that discharges it at function exit
//     (covers `defer v.End()` and the `defer func() { v.End() }()` idiom
//     when the hook chooses to scan closures).
//   - guard: an optional if-condition under which only the then-branch
//     needs checking (`if v != nil { ... v.End() }`: End is a nil-safe
//     no-op on the else path).
//
// The budget bounds the branch-product blowup; exhausted budgets concede
// permissively.
type pathEval struct {
	budget       int
	satisfy      func(call *ast.CallExpr) bool
	deferSatisfy func(call *ast.CallExpr) bool
	guard        func(cond ast.Expr) bool
}

// allPathsSatisfy reports whether every path through segs discharges the
// obligation before returning, branching out, or falling off the end.
func (e *pathEval) allPathsSatisfy(segs [][]ast.Stmt) bool {
	if e.budget <= 0 {
		return true // give up permissively rather than false-positive
	}
	e.budget--
	for len(segs) > 0 && len(segs[0]) == 0 {
		segs = segs[1:]
	}
	if len(segs) == 0 {
		return false // reached the end of the region without discharging
	}
	s := segs[0][0]
	tail := append([][]ast.Stmt{segs[0][1:]}, segs[1:]...)
	switch st := s.(type) {
	case *ast.DeferStmt:
		if e.deferSatisfy != nil && e.deferSatisfy(st.Call) {
			return true
		}
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if e.satisfy(call) {
				return true
			}
			if terminates(call) {
				return true // panic/exit: the process unwinds, nothing leaks
			}
		}
	case *ast.ReturnStmt:
		return false
	case *ast.BranchStmt:
		// break/continue/goto leave the region; conservatively a miss.
		// (fallthrough continues into the next case, approximated as the
		// statements after the switch.)
		if st.Tok.String() == "fallthrough" {
			return e.allPathsSatisfy(tail)
		}
		return false
	case *ast.IfStmt:
		thenOK := e.allPathsSatisfy(prepend(st.Body.List, tail))
		if e.guard != nil && e.guard(st.Cond) {
			// On the guard's else path the obligation is vacuous.
			return thenOK
		}
		var elseOK bool
		switch el := st.Else.(type) {
		case *ast.BlockStmt:
			elseOK = e.allPathsSatisfy(prepend(el.List, tail))
		case *ast.IfStmt:
			elseOK = e.allPathsSatisfy(prepend([]ast.Stmt{el}, tail))
		default:
			elseOK = e.allPathsSatisfy(tail)
		}
		return thenOK && elseOK
	case *ast.BlockStmt:
		return e.allPathsSatisfy(prepend(st.List, tail))
	case *ast.LabeledStmt:
		return e.allPathsSatisfy(prepend([]ast.Stmt{st.Stmt}, tail))
	case *ast.ForStmt:
		if st.Cond == nil {
			// for {}: the tail is unreachable except via break, so the
			// body itself must discharge the obligation on all paths.
			return e.allPathsSatisfy([][]ast.Stmt{st.Body.List})
		}
		return e.allPathsSatisfy(tail) // body may run zero times
	case *ast.RangeStmt:
		return e.allPathsSatisfy(tail)
	case *ast.SwitchStmt:
		return e.caseClausesSatisfy(st.Body, tail)
	case *ast.TypeSwitchStmt:
		return e.caseClausesSatisfy(st.Body, tail)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if !e.allPathsSatisfy(prepend(cc.Body, tail)) {
				return false
			}
		}
		if len(st.Body.List) == 0 {
			return true // select{} blocks forever
		}
		return true
	}
	return e.allPathsSatisfy(tail)
}

// caseClausesSatisfy requires every case body (and, without a default, the
// fall-past path) to discharge the obligation.
func (e *pathEval) caseClausesSatisfy(body *ast.BlockStmt, tail [][]ast.Stmt) bool {
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		if !e.allPathsSatisfy(prepend(cc.Body, tail)) {
			return false
		}
	}
	if !hasDefault {
		return e.allPathsSatisfy(tail)
	}
	return true
}

// ---- bounded region scan ----

// regionScan enumerates the statements reachable inside a region — from a
// statement of interest up to, on each path, the first statement for which
// stop returns true (exclusive). Branches are all explored; loop bodies
// are entered once; function literals are not descended into (their bodies
// run at some other time). visit sees each reachable statement at most
// once per call site, so callers flagging findings should dedupe by
// position if the same statement is reachable via several paths.
type regionScan struct {
	budget int
	stop   func(ast.Stmt) bool
	visit  func(ast.Stmt)
	seen   map[ast.Stmt]bool
}

func newRegionScan(stop func(ast.Stmt) bool, visit func(ast.Stmt)) *regionScan {
	return &regionScan{budget: 100000, stop: stop, visit: visit, seen: make(map[ast.Stmt]bool)}
}

// scan walks the continuation segments.
func (r *regionScan) scan(segs [][]ast.Stmt) {
	if r.budget <= 0 {
		return
	}
	r.budget--
	for len(segs) > 0 && len(segs[0]) == 0 {
		segs = segs[1:]
	}
	if len(segs) == 0 {
		return
	}
	s := segs[0][0]
	tail := append([][]ast.Stmt{segs[0][1:]}, segs[1:]...)
	if r.stop(s) {
		return // this path's region ends here
	}
	if !r.seen[s] {
		r.seen[s] = true
		r.visit(s)
	}
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return
	case *ast.BranchStmt:
		if st.Tok.String() == "fallthrough" {
			r.scan(tail)
		}
		return
	case *ast.IfStmt:
		r.scan(prepend(st.Body.List, tail))
		switch el := st.Else.(type) {
		case *ast.BlockStmt:
			r.scan(prepend(el.List, tail))
		case *ast.IfStmt:
			r.scan(prepend([]ast.Stmt{el}, tail))
		default:
			r.scan(tail)
		}
		return
	case *ast.BlockStmt:
		r.scan(prepend(st.List, tail))
		return
	case *ast.LabeledStmt:
		r.scan(prepend([]ast.Stmt{st.Stmt}, tail))
		return
	case *ast.ForStmt:
		// Visit the body once, then the tail (the loop may run zero times).
		r.scan(prepend(st.Body.List, tail))
		r.scan(tail)
		return
	case *ast.RangeStmt:
		r.scan(prepend(st.Body.List, tail))
		r.scan(tail)
		return
	case *ast.SwitchStmt:
		r.scanCases(st.Body, tail)
		return
	case *ast.TypeSwitchStmt:
		r.scanCases(st.Body, tail)
		return
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				r.scan(prepend(cc.Body, tail))
			}
		}
		return
	}
	r.scan(tail)
}

func (r *regionScan) scanCases(body *ast.BlockStmt, tail [][]ast.Stmt) {
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		r.scan(prepend(cc.Body, tail))
	}
	if !hasDefault {
		r.scan(tail)
	}
}
