package lint

import (
	"go/ast"
	"go/types"
)

// spanend checks that every telemetry span started in a function is ended
// on all paths through that function. A leaked span never reaches the
// SpanRecorder ring: its pooled object is lost, the recorded timeline
// silently omits the operation, and the byte-identical Chrome-trace
// guarantee quietly degrades to "byte-identical minus whatever leaked".
//
// A "start" is a call to StartSpan/startSpan (context helpers returning
// (ctx, *Span)) or StartChild/StartRoot/StartRootSeq/StartRemoteChild
// (returning *Span); in typed mode the result type is verified to be
// *telemetry.Span. Spans whose ownership escapes the function — returned,
// passed as an argument, stored in a field, or captured by a closure — are
// the caller's (or the closure's) responsibility and are skipped. For
// spans that stay local, the analyzer walks every control-flow path from
// the start statement (via the shared pathEval in flow.go): a path that
// returns, breaks, or falls off the end of a loop body before v.End() (or
// after a `defer v.End()`) is a diagnostic. `if v != nil { ... v.End() }`
// guards count as ending, since End is nil-receiver safe.
var spanendAnalyzer = &Analyzer{
	Name: "spanend",
	Doc: "every started telemetry span must be ended on all paths in the same function " +
		"(deferred or explicit), or the recorded timeline silently loses operations",
	SkipTestFiles: true,
	run:           runSpanend,
}

// spanStartFuncs maps start-call names to the index of the *Span result.
var spanStartFuncs = map[string]int{
	"StartSpan":        1,
	"startSpan":        1,
	"StartChild":       0,
	"StartRoot":        0,
	"StartRootSeq":     0,
	"StartRemoteChild": 0,
}

const spanendHint = "defer the span's End() right after the start, or end it before every return"

func runSpanend(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				checkSpanBody(p, fn.Body)
			}
		case *ast.FuncLit:
			checkSpanBody(p, fn.Body)
		}
		return true
	})
}

// checkSpanBody analyzes one function body. Nested function literals are
// skipped here; the outer Inspect visits them as functions of their own.
func checkSpanBody(p *Pass, body *ast.BlockStmt) {
	walkStmts(body.List, func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if _, isStart := spanStartCall(p, call); isStart {
					p.Reportf(call.Pos(), spanendHint,
						"started span is discarded; it can never be ended")
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			idx, isStart := spanStartCall(p, call)
			if !isStart || idx >= len(st.Lhs) {
				return
			}
			target := st.Lhs[idx]
			if len(st.Lhs) == 1 {
				target = st.Lhs[0]
			}
			checkSpanVar(p, body, s, call, target)
		}
	})
}

// checkSpanVar applies the leak rules to one started span bound to target.
func checkSpanVar(p *Pass, body *ast.BlockStmt, start ast.Stmt, call *ast.CallExpr, target ast.Expr) {
	id, ok := target.(*ast.Ident)
	if !ok {
		return // stored in a field or element: ownership escapes
	}
	if id.Name == "_" {
		p.Reportf(call.Pos(), spanendHint,
			"started span is assigned to _; it can never be ended")
		return
	}
	use := scanSpanUses(body, start, id.Name)
	if use.escapes {
		return // returned, passed along, or captured: caller's responsibility
	}
	if !use.ends {
		p.Reportf(call.Pos(), spanendHint, "span %q is never ended", id.Name)
		return
	}
	path, found := findStmtPath(body.List, start, false)
	if !found {
		return
	}
	v := id.Name
	ev := &pathEval{
		budget:  100000,
		satisfy: func(c *ast.CallExpr) bool { return isEndCallOn(c, v) },
		deferSatisfy: func(c *ast.CallExpr) bool {
			return isEndCallOn(c, v) || deferredClosureEnds(c, v)
		},
		guard: func(cond ast.Expr) bool { return isNilGuard(cond, v) },
	}
	if !ev.allPathsSatisfy(continuation(path)) {
		p.Reportf(call.Pos(), spanendHint, "span %q is not ended on all paths", v)
	}
}

// spanUses summarizes how a span variable is used after its start.
type spanUses struct {
	ends    bool // some v.End() call exists
	escapes bool // v leaves the function's direct control
}

// scanSpanUses classifies every use of name v in body. Method calls on v,
// nil comparisons, and reassignments keep the span local; anything else —
// argument positions, returns, composite literals, sends, closures —
// counts as an escape.
func scanSpanUses(body *ast.BlockStmt, start ast.Stmt, v string) spanUses {
	var u spanUses
	var visit func(n ast.Node, inClosure bool)
	visit = func(n ast.Node, inClosure bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			if lit, ok := c.(*ast.FuncLit); ok && !inClosure {
				visit(lit.Body, true)
				return false
			}
			switch e := c.(type) {
			case *ast.CallExpr:
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
					if x, ok := sel.X.(*ast.Ident); ok && x.Name == v {
						if sel.Sel.Name == "End" {
							u.ends = true
							if inClosure {
								u.escapes = true
							}
						}
						// Receiver position: walk only the arguments.
						for _, a := range e.Args {
							visit(a, inClosure)
						}
						return false
					}
				}
				for _, a := range e.Args {
					if id, ok := a.(*ast.Ident); ok && id.Name == v {
						u.escapes = true
					}
				}
			case *ast.ReturnStmt:
				for _, r := range e.Results {
					if id, ok := r.(*ast.Ident); ok && id.Name == v {
						u.escapes = true
					}
				}
			case *ast.CompositeLit:
				for _, el := range e.Elts {
					expr := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						expr = kv.Value
					}
					if id, ok := expr.(*ast.Ident); ok && id.Name == v {
						u.escapes = true
					}
				}
			case *ast.SendStmt:
				if id, ok := e.Value.(*ast.Ident); ok && id.Name == v {
					u.escapes = true
				}
			case *ast.AssignStmt:
				for _, r := range e.Rhs {
					if id, ok := r.(*ast.Ident); ok && id.Name == v {
						u.escapes = true
					}
				}
			case *ast.UnaryExpr:
				if id, ok := e.X.(*ast.Ident); ok && id.Name == v {
					u.escapes = true // &v: aliased
				}
			}
			return true
		})
	}
	visit(body, false)
	return u
}

// spanStartCall reports whether call starts a span, and which result index
// holds the *Span. In typed mode the result type is verified.
func spanStartCall(p *Pass, call *ast.CallExpr) (resultIdx int, ok bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return 0, false
	}
	idx, isStart := spanStartFuncs[name]
	if !isStart {
		return 0, false
	}
	if p.Info != nil {
		tv, has := p.Info.Types[ast.Expr(call)]
		if !has {
			return 0, false
		}
		switch t := tv.Type.(type) {
		case *types.Tuple:
			if idx >= t.Len() || !p.isSpanType(t.At(idx).Type()) {
				return 0, false
			}
		default:
			if idx != 0 || !p.isSpanType(t) {
				return 0, false
			}
		}
	}
	return idx, true
}

// isSpanType reports whether t is *telemetry.Span.
func (p *Pass) isSpanType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil &&
		obj.Pkg().Path() == p.Module+"/internal/telemetry"
}

// isEndCallOn reports whether call is v.End().
func isEndCallOn(call *ast.CallExpr, v string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == v
}

// deferredClosureEnds reports whether call is a deferred func literal
// whose body calls v.End() — the `defer func() { span.End() }()` idiom.
func deferredClosureEnds(call *ast.CallExpr, v string) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isEndCallOn(c, v) {
			found = true
		}
		return !found
	})
	return found
}

// isNilGuard reports whether cond is `v != nil` (either operand order).
func isNilGuard(cond ast.Expr, v string) bool {
	b, ok := cond.(*ast.BinaryExpr)
	if !ok || b.Op.String() != "!=" {
		return false
	}
	isV := func(e ast.Expr) bool { id, ok := e.(*ast.Ident); return ok && id.Name == v }
	isNil := func(e ast.Expr) bool { id, ok := e.(*ast.Ident); return ok && id.Name == "nil" }
	return (isV(b.X) && isNil(b.Y)) || (isV(b.Y) && isNil(b.X))
}
