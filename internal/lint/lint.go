// Package lint implements geoserplint, the repo's project-specific static
// analyzer. Every headline claim of this reproduction — byte-identical
// repro output, resume-byte-exact campaigns, byte-identical Chrome traces —
// rests on three invariants that no general-purpose linter knows about:
//
//   - all randomness flows through detrand.NewKeyed with a unique stream
//     key per call site,
//   - all time flows through an injected simclock.Clock,
//   - every telemetry span that is started is ended, and retry-classified
//     errors survive wrapping.
//
// The analyzers here machine-enforce those invariants so a stray
// time.Now() or math/rand import cannot silently reintroduce the
// uncontrolled noise the paper's methodology is designed to exclude.
//
// The package is stdlib-only (go/ast, go/parser, go/types, go/token).
// Packages are analyzed in one of two modes: typed, where a *types.Info
// from a full type-check makes name resolution exact, and syntactic,
// where per-file import tables approximate it (used for _test.go files
// and the golden-file harness, which must stay hermetic).
//
// The only escape hatch is an explicit annotation on the offending line
// (or the line directly above):
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory, and an allow comment that suppresses nothing
// is itself a diagnostic — stale annotations cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it, a
// message, and a fix hint.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Hint     string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	if d.Hint != "" {
		s += " (" + d.Hint + ")"
	}
	return s
}

// Analyzer is one invariant checker. run is invoked once per file of each
// analyzed package; finish (optional) runs after every package has been
// seen, for cross-package invariants like rngkey's collision check.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //lint:allow.
	Name string
	// Doc is a one-line description shown by geoserplint -list.
	Doc string
	// SkipTestFiles exempts _test.go files (wallclock: tests may use real
	// time; spanend: tests deliberately leak spans to exercise the ring).
	SkipTestFiles bool
	run           func(p *Pass, f *ast.File)
	finish        func(r *Runner)
}

// Analyzers returns the full analyzer suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		wallclockAnalyzer,
		detrandAnalyzer,
		rngkeyAnalyzer,
		spanendAnalyzer,
		errwrapAnalyzer,
		maporderAnalyzer,
		lockholdAnalyzer,
		headerkeyAnalyzer,
		atomicmixAnalyzer,
	}
}

// AnalyzerNames returns the suite's names, for validating //lint:allow.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Pass carries one package's worth of analysis state to an analyzer.
type Pass struct {
	// Fset resolves positions for every file in the pass.
	Fset *token.FileSet
	// Path is the package's import path ("geoserp/internal/engine").
	Path string
	// Module is the module path ("geoserp"); analyzer package scopes are
	// module-relative so testdata can fake paths without hardcoding.
	Module string
	// Info is the type-check result; nil in syntactic mode.
	Info *types.Info
	// Files are the package files under analysis.
	Files []*ast.File

	runner  *Runner
	current *Analyzer
	imports map[*ast.File]map[string]string // file -> local name -> import path
}

// Reportf emits a diagnostic at pos for the running analyzer, subject to
// //lint:allow suppression.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	p.runner.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.current.Name,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// InScope reports whether the pass's package is the module-relative
// package rel or nested below it.
func (p *Pass) InScope(rel string) bool {
	full := p.Module + "/" + rel
	return p.Path == full || strings.HasPrefix(p.Path, full+"/")
}

// importTable returns f's local-name -> import-path map, built lazily.
func (p *Pass) importTable(f *ast.File) map[string]string {
	if t, ok := p.imports[f]; ok {
		return t
	}
	t := make(map[string]string, len(f.Imports))
	for _, im := range f.Imports {
		path := strings.Trim(im.Path.Value, `"`)
		name := ""
		if im.Name != nil {
			name = im.Name.Name
		} else {
			// Default local name: the last path element, with the repo's
			// relevant special case (math/rand/v2 imports as "rand").
			name = path[strings.LastIndex(path, "/")+1:]
			if name == "v2" {
				base := strings.TrimSuffix(path, "/v2")
				name = base[strings.LastIndex(base, "/")+1:]
			}
		}
		if name != "." && name != "_" {
			t[name] = path
		}
	}
	p.imports[f] = t
	return t
}

// resolvePkgSel resolves a selector expression pkg.Name where pkg is a
// package identifier, returning the import path and selected name. In
// typed mode resolution is exact (a shadowing local variable will not
// match); in syntactic mode the file's import table is consulted.
func (p *Pass) resolvePkgSel(f *ast.File, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if p.Info != nil {
		pn, isPkg := p.Info.Uses[id].(*types.PkgName)
		if !isPkg {
			return "", "", false
		}
		return pn.Imported().Path(), sel.Sel.Name, true
	}
	path, found := p.importTable(f)[id.Name]
	if !found {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// isTestFile reports whether f came from a _test.go file.
func (p *Pass) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// ---- allow comments ----

// allowEntry is one parsed //lint:allow comment.
type allowEntry struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
	bad      string // non-empty: malformed (the diagnostic message)
}

const allowPrefix = "//lint:allow"

// scanAllows indexes every //lint:allow comment in f by line.
func (r *Runner) scanAllows(fset *token.FileSet, f *ast.File) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
			e := &allowEntry{pos: fset.Position(c.Pos())}
			switch {
			case len(fields) == 0:
				e.bad = "malformed //lint:allow: missing analyzer name"
			case !known[fields[0]]:
				e.bad = fmt.Sprintf("unknown analyzer %q in //lint:allow", fields[0])
			case len(fields) < 2:
				e.analyzer = fields[0]
				e.bad = fmt.Sprintf("//lint:allow %s needs a reason", fields[0])
			default:
				e.analyzer = fields[0]
				e.reason = strings.Join(fields[1:], " ")
			}
			key := e.pos.Filename
			if r.allows[key] == nil {
				r.allows[key] = make(map[int][]*allowEntry)
			}
			r.allows[key][e.pos.Line] = append(r.allows[key][e.pos.Line], e)
		}
	}
}

// ---- runner ----

// Runner drives the analyzer suite over a set of packages and accumulates
// diagnostics. Use NewRunner, feed packages via CheckPackage, then call
// Finish exactly once.
type Runner struct {
	// Module is the module path scopes are resolved against.
	Module string
	// Fset must be shared by every package fed to CheckPackage.
	Fset *token.FileSet
	// Only, when non-empty, restricts the suite to the named analyzers
	// (the golden harness runs one analyzer per testdata directory).
	Only []string

	diags        []Diagnostic
	allows       map[string]map[int][]*allowEntry // filename -> line -> entries
	rngSites     map[string][]rngSite
	atomicFields map[string]*atomicFieldState // field key -> accesses (atomicmix)
	seen         map[string]bool              // files already scanned for allows
}

// NewRunner returns a Runner for the given module rooted at fset.
func NewRunner(module string, fset *token.FileSet) *Runner {
	return &Runner{
		Module:       module,
		Fset:         fset,
		allows:       make(map[string]map[int][]*allowEntry),
		rngSites:     make(map[string][]rngSite),
		atomicFields: make(map[string]*atomicFieldState),
		seen:         make(map[string]bool),
	}
}

func (r *Runner) enabled(a *Analyzer) bool {
	if len(r.Only) == 0 {
		return true
	}
	for _, n := range r.Only {
		if n == a.Name {
			return true
		}
	}
	return false
}

// CheckPackage runs the suite over one package's files. Pass info from a
// full type-check for exact resolution, or nil for syntactic mode.
func (r *Runner) CheckPackage(importPath string, files []*ast.File, info *types.Info) {
	p := &Pass{
		Fset:    r.Fset,
		Path:    importPath,
		Module:  r.Module,
		Info:    info,
		Files:   files,
		runner:  r,
		imports: make(map[*ast.File]map[string]string),
	}
	for _, f := range files {
		name := r.Fset.Position(f.Pos()).Filename
		if !r.seen[name] {
			r.seen[name] = true
			r.scanAllows(r.Fset, f)
		}
		for _, a := range Analyzers() {
			if !r.enabled(a) || (a.SkipTestFiles && p.isTestFile(f)) {
				continue
			}
			p.current = a
			a.run(p, f)
		}
	}
}

// report records d unless a matching //lint:allow on the same line or the
// line directly above suppresses it.
func (r *Runner) report(d Diagnostic) {
	if byLine, ok := r.allows[d.Pos.Filename]; ok {
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, e := range byLine[line] {
				if e.bad == "" && e.analyzer == d.Analyzer {
					e.used = true
					return
				}
			}
		}
	}
	r.diags = append(r.diags, d)
}

// Finish runs cross-package finalizers and the allow-comment audit, and
// returns every diagnostic sorted by position.
func (r *Runner) Finish() []Diagnostic {
	for _, a := range Analyzers() {
		if a.finish != nil && r.enabled(a) {
			a.finish(r)
		}
	}
	for _, byLine := range r.allows {
		for _, entries := range byLine {
			for _, e := range entries {
				switch {
				case e.bad != "":
					r.diags = append(r.diags, Diagnostic{
						Pos: e.pos, Analyzer: "allow", Message: e.bad,
						Hint: "format: //lint:allow <analyzer> <reason>",
					})
				case !e.used:
					r.diags = append(r.diags, Diagnostic{
						Pos: e.pos, Analyzer: "allow",
						Message: fmt.Sprintf("unused //lint:allow %s (it suppresses no diagnostic)", e.analyzer),
						Hint:    "delete the stale annotation",
					})
				}
			}
		}
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return r.diags
}
