package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockhold checks two mutex invariants, flow-sensitively (reusing the
// shared path machinery in flow.go):
//
//  1. Every mu.Lock()/mu.RLock() is released on all control-flow paths in
//     the same function (deferred or explicit) — a leaked lock deadlocks
//     the next acquirer, and in this codebase "the next acquirer" is
//     usually an admission gate or a span ring on the cluster's hot path.
//
//  2. No path between a Lock and its Unlock performs an operation that can
//     block indefinitely while the lock is held: net/http or net calls,
//     clock sleeps (Sleep/SleepHeld — on a held virtual clock the driver
//     may never advance), channel sends/receives outside a select with a
//     default clause, selects without a default, or WaitGroup waits. A
//     blocked lock holder stalls every other goroutine that needs the
//     lock; under the simclock hold/quiesce protocol it can deadlock the
//     whole campaign driver.
//
// In typed mode only receivers whose type is sync.Mutex/sync.RWMutex are
// analyzed; syntactic mode (testdata) accepts any .Lock()/.RLock()
// receiver. Channel operations inside a select that has a default clause
// are non-blocking by construction and are not flagged. Calls are matched
// intraprocedurally: a helper that blocks inside its own body is analyzed
// where its Lock lives, not at its call sites.
var lockholdAnalyzer = &Analyzer{
	Name: "lockhold",
	Doc: "locks must be released on all paths, and no http/net call, clock sleep, or " +
		"blocking channel operation may run while a mutex is held",
	SkipTestFiles: true,
	run:           runLockhold,
}

const lockholdLeakHint = "defer the Unlock right after the Lock, or unlock before every return"
const lockholdBlockHint = "release the lock before blocking (copy what you need out of the " +
	"critical section), or make the operation non-blocking"

// lockPairs maps acquire method names to their release counterparts.
var lockPairs = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func runLockhold(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		checkLockBody(p, f, body)
		return false
	})
}

// checkLockBody finds every Lock/RLock statement in one function body and
// applies both invariants to it.
func checkLockBody(p *Pass, f *ast.File, body *ast.BlockStmt) {
	flagged := make(map[token.Pos]bool) // dedupe across overlapping critical sections
	walkStmts(body.List, func(s ast.Stmt) {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		unlockName, isLock := lockPairs[sel.Sel.Name]
		if !isLock || len(call.Args) != 0 {
			return
		}
		if p.Info != nil && !p.isMutexExpr(sel.X) {
			return
		}
		recv := types.ExprString(sel.X)
		path, found := findStmtPath(body.List, s, false)
		if !found {
			return
		}

		// Invariant 1: released on all paths.
		ev := &pathEval{
			budget:  100000,
			satisfy: func(c *ast.CallExpr) bool { return isCallOn(c, recv, unlockName) },
			deferSatisfy: func(c *ast.CallExpr) bool {
				return isCallOn(c, recv, unlockName) || deferredClosureCalls(c, recv, unlockName)
			},
		}
		if !ev.allPathsSatisfy(continuation(path)) {
			p.Reportf(call.Pos(), lockholdLeakHint,
				"%s.%s() is not released on all paths", recv, sel.Sel.Name)
		}

		// Invariant 2: nothing blocking between Lock and Unlock. A
		// deferred Unlock extends the critical section to function exit,
		// so the scan only stops at explicit Unlock statements.
		scan := newRegionScan(
			func(st ast.Stmt) bool { return isUnlockStmt(st, recv, unlockName) },
			func(st ast.Stmt) { flagBlocking(p, f, st, recv, flagged) },
		)
		scan.scan(continuation(path))
	})
}

// isMutexExpr reports whether e's type is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func (p *Pass) isMutexExpr(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isSyncType(tv.Type, "Mutex") || isSyncType(tv.Type, "RWMutex")
}

// isSyncType reports whether t (or its pointee) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isCallOn reports whether call is recv.method() for the rendered receiver.
func isCallOn(call *ast.CallExpr, recv, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	return types.ExprString(sel.X) == recv
}

// deferredClosureCalls reports whether call is a deferred func literal
// whose body calls recv.method() — `defer func() { mu.Unlock() }()`.
func deferredClosureCalls(call *ast.CallExpr, recv, method string) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isCallOn(c, recv, method) {
			found = true
		}
		return !found
	})
	return found
}

// isUnlockStmt reports whether s is the statement `recv.Unlock()` (or
// RUnlock), ending the critical section on this path.
func isUnlockStmt(s ast.Stmt, recv, unlockName string) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && isCallOn(call, recv, unlockName)
}

// flagBlocking reports any blocking operation evaluated by statement s
// itself (nested statements are visited separately by the region scan;
// function literal bodies run at some other time and are skipped).
func flagBlocking(p *Pass, f *ast.File, s ast.Stmt, recv string, flagged map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if flagged[pos] {
			return
		}
		flagged[pos] = true
		p.Reportf(pos, lockholdBlockHint, format, args...)
	}
	switch st := s.(type) {
	case *ast.SendStmt:
		report(st.Arrow, "channel send while %s is held can block the lock holder", recv)
		return
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(st.Body.List) > 0 {
			report(st.Select, "select without a default clause blocks while %s is held", recv)
		}
		return // comm clauses of a defaulted select are non-blocking
	case *ast.GoStmt, *ast.DeferStmt:
		return // runs on another goroutine / after the unlock path resolves
	}
	for _, e := range stmtOwnExprs(s) {
		inspectNoFuncLit(e, func(n ast.Node) {
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					report(x.OpPos, "channel receive while %s is held can block the lock holder", recv)
				}
			case *ast.CallExpr:
				flagBlockingCall(p, f, x, recv, report)
			}
		})
	}
}

// stmtOwnExprs returns the expressions a statement itself evaluates,
// excluding nested statement bodies (the region scan visits those as
// statements of their own).
func stmtOwnExprs(s ast.Stmt) []ast.Expr {
	switch st := s.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{st.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, st.Lhs...), st.Rhs...)
	case *ast.ReturnStmt:
		return st.Results
	case *ast.IfStmt:
		out := stmtOwnExprs(st.Init)
		if st.Cond != nil {
			out = append(out, st.Cond)
		}
		return out
	case *ast.ForStmt:
		out := append(stmtOwnExprs(st.Init), stmtOwnExprs(st.Post)...)
		if st.Cond != nil {
			out = append(out, st.Cond)
		}
		return out
	case *ast.RangeStmt:
		return []ast.Expr{st.X}
	case *ast.SwitchStmt:
		out := stmtOwnExprs(st.Init)
		if st.Tag != nil {
			out = append(out, st.Tag)
		}
		return out
	case *ast.TypeSwitchStmt:
		return stmtOwnExprs(st.Init)
	case *ast.IncDecStmt:
		return []ast.Expr{st.X}
	case *ast.DeclStmt:
		var out []ast.Expr
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
		}
		return out
	case *ast.LabeledStmt:
		return stmtOwnExprs(st.Stmt)
	}
	return nil
}

// flagBlockingCall classifies one call inside a critical section.
func flagBlockingCall(p *Pass, f *ast.File, call *ast.CallExpr, recv string, report func(token.Pos, string, ...any)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if path, name, ok := p.resolvePkgSel(f, sel); ok {
		switch path {
		case "net/http", "net":
			report(call.Pos(), "%s.%s call while %s is held (network I/O under a lock)",
				pkgBase(path), name, recv)
		case "time":
			if name == "Sleep" {
				report(call.Pos(), "time.Sleep while %s is held", recv)
			}
		}
		return
	}
	switch sel.Sel.Name {
	case "Sleep", "SleepHeld":
		report(call.Pos(), "%s while %s is held sleeps on a clock the lock may be blocking",
			types.ExprString(sel), recv)
	case "Wait":
		// sync.Cond.Wait releases the lock — fine; sync.WaitGroup.Wait
		// does not. Only typed mode can tell them apart.
		if p.Info != nil {
			if tv, ok := p.Info.Types[sel.X]; ok && tv.Type != nil && isSyncType(tv.Type, "WaitGroup") {
				report(call.Pos(), "WaitGroup.Wait while %s is held", recv)
			}
		}
	default:
		// Method calls on net/http or net types (client.Do, conn.Read...).
		if p.Info != nil {
			if tv, ok := p.Info.Types[sel.X]; ok && tv.Type != nil && isNetType(tv.Type) {
				report(call.Pos(), "%s call while %s is held (network I/O under a lock)",
					types.ExprString(sel), recv)
			}
		}
	}
}

// isNetType reports whether t (or its pointee) is a named type from
// net/http or net.
func isNetType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "net/http" || pkg.Path() == "net")
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
