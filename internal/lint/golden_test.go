package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden harness mirrors analysistest's conventions without the
// x/tools dependency: every file under testdata/<dir> is parsed
// syntactically, the named analyzers run over the package, and each
// diagnostic must be matched by a `// want "regex"` comment on its line
// (regexes match against "analyzer: message"). A `//lintpkg:<path>`
// comment fakes the package's import path, so scoped analyzers can be
// placed inside (or outside) their scope without real packages.

// goldenDirs maps each testdata directory to the analyzers it runs.
var goldenDirs = map[string][]string{
	"wallclock":   {"wallclock"},
	"detrand":     {"detrand"},
	"detrandok":   {"detrand"},
	"rngkey":      {"rngkey"},
	"spanend":     {"spanend"},
	"errwrap":     {"errwrap"},
	"maporder":    {"maporder"},
	"lockhold":    {"lockhold"},
	"headerkey":   {"headerkey"},
	"headerkeyok": {"headerkey"},
	"atomicmix":   {"atomicmix"},
}

func TestGolden(t *testing.T) {
	for dir, only := range goldenDirs {
		t.Run(dir, func(t *testing.T) {
			diags, fset, files := runTestdata(t, dir, only)
			wants := collectWants(t, fset, files)
			for _, d := range diags {
				rendered := d.Analyzer + ": " + d.Message
				if !wants.match(d.Pos, rendered) {
					t.Errorf("%s:%d: unexpected diagnostic %q", d.Pos.Filename, d.Pos.Line, rendered)
				}
			}
			wants.reportUnmatched(t)
		})
	}
}

// TestAllowAudit checks the //lint:allow bookkeeping itself: the audit
// reports at the comment's own line, where a trailing want-comment cannot
// sit, so expectations are explicit here instead of in the file.
func TestAllowAudit(t *testing.T) {
	diags, _, _ := runTestdata(t, "allow", []string{"wallclock"})
	expected := []string{
		`unused //lint:allow wallclock`,
		`unknown analyzer "nosuch" in //lint:allow`,
		`//lint:allow wallclock needs a reason`,
	}
	if len(diags) != len(expected) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(expected), renderAll(diags))
	}
	for _, want := range expected {
		found := false
		for _, d := range diags {
			if d.Analyzer == "allow" && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q:\n%s", want, renderAll(diags))
		}
	}
}

func renderAll(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

// runTestdata parses testdata/<dir> and runs the named analyzers over it
// in syntactic mode.
func runTestdata(t *testing.T, dir string, only []string) ([]Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := ParseDir(fset, filepath.Join("testdata", dir))
	if err != nil {
		t.Fatalf("parse testdata/%s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("testdata/%s holds no Go files", dir)
	}
	runner := NewRunner("geoserp", fset)
	runner.Only = only
	runner.CheckPackage(lintPkgPath(files, "geoserp/lintdata/"+dir), files, nil)
	return runner.Finish(), fset, files
}

// lintPkgPath returns the //lintpkg: directive's path, if any file carries
// one, else the fallback.
func lintPkgPath(files []*ast.File, fallback string) string {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//lintpkg:"); ok {
					return strings.TrimSpace(rest)
				}
			}
		}
	}
	return fallback
}

// wantExp is one // want expectation, consumed by at most one diagnostic.
type wantExp struct {
	pos  token.Position
	re   *regexp.Regexp
	used bool
}

type wantSet struct {
	byLine map[string][]*wantExp // "file:line" -> expectations
}

func (w *wantSet) match(pos token.Position, rendered string) bool {
	key := pos.Filename + ":" + strconv.Itoa(pos.Line)
	for _, e := range w.byLine[key] {
		if !e.used && e.re.MatchString(rendered) {
			e.used = true
			return true
		}
	}
	return false
}

func (w *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, es := range w.byLine {
		for _, e := range es {
			if !e.used {
				t.Errorf("%s:%d: no diagnostic matched want %q", e.pos.Filename, e.pos.Line, e.re)
			}
		}
	}
}

// collectWants indexes every `// want "re" ["re" ...]` comment by its line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	w := &wantSet{byLine: make(map[string][]*wantExp)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				rest = strings.TrimSpace(rest)
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquote %q: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, pat, err)
					}
					key := pos.Filename + ":" + strconv.Itoa(pos.Line)
					w.byLine[key] = append(w.byLine[key], &wantExp{pos: pos, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return w
}
