package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporder checks that no `range` over a map feeds an order-sensitive sink
// without an intervening deterministic sort. Go randomizes map iteration
// order per run, so a loop that appends map keys/values to a slice that is
// never sorted, or that writes each entry straight into an encoder, an
// io.Writer, or a hash, produces output that differs between two
// same-seed runs — exactly the bug class that would desync byte-identical
// cluster traces, merged SERPs, or /statz snapshots.
//
// Two sink shapes are recognized inside the loop body:
//
//   - append: `s = append(s, ...)`. Accepted when the slice is passed to a
//     sort (sort.*/slices.* or any call whose name contains "Sort") after
//     the loop; flagged otherwise.
//   - direct write: a call to Encode/Write/WriteString/WriteByte/
//     WriteRune, or fmt's Fprint/Fprintf/Fprintln/Print/Printf/Println —
//     the iteration order escapes immediately, so no later sort can help.
//
// Appends to slices declared inside the loop body are exempt: a
// per-iteration slice is rebuilt fresh each pass, so its internal order
// cannot depend on which map key came first. In typed mode the ranged
// expression must actually be a map; syntactic mode (testdata) infers
// map-ness from local `make(map`, map literals, and `var x map[...]`
// declarations in the same file. Test files are exempt: building an
// order-invariant dataset (a set, a counter map) from a fixture map is a
// test idiom, and assertions compare contents, not order.
var maporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "range over a map feeding an append, encoder, io.Writer, or hash needs a " +
		"deterministic sort, or same-seed runs stop being byte-identical",
	SkipTestFiles: true,
	run:           runMaporder,
}

const maporderHint = "collect the keys, sort them, and iterate the sorted slice " +
	"(or sort the collected slice right after the loop)"

// maporderWriteSinks are method names that emit data in call order.
var maporderWriteSinks = map[string]bool{
	"Encode":      true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// maporderFmtSinks are fmt package functions that emit data in call order.
var maporderFmtSinks = map[string]bool{
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
	"Print":    true,
	"Printf":   true,
	"Println":  true,
}

func runMaporder(p *Pass, f *ast.File) {
	syntacticMaps := map[string]bool{}
	if p.Info == nil {
		syntacticMaps = collectSyntacticMaps(f)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		walkStmts(body.List, func(s ast.Stmt) {
			rng, ok := s.(*ast.RangeStmt)
			if !ok || !p.isMapExpr(rng.X, syntacticMaps) {
				return
			}
			checkMapRange(p, f, body, rng)
		})
		return false // walkStmts already visited nested non-literal bodies
	})
}

// checkMapRange inspects one map-range loop body for order-sensitive sinks.
func checkMapRange(p *Pass, f *ast.File, body *ast.BlockStmt, rng *ast.RangeStmt) {
	var appends []*ast.AssignStmt
	inspectNoFuncLit(rng.Body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isAppendCall(call) || i >= len(st.Lhs) {
					continue
				}
				appends = append(appends, st)
			}
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			if path, name, ok := p.resolvePkgSel(f, sel); ok {
				if path == "fmt" && maporderFmtSinks[name] {
					p.Reportf(st.Pos(), maporderHint,
						"fmt.%s inside range over map emits entries in nondeterministic order", name)
				}
				return
			}
			if maporderWriteSinks[sel.Sel.Name] {
				p.Reportf(st.Pos(), maporderHint,
					"%s inside range over map emits entries in nondeterministic order",
					types.ExprString(sel))
			}
		}
	})
	if len(appends) == 0 {
		return
	}
	// A slice declared inside the loop body is rebuilt per iteration; its
	// element order cannot depend on map iteration order.
	loopLocal := declaredNames(rng.Body)
	for _, st := range appends {
		for i, rhs := range st.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isAppendCall(call) || i >= len(st.Lhs) {
				continue
			}
			target := types.ExprString(st.Lhs[i])
			if loopLocal[target] {
				continue
			}
			if sortFollows(p, f, body, rng.End(), target) {
				continue
			}
			p.Reportf(st.Pos(), maporderHint,
				"append to %q inside range over map without a deterministic sort after the loop", target)
		}
	}
}

// declaredNames collects every identifier declared inside block: `x := ...`
// define-assigns, `var x ...` declarations, and nested range key/value
// bindings.
func declaredNames(block *ast.BlockStmt) map[string]bool {
	names := map[string]bool{}
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			names[id.Name] = true
		}
	}
	inspectNoFuncLit(block, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				for _, lhs := range st.Lhs {
					addIdent(lhs)
				}
			}
		case *ast.ValueSpec:
			for _, id := range st.Names {
				addIdent(id)
			}
		case *ast.RangeStmt:
			if st.Tok == token.DEFINE {
				addIdent(st.Key)
				if st.Value != nil {
					addIdent(st.Value)
				}
			}
		}
	})
	return names
}

// isMapExpr reports whether e is map-typed: exactly, via the type checker,
// or (syntactic mode) because e is an identifier the file visibly binds to
// a map.
func (p *Pass) isMapExpr(e ast.Expr, syntacticMaps map[string]bool) bool {
	if p.Info != nil {
		tv, ok := p.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}
	id, ok := e.(*ast.Ident)
	return ok && syntacticMaps[id.Name]
}

// collectSyntacticMaps scans f for identifiers visibly bound to maps:
// `x := make(map[...]...)`, `x := map[...]...{...}`, `var x map[...]...`,
// and map-typed function parameters or struct fields.
func collectSyntacticMaps(f *ast.File) map[string]bool {
	maps := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.Field:
			if _, ok := d.Type.(*ast.MapType); ok {
				for _, id := range d.Names {
					maps[id.Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range d.Rhs {
				if i >= len(d.Lhs) {
					break
				}
				id, ok := d.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if exprMakesMap(rhs) {
					maps[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if _, ok := d.Type.(*ast.MapType); ok {
				for _, id := range d.Names {
					maps[id.Name] = true
				}
			}
			for i, v := range d.Values {
				if i < len(d.Names) && exprMakesMap(v) {
					maps[d.Names[i].Name] = true
				}
			}
		}
		return true
	})
	return maps
}

// exprMakesMap reports whether e is visibly a map value: a map composite
// literal or a make(map[...]...) call.
func exprMakesMap(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		id, ok := v.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(v.Args) == 0 {
			return false
		}
		_, ok = v.Args[0].(*ast.MapType)
		return ok
	}
	return false
}

// isAppendCall reports whether call is the builtin append.
func isAppendCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// sortFollows reports whether the enclosing function sorts target anywhere
// after the loop ends: a call into sort/slices, or any call whose name
// contains "Sort", with an argument mentioning target. The search is
// positional (anywhere in body past `after`) rather than path-sensitive:
// a sort after an enclosing loop's boundary still counts, which matters
// for the common shape `for k := range outer { for v := range inner {
// s = append(s, ...) } }; sort.Slice(s, ...)`.
func sortFollows(p *Pass, f *ast.File, body *ast.BlockStmt, after token.Pos, target string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		if !isSortCall(p, f, call) {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(arg, target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall reports whether call is a sorting call: any sort.* or
// slices.* function, or any function whose name contains "Sort".
func isSortCall(p *Pass, f *ast.File, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if path, _, ok := p.resolvePkgSel(f, fun); ok {
			return path == "sort" || path == "slices"
		}
		return containsSort(fun.Sel.Name)
	case *ast.Ident:
		return containsSort(fun.Name)
	}
	return false
}

func containsSort(name string) bool {
	for i := 0; i+4 <= len(name); i++ {
		if name[i] == 'S' || name[i] == 's' {
			if (name[i+1] == 'o') && name[i+2] == 'r' && name[i+3] == 't' {
				return true
			}
		}
	}
	return false
}

// exprMentions reports whether target's rendered form appears as a
// (sub)expression of e — `keys`, `byID(keys)`, `s.items[:]` all mention
// their slice.
func exprMentions(e ast.Expr, target string) bool {
	if types.ExprString(e) == target {
		return true
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sub, ok := n.(ast.Expr); ok && types.ExprString(sub) == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// inspectNoFuncLit walks n, visiting statements and expressions but not
// descending into function literals (their bodies run at some other time,
// possibly not per-iteration).
func inspectNoFuncLit(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if c != nil {
			visit(c)
		}
		return true
	})
}
