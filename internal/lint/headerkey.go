package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// headerkey checks that every custom X-* HTTP header name is spelled via
// the internal/httpheader constants package, never as a raw string
// literal. The cluster protocol rides on these headers — X-Trace-Id joins
// spans across processes, X-Parent-Span stitches a shard's server span
// under the router's fan-out leg, X-Deadline-Ms propagates deadlines,
// X-Serp-Partial marks degraded pages — and a typo'd literal does not
// fail loudly: the header silently reads as absent, the trace silently
// degrades to orphan roots, the deadline silently stops propagating.
// One constants package makes the compiler catch what the wire protocol
// cannot. Test files are included: a test asserting on a typo'd literal
// vacuously passes against the equally typo'd producer.
var headerkeyAnalyzer = &Analyzer{
	Name: "headerkey",
	Doc: "X-* header names must come from the internal/httpheader constants, not raw " +
		"string literals, so a typo cannot silently break trace/deadline propagation",
	run: runHeaderkey,
}

const headerkeyHint = "use (or add) the constant in internal/httpheader; the compiler " +
	"catches a misspelled identifier, the wire protocol does not"

// headerLiteral matches canonical custom header names: "X-" followed by
// capitalized segments (X-Trace-Id, X-Forwarded-For). Lowercase
// continuations ("X-axis") do not match.
var headerLiteral = regexp.MustCompile(`^X-[A-Z][A-Za-z0-9]*(-[A-Za-z0-9]+)*$`)

func runHeaderkey(p *Pass, f *ast.File) {
	// httpheader is the single place the literals are allowed to exist.
	if p.InScope("internal/httpheader") {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil || !headerLiteral.MatchString(s) {
			return true
		}
		p.Reportf(lit.Pos(), headerkeyHint,
			"raw header name literal %q outside internal/httpheader", s)
		return true
	})
}
