package lint

import (
	"go/ast"
	"strings"
)

// detrandScoped are the module-relative packages whose behaviour feeds the
// paper's measurements. Inside them, every stochastic choice must come
// from detrand so the whole study replays from a single root seed.
var detrandScoped = []string{
	"internal/engine",
	"internal/webcorpus",
	"internal/serp",
	"internal/serpserver",
	"internal/crawler",
	"internal/browser",
}

// detrandForbidden are the stdlib randomness sources that would splice
// unseeded (or globally seeded) noise into deterministic packages.
var detrandForbidden = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

var detrandAnalyzer = &Analyzer{
	Name: "detrand",
	Doc: "forbids math/rand, math/rand/v2, and crypto/rand imports in deterministic packages; " +
		"randomness must come from detrand.NewKeyed",
	run: runDetrand,
}

func runDetrand(p *Pass, f *ast.File) {
	inScope := false
	for _, rel := range detrandScoped {
		if p.InScope(rel) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, im := range f.Imports {
		path := strings.Trim(im.Path.Value, `"`)
		if !detrandForbidden[path] {
			continue
		}
		p.Reportf(im.Pos(),
			"derive randomness with detrand.NewKeyed(seed, parts...) so the noise stream replays from the root seed",
			"import of %s in deterministic package %s", path, p.Path)
	}
}
