// Package headerkeydata seeds headerkey violations for the golden
// harness: any canonical X-* header name as a raw string literal is
// flagged anywhere outside internal/httpheader, including in constant
// declarations. Non-header strings and //lint:allow are not.
package headerkeydata

import "net/http"

// badSet spells a wire header inline; a typo here would silently orphan
// every trace.
func badSet(req *http.Request, id string) {
	req.Header.Set("X-Trace-Id", id) // want "headerkey: raw header name literal \"X-Trace-Id\" outside internal/httpheader"
}

// badConst re-declares a header constant outside the shared package,
// forking the protocol's spelling authority.
const localHeader = "X-Custom-Shard" // want "headerkey: raw header name literal \"X-Custom-Shard\" outside internal/httpheader"

// badCompare reads a header by literal name.
func badCompare(resp *http.Response) bool {
	return resp.Header.Get("X-Serp-Partial") != "" // want "headerkey: raw header name literal \"X-Serp-Partial\" outside internal/httpheader"
}

// goodStandards: standard header names and non-header strings never match.
func goodStandards(req *http.Request) {
	req.Header.Set("Content-Type", "text/html")
	req.Header.Set("Retry-After", "1")
	_ = "X-axis"     // lowercase continuation: not a header shape
	_ = "PREFIX-X-Y" // X- must be the prefix
}

// allowed documents a deliberate literal (a chaos test probing unknown
// header handling).
func allowed(req *http.Request) {
	//lint:allow headerkey probing server handling of unknown X- headers
	req.Header.Set("X-Unknown-Probe", "1")
}
