package headerkeydata

import "net/http"

// Test files are NOT exempt from headerkey: a test asserting on a typo'd
// literal vacuously passes against the equally typo'd producer, so tests
// must spell headers through the constants too.
func assertServed(resp *http.Response) string {
	return resp.Header.Get("X-Served-By") // want "headerkey: raw header name literal \"X-Served-By\" outside internal/httpheader"
}
