// Package lockholddata seeds lockhold violations for the golden harness:
// locks leaked on some path, and blocking operations — network I/O,
// clock sleeps, channel ops, defaultless selects — inside a critical
// section. Balanced sections and non-blocking idioms are not flagged.
package lockholddata

import (
	"net/http"
	"sync"
	"time"
)

var mu sync.Mutex
var rw sync.RWMutex
var ch chan int

// leak misses the unlock on the early-return path.
func leak(cond bool) {
	mu.Lock() // want "lockhold: mu.Lock\\(\\) is not released on all paths"
	if cond {
		return
	}
	mu.Unlock()
}

// leakRead leaks a read lock the same way.
func leakRead(cond bool) int {
	rw.RLock() // want "lockhold: rw.RLock\\(\\) is not released on all paths"
	if cond {
		return 0
	}
	rw.RUnlock()
	return 1
}

// goodDefer releases on every path by deferring.
func goodDefer() {
	mu.Lock()
	defer mu.Unlock()
}

// goodBranches releases explicitly on both paths.
func goodBranches(cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
		return
	}
	mu.Unlock()
}

// badHTTP performs network I/O while holding the lock.
func badHTTP(url string) {
	mu.Lock()
	defer mu.Unlock()
	http.Get(url) // want "lockhold: http.Get call while mu is held \\(network I/O under a lock\\)"
}

// badSleep sleeps on the wall clock inside the critical section.
func badSleep() {
	mu.Lock()
	time.Sleep(time.Second) // want "lockhold: time.Sleep while mu is held"
	mu.Unlock()
}

// badClockSleep sleeps on an injected clock — under the hold/quiesce
// protocol the driver advancing that clock may need this very lock.
func badClockSleep(clock interface{ Sleep(time.Duration) }) {
	mu.Lock()
	clock.Sleep(time.Second) // want "lockhold: clock.Sleep while mu is held sleeps on a clock the lock may be blocking"
	mu.Unlock()
}

// badSend can block forever if no receiver is ready.
func badSend(v int) {
	mu.Lock()
	ch <- v // want "lockhold: channel send while mu is held can block the lock holder"
	mu.Unlock()
}

// badRecv blocks the holder until someone sends.
func badRecv() int {
	mu.Lock()
	v := <-ch // want "lockhold: channel receive while mu is held can block the lock holder"
	mu.Unlock()
	return v
}

// badSelect has no default, so it parks the goroutine with the lock held.
func badSelect() {
	mu.Lock()
	defer mu.Unlock()
	select { // want "lockhold: select without a default clause blocks while mu is held"
	case v := <-ch:
		_ = v
	}
}

// goodSelectDefault never blocks: a defaulted select is a poll.
func goodSelectDefault() {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		_ = v
	default:
	}
}

// goodAfterUnlock blocks only once the critical section is over.
func goodAfterUnlock(v int) {
	mu.Lock()
	mu.Unlock()
	ch <- v
}

// goodGoroutine hands blocking work to another goroutine; the holder
// itself never blocks.
func goodGoroutine(url string) {
	mu.Lock()
	defer mu.Unlock()
	go http.Get(url)
}

// allowed documents a send the analyzer cannot prove safe: a buffered
// channel with a single sender never blocks.
func allowed(ready chan struct{}) {
	mu.Lock()
	defer mu.Unlock()
	//lint:allow lockhold ready has capacity 1 and exactly one sender
	ready <- struct{}{}
}
