package lockholddata

import "sync"

// Test files are exempt from lockhold: tests hold locks across arbitrary
// assertions and synthetic blocking to exercise contention. No diagnostic
// is expected here.
func holdAcrossSend(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
