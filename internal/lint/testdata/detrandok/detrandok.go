// Package detrandok is the detrand negative case: it carries no //lintpkg
// directive, so it sits outside the deterministic scope and may import
// stdlib randomness freely.
package detrandok

import "math/rand"

func jitter() float64 { return rand.Float64() }
