// Package maporderdata seeds maporder violations for the golden harness:
// map iteration feeding an append that is never sorted, or a direct
// write/encode sink, is flagged; sorted collections, loop-local slices,
// and //lint:allow are not.
package maporderdata

import (
	"fmt"
	"io"
	"sort"
)

// badAppend collects map keys and returns them unsorted — the classic
// same-seed-runs-diverge bug.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "maporder: append to \"keys\" inside range over map without a deterministic sort after the loop"
	}
	return keys
}

// badFprintf serializes entries in iteration order; no later sort can
// repair output that already escaped.
func badFprintf(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "maporder: fmt.Fprintf inside range over map emits entries in nondeterministic order"
	}
}

// badEncode streams each value through an encoder-shaped sink.
func badEncode(enc interface{ Encode(any) error }, m map[string]int) {
	for _, v := range m {
		enc.Encode(v) // want "maporder: enc.Encode inside range over map emits entries in nondeterministic order"
	}
}

// badWrite emits raw bytes per entry.
func badWrite(w io.Writer, m map[string][]byte) {
	for _, b := range m {
		w.Write(b) // want "maporder: w.Write inside range over map emits entries in nondeterministic order"
	}
}

// goodSorted collects then sorts: the accepted idiom.
func goodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodNestedSort appends under two loop levels and sorts after the OUTER
// loop; the positional search must see past the inner loop boundary.
func goodNestedSort(m map[string][]string) []string {
	var out []string
	for _, vs := range m {
		for _, v := range vs {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// goodLoopLocal appends to a slice declared inside the loop body: rebuilt
// per iteration, its order cannot depend on which key came first.
func goodLoopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var kept []int
		for _, v := range vs {
			if v > 0 {
				kept = append(kept, v)
			}
		}
		total += len(kept)
	}
	return total
}

// goodSliceRange ranges over a slice, not a map: iteration order is the
// slice's own.
func goodSliceRange(w io.Writer, items []string) {
	for _, it := range items {
		fmt.Fprintln(w, it)
	}
}

// allowed documents an order-invariant sink the analyzer cannot see
// through (summation commutes).
func allowed(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		//lint:allow maporder consumed by an order-invariant sum
		vals = append(vals, v)
	}
	return vals
}
