package maporderdata

// Test files are exempt from maporder: building an order-invariant
// dataset from a fixture map and asserting on contents is a test idiom.
// No diagnostic is expected here.
func collectForAssert(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
