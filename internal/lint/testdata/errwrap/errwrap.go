//lintpkg:geoserp/internal/browser

// Package errwrapdata seeds errwrap violations: inside retry-classified
// packages, fmt.Errorf must wrap error operands with %w so errors.As can
// still find the transient/permanent marker.
package errwrapdata

import "fmt"

// flattened loses the cause: %v renders the error to text.
func flattened(url string, err error) error {
	return fmt.Errorf("fetch %s: %v", url, err) // want "errwrap: error operand formatted with %v loses the wrapped cause"
}

// stringified is just as lossy with %s.
func stringified(err error) error {
	return fmt.Errorf("checkpoint: %s", err) // want "errwrap: error operand formatted with %s loses the wrapped cause"
}

// wrapped is the correct shape: %w preserves the chain.
func wrapped(url string, err error) error {
	return fmt.Errorf("fetch %s: %w", url, err)
}

// nonError formats ordinary values; nothing to wrap.
func nonError(status int, url string) error {
	return fmt.Errorf("status %d from %s", status, url)
}

// allowed flattens deliberately: this message crosses a process boundary
// where the chain cannot survive anyway.
func allowed(err error) error {
	return fmt.Errorf("remote: %v", err) //lint:allow errwrap message crosses a process boundary, the chain cannot survive
}
