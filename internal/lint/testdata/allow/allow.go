// Package allowdata exercises the //lint:allow audit: a used allow
// suppresses its diagnostic silently, while unused, unknown-analyzer, and
// reasonless allows are themselves diagnostics (checked by TestAllowAudit
// with explicit expectations, since the audit reports at the comment's own
// line where a trailing want-comment cannot sit).
package allowdata

import "time"

// edge's allow is used: it suppresses the wallclock diagnostic on its line.
func edge() time.Time {
	return time.Now() //lint:allow wallclock process-edge timestamp outside any campaign
}

//lint:allow wallclock nothing on this line violates anything

//lint:allow nosuch this analyzer does not exist

//lint:allow wallclock
