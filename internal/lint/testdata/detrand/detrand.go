//lintpkg:geoserp/internal/engine

// Package detranddata seeds detrand violations: the //lintpkg directive
// above places it inside a deterministic package, where stdlib randomness
// imports are forbidden regardless of how they are named.
package detranddata

import (
	mrand "math/rand" // want "detrand: import of math/rand in deterministic package geoserp/internal/engine"

	crand "crypto/rand" //lint:allow detrand key material for a non-measured admin token

	"math/rand/v2" // want "detrand: import of math/rand/v2 in deterministic package geoserp/internal/engine"
)

func draw() (int, int) {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return mrand.Int(), rand.Int()
}
