//lintpkg:geoserp/internal/engine

package detranddata

import "math/rand" // want "detrand: import of math/rand in deterministic package geoserp/internal/engine"

// detrand applies to test files too: a deterministic package's tests that
// shuffle with math/rand would themselves be flaky.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
