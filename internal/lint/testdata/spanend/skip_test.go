package spanenddata

// Test files are exempt from spanend: tests deliberately leak spans to
// exercise ring eviction. No diagnostic is expected here.
func leakForEviction() {
	s := rec.StartChild("evicted")
	_ = s
}
