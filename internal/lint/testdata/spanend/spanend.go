// Package spanenddata seeds spanend violations against a stub span API
// that mirrors telemetry's shape (the harness runs syntactically, so the
// method names are what the analyzer keys on).
package spanenddata

type span struct{}

func (*span) End() {}

type recorder struct{}

func (*recorder) StartChild(name string) *span { return nil }

func startSpan(name string) (int, *span) { return 0, nil }

var rec recorder

func work() {}

// discarded never binds the span at all.
func discarded() {
	rec.StartChild("op") // want "spanend: started span is discarded; it can never be ended"
}

// blank binds the span to _, which is equally unendable.
func blank() {
	_ = rec.StartChild("op") // want "spanend: started span is assigned to _; it can never be ended"
}

// leaked starts a span and falls off the end of the function.
func leaked() {
	s := rec.StartChild("op") // want "spanend: span \"s\" is never ended"
}

// tupleLeaked exercises the (ctx, span) helper form: the second result is
// the span, and it is never ended.
func tupleLeaked() {
	ctx, s := startSpan("op") // want "spanend: span \"s\" is never ended"
	_ = ctx
}

// branchLeak ends the span on the fallthrough path but not before the
// early return.
func branchLeak(cond bool) {
	s := rec.StartChild("op") // want "spanend: span \"s\" is not ended on all paths"
	if cond {
		return
	}
	s.End()
}

// deferred is the canonical correct shape: End is deferred immediately,
// so every path is covered.
func deferred(cond bool) {
	s := rec.StartChild("op")
	defer s.End()
	if cond {
		return
	}
	work()
}

// guarded is the conditional-tracing shape: the span may be nil, and the
// nil-guarded End covers the live path (End is nil-safe on the other).
func guarded(on bool) {
	var s *span
	if on {
		s = rec.StartChild("op")
	}
	work()
	if s != nil {
		s.End()
	}
}

// escapes hands the span to its caller, whose responsibility it becomes.
func escapes() *span {
	s := rec.StartChild("op")
	return s
}

// allowed leaks deliberately: ring-eviction tests need an unended span.
func allowed() {
	s := rec.StartChild("op") //lint:allow spanend deliberate leak exercising the recorder ring
}
