// Package atomicmixdata seeds atomicmix violations for the golden
// harness: a field touched through sync/atomic in one place and read or
// written plainly in another races, and the memory model guarantees
// nothing about what the plain access observes.
package atomicmixdata

import "sync/atomic"

// counter mixes access modes on hits; shed is consistently atomic and
// plain is consistently plain, so only hits is flagged.
type counter struct {
	hits  uint64
	shed  uint64
	plain int
}

// bump is the atomic side of the race.
func bump(c *counter) {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.shed, 1)
}

// snapshot reads hits without the atomic load that bump's store requires.
func snapshot(c *counter) uint64 {
	return c.hits // want "atomicmix: plain access to field \"hits\", which is accessed atomically at"
}

// reset writes hits plainly — the torn-write half of the same bug.
func reset(c *counter) {
	c.hits = 0 // want "atomicmix: plain access to field \"hits\", which is accessed atomically at"
	atomic.StoreUint64(&c.shed, 0)
}

// goodAtomic keeps every shed access atomic.
func goodAtomic(c *counter) uint64 {
	return atomic.LoadUint64(&c.shed)
}

// goodPlain never uses atomics on plain, so ordinary access is fine.
func goodPlain(c *counter) {
	c.plain++
	_ = c.plain
}

// allowed documents a plain read the analyzer cannot prove safe: after a
// WaitGroup join every writer has returned, so the read is ordered.
func allowed(c *counter) uint64 {
	//lint:allow atomicmix read happens after the writers' WaitGroup join
	return c.hits
}
