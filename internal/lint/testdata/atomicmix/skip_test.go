package atomicmixdata

import "sync/atomic"

// Test files are exempt from atomicmix: a test that increments atomically
// in goroutines and reads plainly after joining them is an idiom, not a
// hot-path hazard. No diagnostic is expected here.
func mixedInTest() uint64 {
	var n uint64
	var c counter
	atomic.AddUint64(&c.hits, 1)
	n = c.hits
	return n
}
