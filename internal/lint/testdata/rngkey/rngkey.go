//lintpkg:geoserp/internal/webcorpus

// Package rngkeydata seeds rngkey violations: two NewKeyed call sites
// sharing a constant key prefix are a stream collision; distinct prefixes
// and fully dynamic keys are not.
package rngkeydata

import "geoserp/internal/detrand"

func streams(seed uint64, trace string) {
	_ = detrand.NewKeyed(seed, "request", trace)
	_ = detrand.NewKeyed(seed, "request", trace) // want "rngkey: detrand.NewKeyed key prefix \"request\" duplicates the stream opened at"

	// A distinct leading key is an independent stream.
	_ = detrand.NewKeyed(seed, "newsrotation", trace)

	// No constant prefix: the key is entirely dynamic, so the analyzer has
	// nothing to compare and skips the site.
	_ = detrand.NewKeyed(seed, trace)

	// The collision below is deliberate and annotated.
	_ = detrand.NewKeyed(seed, "harness", trace)
	_ = detrand.NewKeyed(seed, "harness", trace) //lint:allow rngkey deliberate collision exercising the harness
}
