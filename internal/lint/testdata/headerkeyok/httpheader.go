//lintpkg:geoserp/internal/httpheader

// Package httpheader mirrors the real constants package: the one scope
// where raw X-* literals are the point. No diagnostic is expected here.
package httpheader

const (
	TraceID    = "X-Trace-Id"
	Datacenter = "X-Datacenter"
)
