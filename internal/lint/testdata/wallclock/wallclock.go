// Package wallclockdata seeds wallclock violations for the golden harness:
// direct reads of the process clock are flagged, simclock-friendly idioms
// and pure time-arithmetic are not, and //lint:allow is the escape hatch.
package wallclockdata

import "time"

// bad reads the process clock directly.
func bad() time.Time {
	return time.Now() // want "wallclock: time.Now reads the process wall clock outside internal/simclock"
}

// badSleep schedules against the process clock.
func badSleep() {
	time.Sleep(time.Second) // want "wallclock: time.Sleep reads the process wall clock outside internal/simclock"
}

// badTicker builds a wall-clock ticker.
func badTicker() {
	t := time.NewTicker(time.Minute) // want "wallclock: time.NewTicker reads the process wall clock outside internal/simclock"
	t.Stop()
}

// good only does time arithmetic: constructing instants and durations
// never reads the clock.
func good() time.Time {
	epoch := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	return epoch.Add(11 * time.Minute)
}

// allowed is the sanctioned escape hatch: the annotation names the
// analyzer and carries a reason.
func allowed() time.Time {
	return time.Now() //lint:allow wallclock process-edge timestamp outside any campaign
}

// badAfter arms a one-shot wall-clock timer channel.
func badAfter() {
	<-time.After(time.Second) // want "wallclock: time.After reads the process wall clock outside internal/simclock"
}

// badTick leaks a wall-clock ticker channel.
func badTick() {
	for range time.Tick(time.Minute) { // want "wallclock: time.Tick reads the process wall clock outside internal/simclock"
		break
	}
}

// badTimer builds a wall-clock timer.
func badTimer() {
	t := time.NewTimer(time.Second) // want "wallclock: time.NewTimer reads the process wall clock outside internal/simclock"
	t.Stop()
}
