package wallclockdata

import "time"

// Test files are exempt from wallclock: tests may time out, poll, and
// benchmark against real time. No diagnostic is expected here.
func elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}
