package metrics

import "math"

// This file extends the paper's two metrics with rank-aware comparisons.
// Edit distance conflates two different phenomena — results being
// *replaced* and results being *reordered* — which the paper teases apart
// informally ("the Jaccard index shows that 18-34% of the search results
// vary ... while the edit distance shows that 6-10 URLs are presented in a
// different order"). Kendall's tau quantifies the reordering of shared
// results directly, and rank-biased overlap (RBO; Webber et al. 2010)
// gives a single top-weighted similarity, appropriate for search pages
// where rank 1 matters far more than rank 15.

// KendallTau returns Kendall's rank correlation between the orderings of
// the URLs common to both lists: +1 when shared results appear in the same
// relative order, -1 when fully reversed. Lists sharing fewer than two
// URLs return 1 (no observable reordering). Duplicate URLs use their first
// occurrence.
func KendallTau(a, b []string) float64 {
	posA := make(map[string]int, len(a))
	for i, u := range a {
		if _, dup := posA[u]; !dup {
			posA[u] = i
		}
	}
	type pairPos struct{ ra, rb int }
	var shared []pairPos
	seen := make(map[string]bool, len(b))
	for j, u := range b {
		if seen[u] {
			continue
		}
		seen[u] = true
		if i, ok := posA[u]; ok {
			shared = append(shared, pairPos{ra: i, rb: j})
		}
	}
	n := len(shared)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := shared[i].ra - shared[j].ra
			db := shared[i].rb - shared[j].rb
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	total := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(total)
}

// RBO returns the extrapolated rank-biased overlap of the two lists with
// persistence parameter p in (0, 1). Higher p weights deeper ranks more;
// the conventional choice p = 0.9 gives the first ten ranks ~86% of the
// weight. Identical lists score 1, disjoint lists 0. Invalid p panics —
// it is a programming error, not a data condition.
func RBO(a, b []string, p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("metrics: RBO persistence must be in (0, 1)")
	}
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	k := len(a)
	if len(b) > k {
		k = len(b)
	}
	seenA := make(map[string]bool, len(a))
	seenB := make(map[string]bool, len(b))
	sum := 0.0
	weight := 1.0 // p^(d-1)
	var lastAgreement float64
	for d := 1; d <= k; d++ {
		if d <= len(a) {
			seenA[a[d-1]] = true
		}
		if d <= len(b) {
			seenB[b[d-1]] = true
		}
		agreement := float64(intersectionSize(seenA, seenB)) / float64(d)
		lastAgreement = agreement
		sum += weight * agreement
		weight *= p
	}
	// Extrapolate the tail assuming agreement stays at its final value.
	return (1-p)*sum + math.Pow(p, float64(k))*lastAgreement
}

func intersectionSize(a, b map[string]bool) int {
	n := 0
	for u := range a {
		if b[u] {
			n++
		}
	}
	return n
}
