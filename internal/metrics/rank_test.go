package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKendallTauBasics(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 1},
		{[]string{"a", "b", "c"}, []string{"c", "b", "a"}, -1},
		{[]string{"a", "b"}, []string{"x", "y"}, 1},                             // no shared pairs
		{[]string{"a"}, []string{"a"}, 1},                                       // single shared
		{nil, nil, 1},                                                           // empty
		{[]string{"a", "b", "c", "d"}, []string{"a", "b", "d", "c"}, 2.0 / 3.0}, // one discordant pair of 6
	}
	for i, c := range cases {
		if got := KendallTau(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("case %d: tau = %v, want %v", i, got, c.want)
		}
	}
}

func TestKendallTauIgnoresNonShared(t *testing.T) {
	// Shared items a,b,c in same order; unshared items interleaved.
	a := []string{"a", "x1", "b", "x2", "c"}
	b := []string{"y1", "a", "b", "y2", "c", "y3"}
	if got := KendallTau(a, b); got != 1 {
		t.Fatalf("tau = %v, want 1", got)
	}
}

func TestKendallTauProperties(t *testing.T) {
	f := func(a, b []string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		tau := KendallTau(a, b)
		if tau < -1-1e-9 || tau > 1+1e-9 {
			return false
		}
		// Symmetry and self-agreement.
		return math.Abs(tau-KendallTau(b, a)) < 1e-9 && KendallTau(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRBOBasics(t *testing.T) {
	same := []string{"a", "b", "c", "d"}
	if got := RBO(same, same, 0.9); math.Abs(got-1) > 1e-9 {
		t.Fatalf("identical RBO = %v, want 1", got)
	}
	disjoint := RBO([]string{"a", "b"}, []string{"x", "y"}, 0.9)
	if disjoint != 0 {
		t.Fatalf("disjoint RBO = %v, want 0", disjoint)
	}
	if got := RBO(nil, nil, 0.9); got != 1 {
		t.Fatalf("empty RBO = %v, want 1", got)
	}
}

func TestRBOTopWeighted(t *testing.T) {
	base := []string{"a", "b", "c", "d", "e"}
	// Changing the top result must hurt more than changing the bottom one.
	topChanged := []string{"X", "b", "c", "d", "e"}
	bottomChanged := []string{"a", "b", "c", "d", "X"}
	top := RBO(base, topChanged, 0.9)
	bottom := RBO(base, bottomChanged, 0.9)
	if top >= bottom {
		t.Fatalf("top change RBO %v >= bottom change RBO %v", top, bottom)
	}
}

func TestRBOPersistenceEffect(t *testing.T) {
	a := []string{"a", "b", "c", "d", "e", "f"}
	b := []string{"a", "b", "x", "y", "z", "w"}
	// With small p (top-heavy) the shared top-2 dominate; with large p the
	// disjoint tail drags the score down.
	shallow := RBO(a, b, 0.5)
	deep := RBO(a, b, 0.95)
	if shallow <= deep {
		t.Fatalf("p=0.5 RBO %v <= p=0.95 RBO %v", shallow, deep)
	}
}

func TestRBOProperties(t *testing.T) {
	f := func(a, b []string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		r := RBO(a, b, 0.9)
		if r < -1e-9 || r > 1+1e-9 {
			return false
		}
		return math.Abs(r-RBO(b, a, 0.9)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRBOPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RBO(p=%v) did not panic", p)
				}
			}()
			RBO([]string{"a"}, []string{"a"}, p)
		}()
	}
}

func TestRBOUnevenLengths(t *testing.T) {
	a := []string{"a", "b", "c"}
	b := []string{"a", "b", "c", "d", "e", "f"}
	r := RBO(a, b, 0.9)
	if r <= 0 || r >= 1 {
		t.Fatalf("uneven RBO = %v, want in (0,1)", r)
	}
	// The shorter list as a prefix must beat a shuffled long list.
	shuffled := []string{"f", "e", "d", "c", "b", "a"}
	if r2 := RBO(a, shuffled, 0.9); r2 >= r {
		t.Fatalf("prefix RBO %v <= shuffled RBO %v", r, r2)
	}
}
