package metrics

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"geoserp/internal/serp"
)

func TestJaccardBasics(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"x"}, nil, 0},
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"b", "a"}, 1}, // order-insensitive
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3.0},
		{[]string{"a"}, []string{"b"}, 0},
		{[]string{"a", "a", "b"}, []string{"a", "b"}, 1}, // duplicates collapse
	}
	for i, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("case %d: Jaccard = %v, want %v", i, got, c.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(a, b []string) bool {
		j := Jaccard(a, b)
		if j < 0 || j > 1 {
			return false
		}
		// Symmetry and self-identity.
		return j == Jaccard(b, a) && Jaccard(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEditDistanceBasics(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 1},
		{nil, []string{"a", "b"}, 2},
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 0},
		{[]string{"a", "b", "c"}, []string{"a", "x", "c"}, 1},
		{[]string{"a", "b"}, []string{"b", "a"}, 2},           // swap = 2 ops (no transposition)
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}, 2}, // shift + append
		{[]string{"a", "b", "c", "d"}, []string{"d", "c", "b", "a"}, 4},
	}
	for i, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Fatalf("case %d: EditDistance = %d, want %d", i, got, c.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	f := func(a, b []string) bool {
		// Bound lengths to keep the DP fast under quick.
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		d := EditDistance(a, b)
		if d != EditDistance(b, a) {
			return false
		}
		if EditDistance(a, a) != 0 {
			return false
		}
		// d is bounded by max(len) and at least |len(a)-len(b)|.
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEditDistanceTriangle(t *testing.T) {
	f := func(a, b, c []string) bool {
		trim := func(x []string) []string {
			if len(x) > 15 {
				return x[:15]
			}
			return x
		}
		a, b, c = trim(a), trim(b), trim(c)
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func page(cards ...serp.Card) *serp.Page {
	return &serp.Page{Query: "q", Cards: cards}
}

func organic(url string) serp.Card {
	return serp.Card{Type: serp.Organic, Results: []serp.Result{{URL: url, Title: url}}}
}

func meta(t serp.CardType, urls ...string) serp.Card {
	c := serp.Card{Type: t}
	for _, u := range urls {
		c.Results = append(c.Results, serp.Result{URL: u, Title: u})
	}
	return c
}

func TestComparePages(t *testing.T) {
	a := page(organic("1"), meta(serp.Maps, "m1", "m2"), organic("2"))
	b := page(organic("1"), meta(serp.Maps, "m1", "m3"), organic("2"))
	cmp := ComparePages(a, b)
	if cmp.EditDistance != 1 {
		t.Fatalf("edit = %d, want 1", cmp.EditDistance)
	}
	// links: {1,m1,m2,2} vs {1,m1,m3,2}: inter 3, union 5.
	if math.Abs(cmp.Jaccard-0.6) > 1e-12 {
		t.Fatalf("jaccard = %v, want 0.6", cmp.Jaccard)
	}
}

func TestCompareByTypeAndBreakdown(t *testing.T) {
	a := page(organic("1"), meta(serp.Maps, "m1", "m2"), meta(serp.News, "n1"), organic("2"))
	b := page(organic("1"), meta(serp.Maps, "m3", "m4"), meta(serp.News, "n1"), organic("3"))
	if cmp := CompareByType(a, b, serp.Maps); cmp.EditDistance != 2 || cmp.Jaccard != 0 {
		t.Fatalf("maps cmp = %+v", cmp)
	}
	if cmp := CompareByType(a, b, serp.News); cmp.EditDistance != 0 || cmp.Jaccard != 1 {
		t.Fatalf("news cmp = %+v", cmp)
	}
	bd := BreakdownPages(a, b)
	if bd.Maps != 2 || bd.News != 0 || bd.Other != 1 {
		t.Fatalf("breakdown = %+v", bd)
	}
	if bd.All == 0 {
		t.Fatal("All should be nonzero")
	}
	if math.Abs(bd.MapsShare()-2.0/3.0) > 1e-12 {
		t.Fatalf("MapsShare = %v", bd.MapsShare())
	}
	if bd.NewsShare() != 0 {
		t.Fatalf("NewsShare = %v", bd.NewsShare())
	}
}

func TestBreakdownNoChanges(t *testing.T) {
	a := page(organic("1"))
	bd := BreakdownPages(a, a)
	if bd.All != 0 || bd.MapsShare() != 0 || bd.NewsShare() != 0 {
		t.Fatalf("self breakdown = %+v", bd)
	}
}

func TestIdentical(t *testing.T) {
	a := page(organic("1"), organic("2"))
	b := page(organic("1"), organic("2"))
	c := page(organic("2"), organic("1"))
	d := page(organic("1"))
	if !Identical(a, b) {
		t.Fatal("equal pages not identical")
	}
	if Identical(a, c) {
		t.Fatal("reordered pages identical")
	}
	if Identical(a, d) {
		t.Fatal("different-length pages identical")
	}
}

func TestEditDistanceLargeListsPerf(t *testing.T) {
	// 22 links per page is the paper's max; make sure a much larger
	// comparison is still instant (guards against accidental exponential
	// implementations).
	var a, b []string
	for i := 0; i < 500; i++ {
		a = append(a, fmt.Sprint("u", i))
		b = append(b, fmt.Sprint("u", i+250))
	}
	if d := EditDistance(a, b); d != 500 {
		t.Fatalf("distance = %d, want 500", d)
	}
}
