// Package metrics implements the two comparison metrics of §2.3 — Jaccard
// index over the sets of result URLs, and edit distance over their ordered
// lists — plus the card-type-filtered variants used to attribute noise and
// personalization to Maps, News, or "typical" results (Figures 4 and 7).
package metrics

import (
	"geoserp/internal/serp"
)

// Jaccard returns |A ∩ B| / |A ∪ B| for the two URL lists viewed as sets.
// Two empty lists are identical by convention (1.0). A Jaccard index of 1
// means both pages contain the same results (though not necessarily in the
// same order); 0 means no overlap.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	setA := make(map[string]bool, len(a))
	for _, x := range a {
		setA[x] = true
	}
	setB := make(map[string]bool, len(b))
	for _, x := range b {
		setB[x] = true
	}
	inter := 0
	for x := range setA {
		if setB[x] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// EditDistance returns the Levenshtein distance between the two URL lists:
// the number of insertions, deletions, and substitutions needed to turn a
// into b. It measures reordering as well as composition changes.
func EditDistance(a, b []string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Single-row dynamic program.
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(
				prev[j]+1,      // deletion
				cur[j-1]+1,     // insertion
				prev[j-1]+cost, // substitution / match
			)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func minInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Comparison bundles both metrics for one pair of pages.
type Comparison struct {
	Jaccard      float64
	EditDistance int
}

// ComparePages applies the paper's extraction rule to both pages and
// compares the resulting link lists.
func ComparePages(a, b *serp.Page) Comparison {
	la, lb := a.Links(), b.Links()
	return Comparison{
		Jaccard:      Jaccard(la, lb),
		EditDistance: EditDistance(la, lb),
	}
}

// CompareByType compares only the links contributed by cards of type t —
// the paper's method for attributing differences to Maps or News results:
// "we simply calculate Jaccard and edit distance between pages after
// filtering out all search results that are not of type t".
func CompareByType(a, b *serp.Page, t serp.CardType) Comparison {
	la, lb := a.LinksOfType(t), b.LinksOfType(t)
	return Comparison{
		Jaccard:      Jaccard(la, lb),
		EditDistance: EditDistance(la, lb),
	}
}

// TypeBreakdown decomposes the edit distance between two pages into the
// shares attributable to Maps, News, and all other results. Other is
// computed from the links of organic cards; the three components do not
// sum exactly to the unfiltered edit distance (alignment interactions),
// which is why the paper reports shares ("Maps results are responsible for
// around 25% of noise") rather than exact decompositions.
type TypeBreakdown struct {
	All   int
	Maps  int
	News  int
	Other int
}

// BreakdownPages computes the per-type edit-distance decomposition.
func BreakdownPages(a, b *serp.Page) TypeBreakdown {
	return TypeBreakdown{
		All:   EditDistance(a.Links(), b.Links()),
		Maps:  EditDistance(a.LinksOfType(serp.Maps), b.LinksOfType(serp.Maps)),
		News:  EditDistance(a.LinksOfType(serp.News), b.LinksOfType(serp.News)),
		Other: EditDistance(a.LinksOfType(serp.Organic), b.LinksOfType(serp.Organic)),
	}
}

// MapsShare returns the fraction of all link changes attributable to Maps
// results (0 when there are no changes).
func (t TypeBreakdown) MapsShare() float64 {
	total := t.Maps + t.News + t.Other
	if total == 0 {
		return 0
	}
	return float64(t.Maps) / float64(total)
}

// NewsShare returns the fraction of all link changes attributable to News
// results.
func (t TypeBreakdown) NewsShare() float64 {
	total := t.Maps + t.News + t.Other
	if total == 0 {
		return 0
	}
	return float64(t.News) / float64(total)
}

// Identical reports whether two pages contain exactly the same links in the
// same order (the criterion of the §2.2 validation experiment).
func Identical(a, b *serp.Page) bool {
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		return false
	}
	for i := range la {
		if la[i] != lb[i] {
			return false
		}
	}
	return true
}
