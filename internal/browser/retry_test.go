package browser

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"geoserp/internal/serp"
	"geoserp/internal/simclock"
)

// flakyServer answers 429 for the first n requests, then serves a minimal
// valid result page.
func flakyServer(t *testing.T, n int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var count atomic.Int64
	page := &serp.Page{
		Query:    "x",
		Location: "1.000000,2.000000",
		Cards: []serp.Card{{
			Type:    serp.Organic,
			Results: []serp.Result{{URL: "https://a/", Title: "A"}},
		}},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if count.Add(1) <= int64(n) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, serp.RenderHTML(page))
	}))
	t.Cleanup(srv.Close)
	return srv, &count
}

func TestRetrySucceedsAfterBackoff(t *testing.T) {
	srv, count := flakyServer(t, 2)
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	b, err := New(srv.URL, WithRetry(4, time.Minute), WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Search("x")
		done <- err
	}()
	// Drive the virtual clock through the backoff sleeps.
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("search failed despite retries: %v", err)
			}
			if got := count.Load(); got != 3 {
				t.Fatalf("requests = %d, want 3", got)
			}
			if b.Retries() != 2 {
				t.Fatalf("retries = %d, want 2", b.Retries())
			}
			return
		default:
			if next, ok := clk.NextDeadline(); ok {
				clk.AdvanceTo(next)
			} else {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	srv, count := flakyServer(t, 100)
	b, err := New(srv.URL, WithRetry(3, 0)) // zero backoff: no sleeping
	if err != nil {
		t.Fatal(err)
	}
	_, serr := b.Search("x")
	if serr == nil {
		t.Fatal("search succeeded against a permanently limited server")
	}
	if got := count.Load(); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
}

func TestNoRetryByDefault(t *testing.T) {
	srv, count := flakyServer(t, 1)
	b, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := b.Search("x"); serr == nil {
		t.Fatal("default browser retried a 429")
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("requests = %d, want 1", got)
	}
	if b.Retries() != 0 {
		t.Fatalf("retries = %d", b.Retries())
	}
}

func TestRetryDoesNotMaskPermanentErrors(t *testing.T) {
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		count.Add(1)
		http.Error(w, "no such page", http.StatusNotFound)
	}))
	defer srv.Close()
	b, err := New(srv.URL, WithRetry(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := b.Search("x"); serr == nil {
		t.Fatal("404 accepted")
	} else if IsTransient(serr) {
		t.Fatalf("404 classified transient: %v", serr)
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("404s retried: %d requests", got)
	}
}

func TestRetryCoversServerErrors(t *testing.T) {
	var count atomic.Int64
	page := &serp.Page{
		Query:    "x",
		Location: "1.000000,2.000000",
		Cards: []serp.Card{{
			Type:    serp.Organic,
			Results: []serp.Result{{URL: "https://a/", Title: "A"}},
		}},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if count.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, serp.RenderHTML(page))
	}))
	defer srv.Close()
	b, err := New(srv.URL, WithRetry(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := b.Search("x"); serr != nil {
		t.Fatalf("search failed despite retries: %v", serr)
	}
	if got := count.Load(); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
	if b.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", b.Retries())
	}
}

func TestRetryExhaustedErrorIsTransient(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	b, err := New(srv.URL, WithRetry(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, serr := b.Search("x")
	if serr == nil {
		t.Fatal("persistent 500s accepted")
	}
	// The crawler's failure accounting keys on this classification.
	if !IsTransient(serr) {
		t.Fatalf("exhausted-retries error lost its transient mark: %v", serr)
	}
}

func TestWithRetryRejectsInvalidPolicy(t *testing.T) {
	if _, err := New("http://example.test", WithRetry(0, time.Second)); err == nil {
		t.Fatal("WithRetry(0, ...) accepted")
	}
	if _, err := New("http://example.test", WithRetry(3, -time.Second)); err == nil {
		t.Fatal("negative backoff accepted")
	}
	if _, err := New("http://example.test", WithTimeout(0)); err == nil {
		t.Fatal("WithTimeout(0) accepted")
	}
}
