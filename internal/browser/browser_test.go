package browser

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/httpheader"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
)

var cleveland = geo.Point{Lat: 41.4993, Lon: -81.6944}

func testServer(t *testing.T, mutate func(*engine.Config)) *httptest.Server {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := engine.DefaultConfig()
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	if mutate != nil {
		mutate(&cfg)
	}
	srv := httptest.NewServer(serpserver.NewHandler(engine.New(cfg, clk)))
	t.Cleanup(srv.Close)
	return srv
}

func TestBrowserSearch(t *testing.T) {
	srv := testServer(t, nil)
	b, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	b.OverrideGeolocation(cleveland)
	page, err := b.Search("Coffee")
	if err != nil {
		t.Fatal(err)
	}
	if page.Query != "Coffee" {
		t.Fatalf("query = %q", page.Query)
	}
	if !strings.HasPrefix(page.Location, "41.4993") {
		t.Fatalf("page location %q does not match spoofed GPS", page.Location)
	}
	if b.Fetches() != 1 {
		t.Fatalf("fetches = %d", b.Fetches())
	}
	if b.LastDatacenter() == "" {
		t.Fatal("datacenter not recorded")
	}
}

func TestBrowserValidation(t *testing.T) {
	if _, err := New("not a url::"); err == nil {
		t.Fatal("junk URL accepted")
	}
	if _, err := New("/relative"); err == nil {
		t.Fatal("relative URL accepted")
	}
	srv := testServer(t, nil)
	b, _ := New(srv.URL)
	if _, err := b.Search(""); err == nil {
		t.Fatal("empty term accepted")
	}
}

func TestBrowserGeolocationOverrideLifecycle(t *testing.T) {
	srv := testServer(t, nil)
	b, _ := New(srv.URL, WithSourceIP("10.5.0.1"))
	b.OverrideGeolocation(cleveland)
	p1, err := b.Search("Gay Marriage")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(p1.Location, "41.4993") {
		t.Fatalf("override not applied: %q", p1.Location)
	}
	b.ClearGeolocation()
	p2, err := b.Search("Gay Marriage")
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(p2.Location, "41.4993") {
		t.Fatalf("override survived ClearGeolocation: %q", p2.Location)
	}
}

func TestBrowserCookiePersistenceAndClear(t *testing.T) {
	// With a persistent jar, the session carries search history: two
	// identical quiet-engine queries in a session differ from a fresh
	// one. Clearing cookies resets to the fresh baseline.
	srv := testServer(t, func(cfg *engine.Config) {
		cfg.WebJitterSigma = 0
		cfg.PlaceJitterSigma = 0
		cfg.NewsJitterSigma = 0
		cfg.Buckets = 1
		cfg.BucketWeightSpread = 0
		cfg.Datacenters = 1
		cfg.ReplicaSkew = 0
		cfg.MapsCardProb = 1
	})
	fresh, _ := New(srv.URL, WithSourceIP("10.5.0.9"))
	fresh.OverrideGeolocation(cleveland)
	baselinePage, err := fresh.SearchAndReset("Coffee")
	if err != nil {
		t.Fatal(err)
	}
	baseline := baselinePage.Links()

	b, _ := New(srv.URL, WithSourceIP("10.5.0.9"))
	b.OverrideGeolocation(cleveland)
	if _, err := b.Search("Coffee"); err != nil {
		t.Fatal(err)
	}
	second, err := b.Search("Coffee")
	if err != nil {
		t.Fatal(err)
	}
	if equal(second.Links(), baseline) {
		t.Fatal("cookie-carrying session showed no history personalization")
	}
	b.ClearCookies()
	third, err := b.Search("Coffee")
	if err != nil {
		t.Fatal(err)
	}
	if !equal(third.Links(), baseline) {
		t.Fatal("ClearCookies did not reset history personalization")
	}
}

func TestBrowserRateLimitError(t *testing.T) {
	srv := testServer(t, func(cfg *engine.Config) {
		cfg.RateBurst = 1
		cfg.RatePerMinute = 0.0001
	})
	b, _ := New(srv.URL, WithSourceIP("10.7.0.1"))
	b.OverrideGeolocation(cleveland)
	if _, err := b.Search("Coffee"); err != nil {
		t.Fatal(err)
	}
	_, err := b.Search("Coffee")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
}

func TestBrowserPinnedDatacenter(t *testing.T) {
	srv := testServer(t, nil)
	b, _ := New(srv.URL, WithPinnedDatacenter("dc-2"))
	b.OverrideGeolocation(cleveland)
	if _, err := b.Search("Coffee"); err != nil {
		t.Fatal(err)
	}
	if b.LastDatacenter() != "dc-2" {
		t.Fatalf("served by %q, want dc-2", b.LastDatacenter())
	}
}

func TestBrowserFingerprintSent(t *testing.T) {
	var gotUA, gotLang, gotXFF string
	probe := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotUA = r.UserAgent()
		gotLang = r.Header.Get("Accept-Language")
		gotXFF = r.Header.Get(httpheader.ForwardedFor)
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	defer probe.Close()
	b, _ := New(probe.URL, WithSourceIP("10.8.0.3"))
	_, err := b.Search("x")
	if err == nil {
		t.Fatal("teapot response accepted")
	}
	if !strings.Contains(gotUA, "iPhone") {
		t.Fatalf("UA = %q, want iOS Safari", gotUA)
	}
	if gotLang != "en-US" {
		t.Fatalf("lang = %q", gotLang)
	}
	if gotXFF != "10.8.0.3" {
		t.Fatalf("xff = %q", gotXFF)
	}
	custom := Fingerprint{UserAgent: "TestBot/1.0", AcceptLanguage: "de-DE"}
	b2, _ := New(probe.URL, WithFingerprint(custom))
	b2.Search("x")
	if gotUA != "TestBot/1.0" || gotLang != "de-DE" {
		t.Fatalf("custom fingerprint not sent: %q %q", gotUA, gotLang)
	}
}

func TestBrowserParseFailureOnGarbage(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("<html>not a results page</html>"))
	}))
	defer garbage.Close()
	b, _ := New(garbage.URL)
	if _, err := b.Search("x"); err == nil {
		t.Fatal("garbage page parsed successfully")
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDesktopFingerprintIgnoresGeolocation(t *testing.T) {
	// The desktop surface (prior work's only option) has no Geolocation
	// API: the override must have no effect end-to-end.
	srv := testServer(t, func(cfg *engine.Config) {
		cfg.WebJitterSigma = 0
		cfg.PlaceJitterSigma = 0
		cfg.NewsJitterSigma = 0
		cfg.Buckets = 1
		cfg.BucketWeightSpread = 0
		cfg.Datacenters = 1
		cfg.ReplicaSkew = 0
		cfg.MapsCardProb = 1
	})
	b, err := New(srv.URL, WithFingerprint(Firefox38Desktop()), WithSourceIP("10.6.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	b.OverrideGeolocation(cleveland)
	p1, err := b.SearchAndReset("Coffee")
	if err != nil {
		t.Fatal(err)
	}
	losAngeles := geo.Point{Lat: 34.0522, Lon: -118.2437}
	b.OverrideGeolocation(losAngeles)
	p2, err := b.SearchAndReset("Coffee")
	if err != nil {
		t.Fatal(err)
	}
	if !equal(p1.Links(), p2.Links()) {
		t.Fatal("desktop surface personalized on the spoofed GPS coordinate")
	}
	if strings.HasPrefix(p1.Location, "41.4993") {
		t.Fatalf("desktop page reports the spoofed coordinate: %s", p1.Location)
	}

	// The same two coordinates through the mobile surface DO differ.
	m, err := New(srv.URL, WithSourceIP("10.6.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	m.OverrideGeolocation(cleveland)
	m1, err := m.SearchAndReset("Coffee")
	if err != nil {
		t.Fatal(err)
	}
	m.OverrideGeolocation(losAngeles)
	m2, err := m.SearchAndReset("Coffee")
	if err != nil {
		t.Fatal(err)
	}
	if equal(m1.Links(), m2.Links()) {
		t.Fatal("mobile surface did not personalize on the spoofed coordinate")
	}
}
