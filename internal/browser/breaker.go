package browser

import (
	"time"
)

// Breaker states. The machine is the classic three-state circuit breaker:
// closed (traffic flows, consecutive failures are counted), open (traffic
// fails fast until a cooldown elapses), half-open (one probe is allowed
// through; success closes the breaker, failure reopens it).
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Transition labels reported through the browser_breaker_transitions_total
// metric. "open" counts trips from closed, "reopen" failed half-open
// probes; at quiescence (every endpoint healthy again) open == close, which
// the soak harness asserts.
const (
	breakerTransOpen     = "open"
	breakerTransReopen   = "reopen"
	breakerTransHalfOpen = "half_open"
	breakerTransClose    = "close"
)

// breaker is a per-endpoint circuit breaker. It is driven entirely by the
// campaign clock instants its owner passes in — it never reads a clock
// itself — so under a Manual clock its transitions are a pure function of
// the (deterministic) failure sequence, and same-seed chaos runs replay
// identical breaker timelines. Like Browser itself it is not safe for
// concurrent use.
type breaker struct {
	threshold int           // consecutive failures that trip the breaker
	cooldown  time.Duration // open-state dwell before a half-open probe

	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // instant of the most recent trip

	// onTransition, when set, observes every state change (metric hook).
	onTransition func(label string)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

func (br *breaker) transition(state int, label string) {
	br.state = state
	if br.onTransition != nil {
		br.onTransition(label)
	}
}

// allow reports whether a request may be issued at instant now. While the
// breaker is open and the cooldown has not elapsed it returns ok=false with
// the remaining wait; once the cooldown passes the breaker moves to
// half-open and admits a single probe.
func (br *breaker) allow(now time.Time) (wait time.Duration, ok bool) {
	if br.state != breakerOpen {
		return 0, true
	}
	if remaining := br.openedAt.Add(br.cooldown).Sub(now); remaining > 0 {
		return remaining, false
	}
	br.transition(breakerHalfOpen, breakerTransHalfOpen)
	return 0, true
}

// success records a request that completed. A half-open probe succeeding
// closes the breaker; in the closed state it resets the failure streak.
func (br *breaker) success() {
	if br.state == breakerHalfOpen {
		br.transition(breakerClosed, breakerTransClose)
	}
	br.failures = 0
}

// failure records a breaker-eligible failure at instant now: transport
// errors, 5xx, and unparsable pages. Explicit server pushback — 429s and
// 503 sheds, where the server is alive and named a wait — must not be fed
// here: the breaker guards against an endpoint that stopped answering
// usefully, not one asking for patience.
func (br *breaker) failure(now time.Time) {
	switch br.state {
	case breakerHalfOpen:
		br.openedAt = now
		br.transition(breakerOpen, breakerTransReopen)
	case breakerClosed:
		br.failures++
		if br.failures >= br.threshold {
			br.openedAt = now
			br.transition(breakerOpen, breakerTransOpen)
		}
	}
}

// stateName renders the state for spans, errors, and BreakerState.
func (br *breaker) stateName() string {
	switch br.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
