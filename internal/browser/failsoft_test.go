package browser

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geoserp/internal/httpheader"
	"geoserp/internal/serp"
)

func okHandler(t *testing.T) http.Handler {
	t.Helper()
	page := &serp.Page{
		Query:    "x",
		Location: "1.000000,2.000000",
		Cards: []serp.Card{{
			Type:    serp.Organic,
			Results: []serp.Result{{URL: "https://a/", Title: "A"}},
		}},
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, serp.RenderHTML(page))
	})
}

func TestSearchContextCancellationAbortsFetch(t *testing.T) {
	arrived := make(chan struct{})
	release := make(chan struct{})
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		count.Add(1)
		close(arrived)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	b, err := New(srv.URL, WithRetry(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, serr := b.SearchContext(ctx, "x")
		done <- serr
	}()
	<-arrived
	cancel()
	select {
	case serr := <-done:
		if serr == nil {
			t.Fatal("cancelled search succeeded")
		}
		if !errors.Is(serr, context.Canceled) {
			t.Fatalf("error does not carry the cancellation: %v", serr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled search did not return")
	}
	// Cancellation is terminal: the retry policy must not have re-fetched.
	if got := count.Load(); got != 1 {
		t.Fatalf("cancelled fetch was retried: %d requests", got)
	}
	if b.Retries() != 0 {
		t.Fatalf("retries = %d, want 0", b.Retries())
	}
}

func TestSearchContextAlreadyCancelled(t *testing.T) {
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		count.Add(1)
	}))
	defer srv.Close()
	b, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, serr := b.SearchContext(ctx, "x"); !errors.Is(serr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", serr)
	}
	if count.Load() != 0 {
		t.Fatal("fetch issued despite cancelled context")
	}
}

func TestChaosTransportErrorInjectionIsDeterministic(t *testing.T) {
	srv := httptest.NewServer(okHandler(t))
	defer srv.Close()
	observe := func() []bool {
		ct := NewChaosTransport(ChaosConfig{Seed: 42, ErrorRate: 0.3}, nil)
		b, err := New(srv.URL, WithTransport(ct))
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []bool
		for i := 0; i < 40; i++ {
			b.SetTraceID(fmt.Sprintf("trace-%d", i))
			_, serr := b.Search("x")
			outcomes = append(outcomes, serr == nil)
			if serr != nil && !IsTransient(serr) {
				t.Fatalf("injected transport error not transient: %v", serr)
			}
		}
		return outcomes
	}
	a, bb := observe(), observe()
	failures := 0
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("run disagreement at trace-%d: faults are not trace-keyed", i)
		}
		if !a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Fatalf("failures = %d/%d, want a mix at 30%% error rate", failures, len(a))
	}
}

func TestChaosRetriedAttemptDrawsFreshFault(t *testing.T) {
	srv := httptest.NewServer(okHandler(t))
	defer srv.Close()
	// With a 50% error rate and 8 attempts, a fault that repeated for every
	// attempt of the same trace would fail this ~0.4% of the time per trace;
	// across 30 traces at least one must succeed via retry unless retries
	// replay the identical draw.
	ct := NewChaosTransport(ChaosConfig{Seed: 7, ErrorRate: 0.5}, nil)
	b, err := New(srv.URL, WithTransport(ct), WithRetry(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	succeeded := 0
	for i := 0; i < 30; i++ {
		b.SetTraceID(fmt.Sprintf("trace-%d", i))
		if _, serr := b.Search("x"); serr == nil {
			succeeded++
		}
	}
	if succeeded == 0 {
		t.Fatal("no search succeeded: retried attempts appear to replay the same fault draw")
	}
	if b.Retries() == 0 {
		t.Fatal("no retries recorded at 50% injected error rate")
	}
}

func TestChaosServerErrorInjection(t *testing.T) {
	var reached atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached.Add(1)
		okHandler(t).ServeHTTP(w, r)
	}))
	defer srv.Close()
	ct := NewChaosTransport(ChaosConfig{Seed: 1, ServerErrorRate: 1}, nil)
	b, err := New(srv.URL, WithTransport(ct))
	if err != nil {
		t.Fatal(err)
	}
	b.SetTraceID("t-1")
	_, serr := b.Search("x")
	if serr == nil {
		t.Fatal("injected 500 accepted")
	}
	if !IsTransient(serr) {
		t.Fatalf("injected 500 not transient: %v", serr)
	}
	if !strings.Contains(serr.Error(), "500") {
		t.Fatalf("error does not surface the status: %v", serr)
	}
	if reached.Load() != 0 {
		t.Fatal("synthesized 500 still hit the real server")
	}
	if ct.Injected() == 0 {
		t.Fatal("injection counter did not move")
	}
}

func TestChaosTruncationSurfacesUnexpectedEOF(t *testing.T) {
	srv := httptest.NewServer(okHandler(t))
	defer srv.Close()
	ct := NewChaosTransport(ChaosConfig{Seed: 3, TruncateRate: 1}, nil)
	b, err := New(srv.URL, WithTransport(ct))
	if err != nil {
		t.Fatal(err)
	}
	b.SetTraceID("t-1")
	_, serr := b.Search("x")
	if serr == nil {
		t.Fatal("truncated body accepted")
	}
	if !errors.Is(serr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation surfaced as %v, want io.ErrUnexpectedEOF", serr)
	}
	if !IsTransient(serr) {
		t.Fatalf("truncation not transient: %v", serr)
	}
}

func TestChaosUntracedRequestsStillDrawFaults(t *testing.T) {
	srv := httptest.NewServer(okHandler(t))
	defer srv.Close()
	ct := NewChaosTransport(ChaosConfig{Seed: 9, ErrorRate: 0.5}, nil)
	b, err := New(srv.URL, WithTransport(ct))
	if err != nil {
		t.Fatal(err)
	}
	ok, fail := 0, 0
	for i := 0; i < 40; i++ {
		if _, serr := b.Search("x"); serr == nil {
			ok++
		} else {
			fail++
		}
	}
	if ok == 0 || fail == 0 {
		t.Fatalf("untraced outcomes ok=%d fail=%d, want a mix", ok, fail)
	}
}

func TestChaosPassThroughEchoesTrace(t *testing.T) {
	// A fault-free chaos transport must be invisible: headers (including
	// the trace used for keying) reach the server untouched.
	var gotTrace atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTrace.Store(r.Header.Get(httpheader.TraceID))
		okHandler(t).ServeHTTP(w, r)
	}))
	defer srv.Close()
	ct := NewChaosTransport(ChaosConfig{Seed: 5}, nil)
	b, err := New(srv.URL, WithTransport(ct))
	if err != nil {
		t.Fatal(err)
	}
	b.SetTraceID("trace-echo")
	if _, serr := b.Search("x"); serr != nil {
		t.Fatalf("fault-free chaos transport broke the fetch: %v", serr)
	}
	if gotTrace.Load() != "trace-echo" {
		t.Fatalf("trace header = %v, want trace-echo", gotTrace.Load())
	}
}

func TestTruncateCutsOnRuneBoundary(t *testing.T) {
	// "café" is 5 bytes; cutting at 4 lands mid-é and must back up.
	if got := truncate("café!!!", 4); got != "caf..." {
		t.Fatalf("truncate = %q, want %q", got, "caf...")
	}
	if got := truncate("plain", 10); got != "plain" {
		t.Fatalf("truncate = %q, want unchanged", got)
	}
	if got := truncate("abcdef", 3); got != "abc..." {
		t.Fatalf("truncate = %q, want %q", got, "abc...")
	}
}
