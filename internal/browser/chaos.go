package browser

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geoserp/internal/detrand"
	"geoserp/internal/httpheader"
	"geoserp/internal/simclock"
)

// ChaosConfig describes the faults a ChaosTransport injects between the
// browser and the search service. Rates are probabilities in [0, 1] and are
// drawn independently per attempt, keyed on the request's trace ID and a
// per-trace attempt counter — so a given (trace, attempt) pair always fails
// the same way, keeping fault-injection campaigns exactly reproducible.
type ChaosConfig struct {
	// Seed keys every fault draw; the same seed replays the same faults.
	Seed uint64
	// ErrorRate is the probability a round trip fails at the transport
	// layer (connection refused / reset) before reaching the server.
	ErrorRate float64
	// ServerErrorRate is the probability the round trip is answered with a
	// synthesized 500 instead of the real response.
	ServerErrorRate float64
	// TruncateRate is the probability the real response body is cut short
	// mid-stream, surfacing io.ErrUnexpectedEOF to the reader.
	TruncateRate float64
	// Latency, when positive, is added to every round trip (slept on
	// Clock, so virtual-time campaigns absorb it for free).
	Latency time.Duration
	// Clock times the injected latency; defaults to the wall clock.
	Clock simclock.Clock
}

// ChaosTransport is an http.RoundTripper that injects deterministic faults
// in front of another transport. It models the flaky live service the
// paper's crawlers ran against, so fail-soft behaviour can be tested
// without a misbehaving network.
type ChaosTransport struct {
	cfg  ChaosConfig
	next http.RoundTripper

	mu       sync.Mutex
	attempts map[string]int // per-trace attempt counters
	seq      atomic.Uint64  // fallback key for untraced requests

	injected atomic.Uint64
}

// NewChaosTransport wraps next (http.DefaultTransport when nil) with fault
// injection per cfg.
func NewChaosTransport(cfg ChaosConfig, next http.RoundTripper) *ChaosTransport {
	if next == nil {
		next = http.DefaultTransport
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Wall()
	}
	return &ChaosTransport{cfg: cfg, next: next, attempts: make(map[string]int)}
}

// Injected reports how many faults have been injected so far.
func (c *ChaosTransport) Injected() uint64 { return c.injected.Load() }

// maxTrackedTraces bounds the legacy per-trace attempt map: once it holds
// this many traces it is reset wholesale. The bound only matters for
// traced clients that do not send X-Trace-Attempt; the browser always
// does, so campaign-length runs never touch the map at all.
const maxTrackedTraces = 4096

// attemptKey returns the deterministic draw key for this request: the trace
// ID plus its attempt number (retries of one trace must be able to draw
// differently, or a retried fault would repeat forever). The attempt comes
// from the X-Trace-Attempt header the browser sends with every try — a
// growth-free, arrival-order-independent key. Traced requests without the
// header fall back to a bounded counting map, untraced ones to a global
// sequence number.
func (c *ChaosTransport) attemptKey(req *http.Request) string {
	trace := req.Header.Get(httpheader.TraceID)
	if trace == "" {
		return fmt.Sprintf("seq-%d", c.seq.Add(1))
	}
	if v := req.Header.Get(httpheader.TraceAttempt); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return fmt.Sprintf("%s-%d", trace, n)
		}
	}
	c.mu.Lock()
	if len(c.attempts) >= maxTrackedTraces {
		// An unbounded map would grow one entry per trace for the whole
		// campaign (~140k in a full study run). Resetting restarts attempt
		// numbering for in-flight traces, which at worst replays a fault —
		// acceptable for the header-less legacy path.
		clear(c.attempts)
	}
	c.attempts[trace]++
	n := c.attempts[trace]
	c.mu.Unlock()
	return fmt.Sprintf("%s-%d", trace, n)
}

// RoundTrip injects at most one fault per attempt, drawn in a fixed order
// (transport error, then 5xx, then truncation) so rates compose
// predictably.
func (c *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rng := detrand.NewKeyed(c.cfg.Seed, "chaos", c.attemptKey(req))
	if c.cfg.Latency > 0 {
		// A caller holding a virtual clock (see simclock.Holder) must
		// sleep through SleepHeld, or the driver it is holding off would
		// never advance past this very sleep.
		if h := simclock.HeldFrom(req.Context()); h != nil {
			h.SleepHeld(c.cfg.Latency)
		} else {
			c.cfg.Clock.Sleep(c.cfg.Latency)
		}
	}
	if rng.Bool(c.cfg.ErrorRate) {
		c.injected.Add(1)
		return nil, fmt.Errorf("chaos: injected transport error for %s", req.URL.Path)
	}
	if rng.Bool(c.cfg.ServerErrorRate) {
		c.injected.Add(1)
		body := "chaos: injected server error"
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := c.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if rng.Bool(c.cfg.TruncateRate) {
		c.injected.Add(1)
		// Cut the body 1–128 bytes in. The wrapper surfaces
		// io.ErrUnexpectedEOF (not a clean EOF) so readers can tell a torn
		// response from a short one.
		resp.Body = &truncatedBody{r: resp.Body, remaining: 1 + rng.Intn(128)}
		resp.ContentLength = -1
	}
	return resp, nil
}

// truncatedBody passes through up to remaining bytes of r, then reports
// io.ErrUnexpectedEOF. If r ends before the cut point the response was
// genuinely short, and the clean EOF passes through untouched.
type truncatedBody struct {
	r         io.ReadCloser
	remaining int
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.r.Read(p)
	t.remaining -= n
	if err == nil && t.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.r.Close() }
