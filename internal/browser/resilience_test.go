package browser

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"geoserp/internal/serp"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// shedServer answers 503 (with Retry-After ra when non-empty) for the first
// n requests, then serves a valid page. n < 0 sheds forever.
func shedServer(t *testing.T, n int, ra string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var count atomic.Int64
	ok := okHandler(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c := count.Add(1); n < 0 || c <= int64(n) {
			if ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			http.Error(w, "server overloaded, request shed (queue_full)", http.StatusServiceUnavailable)
			return
		}
		ok.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &count
}

// driveSearch runs Search in a goroutine while advancing the virtual clock
// through its sleeps, returning the search error.
func driveSearch(t *testing.T, b *Browser, clk *simclock.Manual) error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := b.Search("x")
		done <- err
	}()
	for {
		select {
		case err := <-done:
			return err
		default:
			if next, ok := clk.NextDeadline(); ok {
				clk.AdvanceTo(next)
			} else {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
}

func TestRetryAfterOverridesLinearBackoff(t *testing.T) {
	// One 503 naming a 7-second wait, then success. The linear policy would
	// sleep a full minute; honouring the server means exactly 7s elapse.
	srv, count := shedServer(t, 1, "7")
	epoch := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	clk := simclock.NewManual(epoch)
	b, err := New(srv.URL, WithRetry(3, time.Minute), WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if serr := driveSearch(t, b, clk); serr != nil {
		t.Fatalf("search failed despite the shed clearing: %v", serr)
	}
	if got := count.Load(); got != 2 {
		t.Fatalf("requests = %d, want 2", got)
	}
	if got := clk.Now().Sub(epoch); got != 7*time.Second {
		t.Fatalf("virtual time advanced %s, want the server-named 7s (linear policy would sleep 1m)", got)
	}
}

func TestRetryAfterHonouredOn429(t *testing.T) {
	// The same override applies to rate-limit pushback: flakyServer names a
	// 1-second wait on its 429s, which must beat the 1-minute linear base.
	srv, count := flakyServer(t, 2)
	epoch := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	clk := simclock.NewManual(epoch)
	b, err := New(srv.URL, WithRetry(4, time.Minute), WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if serr := driveSearch(t, b, clk); serr != nil {
		t.Fatalf("search failed despite retries: %v", serr)
	}
	if got := count.Load(); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
	if got := clk.Now().Sub(epoch); got != 2*time.Second {
		t.Fatalf("virtual time advanced %s, want 2 server-named seconds", got)
	}
}

func TestShedsAreExemptFromRetryAttempts(t *testing.T) {
	// Five shed waves then success, with only two attempts in the failure
	// budget: sheds must not consume it.
	srv, count := shedServer(t, 5, "")
	reg := telemetry.NewRegistry()
	b, err := New(srv.URL, WithRetry(2, 0), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := b.Search("x"); serr != nil {
		t.Fatalf("search failed despite shed-exempt retries: %v", serr)
	}
	if got := count.Load(); got != 6 {
		t.Fatalf("requests = %d, want 6", got)
	}
	if got := reg.Counter("browser_shed_total", "").Value(); got != 5 {
		t.Fatalf("browser_shed_total = %d, want 5", got)
	}
}

func TestShedRetriesBoundSustainedOverload(t *testing.T) {
	// A server that never stops shedding: the separate shed cap is what
	// terminates the search, and the error keeps its shed classification.
	srv, count := shedServer(t, -1, "")
	b, err := New(srv.URL, WithRetry(2, 0), WithShedRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	_, serr := b.Search("x")
	if serr == nil {
		t.Fatal("search succeeded against a permanently shedding server")
	}
	if !IsShed(serr) || !IsTransient(serr) {
		t.Fatalf("terminal shed error lost its classification: %v", serr)
	}
	if got := count.Load(); got != 4 {
		t.Fatalf("requests = %d, want 4 (1 + 3 shed retries)", got)
	}

	// WithShedRetries(0): the first 503 is terminal even with attempts left.
	srv0, count0 := shedServer(t, -1, "")
	b0, err := New(srv0.URL, WithRetry(5, 0), WithShedRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := b0.Search("x"); !IsShed(serr) {
		t.Fatalf("err = %v, want a shed", serr)
	}
	if got := count0.Load(); got != 1 {
		t.Fatalf("requests = %d, want 1", got)
	}
}

func TestOversizeBodyFailsPermanently(t *testing.T) {
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		count.Add(1)
		w.Write(bytes.Repeat([]byte("x"), 4096))
	}))
	defer srv.Close()
	b, err := New(srv.URL, WithRetry(5, 0), WithMaxBodySize(1024))
	if err != nil {
		t.Fatal(err)
	}
	_, serr := b.Search("x")
	if !errors.Is(serr, ErrBodyTooLarge) {
		t.Fatalf("err = %v, want ErrBodyTooLarge", serr)
	}
	if IsTransient(serr) {
		t.Fatalf("oversize body classified transient: %v", serr)
	}
	// Permanent: re-downloading would overflow the cap every time.
	if got := count.Load(); got != 1 {
		t.Fatalf("oversize body was re-fetched: %d requests", got)
	}
}

func TestBodyExactlyAtCapIsAccepted(t *testing.T) {
	page := &serp.Page{
		Query:    "x",
		Location: "1.000000,2.000000",
		Cards: []serp.Card{{
			Type:    serp.Organic,
			Results: []serp.Result{{URL: "https://a/", Title: "A"}},
		}},
	}
	html := serp.RenderHTML(page)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, html)
	}))
	defer srv.Close()
	b, err := New(srv.URL, WithMaxBodySize(int64(len(html))))
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := b.Search("x"); serr != nil {
		t.Fatalf("a body exactly at the cap was rejected: %v", serr)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	var seq []string
	br := newBreaker(2, time.Minute)
	br.onTransition = func(label string) { seq = append(seq, label) }
	now := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

	if _, ok := br.allow(now); !ok {
		t.Fatal("new breaker refused traffic")
	}
	// A success between failures resets the consecutive-failure streak.
	br.failure(now)
	br.success()
	br.failure(now)
	if br.stateName() != "closed" {
		t.Fatalf("state = %s after a broken streak, want closed", br.stateName())
	}
	br.failure(now)
	if br.stateName() != "open" {
		t.Fatalf("state = %s after %d consecutive failures, want open", br.stateName(), 2)
	}
	// Open: traffic fails fast with the remaining cooldown.
	wait, ok := br.allow(now.Add(20 * time.Second))
	if ok || wait != 40*time.Second {
		t.Fatalf("allow mid-cooldown = (%s, %v), want (40s, false)", wait, ok)
	}
	// Cooldown elapsed: a single half-open probe is admitted.
	if _, ok := br.allow(now.Add(time.Minute)); !ok {
		t.Fatal("probe refused after the cooldown elapsed")
	}
	if br.stateName() != "half-open" {
		t.Fatalf("state = %s, want half-open", br.stateName())
	}
	// A failing probe reopens and restarts the cooldown from its instant.
	br.failure(now.Add(time.Minute))
	if _, ok := br.allow(now.Add(90 * time.Second)); ok {
		t.Fatal("reopened breaker admitted traffic mid-cooldown")
	}
	if _, ok := br.allow(now.Add(2 * time.Minute)); !ok {
		t.Fatal("second probe refused")
	}
	// A succeeding probe closes the breaker for good.
	br.success()
	if br.stateName() != "closed" {
		t.Fatalf("state = %s after a successful probe, want closed", br.stateName())
	}
	want := []string{"open", "half_open", "reopen", "half_open", "close"}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", seq, want)
	}
}

func TestBreakerOpensFailsFastAndRecloses(t *testing.T) {
	var healthy atomic.Bool
	var count atomic.Int64
	ok := okHandler(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		count.Add(1)
		if !healthy.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		ok.ServeHTTP(w, r)
	}))
	defer srv.Close()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	reg := telemetry.NewRegistry()
	b, err := New(srv.URL, WithBreaker(2, time.Minute), WithClock(clk), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, serr := b.Search("x"); serr == nil {
			t.Fatal("500 accepted")
		}
	}
	if b.BreakerState() != "open" {
		t.Fatalf("state = %s after threshold failures, want open", b.BreakerState())
	}
	// Open: fail fast without touching the wire, naming the cooldown.
	_, serr := b.Search("x")
	if !errors.Is(serr, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", serr)
	}
	if ra, ok := RetryAfter(serr); !ok || ra != time.Minute {
		t.Fatalf("RetryAfter = (%s, %v), want the full cooldown", ra, ok)
	}
	if got := count.Load(); got != 2 {
		t.Fatalf("open breaker let a request through: %d requests", got)
	}
	// Cooldown elapses; the half-open probe still fails, so it reopens.
	clk.Advance(time.Minute)
	if _, serr := b.Search("x"); serr == nil {
		t.Fatal("failing probe accepted")
	}
	if got := count.Load(); got != 3 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", count.Load()-2)
	}
	if b.BreakerState() != "open" {
		t.Fatalf("state = %s after a failed probe, want open", b.BreakerState())
	}
	// Faults clear; the next probe closes the breaker.
	clk.Advance(time.Minute)
	healthy.Store(true)
	if _, serr := b.Search("x"); serr != nil {
		t.Fatalf("search failed after recovery: %v", serr)
	}
	if b.BreakerState() != "closed" {
		t.Fatalf("state = %s after recovery, want closed", b.BreakerState())
	}
	got := reg.CounterVec("browser_breaker_transitions_total", "", "transition").Values()
	want := map[string]uint64{"open": 1, "half_open": 2, "reopen": 1, "close": 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
}

func TestPushbackDoesNotTripBreaker(t *testing.T) {
	// 429s and 503 sheds are explicit pushback from a live server; even a
	// hair-trigger breaker must stay closed through them.
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "pushback", status)
		}))
		b, err := New(srv.URL, WithBreaker(1, time.Minute), WithShedRetries(0))
		if err != nil {
			srv.Close()
			t.Fatal(err)
		}
		if _, serr := b.Search("x"); serr == nil {
			t.Fatalf("status %d accepted", status)
		}
		if b.BreakerState() != "closed" {
			t.Fatalf("status %d tripped the breaker", status)
		}
		srv.Close()
	}
}

func TestBreakerChaosDeterminism(t *testing.T) {
	// Same seed, same clock schedule: the whole breaker timeline — outcome
	// and state after every query — must replay exactly.
	srv := httptest.NewServer(okHandler(t))
	defer srv.Close()
	run := func() ([]string, map[string]uint64) {
		clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
		reg := telemetry.NewRegistry()
		ct := NewChaosTransport(ChaosConfig{Seed: 11, ServerErrorRate: 0.4}, nil)
		b, err := New(srv.URL, WithTransport(ct), WithBreaker(2, 30*time.Second),
			WithClock(clk), WithTelemetry(reg))
		if err != nil {
			t.Fatal(err)
		}
		var timeline []string
		for i := 0; i < 60; i++ {
			b.SetTraceID(fmt.Sprintf("det-%d", i))
			outcome := "ok"
			if _, serr := b.Search("x"); serr != nil {
				outcome = "err"
			}
			timeline = append(timeline, outcome+"/"+b.BreakerState())
			clk.Advance(10 * time.Second)
		}
		return timeline, reg.CounterVec("browser_breaker_transitions_total", "", "transition").Values()
	}
	tl1, tr1 := run()
	tl2, tr2 := run()
	if fmt.Sprint(tl1) != fmt.Sprint(tl2) {
		t.Fatalf("same-seed breaker timelines diverged:\n%v\nvs\n%v", tl1, tl2)
	}
	if fmt.Sprint(tr1) != fmt.Sprint(tr2) {
		t.Fatalf("same-seed transition counts diverged: %v vs %v", tr1, tr2)
	}
	if tr1["open"] == 0 {
		t.Fatalf("breaker never opened at a 40%% injected error rate: %v", tr1)
	}
}
