// Package browser simulates the study's instrumented headless browser: a
// PhantomJS script that loads the mobile search page, presents a fixed
// browser fingerprint, overrides the JavaScript Geolocation API with a
// coordinate supplied on the command line, executes the query, saves the
// first page of results, and clears cookies afterwards (§2.2).
//
// Browser drives a real HTTP client against a real server; the Geolocation
// override becomes the ll= query parameter the mobile page would have
// obtained from navigator.geolocation, and the fingerprint becomes the
// request headers.
package browser

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"geoserp/internal/geo"
	"geoserp/internal/httpheader"
	"geoserp/internal/serp"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// ErrRateLimited is returned when the engine answers 429.
var ErrRateLimited = errors.New("browser: rate limited by server")

// ErrShed is returned when the server sheds the request under overload
// (a 503, typically with a Retry-After from serpserver's admission gate).
// Sheds are transient — the server explicitly asked the client to come
// back — but they are budgeted separately from genuine failures: they do
// not consume WithRetry attempts (a bounded number of Retry-After waves is
// allowed instead, see WithShedRetries) and they do not trip the circuit
// breaker, because an overloaded-but-honest server is not a broken one.
var ErrShed = errors.New("browser: request shed by server")

// ErrCircuitOpen is returned when the per-endpoint circuit breaker
// (WithBreaker) is open and the retry policy cannot wait out the cooldown.
var ErrCircuitOpen = errors.New("browser: circuit breaker open")

// ErrBodyTooLarge marks a response body that exceeded the WithMaxBodySize
// cap. Oversize bodies are permanent failures: the page would overflow the
// cap on every retry, so retrying only hammers the server.
var ErrBodyTooLarge = errors.New("browser: response body exceeds size cap")

// IsShed reports whether err came from the server shedding load (503).
// The crawler charges these against its ShedBudget rather than its
// FailureBudget.
func IsShed(err error) bool { return errors.Is(err, ErrShed) }

// ErrTransient marks fetch failures that are plausibly temporary — transport
// errors, 5xx responses, truncated or unparsable bodies — and therefore worth
// retrying under the WithRetry policy. Client-side mistakes (4xx other than
// 429) are permanent: retrying a malformed query would never succeed.
var ErrTransient = errors.New("browser: transient fetch failure")

// IsTransient reports whether err is worth retrying: either an explicit
// transient failure or a rate-limit response.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrRateLimited)
}

// transientErr tags an error as transient without altering its message.
type transientErr struct{ err error }

func (e transientErr) Error() string   { return e.err.Error() }
func (e transientErr) Unwrap() []error { return []error{e.err, ErrTransient} }

func markTransient(err error) error { return transientErr{err: err} }

// shedErr tags an error as a server-side load shed (transient, but
// budgeted separately from failures).
type shedErr struct{ err error }

func (e shedErr) Error() string   { return e.err.Error() }
func (e shedErr) Unwrap() []error { return []error{e.err, ErrShed, ErrTransient} }

func markShed(err error) error { return shedErr{err: err} }

// retryAfterErr carries a server-named wait (the Retry-After header)
// alongside the error it annotates, so the retry loop can honour the
// server's request instead of its own linear policy.
type retryAfterErr struct {
	err   error
	after time.Duration
}

func (e retryAfterErr) Error() string { return e.err.Error() }
func (e retryAfterErr) Unwrap() error { return e.err }

// withRetryAfter annotates err with a server-named wait; a non-positive
// wait leaves err untouched.
func withRetryAfter(err error, after time.Duration) error {
	if after <= 0 {
		return err
	}
	return retryAfterErr{err: err, after: after}
}

// RetryAfter extracts the server-named wait from an error chain (the
// parsed Retry-After of a 429 or 503 response). ok is false when the
// server named none.
func RetryAfter(err error) (time.Duration, bool) {
	var r retryAfterErr
	if errors.As(err, &r) {
		return r.after, true
	}
	return 0, false
}

// parseRetryAfter reads an integer-seconds Retry-After value — the only
// form the servers here emit. HTTP-date forms and garbage yield 0 (no
// named wait).
func parseRetryAfter(v string) time.Duration {
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || n < 0 {
		return 0
	}
	return time.Duration(n) * time.Second
}

// Fingerprint is the browser identity presented on every request. The
// study configured all treatments identically so fingerprints could not
// explain result differences.
type Fingerprint struct {
	UserAgent      string
	AcceptLanguage string
	ViewportW      int
	ViewportH      int
}

// Firefox38Desktop returns a desktop fingerprint of the study's era. The
// desktop surface ignores the Geolocation override — its only location
// signal is the IP — matching the constraint prior work operated under.
func Firefox38Desktop() Fingerprint {
	return Fingerprint{
		UserAgent:      "Mozilla/5.0 (X11; Linux x86_64; rv:38.0) Gecko/20100101 Firefox/38.0",
		AcceptLanguage: "en-US",
		ViewportW:      1366,
		ViewportH:      768,
	}
}

// IOSSafari8 returns the fingerprint the study used: Safari 8 on iOS.
func IOSSafari8() Fingerprint {
	return Fingerprint{
		UserAgent: "Mozilla/5.0 (iPhone; CPU iPhone OS 8_0 like Mac OS X) " +
			"AppleWebKit/600.1.4 (KHTML, like Gecko) Version/8.0 Mobile/12A365 Safari/600.1.4",
		AcceptLanguage: "en-US",
		ViewportW:      375,
		ViewportH:      667,
	}
}

// Browser is one scripted browser instance. It is not safe for concurrent
// use; the crawler gives each worker its own Browser, as the study gave
// each treatment its own PhantomJS process.
type Browser struct {
	base      *url.URL
	client    *http.Client
	fp        Fingerprint
	geo       *geo.Point
	sourceIP  string
	pinnedDC  string
	fetches   int
	retries   int
	lastDC    string
	transport http.RoundTripper

	// traceID, when set, is sent as the X-Trace-Id header on every
	// fetch so the server's access log and the stored page record can
	// be joined back to this request.
	traceID     string
	lastTraceID string

	// Telemetry counters, shared with the crawler's registry when set
	// (nil without WithTelemetry — the zero-cost default).
	fetchCtr     *telemetry.Counter
	rateLimitCtr *telemetry.Counter
	retryCtr     *telemetry.Counter
	shedCtr      *telemetry.Counter
	breakerCtr   *telemetry.CounterVec

	// spans, when set, records one "browser.fetch" span per attempt so
	// retry backoff and per-attempt outcomes are visible on the campaign
	// timeline (nil without WithSpans — the zero-cost default).
	spans *telemetry.SpanRecorder

	// Retry policy for transient failures (429s, 5xx, transport errors).
	maxAttempts int
	backoff     time.Duration
	timeout     time.Duration
	clock       simclock.Clock

	// maxBody caps how many response-body bytes a fetch will read; an
	// oversize body is a permanent ErrBodyTooLarge failure.
	maxBody int64
	// shedRetryLimit bounds how many 503-shed Retry-After waves one Search
	// rides out before giving up (sheds do not consume maxAttempts).
	shedRetryLimit int
	// deadlineBudget, when positive, gives every Search an absolute
	// deadline on the campaign clock, sent to the server as X-Deadline-Ms
	// and honoured by the retry loop.
	deadlineBudget time.Duration
	// Per-endpoint circuit breakers, armed by WithBreaker (nil threshold
	// disables). Browsers are single-threaded, so no locking.
	brkThreshold int
	brkCooldown  time.Duration
	breakers     map[string]*breaker

	// optErr records the first invalid Option; New reports it instead of
	// silently running with a half-applied policy.
	optErr error
}

// Option configures a Browser.
type Option func(*Browser)

// WithFingerprint overrides the default iOS Safari 8 fingerprint.
func WithFingerprint(fp Fingerprint) Option {
	return func(b *Browser) { b.fp = fp }
}

// WithSourceIP attributes the browser's traffic to a machine address (sent
// as X-Forwarded-For), modelling which of the crawl machines the script
// runs on.
func WithSourceIP(ip string) Option {
	return func(b *Browser) { b.sourceIP = ip }
}

// WithPinnedDatacenter statically resolves the service to one datacenter,
// as the study did with a static DNS entry.
func WithPinnedDatacenter(dc string) Option {
	return func(b *Browser) { b.pinnedDC = dc }
}

// WithTransport substitutes the HTTP transport (tests use this to run
// without sockets).
func WithTransport(rt http.RoundTripper) Option {
	return func(b *Browser) { b.transport = rt }
}

// WithRetry makes Search retry transient failures (rate limits, 5xx
// responses, transport and read errors) up to attempts total tries with
// linear backoff between them. The study sidestepped rate limits with its
// 44-machine pool; campaigns against a flaky service want this instead.
// attempts must be positive and backoff non-negative; New rejects the
// browser otherwise.
//
// Two refinements override the linear policy: a server that names a wait
// (Retry-After on a 429 or 503) is honoured exactly, and 503 sheds do not
// consume attempts at all — they are bounded by WithShedRetries instead,
// so an overloaded server asking for patience cannot exhaust the failure
// budget of a healthy request.
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(b *Browser) {
		if attempts <= 0 {
			b.optErr = fmt.Errorf("browser: WithRetry attempts must be positive, got %d", attempts)
			return
		}
		if backoff < 0 {
			b.optErr = fmt.Errorf("browser: WithRetry backoff must be non-negative, got %s", backoff)
			return
		}
		b.maxAttempts = attempts
		b.backoff = backoff
	}
}

// WithTimeout bounds each fetch attempt (default 30s). The bound is wall
// time — it protects against a hung socket, which virtual clocks cannot
// model.
func WithTimeout(d time.Duration) Option {
	return func(b *Browser) {
		if d <= 0 {
			b.optErr = fmt.Errorf("browser: WithTimeout duration must be positive, got %s", d)
			return
		}
		b.timeout = d
	}
}

// WithClock substitutes the clock used for retry backoff (virtual-time
// campaigns pass the campaign clock).
func WithClock(clk simclock.Clock) Option {
	return func(b *Browser) { b.clock = clk }
}

// WithMaxBodySize caps how many bytes of a response body a fetch will read
// (default 4 MiB). A body exceeding the cap is a permanent
// ErrBodyTooLarge failure — it would overflow on every retry — so the
// retry policy gives up immediately instead of re-downloading it.
func WithMaxBodySize(n int64) Option {
	return func(b *Browser) {
		if n <= 0 {
			b.optErr = fmt.Errorf("browser: WithMaxBodySize cap must be positive, got %d", n)
			return
		}
		b.maxBody = n
	}
}

// WithShedRetries bounds how many 503-shed Retry-After waves one Search
// rides out before returning the shed error (default 8). Sheds are exempt
// from the WithRetry attempt budget — the server named a wait, and
// honouring it is flow control, not failure — so this separate cap is what
// guarantees termination under sustained overload. 0 makes sheds
// terminal on the first 503.
func WithShedRetries(n int) Option {
	return func(b *Browser) {
		if n < 0 {
			b.optErr = fmt.Errorf("browser: WithShedRetries count must be non-negative, got %d", n)
			return
		}
		b.shedRetryLimit = n
	}
}

// WithDeadline gives every Search a deadline budget on the campaign
// clock. The absolute deadline is advertised to the server as
// X-Deadline-Ms — letting its admission gate shed the request up front and
// its engine abandon doomed work mid-stage — and the retry loop stops
// scheduling attempts that could not start before it.
func WithDeadline(d time.Duration) Option {
	return func(b *Browser) {
		if d <= 0 {
			b.optErr = fmt.Errorf("browser: WithDeadline budget must be positive, got %s", d)
			return
		}
		b.deadlineBudget = d
	}
}

// WithBreaker arms a per-endpoint circuit breaker: threshold consecutive
// breaker-eligible failures (transport errors, 5xx, unparsable pages —
// not 429s or 503 sheds, which are explicit pushback) open the breaker,
// fetches then fail fast for cooldown, after which a single half-open
// probe decides between closing it and re-opening. All timing is on the
// campaign clock, so same-seed chaos campaigns replay identical breaker
// timelines.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(b *Browser) {
		if threshold <= 0 {
			b.optErr = fmt.Errorf("browser: WithBreaker threshold must be positive, got %d", threshold)
			return
		}
		if cooldown <= 0 {
			b.optErr = fmt.Errorf("browser: WithBreaker cooldown must be positive, got %s", cooldown)
			return
		}
		b.brkThreshold = threshold
		b.brkCooldown = cooldown
	}
}

// WithTelemetry reports the browser's fetches, observed 429s, and retries
// through a shared registry — the crawler passes its own so a campaign's
// /metricsz-style snapshot covers the whole pool.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(b *Browser) {
		b.fetchCtr = reg.Counter("browser_fetches_total", "Result pages fetched across the browser pool.")
		b.rateLimitCtr = reg.Counter("browser_rate_limited_total", "429 responses observed across the browser pool.")
		b.retryCtr = reg.Counter("browser_retries_total", "Failed fetches that were retried.")
		b.shedCtr = reg.Counter("browser_shed_total", "503 shed responses observed across the browser pool.")
		b.breakerCtr = reg.CounterVec("browser_breaker_transitions_total",
			"Circuit-breaker state transitions across the browser pool, by transition.", "transition")
	}
}

// WithSpans records one client span per fetch attempt on rec. Each
// attempt also advertises its number via the X-Trace-Attempt header so the
// server's spans distinguish retries of the same trace.
func WithSpans(rec *telemetry.SpanRecorder) Option {
	return func(b *Browser) { b.spans = rec }
}

// New creates a browser pointed at the search service base URL.
func New(baseURL string, opts ...Option) (*Browser, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("browser: parse base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("browser: base URL %q must be absolute", baseURL)
	}
	b := &Browser{
		base: u, fp: IOSSafari8(), maxAttempts: 1, timeout: 30 * time.Second,
		clock: simclock.Wall(), maxBody: 4 << 20, shedRetryLimit: 8,
	}
	for _, o := range opts {
		o(b)
	}
	if b.optErr != nil {
		return nil, b.optErr
	}
	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, fmt.Errorf("browser: cookie jar: %w", err)
	}
	b.client = &http.Client{
		Jar:     jar,
		Timeout: b.timeout,
	}
	if b.transport != nil {
		b.client.Transport = b.transport
	}
	return b, nil
}

// OverrideGeolocation installs the spoofed Geolocation API coordinate; all
// subsequent searches present it to the engine.
func (b *Browser) OverrideGeolocation(pt geo.Point) { p := pt; b.geo = &p }

// ClearGeolocation removes the override; searches then carry no ll=
// parameter and the engine falls back to IP geolocation.
func (b *Browser) ClearGeolocation() { b.geo = nil }

// ClearCookies empties the cookie jar, as the study's script did after
// every query to prevent the engine "remembering" prior location or
// searches.
func (b *Browser) ClearCookies() {
	jar, err := cookiejar.New(nil)
	if err != nil {
		// cookiejar.New(nil) cannot fail per its contract; guard anyway.
		panic("browser: cookie jar: " + err.Error())
	}
	b.client.Jar = jar
}

// Fetches returns the number of result pages fetched.
func (b *Browser) Fetches() int { return b.fetches }

// SourceIP returns the machine address the browser's traffic is attributed
// to ("" when unset).
func (b *Browser) SourceIP() string { return b.sourceIP }

// Retries returns how many failed fetches were retried.
func (b *Browser) Retries() int { return b.retries }

// LastDatacenter reports the replica that served the previous page (from
// the X-Served-By header).
func (b *Browser) LastDatacenter() string { return b.lastDC }

// SetTraceID installs the trace ID sent as X-Trace-Id on subsequent
// fetches ("" stops sending the header). The crawler mints one per query
// before each fetch.
func (b *Browser) SetTraceID(id string) { b.traceID = id }

// LastTraceID reports the trace ID the server confirmed on the previous
// page ("" when the request was untraced).
func (b *Browser) LastTraceID() string { return b.lastTraceID }

// Search executes a query and parses the first page of results, retrying
// transient failures per the WithRetry policy.
func (b *Browser) Search(term string) (*serp.Page, error) {
	return b.SearchContext(context.Background(), term)
}

// SearchContext is Search with cancellation: the fetch aborts as soon as
// ctx is done, and a cancelled context is never retried — the campaign is
// shutting down, not the network flaking.
func (b *Browser) SearchContext(ctx context.Context, term string) (*serp.Page, error) {
	if term == "" {
		return nil, fmt.Errorf("browser: empty search term")
	}
	// Under a virtual clock, hold the driver while the fetch's real I/O
	// is in flight: every clock read inside the attempt — client, server,
	// and engine span timestamps — then lands on the deterministic instant
	// the attempt started at, not wherever the clock hopped to mid-wire.
	// A dispatcher that already holds (the crawler) passes its hold via
	// ctx; otherwise the browser manages its own.
	held := simclock.HeldFrom(ctx)
	if held == nil {
		if h := simclock.HolderOf(b.clock); h != nil {
			h.Hold()
			defer h.Release()
			held = h
			ctx = simclock.WithHeld(ctx, h)
		}
	}
	// Absolute per-query deadline, advertised on every attempt and
	// honoured by the retry loop (zero when WithDeadline is off).
	var deadline time.Time
	if b.deadlineBudget > 0 {
		deadline = b.clock.Now().Add(b.deadlineBudget)
	}
	brk := b.breakerFor(b.base.Host + "/search")
	var lastErr error
	// failures counts attempt-consuming outcomes (429s, 5xx, transport and
	// parse errors) against maxAttempts; sheds counts 503 Retry-After
	// waves against shedRetryLimit. attempt numbers every loop turn and is
	// what the wire header and spans carry.
	failures, sheds := 0, 0
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if brk != nil {
			if wait, ok := brk.allow(b.clock.Now()); !ok {
				oerr := withRetryAfter(markTransient(fmt.Errorf("%w (retry in %s)", ErrCircuitOpen, wait)), wait)
				if b.maxAttempts <= 1 {
					// No retry policy: fail fast rather than block a
					// single-shot caller for the whole cooldown.
					return nil, oerr
				}
				if !deadline.IsZero() && b.clock.Now().Add(wait).After(deadline) {
					return nil, fmt.Errorf("browser: deadline would pass waiting out the open breaker: %w", oerr)
				}
				lastErr = oerr
				b.sleepOn(held, wait)
				continue
			}
		}
		// One client span per attempt: retries of a trace appear as
		// sibling spans whose gaps are the backoff sleeps.
		var span *telemetry.Span
		if b.spans != nil {
			span = b.spans.StartRootSeq(b.traceID, "browser.fetch", attempt)
			span.SetAttr("term", term)
			span.SetAttr("attempt", fmt.Sprint(attempt))
		}
		page, err := b.fetchOnce(ctx, term, attempt, deadline)
		if err == nil {
			if brk != nil {
				brk.success()
			}
			if span != nil {
				span.SetAttr("outcome", "ok")
				span.End()
			}
			return page, nil
		}
		lastErr = err
		shed := IsShed(err)
		if shed {
			sheds++
		} else {
			failures++
			// Explicit pushback (429) does not trip the breaker — the
			// server is alive and asked for patience; unexplained transient
			// failures do.
			if brk != nil && IsTransient(err) && !errors.Is(err, ErrRateLimited) {
				brk.failure(b.clock.Now())
			}
		}
		terminal := ctx.Err() != nil || !IsTransient(err) || b.maxAttempts <= 1 ||
			(!shed && failures >= b.maxAttempts) || (shed && sheds > b.shedRetryLimit)
		if terminal {
			if span != nil {
				span.SetAttr("outcome", "error")
				span.SetAttr("err", errAttr(err))
				span.End()
			}
			return nil, lastErr
		}
		b.retries++
		if b.retryCtr != nil {
			b.retryCtr.Inc()
		}
		// Linear backoff by default; a server-named Retry-After overrides
		// it exactly.
		sleep := time.Duration(failures) * b.backoff
		if shed {
			sleep = time.Duration(sheds) * b.backoff
		}
		if ra, ok := RetryAfter(err); ok {
			sleep = ra
		}
		if !deadline.IsZero() && b.clock.Now().Add(sleep).After(deadline) {
			if span != nil {
				span.SetAttr("outcome", "error")
				span.SetAttr("err", errAttr(err))
				span.End()
			}
			return nil, fmt.Errorf("browser: deadline would pass before the next attempt: %w", lastErr)
		}
		if span != nil {
			span.SetAttr("outcome", "retry")
			if shed {
				span.SetAttr("outcome", "shed")
			}
			span.SetAttr("err", errAttr(err))
			if sleep > 0 {
				span.SetAttr("backoff", sleep.String())
			}
			span.End()
		}
		b.sleepOn(held, sleep)
	}
}

// sleepOn parks for d on the campaign clock, through the holder when the
// caller is holding a virtual clock (see SearchContext).
func (b *Browser) sleepOn(held simclock.Holder, d time.Duration) {
	if d <= 0 {
		return
	}
	if held != nil {
		held.SleepHeld(d)
	} else {
		b.clock.Sleep(d)
	}
}

// breakerFor lazily builds the circuit breaker guarding endpoint (nil when
// WithBreaker is off).
func (b *Browser) breakerFor(endpoint string) *breaker {
	if b.brkThreshold <= 0 {
		return nil
	}
	if b.breakers == nil {
		b.breakers = make(map[string]*breaker)
	}
	br := b.breakers[endpoint]
	if br == nil {
		br = newBreaker(b.brkThreshold, b.brkCooldown)
		if b.breakerCtr != nil {
			br.onTransition = func(label string) { b.breakerCtr.With(label).Inc() }
		}
		b.breakers[endpoint] = br
	}
	return br
}

// BreakerState reports the search endpoint's circuit-breaker state
// ("closed", "open", "half-open"), or "" when WithBreaker is not
// configured.
func (b *Browser) BreakerState() string {
	if b.brkThreshold <= 0 {
		return ""
	}
	br := b.breakers[b.base.Host+"/search"]
	if br == nil {
		return "closed"
	}
	return br.stateName()
}

// fetchOnce performs a single fetch+parse. attempt is the 1-based try
// number, advertised to the server so its spans key each retry distinctly;
// a non-zero deadline is advertised as X-Deadline-Ms so the server can
// shed or abandon work that cannot finish in time.
func (b *Browser) fetchOnce(ctx context.Context, term string, attempt int, deadline time.Time) (*serp.Page, error) {
	u := *b.base
	u.Path = "/search"
	q := url.Values{}
	q.Set("q", term)
	if b.geo != nil {
		q.Set("ll", b.geo.String())
	}
	u.RawQuery = q.Encode()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("browser: build request: %w", err)
	}
	req.Header.Set("User-Agent", b.fp.UserAgent)
	req.Header.Set("Accept-Language", b.fp.AcceptLanguage)
	req.Header.Set("Accept", "text/html")
	if b.fp.ViewportW > 0 {
		req.Header.Set("Viewport-Width", fmt.Sprint(b.fp.ViewportW))
	}
	if b.sourceIP != "" {
		req.Header.Set(httpheader.ForwardedFor, b.sourceIP)
	}
	if b.pinnedDC != "" {
		req.Header.Set(httpheader.Datacenter, b.pinnedDC)
	}
	if b.traceID != "" {
		req.Header.Set(httpheader.TraceID, b.traceID)
		req.Header.Set(httpheader.TraceAttempt, fmt.Sprint(attempt))
	}
	if !deadline.IsZero() {
		req.Header.Set(httpheader.DeadlineMs, strconv.FormatInt(deadline.UnixMilli(), 10))
	}

	resp, err := b.client.Do(req)
	if err != nil {
		// Transport failures are transient — unless the context itself was
		// cancelled, in which case retrying would only fail the same way.
		ferr := fmt.Errorf("browser: fetch: %w", err)
		if ctx.Err() != nil {
			return nil, ferr
		}
		return nil, markTransient(ferr)
	}
	defer resp.Body.Close()
	// Read at most one byte past the cap: enough to tell an oversize body
	// from one that exactly fits, without ever buffering more than the cap.
	body, err := io.ReadAll(io.LimitReader(resp.Body, b.maxBody+1))
	if err != nil {
		// A connection dropped mid-body; the next attempt may complete.
		return nil, markTransient(fmt.Errorf("browser: read body: %w", err))
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		// fall through
	case resp.StatusCode == http.StatusTooManyRequests:
		if b.rateLimitCtr != nil {
			b.rateLimitCtr.Inc()
		}
		ra := parseRetryAfter(resp.Header.Get("Retry-After"))
		return nil, withRetryAfter(fmt.Errorf("%w (retry-after %s)", ErrRateLimited, resp.Header.Get("Retry-After")), ra)
	case resp.StatusCode == http.StatusServiceUnavailable:
		// The server shed the request under overload (admission gate or
		// deadline abandonment). Transient, but budgeted as a shed: honour
		// its Retry-After instead of charging the failure budget.
		if b.shedCtr != nil {
			b.shedCtr.Inc()
		}
		ra := parseRetryAfter(resp.Header.Get("Retry-After"))
		return nil, withRetryAfter(markShed(fmt.Errorf("browser: server shed request (503): %s", truncate(string(body), 120))), ra)
	case resp.StatusCode >= 500:
		// Server-side faults are the canonical transient failure.
		return nil, markTransient(fmt.Errorf("browser: server returned %d: %s", resp.StatusCode, truncate(string(body), 120)))
	default:
		// Remaining 4xx: the request itself is wrong; retrying cannot help.
		return nil, fmt.Errorf("browser: server returned %d: %s", resp.StatusCode, truncate(string(body), 120))
	}
	if int64(len(body)) > b.maxBody {
		return nil, fmt.Errorf("%w: page exceeds the %d-byte cap", ErrBodyTooLarge, b.maxBody)
	}
	page, err := serp.ParseAnyHTML(string(body))
	if err != nil {
		// An unparsable page usually means a truncated or garbled response,
		// not a structurally different engine — retry it.
		return nil, markTransient(fmt.Errorf("browser: parse results: %w", err))
	}
	b.fetches++
	if b.fetchCtr != nil {
		b.fetchCtr.Inc()
	}
	b.lastDC = resp.Header.Get(httpheader.ServedBy)
	// The HTML surface does not carry the trace; the header echo does.
	// Attach it to the parsed record so storage keeps the join key.
	b.lastTraceID = resp.Header.Get(httpheader.TraceID)
	if b.lastTraceID == "" {
		b.lastTraceID = b.traceID
	}
	page.TraceID = b.lastTraceID
	return page, nil
}

// SearchAndReset performs the full treatment protocol of the study's
// script: run the query, save the page, then clear cookies so the next
// query starts from a clean browser.
func (b *Browser) SearchAndReset(term string) (*serp.Page, error) {
	page, err := b.Search(term)
	b.ClearCookies()
	return page, err
}

// errAttr renders err for a span attribute. URL errors are unwrapped to
// their transport cause first: the wrapped form embeds the full request
// URL — including the server's ephemeral port — which would make
// otherwise-deterministic campaign timelines differ across runs.
func errAttr(err error) string {
	var uerr *url.Error
	if errors.As(err, &uerr) {
		return truncate(uerr.Err.Error(), 120)
	}
	return truncate(err.Error(), 120)
}

// truncate shortens s to at most n bytes plus an ellipsis, cutting on a
// rune boundary so multi-byte UTF-8 sequences are never split mid-rune.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	for n > 0 && !utf8.RuneStart(s[n]) {
		n--
	}
	return s[:n] + "..."
}
