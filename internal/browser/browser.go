// Package browser simulates the study's instrumented headless browser: a
// PhantomJS script that loads the mobile search page, presents a fixed
// browser fingerprint, overrides the JavaScript Geolocation API with a
// coordinate supplied on the command line, executes the query, saves the
// first page of results, and clears cookies afterwards (§2.2).
//
// Browser drives a real HTTP client against a real server; the Geolocation
// override becomes the ll= query parameter the mobile page would have
// obtained from navigator.geolocation, and the fingerprint becomes the
// request headers.
package browser

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"time"
	"unicode/utf8"

	"geoserp/internal/geo"
	"geoserp/internal/serp"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// ErrRateLimited is returned when the engine answers 429.
var ErrRateLimited = errors.New("browser: rate limited by server")

// ErrTransient marks fetch failures that are plausibly temporary — transport
// errors, 5xx responses, truncated or unparsable bodies — and therefore worth
// retrying under the WithRetry policy. Client-side mistakes (4xx other than
// 429) are permanent: retrying a malformed query would never succeed.
var ErrTransient = errors.New("browser: transient fetch failure")

// IsTransient reports whether err is worth retrying: either an explicit
// transient failure or a rate-limit response.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrRateLimited)
}

// transientErr tags an error as transient without altering its message.
type transientErr struct{ err error }

func (e transientErr) Error() string   { return e.err.Error() }
func (e transientErr) Unwrap() []error { return []error{e.err, ErrTransient} }

func markTransient(err error) error { return transientErr{err: err} }

// Fingerprint is the browser identity presented on every request. The
// study configured all treatments identically so fingerprints could not
// explain result differences.
type Fingerprint struct {
	UserAgent      string
	AcceptLanguage string
	ViewportW      int
	ViewportH      int
}

// Firefox38Desktop returns a desktop fingerprint of the study's era. The
// desktop surface ignores the Geolocation override — its only location
// signal is the IP — matching the constraint prior work operated under.
func Firefox38Desktop() Fingerprint {
	return Fingerprint{
		UserAgent:      "Mozilla/5.0 (X11; Linux x86_64; rv:38.0) Gecko/20100101 Firefox/38.0",
		AcceptLanguage: "en-US",
		ViewportW:      1366,
		ViewportH:      768,
	}
}

// IOSSafari8 returns the fingerprint the study used: Safari 8 on iOS.
func IOSSafari8() Fingerprint {
	return Fingerprint{
		UserAgent: "Mozilla/5.0 (iPhone; CPU iPhone OS 8_0 like Mac OS X) " +
			"AppleWebKit/600.1.4 (KHTML, like Gecko) Version/8.0 Mobile/12A365 Safari/600.1.4",
		AcceptLanguage: "en-US",
		ViewportW:      375,
		ViewportH:      667,
	}
}

// Browser is one scripted browser instance. It is not safe for concurrent
// use; the crawler gives each worker its own Browser, as the study gave
// each treatment its own PhantomJS process.
type Browser struct {
	base      *url.URL
	client    *http.Client
	fp        Fingerprint
	geo       *geo.Point
	sourceIP  string
	pinnedDC  string
	fetches   int
	retries   int
	lastDC    string
	transport http.RoundTripper

	// traceID, when set, is sent as the X-Trace-Id header on every
	// fetch so the server's access log and the stored page record can
	// be joined back to this request.
	traceID     string
	lastTraceID string

	// Telemetry counters, shared with the crawler's registry when set
	// (nil without WithTelemetry — the zero-cost default).
	fetchCtr     *telemetry.Counter
	rateLimitCtr *telemetry.Counter
	retryCtr     *telemetry.Counter

	// spans, when set, records one "browser.fetch" span per attempt so
	// retry backoff and per-attempt outcomes are visible on the campaign
	// timeline (nil without WithSpans — the zero-cost default).
	spans *telemetry.SpanRecorder

	// Retry policy for transient failures (429s, 5xx, transport errors).
	maxAttempts int
	backoff     time.Duration
	timeout     time.Duration
	clock       simclock.Clock

	// optErr records the first invalid Option; New reports it instead of
	// silently running with a half-applied policy.
	optErr error
}

// Option configures a Browser.
type Option func(*Browser)

// WithFingerprint overrides the default iOS Safari 8 fingerprint.
func WithFingerprint(fp Fingerprint) Option {
	return func(b *Browser) { b.fp = fp }
}

// WithSourceIP attributes the browser's traffic to a machine address (sent
// as X-Forwarded-For), modelling which of the crawl machines the script
// runs on.
func WithSourceIP(ip string) Option {
	return func(b *Browser) { b.sourceIP = ip }
}

// WithPinnedDatacenter statically resolves the service to one datacenter,
// as the study did with a static DNS entry.
func WithPinnedDatacenter(dc string) Option {
	return func(b *Browser) { b.pinnedDC = dc }
}

// WithTransport substitutes the HTTP transport (tests use this to run
// without sockets).
func WithTransport(rt http.RoundTripper) Option {
	return func(b *Browser) { b.transport = rt }
}

// WithRetry makes Search retry transient failures (rate limits, 5xx
// responses, transport and read errors) up to attempts total tries with
// linear backoff between them. The study sidestepped rate limits with its
// 44-machine pool; campaigns against a flaky service want this instead.
// attempts must be positive and backoff non-negative; New rejects the
// browser otherwise.
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(b *Browser) {
		if attempts <= 0 {
			b.optErr = fmt.Errorf("browser: WithRetry attempts must be positive, got %d", attempts)
			return
		}
		if backoff < 0 {
			b.optErr = fmt.Errorf("browser: WithRetry backoff must be non-negative, got %s", backoff)
			return
		}
		b.maxAttempts = attempts
		b.backoff = backoff
	}
}

// WithTimeout bounds each fetch attempt (default 30s). The bound is wall
// time — it protects against a hung socket, which virtual clocks cannot
// model.
func WithTimeout(d time.Duration) Option {
	return func(b *Browser) {
		if d <= 0 {
			b.optErr = fmt.Errorf("browser: WithTimeout duration must be positive, got %s", d)
			return
		}
		b.timeout = d
	}
}

// WithClock substitutes the clock used for retry backoff (virtual-time
// campaigns pass the campaign clock).
func WithClock(clk simclock.Clock) Option {
	return func(b *Browser) { b.clock = clk }
}

// WithTelemetry reports the browser's fetches, observed 429s, and retries
// through a shared registry — the crawler passes its own so a campaign's
// /metricsz-style snapshot covers the whole pool.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(b *Browser) {
		b.fetchCtr = reg.Counter("browser_fetches_total", "Result pages fetched across the browser pool.")
		b.rateLimitCtr = reg.Counter("browser_rate_limited_total", "429 responses observed across the browser pool.")
		b.retryCtr = reg.Counter("browser_retries_total", "Failed fetches that were retried.")
	}
}

// WithSpans records one client span per fetch attempt on rec. Each
// attempt also advertises its number via the X-Trace-Attempt header so the
// server's spans distinguish retries of the same trace.
func WithSpans(rec *telemetry.SpanRecorder) Option {
	return func(b *Browser) { b.spans = rec }
}

// New creates a browser pointed at the search service base URL.
func New(baseURL string, opts ...Option) (*Browser, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("browser: parse base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("browser: base URL %q must be absolute", baseURL)
	}
	b := &Browser{base: u, fp: IOSSafari8(), maxAttempts: 1, timeout: 30 * time.Second, clock: simclock.Wall()}
	for _, o := range opts {
		o(b)
	}
	if b.optErr != nil {
		return nil, b.optErr
	}
	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, fmt.Errorf("browser: cookie jar: %w", err)
	}
	b.client = &http.Client{
		Jar:     jar,
		Timeout: b.timeout,
	}
	if b.transport != nil {
		b.client.Transport = b.transport
	}
	return b, nil
}

// OverrideGeolocation installs the spoofed Geolocation API coordinate; all
// subsequent searches present it to the engine.
func (b *Browser) OverrideGeolocation(pt geo.Point) { p := pt; b.geo = &p }

// ClearGeolocation removes the override; searches then carry no ll=
// parameter and the engine falls back to IP geolocation.
func (b *Browser) ClearGeolocation() { b.geo = nil }

// ClearCookies empties the cookie jar, as the study's script did after
// every query to prevent the engine "remembering" prior location or
// searches.
func (b *Browser) ClearCookies() {
	jar, err := cookiejar.New(nil)
	if err != nil {
		// cookiejar.New(nil) cannot fail per its contract; guard anyway.
		panic("browser: cookie jar: " + err.Error())
	}
	b.client.Jar = jar
}

// Fetches returns the number of result pages fetched.
func (b *Browser) Fetches() int { return b.fetches }

// SourceIP returns the machine address the browser's traffic is attributed
// to ("" when unset).
func (b *Browser) SourceIP() string { return b.sourceIP }

// Retries returns how many failed fetches were retried.
func (b *Browser) Retries() int { return b.retries }

// LastDatacenter reports the replica that served the previous page (from
// the X-Served-By header).
func (b *Browser) LastDatacenter() string { return b.lastDC }

// SetTraceID installs the trace ID sent as X-Trace-Id on subsequent
// fetches ("" stops sending the header). The crawler mints one per query
// before each fetch.
func (b *Browser) SetTraceID(id string) { b.traceID = id }

// LastTraceID reports the trace ID the server confirmed on the previous
// page ("" when the request was untraced).
func (b *Browser) LastTraceID() string { return b.lastTraceID }

// Search executes a query and parses the first page of results, retrying
// transient failures per the WithRetry policy.
func (b *Browser) Search(term string) (*serp.Page, error) {
	return b.SearchContext(context.Background(), term)
}

// SearchContext is Search with cancellation: the fetch aborts as soon as
// ctx is done, and a cancelled context is never retried — the campaign is
// shutting down, not the network flaking.
func (b *Browser) SearchContext(ctx context.Context, term string) (*serp.Page, error) {
	if term == "" {
		return nil, fmt.Errorf("browser: empty search term")
	}
	// Under a virtual clock, hold the driver while the fetch's real I/O
	// is in flight: every clock read inside the attempt — client, server,
	// and engine span timestamps — then lands on the deterministic instant
	// the attempt started at, not wherever the clock hopped to mid-wire.
	// A dispatcher that already holds (the crawler) passes its hold via
	// ctx; otherwise the browser manages its own.
	held := simclock.HeldFrom(ctx)
	if held == nil {
		if h := simclock.HolderOf(b.clock); h != nil {
			h.Hold()
			defer h.Release()
			held = h
			ctx = simclock.WithHeld(ctx, h)
		}
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// One client span per attempt: retries of a trace appear as
		// sibling spans whose gaps are the backoff sleeps.
		var span *telemetry.Span
		if b.spans != nil {
			span = b.spans.StartRootSeq(b.traceID, "browser.fetch", attempt)
			span.SetAttr("term", term)
			span.SetAttr("attempt", fmt.Sprint(attempt))
		}
		page, err := b.fetchOnce(ctx, term, attempt)
		if err == nil {
			if span != nil {
				span.SetAttr("outcome", "ok")
				span.End()
			}
			return page, nil
		}
		lastErr = err
		if ctx.Err() != nil || !IsTransient(err) || attempt >= b.maxAttempts {
			if span != nil {
				span.SetAttr("outcome", "error")
				span.SetAttr("err", errAttr(err))
				span.End()
			}
			return nil, lastErr
		}
		b.retries++
		if b.retryCtr != nil {
			b.retryCtr.Inc()
		}
		sleep := time.Duration(attempt) * b.backoff
		if span != nil {
			span.SetAttr("outcome", "retry")
			span.SetAttr("err", errAttr(err))
			if sleep > 0 {
				span.SetAttr("backoff", sleep.String())
			}
			span.End()
		}
		if sleep > 0 {
			if held != nil {
				held.SleepHeld(sleep)
			} else {
				b.clock.Sleep(sleep)
			}
		}
	}
}

// fetchOnce performs a single fetch+parse. attempt is the 1-based try
// number, advertised to the server so its spans key each retry distinctly.
func (b *Browser) fetchOnce(ctx context.Context, term string, attempt int) (*serp.Page, error) {
	u := *b.base
	u.Path = "/search"
	q := url.Values{}
	q.Set("q", term)
	if b.geo != nil {
		q.Set("ll", b.geo.String())
	}
	u.RawQuery = q.Encode()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("browser: build request: %w", err)
	}
	req.Header.Set("User-Agent", b.fp.UserAgent)
	req.Header.Set("Accept-Language", b.fp.AcceptLanguage)
	req.Header.Set("Accept", "text/html")
	if b.fp.ViewportW > 0 {
		req.Header.Set("Viewport-Width", fmt.Sprint(b.fp.ViewportW))
	}
	if b.sourceIP != "" {
		req.Header.Set("X-Forwarded-For", b.sourceIP)
	}
	if b.pinnedDC != "" {
		req.Header.Set("X-Datacenter", b.pinnedDC)
	}
	if b.traceID != "" {
		req.Header.Set(telemetry.TraceHeader, b.traceID)
		req.Header.Set(telemetry.AttemptHeader, fmt.Sprint(attempt))
	}

	resp, err := b.client.Do(req)
	if err != nil {
		// Transport failures are transient — unless the context itself was
		// cancelled, in which case retrying would only fail the same way.
		ferr := fmt.Errorf("browser: fetch: %w", err)
		if ctx.Err() != nil {
			return nil, ferr
		}
		return nil, markTransient(ferr)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		// A connection dropped mid-body; the next attempt may complete.
		return nil, markTransient(fmt.Errorf("browser: read body: %w", err))
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		// fall through
	case resp.StatusCode == http.StatusTooManyRequests:
		if b.rateLimitCtr != nil {
			b.rateLimitCtr.Inc()
		}
		return nil, fmt.Errorf("%w (retry-after %s)", ErrRateLimited, resp.Header.Get("Retry-After"))
	case resp.StatusCode >= 500:
		// Server-side faults are the canonical transient failure.
		return nil, markTransient(fmt.Errorf("browser: server returned %d: %s", resp.StatusCode, truncate(string(body), 120)))
	default:
		// Remaining 4xx: the request itself is wrong; retrying cannot help.
		return nil, fmt.Errorf("browser: server returned %d: %s", resp.StatusCode, truncate(string(body), 120))
	}
	page, err := serp.ParseAnyHTML(string(body))
	if err != nil {
		// An unparsable page usually means a truncated or garbled response,
		// not a structurally different engine — retry it.
		return nil, markTransient(fmt.Errorf("browser: parse results: %w", err))
	}
	b.fetches++
	if b.fetchCtr != nil {
		b.fetchCtr.Inc()
	}
	b.lastDC = resp.Header.Get("X-Served-By")
	// The HTML surface does not carry the trace; the header echo does.
	// Attach it to the parsed record so storage keeps the join key.
	b.lastTraceID = resp.Header.Get(telemetry.TraceHeader)
	if b.lastTraceID == "" {
		b.lastTraceID = b.traceID
	}
	page.TraceID = b.lastTraceID
	return page, nil
}

// SearchAndReset performs the full treatment protocol of the study's
// script: run the query, save the page, then clear cookies so the next
// query starts from a clean browser.
func (b *Browser) SearchAndReset(term string) (*serp.Page, error) {
	page, err := b.Search(term)
	b.ClearCookies()
	return page, err
}

// errAttr renders err for a span attribute. URL errors are unwrapped to
// their transport cause first: the wrapped form embeds the full request
// URL — including the server's ephemeral port — which would make
// otherwise-deterministic campaign timelines differ across runs.
func errAttr(err error) string {
	var uerr *url.Error
	if errors.As(err, &uerr) {
		return truncate(uerr.Err.Error(), 120)
	}
	return truncate(err.Error(), 120)
}

// truncate shortens s to at most n bytes plus an ellipsis, cutting on a
// rune boundary so multi-byte UTF-8 sequences are never split mid-rune.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	for n > 0 && !utf8.RuneStart(s[n]) {
		n--
	}
	return s[:n] + "..."
}
