package stats

import "math"

// Accumulator computes running mean and variance using Welford's online
// algorithm, so the analysis layer can fold millions of pairwise comparisons
// without retaining every sample.
//
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll folds every element of xs into the accumulator.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// Merge folds another accumulator into a (parallel aggregation), using the
// Chan et al. pairwise-merge formulation.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	na, nb := float64(a.n), float64(b.n)
	delta := b.mean - a.mean
	total := na + nb
	a.m2 += b.m2 + delta*delta*na*nb/total
	a.mean += delta * nb / total
	a.n += b.n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// N returns the number of samples folded so far.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 before any samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the running unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the running sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample seen (0 before any samples).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample seen (0 before any samples).
func (a *Accumulator) Max() float64 { return a.max }

// Summary converts the accumulator into a Summary. Median is approximated by
// the mean, since the online form does not retain samples; call sites that
// need exact medians should use Summarize instead.
func (a *Accumulator) Summary() Summary {
	return Summary{
		N:      a.n,
		Mean:   a.mean,
		StdDev: a.StdDev(),
		Min:    a.min,
		Max:    a.max,
		Median: a.mean,
	}
}
