package stats

import "sort"

// Bootstrap resampling for confidence intervals on the figure means. The
// paper reports standard-deviation error bars; bootstrap CIs are the
// modern complement when distributions are skewed (local-query noise very
// much is). The resampler is self-contained (SplitMix64) so the package
// stays dependency-free and results are reproducible from the seed.

// bootRNG is a minimal SplitMix64 generator for resampling.
type bootRNG struct{ state uint64 }

func (r *bootRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *bootRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// BootstrapCI returns the (lo, hi) percentile bootstrap confidence
// interval for the mean of xs at the given confidence level (e.g. 0.95),
// using iters resamples seeded deterministically by seed. Degenerate
// inputs (empty xs, iters < 1, confidence outside (0,1)) return (0, 0).
func BootstrapCI(xs []float64, iters int, confidence float64, seed uint64) (lo, hi float64) {
	if len(xs) == 0 || iters < 1 || confidence <= 0 || confidence >= 1 {
		return 0, 0
	}
	rng := &bootRNG{state: seed}
	means := make([]float64, iters)
	for i := 0; i < iters; i++ {
		var sum float64
		for j := 0; j < len(xs); j++ {
			sum += xs[rng.intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return means[loIdx], means[hiIdx]
}
