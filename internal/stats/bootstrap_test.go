package stats

import (
	"math"
	"testing"
)

func TestBootstrapCIBracketsTheMean(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	lo, hi := BootstrapCI(xs, 2000, 0.95, 42)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Fatalf("CI [%v, %v] does not bracket mean %v", lo, hi, m)
	}
	if hi-lo <= 0 {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	// A tighter confidence level gives a narrower interval.
	lo80, hi80 := BootstrapCI(xs, 2000, 0.80, 42)
	if hi80-lo80 >= hi-lo {
		t.Fatalf("80%% CI [%v,%v] not narrower than 95%% [%v,%v]", lo80, hi80, lo, hi)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	lo1, hi1 := BootstrapCI(xs, 500, 0.95, 7)
	lo2, hi2 := BootstrapCI(xs, 500, 0.95, 7)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("same seed gave different CIs")
	}
	lo3, _ := BootstrapCI(xs, 500, 0.95, 8)
	if lo3 == lo1 {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestBootstrapCIConstantData(t *testing.T) {
	xs := []float64{3, 3, 3, 3}
	lo, hi := BootstrapCI(xs, 200, 0.95, 1)
	if lo != 3 || hi != 3 {
		t.Fatalf("constant data CI = [%v, %v], want [3, 3]", lo, hi)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	if lo, hi := BootstrapCI(nil, 100, 0.95, 1); lo != 0 || hi != 0 {
		t.Fatal("empty input")
	}
	if lo, hi := BootstrapCI([]float64{1}, 0, 0.95, 1); lo != 0 || hi != 0 {
		t.Fatal("zero iters")
	}
	if lo, hi := BootstrapCI([]float64{1}, 100, 1.5, 1); lo != 0 || hi != 0 {
		t.Fatal("bad confidence")
	}
	if lo, hi := BootstrapCI([]float64{1}, 100, 0, 1); lo != 0 || hi != 0 {
		t.Fatal("zero confidence")
	}
}

func TestBootstrapCICoverage(t *testing.T) {
	// Rough coverage check: for samples from a known population, the 95%
	// CI should usually contain the true mean. Run 40 trials with a
	// deterministic data generator and expect >= 80% coverage (loose
	// band; this is a smoke test, not a statistics proof).
	gen := &bootRNG{state: 99}
	covered := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 50)
		for i := range xs {
			// Uniform [0, 10): population mean 5.
			xs[i] = float64(gen.next()%10000) / 1000
		}
		lo, hi := BootstrapCI(xs, 500, 0.95, uint64(trial))
		if lo <= 5 && 5 <= hi {
			covered++
		}
	}
	if covered < trials*8/10 {
		t.Fatalf("CI covered the true mean in only %d/%d trials", covered, trials)
	}
	_ = math.Pi
}
