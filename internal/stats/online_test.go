package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var a Accumulator
	a.AddAll(xs)
	if a.N() != len(xs) {
		t.Fatalf("N = %d, want %d", a.N(), len(xs))
	}
	approx(t, a.Mean(), Mean(xs), 1e-12, "online mean")
	approx(t, a.Variance(), Variance(xs), 1e-12, "online variance")
	approx(t, a.StdDev(), StdDev(xs), 1e-12, "online stddev")
	approx(t, a.Min(), 2, 0, "online min")
	approx(t, a.Max(), 9, 0, "online max")
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatalf("zero-value accumulator is not empty: %+v", a)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	var whole, left, right Accumulator
	whole.AddAll(xs)
	left.AddAll(xs[:3])
	right.AddAll(xs[3:])
	left.Merge(&right)
	approx(t, left.Mean(), whole.Mean(), 1e-12, "merged mean")
	approx(t, left.Variance(), whole.Variance(), 1e-12, "merged variance")
	approx(t, left.Min(), whole.Min(), 0, "merged min")
	approx(t, left.Max(), whole.Max(), 0, "merged max")
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, empty Accumulator
	a.Add(5)
	a.Merge(&empty)
	approx(t, a.Mean(), 5, 0, "merge empty into non-empty")
	empty.Merge(&a)
	approx(t, empty.Mean(), 5, 0, "merge non-empty into empty")
}

// Property: for any split point, merging two accumulators equals
// accumulating the whole slice.
func TestAccumulatorMergeProperty(t *testing.T) {
	f := func(raw []float64, split uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		k := int(split) % (len(xs) + 1)
		var whole, a, b Accumulator
		whole.AddAll(xs)
		a.AddAll(xs[:k])
		b.AddAll(xs[k:])
		a.Merge(&b)
		tol := 1e-6 * (1 + math.Abs(whole.Mean()))
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < tol &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-4*(1+whole.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, x := range []float64{0, 0.1, 0.3, 0.55, 0.9, 1.0} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	if h.Count(0) != 2 { // 0 and 0.1
		t.Fatalf("bin 0 = %d, want 2", h.Count(0))
	}
	if h.Count(3) != 2 { // 0.9 and 1.0 (closed last bin)
		t.Fatalf("bin 3 = %d, want 2", h.Count(3))
	}
}

func TestHistogramOverUnderflow(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-0.5)
	h.Add(1.5)
	h.Add(0.5)
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	if got := h.FractionAtLeast(0.5); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("FractionAtLeast(0.5) = %v, want 2/3", got)
	}
}

func TestHistogramBinRange(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	lo, hi := h.BinRange(2)
	approx(t, lo, 4, 1e-12, "bin lo")
	approx(t, hi, 6, 1e-12, "bin hi")
	if h.Bins() != 5 {
		t.Fatalf("Bins = %d, want 5", h.Bins())
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero bins", func() { NewHistogram(0, 1, 0) })
	mustPanic("empty interval", func() { NewHistogram(1, 1, 4) })
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.25)
	h.Add(2)
	s := h.String()
	if s == "" {
		t.Fatal("String() returned empty")
	}
	if want := "overflow=1"; !strings.Contains(s, want) {
		t.Fatalf("String() missing %q:\n%s", want, s)
	}
}
