package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, eps float64, name string) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Fatalf("%s = %v, want %v (±%v)", name, got, want, eps)
	}
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		approx(t, Mean(c.in), c.want, 1e-12, "Mean")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	approx(t, Variance(nil), 0, 0, "Variance(nil)")
	approx(t, Variance([]float64{3}), 0, 0, "Variance(single)")
	// Known sample variance: {2,4,4,4,5,5,7,9} has mean 5, sum sq dev 32,
	// sample variance 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Variance(xs), 32.0/7.0, 1e-12, "Variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "StdDev")
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	approx(t, Min(xs), -2, 0, "Min")
	approx(t, Max(xs), 7, 0, "Max")
	approx(t, Min(nil), 0, 0, "Min(nil)")
	approx(t, Max(nil), 0, 0, "Max(nil)")
}

func TestMedianAndPercentile(t *testing.T) {
	approx(t, Median([]float64{1, 3, 2}), 2, 1e-12, "Median odd")
	approx(t, Median([]float64{1, 2, 3, 4}), 2.5, 1e-12, "Median even")
	approx(t, Percentile([]float64{10, 20, 30, 40, 50}, 0), 10, 1e-12, "P0")
	approx(t, Percentile([]float64{10, 20, 30, 40, 50}, 100), 50, 1e-12, "P100")
	approx(t, Percentile([]float64{10, 20, 30, 40, 50}, 25), 20, 1e-12, "P25")
	approx(t, Percentile([]float64{10, 20}, 50), 15, 1e-12, "P50 interp")
	// Clamping out-of-range p.
	approx(t, Percentile([]float64{1, 2}, -5), 1, 1e-12, "P clamp low")
	approx(t, Percentile([]float64{1, 2}, 150), 2, 1e-12, "P clamp high")
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Fatalf("N = %d, want 5", s.N)
	}
	approx(t, s.Mean, 3, 1e-12, "Summary.Mean")
	approx(t, s.Median, 3, 1e-12, "Summary.Median")
	approx(t, s.Min, 1, 0, "Summary.Min")
	approx(t, s.Max, 5, 0, "Summary.Max")
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	approx(t, Pearson(xs, ys), 1, 1e-12, "Pearson perfect +")
	neg := []float64{10, 8, 6, 4, 2}
	approx(t, Pearson(xs, neg), -1, 1e-12, "Pearson perfect -")
}

func TestPearsonDegenerate(t *testing.T) {
	approx(t, Pearson([]float64{1, 2}, []float64{1}), 0, 0, "length mismatch")
	approx(t, Pearson([]float64{1}, []float64{1}), 0, 0, "too short")
	approx(t, Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}), 0, 0, "zero x variance")
	approx(t, Pearson([]float64{1, 2, 3}, []float64{4, 4, 4}), 0, 0, "zero y variance")
}

func TestSpearmanMonotone(t *testing.T) {
	// A monotone nonlinear relation has Spearman 1 but Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	approx(t, Spearman(xs, ys), 1, 1e-12, "Spearman monotone")
	if p := Pearson(xs, ys); p >= 1 {
		t.Fatalf("Pearson of nonlinear relation = %v, want < 1", p)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		approx(t, got[i], want[i], 1e-12, "Ranks")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit := LinearFit(xs, ys)
	approx(t, fit.Slope, 2, 1e-12, "Slope")
	approx(t, fit.Intercept, 1, 1e-12, "Intercept")
	approx(t, fit.R2, 1, 1e-12, "R2")
}

func TestLinearFitDegenerate(t *testing.T) {
	if fit := LinearFit([]float64{1, 1}, []float64{2, 3}); fit.Slope != 0 || fit.R2 != 0 {
		t.Fatalf("zero-variance fit = %+v, want zero value", fit)
	}
	if fit := LinearFit([]float64{1}, []float64{2}); fit != (Linear{}) {
		t.Fatalf("short fit = %+v, want zero value", fit)
	}
}

// Property: Pearson is always within [-1, 1] and symmetric.
func TestPearsonProperties(t *testing.T) {
	f := func(pairs []struct{ X, Y float64 }) bool {
		xs := make([]float64, 0, len(pairs))
		ys := make([]float64, 0, len(pairs))
		for _, p := range pairs {
			if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
				continue
			}
			// Keep magnitudes sane to avoid float overflow in sums of squares.
			xs = append(xs, math.Mod(p.X, 1e6))
			ys = append(ys, math.Mod(p.Y, 1e6))
		}
		r := Pearson(xs, ys)
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		return math.Abs(r-Pearson(ys, xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is within [min, max], stddev is non-negative.
func TestSummaryProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e9))
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ranks are a permutation-invariant transform; sum of ranks is
// n(n+1)/2 regardless of ties.
func TestRanksSumProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		ranks := Ranks(xs)
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		n := float64(len(xs))
		return math.Abs(sum-n*(n+1)/2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
