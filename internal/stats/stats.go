// Package stats provides the small statistical toolkit used throughout the
// measurement pipeline: summary statistics, correlation coefficients, simple
// linear regression, and histograms.
//
// The package is intentionally dependency-free and operates on float64
// slices. All functions treat an empty input as a degenerate case and return
// zero values rather than panicking, because the analysis layer frequently
// aggregates over filtered subsets that may be empty (e.g. "News-card noise
// for brand queries" is legitimately an empty set).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (divisor n-1).
// Slices with fewer than two elements have zero variance by convention.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without mutating the input.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input is not mutated.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the descriptive statistics reported for every bar and
// error bar in the paper's figures.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}

// Pearson returns the Pearson product-moment correlation coefficient between
// xs and ys. It returns 0 when the inputs differ in length, are shorter than
// two elements, or either input has zero variance (the coefficient is
// undefined in those cases; 0 is the conservative "no correlation" answer the
// demographics analysis wants).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation coefficient, i.e. the Pearson
// correlation of the rank-transformed inputs. Ties receive fractional
// (mid) ranks.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the fractional ranks of xs (1-based; ties get the mean of
// the ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Elements i..j (in sorted order) are tied; assign the mid rank.
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	return ranks
}

// Linear holds the result of a simple least-squares linear regression
// y = Slope*x + Intercept.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit performs an ordinary least-squares fit of ys against xs.
// Degenerate inputs (mismatched lengths, fewer than two points, zero x
// variance) yield a zero-valued Linear.
func LinearFit(xs, ys []float64) Linear {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Linear{}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}
	}
	slope := sxy / sxx
	fit := Linear{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit
}
