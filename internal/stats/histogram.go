package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width-bin histogram over a closed interval, used by
// the analysis layer to characterize the distribution of pairwise similarity
// scores (e.g. the validation experiment's "94% of result pages identical").
type Histogram struct {
	lo, hi   float64
	bins     []int
	under    int
	over     int
	total    int
	binWidth float64
}

// NewHistogram creates a histogram over [lo, hi] with n equal-width bins.
// It panics if n < 1 or hi <= lo; both indicate a programming error at the
// call site rather than bad data.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram interval is empty")
	}
	return &Histogram{
		lo:       lo,
		hi:       hi,
		bins:     make([]int, n),
		binWidth: (hi - lo) / float64(n),
	}
}

// Add records x. Values outside [lo, hi] are tallied in the underflow or
// overflow counters rather than dropped.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x > h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.binWidth)
		if i == len(h.bins) { // x == hi lands in the last bin
			i--
		}
		h.bins[i]++
	}
}

// Count returns the number of samples in bin i.
func (h *Histogram) Count(i int) int { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Total returns the total number of samples recorded, including overflow
// and underflow.
func (h *Histogram) Total() int { return h.total }

// BinRange returns the half-open interval [lo, hi) covered by bin i
// (the final bin is closed).
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	lo = h.lo + float64(i)*h.binWidth
	return lo, lo + h.binWidth
}

// FractionAtLeast returns the fraction of all samples with value >= x.
// Overflow samples count as >= x; underflow samples do not.
func (h *Histogram) FractionAtLeast(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	count := h.over
	for i := range h.bins {
		lo, _ := h.BinRange(i)
		if lo >= x {
			count += h.bins[i]
		}
	}
	return float64(count) / float64(h.total)
}

// String renders a compact ASCII sketch of the histogram, one line per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.bins {
		lo, hi := h.BinRange(i)
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "[%6.3f, %6.3f) %6d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, "underflow=%d overflow=%d\n", h.under, h.over)
	}
	return b.String()
}
