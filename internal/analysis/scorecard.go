package analysis

import "fmt"

// Check is one verdict of the fidelity scorecard: a qualitative claim from
// the paper evaluated against a dataset.
type Check struct {
	// Claim names the paper finding being checked.
	Claim string `json:"claim"`
	// Pass reports whether the dataset exhibits it.
	Pass bool `json:"pass"`
	// Detail carries the measured values behind the verdict.
	Detail string `json:"detail"`
}

// ScorecardSource is the figure surface the scorecard reads: the five
// reproductions whose means decide the paper's headline claims. Both the
// batch *Dataset and the streaming *Stream implement it, which is what
// makes the streaming/batch parity invariant checkable — the same
// ScorecardFrom body runs over either.
type ScorecardSource interface {
	NoiseByGranularity() []NoiseCell
	PersonalizationByGranularity() []PersonalizationCell
	PersonalizationPerTerm(category string) []TermSeries
	PersonalizationByResultType() []BreakdownCell
	ConsistencyOverTime(category string) []ConsistencySeries
}

// Scorecard evaluates the paper's headline findings against the dataset
// and returns one Check per claim. It is the programmatic counterpart of
// EXPERIMENTS.md: run any crawl — full, scaled, reseeded, or against a
// live engine — through it to see which of the paper's findings hold.
func (d *Dataset) Scorecard() []Check { return ScorecardFrom(d) }

// ScorecardFrom evaluates the paper's headline findings against any
// scorecard source — the batch dataset or a streaming aggregator mid- or
// post-campaign. Every claim reads only edit-distance means, which both
// sources compute exactly (integer sums), so verdicts and details agree
// to the byte between them.
func ScorecardFrom(src ScorecardSource) []Check {
	var out []Check
	add := func(claim string, pass bool, format string, args ...any) {
		out = append(out, Check{Claim: claim, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	}

	noise := map[[2]string]NoiseCell{}
	for _, c := range src.NoiseByGranularity() {
		noise[[2]string{c.Granularity, c.Category}] = c
	}
	pers := map[[2]string]PersonalizationCell{}
	for _, c := range src.PersonalizationByGranularity() {
		pers[[2]string{c.Granularity, c.Category}] = c
	}
	has := func(g, c string) bool {
		_, ok := noise[[2]string{g, c}]
		return ok
	}

	// Claim 1 (Fig 2): local queries are far noisier than controversial
	// and politician queries.
	if has("county", "local") && has("county", "controversial") && has("county", "politician") {
		l := noise[[2]string{"county", "local"}].Edit.Mean
		c := noise[[2]string{"county", "controversial"}].Edit.Mean
		p := noise[[2]string{"county", "politician"}].Edit.Mean
		add("local queries are the noisiest; politicians the quietest (Fig 2)",
			l > c && c >= p,
			"edit: local=%.2f controversial=%.2f politicians=%.2f", l, c, p)
	}

	// Claim 2 (Fig 2): noise is independent of granularity.
	if has("county", "local") && has("state", "local") && has("national", "local") {
		a := noise[[2]string{"county", "local"}].Edit.Mean
		b := noise[[2]string{"state", "local"}].Edit.Mean
		c := noise[[2]string{"national", "local"}].Edit.Mean
		lo, hi := minMax3(a, b, c)
		add("noise is uniform across granularities (Fig 2)",
			lo > 0 && hi/lo < 1.5,
			"local noise county/state/national = %.2f/%.2f/%.2f", a, b, c)
	}

	// Claim 3 (Fig 5): personalization grows with distance for local
	// queries.
	if _, ok := pers[[2]string{"county", "local"}]; ok {
		a := pers[[2]string{"county", "local"}].Edit.Mean
		b := pers[[2]string{"state", "local"}].Edit.Mean
		c := pers[[2]string{"national", "local"}].Edit.Mean
		add("local personalization grows with distance (Fig 5)",
			a < b && b <= c*1.1,
			"edit county/state/national = %.2f/%.2f/%.2f", a, b, c)
		n := pers[[2]string{"county", "local"}].NoiseEdit
		add("local personalization exceeds the noise floor (Fig 5)",
			a > n,
			"county personalization %.2f vs noise %.2f", a, n)
	}

	// Claim 4 (Fig 5): controversial and politician queries stay near
	// their noise floors at county scale.
	for _, cat := range []string{"controversial", "politician"} {
		if c, ok := pers[[2]string{"county", cat}]; ok {
			add(fmt.Sprintf("%s queries near the noise floor at county scale (Fig 5)", cat),
				c.Edit.Mean <= c.NoiseEdit+1.0,
				"personalization %.2f vs noise %.2f", c.Edit.Mean, c.NoiseEdit)
		}
	}

	// Claim 5 (Figs 3/6): brand local terms are quieter and less
	// personalized than generic ones — approximated here by comparing the
	// extremes of the sorted per-term series.
	if terms := src.PersonalizationPerTerm("local"); len(terms) >= 4 {
		lo := terms[0].EditByGranularity["national"]
		hi := terms[len(terms)-1].EditByGranularity["national"]
		add("per-term local personalization varies widely (Fig 6)",
			hi > lo*1.3,
			"national edit range %.2f..%.2f", lo, hi)
	}

	// Claim 6 (Fig 7): Maps explain only a minority of local
	// personalization; most changes hit typical results.
	for _, c := range src.PersonalizationByResultType() {
		if c.Category == "local" && c.Granularity == "state" {
			add("Maps are a minority share of local personalization (Fig 7, paper: 18-27%)",
				c.MapsShare() > 0.05 && c.MapsShare() < 0.5 && c.Other > c.Maps,
				"maps share %.2f, other %.2f vs maps %.2f", c.MapsShare(), c.Other, c.Maps)
		}
		if c.Category == "controversial" && c.Granularity == "national" {
			add("News drive a small share of controversial personalization (Fig 7, paper: 6-18%)",
				c.NewsShare() > 0.02 && c.NewsShare() < 0.5 && c.Maps == 0,
				"news share %.2f, maps %.2f", c.NewsShare(), c.Maps)
		}
	}

	// Claim 7 (Fig 8): personalization is stable over time.
	for _, s := range src.ConsistencyOverTime("local") {
		if len(s.Days) < 2 {
			continue
		}
		stable := true
		var worstSpread float64
		for _, line := range s.PerLocation {
			lo, hi := line[0], line[0]
			for _, v := range line {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if spread := hi - lo; spread > worstSpread {
				worstSpread = spread
			}
			if hi > lo*2+1 {
				stable = false
			}
		}
		add(fmt.Sprintf("personalization stable across days at %s scale (Fig 8)", s.Granularity),
			stable,
			"worst per-location day spread %.2f", worstSpread)
	}

	return out
}

func minMax3(a, b, c float64) (lo, hi float64) {
	lo, hi = a, a
	for _, v := range []float64{b, c} {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
