package analysis

import (
	"strings"
	"testing"

	"geoserp/internal/serp"
	"geoserp/internal/storage"
)

// Short aliases for building fixture pages.
type (
	serpPage   = serp.Page
	serpCard   = serp.Card
	serpResult = serp.Result
)

const serpNews = serp.News

// scorecardFixture builds a hand-crafted dataset that satisfies every
// paper claim: quiet politicians, noisy local queries, distance-growing
// personalization.
func scorecardFixture(t *testing.T) *Dataset {
	t.Helper()
	var data []storage.Observation

	// Per-granularity location pairs.
	locs := map[string][2]string{
		"county":   {"d/1", "d/2"},
		"state":    {"c/1", "c/2"},
		"national": {"s/1", "s/2"},
	}
	// How different the second location's page is, per granularity
	// (growing with distance).
	swap := map[string]int{"county": 3, "state": 4, "national": 5}

	mk := func(links ...string) []string { return links }
	base := mk("a", "b", "c", "d", "e", "f", "g", "h")

	for _, day := range []int{0, 1} {
		for g, pair := range locs {
			// Local term "Coffee": noisy control, location-shifted page.
			ctrl := append([]string{}, base...)
			ctrl[6], ctrl[7] = "n1", "n2" // noise: 2 changed links
			other := append([]string{}, base...)
			for i := 0; i < swap[g]; i++ {
				other[i] = "loc-" + g + string(rune('A'+i))
			}
			data = append(data,
				obs("Coffee", "local", g, pair[0], storage.Treatment, day, page(base...)),
				obs("Coffee", "local", g, pair[0], storage.Control, day, page(ctrl...)),
				obs("Coffee", "local", g, pair[1], storage.Treatment, day, page(other...)),
				obs("Coffee", "local", g, pair[1], storage.Control, day, page(other...)),
			)
			// Second local term with milder personalization (per-term
			// variation for the Fig 6 claim).
			mild := append([]string{}, base...)
			if swap[g] > 3 {
				mild[0] = "m-" + g
			}
			data = append(data,
				obs("Starbucks", "local", g, pair[0], storage.Treatment, day, page(base...)),
				obs("Starbucks", "local", g, pair[0], storage.Control, day, page(ctrl...)),
				obs("Starbucks", "local", g, pair[1], storage.Treatment, day, page(mild...)),
				obs("Starbucks", "local", g, pair[1], storage.Control, day, page(mild...)),
			)
			// Controversial and politician terms: quiet, unpersonalized,
			// except a small national news difference for controversial.
			cPage := mapsFree("w", "x", "y", "z")
			cOther := cPage
			if g == "national" {
				// One news-card change plus two organic changes, so the
				// News share lands in the paper's minority band.
				cOther = withNews([]string{"news-" + g}, "w", "x", "reg-1", "reg-2")
			}
			data = append(data,
				obs("Health", "controversial", g, pair[0], storage.Treatment, day, cOther),
				obs("Health", "controversial", g, pair[0], storage.Control, day, cOther),
				obs("Health", "controversial", g, pair[1], storage.Treatment, day, cPage),
				obs("Health", "controversial", g, pair[1], storage.Control, day, cPage),
				obs("Obama", "politician", g, pair[0], storage.Treatment, day, cPage),
				obs("Obama", "politician", g, pair[0], storage.Control, day, cPage),
				obs("Obama", "politician", g, pair[1], storage.Treatment, day, cPage),
				obs("Obama", "politician", g, pair[1], storage.Control, day, cPage),
			)
		}
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mapsFree(links ...string) *serpPage { return page(links...) }

func withNews(newsLinks []string, organic ...string) *serpPage {
	p := page(organic...)
	card := serpCard{Type: serpNews}
	for _, l := range newsLinks {
		card.Results = append(card.Results, serpResult{URL: l, Title: l})
	}
	p.Cards = append(p.Cards, card)
	return p
}

func TestScorecardOnConformingData(t *testing.T) {
	d := scorecardFixture(t)
	checks := d.Scorecard()
	if len(checks) < 8 {
		t.Fatalf("checks = %d, want >= 8", len(checks))
	}
	for _, c := range checks {
		// The maps-share claim legitimately fails here (the fixture has
		// no maps cards); everything else must pass.
		if strings.Contains(c.Claim, "Maps are a minority") {
			continue
		}
		if !c.Pass {
			t.Errorf("claim failed on conforming data: %s (%s)", c.Claim, c.Detail)
		}
		if c.Detail == "" {
			t.Errorf("claim %q has no detail", c.Claim)
		}
	}
}

func TestScorecardDetectsViolations(t *testing.T) {
	// A dataset where politicians are personalized MORE than local terms
	// must fail the category-ordering claims.
	var data []storage.Observation
	for g, pair := range map[string][2]string{"county": {"d/1", "d/2"}} {
		data = append(data,
			obs("Coffee", "local", g, pair[0], storage.Treatment, 0, page("a", "b")),
			obs("Coffee", "local", g, pair[0], storage.Control, 0, page("a", "b")),
			obs("Coffee", "local", g, pair[1], storage.Treatment, 0, page("a", "b")),
			obs("Coffee", "local", g, pair[1], storage.Control, 0, page("a", "b")),
			obs("Obama", "politician", g, pair[0], storage.Treatment, 0, page("p", "q")),
			obs("Obama", "politician", g, pair[0], storage.Control, 0, page("x", "y")),
			obs("Obama", "politician", g, pair[1], storage.Treatment, 0, page("r", "s")),
			obs("Obama", "politician", g, pair[1], storage.Control, 0, page("z", "w")),
		)
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, c := range d.Scorecard() {
		if !c.Pass {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("scorecard passed a clearly violating dataset")
	}
}
