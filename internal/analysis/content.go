package analysis

import (
	"math"
	"net/url"
	"sort"
	"strings"

	"geoserp/internal/geo"
	"geoserp/internal/metrics"
	"geoserp/internal/stats"
)

// This file implements the paper's proposed follow-up analyses (§5):
// "Additional content analysis on the search results may help us uncover
// the specific instances where personalization algorithms reinforce
// demographic biases", and the distance question ("At what distance do
// users begin to see changes?") as a continuous curve rather than three
// granularity buckets.

// DomainBias describes how unevenly one web domain is served across
// locations.
type DomainBias struct {
	// Domain is the result host name.
	Domain string
	// MeanPresence is the average fraction of pages (per location)
	// containing the domain.
	MeanPresence float64
	// Spread is the max-min presence across locations: 0 means the
	// domain is served uniformly everywhere, 1 means some locations
	// always see it and others never do.
	Spread float64
	// TopLocation is the location with the highest presence.
	TopLocation string
	// TopPresence is that location's presence fraction.
	TopPresence float64
}

// domainOf extracts the host from a result URL ("" if unparseable).
func domainOf(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return strings.ToLower(u.Host)
}

// DomainBiasByLocation performs the content analysis: for every domain
// appearing in the category's results at the given granularity, how evenly
// is it served across locations? Domains are returned sorted by Spread
// descending (the most location-biased first), restricted to domains with
// MeanPresence >= minPresence to suppress one-off long-tail hosts.
func (d *Dataset) DomainBiasByLocation(granularity, category string, minPresence float64) []DomainBias {
	locs := d.locationsByGranularity[granularity]
	if len(locs) == 0 {
		return nil
	}
	// pages[loc] = number of pages; hits[domain][loc] = pages containing it.
	pages := map[string]int{}
	hits := map[string]map[string]int{}
	d.eachSlot(granularity, category, func(_ string, _ int, loc string, p *pair) {
		if p.treatment == nil {
			return
		}
		pages[loc]++
		seen := map[string]bool{}
		for _, link := range p.treatment.Links() {
			dom := domainOf(link)
			if dom == "" || seen[dom] {
				continue
			}
			seen[dom] = true
			if hits[dom] == nil {
				hits[dom] = map[string]int{}
			}
			hits[dom][loc]++
		}
	})

	var out []DomainBias
	for dom, byLoc := range hits {
		var presences []float64
		var topLoc string
		topP := -1.0
		for _, loc := range locs {
			if pages[loc] == 0 {
				continue
			}
			p := float64(byLoc[loc]) / float64(pages[loc])
			presences = append(presences, p)
			if p > topP {
				topP, topLoc = p, loc
			}
		}
		if len(presences) == 0 {
			continue
		}
		mean := stats.Mean(presences)
		if mean < minPresence {
			continue
		}
		out = append(out, DomainBias{
			Domain:       dom,
			MeanPresence: mean,
			Spread:       stats.Max(presences) - stats.Min(presences),
			TopLocation:  topLoc,
			TopPresence:  topP,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Spread != out[j].Spread {
			return out[i].Spread > out[j].Spread
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// DecayBin is one distance bucket of the personalization-vs-distance
// curve.
type DecayBin struct {
	// LoKm and HiKm bound the bucket (geometric bins).
	LoKm, HiKm float64
	// Edit summarizes the pairwise edit distances in the bucket.
	Edit stats.Summary
	// Jaccard summarizes the pairwise Jaccard indices.
	Jaccard stats.Summary
}

// DistanceDecay answers "at what distance do users begin to see changes?"
// continuously: every unordered location pair (across ALL granularities)
// is binned by physical distance, and each bin summarized. Bins are
// geometric from 1 km; the fit is edit-distance against log10(distance).
func (d *Dataset) DistanceDecay(locs *geo.Dataset, category string) ([]DecayBin, stats.Linear) {
	type sample struct {
		km      float64
		edit    float64
		jaccard float64
	}
	var samples []sample
	for _, g := range d.orderedGranularities() {
		ids := d.locationsByGranularity[g]
		for _, term := range d.termsByCategory[category] {
			for _, day := range d.days {
				for i := 0; i < len(ids); i++ {
					pa, ok := d.lookup(g, term, day, ids[i])
					if !ok || pa.treatment == nil {
						continue
					}
					la, okA := locs.ByID(ids[i])
					if !okA {
						continue
					}
					for j := i + 1; j < len(ids); j++ {
						pb, ok := d.lookup(g, term, day, ids[j])
						if !ok || pb.treatment == nil {
							continue
						}
						lb, okB := locs.ByID(ids[j])
						if !okB {
							continue
						}
						cmp := metrics.ComparePages(pa.treatment, pb.treatment)
						samples = append(samples, sample{
							km:      geo.DistanceKm(la.Point, lb.Point),
							edit:    float64(cmp.EditDistance),
							jaccard: cmp.Jaccard,
						})
					}
				}
			}
		}
	}
	if len(samples) == 0 {
		return nil, stats.Linear{}
	}

	// Geometric bins: [1,2), [2,4), ... covering the observed range.
	maxKm := 1.0
	for _, s := range samples {
		if s.km > maxKm {
			maxKm = s.km
		}
	}
	nBins := int(math.Ceil(math.Log2(maxKm))) + 1
	type acc struct{ edit, jacc []float64 }
	accs := make([]acc, nBins)
	for _, s := range samples {
		km := s.km
		if km < 1 {
			km = 1
		}
		bin := int(math.Floor(math.Log2(km)))
		if bin >= nBins {
			bin = nBins - 1
		}
		accs[bin].edit = append(accs[bin].edit, s.edit)
		accs[bin].jacc = append(accs[bin].jacc, s.jaccard)
	}
	var bins []DecayBin
	for i, a := range accs {
		if len(a.edit) == 0 {
			continue
		}
		bins = append(bins, DecayBin{
			LoKm:    math.Pow(2, float64(i)),
			HiKm:    math.Pow(2, float64(i+1)),
			Edit:    stats.Summarize(a.edit),
			Jaccard: stats.Summarize(a.jacc),
		})
	}

	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		km := s.km
		if km < 1 {
			km = 1
		}
		xs[i] = math.Log10(km)
		ys[i] = s.edit
	}
	return bins, stats.LinearFit(xs, ys)
}
