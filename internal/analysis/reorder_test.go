package analysis

import (
	"math"
	"testing"

	"geoserp/internal/storage"
)

func TestReorderingVsComposition(t *testing.T) {
	// Location pair 1: same set, reversed order → pure reordering.
	// Location pair 2 (different term): disjoint sets → pure composition.
	data := []storage.Observation{
		obs("Coffee", "local", "county", "d/1", storage.Treatment, 0, page("a", "b", "c")),
		obs("Coffee", "local", "county", "d/2", storage.Treatment, 0, page("c", "b", "a")),
		obs("Bank", "local", "county", "d/1", storage.Treatment, 0, page("p", "q")),
		obs("Bank", "local", "county", "d/2", storage.Treatment, 0, page("x", "y")),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	cells := d.ReorderingVsComposition()
	if len(cells) != 1 {
		t.Fatalf("cells = %+v", cells)
	}
	c := cells[0]
	// Coffee pair: composition 0, reordering 1 (fully reversed).
	// Bank pair: composition 1, reordering 0 (no shared results ⇒ tau=1).
	if math.Abs(c.Composition.Mean-0.5) > 1e-9 {
		t.Fatalf("composition = %v, want 0.5", c.Composition.Mean)
	}
	if math.Abs(c.Reordering.Mean-0.5) > 1e-9 {
		t.Fatalf("reordering = %v, want 0.5", c.Reordering.Mean)
	}
	if c.RBO.Mean <= 0 || c.RBO.Mean >= 1 {
		t.Fatalf("rbo = %v", c.RBO.Mean)
	}
	if c.Composition.N != 2 {
		t.Fatalf("samples = %d", c.Composition.N)
	}
}

func TestReorderingEmptyDataset(t *testing.T) {
	d, err := NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cells := d.ReorderingVsComposition(); cells != nil {
		t.Fatalf("cells = %+v", cells)
	}
}
