package analysis

import (
	"sort"

	"geoserp/internal/metrics"
	"geoserp/internal/serp"
	"geoserp/internal/stats"
)

// CategoryOrder is the order the paper's figures plot query categories in.
var CategoryOrder = []string{"politician", "controversial", "local"}

// orderedCategories returns the dataset's categories in figure order, with
// any extras appended alphabetically.
func (d *Dataset) orderedCategories() []string {
	return orderWith(CategoryOrder, d.categories)
}

// GranularityOrder is the fine-to-coarse x-axis order of Figures 2 and 5.
var GranularityOrder = []string{"county", "state", "national"}

// orderedGranularities returns the dataset's granularities in figure
// order.
func (d *Dataset) orderedGranularities() []string {
	return orderWith(GranularityOrder, d.granularities)
}

// orderWith arranges the (sorted, duplicate-free) labels in `have` by the
// figure order `order`, appending labels the order does not mention in
// their original (alphabetical) position. Both Dataset and Stream iterate
// their cells through it, so batch and streaming output line up row for
// row.
func orderWith(order, have []string) []string {
	var out []string
	seen := map[string]bool{}
	for _, want := range order {
		for _, h := range have {
			if h == want {
				out = append(out, want)
				seen[want] = true
			}
		}
	}
	for _, h := range have {
		if !seen[h] {
			out = append(out, h)
		}
	}
	return out
}

// NoiseCell is one bar of Figure 2: the average treatment-vs-control
// difference for one (granularity, category) cell, with the standard
// deviations shown as error bars.
type NoiseCell struct {
	Granularity string
	Category    string
	Jaccard     stats.Summary
	Edit        stats.Summary
}

// NoiseByGranularity reproduces Figure 2: average noise levels across
// query types and granularities, measured by comparing each treatment to
// its simultaneous control.
func (d *Dataset) NoiseByGranularity() []NoiseCell {
	var out []NoiseCell
	for _, g := range d.orderedGranularities() {
		for _, cat := range d.orderedCategories() {
			var js, es []float64
			d.eachSlot(g, cat, func(_ string, _ int, _ string, p *pair) {
				if p.treatment == nil || p.control == nil {
					return
				}
				cmp := metrics.ComparePages(p.treatment, p.control)
				js = append(js, cmp.Jaccard)
				es = append(es, float64(cmp.EditDistance))
			})
			if len(js) == 0 {
				continue
			}
			out = append(out, NoiseCell{
				Granularity: g,
				Category:    cat,
				Jaccard:     stats.Summarize(js),
				Edit:        stats.Summarize(es),
			})
		}
	}
	return out
}

// PersonalizationCell is one bar of Figure 5: the all-pairs cross-location
// difference for a (granularity, category) cell, with the matching noise
// floor drawn as the black bar.
type PersonalizationCell struct {
	Granularity  string
	Category     string
	Jaccard      stats.Summary
	Edit         stats.Summary
	NoiseJaccard float64
	NoiseEdit    float64
}

// PersonalizationByGranularity reproduces Figure 5: for every term and
// day, all unordered pairs of locations' treatment pages are compared; the
// noise floors from Figure 2 are attached for reference.
func (d *Dataset) PersonalizationByGranularity() []PersonalizationCell {
	noise := map[[2]string]NoiseCell{}
	for _, n := range d.NoiseByGranularity() {
		noise[[2]string{n.Granularity, n.Category}] = n
	}
	var out []PersonalizationCell
	for _, g := range d.orderedGranularities() {
		for _, cat := range d.orderedCategories() {
			js, es := d.pairwiseByTerm(g, cat, nil)
			if len(js) == 0 {
				continue
			}
			cell := PersonalizationCell{
				Granularity: g,
				Category:    cat,
				Jaccard:     stats.Summarize(js),
				Edit:        stats.Summarize(es),
			}
			if n, ok := noise[[2]string{g, cat}]; ok {
				cell.NoiseJaccard = n.Jaccard.Mean
				cell.NoiseEdit = n.Edit.Mean
			}
			out = append(out, cell)
		}
	}
	return out
}

// pairwiseByTerm collects Jaccard and edit-distance samples over all
// unordered location pairs for every (term, day) at granularity g. When
// filterTerm is non-nil only matching terms contribute.
func (d *Dataset) pairwiseByTerm(g, category string, filterTerm func(string) bool) (js, es []float64) {
	locs := d.locationsByGranularity[g]
	for _, cat := range d.categories {
		if category != "" && cat != category {
			continue
		}
		for _, term := range d.termsByCategory[cat] {
			if filterTerm != nil && !filterTerm(term) {
				continue
			}
			for _, day := range d.days {
				var pages []*serp.Page
				for _, loc := range locs {
					if p, ok := d.lookup(g, term, day, loc); ok && p.treatment != nil {
						pages = append(pages, p.treatment)
					}
				}
				for i := 0; i < len(pages); i++ {
					for j := i + 1; j < len(pages); j++ {
						cmp := metrics.ComparePages(pages[i], pages[j])
						js = append(js, cmp.Jaccard)
						es = append(es, float64(cmp.EditDistance))
					}
				}
			}
		}
	}
	return js, es
}

// TermSeries is one term's x-position in Figures 3 and 6: its average edit
// distance (noise or personalization) at each granularity.
type TermSeries struct {
	Term string
	// EditByGranularity maps granularity label → mean edit distance.
	EditByGranularity map[string]float64
	// JaccardByGranularity maps granularity label → mean Jaccard.
	JaccardByGranularity map[string]float64
}

// NoisePerTerm reproduces Figure 3 for the given category (the paper plots
// local queries): per-term noise at each granularity, sorted ascending by
// the national-level value as the paper sorts its x-axis.
func (d *Dataset) NoisePerTerm(category string) []TermSeries {
	var out []TermSeries
	for _, term := range d.termsByCategory[category] {
		ts := TermSeries{
			Term:                 term,
			EditByGranularity:    map[string]float64{},
			JaccardByGranularity: map[string]float64{},
		}
		for _, g := range d.orderedGranularities() {
			var js, es []float64
			d.eachSlot(g, category, func(tm string, _ int, _ string, p *pair) {
				if tm != term || p.treatment == nil || p.control == nil {
					return
				}
				cmp := metrics.ComparePages(p.treatment, p.control)
				js = append(js, cmp.Jaccard)
				es = append(es, float64(cmp.EditDistance))
			})
			if len(es) > 0 {
				ts.EditByGranularity[g] = stats.Mean(es)
				ts.JaccardByGranularity[g] = stats.Mean(js)
			}
		}
		out = append(out, ts)
	}
	sortTermSeries(out, "national")
	return out
}

// PersonalizationPerTerm reproduces Figure 6: per-term cross-location
// personalization at each granularity, sorted by the national values.
func (d *Dataset) PersonalizationPerTerm(category string) []TermSeries {
	var out []TermSeries
	for _, term := range d.termsByCategory[category] {
		term := term
		ts := TermSeries{
			Term:                 term,
			EditByGranularity:    map[string]float64{},
			JaccardByGranularity: map[string]float64{},
		}
		for _, g := range d.orderedGranularities() {
			js, es := d.pairwiseByTerm(g, category, func(t string) bool { return t == term })
			if len(es) > 0 {
				ts.EditByGranularity[g] = stats.Mean(es)
				ts.JaccardByGranularity[g] = stats.Mean(js)
			}
		}
		out = append(out, ts)
	}
	sortTermSeries(out, "national")
	return out
}

func sortTermSeries(ts []TermSeries, by string) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i].EditByGranularity[by], ts[j].EditByGranularity[by]
		if a != b {
			return a < b
		}
		return ts[i].Term < ts[j].Term
	})
}

// TypeAttribution is one term's bar group in Figure 4: the edit distance
// attributable to all results, Maps results, and News results.
type TypeAttribution struct {
	Term string
	All  float64
	Maps float64
	News float64
}

// NoiseByResultType reproduces Figure 4: the amount of treatment/control
// noise caused by each card type, per term, at one granularity. The paper
// plots local queries at county granularity and notes the same trends
// elsewhere.
func (d *Dataset) NoiseByResultType(category, granularity string) []TypeAttribution {
	var out []TypeAttribution
	for _, term := range d.termsByCategory[category] {
		var all, maps, news []float64
		d.eachSlot(granularity, category, func(tm string, _ int, _ string, p *pair) {
			if tm != term || p.treatment == nil || p.control == nil {
				return
			}
			bd := metrics.BreakdownPages(p.treatment, p.control)
			all = append(all, float64(bd.All))
			maps = append(maps, float64(bd.Maps))
			news = append(news, float64(bd.News))
		})
		if len(all) == 0 {
			continue
		}
		out = append(out, TypeAttribution{
			Term: term,
			All:  stats.Mean(all),
			Maps: stats.Mean(maps),
			News: stats.Mean(news),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].All != out[j].All {
			return out[i].All < out[j].All
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// BreakdownCell is one bar stack of Figure 7: the personalization edit
// distance decomposed into Maps, News, and all other results, for one
// (category, granularity) cell.
type BreakdownCell struct {
	Category    string
	Granularity string
	All         float64
	Maps        float64
	News        float64
	Other       float64
}

// MapsShare returns Maps / (Maps+News+Other), 0 when no changes.
func (b BreakdownCell) MapsShare() float64 {
	if t := b.Maps + b.News + b.Other; t > 0 {
		return b.Maps / t
	}
	return 0
}

// NewsShare returns News / (Maps+News+Other), 0 when no changes.
func (b BreakdownCell) NewsShare() float64 {
	if t := b.Maps + b.News + b.Other; t > 0 {
		return b.News / t
	}
	return 0
}

// PersonalizationByResultType reproduces Figure 7: the cross-location edit
// distance decomposed by card type for every category × granularity.
func (d *Dataset) PersonalizationByResultType() []BreakdownCell {
	var out []BreakdownCell
	for _, cat := range d.orderedCategories() {
		for _, g := range d.orderedGranularities() {
			var all, maps, news, other []float64
			locs := d.locationsByGranularity[g]
			for _, term := range d.termsByCategory[cat] {
				for _, day := range d.days {
					var pages []*serp.Page
					for _, loc := range locs {
						if p, ok := d.lookup(g, term, day, loc); ok && p.treatment != nil {
							pages = append(pages, p.treatment)
						}
					}
					for i := 0; i < len(pages); i++ {
						for j := i + 1; j < len(pages); j++ {
							bd := metrics.BreakdownPages(pages[i], pages[j])
							all = append(all, float64(bd.All))
							maps = append(maps, float64(bd.Maps))
							news = append(news, float64(bd.News))
							other = append(other, float64(bd.Other))
						}
					}
				}
			}
			if len(all) == 0 {
				continue
			}
			out = append(out, BreakdownCell{
				Category:    cat,
				Granularity: g,
				All:         stats.Mean(all),
				Maps:        stats.Mean(maps),
				News:        stats.Mean(news),
				Other:       stats.Mean(other),
			})
		}
	}
	return out
}

// ConsistencySeries is one panel of Figure 8: for one granularity, the
// day-by-day average edit distance between a baseline location and every
// other location (black lines), plus the baseline's treatment-vs-control
// noise floor (the red line).
type ConsistencySeries struct {
	Granularity string
	Baseline    string
	// Days lists the campaign days in order.
	Days []int
	// NoiseFloor[i] is the baseline's avg treatment/control edit
	// distance on Days[i].
	NoiseFloor []float64
	// PerLocation maps each non-baseline location to its per-day average
	// edit distance against the baseline.
	PerLocation map[string][]float64
}

// ConsistencyOverTime reproduces Figure 8 for the given category (the
// paper plots local queries). The first location (by ID) at each
// granularity serves as the baseline.
func (d *Dataset) ConsistencyOverTime(category string) []ConsistencySeries {
	var out []ConsistencySeries
	for _, g := range d.orderedGranularities() {
		locs := d.locationsByGranularity[g]
		if len(locs) < 2 {
			continue
		}
		baseline := locs[0]
		series := ConsistencySeries{
			Granularity: g,
			Baseline:    baseline,
			Days:        append([]int{}, d.days...),
			PerLocation: map[string][]float64{},
		}
		for _, day := range d.days {
			var noise []float64
			perLoc := map[string][]float64{}
			for _, term := range d.termsByCategory[category] {
				base, ok := d.lookup(g, term, day, baseline)
				if !ok || base.treatment == nil {
					continue
				}
				if base.control != nil {
					noise = append(noise, float64(metrics.ComparePages(base.treatment, base.control).EditDistance))
				}
				for _, loc := range locs[1:] {
					p, ok := d.lookup(g, term, day, loc)
					if !ok || p.treatment == nil {
						continue
					}
					perLoc[loc] = append(perLoc[loc],
						float64(metrics.ComparePages(base.treatment, p.treatment).EditDistance))
				}
			}
			series.NoiseFloor = append(series.NoiseFloor, stats.Mean(noise))
			for _, loc := range locs[1:] {
				series.PerLocation[loc] = append(series.PerLocation[loc], stats.Mean(perLoc[loc]))
			}
		}
		out = append(out, series)
	}
	return out
}
