package analysis

import (
	"geoserp/internal/metrics"
	"geoserp/internal/stats"
)

// ReorderCell decomposes personalization into its two components for one
// (granularity, category) cell. Edit distance conflates replacement and
// reordering; the paper separates them informally ("18-34% of the search
// results vary ... 6-10 URLs are presented in a different order"), and
// this analysis separates them metrically:
//
//   - Composition: 1 - Jaccard — how much of the result *set* changes.
//   - Reordering:  1 - KendallTau over shared results — how shuffled the
//     surviving results are.
//   - RBO: a single top-weighted similarity (rank 1 matters most).
type ReorderCell struct {
	Granularity string
	Category    string
	Composition stats.Summary
	Reordering  stats.Summary
	RBO         stats.Summary
}

// ReorderingVsComposition computes the decomposition over all-pairs
// cross-location comparisons, using RBO persistence 0.9.
func (d *Dataset) ReorderingVsComposition() []ReorderCell {
	var out []ReorderCell
	for _, g := range d.orderedGranularities() {
		for _, cat := range d.orderedCategories() {
			var comp, reorder, rbo []float64
			locs := d.locationsByGranularity[g]
			for _, term := range d.termsByCategory[cat] {
				for _, day := range d.days {
					var links [][]string
					for _, loc := range locs {
						if p, ok := d.lookup(g, term, day, loc); ok && p.treatment != nil {
							links = append(links, p.treatment.Links())
						}
					}
					for i := 0; i < len(links); i++ {
						for j := i + 1; j < len(links); j++ {
							comp = append(comp, 1-metrics.Jaccard(links[i], links[j]))
							reorder = append(reorder, (1-metrics.KendallTau(links[i], links[j]))/2)
							rbo = append(rbo, metrics.RBO(links[i], links[j], 0.9))
						}
					}
				}
			}
			if len(comp) == 0 {
				continue
			}
			out = append(out, ReorderCell{
				Granularity: g,
				Category:    cat,
				Composition: stats.Summarize(comp),
				Reordering:  stats.Summarize(reorder),
				RBO:         stats.Summarize(rbo),
			})
		}
	}
	return out
}
