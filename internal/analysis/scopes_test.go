package analysis

import (
	"testing"

	"geoserp/internal/queries"
	"geoserp/internal/storage"
)

func TestPoliticianScopeBreakdown(t *testing.T) {
	corpus := queries.StudyCorpus()
	// Obama (national figure): identical everywhere. Tim Ryan (US
	// congress, Ohio, common name): differs across locations.
	var data []storage.Observation
	for _, loc := range []string{"s/1", "s/2"} {
		obamaPage := page("obama-1", "obama-2")
		data = append(data,
			obs("Barack Obama", "politician", "national", loc, storage.Treatment, 0, obamaPage),
			obs("Barack Obama", "politician", "national", loc, storage.Control, 0, obamaPage))
	}
	data = append(data,
		obs("Tim Ryan", "politician", "national", "s/1", storage.Treatment, 0, page("ryan-a", "ryan-b")),
		obs("Tim Ryan", "politician", "national", "s/1", storage.Control, 0, page("ryan-a", "ryan-b")),
		obs("Tim Ryan", "politician", "national", "s/2", storage.Treatment, 0, page("ryan-x", "ryan-y")),
		obs("Tim Ryan", "politician", "national", "s/2", storage.Control, 0, page("ryan-x", "ryan-y")))

	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	cells := d.PoliticianScopeBreakdown(corpus)
	byScope := map[string]ScopeCell{}
	for _, c := range cells {
		byScope[c.Scope] = c
	}
	nat, ok := byScope["national-figure"]
	if !ok {
		t.Fatalf("missing national-figure cell: %+v", cells)
	}
	if nat.Edit.Mean != 0 {
		t.Fatalf("national figure edit = %v, want 0", nat.Edit.Mean)
	}
	oh, ok := byScope["us-congress-ohio"]
	if !ok {
		t.Fatalf("missing us-congress-ohio cell: %+v", cells)
	}
	if oh.Edit.Mean != 2 {
		t.Fatalf("ohio congress edit = %v, want 2", oh.Edit.Mean)
	}
	// Scopes with no observed terms are absent.
	if _, ok := byScope["county-board"]; ok {
		t.Fatal("county-board cell present without data")
	}
}

func TestCommonNameAmbiguity(t *testing.T) {
	corpus := queries.StudyCorpus()
	var data []storage.Observation
	// Common name with big differences, regular name with none.
	data = append(data,
		obs("Bill Johnson", "politician", "state", "c/1", storage.Treatment, 0, page("bj-1", "bj-2")),
		obs("Bill Johnson", "politician", "state", "c/2", storage.Treatment, 0, page("bj-3", "bj-4")),
		obs("Sherrod Brown", "politician", "state", "c/1", storage.Treatment, 0, page("sb-1", "sb-2")),
		obs("Sherrod Brown", "politician", "state", "c/2", storage.Treatment, 0, page("sb-1", "sb-2")))
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	cells := d.CommonNameAmbiguity(corpus)
	if len(cells) != 1 {
		t.Fatalf("cells = %+v", cells)
	}
	c := cells[0]
	if c.CommonEdit != 2 || c.OtherEdit != 0 {
		t.Fatalf("common=%v other=%v", c.CommonEdit, c.OtherEdit)
	}
	if c.CommonN != 1 || c.OtherN != 1 {
		t.Fatalf("sample counts = %d/%d", c.CommonN, c.OtherN)
	}
}
