package analysis

import (
	"sort"

	"geoserp/internal/geo"
	"geoserp/internal/metrics"
	"geoserp/internal/serp"
	"geoserp/internal/stats"
)

// ValidationResult summarizes the §2.2 validation experiment: identical
// queries, one GPS coordinate, many vantage IPs.
type ValidationResult struct {
	// Terms is the number of distinct query terms compared.
	Terms int
	// Comparisons is the number of vantage-pair comparisons.
	Comparisons int
	// MeanResultOverlap is the average Jaccard index across vantage
	// pairs — the "94% of the search results ... are identical" number.
	MeanResultOverlap float64
	// FractionIdenticalPages is the stricter page-level criterion.
	FractionIdenticalPages float64
	// OverlapHistogram sketches the distribution of pairwise overlap.
	OverlapHistogram *stats.Histogram
}

// ValidateGPSOverIP evaluates the validation experiment's fetched pages
// (grouped by term, one page per vantage machine).
func ValidateGPSOverIP(pages map[string][]*serp.Page) ValidationResult {
	res := ValidationResult{OverlapHistogram: stats.NewHistogram(0, 1, 10)}
	var overlaps []float64
	identical := 0
	terms := make([]string, 0, len(pages))
	for t := range pages {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		ps := pages[t]
		if len(ps) < 2 {
			continue
		}
		res.Terms++
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				ov := metrics.Jaccard(ps[i].Links(), ps[j].Links())
				overlaps = append(overlaps, ov)
				res.OverlapHistogram.Add(ov)
				if metrics.Identical(ps[i], ps[j]) {
					identical++
				}
			}
		}
	}
	res.Comparisons = len(overlaps)
	if len(overlaps) > 0 {
		res.MeanResultOverlap = stats.Mean(overlaps)
		res.FractionIdenticalPages = float64(identical) / float64(len(overlaps))
	}
	return res
}

// FeatureCorrelation is one row of the demographics analysis (§3.2): the
// correlation between a demographic feature's pairwise |delta| and the
// pairwise search-result difference across county-level locations.
type FeatureCorrelation struct {
	Feature  string
	Pearson  float64
	Spearman float64
	N        int
}

// DemographicCorrelations reproduces the §3.2 demographics analysis: for
// every pair of county-level locations, correlate each demographic
// feature's absolute difference (plus physical distance) against the mean
// pairwise edit distance of their search results. The paper's finding — no
// feature explains the result clustering — shows up as uniformly small
// coefficients.
func (d *Dataset) DemographicCorrelations(locs *geo.Dataset, category string) []FeatureCorrelation {
	const g = "county"
	ids := d.locationsByGranularity[g]
	// Mean pairwise edit distance for each location pair.
	type locPair struct{ a, b string }
	sums := map[locPair]*stats.Accumulator{}
	for _, term := range d.termsByCategory[category] {
		for _, day := range d.days {
			for i := 0; i < len(ids); i++ {
				pa, ok := d.lookup(g, term, day, ids[i])
				if !ok || pa.treatment == nil {
					continue
				}
				for j := i + 1; j < len(ids); j++ {
					pb, ok := d.lookup(g, term, day, ids[j])
					if !ok || pb.treatment == nil {
						continue
					}
					key := locPair{ids[i], ids[j]}
					if sums[key] == nil {
						sums[key] = &stats.Accumulator{}
					}
					sums[key].Add(float64(metrics.ComparePages(pa.treatment, pb.treatment).EditDistance))
				}
			}
		}
	}

	// Assemble per-feature vectors across pairs.
	pairsSorted := make([]locPair, 0, len(sums))
	for k := range sums {
		pairsSorted = append(pairsSorted, k)
	}
	sort.Slice(pairsSorted, func(i, j int) bool {
		if pairsSorted[i].a != pairsSorted[j].a {
			return pairsSorted[i].a < pairsSorted[j].a
		}
		return pairsSorted[i].b < pairsSorted[j].b
	})

	features := append([]string{"distance_miles"}, geo.FeatureNames...)
	xs := map[string][]float64{}
	var ys []float64
	for _, lp := range pairsSorted {
		la, okA := locs.ByID(lp.a)
		lb, okB := locs.ByID(lp.b)
		if !okA || !okB {
			continue
		}
		ys = append(ys, sums[lp].Mean())
		xs["distance_miles"] = append(xs["distance_miles"], geo.DistanceMiles(la.Point, lb.Point))
		delta := la.Demographics.Delta(lb.Demographics)
		for _, f := range geo.FeatureNames {
			xs[f] = append(xs[f], delta[f])
		}
	}

	out := make([]FeatureCorrelation, 0, len(features))
	for _, f := range features {
		out = append(out, FeatureCorrelation{
			Feature:  f,
			Pearson:  stats.Pearson(xs[f], ys),
			Spearman: stats.Spearman(xs[f], ys),
			N:        len(ys),
		})
	}
	return out
}
