package analysis

import (
	"fmt"
	"sort"
	"time"

	"geoserp/internal/metrics"
	"geoserp/internal/serp"
	"geoserp/internal/stats"
	"geoserp/internal/storage"
	"geoserp/internal/telemetry"
)

// Stream is the one-pass, bounded-memory counterpart of Dataset: it folds
// completed lock-step sweeps into per-scope running aggregates as a
// campaign executes, instead of indexing every observation and comparing
// all pairs at the end. Memory is O(scopes), not O(observations) — the
// shape million-user continuous audits need (ROADMAP item 5).
//
// Parity with the batch path is exact where it matters: every scorecard
// claim reads only edit-distance means, and edit distances are small
// integers, so the stream keeps integer sums whose float64 means are
// bit-identical to the batch stats.Mean/stats.Summarize results. Jaccard
// statistics are folded through Welford accumulators (stats.Accumulator)
// and agree with the batch means only to floating-point accumulation
// order; they are display statistics, not scorecard inputs.
//
// One documented divergence: the Figure 8 consistency baseline. The batch
// dataset picks the lexicographically first location that succeeded at
// least once over the whole campaign; the stream must commit before the
// campaign ends, so it picks the lexicographically first location of the
// granularity's configured vantage set at its first sweep. The two differ
// only when that location fails every single sweep of the campaign.
//
// Stream is not internally synchronized: IngestSweep and the read methods
// must be externally serialized (the statz handler wraps it in a mutex;
// the crawler feeds it from the single scheduling goroutine).
type Stream struct {
	driftThreshold float64
	reg            *telemetry.Registry
	spans          *telemetry.SpanRecorder
	inst           *streamInstruments

	// Seen-value sets mirror NewDataset's: only successful observations
	// register, so the skip-failed rule carries over to the streamed
	// enumerations.
	granularities map[string]bool
	categories    map[string]bool
	days          map[int]bool
	terms         map[string]map[string]bool
	locs          map[string]map[string]bool

	sweeps       int
	observations int
	failed       int
	shed         int
	pairs        uint64

	noise     map[scopeKey]*editAgg
	pers      map[scopeKey]*editAgg
	persTerm  map[streamTermKey]*editAgg
	breakdown map[scopeKey]*breakdownAgg
	consNoise map[streamDayKey]*intAgg
	consLoc   map[streamLocDayKey]*intAgg
	// baseline fixes each granularity's Figure 8 reference location at
	// that granularity's first sweep.
	baseline map[string]string

	anchor map[scopeKey]float64
	drift  []DriftEvent
}

// scopeKey addresses one (granularity, category) aggregation cell.
type scopeKey struct {
	granularity string
	category    string
}

type streamTermKey struct {
	granularity string
	category    string
	term        string
}

type streamDayKey struct {
	granularity string
	category    string
	day         int
}

type streamLocDayKey struct {
	granularity string
	category    string
	day         int
	location    string
}

// editAgg folds one scope's pairwise comparisons: an exact integer
// edit-distance sum (the scorecard's input), Welford accumulators for the
// display statistics, and the rank-delta counters (how many pairs were
// identical, merely reordered, or content-changed).
type editAgg struct {
	n         int
	editSum   uint64
	edit      stats.Accumulator
	jaccard   stats.Accumulator
	identical uint64
	reordered uint64
	changed   uint64
}

func (a *editAgg) add(cmp metrics.Comparison) {
	a.n++
	a.editSum += uint64(cmp.EditDistance)
	a.edit.Add(float64(cmp.EditDistance))
	a.jaccard.Add(cmp.Jaccard)
	switch {
	case cmp.EditDistance == 0:
		a.identical++
	case cmp.Jaccard == 1:
		a.reordered++
	default:
		a.changed++
	}
}

// mean is the exact edit-distance mean: a float64 quotient of an integer
// sum, bit-identical to the batch path's sequential float sum of the same
// integer-valued samples.
func (a *editAgg) mean() float64 {
	if a == nil || a.n == 0 {
		return 0
	}
	return float64(a.editSum) / float64(a.n)
}

// editSummary renders the aggregate as a stats.Summary. Mean (and hence
// Median, which the online form approximates by the mean) is the exact
// integer-sum mean; StdDev comes from the Welford accumulator.
func (a *editAgg) editSummary() stats.Summary {
	s := a.edit.Summary()
	s.Mean = a.mean()
	s.Median = s.Mean
	return s
}

// breakdownAgg folds BreakdownPages results with integer sums, keeping
// the Figure 7 card-type means exact.
type breakdownAgg struct {
	n     int
	all   uint64
	maps  uint64
	news  uint64
	other uint64
}

// intAgg is an exact running mean over integer samples.
type intAgg struct {
	n   int
	sum uint64
}

func (a *intAgg) add(v int) {
	a.n++
	a.sum += uint64(v)
}

func (a *intAgg) mean() float64 {
	if a == nil || a.n == 0 {
		return 0
	}
	return float64(a.sum) / float64(a.n)
}

// DriftEvent records one sweep-over-sweep drift detection: a scope's
// running personalization mean moved beyond the configured threshold
// since its last anchor.
type DriftEvent struct {
	Granularity string `json:"granularity"`
	Category    string `json:"category"`
	// Sweep is the 0-based campaign sweep index that moved the mean.
	Sweep int `json:"sweep"`
	// At is the campaign-clock instant of the sweep's lock-step slot
	// (never wall time, and never the completion instant — the slot
	// schedule is absolute, so same-seed campaigns drift identically).
	At   time.Time `json:"at"`
	From float64   `json:"from"`
	To   float64   `json:"to"`
}

// StreamOption configures a Stream.
type StreamOption func(*Stream)

// WithDriftThreshold arms the drift tracker: after each sweep, any scope
// whose running personalization edit mean moved more than t away from its
// last anchor records a DriftEvent (plus a metric and a span). 0 disables
// tracking.
func WithDriftThreshold(t float64) StreamOption {
	return func(s *Stream) { s.driftThreshold = t }
}

// WithStreamTelemetry makes the stream report through reg (sweep, pair,
// and drift counters). A nil reg is ignored; a stream without one lazily
// creates its own private registry.
func WithStreamTelemetry(reg *telemetry.Registry) StreamOption {
	return func(s *Stream) {
		if reg != nil {
			s.reg = reg
		}
	}
}

// WithStreamSpans makes drift detections record a "stream.drift" span on
// rec. A nil rec is ignored (no spans).
func WithStreamSpans(rec *telemetry.SpanRecorder) StreamOption {
	return func(s *Stream) {
		if rec != nil {
			s.spans = rec
		}
	}
}

// NewStream builds an empty streaming aggregator.
func NewStream(opts ...StreamOption) *Stream {
	s := &Stream{
		granularities: map[string]bool{},
		categories:    map[string]bool{},
		days:          map[int]bool{},
		terms:         map[string]map[string]bool{},
		locs:          map[string]map[string]bool{},
		noise:         map[scopeKey]*editAgg{},
		pers:          map[scopeKey]*editAgg{},
		persTerm:      map[streamTermKey]*editAgg{},
		breakdown:     map[scopeKey]*breakdownAgg{},
		consNoise:     map[streamDayKey]*intAgg{},
		consLoc:       map[streamLocDayKey]*intAgg{},
		baseline:      map[string]string{},
		anchor:        map[scopeKey]float64{},
		drift:         []DriftEvent{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// streamInstruments are the stream's registered metrics.
type streamInstruments struct {
	sweeps  *telemetry.Counter    // stream_sweeps_ingested_total
	obs     *telemetry.Counter    // stream_observations_ingested_total
	failed  *telemetry.Counter    // stream_failed_observations_total
	pairs   *telemetry.Counter    // stream_pairs_compared_total
	driftEv *telemetry.CounterVec // stream_drift_events_total{scope}
}

func (s *Stream) instruments() *streamInstruments {
	if s.inst == nil {
		if s.reg == nil {
			s.reg = telemetry.NewRegistry()
		}
		s.inst = &streamInstruments{
			sweeps: s.reg.Counter("stream_sweeps_ingested_total", "Completed term sweeps folded into the streaming aggregator."),
			obs:    s.reg.Counter("stream_observations_ingested_total", "Observations folded into the streaming aggregator."),
			failed: s.reg.Counter("stream_failed_observations_total", "Failed observations skipped by the streaming aggregator."),
			pairs:  s.reg.Counter("stream_pairs_compared_total", "Cross-location page pairs compared by the streaming aggregator."),
			driftEv: s.reg.CounterVec("stream_drift_events_total",
				"Scope running means that moved beyond the drift threshold, by granularity/category scope.", "scope"),
		}
	}
	return s.inst
}

// IngestSweep folds one completed lock-step sweep — every vantage's
// treatment and control for a single (granularity, term, day) — into the
// running aggregates. at is the campaign-clock instant the sweep
// completed; it only stamps drift events.
//
// Observation order within the sweep does not matter: the fold
// canonicalizes to sorted-location order internally, so fetch-arrival
// nondeterminism cannot leak into the aggregates.
func (s *Stream) IngestSweep(at time.Time, obs []storage.Observation) error {
	if len(obs) == 0 {
		return fmt.Errorf("analysis: stream: empty sweep")
	}
	g, term, day, cat := obs[0].Granularity, obs[0].Term, obs[0].Day, obs[0].Category

	type slot struct {
		treatment *serp.Page
		control   *serp.Page
	}
	slots := map[string]*slot{}
	locSet := map[string]bool{}
	for i := range obs {
		o := &obs[i]
		if err := o.Validate(); err != nil {
			return fmt.Errorf("analysis: stream: sweep observation %d: %w", i, err)
		}
		if o.Granularity != g || o.Term != term || o.Day != day || o.Category != cat {
			return fmt.Errorf("analysis: stream: sweep mixes (%s %s %q day %d) with (%s %s %q day %d)",
				g, cat, term, day, o.Granularity, o.Category, o.Term, o.Day)
		}
		locSet[o.LocationID] = true
		if o.Failed {
			s.failed++
			if o.Shed {
				s.shed++
			}
			continue
		}
		sl := slots[o.LocationID]
		if sl == nil {
			sl = &slot{}
			slots[o.LocationID] = sl
		}
		switch o.Role {
		case storage.Treatment:
			if sl.treatment != nil {
				return fmt.Errorf("analysis: stream: duplicate treatment for %s %q day %d at %s", g, term, day, o.LocationID)
			}
			sl.treatment = o.Page
		case storage.Control:
			if sl.control != nil {
				return fmt.Errorf("analysis: stream: duplicate control for %s %q day %d at %s", g, term, day, o.LocationID)
			}
			sl.control = o.Page
		}
		s.granularities[g] = true
		s.categories[cat] = true
		s.days[day] = true
		if s.terms[cat] == nil {
			s.terms[cat] = map[string]bool{}
		}
		s.terms[cat][term] = true
		if s.locs[g] == nil {
			s.locs[g] = map[string]bool{}
		}
		s.locs[g][o.LocationID] = true
	}
	s.observations += len(obs)
	sweep := s.sweeps
	s.sweeps++

	// Commit the consistency baseline at the granularity's first sweep:
	// the lexicographically first configured vantage (failed observations
	// still name their location, so the full set is visible here).
	if _, ok := s.baseline[g]; !ok {
		s.baseline[g] = sortedKeys(locSet)[0]
	}
	bl := s.baseline[g]

	sk := scopeKey{g, cat}
	locs := sortedKeys(locSet)
	var withTreatment []string
	for _, loc := range locs {
		sl := slots[loc]
		if sl == nil {
			continue
		}
		if sl.treatment != nil {
			withTreatment = append(withTreatment, loc)
		}
		if sl.treatment != nil && sl.control != nil {
			cmp := metrics.ComparePages(sl.treatment, sl.control)
			getOrNew(s.noise, sk).add(cmp)
			if loc == bl {
				getOrNew(s.consNoise, streamDayKey{g, cat, day}).add(cmp.EditDistance)
			}
		}
	}
	tk := streamTermKey{g, cat, term}
	for i := 0; i < len(withTreatment); i++ {
		for j := i + 1; j < len(withTreatment); j++ {
			ti, tj := slots[withTreatment[i]].treatment, slots[withTreatment[j]].treatment
			cmp := metrics.ComparePages(ti, tj)
			bd := metrics.BreakdownPages(ti, tj)
			getOrNew(s.pers, sk).add(cmp)
			getOrNew(s.persTerm, tk).add(cmp)
			b := getOrNew(s.breakdown, sk)
			b.n++
			b.all += uint64(bd.All)
			b.maps += uint64(bd.Maps)
			b.news += uint64(bd.News)
			b.other += uint64(bd.Other)
			s.pairs++
			if withTreatment[i] == bl {
				getOrNew(s.consLoc, streamLocDayKey{g, cat, day, withTreatment[j]}).add(cmp.EditDistance)
			}
		}
	}

	s.trackDrift(sk, sweep, at)

	inst := s.instruments()
	inst.sweeps.Inc()
	inst.obs.Add(uint64(len(obs)))
	for i := range obs {
		if obs[i].Failed {
			inst.failed.Inc()
		}
	}
	inst.pairs.Add(uint64(len(withTreatment)) * uint64(len(withTreatment)-1) / 2)
	return nil
}

// getOrNew returns m[k], allocating a zero value on first touch.
func getOrNew[K comparable, V any](m map[K]*V, k K) *V {
	v := m[k]
	if v == nil {
		v = new(V)
		m[k] = v
	}
	return v
}

// trackDrift compares the touched scope's running personalization mean
// against its last anchor and records a drift event — list entry, metric,
// and span — when it moved beyond the threshold.
func (s *Stream) trackDrift(sk scopeKey, sweep int, at time.Time) {
	if s.driftThreshold <= 0 {
		return
	}
	a := s.pers[sk]
	if a == nil || a.n == 0 {
		return
	}
	m := a.mean()
	anchor, ok := s.anchor[sk]
	if !ok {
		s.anchor[sk] = m
		return
	}
	if diff := m - anchor; diff <= s.driftThreshold && -diff <= s.driftThreshold {
		return
	}
	s.anchor[sk] = m
	s.drift = append(s.drift, DriftEvent{
		Granularity: sk.granularity,
		Category:    sk.category,
		Sweep:       sweep,
		At:          at,
		From:        anchor,
		To:          m,
	})
	s.instruments().driftEv.With(sk.granularity + "/" + sk.category).Inc()
	if s.spans != nil {
		sp := s.spans.StartRoot(
			telemetry.MintTraceID(0, "stream", "drift", sk.granularity, sk.category, fmt.Sprint(sweep)),
			"stream.drift")
		sp.SetAttr("granularity", sk.granularity)
		sp.SetAttr("category", sk.category)
		sp.SetAttr("sweep", fmt.Sprint(sweep))
		sp.SetAttr("from", fmt.Sprintf("%.4f", anchor))
		sp.SetAttr("to", fmt.Sprintf("%.4f", m))
		sp.End()
	}
}

// Sweeps returns the number of sweeps ingested.
func (s *Stream) Sweeps() int { return s.sweeps }

// Observations returns the number of observations ingested, failed ones
// included.
func (s *Stream) Observations() int { return s.observations }

// Failed returns the number of failed observations skipped, mirroring
// Dataset.Failed.
func (s *Stream) Failed() int { return s.failed }

// Shed returns how many of the failed observations were server sheds.
func (s *Stream) Shed() int { return s.shed }

// PairsCompared returns the number of cross-location page pairs folded.
func (s *Stream) PairsCompared() uint64 { return s.pairs }

// Drift returns the recorded drift events, oldest first.
func (s *Stream) Drift() []DriftEvent {
	return append([]DriftEvent{}, s.drift...)
}

func (s *Stream) orderedGranularities() []string {
	return orderWith(GranularityOrder, sortedKeys(s.granularities))
}

func (s *Stream) orderedCategories() []string {
	return orderWith(CategoryOrder, sortedKeys(s.categories))
}

// NoiseByGranularity is the streaming Figure 2: one cell per (granularity,
// category) with at least one treatment/control pair. Edit means are exact;
// Jaccard statistics are Welford approximations.
func (s *Stream) NoiseByGranularity() []NoiseCell {
	var out []NoiseCell
	for _, g := range s.orderedGranularities() {
		for _, cat := range s.orderedCategories() {
			a := s.noise[scopeKey{g, cat}]
			if a == nil || a.n == 0 {
				continue
			}
			out = append(out, NoiseCell{
				Granularity: g,
				Category:    cat,
				Jaccard:     a.jaccard.Summary(),
				Edit:        a.editSummary(),
			})
		}
	}
	return out
}

// PersonalizationByGranularity is the streaming Figure 5, with the noise
// floors attached exactly as the batch path attaches them.
func (s *Stream) PersonalizationByGranularity() []PersonalizationCell {
	var out []PersonalizationCell
	for _, g := range s.orderedGranularities() {
		for _, cat := range s.orderedCategories() {
			sk := scopeKey{g, cat}
			a := s.pers[sk]
			if a == nil || a.n == 0 {
				continue
			}
			cell := PersonalizationCell{
				Granularity: g,
				Category:    cat,
				Jaccard:     a.jaccard.Summary(),
				Edit:        a.editSummary(),
			}
			if n := s.noise[sk]; n != nil && n.n > 0 {
				cell.NoiseJaccard = n.jaccard.Mean()
				cell.NoiseEdit = n.mean()
			}
			out = append(out, cell)
		}
	}
	return out
}

// PersonalizationPerTerm is the streaming Figure 6, sorted by the
// national-granularity values like the batch path.
func (s *Stream) PersonalizationPerTerm(category string) []TermSeries {
	var out []TermSeries
	for _, term := range sortedKeys(s.terms[category]) {
		ts := TermSeries{
			Term:                 term,
			EditByGranularity:    map[string]float64{},
			JaccardByGranularity: map[string]float64{},
		}
		for _, g := range s.orderedGranularities() {
			if a := s.persTerm[streamTermKey{g, category, term}]; a != nil && a.n > 0 {
				ts.EditByGranularity[g] = a.mean()
				ts.JaccardByGranularity[g] = a.jaccard.Mean()
			}
		}
		out = append(out, ts)
	}
	sortTermSeries(out, "national")
	return out
}

// PersonalizationByResultType is the streaming Figure 7; the card-type
// means are exact integer-sum means.
func (s *Stream) PersonalizationByResultType() []BreakdownCell {
	var out []BreakdownCell
	for _, cat := range s.orderedCategories() {
		for _, g := range s.orderedGranularities() {
			b := s.breakdown[scopeKey{g, cat}]
			if b == nil || b.n == 0 {
				continue
			}
			n := float64(b.n)
			out = append(out, BreakdownCell{
				Category:    cat,
				Granularity: g,
				All:         float64(b.all) / n,
				Maps:        float64(b.maps) / n,
				News:        float64(b.news) / n,
				Other:       float64(b.other) / n,
			})
		}
	}
	return out
}

// ConsistencyOverTime is the streaming Figure 8. The per-day sums were
// accumulated against the stream's committed baseline (see the type
// comment); the emitted Baseline is the batch-compatible first observed
// location, which coincides with it whenever the committed baseline
// succeeded at least once.
func (s *Stream) ConsistencyOverTime(category string) []ConsistencySeries {
	days := make([]int, 0, len(s.days))
	for d := range s.days {
		days = append(days, d)
	}
	sort.Ints(days)
	var out []ConsistencySeries
	for _, g := range s.orderedGranularities() {
		locs := sortedKeys(s.locs[g])
		if len(locs) < 2 {
			continue
		}
		series := ConsistencySeries{
			Granularity: g,
			Baseline:    locs[0],
			Days:        append([]int{}, days...),
			PerLocation: map[string][]float64{},
		}
		for _, day := range days {
			series.NoiseFloor = append(series.NoiseFloor, s.consNoise[streamDayKey{g, category, day}].mean())
			for _, loc := range locs[1:] {
				series.PerLocation[loc] = append(series.PerLocation[loc],
					s.consLoc[streamLocDayKey{g, category, day, loc}].mean())
			}
		}
		out = append(out, series)
	}
	return out
}

// Scorecard evaluates the paper's claims against the running aggregates.
// At campaign end it equals the batch Dataset.Scorecard exactly (the
// streaming/batch parity invariant, test-enforced).
func (s *Stream) Scorecard() []Check { return ScorecardFrom(s) }

// ScopeSummary is one row of the live scorecard's scope table: the
// running aggregates for a (granularity, category) cell.
type ScopeSummary struct {
	Granularity string `json:"granularity"`
	Category    string `json:"category"`
	// Noise statistics (treatment vs simultaneous control).
	NoisePairs       int     `json:"noise_pairs"`
	NoiseEditMean    float64 `json:"noise_edit_mean"`
	NoiseJaccardMean float64 `json:"noise_jaccard_mean"`
	// Personalization statistics (cross-location treatment pairs).
	PersonalizationPairs       int     `json:"personalization_pairs"`
	PersonalizationEditMean    float64 `json:"personalization_edit_mean"`
	PersonalizationEditStdDev  float64 `json:"personalization_edit_stddev"`
	PersonalizationJaccardMean float64 `json:"personalization_jaccard_mean"`
	// Rank-delta counters over the personalization pairs.
	IdenticalPairs      uint64 `json:"identical_pairs"`
	ReorderedPairs      uint64 `json:"reordered_pairs"`
	ContentChangedPairs uint64 `json:"content_changed_pairs"`
}

// StreamSnapshot is the stream's full serializable state summary — the
// "stream" block of a /statz snapshot.
type StreamSnapshot struct {
	Sweeps        int            `json:"sweeps"`
	Observations  int            `json:"observations"`
	Failed        int            `json:"failed"`
	Shed          int            `json:"shed"`
	PairsCompared uint64         `json:"pairs_compared"`
	Scorecard     []Check        `json:"scorecard"`
	Scopes        []ScopeSummary `json:"scopes"`
	Drift         []DriftEvent   `json:"drift"`
}

// Snapshot summarizes the stream's current state. The output is a pure
// function of the ingested sweeps, so same-seed campaigns snapshot
// byte-identically at equivalent virtual times.
func (s *Stream) Snapshot() StreamSnapshot {
	snap := StreamSnapshot{
		Sweeps:        s.sweeps,
		Observations:  s.observations,
		Failed:        s.failed,
		Shed:          s.shed,
		PairsCompared: s.pairs,
		Scorecard:     s.Scorecard(),
		Scopes:        []ScopeSummary{},
		Drift:         s.Drift(),
	}
	if snap.Scorecard == nil {
		snap.Scorecard = []Check{}
	}
	for _, g := range s.orderedGranularities() {
		for _, cat := range s.orderedCategories() {
			sk := scopeKey{g, cat}
			n, p := s.noise[sk], s.pers[sk]
			if (n == nil || n.n == 0) && (p == nil || p.n == 0) {
				continue
			}
			row := ScopeSummary{Granularity: g, Category: cat}
			if n != nil && n.n > 0 {
				row.NoisePairs = n.n
				row.NoiseEditMean = n.mean()
				row.NoiseJaccardMean = n.jaccard.Mean()
			}
			if p != nil && p.n > 0 {
				row.PersonalizationPairs = p.n
				row.PersonalizationEditMean = p.mean()
				row.PersonalizationEditStdDev = p.edit.StdDev()
				row.PersonalizationJaccardMean = p.jaccard.Mean()
				row.IdenticalPairs = p.identical
				row.ReorderedPairs = p.reordered
				row.ContentChangedPairs = p.changed
			}
			snap.Scopes = append(snap.Scopes, row)
		}
	}
	return snap
}
