package analysis

import (
	"sort"

	"geoserp/internal/metrics"
	"geoserp/internal/stats"
)

// The paper observes (§3.2, Figure 8a) that at county granularity "some
// locations cluster at the county-level, indicating that some locations
// receive similar search results to the baseline", and then tries — and
// fails — to explain the clusters with demographics. This file implements
// that clustering analysis: a similarity matrix over locations and a
// simple average-linkage agglomerative clustering over it.

// SimilarityMatrix is the mean pairwise edit distance between locations'
// result pages at one granularity (lower = more similar).
type SimilarityMatrix struct {
	Granularity string
	Locations   []string
	// Dist[i][j] is the mean edit distance between Locations[i] and
	// Locations[j]; the diagonal is zero.
	Dist [][]float64
}

// LocationSimilarity computes the similarity matrix for one granularity
// and category over all terms and days.
func (d *Dataset) LocationSimilarity(granularity, category string) SimilarityMatrix {
	locs := d.locationsByGranularity[granularity]
	m := SimilarityMatrix{
		Granularity: granularity,
		Locations:   append([]string{}, locs...),
		Dist:        make([][]float64, len(locs)),
	}
	accs := make([][]*stats.Accumulator, len(locs))
	for i := range accs {
		m.Dist[i] = make([]float64, len(locs))
		accs[i] = make([]*stats.Accumulator, len(locs))
		for j := range accs[i] {
			accs[i][j] = &stats.Accumulator{}
		}
	}
	for _, term := range d.termsByCategory[category] {
		for _, day := range d.days {
			for i := 0; i < len(locs); i++ {
				pa, ok := d.lookup(granularity, term, day, locs[i])
				if !ok || pa.treatment == nil {
					continue
				}
				for j := i + 1; j < len(locs); j++ {
					pb, ok := d.lookup(granularity, term, day, locs[j])
					if !ok || pb.treatment == nil {
						continue
					}
					e := float64(metrics.ComparePages(pa.treatment, pb.treatment).EditDistance)
					accs[i][j].Add(e)
				}
			}
		}
	}
	for i := range locs {
		for j := i + 1; j < len(locs); j++ {
			v := accs[i][j].Mean()
			m.Dist[i][j] = v
			m.Dist[j][i] = v
		}
	}
	return m
}

// Cluster is one group of locations whose result pages are mutually
// similar.
type Cluster struct {
	Locations []string
	// MeanIntraDist is the average pairwise distance within the cluster.
	MeanIntraDist float64
}

// Clusters runs average-linkage agglomerative clustering on the matrix,
// merging until no pair of clusters is closer than threshold. A threshold
// around the noise floor groups locations whose differences are
// indistinguishable from noise — the paper's "clustering" observation.
func (m SimilarityMatrix) Clusters(threshold float64) []Cluster {
	n := len(m.Locations)
	if n == 0 {
		return nil
	}
	// members[c] lists location indices of cluster c; nil = merged away.
	members := make([][]int, n)
	for i := range members {
		members[i] = []int{i}
	}
	// linkage returns the average inter-cluster distance.
	linkage := func(a, b []int) float64 {
		var sum float64
		var cnt int
		for _, i := range a {
			for _, j := range b {
				sum += m.Dist[i][j]
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	for {
		bestA, bestB := -1, -1
		bestD := threshold
		for a := 0; a < n; a++ {
			if members[a] == nil {
				continue
			}
			for b := a + 1; b < n; b++ {
				if members[b] == nil {
					continue
				}
				if d := linkage(members[a], members[b]); d <= bestD {
					bestA, bestB, bestD = a, b, d
				}
			}
		}
		if bestA < 0 {
			break
		}
		members[bestA] = append(members[bestA], members[bestB]...)
		members[bestB] = nil
	}

	var out []Cluster
	for _, ms := range members {
		if ms == nil {
			continue
		}
		sort.Ints(ms)
		c := Cluster{}
		for _, i := range ms {
			c.Locations = append(c.Locations, m.Locations[i])
		}
		var sum float64
		var cnt int
		for x := 0; x < len(ms); x++ {
			for y := x + 1; y < len(ms); y++ {
				sum += m.Dist[ms[x]][ms[y]]
				cnt++
			}
		}
		if cnt > 0 {
			c.MeanIntraDist = sum / float64(cnt)
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Locations) != len(out[j].Locations) {
			return len(out[i].Locations) > len(out[j].Locations)
		}
		return out[i].Locations[0] < out[j].Locations[0]
	})
	return out
}
