package analysis

import (
	"testing"

	"geoserp/internal/storage"
)

func clusterFixture(t *testing.T) *Dataset {
	t.Helper()
	// Locations a,b share identical pages; c,d share identical pages;
	// the two groups are disjoint.
	groupOne := page("x", "y", "z")
	groupTwo := page("p", "q", "r")
	var data []storage.Observation
	for _, loc := range []string{"d/a", "d/b"} {
		data = append(data,
			obs("Coffee", "local", "county", loc, storage.Treatment, 0, groupOne),
			obs("Coffee", "local", "county", loc, storage.Control, 0, groupOne))
	}
	for _, loc := range []string{"d/c", "d/d"} {
		data = append(data,
			obs("Coffee", "local", "county", loc, storage.Treatment, 0, groupTwo),
			obs("Coffee", "local", "county", loc, storage.Control, 0, groupTwo))
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLocationSimilarityMatrix(t *testing.T) {
	d := clusterFixture(t)
	m := d.LocationSimilarity("county", "local")
	if len(m.Locations) != 4 {
		t.Fatalf("locations = %v", m.Locations)
	}
	idx := map[string]int{}
	for i, l := range m.Locations {
		idx[l] = i
	}
	if got := m.Dist[idx["d/a"]][idx["d/b"]]; got != 0 {
		t.Fatalf("intra-group distance = %v, want 0", got)
	}
	if got := m.Dist[idx["d/a"]][idx["d/c"]]; got != 3 {
		t.Fatalf("inter-group distance = %v, want 3", got)
	}
	// Symmetry and zero diagonal.
	for i := range m.Dist {
		if m.Dist[i][i] != 0 {
			t.Fatal("nonzero diagonal")
		}
		for j := range m.Dist {
			if m.Dist[i][j] != m.Dist[j][i] {
				t.Fatal("asymmetric matrix")
			}
		}
	}
}

func TestClustersGroupIdenticalLocations(t *testing.T) {
	d := clusterFixture(t)
	m := d.LocationSimilarity("county", "local")
	clusters := m.Clusters(1.0)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %+v", clusters)
	}
	for _, c := range clusters {
		if len(c.Locations) != 2 {
			t.Fatalf("cluster sizes wrong: %+v", clusters)
		}
		if c.MeanIntraDist != 0 {
			t.Fatalf("intra dist = %v", c.MeanIntraDist)
		}
	}
	// A huge threshold merges everything.
	all := m.Clusters(100)
	if len(all) != 1 || len(all[0].Locations) != 4 {
		t.Fatalf("threshold=100 clusters = %+v", all)
	}
	// A negative threshold merges nothing beyond the zero-distance pairs.
	none := m.Clusters(0)
	if len(none) != 2 {
		t.Fatalf("threshold=0 clusters = %+v", none)
	}
}

func TestClustersEmptyMatrix(t *testing.T) {
	m := SimilarityMatrix{}
	if got := m.Clusters(1); got != nil {
		t.Fatalf("empty clusters = %+v", got)
	}
}
