package analysis

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"geoserp/internal/serp"
	"geoserp/internal/storage"
	"geoserp/internal/telemetry"
)

// sweepAt is the campaign-clock stamp for synthetic sweeps; the exact
// value is irrelevant to the aggregates (it only stamps drift events).
func sweepAt(i int) time.Time {
	return time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Hour)
}

// ingestAll groups a batch-shaped observation list into lock-step sweeps
// — one (granularity, term, day) at a time, in deterministic order — and
// feeds them to the stream, mimicking how the crawler's sink sees a
// campaign.
func ingestAll(t *testing.T, s *Stream, data []storage.Observation) {
	t.Helper()
	type key struct {
		g    string
		term string
		day  int
	}
	var order []key
	sweeps := map[key][]storage.Observation{}
	for _, o := range data {
		k := key{o.Granularity, o.Term, o.Day}
		if _, ok := sweeps[k]; !ok {
			order = append(order, k)
		}
		sweeps[k] = append(sweeps[k], o)
	}
	for i, k := range order {
		if err := s.IngestSweep(sweepAt(i), sweeps[k]); err != nil {
			t.Fatalf("IngestSweep %v: %v", k, err)
		}
	}
}

// campaignFixture synthesizes a deterministic multi-granularity,
// multi-category, multi-day campaign with enough structure to exercise
// every figure: varying pages per (term, location, day), maps cards on
// local terms, and a sprinkling of failed observations when withFailures
// is set. No randomness — page contents are index arithmetic.
func campaignFixture(withFailures bool) []storage.Observation {
	pool := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	var out []storage.Observation
	cats := []struct {
		name  string
		terms []string
	}{
		{"local", []string{"Coffee", "Dentist", "Library", "Pizza"}},
		{"controversial", []string{"Abortion", "Guns", "Taxes", "Vaccines"}},
	}
	grans := []struct {
		name string
		locs []string
	}{
		{"county", []string{"c/1", "c/2", "c/3"}},
		{"state", []string{"s/1", "s/2", "s/3"}},
		{"national", []string{"n/1", "n/2", "n/3"}},
	}
	idx := 0
	for _, g := range grans {
		for day := 0; day < 2; day++ {
			for ci, cat := range cats {
				for ti, term := range cat.terms {
					for li, loc := range g.locs {
						// A stable page per (granularity, category, term,
						// location, day): rotate through the link pool so
						// nearby vantages overlap but differ.
						start := (ci*7 + ti*3 + li*2 + day) % len(pool)
						links := []string{pool[start], pool[(start+1)%len(pool)], pool[(start+2)%len(pool)]}
						var pg *serp.Page
						if cat.name == "local" && li%2 == 1 {
							pg = mapsPage([]string{"m-" + loc}, links...)
						} else {
							pg = page(links...)
						}
						for _, role := range []storage.Role{storage.Treatment, storage.Control} {
							o := obs(term, cat.name, g.name, loc, role, day, pg)
							idx++
							if withFailures && idx%13 == 0 {
								o.Page = nil
								o.Failed = true
								o.Err = "browser: fetch: synthetic fault"
							}
							out = append(out, o)
						}
					}
				}
			}
		}
	}
	return out
}

// assertStreamBatchParity checks the tentpole invariant: the streaming
// scorecard — and every exact edit-distance mean feeding it — equals the
// batch pipeline's output on the same observations.
func assertStreamBatchParity(t *testing.T, d *Dataset, s *Stream) {
	t.Helper()
	batch, live := d.Scorecard(), s.Scorecard()
	if !reflect.DeepEqual(batch, live) {
		t.Fatalf("scorecard parity broken:\nbatch: %+v\nstream: %+v", batch, live)
	}
	if len(batch) == 0 {
		t.Fatal("scorecard is empty — the fixture exercised no claims")
	}

	bn, sn := d.NoiseByGranularity(), s.NoiseByGranularity()
	if len(bn) != len(sn) {
		t.Fatalf("noise cells: batch %d vs stream %d", len(bn), len(sn))
	}
	for i := range bn {
		if bn[i].Granularity != sn[i].Granularity || bn[i].Category != sn[i].Category {
			t.Fatalf("noise cell %d: batch (%s,%s) vs stream (%s,%s)",
				i, bn[i].Granularity, bn[i].Category, sn[i].Granularity, sn[i].Category)
		}
		if bn[i].Edit.Mean != sn[i].Edit.Mean {
			t.Fatalf("noise %s/%s edit mean: batch %v vs stream %v (must be bit-identical)",
				bn[i].Granularity, bn[i].Category, bn[i].Edit.Mean, sn[i].Edit.Mean)
		}
	}
	bp, sp := d.PersonalizationByGranularity(), s.PersonalizationByGranularity()
	if len(bp) != len(sp) {
		t.Fatalf("personalization cells: batch %d vs stream %d", len(bp), len(sp))
	}
	for i := range bp {
		if bp[i].Edit.Mean != sp[i].Edit.Mean || bp[i].NoiseEdit != sp[i].NoiseEdit {
			t.Fatalf("personalization %s/%s: batch mean %v floor %v vs stream mean %v floor %v",
				bp[i].Granularity, bp[i].Category,
				bp[i].Edit.Mean, bp[i].NoiseEdit, sp[i].Edit.Mean, sp[i].NoiseEdit)
		}
	}
	for _, cat := range []string{"local", "controversial"} {
		bt, st := d.PersonalizationPerTerm(cat), s.PersonalizationPerTerm(cat)
		if len(bt) != len(st) {
			t.Fatalf("per-term %s: batch %d vs stream %d", cat, len(bt), len(st))
		}
		for i := range bt {
			if bt[i].Term != st[i].Term || !reflect.DeepEqual(bt[i].EditByGranularity, st[i].EditByGranularity) {
				t.Fatalf("per-term %s[%d]: batch %q %v vs stream %q %v",
					cat, i, bt[i].Term, bt[i].EditByGranularity, st[i].Term, st[i].EditByGranularity)
			}
		}
	}
	bb, sb := d.PersonalizationByResultType(), s.PersonalizationByResultType()
	if !reflect.DeepEqual(bb, sb) {
		t.Fatalf("result-type breakdown: batch %+v vs stream %+v", bb, sb)
	}
	for _, cat := range []string{"local", "controversial"} {
		bc, sc := d.ConsistencyOverTime(cat), s.ConsistencyOverTime(cat)
		if !reflect.DeepEqual(bc, sc) {
			t.Fatalf("consistency %s: batch %+v vs stream %+v", cat, bc, sc)
		}
	}
}

func TestStreamMatchesBatchOnCampaignFixture(t *testing.T) {
	data := campaignFixture(false)
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream()
	ingestAll(t, s, data)
	assertStreamBatchParity(t, d, s)
	if s.Failed() != 0 || s.Shed() != 0 {
		t.Fatalf("failed/shed = %d/%d, want 0/0", s.Failed(), s.Shed())
	}
	if s.Observations() != len(data) {
		t.Fatalf("observations = %d, want %d", s.Observations(), len(data))
	}
}

func TestStreamMatchesBatchWithFailedObservations(t *testing.T) {
	data := campaignFixture(true)
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream()
	ingestAll(t, s, data)
	if s.Failed() == 0 {
		t.Fatal("fixture injected no failures — the skip-failed rule went untested")
	}
	if s.Failed() != d.Failed() {
		t.Fatalf("failed: stream %d vs batch %d", s.Failed(), d.Failed())
	}
	assertStreamBatchParity(t, d, s)
}

func TestStreamOrderInsensitiveWithinSweep(t *testing.T) {
	data := campaignFixture(false)
	a, b := NewStream(), NewStream()
	ingestAll(t, a, data)
	// Same sweeps, observations reversed within each — models
	// fetch-arrival nondeterminism inside a lock-step round.
	type key struct {
		g    string
		term string
		day  int
	}
	var order []key
	sweeps := map[key][]storage.Observation{}
	for _, o := range data {
		k := key{o.Granularity, o.Term, o.Day}
		if _, ok := sweeps[k]; !ok {
			order = append(order, k)
		}
		sweeps[k] = append(sweeps[k], o)
	}
	for i, k := range order {
		sw := sweeps[k]
		rev := make([]storage.Observation, len(sw))
		for j := range sw {
			rev[len(sw)-1-j] = sw[j]
		}
		if err := b.IngestSweep(sweepAt(i), rev); err != nil {
			t.Fatal(err)
		}
	}
	aj, _ := json.Marshal(a.Snapshot())
	bj, _ := json.Marshal(b.Snapshot())
	if string(aj) != string(bj) {
		t.Fatalf("snapshot depends on in-sweep observation order:\n%s\nvs\n%s", aj, bj)
	}
}

func TestStreamSnapshotByteDeterminism(t *testing.T) {
	data := campaignFixture(true)
	a, b := NewStream(WithDriftThreshold(0.5)), NewStream(WithDriftThreshold(0.5))
	ingestAll(t, a, data)
	ingestAll(t, b, data)
	aj, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("same ingestion produced different snapshot bytes")
	}
}

func TestStreamEmptySnapshotHasNonNilSlices(t *testing.T) {
	data, err := json.Marshal(NewStream().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"scorecard", "scopes", "drift"} {
		if _, ok := m[field].([]any); !ok {
			t.Fatalf("%s = %v, want JSON array (never null)", field, m[field])
		}
	}
}

func TestStreamIngestRejectsMalformedSweeps(t *testing.T) {
	s := NewStream()
	if err := s.IngestSweep(sweepAt(0), nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	mixed := []storage.Observation{
		obs("Coffee", "local", "county", "c/1", storage.Treatment, 0, page("a")),
		obs("Tea", "local", "county", "c/1", storage.Treatment, 0, page("a")),
	}
	if err := s.IngestSweep(sweepAt(0), mixed); err == nil {
		t.Fatal("mixed-term sweep accepted")
	}
	dup := []storage.Observation{
		obs("Coffee", "local", "county", "c/1", storage.Treatment, 0, page("a")),
		obs("Coffee", "local", "county", "c/1", storage.Treatment, 0, page("b")),
	}
	if err := s.IngestSweep(sweepAt(0), dup); err == nil {
		t.Fatal("duplicate treatment accepted")
	}
	bad := obs("Coffee", "local", "county", "c/1", storage.Treatment, 0, page("a"))
	bad.Page = nil
	if err := s.IngestSweep(sweepAt(0), []storage.Observation{bad}); err == nil {
		t.Fatal("invalid observation accepted")
	}
	if s.Sweeps() != 0 {
		t.Fatalf("rejected sweeps still counted: %d", s.Sweeps())
	}
}

func TestStreamDriftTracking(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanRecorder(64, fakeClock{})
	s := NewStream(WithDriftThreshold(1.0), WithStreamTelemetry(reg), WithStreamSpans(spans))

	sweep := func(i int, links ...string) []storage.Observation {
		p1 := page(links...)
		p2 := page("z1", "z2", "z3") // the far vantage never changes
		return []storage.Observation{
			obs("Coffee", "local", "county", "c/1", storage.Treatment, i, p1),
			obs("Coffee", "local", "county", "c/1", storage.Control, i, p1),
			obs("Coffee", "local", "county", "c/2", storage.Treatment, i, p2),
			obs("Coffee", "local", "county", "c/2", storage.Control, i, p2),
		}
	}
	// Sweep 0 anchors the scope (identical treatments: mean 0, no event).
	if err := s.IngestSweep(sweepAt(0), sweep(0, "z1", "z2", "z3")); err != nil {
		t.Fatal(err)
	}
	if len(s.Drift()) != 0 {
		t.Fatalf("first sweep produced a drift event: %+v", s.Drift())
	}
	// Sweep 1 swings the running mean far past the threshold.
	if err := s.IngestSweep(sweepAt(1), sweep(1, "q1", "q2", "q3")); err != nil {
		t.Fatal(err)
	}
	events := s.Drift()
	if len(events) != 1 {
		t.Fatalf("drift events = %d, want 1: %+v", len(events), events)
	}
	ev := events[0]
	if ev.Granularity != "county" || ev.Category != "local" || ev.Sweep != 1 {
		t.Fatalf("event = %+v", ev)
	}
	if !ev.At.Equal(sweepAt(1)) {
		t.Fatalf("event stamped %v, want campaign-clock %v", ev.At, sweepAt(1))
	}
	if ev.To <= ev.From {
		t.Fatalf("event did not move up: %+v", ev)
	}
	if got := reg.CounterVec("stream_drift_events_total", "", "scope").Values()["county/local"]; got != 1 {
		t.Fatalf("drift metric = %d, want 1", got)
	}
	found := false
	for _, v := range telemetry.TracezSnapshot(spans, 0) {
		for _, sp := range v.Spans {
			if sp.Name == "stream.drift" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no stream.drift span recorded")
	}
}

// fakeClock satisfies the span recorder's clock with a fixed instant;
// drift spans only need a stamp, not progression.
type fakeClock struct{}

func (fakeClock) Now() time.Time      { return sweepAt(0) }
func (fakeClock) Sleep(time.Duration) {}
func (fakeClock) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- sweepAt(0)
	return ch
}

// TestStreamScorecardSourceCoverage pins the interface: both pipelines
// must keep satisfying ScorecardSource, or the parity invariant silently
// loses its meaning.
var (
	_ ScorecardSource = (*Dataset)(nil)
	_ ScorecardSource = (*Stream)(nil)
)

func TestStreamIncrementalScorecardIsWellFormed(t *testing.T) {
	// Mid-campaign snapshots must be valid (fewer claims, never garbage):
	// ingest the fixture sweep by sweep and scorecard after each.
	data := campaignFixture(false)
	s := NewStream()
	type key struct {
		g    string
		term string
		day  int
	}
	var order []key
	sweeps := map[key][]storage.Observation{}
	for _, o := range data {
		k := key{o.Granularity, o.Term, o.Day}
		if _, ok := sweeps[k]; !ok {
			order = append(order, k)
		}
		sweeps[k] = append(sweeps[k], o)
	}
	prevClaims := 0
	for i, k := range order {
		if err := s.IngestSweep(sweepAt(i), sweeps[k]); err != nil {
			t.Fatal(err)
		}
		checks := s.Scorecard()
		for _, c := range checks {
			if c.Claim == "" || c.Detail == "" {
				t.Fatalf("sweep %d: malformed check %+v", i, c)
			}
		}
		if len(checks) < prevClaims {
			// Claims only accumulate as scopes fill in; they never vanish.
			t.Fatalf("sweep %d: claims shrank from %d to %d", i, prevClaims, len(checks))
		}
		prevClaims = len(checks)
	}
	if prevClaims == 0 {
		t.Fatal("campaign fixture never produced a scorecard claim")
	}
}

func TestStreamMetricsCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewStream(WithStreamTelemetry(reg))
	data := campaignFixture(true)
	ingestAll(t, s, data)
	if got := reg.Counter("stream_sweeps_ingested_total", "").Value(); got != uint64(s.Sweeps()) {
		t.Fatalf("sweep counter = %d, want %d", got, s.Sweeps())
	}
	if got := reg.Counter("stream_observations_ingested_total", "").Value(); got != uint64(s.Observations()) {
		t.Fatalf("obs counter = %d, want %d", got, s.Observations())
	}
	if got := reg.Counter("stream_failed_observations_total", "").Value(); got != uint64(s.Failed()) {
		t.Fatalf("failed counter = %d, want %d", got, s.Failed())
	}
	if got := reg.Counter("stream_pairs_compared_total", "").Value(); got != s.PairsCompared() {
		t.Fatalf("pairs counter = %d, want %d", got, s.PairsCompared())
	}
}

func TestStreamBaselineDivergenceDocumentedCase(t *testing.T) {
	// The one documented streaming/batch divergence: the consistency
	// baseline location fails every sweep of the campaign. The stream
	// committed to it up front (it is configured), the batch path skips
	// it (it never succeeded). Everything else still agrees.
	mk := func(loc string, role storage.Role, day int, fail bool, links ...string) storage.Observation {
		o := obs("Coffee", "local", "county", loc, role, day, page(links...))
		if fail {
			o.Page = nil
			o.Failed = true
			o.Err = "browser: fetch: down all campaign"
		}
		return o
	}
	var data []storage.Observation
	for day := 0; day < 2; day++ {
		data = append(data,
			mk("c/1", storage.Treatment, day, true),
			mk("c/1", storage.Control, day, true),
			mk("c/2", storage.Treatment, day, false, "a", "b"),
			mk("c/2", storage.Control, day, false, "a", "b"),
			mk("c/3", storage.Treatment, day, false, "a", "c"),
			mk("c/3", storage.Control, day, false, "a", "c"),
		)
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream()
	ingestAll(t, s, data)
	bc, sc := d.ConsistencyOverTime("local"), s.ConsistencyOverTime("local")
	if len(bc) != 1 || len(sc) != 1 {
		t.Fatalf("series: batch %d stream %d", len(bc), len(sc))
	}
	// Both report the same Baseline label (first successful location)...
	if bc[0].Baseline != sc[0].Baseline {
		t.Fatalf("baseline label: batch %q vs stream %q", bc[0].Baseline, sc[0].Baseline)
	}
	// ...but the stream anchored its sums on the dead configured vantage,
	// so its noise floor is empty-mean zero while batch measured c/2.
	if fmt.Sprint(bc[0].NoiseFloor) == fmt.Sprint(sc[0].NoiseFloor) {
		t.Log("note: baselines happened to coincide; divergence not exercised")
	}
	// The scorecard itself is still immune: its consistency claim reads
	// per-location spreads, which exist either way.
	if !reflect.DeepEqual(d.Scorecard(), s.Scorecard()) {
		t.Fatal("scorecard diverged on the documented baseline edge case")
	}
}
