package analysis

import (
	"math"
	"testing"
	"time"

	"geoserp/internal/serp"
	"geoserp/internal/storage"
)

// page builds a tiny organic-only page from link names.
func page(links ...string) *serp.Page {
	p := &serp.Page{Query: "q", Location: "0.000000,0.000000"}
	for _, l := range links {
		p.Cards = append(p.Cards, serp.Card{
			Type:    serp.Organic,
			Results: []serp.Result{{URL: l, Title: l}},
		})
	}
	return p
}

// mapsPage builds a page with one maps card followed by organic links.
func mapsPage(mapsLinks []string, organic ...string) *serp.Page {
	p := &serp.Page{Query: "q", Location: "0.000000,0.000000"}
	card := serp.Card{Type: serp.Maps}
	for _, l := range mapsLinks {
		card.Results = append(card.Results, serp.Result{URL: l, Title: l})
	}
	p.Cards = append(p.Cards, card)
	for _, l := range organic {
		p.Cards = append(p.Cards, serp.Card{
			Type:    serp.Organic,
			Results: []serp.Result{{URL: l, Title: l}},
		})
	}
	return p
}

func obs(term, cat, g, loc string, role storage.Role, day int, p *serp.Page) storage.Observation {
	cp := *p
	cp.Query = term
	return storage.Observation{
		Term:        term,
		Category:    cat,
		Granularity: g,
		LocationID:  loc,
		Role:        role,
		Day:         day,
		MachineIP:   "10.0.0.1",
		FetchedAt:   time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(day) * 24 * time.Hour),
		Page:        &cp,
	}
}

func approx(t *testing.T, got, want, eps float64, name string) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestNewDatasetIndexing(t *testing.T) {
	data := []storage.Observation{
		obs("Coffee", "local", "county", "d/1", storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "county", "d/1", storage.Control, 0, page("a", "b")),
		obs("Coffee", "local", "county", "d/2", storage.Treatment, 0, page("a", "c")),
		obs("Health", "controversial", "county", "d/1", storage.Treatment, 0, page("x")),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Pairs() != 3 {
		t.Fatalf("pairs = %d, want 3", d.Pairs())
	}
	if got := d.Terms("local"); len(got) != 1 || got[0] != "Coffee" {
		t.Fatalf("local terms = %v", got)
	}
	if got := d.Locations("county"); len(got) != 2 {
		t.Fatalf("county locations = %v", got)
	}
	if got := d.Categories(); len(got) != 2 {
		t.Fatalf("categories = %v", got)
	}
	if got := d.Days(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("days = %v", got)
	}
}

func TestNewDatasetRejectsDuplicates(t *testing.T) {
	data := []storage.Observation{
		obs("Coffee", "local", "county", "d/1", storage.Treatment, 0, page("a")),
		obs("Coffee", "local", "county", "d/1", storage.Treatment, 0, page("b")),
	}
	if _, err := NewDataset(data); err == nil {
		t.Fatal("duplicate treatment accepted")
	}
	data = []storage.Observation{
		obs("Coffee", "local", "county", "d/1", storage.Control, 0, page("a")),
		obs("Coffee", "local", "county", "d/1", storage.Control, 0, page("b")),
	}
	if _, err := NewDataset(data); err == nil {
		t.Fatal("duplicate control accepted")
	}
}

func TestNewDatasetSkipsFailedObservations(t *testing.T) {
	failed := obs("Coffee", "local", "county", "d/2", storage.Control, 0, page("a"))
	failed.Page = nil
	failed.Failed = true
	failed.Err = "browser: fetch: connection reset"
	data := []storage.Observation{
		obs("Coffee", "local", "county", "d/1", storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "county", "d/1", storage.Control, 0, page("a", "b")),
		failed,
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Pairs() != 1 {
		t.Fatalf("pairs = %d, want 1 (failed slot must not be indexed)", d.Pairs())
	}
	if d.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", d.Failed())
	}
	if got := d.Locations("county"); len(got) != 1 || got[0] != "d/1" {
		t.Fatalf("locations = %v, want [d/1]", got)
	}
}

func TestNewDatasetRejectsInvalidObservation(t *testing.T) {
	bad := obs("Coffee", "local", "county", "d/1", storage.Treatment, 0, page("a"))
	bad.Page = nil
	if _, err := NewDataset([]storage.Observation{bad}); err == nil {
		t.Fatal("invalid observation accepted")
	}
}

func TestNoiseByGranularityExactValues(t *testing.T) {
	// d/1: treatment == control → jaccard 1, edit 0.
	// d/2: one substitution in 2 links → jaccard 1/3, edit 1.
	data := []storage.Observation{
		obs("Coffee", "local", "county", "d/1", storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "county", "d/1", storage.Control, 0, page("a", "b")),
		obs("Coffee", "local", "county", "d/2", storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "county", "d/2", storage.Control, 0, page("a", "c")),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	cells := d.NoiseByGranularity()
	if len(cells) != 1 {
		t.Fatalf("cells = %+v", cells)
	}
	c := cells[0]
	if c.Granularity != "county" || c.Category != "local" {
		t.Fatalf("cell = %+v", c)
	}
	approx(t, c.Edit.Mean, 0.5, 1e-12, "noise edit mean")
	approx(t, c.Jaccard.Mean, (1.0+1.0/3.0)/2, 1e-12, "noise jaccard mean")
	if c.Edit.N != 2 {
		t.Fatalf("samples = %d", c.Edit.N)
	}
}

func TestPersonalizationByGranularityExactValues(t *testing.T) {
	// Three locations with pages ab, ab, cd:
	// pairs: (ab,ab)=J1,E0; (ab,cd)=J0,E2; (ab,cd)=J0,E2.
	data := []storage.Observation{
		obs("Coffee", "local", "state", "c/1", storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "state", "c/1", storage.Control, 0, page("a", "b")),
		obs("Coffee", "local", "state", "c/2", storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "state", "c/2", storage.Control, 0, page("a", "b")),
		obs("Coffee", "local", "state", "c/3", storage.Treatment, 0, page("c", "d")),
		obs("Coffee", "local", "state", "c/3", storage.Control, 0, page("c", "d")),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	cells := d.PersonalizationByGranularity()
	if len(cells) != 1 {
		t.Fatalf("cells = %+v", cells)
	}
	c := cells[0]
	approx(t, c.Edit.Mean, 4.0/3.0, 1e-12, "pers edit mean")
	approx(t, c.Jaccard.Mean, 1.0/3.0, 1e-12, "pers jaccard mean")
	approx(t, c.NoiseEdit, 0, 1e-12, "noise floor edit")
	approx(t, c.NoiseJaccard, 1, 1e-12, "noise floor jaccard")
}

func TestNoisePerTermSortedByNational(t *testing.T) {
	data := []storage.Observation{
		// "Quiet" term: identical pair at national.
		obs("Quiet", "local", "national", "s/1", storage.Treatment, 0, page("a", "b")),
		obs("Quiet", "local", "national", "s/1", storage.Control, 0, page("a", "b")),
		// "Loud" term: fully different pair at national.
		obs("Loud", "local", "national", "s/1", storage.Treatment, 0, page("a", "b")),
		obs("Loud", "local", "national", "s/1", storage.Control, 0, page("c", "d")),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	terms := d.NoisePerTerm("local")
	if len(terms) != 2 {
		t.Fatalf("terms = %+v", terms)
	}
	if terms[0].Term != "Quiet" || terms[1].Term != "Loud" {
		t.Fatalf("sort order wrong: %s, %s", terms[0].Term, terms[1].Term)
	}
	approx(t, terms[1].EditByGranularity["national"], 2, 1e-12, "loud national noise")
}

func TestNoiseByResultTypeAttribution(t *testing.T) {
	// Treatment and control differ only in the maps card.
	tp := mapsPage([]string{"m1", "m2"}, "a", "b")
	cp := mapsPage([]string{"m3", "m4"}, "a", "b")
	data := []storage.Observation{
		obs("School", "local", "county", "d/1", storage.Treatment, 0, tp),
		obs("School", "local", "county", "d/1", storage.Control, 0, cp),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	attr := d.NoiseByResultType("local", "county")
	if len(attr) != 1 {
		t.Fatalf("attr = %+v", attr)
	}
	approx(t, attr[0].Maps, 2, 1e-12, "maps noise")
	approx(t, attr[0].News, 0, 1e-12, "news noise")
	approx(t, attr[0].All, 2, 1e-12, "all noise")
}

func TestPersonalizationByResultTypeShares(t *testing.T) {
	// Two locations differing in maps (2 changes) and organic (1 change).
	p1 := mapsPage([]string{"m1", "m2"}, "a", "b")
	p2 := mapsPage([]string{"m3", "m4"}, "a", "c")
	data := []storage.Observation{
		obs("School", "local", "state", "c/1", storage.Treatment, 0, p1),
		obs("School", "local", "state", "c/1", storage.Control, 0, p1),
		obs("School", "local", "state", "c/2", storage.Treatment, 0, p2),
		obs("School", "local", "state", "c/2", storage.Control, 0, p2),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	cells := d.PersonalizationByResultType()
	if len(cells) != 1 {
		t.Fatalf("cells = %+v", cells)
	}
	c := cells[0]
	approx(t, c.Maps, 2, 1e-12, "maps component")
	approx(t, c.Other, 1, 1e-12, "other component")
	approx(t, c.News, 0, 1e-12, "news component")
	approx(t, c.MapsShare(), 2.0/3.0, 1e-12, "maps share")
	approx(t, c.NewsShare(), 0, 1e-12, "news share")
}

func TestConsistencyOverTime(t *testing.T) {
	// Baseline c/1; location c/2 identical on day 0, different on day 1.
	data := []storage.Observation{
		obs("Coffee", "local", "county", "c/1", storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "county", "c/1", storage.Control, 0, page("a", "b")),
		obs("Coffee", "local", "county", "c/2", storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "county", "c/2", storage.Control, 0, page("a", "b")),
		obs("Coffee", "local", "county", "c/1", storage.Treatment, 1, page("a", "b")),
		obs("Coffee", "local", "county", "c/1", storage.Control, 1, page("a", "x")),
		obs("Coffee", "local", "county", "c/2", storage.Treatment, 1, page("c", "d")),
		obs("Coffee", "local", "county", "c/2", storage.Control, 1, page("c", "d")),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	series := d.ConsistencyOverTime("local")
	if len(series) != 1 {
		t.Fatalf("series = %+v", series)
	}
	s := series[0]
	if s.Baseline != "c/1" {
		t.Fatalf("baseline = %s", s.Baseline)
	}
	if len(s.Days) != 2 || len(s.NoiseFloor) != 2 {
		t.Fatalf("days/noise = %v %v", s.Days, s.NoiseFloor)
	}
	approx(t, s.NoiseFloor[0], 0, 1e-12, "day-0 noise")
	approx(t, s.NoiseFloor[1], 1, 1e-12, "day-1 noise")
	line := s.PerLocation["c/2"]
	approx(t, line[0], 0, 1e-12, "day-0 vs baseline")
	approx(t, line[1], 2, 1e-12, "day-1 vs baseline")
}

func TestValidateGPSOverIP(t *testing.T) {
	pages := map[string][]*serp.Page{
		"Health": {page("a", "b"), page("a", "b"), page("a", "c")},
		"Tiny":   {page("x")},
	}
	res := ValidateGPSOverIP(pages)
	if res.Terms != 1 {
		t.Fatalf("terms = %d (single-page groups must not count)", res.Terms)
	}
	if res.Comparisons != 3 {
		t.Fatalf("comparisons = %d", res.Comparisons)
	}
	// Overlaps: 1, 1/3, 1/3.
	approx(t, res.MeanResultOverlap, (1+1.0/3+1.0/3)/3, 1e-12, "mean overlap")
	approx(t, res.FractionIdenticalPages, 1.0/3, 1e-12, "identical fraction")
	if res.OverlapHistogram.Total() != 3 {
		t.Fatalf("histogram total = %d", res.OverlapHistogram.Total())
	}
}

func TestValidateEmpty(t *testing.T) {
	res := ValidateGPSOverIP(nil)
	if res.Terms != 0 || res.Comparisons != 0 || res.MeanResultOverlap != 0 {
		t.Fatalf("empty validation = %+v", res)
	}
}

func TestOrderedCategoriesAndGranularities(t *testing.T) {
	data := []storage.Observation{
		obs("Coffee", "local", "national", "s/1", storage.Treatment, 0, page("a")),
		obs("Health", "controversial", "county", "d/1", storage.Treatment, 0, page("b")),
		obs("Obama", "politician", "state", "c/1", storage.Treatment, 0, page("c")),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	cats := d.orderedCategories()
	if cats[0] != "politician" || cats[1] != "controversial" || cats[2] != "local" {
		t.Fatalf("category order = %v", cats)
	}
	gs := d.orderedGranularities()
	if gs[0] != "county" || gs[1] != "state" || gs[2] != "national" {
		t.Fatalf("granularity order = %v", gs)
	}
}
