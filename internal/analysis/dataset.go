// Package analysis turns raw crawl observations into the paper's tables
// and figures: noise estimation from treatment/control pairs (§3.1),
// personalization from cross-location comparisons (§3.2), per-card-type
// attribution, day-by-day consistency, the GPS-vs-IP validation metric,
// and the demographics correlation study.
package analysis

import (
	"fmt"
	"sort"

	"geoserp/internal/serp"
	"geoserp/internal/storage"
)

// obsKey identifies one measurement slot: a term queried at a location on
// a day within one granularity sweep.
type obsKey struct {
	granularity string
	term        string
	day         int
	location    string
}

// pair holds the simultaneous treatment and control pages for a slot.
type pair struct {
	treatment *serp.Page
	control   *serp.Page
	category  string
}

// Dataset indexes a crawl's observations for analysis.
type Dataset struct {
	pairs map[obsKey]*pair
	// granularities, categories, terms, days, locations enumerate the
	// distinct values present, sorted.
	granularities []string
	categories    []string
	days          []int
	// termsByCategory maps category → sorted terms.
	termsByCategory map[string][]string
	// locationsByGranularity maps granularity → sorted location IDs.
	locationsByGranularity map[string][]string
	// failed counts observations excluded because their fetch failed.
	failed int
}

// NewDataset indexes observations. Both roles must be present for a slot
// to participate in noise estimation; treatment-only slots still join the
// personalization comparisons. Failed observations (fail-soft crawls
// record them instead of aborting) carry no page and are skipped; Failed()
// reports how many were dropped.
func NewDataset(obs []storage.Observation) (*Dataset, error) {
	d := &Dataset{
		pairs:                  make(map[obsKey]*pair, len(obs)/2),
		termsByCategory:        make(map[string][]string),
		locationsByGranularity: make(map[string][]string),
	}
	gSet := map[string]bool{}
	cSet := map[string]bool{}
	dSet := map[int]bool{}
	termSet := map[string]map[string]bool{}
	locSet := map[string]map[string]bool{}

	for i := range obs {
		o := &obs[i]
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("analysis: observation %d: %w", i, err)
		}
		if o.Failed {
			d.failed++
			continue
		}
		k := obsKey{o.Granularity, o.Term, o.Day, o.LocationID}
		p := d.pairs[k]
		if p == nil {
			p = &pair{category: o.Category}
			d.pairs[k] = p
		}
		switch o.Role {
		case storage.Treatment:
			if p.treatment != nil {
				return nil, fmt.Errorf("analysis: duplicate treatment for %+v", k)
			}
			p.treatment = o.Page
		case storage.Control:
			if p.control != nil {
				return nil, fmt.Errorf("analysis: duplicate control for %+v", k)
			}
			p.control = o.Page
		}
		gSet[o.Granularity] = true
		cSet[o.Category] = true
		dSet[o.Day] = true
		if termSet[o.Category] == nil {
			termSet[o.Category] = map[string]bool{}
		}
		termSet[o.Category][o.Term] = true
		if locSet[o.Granularity] == nil {
			locSet[o.Granularity] = map[string]bool{}
		}
		locSet[o.Granularity][o.LocationID] = true
	}

	d.granularities = sortedKeys(gSet)
	d.categories = sortedKeys(cSet)
	for day := range dSet {
		d.days = append(d.days, day)
	}
	sort.Ints(d.days)
	for cat, ts := range termSet {
		d.termsByCategory[cat] = sortedKeys(ts)
	}
	for g, ls := range locSet {
		d.locationsByGranularity[g] = sortedKeys(ls)
	}
	return d, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Granularities returns the granularity labels present, sorted.
func (d *Dataset) Granularities() []string { return d.granularities }

// Categories returns the category labels present, sorted.
func (d *Dataset) Categories() []string { return d.categories }

// Days returns the campaign days present, sorted.
func (d *Dataset) Days() []int { return d.days }

// Terms returns the terms of a category, sorted.
func (d *Dataset) Terms(category string) []string { return d.termsByCategory[category] }

// Locations returns the location IDs of a granularity, sorted.
func (d *Dataset) Locations(granularity string) []string {
	return d.locationsByGranularity[granularity]
}

// Pairs returns the number of indexed slots.
func (d *Dataset) Pairs() int { return len(d.pairs) }

// Failed returns the number of failed observations dropped at indexing.
func (d *Dataset) Failed() int { return d.failed }

// lookup returns the slot for a key, if present.
func (d *Dataset) lookup(g, term string, day int, loc string) (*pair, bool) {
	p, ok := d.pairs[obsKey{g, term, day, loc}]
	return p, ok
}

// eachSlot iterates slots matching granularity and (optional) category,
// in deterministic order.
func (d *Dataset) eachSlot(g, category string, fn func(term string, day int, loc string, p *pair)) {
	for _, cat := range d.categories {
		if category != "" && cat != category {
			continue
		}
		for _, term := range d.termsByCategory[cat] {
			for _, day := range d.days {
				for _, loc := range d.locationsByGranularity[g] {
					if p, ok := d.lookup(g, term, day, loc); ok {
						fn(term, day, loc, p)
					}
				}
			}
		}
	}
}
