package analysis

import (
	"testing"

	"geoserp/internal/geo"
	"geoserp/internal/storage"
)

func TestDomainOf(t *testing.T) {
	cases := map[string]string{
		"https://Encyclopedia.Example/wiki/x": "encyclopedia.example",
		"https://a.b.example/path?q=1":        "a.b.example",
		"not a url ::":                        "",
	}
	for in, want := range cases {
		if got := domainOf(in); got != want {
			t.Fatalf("domainOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDomainBiasByLocation(t *testing.T) {
	// everywhere.example appears at both locations; only-a.example only
	// at d/a.
	pageA := page("https://everywhere.example/1", "https://only-a.example/1")
	pageB := page("https://everywhere.example/1", "https://other.example/1")
	data := []storage.Observation{
		obs("Coffee", "local", "county", "d/a", storage.Treatment, 0, pageA),
		obs("Coffee", "local", "county", "d/b", storage.Treatment, 0, pageB),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	rows := d.DomainBiasByLocation("county", "local", 0)
	byDomain := map[string]DomainBias{}
	for _, r := range rows {
		byDomain[r.Domain] = r
	}
	ev := byDomain["everywhere.example"]
	if ev.Spread != 0 || ev.MeanPresence != 1 {
		t.Fatalf("everywhere = %+v", ev)
	}
	oa := byDomain["only-a.example"]
	if oa.Spread != 1 || oa.TopLocation != "d/a" || oa.TopPresence != 1 {
		t.Fatalf("only-a = %+v", oa)
	}
	// Sorted by spread: biased domains first.
	if rows[0].Spread < rows[len(rows)-1].Spread {
		t.Fatal("rows not sorted by spread")
	}
	// minPresence filter suppresses rare domains.
	filtered := d.DomainBiasByLocation("county", "local", 0.9)
	for _, r := range filtered {
		if r.MeanPresence < 0.9 {
			t.Fatalf("filter leaked %+v", r)
		}
	}
}

func TestDomainBiasEmptyGranularity(t *testing.T) {
	d, err := NewDataset([]storage.Observation{
		obs("Coffee", "local", "county", "d/a", storage.Treatment, 0, page("https://x.example/")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows := d.DomainBiasByLocation("national", "local", 0); rows != nil {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestDistanceDecay(t *testing.T) {
	locs := geo.StudyDataset()
	county := locs.At(geo.County)
	states := locs.At(geo.National)
	// Nearby pair: identical pages. Distant pair: disjoint pages.
	data := []storage.Observation{
		obs("Coffee", "local", "county", county[0].ID, storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "county", county[1].ID, storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "national", states[0].ID, storage.Treatment, 0, page("a", "b")),
		obs("Coffee", "local", "national", states[1].ID, storage.Treatment, 0, page("c", "d")),
	}
	d, err := NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	bins, fit := d.DistanceDecay(locs, "local")
	if len(bins) < 2 {
		t.Fatalf("bins = %+v", bins)
	}
	// First bin (short distance) must be less different than the last.
	if bins[0].Edit.Mean >= bins[len(bins)-1].Edit.Mean {
		t.Fatalf("decay not increasing: %+v", bins)
	}
	if fit.Slope <= 0 {
		t.Fatalf("fit slope = %v, want positive (difference grows with log distance)", fit.Slope)
	}
	for _, b := range bins {
		if b.HiKm <= b.LoKm {
			t.Fatalf("bad bin bounds: %+v", b)
		}
	}
}

func TestDistanceDecayEmpty(t *testing.T) {
	d, err := NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	bins, fit := d.DistanceDecay(geo.StudyDataset(), "local")
	if bins != nil || fit.Slope != 0 {
		t.Fatalf("empty decay = %+v %+v", bins, fit)
	}
}
