package analysis_test

// End-to-end integration: a real campaign (engine → HTTP server → browser
// pool → crawler) feeds the analysis layer, and the figure reproductions
// are checked against the paper's qualitative findings.

import (
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"geoserp/internal/analysis"
	"geoserp/internal/crawler"
	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/storage"
)

// runSmallCampaign crawls a reduced study (a handful of terms per
// category, all granularities, 2 days) against an in-process engine.
func runSmallCampaign(t *testing.T) []storage.Observation {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	eng := engine.New(engine.DefaultConfig(), clk)
	srv := httptest.NewServer(serpserver.NewHandler(eng))
	t.Cleanup(srv.Close)

	corpus := queries.StudyCorpus()
	cr, err := crawler.New(crawler.DefaultConfig(), clk, srv.URL, geo.StudyDataset(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	var terms []queries.Query
	terms = append(terms, corpus.Category(queries.Local)[:8]...)
	terms = append(terms, corpus.Category(queries.Controversial)[:6]...)
	terms = append(terms, corpus.Category(queries.Politician)[:6]...)
	phase := crawler.Phase{
		Name:          "integration",
		Terms:         terms,
		Granularities: geo.Granularities,
		Days:          2,
	}
	obs, err := cr.RunCampaignVirtual(clk, []crawler.Phase{phase})
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

var campaignCache []storage.Observation

func campaign(t *testing.T) []storage.Observation {
	t.Helper()
	if campaignCache == nil {
		campaignCache = runSmallCampaign(t)
	}
	return campaignCache
}

func TestEndToEndFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("integration campaign is slow")
	}
	obs := campaign(t)
	// 20 terms × (15+22+22 locations) × 2 roles × 2 days.
	want := 20 * (15 + 22 + 22) * 2 * 2
	if len(obs) != want {
		t.Fatalf("observations = %d, want %d", len(obs), want)
	}
	d, err := analysis.NewDataset(obs)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("Figure2Noise", func(t *testing.T) {
		cells := d.NoiseByGranularity()
		if len(cells) != 9 {
			t.Fatalf("cells = %d, want 3 granularities x 3 categories", len(cells))
		}
		byKey := map[[2]string]analysis.NoiseCell{}
		for _, c := range cells {
			byKey[[2]string{c.Granularity, c.Category}] = c
		}
		for _, g := range []string{"county", "state", "national"} {
			local := byKey[[2]string{g, "local"}]
			for _, cat := range []string{"controversial", "politician"} {
				other := byKey[[2]string{g, cat}]
				if other.Edit.Mean >= local.Edit.Mean {
					t.Errorf("%s: %s noise (%.2f) >= local noise (%.2f)",
						g, cat, other.Edit.Mean, local.Edit.Mean)
				}
			}
			if local.Jaccard.Mean > 0.99 {
				t.Errorf("%s: local queries show no noise at all", g)
			}
		}
	})

	t.Run("Figure5Personalization", func(t *testing.T) {
		cells := d.PersonalizationByGranularity()
		byKey := map[[2]string]analysis.PersonalizationCell{}
		for _, c := range cells {
			byKey[[2]string{c.Granularity, c.Category}] = c
		}
		county := byKey[[2]string{"county", "local"}]
		state := byKey[[2]string{"state", "local"}]
		national := byKey[[2]string{"national", "local"}]
		if !(county.Edit.Mean < state.Edit.Mean) {
			t.Errorf("local personalization not growing county→state: %.2f vs %.2f",
				county.Edit.Mean, state.Edit.Mean)
		}
		if !(county.Jaccard.Mean > national.Jaccard.Mean) {
			t.Errorf("local jaccard not shrinking with distance: %.2f vs %.2f",
				county.Jaccard.Mean, national.Jaccard.Mean)
		}
		if state.Edit.Mean < state.NoiseEdit {
			t.Errorf("state local personalization (%.2f) below noise floor (%.2f)",
				state.Edit.Mean, state.NoiseEdit)
		}
		// Politicians stay near their noise floor.
		pol := byKey[[2]string{"county", "politician"}]
		if pol.Edit.Mean > pol.NoiseEdit+1.5 {
			t.Errorf("county politician personalization (%.2f) far above noise (%.2f)",
				pol.Edit.Mean, pol.NoiseEdit)
		}
	})

	t.Run("Figure3And6PerTerm", func(t *testing.T) {
		noise := d.NoisePerTerm("local")
		pers := d.PersonalizationPerTerm("local")
		if len(noise) != 8 || len(pers) != 8 {
			t.Fatalf("per-term series = %d/%d, want 8", len(noise), len(pers))
		}
		// Sorted ascending by national value.
		for i := 1; i < len(pers); i++ {
			if pers[i-1].EditByGranularity["national"] > pers[i].EditByGranularity["national"]+1e-9 {
				t.Fatal("per-term series not sorted by national values")
			}
		}
	})

	t.Run("Figure4NoiseTypes", func(t *testing.T) {
		attr := d.NoiseByResultType("local", "county")
		if len(attr) == 0 {
			t.Fatal("no attribution rows")
		}
		var all, news float64
		for _, a := range attr {
			all += a.All
			news += a.News
		}
		if all == 0 {
			t.Fatal("no local noise at county level")
		}
		if news > 0.02*all {
			t.Errorf("news noise for local queries = %.2f of %.2f, want ~0", news, all)
		}
	})

	t.Run("Figure7TypeBreakdown", func(t *testing.T) {
		cells := d.PersonalizationByResultType()
		byKey := map[[2]string]analysis.BreakdownCell{}
		for _, c := range cells {
			byKey[[2]string{c.Category, c.Granularity}] = c
		}
		local := byKey[[2]string{"local", "state"}]
		if s := local.MapsShare(); s < 0.05 || s > 0.6 {
			t.Errorf("maps share of local personalization = %.2f", s)
		}
		if local.Other <= 0 {
			t.Error("no 'typical result' personalization for local queries")
		}
		contr := byKey[[2]string{"controversial", "national"}]
		if contr.Maps != 0 {
			t.Errorf("controversial queries have maps differences: %.2f", contr.Maps)
		}
	})

	t.Run("Figure8Consistency", func(t *testing.T) {
		series := d.ConsistencyOverTime("local")
		if len(series) != 3 {
			t.Fatalf("series = %d, want 3 granularities", len(series))
		}
		for _, s := range series {
			if len(s.Days) != 2 {
				t.Fatalf("%s: days = %v", s.Granularity, s.Days)
			}
			if len(s.PerLocation) < 2 {
				t.Fatalf("%s: only %d comparison locations", s.Granularity, len(s.PerLocation))
			}
			// Values must be finite and day-to-day stable within a loose
			// factor (the paper: "the amount of personalization is stable
			// over time").
			for loc, line := range s.PerLocation {
				for i, v := range line {
					if math.IsNaN(v) || v < 0 {
						t.Fatalf("%s %s day %d: bad value %v", s.Granularity, loc, i, v)
					}
				}
			}
		}
	})

	t.Run("Demographics", func(t *testing.T) {
		rows := d.DemographicCorrelations(geo.StudyDataset(), "local")
		if len(rows) != 26 { // distance + 25 features
			t.Fatalf("rows = %d, want 26", len(rows))
		}
		// The paper's finding: no demographic feature explains result
		// differences. Synthetic demographics are independent of the
		// engine, so correlations must be small.
		for _, r := range rows[1:] {
			if math.Abs(r.Pearson) > 0.6 {
				t.Errorf("feature %s has |r| = %.2f, expected no correlation", r.Feature, r.Pearson)
			}
			if r.N == 0 {
				t.Errorf("feature %s has no samples", r.Feature)
			}
		}
	})
}

func TestCampaignJSONLRoundTripAndReanalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("integration campaign is slow")
	}
	obs := campaign(t)
	path := t.TempDir() + "/campaign.jsonl"
	if err := storage.SaveJSONL(path, obs); err != nil {
		t.Fatal(err)
	}
	back, err := storage.LoadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(obs) {
		t.Fatalf("round-trip lost observations: %d vs %d", len(back), len(obs))
	}
	d1, err := analysis.NewDataset(obs)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := analysis.NewDataset(back)
	if err != nil {
		t.Fatal(err)
	}
	c1 := d1.NoiseByGranularity()
	c2 := d2.NoiseByGranularity()
	if len(c1) != len(c2) {
		t.Fatal("re-analysis differs in shape")
	}
	for i := range c1 {
		if math.Abs(c1[i].Edit.Mean-c2[i].Edit.Mean) > 1e-12 {
			t.Fatal("re-analysis of persisted data differs")
		}
	}
}

// TestScopeAnalysisEndToEnd runs politician terms from multiple scopes
// through the real engine and verifies the paper-motivated ordering:
// Ohio-anchored officials are more location-sensitive at national scale
// than national figures, and common names are the most personalized.
func TestScopeAnalysisEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep is slow")
	}
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	eng := engine.New(engine.DefaultConfig(), clk)
	srv := httptest.NewServer(serpserver.NewHandler(eng))
	t.Cleanup(srv.Close)
	corpus := queries.StudyCorpus()
	cr, err := crawler.New(crawler.DefaultConfig(), clk, srv.URL, geo.StudyDataset(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	var terms []queries.Query
	for _, name := range []string{
		"Barack Obama", "Joe Biden", // national figures
		"Sherrod Brown", "Tim Ryan", "Bill Johnson", "Marcy Kaptur", // US congress (OH)
		"Nancy Pelosi", "Bernie Sanders", // US congress (other)
		"Margaret Kowalski", "Alan Pruitt", // county board / state legislature
	} {
		q, ok := corpus.ByTerm(name)
		if !ok {
			t.Fatalf("missing politician %q", name)
		}
		terms = append(terms, q)
	}
	phase := crawler.Phase{
		Name:          "scopes",
		Terms:         terms,
		Granularities: []geo.Granularity{geo.National},
		Days:          2,
	}
	obs, err := cr.RunCampaignVirtual(clk, []crawler.Phase{phase})
	if err != nil {
		t.Fatal(err)
	}
	d, err := analysis.NewDataset(obs)
	if err != nil {
		t.Fatal(err)
	}

	cells := d.PoliticianScopeBreakdown(corpus)
	byKey := map[[2]string]analysis.ScopeCell{}
	for _, c := range cells {
		byKey[[2]string{c.Scope, c.Granularity}] = c
	}
	natFig := byKey[[2]string{"national-figure", "national"}]
	ohCongress := byKey[[2]string{"us-congress-ohio", "national"}]
	if ohCongress.Edit.Mean <= natFig.Edit.Mean {
		t.Errorf("Ohio congress (%.2f) should be more location-sensitive than national figures (%.2f)",
			ohCongress.Edit.Mean, natFig.Edit.Mean)
	}

	for _, c := range d.CommonNameAmbiguity(corpus) {
		if c.Granularity == "national" && c.CommonEdit <= c.OtherEdit {
			t.Errorf("common names (%.2f) should exceed other politicians (%.2f) at national scale",
				c.CommonEdit, c.OtherEdit)
		}
	}
}
