package analysis

import (
	"geoserp/internal/metrics"
	"geoserp/internal/queries"
	"geoserp/internal/stats"
)

// §2.1 motivates the politician corpus with an open question: "it is not
// clear how Google Search handles queries for state- and county-level
// officials inside and outside their home territories." This file answers
// it for the reproduction: personalization broken down by politician
// scope, and separately for the ambiguous common names.

// ScopeCell summarizes one politician sub-group at one granularity.
type ScopeCell struct {
	// Scope is the sub-group label (queries.PoliticianScope.String()).
	Scope string
	// Granularity is the vantage-point scale.
	Granularity string
	// Edit and Jaccard summarize all-pairs cross-location comparisons.
	Edit    stats.Summary
	Jaccard stats.Summary
	// NoiseEdit is the sub-group's treatment/control floor.
	NoiseEdit float64
}

// PoliticianScopeBreakdown computes cross-location personalization per
// politician scope. The corpus supplies the term→scope mapping; terms not
// present in the dataset are skipped.
func (d *Dataset) PoliticianScopeBreakdown(corpus *queries.Corpus) []ScopeCell {
	scopes := []queries.PoliticianScope{
		queries.ScopeCountyBoard,
		queries.ScopeStateLegislature,
		queries.ScopeUSCongressOhio,
		queries.ScopeUSCongressOther,
		queries.ScopeNationalFigure,
	}
	var out []ScopeCell
	for _, g := range d.orderedGranularities() {
		for _, scope := range scopes {
			inScope := map[string]bool{}
			for _, q := range corpus.Scope(scope) {
				inScope[q.Term] = true
			}
			filter := func(term string) bool { return inScope[term] }
			js, es := d.pairwiseByTerm(g, "politician", filter)
			if len(es) == 0 {
				continue
			}
			// Noise floor for the same term subset.
			var noise []float64
			d.eachSlot(g, "politician", func(term string, _ int, _ string, p *pair) {
				if !inScope[term] || p.treatment == nil || p.control == nil {
					return
				}
				noise = append(noise, float64(metrics.ComparePages(p.treatment, p.control).EditDistance))
			})
			out = append(out, ScopeCell{
				Scope:       scope.String(),
				Granularity: g,
				Edit:        stats.Summarize(es),
				Jaccard:     stats.Summarize(js),
				NoiseEdit:   stats.Mean(noise),
			})
		}
	}
	return out
}

// CommonNameCell contrasts ambiguous politician names against the rest of
// their category — the paper's "Bill Johnson"/"Tim Ryan" observation.
type CommonNameCell struct {
	Granularity string
	// CommonEdit is the mean cross-location edit distance for
	// common-name politicians.
	CommonEdit float64
	// OtherEdit is the same for all other politicians.
	OtherEdit float64
	// CommonN / OtherN count the pairwise samples.
	CommonN, OtherN int
}

// CommonNameAmbiguity compares common-name politicians to the rest.
func (d *Dataset) CommonNameAmbiguity(corpus *queries.Corpus) []CommonNameCell {
	common := map[string]bool{}
	for _, q := range corpus.Category(queries.Politician) {
		if q.CommonName {
			common[q.Term] = true
		}
	}
	var out []CommonNameCell
	for _, g := range d.orderedGranularities() {
		_, ce := d.pairwiseByTerm(g, "politician", func(t string) bool { return common[t] })
		_, oe := d.pairwiseByTerm(g, "politician", func(t string) bool { return !common[t] })
		if len(ce) == 0 && len(oe) == 0 {
			continue
		}
		out = append(out, CommonNameCell{
			Granularity: g,
			CommonEdit:  stats.Mean(ce),
			OtherEdit:   stats.Mean(oe),
			CommonN:     len(ce),
			OtherN:      len(oe),
		})
	}
	return out
}
