// Package queries defines the 240-term query corpus of the study (§2.1):
// 33 local terms, 87 controversial terms, and 120 politician names, together
// with the attributes the analysis needs (brand vs. generic local terms,
// politician scope, common-name ambiguity).
package queries

import (
	"fmt"
	"sort"
	"strings"
)

// Category is the paper's three-way query taxonomy.
type Category int

const (
	// Local queries name physical establishments and public services
	// ("bank", "hospital", "KFC"). The paper treats them as an upper
	// bound on location-based personalization.
	Local Category = iota
	// Controversial queries are news- or politics-related issues
	// (Table 1). Location-based personalization of these would be
	// evidence of a geolocal Filter Bubble.
	Controversial
	// Politician queries are names of office-holders at county, state,
	// and national scope.
	Politician
)

// Categories lists all categories in the order the paper's figures use.
var Categories = []Category{Politician, Controversial, Local}

// String returns the paper's label for the category.
func (c Category) String() string {
	switch c {
	case Local:
		return "Local"
	case Controversial:
		return "Controversial"
	case Politician:
		return "Politicians"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Short returns a compact machine-friendly label.
func (c Category) Short() string {
	switch c {
	case Local:
		return "local"
	case Controversial:
		return "controversial"
	case Politician:
		return "politician"
	default:
		return fmt.Sprintf("c%d", int(c))
	}
}

// ParseCategory converts a Short label back to a Category.
func ParseCategory(s string) (Category, error) {
	switch s {
	case "local":
		return Local, nil
	case "controversial":
		return Controversial, nil
	case "politician":
		return Politician, nil
	}
	return 0, fmt.Errorf("queries: unknown category %q", s)
}

// PoliticianScope distinguishes the five politician sub-groups of §2.1.
type PoliticianScope int

const (
	// ScopeNone marks non-politician queries.
	ScopeNone PoliticianScope = iota
	// ScopeCountyBoard: members of the Cuyahoga County Council.
	ScopeCountyBoard
	// ScopeStateLegislature: members of the Ohio House and Senate.
	ScopeStateLegislature
	// ScopeUSCongressOhio: US House and Senate members from Ohio.
	ScopeUSCongressOhio
	// ScopeUSCongressOther: US House and Senate members not from Ohio.
	ScopeUSCongressOther
	// ScopeNationalFigure: Joe Biden and Barack Obama.
	ScopeNationalFigure
)

// String returns a human-readable scope label.
func (s PoliticianScope) String() string {
	switch s {
	case ScopeNone:
		return "none"
	case ScopeCountyBoard:
		return "county-board"
	case ScopeStateLegislature:
		return "state-legislature"
	case ScopeUSCongressOhio:
		return "us-congress-ohio"
	case ScopeUSCongressOther:
		return "us-congress-other"
	case ScopeNationalFigure:
		return "national-figure"
	default:
		return fmt.Sprintf("scope%d", int(s))
	}
}

// Query is a single search term plus the attributes the analysis layer
// conditions on.
type Query struct {
	// Term is the text typed into the search box.
	Term string `json:"term"`
	// Category is the paper's taxonomy bucket.
	Category Category `json:"category"`
	// Brand marks local terms that are chain brand names ("Starbucks")
	// rather than generic establishment types ("school"). The paper
	// observes that brands are less noisy and less personalized, and do
	// not receive Maps cards.
	Brand bool `json:"brand,omitempty"`
	// Scope is the politician sub-group (ScopeNone otherwise).
	Scope PoliticianScope `json:"scope,omitempty"`
	// CommonName marks politician names shared by many people
	// ("Bill Johnson", "Tim Ryan"); the paper attributes their elevated
	// personalization to ambiguity.
	CommonName bool `json:"common_name,omitempty"`
}

// ID returns a stable slug for the query, usable in URLs and file names.
func (q Query) ID() string {
	s := strings.ToLower(q.Term)
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r == ' ', r == '-', r == '\'':
			return '-'
		default:
			return -1
		}
	}, s)
	for strings.Contains(s, "--") {
		s = strings.ReplaceAll(s, "--", "-")
	}
	return strings.Trim(s, "-")
}

// Corpus is the full validated query set.
type Corpus struct {
	all    []Query
	byTerm map[string]Query
}

// NewCorpus validates and indexes a query list: terms must be unique and
// non-empty, and politician attributes consistent with categories.
func NewCorpus(qs []Query) (*Corpus, error) {
	c := &Corpus{byTerm: make(map[string]Query, len(qs))}
	for _, q := range qs {
		if strings.TrimSpace(q.Term) == "" {
			return nil, fmt.Errorf("queries: empty term")
		}
		if _, dup := c.byTerm[q.Term]; dup {
			return nil, fmt.Errorf("queries: duplicate term %q", q.Term)
		}
		if (q.Category == Politician) != (q.Scope != ScopeNone) {
			return nil, fmt.Errorf("queries: term %q has category %v but scope %v",
				q.Term, q.Category, q.Scope)
		}
		if q.Brand && q.Category != Local {
			return nil, fmt.Errorf("queries: non-local term %q marked as brand", q.Term)
		}
		c.byTerm[q.Term] = q
		c.all = append(c.all, q)
	}
	sort.Slice(c.all, func(i, j int) bool { return c.all[i].Term < c.all[j].Term })
	return c, nil
}

// All returns every query, sorted by term. The slice must not be mutated.
func (c *Corpus) All() []Query { return c.all }

// Len returns the corpus size.
func (c *Corpus) Len() int { return len(c.all) }

// ByTerm looks up a query by its exact term.
func (c *Corpus) ByTerm(term string) (Query, bool) {
	q, ok := c.byTerm[term]
	return q, ok
}

// Category returns the queries in the given category, sorted by term.
func (c *Corpus) Category(cat Category) []Query {
	var out []Query
	for _, q := range c.all {
		if q.Category == cat {
			out = append(out, q)
		}
	}
	return out
}

// Scope returns the politician queries with the given scope.
func (c *Corpus) Scope(s PoliticianScope) []Query {
	var out []Query
	for _, q := range c.all {
		if q.Scope == s {
			out = append(out, q)
		}
	}
	return out
}

// Terms returns the bare term strings of qs, preserving order.
func Terms(qs []Query) []string {
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.Term
	}
	return out
}
