package queries

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file serializes corpora so studies with custom term sets can be
// driven entirely from the command line (cmd/serpd -corpus, cmd/crawl
// -corpus). The wire format is a JSON array of query objects:
//
//	[
//	  {"term": "Chemist", "category": "local"},
//	  {"term": "Greggs", "category": "local", "brand": true},
//	  {"term": "NHS Funding", "category": "controversial"},
//	  {"term": "Prime Minister", "category": "politician", "scope": "national-figure"}
//	]

// queryJSON is the wire form of a Query.
type queryJSON struct {
	Term       string `json:"term"`
	Category   string `json:"category"`
	Brand      bool   `json:"brand,omitempty"`
	Scope      string `json:"scope,omitempty"`
	CommonName bool   `json:"common_name,omitempty"`
}

// scopeLabels maps wire labels to scopes.
var scopeLabels = map[string]PoliticianScope{
	"":                  ScopeNone,
	"none":              ScopeNone,
	"county-board":      ScopeCountyBoard,
	"state-legislature": ScopeStateLegislature,
	"us-congress-ohio":  ScopeUSCongressOhio,
	"us-congress-other": ScopeUSCongressOther,
	"national-figure":   ScopeNationalFigure,
}

// WriteCorpus serializes the corpus as JSON.
func WriteCorpus(w io.Writer, c *Corpus) error {
	out := make([]queryJSON, 0, c.Len())
	for _, q := range c.All() {
		scope := ""
		if q.Scope != ScopeNone {
			scope = q.Scope.String()
		}
		out = append(out, queryJSON{
			Term:       q.Term,
			Category:   q.Category.Short(),
			Brand:      q.Brand,
			Scope:      scope,
			CommonName: q.CommonName,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadCorpus parses a JSON corpus and validates it.
func ReadCorpus(r io.Reader) (*Corpus, error) {
	var raw []queryJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("queries: decode corpus: %w", err)
	}
	qs := make([]Query, 0, len(raw))
	for i, rq := range raw {
		cat, err := ParseCategory(rq.Category)
		if err != nil {
			return nil, fmt.Errorf("queries: entry %d (%q): %w", i, rq.Term, err)
		}
		scope, ok := scopeLabels[rq.Scope]
		if !ok {
			return nil, fmt.Errorf("queries: entry %d (%q): unknown scope %q", i, rq.Term, rq.Scope)
		}
		// Politician entries default to national-figure scope when the
		// file omits it, keeping hand-written corpora terse.
		if cat == Politician && scope == ScopeNone {
			scope = ScopeNationalFigure
		}
		qs = append(qs, Query{
			Term:       rq.Term,
			Category:   cat,
			Brand:      rq.Brand,
			Scope:      scope,
			CommonName: rq.CommonName,
		})
	}
	return NewCorpus(qs)
}

// SaveCorpus writes the corpus to a file path.
func SaveCorpus(path string, c *Corpus) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("queries: create %s: %w", path, err)
	}
	defer f.Close()
	if err := WriteCorpus(f, c); err != nil {
		return err
	}
	return f.Close()
}

// LoadCorpus reads a corpus from a file path.
func LoadCorpus(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("queries: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadCorpus(f)
}
