package queries

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCorpusJSONRoundTrip(t *testing.T) {
	orig := StudyCorpus()
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round-trip size %d, want %d", back.Len(), orig.Len())
	}
	for _, q := range orig.All() {
		got, ok := back.ByTerm(q.Term)
		if !ok {
			t.Fatalf("lost term %q", q.Term)
		}
		if got != q {
			t.Fatalf("term %q changed: %+v vs %+v", q.Term, got, q)
		}
	}
}

func TestCorpusFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := SaveCorpus(path, StudyCorpus()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 240 {
		t.Fatalf("loaded %d queries", back.Len())
	}
	if _, err := LoadCorpus(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadCorpusHandWritten(t *testing.T) {
	doc := `[
	  {"term": "Chemist", "category": "local"},
	  {"term": "Greggs", "category": "local", "brand": true},
	  {"term": "NHS Funding", "category": "controversial"},
	  {"term": "Prime Minister", "category": "politician"}
	]`
	c, err := ReadCorpus(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	pm, _ := c.ByTerm("Prime Minister")
	if pm.Scope != ScopeNationalFigure {
		t.Fatalf("politician without scope defaulted to %v", pm.Scope)
	}
	greggs, _ := c.ByTerm("Greggs")
	if !greggs.Brand {
		t.Fatal("brand flag lost")
	}
}

func TestReadCorpusErrors(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"bad category":    `[{"term":"x","category":"mystery"}]`,
		"bad scope":       `[{"term":"x","category":"politician","scope":"galactic"}]`,
		"duplicate terms": `[{"term":"x","category":"local"},{"term":"x","category":"local"}]`,
		"empty term":      `[{"term":" ","category":"local"}]`,
	}
	for name, doc := range cases {
		if _, err := ReadCorpus(strings.NewReader(doc)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
