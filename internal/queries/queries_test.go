package queries

import (
	"strings"
	"testing"
)

func TestStudyCorpusCounts(t *testing.T) {
	c := StudyCorpus()
	if got := c.Len(); got != 240 {
		t.Fatalf("corpus size = %d, want 240", got)
	}
	if got := len(c.Category(Local)); got != 33 {
		t.Fatalf("local terms = %d, want 33", got)
	}
	if got := len(c.Category(Controversial)); got != 87 {
		t.Fatalf("controversial terms = %d, want 87", got)
	}
	if got := len(c.Category(Politician)); got != 120 {
		t.Fatalf("politician terms = %d, want 120", got)
	}
}

func TestPoliticianScopeCounts(t *testing.T) {
	c := StudyCorpus()
	cases := []struct {
		scope PoliticianScope
		want  int
	}{
		{ScopeCountyBoard, 11},
		{ScopeStateLegislature, 53},
		{ScopeUSCongressOhio, 18},
		{ScopeUSCongressOther, 36},
		{ScopeNationalFigure, 2},
	}
	for _, cse := range cases {
		if got := len(c.Scope(cse.scope)); got != cse.want {
			t.Fatalf("scope %v has %d queries, want %d", cse.scope, got, cse.want)
		}
	}
}

func TestBrandSplit(t *testing.T) {
	c := StudyCorpus()
	brands := 0
	for _, q := range c.Category(Local) {
		if q.Brand {
			brands++
		}
	}
	if brands != 9 {
		t.Fatalf("brand terms = %d, want 9", brands)
	}
	// Spot checks from the paper's figures.
	for _, term := range []string{"Starbucks", "KFC", "Chick-fil-a"} {
		q, ok := c.ByTerm(term)
		if !ok || !q.Brand {
			t.Fatalf("%q should be a brand local term (ok=%v, q=%+v)", term, ok, q)
		}
	}
	for _, term := range []string{"School", "Post Office", "Airport"} {
		q, ok := c.ByTerm(term)
		if !ok || q.Brand {
			t.Fatalf("%q should be a generic local term (ok=%v, q=%+v)", term, ok, q)
		}
	}
}

func TestTable1Terms(t *testing.T) {
	terms := Table1Terms()
	if len(terms) != 18 {
		t.Fatalf("Table 1 has %d terms, want 18", len(terms))
	}
	want := map[string]bool{
		"Gay Marriage":                 true,
		"Progressive Tax":              true,
		"Impeach Barack Obama":         true,
		"Stem Cell Research":           true,
		"Autism Caused By Vaccines":    true,
		"Man Made Global Warming Hoax": true,
	}
	found := 0
	for _, term := range terms {
		if want[term] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("Table 1 spot check found %d/%d expected terms", found, len(want))
	}
	c := StudyCorpus()
	for _, term := range terms {
		q, ok := c.ByTerm(term)
		if !ok || q.Category != Controversial {
			t.Fatalf("Table 1 term %q missing or miscategorized", term)
		}
	}
}

func TestCommonNamesFlagged(t *testing.T) {
	c := StudyCorpus()
	for _, name := range []string{"Bill Johnson", "Tim Ryan"} {
		q, ok := c.ByTerm(name)
		if !ok {
			t.Fatalf("missing politician %q", name)
		}
		if !q.CommonName {
			t.Fatalf("%q not flagged as common name", name)
		}
		if q.Scope != ScopeUSCongressOhio {
			t.Fatalf("%q scope = %v, want ScopeUSCongressOhio", name, q.Scope)
		}
	}
	q, _ := c.ByTerm("Barack Obama")
	if q.CommonName {
		t.Fatal("Barack Obama flagged as common name")
	}
	if q.Scope != ScopeNationalFigure {
		t.Fatalf("Barack Obama scope = %v", q.Scope)
	}
}

func TestQueryID(t *testing.T) {
	cases := map[string]string{
		"Chick-fil-a":            "chick-fil-a",
		"Wendy's":                "wendy-s",
		"Post Office":            "post-office",
		"Barack Obama":           "barack-obama",
		"Is Global Warming Real": "is-global-warming-real",
	}
	for term, want := range cases {
		q := Query{Term: term}
		if got := q.ID(); got != want {
			t.Fatalf("ID(%q) = %q, want %q", term, got, want)
		}
	}
}

func TestQueryIDsUnique(t *testing.T) {
	c := StudyCorpus()
	seen := make(map[string]string)
	for _, q := range c.All() {
		id := q.ID()
		if id == "" {
			t.Fatalf("query %q has empty ID", q.Term)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("queries %q and %q share ID %q", prev, q.Term, id)
		}
		seen[id] = q.Term
	}
}

func TestNewCorpusValidation(t *testing.T) {
	if _, err := NewCorpus([]Query{{Term: "  "}}); err == nil {
		t.Fatal("empty term accepted")
	}
	if _, err := NewCorpus([]Query{
		{Term: "x", Category: Local},
		{Term: "x", Category: Local},
	}); err == nil {
		t.Fatal("duplicate term accepted")
	}
	if _, err := NewCorpus([]Query{{Term: "x", Category: Politician}}); err == nil {
		t.Fatal("politician without scope accepted")
	}
	if _, err := NewCorpus([]Query{{Term: "x", Category: Local, Scope: ScopeCountyBoard}}); err == nil {
		t.Fatal("local query with politician scope accepted")
	}
	if _, err := NewCorpus([]Query{{Term: "x", Category: Controversial, Brand: true}}); err == nil {
		t.Fatal("controversial brand accepted")
	}
}

func TestCorpusOrderingAndLookup(t *testing.T) {
	c := StudyCorpus()
	all := c.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Term >= all[i].Term {
			t.Fatalf("All() not sorted at %d: %q >= %q", i, all[i-1].Term, all[i].Term)
		}
	}
	if _, ok := c.ByTerm("definitely not a query"); ok {
		t.Fatal("ByTerm returned ok for missing term")
	}
}

func TestCategoryLabels(t *testing.T) {
	cases := map[Category][2]string{
		Local:         {"Local", "local"},
		Controversial: {"Controversial", "controversial"},
		Politician:    {"Politicians", "politician"},
	}
	for cat, want := range cases {
		if cat.String() != want[0] || cat.Short() != want[1] {
			t.Fatalf("labels for %d = %q/%q, want %q/%q",
				cat, cat.String(), cat.Short(), want[0], want[1])
		}
		back, err := ParseCategory(cat.Short())
		if err != nil || back != cat {
			t.Fatalf("ParseCategory(%q) = %v, %v", cat.Short(), back, err)
		}
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Fatal("ParseCategory accepted junk")
	}
	if Category(42).String() == "" || PoliticianScope(42).String() == "" {
		t.Fatal("unknown enums have empty labels")
	}
}

func TestTermsHelper(t *testing.T) {
	qs := []Query{{Term: "b"}, {Term: "a"}}
	got := Terms(qs)
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("Terms = %v", got)
	}
}

func TestScopeStrings(t *testing.T) {
	scopes := []PoliticianScope{
		ScopeNone, ScopeCountyBoard, ScopeStateLegislature,
		ScopeUSCongressOhio, ScopeUSCongressOther, ScopeNationalFigure,
	}
	seen := make(map[string]bool)
	for _, s := range scopes {
		label := s.String()
		if label == "" || strings.Contains(label, " ") {
			t.Fatalf("scope %d label %q", s, label)
		}
		if seen[label] {
			t.Fatalf("duplicate scope label %q", label)
		}
		seen[label] = true
	}
}
