package queries

// This file embeds the concrete 240-term study corpus (§2.1):
//
//   - 33 local terms — the exact terms on the x-axes of Figures 3, 4 and 6.
//   - 87 controversial terms — the Table 1 examples, the three terms §3.2
//     singles out ("health", "republican party", "politics"), "abortion"
//     (named in the paper's bullet list), and era-appropriate expansions to
//     reach the paper's count of 87.
//   - 120 politicians — 11 Cuyahoga County Council members, 53 Ohio
//     House/Senate members, all 18 US House/Senate members from Ohio,
//     36 non-Ohio members of Congress, Joe Biden, and Barack Obama.
//
// The US-Congress-from-Ohio names are the real 114th-Congress delegation.
// The county-board and state-legislature names are synthetic but realistic
// (the synthetic web corpus generates pages for exactly these names), since
// the study's findings depend on the *scope* of the office, not the
// individual. "Bill Johnson" and "Tim Ryan" are flagged as common names,
// which the paper identifies as the source of their elevated
// personalization.

// localBrandTerms are chain brands; the paper observes these typically do
// not yield Maps cards and are comparatively quiet.
var localBrandTerms = []string{
	"Chipotle",
	"Starbucks",
	"Dairy Queen",
	"Mcdonalds",
	"Subway",
	"Burger King",
	"KFC",
	"Wendy's",
	"Chick-fil-a",
}

// localGenericTerms are generic establishment types; these are the noisy,
// heavily personalized end of Figures 3 and 6.
var localGenericTerms = []string{
	"Post Office",
	"Polling Place",
	"Train",
	"University",
	"Sushi",
	"Football",
	"Bank",
	"Burger",
	"Rail",
	"Coffee",
	"Restaurant",
	"Park",
	"Fast Food",
	"Police Station",
	"Bus",
	"School",
	"Fire Station",
	"Airport",
	"Hospital",
	"College",
	"Station",
	"High School",
	"Elementary School",
	"Middle School",
}

// controversialTerms: the first 18 entries are Table 1 verbatim.
var controversialTerms = []string{
	"Progressive Tax",
	"Impose A Flat Tax",
	"End Medicaid",
	"Affordable Health And Care Act",
	"Fluoridate Water",
	"Stem Cell Research",
	"Andrew Wakefield Vindicated",
	"Autism Caused By Vaccines",
	"US Government Loses AAA Bond Rate",
	"Is Global Warming Real",
	"Man Made Global Warming Hoax",
	"Nuclear Power Plants",
	"Offshore Drilling",
	"Genetically Modified Organisms",
	"Late Term Abortion",
	"Barack Obama Birth Certificate",
	"Impeach Barack Obama",
	"Gay Marriage",
	// Terms named elsewhere in the paper's analysis.
	"Health",
	"Republican Party",
	"Politics",
	"Abortion",
	// Era-appropriate expansion to the paper's count of 87.
	"Gun Control",
	"Second Amendment",
	"Death Penalty",
	"Minimum Wage",
	"Immigration Reform",
	"Border Security",
	"Climate Change",
	"Renewable Energy",
	"Fracking",
	"Keystone Pipeline",
	"Net Neutrality",
	"NSA Surveillance",
	"Edward Snowden",
	"Patriot Act",
	"Obamacare",
	"Single Payer Healthcare",
	"Legalize Marijuana",
	"Medical Marijuana",
	"War On Drugs",
	"Mass Incarceration",
	"Police Brutality",
	"Affirmative Action",
	"School Vouchers",
	"Common Core",
	"Charter Schools",
	"Right To Work",
	"Labor Unions",
	"Social Security Reform",
	"Welfare Reform",
	"Food Stamps",
	"Income Inequality",
	"Wall Street Bailout",
	"Too Big To Fail",
	"Federal Reserve Audit",
	"Debt Ceiling",
	"Government Shutdown",
	"Term Limits",
	"Electoral College",
	"Voter ID Laws",
	"Gerrymandering",
	"Campaign Finance Reform",
	"Citizens United",
	"Supreme Court Nominations",
	"Religious Freedom Act",
	"Separation Of Church And State",
	"Creationism In Schools",
	"Evolution Debate",
	"Sex Education",
	"Planned Parenthood",
	"Contraception Mandate",
	"Assisted Suicide",
	"Euthanasia",
	"Animal Testing",
	"Factory Farming",
	"Vaccination Exemptions",
	"Flu Vaccine Safety",
	"Chemtrails",
	"Iran Nuclear Deal",
	"Israel Palestine Conflict",
	"Syrian Refugees",
	"ISIS Threat",
	"Drone Strikes",
	"Guantanamo Bay",
	"Torture Report",
	"Military Spending",
}

// countyBoardNames are the 11 Cuyahoga County Council seats (synthetic).
var countyBoardNames = []string{
	"Margaret Kowalski",
	"Daryl Whitfield",
	"Rosa Delgado",
	"Stanley Novak",
	"Patricia Okafor",
	"Leonard Brzezinski",
	"Yvette Carrington",
	"Marcus Halloran",
	"Sofia Petrov",
	"Gerald Umansky",
	"Deborah Katz",
}

// ohioLegislatureNames are 53 Ohio House and Senate members (synthetic).
var ohioLegislatureNames = []string{
	"Alan Pruitt",
	"Brenda Stallworth",
	"Carl Jennings",
	"Denise Albrecht",
	"Edgar Valdez",
	"Felicia Monroe",
	"Gordon Hatfield",
	"Harriet Osei",
	"Ivan Kovacs",
	"Janet Fairbanks",
	"Kyle Demarco",
	"Lorraine Bishop",
	"Miles Thackeray",
	"Nina Castellano",
	"Oscar Lindqvist",
	"Paula Venable",
	"Quentin Marsh",
	"Rita Dombrowski",
	"Samuel Igwe",
	"Teresa Lockhart",
	"Ulysses Grant Parker",
	"Vivian Chu",
	"Walter Sandoval",
	"Ximena Reyes",
	"Yusuf Haddad",
	"Zachary Pemberton",
	"Adele Fontaine",
	"Bernard Kwiatkowski",
	"Cynthia Marbury",
	"Dominic Ferraro",
	"Eleanor Voss",
	"Franklin Dubois",
	"Gloria Nakamura",
	"Howard Beckett",
	"Irene Salazar",
	"Jerome Whitaker",
	"Kathleen O'Rourke",
	"Lamar Hutchins",
	"Monica Straub",
	"Nathaniel Greer",
	"Olivia Pennington",
	"Preston Caldwell",
	"Ramona Villanueva",
	"Spencer Holloway",
	"Tabitha Mercer",
	"Ursula Bergstrom",
	"Vernon Applewhite",
	"Wanda Kirkpatrick",
	"Xavier Dunmore",
	"Yolanda Brewster",
	"Zeke Ramsdell",
	"Audrey Falkner",
	"Byron Castellanos",
}

// usCongressOhio is the real Ohio delegation to the 114th Congress:
// 16 House members plus Senators Brown and Portman.
var usCongressOhio = []string{
	"Sherrod Brown",
	"Rob Portman",
	"Steve Chabot",
	"Brad Wenstrup",
	"Joyce Beatty",
	"Jim Jordan",
	"Bob Latta",
	"Bill Johnson",
	"Bob Gibbs",
	"John Boehner",
	"Marcy Kaptur",
	"Mike Turner",
	"Marcia Fudge",
	"Pat Tiberi",
	"Tim Ryan",
	"Dave Joyce",
	"Steve Stivers",
	"Jim Renacci",
}

// commonNames flags the ambiguous politician names called out in §3.2.
var commonNames = map[string]bool{
	"Bill Johnson": true,
	"Tim Ryan":     true,
	"Mike Turner":  true,
}

// usCongressOther are 36 members of the 114th Congress not from Ohio.
var usCongressOther = []string{
	"Nancy Pelosi",
	"Paul Ryan",
	"Mitch McConnell",
	"Harry Reid",
	"Elizabeth Warren",
	"Bernie Sanders",
	"John McCain",
	"Ted Cruz",
	"Marco Rubio",
	"Rand Paul",
	"Chuck Schumer",
	"Dianne Feinstein",
	"Lindsey Graham",
	"Kirsten Gillibrand",
	"Cory Booker",
	"Al Franken",
	"Amy Klobuchar",
	"Patty Murray",
	"Ron Wyden",
	"Jeff Flake",
	"Kelly Ayotte",
	"Susan Collins",
	"Joe Manchin",
	"Claire McCaskill",
	"Jon Tester",
	"Tom Cotton",
	"Steve Scalise",
	"Kevin McCarthy",
	"Jim Clyburn",
	"Trey Gowdy",
	"Jason Chaffetz",
	"Debbie Wasserman Schultz",
	"Tulsi Gabbard",
	"Adam Schiff",
	"Devin Nunes",
	"Maxine Waters",
}

// nationalFigures per §2.1.
var nationalFigures = []string{
	"Joe Biden",
	"Barack Obama",
}

// StudyQueries returns the full 240-query corpus.
func StudyQueries() []Query {
	var out []Query
	for _, t := range localBrandTerms {
		out = append(out, Query{Term: t, Category: Local, Brand: true})
	}
	for _, t := range localGenericTerms {
		out = append(out, Query{Term: t, Category: Local})
	}
	for _, t := range controversialTerms {
		out = append(out, Query{Term: t, Category: Controversial})
	}
	addPol := func(names []string, scope PoliticianScope) {
		for _, n := range names {
			out = append(out, Query{
				Term:       n,
				Category:   Politician,
				Scope:      scope,
				CommonName: commonNames[n],
			})
		}
	}
	addPol(countyBoardNames, ScopeCountyBoard)
	addPol(ohioLegislatureNames, ScopeStateLegislature)
	addPol(usCongressOhio, ScopeUSCongressOhio)
	addPol(usCongressOther, ScopeUSCongressOther)
	addPol(nationalFigures, ScopeNationalFigure)
	return out
}

// StudyCorpus returns StudyQueries wrapped in a validated Corpus. It panics
// on error because the tables are compile-time constants.
func StudyCorpus() *Corpus {
	c, err := NewCorpus(StudyQueries())
	if err != nil {
		panic("queries: invalid embedded corpus: " + err.Error())
	}
	return c
}

// Table1Terms returns the 18 controversial example terms exactly as printed
// in the paper's Table 1.
func Table1Terms() []string {
	out := make([]string, 18)
	copy(out, controversialTerms[:18])
	return out
}
