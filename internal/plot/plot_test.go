package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

// assertWellFormed parses the SVG with encoding/xml.
func assertWellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg)
		}
	}
}

func sampleBars() BarChartSpec {
	return BarChartSpec{
		Title:  "Figure 2: noise",
		YLabel: "Avg. Edit Distance",
		Series: []string{"Politicians", "Controversial", "Local"},
		Groups: []BarGroup{
			{Label: "County (Cuyahoga)", Values: []float64{0.5, 1.2, 4.3}, Errors: []float64{0.9, 1.4, 2.7}},
			{Label: "State (Ohio)", Values: []float64{0.5, 1.2, 4.3}, Errors: []float64{0.9, 1.4, 2.6}},
			{Label: "National (USA)", Values: []float64{0.6, 1.2, 4.2}, Errors: []float64{1.0, 1.4, 2.6}},
		},
		Baselines: []float64{4.0},
	}
}

func TestBarChartStructure(t *testing.T) {
	svg := BarChart(sampleBars())
	assertWellFormed(t, svg)
	// 9 bars + white background + 3 legend swatches = 13 rects.
	if got := strings.Count(svg, "<rect"); got != 13 {
		t.Fatalf("rect count = %d, want 13", got)
	}
	// Error bars: 9 lines with stroke-width 1.2, plus axes/grid/baseline.
	if got := strings.Count(svg, `stroke-width="1.2"`); got != 9 {
		t.Fatalf("error bars = %d, want 9", got)
	}
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Fatal("baseline missing")
	}
	for _, want := range []string{"Figure 2: noise", "County (Cuyahoga)", "Politicians"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestBarChartEmpty(t *testing.T) {
	assertWellFormed(t, BarChart(BarChartSpec{Title: "empty"}))
}

func TestBarChartEscaping(t *testing.T) {
	spec := BarChartSpec{
		Title:  `A <b>"title"</b> & more`,
		Series: []string{"S&P"},
		Groups: []BarGroup{{Label: "<x>", Values: []float64{1}}},
	}
	svg := BarChart(spec)
	assertWellFormed(t, svg)
	if strings.Contains(svg, "<b>") {
		t.Fatal("unescaped markup in output")
	}
}

func TestLineChartStructure(t *testing.T) {
	spec := LineChartSpec{
		Title:   "Figure 8",
		YLabel:  "Avg. Edit Distance",
		XLabels: []string{"day1", "day2", "day3", "day4", "day5"},
		Series: []LineSeries{
			{Name: "noise", Values: []float64{4, 4.1, 4, 4.2, 4}, Emphasize: true},
			{Name: "district-02", Values: []float64{6, 6.1, 5.9, 6, 6.2}},
			{Name: "district-03", Values: []float64{7, 7.2, 7.1, 7, 7.1}},
		},
	}
	svg := LineChart(spec)
	assertWellFormed(t, svg)
	if got := strings.Count(svg, "<polyline"); got != 3 {
		t.Fatalf("polylines = %d, want 3", got)
	}
	if !strings.Contains(svg, "#CC0000") {
		t.Fatal("emphasized series not highlighted")
	}
	if !strings.Contains(svg, "day3") {
		t.Fatal("x labels missing")
	}
}

func TestLineChartSkipsNaN(t *testing.T) {
	spec := LineChartSpec{
		XLabels: []string{"a", "b", "c"},
		Series:  []LineSeries{{Name: "s", Values: []float64{1, math.NaN(), 2}}},
	}
	svg := LineChart(spec)
	assertWellFormed(t, svg)
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("series with NaN dropped entirely")
	}
	// The polyline must have exactly two points.
	start := strings.Index(svg, `points="`) + len(`points="`)
	end := strings.Index(svg[start:], `"`)
	if pts := strings.Fields(svg[start : start+end]); len(pts) != 2 {
		t.Fatalf("points = %v, want 2", pts)
	}
}

func TestLineChartEmpty(t *testing.T) {
	assertWellFormed(t, LineChart(LineChartSpec{Title: "empty"}))
	assertWellFormed(t, LineChart(LineChartSpec{Title: "no series", XLabels: []string{"a"}}))
}

func TestLineChartManyLabelsThinned(t *testing.T) {
	labels := make([]string, 33)
	vals := make([]float64, 33)
	for i := range labels {
		labels[i] = strings.Repeat("t", 3)
		vals[i] = float64(i)
	}
	spec := LineChartSpec{XLabels: labels, Series: []LineSeries{{Name: "s", Values: vals}}}
	svg := LineChart(spec)
	assertWellFormed(t, svg)
	// 33 labels at step 2 → ~17 text labels (plus axis/y labels). Ensure
	// fewer than 33 rotated label nodes.
	if got := strings.Count(svg, "rotate(-35"); got >= 33 {
		t.Fatalf("labels not thinned: %d", got)
	}
}
