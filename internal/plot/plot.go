// Package plot renders simple, dependency-free SVG charts — grouped bar
// charts with error bars and multi-series line charts — sufficient to
// regenerate the paper's figures as images. The output is plain SVG 1.1
// markup built with strings; tests validate it with encoding/xml.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Chart geometry shared by both chart types.
const (
	chartWidth   = 760
	chartHeight  = 420
	marginLeft   = 70
	marginRight  = 30
	marginTop    = 50
	marginBottom = 90
)

// palette gives series/groups distinguishable fills.
var palette = []string{
	"#4878CF", "#EE854A", "#6ACC65", "#D65F5F",
	"#956CB4", "#8C613C", "#DC7EC0", "#797979",
}

// esc escapes a string for SVG text nodes and attributes.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// BarGroup is one x-axis position of a grouped bar chart.
type BarGroup struct {
	// Label is the x-axis label.
	Label string
	// Values holds one bar height per series.
	Values []float64
	// Errors holds optional symmetric error-bar half-heights (nil or
	// same length as Values).
	Errors []float64
}

// BarChartSpec describes a grouped bar chart.
type BarChartSpec struct {
	Title  string
	YLabel string
	// Series names, one per bar within each group.
	Series []string
	Groups []BarGroup
	// Baselines draws horizontal reference lines (e.g. noise floors).
	Baselines []float64
}

// BarChart renders the spec as an SVG document.
func BarChart(spec BarChartSpec) string {
	maxY := 0.0
	for _, g := range spec.Groups {
		for i, v := range g.Values {
			e := 0.0
			if i < len(g.Errors) {
				e = g.Errors[i]
			}
			if v+e > maxY {
				maxY = v + e
			}
		}
	}
	for _, b := range spec.Baselines {
		if b > maxY {
			maxY = b
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.08

	var b strings.Builder
	header(&b, spec.Title, spec.YLabel, maxY)

	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	nGroups := len(spec.Groups)
	if nGroups == 0 {
		b.WriteString("</svg>\n")
		return b.String()
	}
	groupW := plotW / float64(nGroups)
	nSeries := len(spec.Series)
	if nSeries == 0 {
		nSeries = 1
	}
	barW := groupW * 0.8 / float64(nSeries)

	y := func(v float64) float64 {
		return float64(marginTop) + plotH*(1-v/maxY)
	}

	for gi, g := range spec.Groups {
		x0 := float64(marginLeft) + groupW*float64(gi) + groupW*0.1
		for si, v := range g.Values {
			x := x0 + barW*float64(si)
			h := plotH * v / maxY
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y(v), barW*0.92, h, palette[si%len(palette)])
			if si < len(g.Errors) && g.Errors[si] > 0 {
				cx := x + barW*0.46
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="1.2"/>`+"\n",
					cx, y(v+g.Errors[si]), cx, y(math.Max(0, v-g.Errors[si])))
			}
		}
		// Group label, rotated when long.
		lx := float64(marginLeft) + groupW*(float64(gi)+0.5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="end" transform="rotate(-35 %.1f %d)">%s</text>`+"\n",
			lx, chartHeight-marginBottom+18, lx, chartHeight-marginBottom+18, esc(g.Label))
	}

	for _, base := range spec.Baselines {
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#000" stroke-width="1.5" stroke-dasharray="6,3"/>`+"\n",
			marginLeft, y(base), chartWidth-marginRight, y(base))
	}

	legend(&b, spec.Series)
	b.WriteString("</svg>\n")
	return b.String()
}

// LineSeries is one line of a line chart.
type LineSeries struct {
	Name string
	// Values are y-values at each x position (NaN skips a point).
	Values []float64
	// Emphasize draws the series thicker and red (the paper's noise
	// line in Figure 8).
	Emphasize bool
}

// LineChartSpec describes a multi-series line chart over categorical x
// positions.
type LineChartSpec struct {
	Title  string
	YLabel string
	XLabel string
	// XLabels are the positions' labels.
	XLabels []string
	Series  []LineSeries
}

// LineChart renders the spec as an SVG document.
func LineChart(spec LineChartSpec) string {
	maxY := 0.0
	for _, s := range spec.Series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && v > maxY {
				maxY = v
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.08

	var b strings.Builder
	header(&b, spec.Title, spec.YLabel, maxY)

	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	n := len(spec.XLabels)
	if n == 0 {
		b.WriteString("</svg>\n")
		return b.String()
	}
	xAt := func(i int) float64 {
		if n == 1 {
			return float64(marginLeft) + plotW/2
		}
		return float64(marginLeft) + plotW*float64(i)/float64(n-1)
	}
	yAt := func(v float64) float64 {
		return float64(marginTop) + plotH*(1-v/maxY)
	}

	// X labels (thinned when crowded).
	step := 1
	if n > 16 {
		step = n / 16
	}
	for i := 0; i < n; i += step {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="end" transform="rotate(-35 %.1f %d)">%s</text>`+"\n",
			xAt(i), chartHeight-marginBottom+16, xAt(i), chartHeight-marginBottom+16, esc(spec.XLabels[i]))
	}

	var names []string
	for si, s := range spec.Series {
		color := palette[si%len(palette)]
		width := 1.6
		if s.Emphasize {
			color = "#CC0000"
			width = 3
		}
		var pts []string
		for i, v := range s.Values {
			if i >= n || math.IsNaN(v) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xAt(i), yAt(v)))
		}
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
			strings.Join(pts, " "), color, width)
		names = append(names, s.Name)
	}
	if len(names) <= 8 {
		legend(&b, names)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// header emits the SVG prologue: canvas, title, axes, y ticks.
func header(b *strings.Builder, title, yLabel string, maxY float64) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartWidth, chartHeight, chartWidth, chartHeight)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartWidth, chartHeight)
	fmt.Fprintf(b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginLeft, esc(title))
	// Axes.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginLeft, marginTop, marginLeft, chartHeight-marginBottom)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginLeft, chartHeight-marginBottom, chartWidth-marginRight, chartHeight-marginBottom)
	// Y label.
	fmt.Fprintf(b, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		(marginTop+chartHeight-marginBottom)/2, (marginTop+chartHeight-marginBottom)/2, esc(yLabel))
	// Y ticks: 5 round intervals.
	plotH := float64(chartHeight - marginTop - marginBottom)
	for i := 0; i <= 5; i++ {
		v := maxY * float64(i) / 5
		y := float64(marginTop) + plotH*(1-float64(i)/5)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, chartWidth-marginRight, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%.2f</text>`+"\n",
			marginLeft-6, y+3, v)
	}
}

// legend emits a legend row under the title.
func legend(b *strings.Builder, names []string) {
	x := marginLeft
	for i, name := range names {
		fmt.Fprintf(b, `<rect x="%d" y="32" width="10" height="10" fill="%s"/>`+"\n",
			x, palette[i%len(palette)])
		fmt.Fprintf(b, `<text x="%d" y="41" font-size="11">%s</text>`+"\n", x+14, esc(name))
		x += 14 + 8*len(name) + 20
	}
}
