// Package simclock provides a virtual clock so that the crawl campaigns —
// which in the paper span 30 days of wall-clock time with 11-minute waits
// between queries — can execute in milliseconds while preserving lock-step
// semantics (every treatment of a search term fires at the same instant)
// and time-dependent engine behaviour (the 10-minute search-history window,
// day-by-day consistency analysis).
//
// Two implementations are provided: Manual, which only moves when Advance is
// called, and the real-time clock returned by Wall for code that genuinely
// wants wall time. Components accept the Clock interface so tests and the
// crawler can substitute a Manual clock.
package simclock

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the engine and the crawler. Implementations must
// be safe for concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks the caller until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Wall returns a Clock backed by real time.
func Wall() Clock { return wallClock{} }

type wallClock struct{}

func (wallClock) Now() time.Time        { return time.Now() }
func (wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// Manual is a virtual clock that only moves when Advance (or Run) is called.
// Goroutines blocked in Sleep are released, in deadline order, as the clock
// passes their wake-up instants.
//
// The zero value is not usable; construct with NewManual.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	sleeper []*sleeper // sorted by deadline
	waiting sync.Cond  // broadcast whenever the sleeper set changes
	// arrived receives a token whenever a new sleeper parks; buffered so
	// a pending signal is never lost while the driver is advancing. See
	// SleeperArrived.
	arrived chan struct{}
	// holds counts workers doing real (wall-clock) work that virtual
	// time must not hop past; see Hold. idle is broadcast when it
	// reaches zero.
	holds int
	idle  sync.Cond
}

type sleeper struct {
	deadline time.Time
	ch       chan struct{}
	// rehold re-acquires a hold at the wake-up instant, atomically with
	// the release — the worker resumes already holding, so the driver
	// cannot hop again before it parks or finishes. See SleepHeld.
	rehold bool
	// passive marks a sleeper that rides the clock instead of driving it:
	// it wakes, in deadline order, whenever an advance crosses its
	// deadline, but it is invisible to NextDeadline — so a driver hopping
	// from sleeper to sleeper never advances virtual time *because* of it.
	// Without this, a permanently re-parking background loop (a health
	// prober) hands DriveUntil an always-available deadline and virtual
	// time races ahead at wall speed whenever the campaign workers are
	// between sleeps. See SleepHeldPassive.
	passive bool
}

// NewManual returns a Manual clock starting at the given instant.
func NewManual(start time.Time) *Manual {
	m := &Manual{now: start, arrived: make(chan struct{}, 1)}
	m.waiting.L = &m.mu
	m.idle.L = &m.mu
	return m
}

// Now returns the current virtual instant.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep blocks until the virtual clock has advanced by d. A non-positive d
// returns immediately.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	s := &sleeper{deadline: m.now.Add(d), ch: make(chan struct{})}
	m.insertLocked(s)
	m.waiting.Broadcast()
	m.mu.Unlock()
	<-s.ch
}

// insertLocked adds s keeping the sleeper slice sorted by deadline.
func (m *Manual) insertLocked(s *sleeper) {
	i := sort.Search(len(m.sleeper), func(i int) bool {
		return m.sleeper[i].deadline.After(s.deadline)
	})
	m.sleeper = append(m.sleeper, nil)
	copy(m.sleeper[i+1:], m.sleeper[i:])
	m.sleeper[i] = s
	select {
	case m.arrived <- struct{}{}:
	default: // a signal is already pending; one token is enough
	}
}

// Holder is the hold/quiesce surface of a clock whose driver must not
// advance virtual time past in-flight real work. Manual implements it;
// use HolderOf to discover it behind the Clock interface.
//
// The protocol: a worker (or its dispatcher, before launching it) calls
// Hold, does its real work — HTTP fetches, parsing — and calls Release
// when done. Drivers (DriveUntil, RunUntilIdle) advance the clock only
// while no holds are out, so a virtual timestamp taken mid-work is the
// instant the work logically started at, not whatever the clock hopped
// to while the I/O was in flight. Without holds, span timelines and any
// other mid-flight clock reads become racy: the driver may hop to a
// parked sleeper's deadline while another worker's fetch is still on the
// wire.
type Holder interface {
	// Hold defers clock advancement until the matching Release.
	Hold()
	// Release undoes one Hold.
	Release()
	// SleepHeld is Sleep for a holding worker: it releases the hold for
	// the duration (so the driver can advance) and re-acquires it at the
	// wake-up instant, atomically — the driver cannot hop past the wake
	// time before the worker resumes.
	SleepHeld(d time.Duration)
}

// HolderOf returns clk's Holder when it has one (Manual does), nil
// otherwise (Wall: real time cannot be held).
func HolderOf(clk Clock) Holder {
	h, _ := clk.(Holder)
	return h
}

// PassiveHolder extends Holder with passive sleeping for background
// maintenance loops that must never drag virtual time forward on their
// own. Manual implements it; discover it with a type assertion on a
// Holder and fall back to SleepHeld when absent.
type PassiveHolder interface {
	Holder
	// SleepHeldPassive is SleepHeld, except the parked sleeper is
	// invisible to drivers choosing the next instant to advance to.
	SleepHeldPassive(d time.Duration)
}

type heldKey struct{}

// WithHeld records in ctx that the caller runs under h.Hold(), so nested
// code that must sleep on the clock (e.g. an injected-latency transport)
// can find the hold and use SleepHeld instead of deadlocking the driver.
// A nil h returns ctx unchanged.
func WithHeld(ctx context.Context, h Holder) context.Context {
	if h == nil {
		return ctx
	}
	return context.WithValue(ctx, heldKey{}, h)
}

// HeldFrom returns the Holder recorded by WithHeld, or nil.
func HeldFrom(ctx context.Context) Holder {
	h, _ := ctx.Value(heldKey{}).(Holder)
	return h
}

// Hold marks the caller (or a worker it is about to launch) as doing
// real work; drivers will not advance the clock until Release.
func (m *Manual) Hold() {
	m.mu.Lock()
	m.holds++
	m.mu.Unlock()
}

// Release undoes one Hold, waking any driver waiting to advance.
func (m *Manual) Release() {
	m.mu.Lock()
	if m.holds > 0 {
		m.holds--
	}
	if m.holds == 0 {
		m.idle.Broadcast()
	}
	m.mu.Unlock()
}

// SleepHeld releases one hold, sleeps d on the virtual clock, and
// re-acquires the hold atomically at the wake-up instant (inside the
// Advance that releases the sleeper), so the driver cannot hop past the
// wake time before the worker runs again. A non-positive d keeps the
// hold and returns immediately.
func (m *Manual) SleepHeld(d time.Duration) {
	m.sleepHeld(d, false)
}

// SleepHeldPassive is SleepHeld for background maintenance loops: the
// sleeper still wakes — re-holding — when the clock crosses its deadline,
// but it never becomes the driver's next hop target (NextDeadline skips
// it). Campaign sleepers drive the clock; passive sleepers ride it. A
// loop that re-parks forever (a health prober ticking every interval)
// must sleep passively, or DriveUntil would hop its deadlines at wall
// speed whenever the campaign workers are momentarily between sleeps,
// racing virtual time arbitrarily far ahead of the campaign.
func (m *Manual) SleepHeldPassive(d time.Duration) {
	m.sleepHeld(d, true)
}

func (m *Manual) sleepHeld(d time.Duration, passive bool) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	if m.holds > 0 {
		m.holds--
	}
	if m.holds == 0 {
		m.idle.Broadcast()
	}
	s := &sleeper{deadline: m.now.Add(d), ch: make(chan struct{}), rehold: true, passive: passive}
	m.insertLocked(s)
	m.waiting.Broadcast()
	m.mu.Unlock()
	<-s.ch
}

// Holds reports the number of holds currently out.
func (m *Manual) Holds() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.holds
}

// quiesce blocks until no holds are out.
func (m *Manual) quiesce() {
	m.mu.Lock()
	for m.holds > 0 {
		m.idle.Wait()
	}
	m.mu.Unlock()
}

// Advance moves the clock forward by d, releasing — in deadline order — every
// sleeper whose deadline is reached. Advance sets the clock to each
// intermediate deadline before releasing the sleeper blocked on it, so a
// released goroutine observing Now sees exactly its wake-up instant or later.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	m.mu.Lock()
	target := m.now.Add(d)
	for len(m.sleeper) > 0 && !m.sleeper[0].deadline.After(target) {
		s := m.sleeper[0]
		m.sleeper = m.sleeper[1:]
		m.now = s.deadline
		if s.rehold {
			m.holds++
		}
		close(s.ch)
	}
	m.now = target
	m.mu.Unlock()
}

// AdvanceTo moves the clock to instant t (no-op if t is not after Now).
func (m *Manual) AdvanceTo(t time.Time) {
	m.mu.Lock()
	d := t.Sub(m.now)
	m.mu.Unlock()
	m.Advance(d)
}

// Sleepers returns the number of goroutines currently blocked in Sleep.
// It is primarily useful to drivers that want to advance the clock only
// once all workers have parked (see WaitForSleepers).
func (m *Manual) Sleepers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sleeper)
}

// WaitForSleepers blocks until at least n goroutines are parked in Sleep.
// It lets a driver implement the "advance once everyone is waiting" pattern
// without polling.
func (m *Manual) WaitForSleepers(n int) {
	m.mu.Lock()
	for len(m.sleeper) < n {
		m.waiting.Wait()
	}
	m.mu.Unlock()
}

// NextDeadline reports the earliest pending driving sleeper deadline —
// passive sleepers (SleepHeldPassive) are skipped, so a driver consulting
// it never advances the clock on a background loop's account. ok is false
// when no driving goroutine is sleeping.
func (m *Manual) NextDeadline() (t time.Time, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.sleeper {
		if !s.passive {
			return s.deadline, true
		}
	}
	return time.Time{}, false
}

// nextAnyDeadline reports the earliest pending deadline including passive
// sleepers. Drivers that have already decided to advance (a driving
// sleeper exists) hop here first, so a passive sleeper parked earlier
// wakes — and, via rehold, finishes its work under quiesce — strictly
// before the clock reaches the driving deadline. That keeps background
// sweeps serialized against campaign rounds even at shared instants.
func (m *Manual) nextAnyDeadline() (t time.Time, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sleeper) == 0 {
		return time.Time{}, false
	}
	return m.sleeper[0].deadline, true
}

// SleeperArrived returns a channel that receives a token when a goroutine
// parks in Sleep. The channel is buffered (capacity one), so a signal sent
// while the driver is busy advancing is held rather than lost; a stale
// token only costs the driver one extra NextDeadline check. Drivers use it
// to block — instead of busy-polling — while workers are off doing real
// (wall-clock) work between virtual sleeps.
func (m *Manual) SleeperArrived() <-chan struct{} { return m.arrived }

// DriveUntil advances virtual time until done is closed (or receives).
// Whenever a sleeper is pending, the clock hops to its deadline; when none
// is, the driver blocks until either a new sleeper parks or done fires —
// no polling, no burned core. This is the campaign-driver loop: start the
// campaign in a goroutine, close done when it returns, and DriveUntil
// elides every idle wait while the workers' real fetch work proceeds at
// hardware speed.
func (m *Manual) DriveUntil(done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		if _, ok := m.NextDeadline(); ok {
			// Let in-flight real work finish before hopping (see Holder),
			// then hop to the earliest deadline of ANY sleeper — passive
			// included, and re-read after quiescing: a worker that was
			// mid-fetch may have parked an earlier one while we waited.
			// Passive sleepers never trigger this branch, but once a
			// driving deadline exists the hop must visit each earlier
			// passive deadline first, one quiesce per hop, so background
			// sweeps land at their exact instants instead of racing the
			// workers released at the driving deadline.
			m.quiesce()
			if next, ok := m.nextAnyDeadline(); ok {
				m.AdvanceTo(next)
			}
			continue
		}
		// No sleeper: workers are mid-fetch (or finishing). Block until
		// one parks or the campaign completes.
		select {
		case <-done:
			return
		case <-m.arrived:
		}
	}
}

// RunUntilIdle repeatedly advances the clock to the next pending deadline
// until no sleepers remain. It is used by drivers that have launched a known
// set of workers and want virtual time to free-run to completion. The
// settle function is called between hops to let the driver wait for workers
// to re-park (pass nil to skip).
func (m *Manual) RunUntilIdle(settle func()) {
	for {
		next, ok := m.NextDeadline()
		if !ok {
			return
		}
		m.quiesce()
		// Hop to the earliest deadline of any sleeper — an earlier passive
		// deadline (or one parked while we quiesced) is visited on its own
		// hop, keeping background sweeps serialized against workers.
		if n2, ok2 := m.nextAnyDeadline(); ok2 && n2.Before(next) {
			next = n2
		}
		m.AdvanceTo(next)
		if settle != nil {
			settle()
		}
	}
}
