// Package simclock provides a virtual clock so that the crawl campaigns —
// which in the paper span 30 days of wall-clock time with 11-minute waits
// between queries — can execute in milliseconds while preserving lock-step
// semantics (every treatment of a search term fires at the same instant)
// and time-dependent engine behaviour (the 10-minute search-history window,
// day-by-day consistency analysis).
//
// Two implementations are provided: Manual, which only moves when Advance is
// called, and the real-time clock returned by Wall for code that genuinely
// wants wall time. Components accept the Clock interface so tests and the
// crawler can substitute a Manual clock.
package simclock

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the engine and the crawler. Implementations must
// be safe for concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks the caller until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Wall returns a Clock backed by real time.
func Wall() Clock { return wallClock{} }

type wallClock struct{}

func (wallClock) Now() time.Time        { return time.Now() }
func (wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// Manual is a virtual clock that only moves when Advance (or Run) is called.
// Goroutines blocked in Sleep are released, in deadline order, as the clock
// passes their wake-up instants.
//
// The zero value is not usable; construct with NewManual.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	sleeper []*sleeper // sorted by deadline
	waiting sync.Cond  // broadcast whenever the sleeper set changes
	// arrived receives a token whenever a new sleeper parks; buffered so
	// a pending signal is never lost while the driver is advancing. See
	// SleeperArrived.
	arrived chan struct{}
}

type sleeper struct {
	deadline time.Time
	ch       chan struct{}
}

// NewManual returns a Manual clock starting at the given instant.
func NewManual(start time.Time) *Manual {
	m := &Manual{now: start, arrived: make(chan struct{}, 1)}
	m.waiting.L = &m.mu
	return m
}

// Now returns the current virtual instant.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep blocks until the virtual clock has advanced by d. A non-positive d
// returns immediately.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	s := &sleeper{deadline: m.now.Add(d), ch: make(chan struct{})}
	m.insertLocked(s)
	m.waiting.Broadcast()
	m.mu.Unlock()
	<-s.ch
}

// insertLocked adds s keeping the sleeper slice sorted by deadline.
func (m *Manual) insertLocked(s *sleeper) {
	i := sort.Search(len(m.sleeper), func(i int) bool {
		return m.sleeper[i].deadline.After(s.deadline)
	})
	m.sleeper = append(m.sleeper, nil)
	copy(m.sleeper[i+1:], m.sleeper[i:])
	m.sleeper[i] = s
	select {
	case m.arrived <- struct{}{}:
	default: // a signal is already pending; one token is enough
	}
}

// Advance moves the clock forward by d, releasing — in deadline order — every
// sleeper whose deadline is reached. Advance sets the clock to each
// intermediate deadline before releasing the sleeper blocked on it, so a
// released goroutine observing Now sees exactly its wake-up instant or later.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	m.mu.Lock()
	target := m.now.Add(d)
	for len(m.sleeper) > 0 && !m.sleeper[0].deadline.After(target) {
		s := m.sleeper[0]
		m.sleeper = m.sleeper[1:]
		m.now = s.deadline
		close(s.ch)
	}
	m.now = target
	m.mu.Unlock()
}

// AdvanceTo moves the clock to instant t (no-op if t is not after Now).
func (m *Manual) AdvanceTo(t time.Time) {
	m.mu.Lock()
	d := t.Sub(m.now)
	m.mu.Unlock()
	m.Advance(d)
}

// Sleepers returns the number of goroutines currently blocked in Sleep.
// It is primarily useful to drivers that want to advance the clock only
// once all workers have parked (see WaitForSleepers).
func (m *Manual) Sleepers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sleeper)
}

// WaitForSleepers blocks until at least n goroutines are parked in Sleep.
// It lets a driver implement the "advance once everyone is waiting" pattern
// without polling.
func (m *Manual) WaitForSleepers(n int) {
	m.mu.Lock()
	for len(m.sleeper) < n {
		m.waiting.Wait()
	}
	m.mu.Unlock()
}

// NextDeadline reports the earliest pending sleeper deadline. ok is false
// when no goroutine is sleeping.
func (m *Manual) NextDeadline() (t time.Time, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sleeper) == 0 {
		return time.Time{}, false
	}
	return m.sleeper[0].deadline, true
}

// SleeperArrived returns a channel that receives a token when a goroutine
// parks in Sleep. The channel is buffered (capacity one), so a signal sent
// while the driver is busy advancing is held rather than lost; a stale
// token only costs the driver one extra NextDeadline check. Drivers use it
// to block — instead of busy-polling — while workers are off doing real
// (wall-clock) work between virtual sleeps.
func (m *Manual) SleeperArrived() <-chan struct{} { return m.arrived }

// DriveUntil advances virtual time until done is closed (or receives).
// Whenever a sleeper is pending, the clock hops to its deadline; when none
// is, the driver blocks until either a new sleeper parks or done fires —
// no polling, no burned core. This is the campaign-driver loop: start the
// campaign in a goroutine, close done when it returns, and DriveUntil
// elides every idle wait while the workers' real fetch work proceeds at
// hardware speed.
func (m *Manual) DriveUntil(done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		if next, ok := m.NextDeadline(); ok {
			m.AdvanceTo(next)
			continue
		}
		// No sleeper: workers are mid-fetch (or finishing). Block until
		// one parks or the campaign completes.
		select {
		case <-done:
			return
		case <-m.arrived:
		}
	}
}

// RunUntilIdle repeatedly advances the clock to the next pending deadline
// until no sleepers remain. It is used by drivers that have launched a known
// set of workers and want virtual time to free-run to completion. The
// settle function is called between hops to let the driver wait for workers
// to re-park (pass nil to skip).
func (m *Manual) RunUntilIdle(settle func()) {
	for {
		next, ok := m.NextDeadline()
		if !ok {
			return
		}
		m.AdvanceTo(next)
		if settle != nil {
			settle()
		}
	}
}
