package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

func TestWallClock(t *testing.T) {
	c := Wall()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall().Now() = %v outside [%v, %v]", got, before, after)
	}
	start := time.Now()
	c.Sleep(time.Millisecond)
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("Wall().Sleep(1ms) returned after %v", elapsed)
	}
}

func TestManualNowAndAdvance(t *testing.T) {
	m := NewManual(epoch)
	if !m.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", m.Now(), epoch)
	}
	m.Advance(11 * time.Minute)
	if want := epoch.Add(11 * time.Minute); !m.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", m.Now(), want)
	}
	// Negative advance is a no-op.
	m.Advance(-time.Hour)
	if want := epoch.Add(11 * time.Minute); !m.Now().Equal(want) {
		t.Fatalf("Now after negative advance = %v, want %v", m.Now(), want)
	}
}

func TestManualSleepReleasesAtDeadline(t *testing.T) {
	m := NewManual(epoch)
	done := make(chan time.Time, 1)
	go func() {
		m.Sleep(10 * time.Minute)
		done <- m.Now()
	}()
	m.WaitForSleepers(1)
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	m.Advance(10 * time.Minute)
	woke := <-done
	if woke.Before(epoch.Add(10 * time.Minute)) {
		t.Fatalf("woke at %v, want >= %v", woke, epoch.Add(10*time.Minute))
	}
}

func TestManualSleepNonPositive(t *testing.T) {
	m := NewManual(epoch)
	doneZero := make(chan struct{})
	go func() {
		m.Sleep(0)
		m.Sleep(-time.Second)
		close(doneZero)
	}()
	select {
	case <-doneZero:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep(<=0) blocked")
	}
}

func TestManualReleasesInDeadlineOrder(t *testing.T) {
	m := NewManual(epoch)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	durations := []time.Duration{30 * time.Minute, 10 * time.Minute, 20 * time.Minute}
	for i, d := range durations {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			m.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	m.WaitForSleepers(3)
	// Advance stepwise so each wake is observed before the next deadline
	// fires; a single large Advance would release all three channels at
	// once and the goroutine scheduler could record them in any order.
	for remaining := 2; remaining >= 0; remaining-- {
		m.Advance(10 * time.Minute)
		for m.Sleepers() > remaining {
			time.Sleep(time.Millisecond)
		}
		// Wait until the woken goroutine has recorded itself.
		for {
			mu.Lock()
			n := len(order)
			mu.Unlock()
			if n >= 3-remaining {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	// Sleeper 1 (10m) must wake before 2 (20m) before 0 (30m).
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestManualPartialAdvance(t *testing.T) {
	m := NewManual(epoch)
	var woke atomic.Int32
	var wg sync.WaitGroup
	for _, d := range []time.Duration{5 * time.Minute, 15 * time.Minute} {
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			m.Sleep(d)
			woke.Add(1)
		}(d)
	}
	m.WaitForSleepers(2)
	m.Advance(10 * time.Minute)
	// Only the 5-minute sleeper should have woken.
	deadlineCheck := time.After(2 * time.Second)
	for woke.Load() < 1 {
		select {
		case <-deadlineCheck:
			t.Fatal("first sleeper never woke")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if n := m.Sleepers(); n != 1 {
		t.Fatalf("Sleepers = %d, want 1", n)
	}
	m.Advance(10 * time.Minute)
	wg.Wait()
	if woke.Load() != 2 {
		t.Fatalf("woke = %d, want 2", woke.Load())
	}
}

func TestManualAdvanceTo(t *testing.T) {
	m := NewManual(epoch)
	target := epoch.Add(3 * time.Hour)
	m.AdvanceTo(target)
	if !m.Now().Equal(target) {
		t.Fatalf("Now = %v, want %v", m.Now(), target)
	}
	// AdvanceTo into the past is a no-op.
	m.AdvanceTo(epoch)
	if !m.Now().Equal(target) {
		t.Fatalf("Now after past AdvanceTo = %v, want %v", m.Now(), target)
	}
}

func TestNextDeadline(t *testing.T) {
	m := NewManual(epoch)
	if _, ok := m.NextDeadline(); ok {
		t.Fatal("NextDeadline ok with no sleepers")
	}
	go m.Sleep(7 * time.Minute)
	m.WaitForSleepers(1)
	d, ok := m.NextDeadline()
	if !ok || !d.Equal(epoch.Add(7*time.Minute)) {
		t.Fatalf("NextDeadline = %v,%v want %v,true", d, ok, epoch.Add(7*time.Minute))
	}
	m.Advance(7 * time.Minute)
}

func TestRunUntilIdle(t *testing.T) {
	m := NewManual(epoch)
	const workers = 8
	var wg sync.WaitGroup
	var total atomic.Int64
	for i := 1; i <= workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Sleep(time.Duration(i) * time.Minute)
			total.Add(1)
		}(i)
	}
	m.WaitForSleepers(workers)
	m.RunUntilIdle(nil)
	wg.Wait()
	if total.Load() != workers {
		t.Fatalf("total woken = %d, want %d", total.Load(), workers)
	}
	if want := epoch.Add(workers * time.Minute); !m.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", m.Now(), want)
	}
}

func TestManualConcurrentSleepAdvanceStress(t *testing.T) {
	m := NewManual(epoch)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				m.Sleep(time.Duration(i%7+1) * time.Second)
			}
		}(i)
	}
	fin := make(chan struct{})
	go func() { wg.Wait(); close(fin) }()
	for {
		select {
		case <-fin:
			return
		default:
			m.Advance(time.Second)
		}
	}
}

func TestRunUntilIdleWithSettle(t *testing.T) {
	m := NewManual(epoch)
	var settles atomic.Int32
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Sleep(time.Duration(i) * time.Minute)
		}(i)
	}
	m.WaitForSleepers(3)
	m.RunUntilIdle(func() { settles.Add(1) })
	wg.Wait()
	if settles.Load() == 0 {
		t.Fatal("settle callback never invoked")
	}
	if m.Sleepers() != 0 {
		t.Fatalf("sleepers remain: %d", m.Sleepers())
	}
}

func TestDriveUntilElidesSleeps(t *testing.T) {
	m := NewManual(epoch)
	done := make(chan struct{})
	var rounds atomic.Int64
	go func() {
		defer close(done)
		// A worker that alternates real (instant) work with long virtual
		// sleeps — the crawler's shape. DriveUntil must complete all of it
		// without wall-clock waiting.
		for i := 0; i < 50; i++ {
			m.Sleep(11 * time.Minute)
			rounds.Add(1)
		}
	}()
	start := time.Now()
	m.DriveUntil(done)
	if got := rounds.Load(); got != 50 {
		t.Fatalf("rounds = %d, want 50", got)
	}
	if want := epoch.Add(50 * 11 * time.Minute); !m.Now().Equal(want) {
		t.Fatalf("clock = %v, want %v", m.Now(), want)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DriveUntil took %v for 50 virtual sleeps", elapsed)
	}
}

func TestDriveUntilBlocksWithoutSpinning(t *testing.T) {
	m := NewManual(epoch)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Real work with no virtual sleep registered yet: the driver has
		// nothing to advance and must park on the arrival channel rather
		// than spin.
		time.Sleep(50 * time.Millisecond)
		m.Sleep(time.Hour)
	}()
	m.DriveUntil(done)
	if want := epoch.Add(time.Hour); !m.Now().Equal(want) {
		t.Fatalf("clock = %v, want %v", m.Now(), want)
	}
}

func TestSleeperArrivedSignals(t *testing.T) {
	m := NewManual(epoch)
	go m.Sleep(time.Minute)
	select {
	case <-m.SleeperArrived():
	case <-time.After(2 * time.Second):
		t.Fatal("no arrival signal for a parked sleeper")
	}
	m.Advance(time.Minute)
}

// TestHoldBlocksDriver pins the quiesce protocol: with a hold out, the
// driver must not hop to a parked sleeper's deadline; the hop happens
// only after Release.
func TestHoldBlocksDriver(t *testing.T) {
	m := NewManual(epoch)
	m.Hold()
	go m.Sleep(time.Minute) // parks a deadline the driver wants to hop to
	<-m.SleeperArrived()

	done := make(chan struct{})
	go func() {
		// Give the driver a beat to (wrongly) advance, then check.
		time.Sleep(50 * time.Millisecond)
		if !m.Now().Equal(epoch) {
			t.Error("driver advanced past an out hold")
		}
		m.Release()
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	m.DriveUntil(done)
	if want := epoch.Add(time.Minute); !m.Now().Equal(want) {
		t.Fatalf("clock = %v, want %v after release", m.Now(), want)
	}
}

// TestSleepHeldReacquiresAtWake checks the atomic re-hold: a worker in
// SleepHeld wakes up already holding, so the driver cannot hop past the
// wake instant before the worker parks again.
func TestSleepHeldReacquiresAtWake(t *testing.T) {
	m := NewManual(epoch)
	m.Hold()
	woke := make(chan struct{})
	go func() {
		m.SleepHeld(time.Minute)
		close(woke)
	}()
	<-m.SleeperArrived()
	if m.Holds() != 0 {
		t.Fatalf("holds = %d during SleepHeld, want 0", m.Holds())
	}
	m.Advance(time.Minute)
	<-woke
	if m.Holds() != 1 {
		t.Fatalf("holds = %d after wake, want 1 (re-acquired)", m.Holds())
	}
	// A second sleeper parks; the driver must now wait for the worker.
	go m.Sleep(time.Minute)
	<-m.SleeperArrived()
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		if !m.Now().Equal(epoch.Add(time.Minute)) {
			t.Error("driver hopped past a re-acquired hold")
		}
		m.Release()
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	m.DriveUntil(done)
	if want := epoch.Add(2 * time.Minute); !m.Now().Equal(want) {
		t.Fatalf("clock = %v, want %v", m.Now(), want)
	}
}

// TestHolderOfDiscovery: Manual exposes the Holder surface, Wall does not.
func TestHolderOfDiscovery(t *testing.T) {
	if HolderOf(NewManual(epoch)) == nil {
		t.Fatal("Manual is not discovered as a Holder")
	}
	if HolderOf(Wall()) != nil {
		t.Fatal("Wall pretends to be holdable")
	}
	// Release without Hold is a clamped no-op, not a corrupted counter.
	m := NewManual(epoch)
	m.Release()
	if m.Holds() != 0 {
		t.Fatalf("holds = %d after spurious release", m.Holds())
	}
}
