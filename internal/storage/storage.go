// Package storage persists crawl output. Observations — one fetched result
// page plus its experimental coordinates — are stored as JSON Lines, the
// append-friendly format long crawls want; analysis tables are written as
// CSV.
package storage

import (
	"bufio"
	"compress/gzip"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"geoserp/internal/serp"
)

// Role distinguishes the two members of a measurement pair (§2.2): every
// treatment has a control issuing the identical query at the same moment
// from the same location, so noise can be separated from personalization.
type Role string

const (
	// Treatment is the measured browser instance.
	Treatment Role = "treatment"
	// Control is the simultaneous duplicate used to estimate noise.
	Control Role = "control"
)

// Observation is one captured result page with its experimental context.
type Observation struct {
	// Phase labels the campaign phase the observation belongs to ("" for
	// crawls predating phase labelling).
	Phase string `json:"phase,omitempty"`
	// Term is the query term.
	Term string `json:"term"`
	// Category is the query category (queries.Category.Short()).
	Category string `json:"category"`
	// Granularity is the vantage-point scale (geo.Granularity.Short()).
	Granularity string `json:"granularity"`
	// LocationID is the vantage point's slug.
	LocationID string `json:"location_id"`
	// Role is treatment or control.
	Role Role `json:"role"`
	// Day is the 0-based campaign day.
	Day int `json:"day"`
	// MachineIP is the crawl machine the query was issued from.
	MachineIP string `json:"machine_ip"`
	// Datacenter is the replica that served the page.
	Datacenter string `json:"datacenter,omitempty"`
	// TraceID is the telemetry trace ID the crawler minted for this
	// query (also kept on Page.TraceID); it joins the stored record to
	// the crawler's and server's log lines. Empty for untraced crawls.
	TraceID string `json:"trace_id,omitempty"`
	// FetchedAt is the (virtual) fetch time.
	FetchedAt time.Time `json:"fetched_at"`
	// Page is the parsed result page (nil when Failed).
	Page *serp.Page `json:"page,omitempty"`
	// Failed marks a fetch that still failed after the retry policy was
	// exhausted. The slot is recorded — the paper's crawls likewise kept
	// note of corrupted SERPs instead of aborting a multi-day phase — but
	// carries no Page; analysis skips it.
	Failed bool `json:"failed,omitempty"`
	// Err is the final fetch error for a Failed observation.
	Err string `json:"err,omitempty"`
	// Shed marks a Failed observation whose final error was the server
	// shedding load (503 under admission control) rather than a broken
	// fetch. Analysis treats both as missing data, but capacity planning
	// wants them apart: a shed page was the server's choice, not the
	// network's.
	Shed bool `json:"shed,omitempty"`
}

// Validate checks the observation is structurally complete. A Failed
// observation must carry its error and no page; a successful one must
// carry a valid page.
func (o *Observation) Validate() error {
	switch {
	case o.Term == "":
		return fmt.Errorf("storage: observation missing term")
	case o.Role != Treatment && o.Role != Control:
		return fmt.Errorf("storage: observation has bad role %q", o.Role)
	case o.LocationID == "":
		return fmt.Errorf("storage: observation missing location")
	}
	if o.Failed {
		if o.Err == "" {
			return fmt.Errorf("storage: failed observation missing error")
		}
		if o.Page != nil {
			return fmt.Errorf("storage: failed observation carries a page")
		}
		return nil
	}
	if o.Shed {
		return fmt.Errorf("storage: shed observation not marked failed")
	}
	if o.Page == nil {
		return fmt.Errorf("storage: observation missing page")
	}
	return o.Page.Validate()
}

// WriteJSONL streams observations to w, one JSON document per line.
func WriteJSONL(w io.Writer, obs []Observation) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range obs {
		if err := enc.Encode(&obs[i]); err != nil {
			return fmt.Errorf("storage: encode observation %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL stream of observations.
func ReadJSONL(r io.Reader) ([]Observation, error) {
	var out []Observation
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var o Observation
		if err := json.Unmarshal(sc.Bytes(), &o); err != nil {
			return nil, fmt.Errorf("storage: line %d: %w", line, err)
		}
		out = append(out, o)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("storage: scan: %w", err)
	}
	return out, nil
}

// SaveJSONL writes observations to a file path. Paths ending in ".gz" are
// gzip-compressed — a full campaign is ~140k observations, an order of
// magnitude smaller on disk compressed.
func SaveJSONL(path string, obs []Observation) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: create %s: %w", path, err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		if err := WriteJSONL(gz, obs); err != nil {
			return err
		}
		if err := gz.Close(); err != nil {
			return fmt.Errorf("storage: gzip %s: %w", path, err)
		}
	} else if err := WriteJSONL(f, obs); err != nil {
		return err
	}
	return f.Close()
}

// AppendJSONL appends observations to a plain-JSONL file, creating it if
// needed. This is the checkpoint write path: each completed term sweep is
// flushed as it finishes, so a killed campaign loses at most one sweep.
// Gzip paths are rejected — gzip streams cannot be append-extended.
func AppendJSONL(path string, obs []Observation) error {
	if strings.HasSuffix(path, ".gz") {
		return fmt.Errorf("storage: cannot append to gzip file %s", path)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: append %s: %w", path, err)
	}
	if err := WriteJSONL(f, obs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSONL reads observations from a file path, transparently
// decompressing ".gz" files.
func LoadJSONL(path string) ([]Observation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("storage: gunzip %s: %w", path, err)
		}
		defer gz.Close()
		return ReadJSONL(gz)
	}
	return ReadJSONL(f)
}

// Table is a simple header+rows table for CSV export of analysis results.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row; it panics on width mismatch, which is a
// programming error in the analysis code.
func (t *Table) AddRow(cells ...string) {
	if len(t.Header) > 0 && len(cells) != len(t.Header) {
		panic(fmt.Sprintf("storage: row width %d != header width %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteCSV writes the table to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return fmt.Errorf("storage: write header: %w", err)
		}
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("storage: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to a file path.
func (t *Table) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: create %s: %w", path, err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
