package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Checkpoint records a campaign's progress so a killed crawl can resume
// from the last completed term sweep instead of from zero — the fail-soft
// property the paper's 10-day, 44-machine campaigns needed against a live,
// flaky service.
//
// The cursor is deliberately simple: Sweeps counts completed lock-step
// term sweeps in the campaign's deterministic iteration order (phase →
// granularity → day → term). On resume the crawler replays that order,
// skipping the first Sweeps sweeps (while still advancing the virtual
// clock, so day alignment and the engine's day counter are preserved) and
// re-executing everything after. Observations counts the JSONL records the
// observation file held when the cursor was written; any trailing records
// beyond it — a sweep appended just before a crash, or a torn final line —
// are discarded on load and re-fetched, which is safe because per-request
// noise is keyed on deterministic trace IDs.
type Checkpoint struct {
	// Sweeps is the number of completed term sweeps.
	Sweeps int `json:"sweeps"`
	// Observations is how many observation records the partial JSONL file
	// held when this cursor was saved.
	Observations int `json:"observations"`
	// Phase, Granularity, Day, and Term describe the last completed sweep
	// (informational — the cursor is Sweeps).
	Phase       string `json:"phase,omitempty"`
	Granularity string `json:"granularity,omitempty"`
	Day         int    `json:"day,omitempty"`
	Term        string `json:"term,omitempty"`
	// UpdatedAt is the campaign-clock time the checkpoint was written —
	// virtual under a Manual clock, so resumed virtual-time runs produce
	// byte-identical checkpoint files.
	UpdatedAt time.Time `json:"updated_at"`
}

// SaveCheckpoint atomically writes the checkpoint: the JSON goes to a
// temporary file in the same directory, then renames over path, so a crash
// mid-write can never leave a torn cursor.
func SaveCheckpoint(path string, ck Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("storage: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: install checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint. A missing file is not an error: it
// returns ok=false, meaning "start from zero".
func LoadCheckpoint(path string) (ck Checkpoint, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("storage: read checkpoint %s: %w", path, err)
	}
	if err := json.Unmarshal(data, &ck); err != nil {
		return Checkpoint{}, false, fmt.Errorf("storage: parse checkpoint %s: %w", path, err)
	}
	if ck.Sweeps < 0 || ck.Observations < 0 {
		return Checkpoint{}, false, fmt.Errorf("storage: checkpoint %s has negative cursor", path)
	}
	return ck, true, nil
}

// LoadCheckpointObservations reads the partial observation file referenced
// by a checkpoint, keeping only the first ck.Observations records. Records
// past the cursor (appended after the cursor was last saved) and a torn
// trailing line (a crash mid-append) are dropped — the sweeps they came
// from will simply be re-executed. A missing file yields ck.Observations=0
// semantics only when the cursor agrees.
func LoadCheckpointObservations(path string, ck Checkpoint) ([]Observation, error) {
	obs, err := LoadJSONL(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			if ck.Observations == 0 {
				return nil, nil
			}
			return nil, err
		}
		// A torn trailing line makes LoadJSONL fail outright; fall back to
		// the tolerant scan that keeps every whole record.
		obs, err = loadJSONLPrefix(path)
		if err != nil {
			return nil, err
		}
	}
	if len(obs) < ck.Observations {
		return nil, fmt.Errorf("storage: checkpoint expects %d observations but %s holds %d",
			ck.Observations, path, len(obs))
	}
	return obs[:ck.Observations], nil
}

// loadJSONLPrefix reads observations until the first unparsable line and
// returns everything before it.
func loadJSONLPrefix(path string) ([]Observation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	defer f.Close()
	all, err := ReadJSONL(f)
	if err == nil {
		return all, nil
	}
	// Re-scan keeping whole records only.
	if _, serr := f.Seek(0, 0); serr != nil {
		return nil, fmt.Errorf("storage: rewind %s: %w", path, serr)
	}
	var out []Observation
	dec := json.NewDecoder(f)
	for {
		var o Observation
		if derr := dec.Decode(&o); derr != nil {
			return out, nil
		}
		out = append(out, o)
	}
}
