package storage

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"geoserp/internal/serp"
)

func ckObs(term string, role Role) Observation {
	return Observation{
		Phase:       "p",
		Term:        term,
		Category:    "local",
		Granularity: "county",
		LocationID:  "loc-1",
		Role:        role,
		FetchedAt:   time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC),
		Page: &serp.Page{
			Query:    term,
			Location: "1.000000,2.000000",
			Cards: []serp.Card{{
				Type:    serp.Organic,
				Results: []serp.Result{{URL: "https://a/", Title: "A"}},
			}},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if _, ok, err := LoadCheckpoint(path); err != nil || ok {
		t.Fatalf("missing checkpoint: ok=%v err=%v, want absent", ok, err)
	}
	want := Checkpoint{Sweeps: 7, Observations: 30, Phase: "p", Granularity: "county", Day: 1, Term: "Coffee"}
	if err := SaveCheckpoint(path, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadCheckpoint(path)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	got.UpdatedAt = want.UpdatedAt
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestCheckpointSaveIsAtomicOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	for i := 1; i <= 3; i++ {
		if err := SaveCheckpoint(path, Checkpoint{Sweeps: i}); err != nil {
			t.Fatal(err)
		}
	}
	ck, ok, err := LoadCheckpoint(path)
	if err != nil || !ok || ck.Sweeps != 3 {
		t.Fatalf("ck=%+v ok=%v err=%v", ck, ok, err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the checkpoint", len(entries))
	}
}

func TestCheckpointRejectsCorruptCursor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if err := os.WriteFile(path, []byte(`{"sweeps":-1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("negative cursor accepted")
	}
}

func TestLoadCheckpointObservationsDropsPastCursor(t *testing.T) {
	dir := t.TempDir()
	obsPath := filepath.Join(dir, "obs.jsonl")
	obs := []Observation{ckObs("A", Treatment), ckObs("A", Control), ckObs("B", Treatment), ckObs("B", Control)}
	if err := AppendJSONL(obsPath, obs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := AppendJSONL(obsPath, obs[2:]); err != nil {
		t.Fatal(err)
	}
	// Cursor only acknowledges the first sweep: the second sweep's records
	// (appended before the crash) must be dropped.
	got, err := LoadCheckpointObservations(obsPath, Checkpoint{Sweeps: 1, Observations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Term != "A" || got[1].Term != "A" {
		t.Fatalf("got %d observations, want the 2 sweep-A records", len(got))
	}
}

func TestLoadCheckpointObservationsToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	obsPath := filepath.Join(dir, "obs.jsonl")
	if err := AppendJSONL(obsPath, []Observation{ckObs("A", Treatment), ckObs("A", Control)}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unparsable trailing line.
	f, err := os.OpenFile(obsPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"phase":"p","term":"B","cat`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := LoadCheckpointObservations(obsPath, Checkpoint{Sweeps: 1, Observations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d observations, want 2 whole records", len(got))
	}
	// A cursor pointing past what the file holds is an error, not silent
	// truncation of the campaign.
	if _, err := LoadCheckpointObservations(obsPath, Checkpoint{Sweeps: 2, Observations: 4}); err == nil {
		t.Fatal("cursor past file contents accepted")
	}
}

func TestAppendJSONLRejectsGzip(t *testing.T) {
	if err := AppendJSONL(filepath.Join(t.TempDir(), "x.jsonl.gz"), nil); err == nil {
		t.Fatal("gzip append accepted")
	}
}

func TestFailedObservationValidate(t *testing.T) {
	o := ckObs("A", Treatment)
	o.Page = nil
	o.Failed = true
	o.Err = "browser: fetch: injected"
	if err := o.Validate(); err != nil {
		t.Fatalf("failed observation rejected: %v", err)
	}
	o.Err = ""
	if err := o.Validate(); err == nil {
		t.Fatal("failed observation without error accepted")
	}
	o.Err = "x"
	o.Page = ckObs("A", Treatment).Page
	if err := o.Validate(); err == nil {
		t.Fatal("failed observation with a page accepted")
	}
}
