package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"geoserp/internal/serp"
)

func sampleObs(term string, role Role) Observation {
	return Observation{
		Term:        term,
		Category:    "local",
		Granularity: "county",
		LocationID:  "district/district-01",
		Role:        role,
		Day:         2,
		MachineIP:   "10.44.7.3",
		Datacenter:  "dc-0",
		FetchedAt:   time.Date(2015, 6, 3, 12, 0, 0, 0, time.UTC),
		Page: &serp.Page{
			Query:    term,
			Location: "41.499300,-81.694400",
			Cards: []serp.Card{
				{Type: serp.Organic, Results: []serp.Result{{URL: "https://a/", Title: "A"}}},
				{Type: serp.Maps, Results: []serp.Result{
					{URL: "https://m1/", Title: "M1"},
					{URL: "https://m2/", Title: "M2"},
				}},
			},
		},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	obs := []Observation{sampleObs("Coffee", Treatment), sampleObs("Coffee", Control)}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, obs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("lines = %d, want 2", got)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d observations", len(back))
	}
	if back[0].Term != "Coffee" || back[0].Role != Treatment || back[1].Role != Control {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if back[0].Page.LinkCount() != 3 {
		t.Fatalf("page link count = %d", back[0].Page.LinkCount())
	}
	if !back[0].FetchedAt.Equal(obs[0].FetchedAt) {
		t.Fatalf("time mismatch: %v", back[0].FetchedAt)
	}
}

func TestReadJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	obs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(obs) != 0 {
		t.Fatalf("blank stream: %v %v", obs, err)
	}
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.jsonl")
	obs := []Observation{sampleObs("School", Treatment)}
	if err := SaveJSONL(path, obs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Term != "School" {
		t.Fatalf("loaded %+v", back)
	}
	if _, err := LoadJSONL(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestObservationValidate(t *testing.T) {
	good := sampleObs("Coffee", Treatment)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Term = ""
	if bad.Validate() == nil {
		t.Fatal("empty term accepted")
	}
	bad = good
	bad.Role = "spectator"
	if bad.Validate() == nil {
		t.Fatal("bad role accepted")
	}
	bad = good
	bad.LocationID = ""
	if bad.Validate() == nil {
		t.Fatal("missing location accepted")
	}
	bad = good
	bad.Page = nil
	if bad.Validate() == nil {
		t.Fatal("missing page accepted")
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"granularity", "jaccard", "edit"}}
	tb.AddRow("county", "0.85", "4.1")
	tb.AddRow("state", "0.65", "7.4")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "granularity,jaccard,edit" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "state,0.65,7.4" {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestTableRowWidthPanics(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row accepted")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableSaveCSV(t *testing.T) {
	tb := Table{Header: []string{"x"}}
	tb.AddRow("1")
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := tb.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSONL(path)
	if err == nil && len(back) > 0 {
		t.Fatal("CSV parsed as JSONL?")
	}
}

func TestGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.jsonl.gz")
	obs := []Observation{sampleObs("Coffee", Treatment), sampleObs("Bank", Control)}
	if err := SaveJSONL(path, obs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Term != "Coffee" || back[1].Term != "Bank" {
		t.Fatalf("round-trip = %+v", back)
	}
	// Compressed file must actually be gzip (magic bytes) and smaller
	// than the plain encoding.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("file is not gzip")
	}
	plain := filepath.Join(dir, "obs.jsonl")
	if err := SaveJSONL(plain, obs); err != nil {
		t.Fatal(err)
	}
	info, _ := os.Stat(plain)
	if int64(len(raw)) >= info.Size() {
		t.Fatalf("gzip (%d) not smaller than plain (%d)", len(raw), info.Size())
	}
}

func TestLoadJSONLGzipCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl.gz")
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSONL(path); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}
