// Package statz turns a streaming analysis aggregator into a live audit
// surface for a running crawl campaign. A Recorder sits between the
// crawler (as its SweepSink) and an HTTP mux: every completed sweep is
// ingested into the stream, summarized into a Snapshot, marshaled once,
// and kept in a sweep-indexed ring. GET /statz serves the latest
// snapshot; GET /statz?sweep=N replays the exact bytes recorded when the
// N'th sweep completed.
//
// Determinism contract: snapshot bytes are a pure function of the
// ingested sweeps and the campaign clock. Timestamps come from sweep
// completion instants on the campaign clock (never wall time), map
// iteration never reaches the output (the stream emits sorted views),
// and stored bytes are never re-marshaled. Two same-seed campaigns
// therefore serve byte-identical /statz?sweep=N responses at every N.
package statz

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"geoserp/internal/analysis"
	"geoserp/internal/crawler"
	"geoserp/internal/httpheader"
	"geoserp/internal/storage"
	"geoserp/internal/telemetry"
)

// Snapshot is the envelope served at /statz: one frozen view of a
// campaign, taken at a sweep boundary on the campaign clock.
type Snapshot struct {
	// Sweep is the 1-based count of sweeps ingested when this snapshot
	// was taken; 0 for the pre-campaign snapshot.
	Sweep int `json:"sweep"`
	// VirtualTime is the campaign-clock instant of the sweep that
	// produced the snapshot.
	VirtualTime time.Time `json:"virtual_time"`
	// Build identifies the binary serving the campaign.
	Build telemetry.Build `json:"build"`
	// Campaign is the crawler's progress view, when a progress source is
	// attached.
	Campaign *crawler.ProgressSnapshot `json:"campaign,omitempty"`
	// Stream is the streaming aggregator's scorecard-bearing summary.
	Stream analysis.StreamSnapshot `json:"stream"`
	// Errors lists ingest failures, e.g. malformed sweeps. Empty in a
	// healthy campaign.
	Errors []string `json:"errors,omitempty"`
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithRingCapacity bounds the per-sweep snapshot ring. Older snapshots
// are evicted first. The default keeps 256 sweeps.
func WithRingCapacity(n int) Option {
	return func(r *Recorder) {
		if n > 0 {
			r.ringCap = n
		}
	}
}

// WithProgress attaches a campaign progress source — typically
// (*crawler.Crawler).ProgressState — embedded in every snapshot.
func WithProgress(fn func() crawler.ProgressSnapshot) Option {
	return func(r *Recorder) { r.progress = fn }
}

// maxErrors bounds the ingest-error list carried in snapshots.
const maxErrors = 16

// Recorder implements crawler.SweepSink over an analysis.Stream and
// serves the resulting snapshots over HTTP. It is safe for concurrent
// use: ObserveSweep is called from the crawler's scheduling goroutine
// while HTTP handlers read from request goroutines.
type Recorder struct {
	stream   *analysis.Stream
	progress func() crawler.ProgressSnapshot
	ringCap  int

	mu     sync.Mutex
	ring   []ringEntry
	latest []byte
	errs   []string
}

type ringEntry struct {
	sweep int
	data  []byte
}

// NewRecorder wraps stream as a sweep sink with a snapshot ring. The
// stream must not be ingested into by anyone else while the recorder
// owns it.
func NewRecorder(stream *analysis.Stream, opts ...Option) *Recorder {
	r := &Recorder{stream: stream, ringCap: 256}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Stream returns the underlying aggregator, e.g. for an end-of-campaign
// parity check against the batch pipeline.
func (r *Recorder) Stream() *analysis.Stream { return r.stream }

// ObserveSweep ingests one completed sweep and freezes a snapshot of the
// resulting state, keyed by the 1-based sweep count.
func (r *Recorder) ObserveSweep(info crawler.SweepInfo, obs []storage.Observation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.stream.IngestSweep(info.At, obs); err != nil {
		if len(r.errs) < maxErrors {
			r.errs = append(r.errs, fmt.Sprintf("sweep %d: %v", info.Sweep, err))
		}
		return
	}
	data, err := marshalSnapshot(r.snapshotLocked(info.At))
	if err != nil {
		// json.Marshal cannot fail on these types; guard anyway.
		if len(r.errs) < maxErrors {
			r.errs = append(r.errs, fmt.Sprintf("sweep %d: marshal: %v", info.Sweep, err))
		}
		return
	}
	r.latest = data
	r.ring = append(r.ring, ringEntry{sweep: r.stream.Sweeps(), data: data})
	if len(r.ring) > r.ringCap {
		r.ring = r.ring[len(r.ring)-r.ringCap:]
	}
}

// snapshotLocked assembles the envelope; the caller holds r.mu.
func (r *Recorder) snapshotLocked(at time.Time) Snapshot {
	snap := Snapshot{
		Sweep:       r.stream.Sweeps(),
		VirtualTime: at,
		Build:       telemetry.ReadBuild(),
		Stream:      r.stream.Snapshot(),
	}
	if r.progress != nil {
		p := r.progress()
		snap.Campaign = &p
	}
	if len(r.errs) > 0 {
		snap.Errors = append([]string(nil), r.errs...)
	}
	return snap
}

// marshalSnapshot is the single serialization point for snapshot bytes:
// indented JSON with a trailing newline, so stored and served bytes are
// identical and diff-friendly.
func marshalSnapshot(s Snapshot) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// SnapshotJSON returns the latest frozen snapshot bytes, or a freshly
// assembled pre-campaign snapshot when no sweep has completed yet. The
// at instant is only used for that pre-campaign case.
func (r *Recorder) SnapshotJSON(at time.Time) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.latest != nil {
		return r.latest, nil
	}
	return marshalSnapshot(r.snapshotLocked(at))
}

// SweepJSON returns the snapshot frozen when the 1-based n'th sweep
// completed, and whether the ring still holds it.
func (r *Recorder) SweepJSON(n int) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.ring {
		if e.sweep == n {
			return e.data, true
		}
	}
	return nil, false
}

// RingBounds returns the oldest and newest sweep numbers held by the
// ring; (0, 0) when empty.
func (r *Recorder) RingBounds() (oldest, newest int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return 0, 0
	}
	return r.ring[0].sweep, r.ring[len(r.ring)-1].sweep
}

// Handler serves the recorder's snapshots. GET /statz returns the latest
// snapshot as indented JSON (an HTML scorecard with ?format=html or when
// the client prefers text/html); ?sweep=N replays the bytes frozen when
// sweep N completed — 404 when N has not happened yet or was evicted.
// Ring bounds travel in X-Statz-Ring so response bodies stay
// byte-deterministic.
func (r *Recorder) Handler(clock func() time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var data []byte
		if v := req.URL.Query().Get("sweep"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "bad sweep", http.StatusBadRequest)
				return
			}
			d, ok := r.SweepJSON(n)
			if !ok {
				http.Error(w, "sweep not in ring", http.StatusNotFound)
				return
			}
			data = d
		} else {
			at := time.Time{}
			if clock != nil {
				at = clock()
			}
			d, err := r.SnapshotJSON(at)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			data = d
		}
		oldest, newest := r.RingBounds()
		w.Header().Set(httpheader.StatzRing, fmt.Sprintf("%d-%d", oldest, newest))
		format := req.URL.Query().Get("format")
		if format == "" && strings.Contains(req.Header.Get("Accept"), "text/html") {
			format = "html"
		}
		if format == "html" {
			writeStatzHTML(w, data)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
}

// Mux assembles the live audit surface: /statz from the recorder, plus
// /metricsz and /tracez when a registry or span recorder is attached.
func Mux(rec *Recorder, clock func() time.Time, reg *telemetry.Registry, spans *telemetry.SpanRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /statz", rec.Handler(clock))
	if reg != nil {
		mux.Handle("GET /metricsz", reg.MetricsHandler())
	}
	if spans != nil {
		mux.Handle("GET /tracez", telemetry.TracezHandler(spans))
	}
	return mux
}

// writeStatzHTML renders the snapshot bytes as a minimal scorecard page.
// It re-reads the frozen JSON rather than live state, so the page always
// agrees with what a JSON client sees.
func writeStatzHTML(w http.ResponseWriter, data []byte) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<!doctype html><title>statz</title>" +
		"<style>body{font-family:monospace}table{border-collapse:collapse}" +
		"td,th{border:1px solid #ccc;padding:2px 6px;text-align:left}" +
		".pass{color:green}.fail{color:red}</style>" +
		"<h1>statz</h1>")
	fmt.Fprintf(&b, "<p>sweep %d · virtual time %s</p>",
		snap.Sweep, snap.VirtualTime.UTC().Format(time.RFC3339))
	if snap.Build.GoVersion != "" {
		fmt.Fprintf(&b, "<p>build %s", html.EscapeString(snap.Build.GoVersion))
		if snap.Build.Revision != "" {
			fmt.Fprintf(&b, " @ %s", html.EscapeString(snap.Build.Revision))
		}
		if snap.Build.Dirty {
			b.WriteString(" (dirty)")
		}
		b.WriteString("</p>")
	}
	if c := snap.Campaign; c != nil {
		fmt.Fprintf(&b, "<p>campaign: %d/%d sweeps · %d observations (%d failed, %d shed) · eta %s</p>",
			c.SweepsDone, c.SweepsTotal, c.Observations, c.Failed, c.Shed,
			c.VirtualETA.UTC().Format(time.RFC3339))
	}
	b.WriteString("<h2>scorecard</h2><table><tr><th>claim</th><th>verdict</th><th>detail</th></tr>")
	for _, c := range snap.Stream.Scorecard {
		verdict, class := "PASS", "pass"
		if !c.Pass {
			verdict, class = "FAIL", "fail"
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td class=%q>%s</td><td>%s</td></tr>",
			html.EscapeString(c.Claim), class, verdict, html.EscapeString(c.Detail))
	}
	b.WriteString("</table>")
	b.WriteString("<h2>scopes</h2><table><tr><th>granularity</th><th>category</th>" +
		"<th>noise pairs</th><th>noise edit</th><th>pers pairs</th><th>pers edit</th>" +
		"<th>identical</th><th>reordered</th><th>changed</th></tr>")
	for _, s := range snap.Stream.Scopes {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%.2f</td><td>%d</td><td>%.2f</td><td>%d</td><td>%d</td><td>%d</td></tr>",
			html.EscapeString(s.Granularity), html.EscapeString(s.Category),
			s.NoisePairs, s.NoiseEditMean,
			s.PersonalizationPairs, s.PersonalizationEditMean,
			s.IdenticalPairs, s.ReorderedPairs, s.ContentChangedPairs)
	}
	b.WriteString("</table>")
	if len(snap.Stream.Drift) > 0 {
		b.WriteString("<h2>drift</h2><table><tr><th>scope</th><th>sweep</th><th>at</th><th>from</th><th>to</th></tr>")
		for _, d := range snap.Stream.Drift {
			fmt.Fprintf(&b, "<tr><td>%s/%s</td><td>%d</td><td>%s</td><td>%.2f</td><td>%.2f</td></tr>",
				html.EscapeString(d.Granularity), html.EscapeString(d.Category),
				d.Sweep, d.At.UTC().Format(time.RFC3339), d.From, d.To)
		}
		b.WriteString("</table>")
	}
	for _, e := range snap.Errors {
		fmt.Fprintf(&b, "<p class=fail>error: %s</p>", html.EscapeString(e))
	}
	fmt.Fprint(w, b.String())
}
