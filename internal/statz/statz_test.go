package statz

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"geoserp/internal/analysis"
	"geoserp/internal/crawler"
	"geoserp/internal/httpheader"
	"geoserp/internal/serp"
	"geoserp/internal/storage"
	"geoserp/internal/telemetry"
)

func testPage(links ...string) *serp.Page {
	p := &serp.Page{Query: "q", Location: "0.000000,0.000000"}
	for _, l := range links {
		p.Cards = append(p.Cards, serp.Card{
			Type:    serp.Organic,
			Results: []serp.Result{{URL: l, Title: l}},
		})
	}
	return p
}

func testObs(term, loc string, role storage.Role, day int, p *serp.Page) storage.Observation {
	cp := *p
	cp.Query = term
	return storage.Observation{
		Term:        term,
		Category:    "local",
		Granularity: "county",
		LocationID:  loc,
		Role:        role,
		Day:         day,
		MachineIP:   "10.0.0.1",
		FetchedAt:   campaignEpoch().Add(time.Duration(day) * 24 * time.Hour),
		Page:        &cp,
	}
}

func campaignEpoch() time.Time {
	return time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
}

// testSweep builds one lock-step sweep: two vantages, both roles. The
// varying link makes successive sweeps personalize differently.
func testSweep(term string, day int) (crawler.SweepInfo, []storage.Observation) {
	info := crawler.SweepInfo{
		Phase:       "test",
		Granularity: "county",
		Term:        term,
		Day:         day,
		Sweep:       day, // caller overrides for multi-sweep feeds
		At:          campaignEpoch().Add(time.Duration(day) * time.Hour),
	}
	near, far := testPage("a", "b"), testPage("a", term)
	return info, []storage.Observation{
		testObs(term, "c/1", storage.Treatment, day, near),
		testObs(term, "c/1", storage.Control, day, near),
		testObs(term, "c/2", storage.Treatment, day, far),
		testObs(term, "c/2", storage.Control, day, far),
	}
}

func feedSweeps(t *testing.T, rec *Recorder, terms ...string) {
	t.Helper()
	for i, term := range terms {
		info, obs := testSweep(term, 0)
		info.Sweep = i
		info.At = campaignEpoch().Add(time.Duration(i) * time.Hour)
		rec.ObserveSweep(info, obs)
	}
}

func TestRecorderRingAndLatest(t *testing.T) {
	rec := NewRecorder(analysis.NewStream())
	feedSweeps(t, rec, "Coffee", "Dentist", "Library")

	if oldest, newest := rec.RingBounds(); oldest != 1 || newest != 3 {
		t.Fatalf("ring bounds = %d-%d, want 1-3", oldest, newest)
	}
	for n := 1; n <= 3; n++ {
		data, ok := rec.SweepJSON(n)
		if !ok {
			t.Fatalf("sweep %d missing from ring", n)
		}
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("sweep %d unparseable: %v", n, err)
		}
		if snap.Sweep != n || snap.Stream.Sweeps != n {
			t.Fatalf("sweep %d snapshot reports sweep=%d stream.sweeps=%d", n, snap.Sweep, snap.Stream.Sweeps)
		}
	}
	if _, ok := rec.SweepJSON(4); ok {
		t.Fatal("future sweep served")
	}
	latest, err := rec.SnapshotJSON(campaignEpoch())
	if err != nil {
		t.Fatal(err)
	}
	ring3, _ := rec.SweepJSON(3)
	if !bytes.Equal(latest, ring3) {
		t.Fatal("latest snapshot differs from the newest ring entry")
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(analysis.NewStream(), WithRingCapacity(2))
	feedSweeps(t, rec, "Coffee", "Dentist", "Library", "Pizza")
	if oldest, newest := rec.RingBounds(); oldest != 3 || newest != 4 {
		t.Fatalf("ring bounds = %d-%d, want 3-4 after eviction", oldest, newest)
	}
	if _, ok := rec.SweepJSON(1); ok {
		t.Fatal("evicted sweep still served")
	}
}

func TestRecorderByteDeterminism(t *testing.T) {
	a, b := NewRecorder(analysis.NewStream()), NewRecorder(analysis.NewStream())
	feedSweeps(t, a, "Coffee", "Dentist")
	feedSweeps(t, b, "Coffee", "Dentist")
	for n := 1; n <= 2; n++ {
		aj, _ := a.SweepJSON(n)
		bj, _ := b.SweepJSON(n)
		if !bytes.Equal(aj, bj) {
			t.Fatalf("sweep %d snapshots differ between identical feeds:\n%s\nvs\n%s", n, aj, bj)
		}
	}
}

func TestRecorderPreCampaignSnapshot(t *testing.T) {
	rec := NewRecorder(analysis.NewStream())
	data, err := rec.SnapshotJSON(campaignEpoch())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Sweep != 0 || len(snap.Stream.Scorecard) != 0 {
		t.Fatalf("pre-campaign snapshot = %+v", snap)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Fatal("snapshot missing trailing newline")
	}
}

func TestRecorderMalformedSweepRecordsError(t *testing.T) {
	rec := NewRecorder(analysis.NewStream())
	rec.ObserveSweep(crawler.SweepInfo{Sweep: 0, At: campaignEpoch()}, nil)
	data, err := rec.SnapshotJSON(campaignEpoch())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Errors) != 1 || !strings.Contains(snap.Errors[0], "sweep 0") {
		t.Fatalf("errors = %v, want one sweep-0 ingest error", snap.Errors)
	}
}

func TestRecorderProgressEmbedded(t *testing.T) {
	// A progress source stands in for (*crawler.Crawler).ProgressState.
	rec := NewRecorder(analysis.NewStream(), WithProgress(func() crawler.ProgressSnapshot {
		return crawler.ProgressSnapshot{SweepsDone: 1, SweepsTotal: 9, Phase: "test"}
	}))
	feedSweeps(t, rec, "Coffee")
	data, _ := rec.SweepJSON(1)
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Campaign == nil || snap.Campaign.SweepsTotal != 9 || snap.Campaign.Phase != "test" {
		t.Fatalf("campaign block = %+v", snap.Campaign)
	}
}

func TestHandlerServesSnapshotsAndBuild(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := NewRecorder(analysis.NewStream(analysis.WithStreamTelemetry(reg)))
	feedSweeps(t, rec, "Coffee", "Dentist")
	srv := httptest.NewServer(Mux(rec, func() time.Time { return campaignEpoch() }, reg, nil))
	defer srv.Close()

	get := func(path string, wantStatus int) ([]byte, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantStatus)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body, resp.Header
	}

	body, hdr := get("/statz", http.StatusOK)
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/statz unparseable: %v", err)
	}
	if snap.Sweep != 2 {
		t.Fatalf("/statz sweep = %d, want 2", snap.Sweep)
	}
	if snap.Build.GoVersion == "" {
		t.Fatal("/statz build block missing go_version")
	}
	if hdr.Get(httpheader.StatzRing) != "1-2" {
		t.Fatalf("X-Statz-Ring = %q, want 1-2", hdr.Get(httpheader.StatzRing))
	}

	ring1, _ := rec.SweepJSON(1)
	body, _ = get("/statz?sweep=1", http.StatusOK)
	if !bytes.Equal(body, ring1) {
		t.Fatal("/statz?sweep=1 differs from the frozen ring bytes")
	}
	get("/statz?sweep=99", http.StatusNotFound)
	get("/statz?sweep=bogus", http.StatusBadRequest)
	get("/statz?sweep=0", http.StatusBadRequest)

	body, hdr = get("/statz?format=html", http.StatusOK)
	if !strings.Contains(hdr.Get("Content-Type"), "text/html") {
		t.Fatalf("html content type = %q", hdr.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "<h1>statz</h1>") || !strings.Contains(string(body), "scorecard") {
		t.Fatalf("html page missing scorecard: %.200s", body)
	}

	body, _ = get("/metricsz", http.StatusOK)
	if !strings.Contains(string(body), "stream_sweeps_ingested_total 2") {
		t.Fatalf("/metricsz missing stream counters: %.300s", body)
	}
}

func TestHandlerHTMLViaAcceptHeader(t *testing.T) {
	rec := NewRecorder(analysis.NewStream())
	feedSweeps(t, rec, "Coffee")
	srv := httptest.NewServer(rec.Handler(func() time.Time { return campaignEpoch() }))
	defer srv.Close()
	req, _ := http.NewRequest("GET", srv.URL, nil)
	req.Header.Set("Accept", "text/html,application/xhtml+xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "<h1>statz</h1>") {
		t.Fatalf("Accept: text/html did not switch to HTML: %.120s", body)
	}
}
