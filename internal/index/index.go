// Package index implements the retrieval substrate for the Web vertical: a
// tokenizer and an in-memory inverted index with TF-IDF scoring. The engine
// queries it for candidate documents and then applies its own
// personalization and authority layers on top — mirroring the separation
// between retrieval and ranking in production engines.
package index

import (
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"

	"geoserp/internal/webcorpus"
)

// stopwords are dropped during tokenization.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "in": true, "on": true,
	"for": true, "to": true, "and": true, "or": true, "is": true, "at": true,
	"by": true, "with": true, "near": true, "from": true, "as": true,
}

// Tokenize lowercases s, splits on non-letter/non-digit runes, and drops
// stopwords and empty tokens. It is the single tokenization used for both
// documents and queries. Letters are recognized by Unicode class, not the
// ASCII range, so accented place and business names in custom worlds
// ("Café", "Zürich") survive as whole tokens instead of being split into
// garbage at every accent.
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		tok := cur.String()
		cur.Reset()
		if !stopwords[tok] {
			out = append(out, tok)
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r), unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return out
}

// posting records one document's weight for a token.
type posting struct {
	docID  int32
	weight float32
}

// Hit is one retrieval result.
type Hit struct {
	// Doc is the matched document.
	Doc webcorpus.Doc
	// Score is the TF-IDF relevance (higher is better).
	Score float64
}

// Index is an in-memory inverted index. Add all documents first, then call
// Freeze; Search may then be used concurrently.
type Index struct {
	mu       sync.RWMutex
	frozen   bool
	docs     []webcorpus.Doc
	postings map[string][]posting
	docNorm  []float64 // per-doc weight norm for length normalization
	// df, when non-nil, marks this index as a document-partitioned shard
	// view (see Shard): it carries the FULL corpus's per-token document
	// frequencies while postings holds only the shard's documents, so IDF
	// — and therefore every score — is identical to the unsharded
	// index's. nDocs likewise preserves the full corpus size.
	df    map[string]int
	nDocs int
	// ownedDocs is the number of documents a shard view actually serves
	// (its partition size); unused in a full index.
	ownedDocs int
}

// New returns an empty index.
func New() *Index {
	return &Index{postings: make(map[string][]posting)}
}

// fieldWeights control how strongly each document field counts.
const (
	titleWeight   = 3.0
	topicWeight   = 2.0
	snippetWeight = 1.0
)

// Add indexes a document. It panics if the index is frozen — adding after
// freeze is a programming error, not a data condition.
func (ix *Index) Add(d webcorpus.Doc) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.frozen {
		panic("index: Add after Freeze")
	}
	id := int32(len(ix.docs))
	ix.docs = append(ix.docs, d)

	weights := make(map[string]float64)
	for _, t := range Tokenize(d.Title) {
		weights[t] += titleWeight
	}
	for _, t := range Tokenize(strings.ReplaceAll(d.Topic, "-", " ")) {
		weights[t] += topicWeight
	}
	for _, t := range Tokenize(d.Snippet) {
		weights[t] += snippetWeight
	}
	// Iterate tokens in sorted order: map order would make the float
	// accumulation of the norm (and the posting-list layout) vary from
	// run to run, and a 1-ULP norm difference is enough to flip
	// near-tied rankings between otherwise identical engines.
	tokens := make([]string, 0, len(weights))
	for t := range weights {
		tokens = append(tokens, t)
	}
	sort.Strings(tokens)
	var norm float64
	for _, t := range tokens {
		// Sub-linear tf damping keeps keyword-stuffed long-tail pages
		// from swamping authoritative short titles.
		w := 1 + math.Log(weights[t])
		ix.postings[t] = append(ix.postings[t], posting{docID: id, weight: float32(w)})
		norm += w * w
	}
	ix.docNorm = append(ix.docNorm, math.Sqrt(norm))
}

// AddAll indexes a batch of documents.
func (ix *Index) AddAll(docs []webcorpus.Doc) {
	for _, d := range docs {
		ix.Add(d)
	}
}

// Freeze finalizes the index for concurrent searching.
func (ix *Index) Freeze() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.frozen = true
}

// Len returns the number of searchable documents: the partition size in a
// shard view, the corpus size otherwise.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.df != nil {
		return ix.ownedDocs
	}
	return len(ix.docs)
}

// Search returns the top-k documents for the query by TF-IDF cosine score.
// Ties are broken by URL so results are deterministic.
func (ix *Index) Search(query string, k int) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if k <= 0 {
		return nil
	}
	// Query tokens are deduplicated before scoring: coverage means
	// distinct-terms-matched / distinct-terms-queried. Without the dedupe
	// a repeated term accumulated IDF once per occurrence and inflated
	// the coverage ratio past 1.0, so "pizza pizza" ranked single-term
	// documents as if they covered a two-term query in full.
	qTokens := distinct(Tokenize(query))
	if len(qTokens) == 0 {
		return nil
	}
	n := float64(ix.numDocs())
	scores := make(map[int32]float64)
	matched := make(map[int32]int)
	for _, t := range qTokens {
		plist := ix.postings[t]
		docFreq := ix.docFreq(t, len(plist))
		if docFreq == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(docFreq))
		for _, p := range plist {
			scores[p.docID] += idf * float64(p.weight)
			matched[p.docID]++
		}
	}
	if len(scores) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(scores))
	for id, s := range scores {
		// Require at least half the query tokens to match; a one-token
		// graze against a multi-word query is noise, not relevance.
		if matched[id]*2 < len(qTokens) {
			continue
		}
		norm := ix.docNorm[id]
		if norm == 0 {
			continue
		}
		// Coverage bonus: documents matching every query token beat
		// partial matches even when the partial match is term-dense.
		coverage := float64(matched[id]) / float64(len(qTokens))
		//lint:allow maporder MergeHits totally orders hits by score then URL before returning
		hits = append(hits, Hit{
			Doc:   ix.docs[id],
			Score: (s / norm) * (0.5 + 0.5*coverage) * coverage,
		})
	}
	return MergeHits(hits, k)
}

// distinct removes duplicate tokens, preserving first-occurrence order (so
// float accumulation order — and therefore scores — is a function of the
// query string alone).
func distinct(tokens []string) []string {
	out := tokens[:0]
	for _, t := range tokens {
		dup := false
		for _, prev := range out {
			if prev == t {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	return out
}

// numDocs returns the corpus size used for IDF: the full corpus's even in
// a shard view.
func (ix *Index) numDocs() int {
	if ix.df != nil {
		return ix.nDocs
	}
	return len(ix.docs)
}

// docFreq returns the IDF denominator for a token: the full corpus's
// document frequency in a shard view, the local posting-list length
// otherwise.
func (ix *Index) docFreq(t string, plistLen int) int {
	if ix.df != nil {
		return ix.df[t]
	}
	return plistLen
}

// Vocabulary returns the number of distinct tokens in the index.
func (ix *Index) Vocabulary() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// Shard returns a document-partitioned view of a frozen index: posting
// lists keep only the documents the owns predicate claims, while the IDF
// denominators and per-document norms remain those of the FULL index.
// Scores computed by different shards of the same corpus are therefore
// globally comparable, and the union of every shard's Search results
// reproduces the unsharded ranking bit for bit — the property the SERP
// cluster's scatter-gather merge relies on for byte-identical pages at
// any shard count. The view shares the parent's document table; it panics
// if the index is not frozen.
func (ix *Index) Shard(owns func(d webcorpus.Doc) bool) *Index {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.frozen {
		panic("index: Shard before Freeze")
	}
	shard := &Index{
		frozen:   true,
		docs:     ix.docs,
		docNorm:  ix.docNorm,
		postings: make(map[string][]posting),
		df:       make(map[string]int, len(ix.postings)),
		nDocs:    ix.numDocs(),
	}
	// Which docs the shard owns is decided once per document, not per
	// posting, so a retained document keeps its full token profile (its
	// matched-term counts — and so its coverage — equal the monolith's).
	owned := make([]bool, len(ix.docs))
	var kept int
	for id, d := range ix.docs {
		if owns(d) {
			owned[id] = true
			kept++
		}
	}
	for t, plist := range ix.postings {
		shard.df[t] = ix.docFreq(t, len(plist))
		var pruned []posting
		for _, p := range plist {
			if owned[p.docID] {
				pruned = append(pruned, p)
			}
		}
		if pruned != nil {
			shard.postings[t] = pruned
		}
	}
	shard.ownedDocs = kept
	return shard
}

// MergeHits sorts hits with Search's exact ordering — score descending,
// ties broken by URL ascending — and truncates to k. It is the single
// merge used by the cluster router to fold per-shard rankings into one
// list: because shard scores are globally comparable (see Shard), merging
// the union of per-shard top-k lists reproduces the monolithic index's
// top k exactly. The input is sorted in place.
func MergeHits(hits []Hit, k int) []Hit {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc.URL < hits[j].Doc.URL
	})
	if k >= 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// BuildFromWeb constructs and freezes an index over every document in w.
func BuildFromWeb(w *webcorpus.Web) *Index {
	ix := New()
	for _, topic := range w.Topics() {
		ix.AddAll(w.Docs(topic))
	}
	ix.Freeze()
	return ix
}
