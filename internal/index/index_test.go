package index

import (
	"strings"
	"testing"

	"geoserp/internal/queries"
	"geoserp/internal/webcorpus"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Coffee", []string{"coffee"}},
		{"High School", []string{"high", "school"}},
		{"Is Global Warming Real", []string{"global", "warming", "real"}},
		{"Chick-fil-A!", []string{"chick", "fil"}},
		{"", nil},
		{"the of and", nil},
		{"KFC 2015", []string{"kfc", "2015"}},
		// Non-ASCII letters are letters: accented names survive as whole
		// tokens instead of being split at every accent (the old
		// [a-z0-9]-only tokenizer turned "Café" into "caf").
		{"Café", []string{"café"}},
		{"Zürich Öffnungszeiten", []string{"zürich", "öffnungszeiten"}},
		{"CAFÉ ZÜRICH", []string{"café", "zürich"}},
		{"søndre gate 4", []string{"søndre", "gate", "4"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func doc(url, title, snippet, topic string) webcorpus.Doc {
	return webcorpus.Doc{URL: url, Title: title, Snippet: snippet, Topic: topic, Authority: 0.5}
}

func TestSearchBasicRelevance(t *testing.T) {
	ix := New()
	ix.Add(doc("https://a/", "Coffee House Guide", "All about coffee.", "coffee"))
	ix.Add(doc("https://b/", "Tea Emporium", "All about tea.", "tea"))
	ix.Add(doc("https://c/", "Coffee and Tea", "Both beverages.", "beverages"))
	ix.Freeze()
	hits := ix.Search("coffee", 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(hits))
	}
	if hits[0].Doc.URL != "https://a/" {
		t.Fatalf("top hit = %s, want https://a/", hits[0].Doc.URL)
	}
}

func TestSearchMultiTokenPrecision(t *testing.T) {
	ix := New()
	ix.Add(doc("https://hs/", "Lincoln High School", "A public high school.", "high-school"))
	ix.Add(doc("https://s/", "Lincoln School", "A public school.", "school"))
	ix.Add(doc("https://h/", "High Tower", "A very high tower.", "tower"))
	ix.Freeze()
	hits := ix.Search("high school", 10)
	if len(hits) == 0 || hits[0].Doc.URL != "https://hs/" {
		t.Fatalf("top hit for 'high school' = %+v", hits)
	}
	// Full-coverage docs must outrank half-coverage docs.
	for _, h := range hits[1:] {
		if h.Score >= hits[0].Score {
			t.Fatalf("partial match outranked full match: %+v", hits)
		}
	}
}

func TestSearchHalfCoverageFilter(t *testing.T) {
	ix := New()
	ix.Add(doc("https://x/", "Warming Trends", "Warming only.", "x"))
	ix.Freeze()
	// One of three meaningful tokens matches -> filtered out.
	if hits := ix.Search("global warming hoax debate", 10); len(hits) != 0 {
		t.Fatalf("low-coverage doc returned: %+v", hits)
	}
}

// TestSearchRepeatedQueryTokens is the regression test for the
// double-counting bug: repeated query terms accumulated IDF once per
// occurrence and pushed coverage past 1.0, so "pizza pizza" scored a
// one-term document as if it fully covered a two-term query. Coverage is
// now distinct-terms-matched / distinct-terms-queried, making a repeated
// query exactly equivalent to its deduplicated form.
func TestSearchRepeatedQueryTokens(t *testing.T) {
	ix := New()
	ix.Add(doc("https://p/", "Pizza Palace", "Best pizza in town.", "pizza"))
	ix.Add(doc("https://q/", "Cheap Pizza Joint", "Cheap pizza daily.", "pizza"))
	ix.Freeze()

	single := ix.Search("pizza", 10)
	repeated := ix.Search("pizza pizza", 10)
	if len(single) != len(repeated) {
		t.Fatalf("repeated-term query returned %d hits, single-term %d", len(repeated), len(single))
	}
	for i := range single {
		if repeated[i].Doc.URL != single[i].Doc.URL || repeated[i].Score != single[i].Score {
			// The old code produced repeated[i].Score == 2x the IDF mass of
			// single[i].Score here (double-counted accumulation).
			t.Fatalf("rank %d: repeated query gave {%s %v}, single gave {%s %v}",
				i, repeated[i].Doc.URL, repeated[i].Score, single[i].Doc.URL, single[i].Score)
		}
	}

	// A doc matching one of two DISTINCT terms must still fail the
	// half-coverage gate even when the matched term is repeated in the
	// query: "pizza pizza hovercraft" has two distinct terms and the doc
	// covers one — exactly the boundary, kept; with a third distinct term
	// it is filtered. The old matched-occurrence counting let the repeat
	// masquerade as extra coverage.
	if hits := ix.Search("pizza pizza hovercraft submarine", 10); len(hits) != 0 {
		t.Fatalf("one of three distinct terms matched but doc survived the coverage gate: %+v", hits)
	}
	// Coverage itself must cap at 1.0: the repeated query's top score
	// equals the single query's, never above it.
	if repeated[0].Score > single[0].Score {
		t.Fatalf("repeated terms inflated the score: %v > %v", repeated[0].Score, single[0].Score)
	}
}

// TestSearchNonASCIIEndToEnd drives accented titles through Add and
// Search: a custom world naming businesses "Café" or "Zürich" must be
// retrievable by those words (the old ASCII-only tokenizer shredded them).
func TestSearchNonASCIIEndToEnd(t *testing.T) {
	ix := New()
	ix.Add(doc("https://cafe/", "Café Zürich", "The best café near the lake.", "café"))
	ix.Add(doc("https://caf/", "Caf Industries", "Industrial caf supplies.", "caf"))
	ix.Freeze()

	hits := ix.Search("café", 10)
	if len(hits) != 1 || hits[0].Doc.URL != "https://cafe/" {
		t.Fatalf("Search(café) = %+v, want the café doc only", hits)
	}
	// Case-folding applies to non-ASCII letters too.
	if hits := ix.Search("CAFÉ ZÜRICH", 10); len(hits) != 1 || hits[0].Doc.URL != "https://cafe/" {
		t.Fatalf("Search(CAFÉ ZÜRICH) = %+v, want the café doc", hits)
	}
	// The accented word no longer collides with its mangled ASCII prefix.
	if hits := ix.Search("caf", 10); len(hits) != 1 || hits[0].Doc.URL != "https://caf/" {
		t.Fatalf("Search(caf) = %+v, want the caf doc only", hits)
	}
}

func TestSearchEmptyAndDegenerate(t *testing.T) {
	ix := New()
	ix.Add(doc("https://a/", "Coffee", "Coffee.", "coffee"))
	ix.Freeze()
	if hits := ix.Search("", 10); hits != nil {
		t.Fatalf("empty query returned %v", hits)
	}
	if hits := ix.Search("the of", 10); hits != nil {
		t.Fatalf("stopword query returned %v", hits)
	}
	if hits := ix.Search("coffee", 0); hits != nil {
		t.Fatalf("k=0 returned %v", hits)
	}
	if hits := ix.Search("zzzzz", 10); hits != nil {
		t.Fatalf("no-match query returned %v", hits)
	}
}

func TestSearchKLimit(t *testing.T) {
	ix := New()
	for i := 0; i < 20; i++ {
		ix.Add(doc("https://d/"+strings.Repeat("x", i+1), "Coffee Page", "About coffee.", "coffee"))
	}
	ix.Freeze()
	if hits := ix.Search("coffee", 5); len(hits) != 5 {
		t.Fatalf("k=5 returned %d hits", len(hits))
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	build := func() *Index {
		ix := New()
		ix.Add(doc("https://b/", "Coffee", "Coffee.", "coffee"))
		ix.Add(doc("https://a/", "Coffee", "Coffee.", "coffee"))
		ix.Freeze()
		return ix
	}
	h1 := build().Search("coffee", 10)
	h2 := build().Search("coffee", 10)
	for i := range h1 {
		if h1[i].Doc.URL != h2[i].Doc.URL {
			t.Fatal("tie-break not deterministic")
		}
	}
	if h1[0].Doc.URL != "https://a/" {
		t.Fatalf("ties not broken by URL: %v", h1[0].Doc.URL)
	}
}

func TestAddAfterFreezePanics(t *testing.T) {
	ix := New()
	ix.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Freeze did not panic")
		}
	}()
	ix.Add(doc("https://a/", "x", "y", "z"))
}

func TestBuildFromWebCoversCorpus(t *testing.T) {
	w := webcorpus.NewWeb(1, queries.StudyCorpus(), webcorpus.DefaultRegions())
	ix := BuildFromWeb(w)
	if ix.Len() != w.Size() {
		t.Fatalf("index has %d docs, web has %d", ix.Len(), w.Size())
	}
	if ix.Vocabulary() == 0 {
		t.Fatal("empty vocabulary")
	}
	// Every study query must retrieve at least 5 documents, and the top
	// hit must be on-topic.
	for _, q := range queries.StudyCorpus().All() {
		hits := ix.Search(q.Term, 30)
		if len(hits) < 5 {
			t.Fatalf("query %q retrieved only %d docs", q.Term, len(hits))
		}
	}
}

func TestBuildFromWebTopicalPrecision(t *testing.T) {
	w := webcorpus.NewWeb(1, queries.StudyCorpus(), webcorpus.DefaultRegions())
	ix := BuildFromWeb(w)
	// For distinctive queries the top hits should be about that topic.
	for _, term := range []string{"Starbucks", "Barack Obama", "Gay Marriage", "Fracking"} {
		q, _ := queries.StudyCorpus().ByTerm(term)
		hits := ix.Search(term, 5)
		onTopic := 0
		for _, h := range hits {
			if h.Doc.Topic == q.ID() {
				onTopic++
			}
		}
		if onTopic < 3 {
			t.Fatalf("query %q: only %d/5 top hits on topic %q", term, onTopic, q.ID())
		}
	}
}

func TestSearchConcurrentAfterFreeze(t *testing.T) {
	w := webcorpus.NewWeb(1, queries.StudyCorpus(), webcorpus.DefaultRegions())
	ix := BuildFromWeb(w)
	done := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				ix.Search("coffee shop", 10)
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
