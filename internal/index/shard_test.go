package index

import (
	"math"
	"testing"

	"geoserp/internal/detrand"
	"geoserp/internal/queries"
	"geoserp/internal/webcorpus"
)

// buildStudyIndex builds the full study-corpus index once per test.
func buildStudyIndex(t *testing.T) (*Index, *webcorpus.Web) {
	t.Helper()
	w := webcorpus.NewWeb(1, queries.StudyCorpus(), webcorpus.DefaultRegions())
	return BuildFromWeb(w), w
}

// shardBy partitions ix into n shards by hashing document URLs.
func shardBy(ix *Index, n int) []*Index {
	shards := make([]*Index, n)
	for i := range shards {
		i := i
		shards[i] = ix.Shard(func(d webcorpus.Doc) bool {
			return int(detrand.Hash("shardtest", d.URL)%uint64(n)) == i
		})
	}
	return shards
}

// TestShardPartitionIsExhaustiveAndDisjoint verifies every document lands
// on exactly one shard.
func TestShardPartitionIsExhaustiveAndDisjoint(t *testing.T) {
	ix, w := buildStudyIndex(t)
	for _, n := range []int{1, 2, 3, 5} {
		shards := shardBy(ix, n)
		total := 0
		for _, s := range shards {
			total += s.Len()
		}
		if total != w.Size() {
			t.Fatalf("n=%d: shard sizes sum to %d, corpus has %d docs", n, total, w.Size())
		}
	}
}

// TestShardScoresMatchMonolith is the property the cluster merge relies
// on: a shard scores its documents EXACTLY as the full index does (global
// IDF and norms), so the union of per-shard top-k lists, re-sorted with
// the same tie-break, reproduces the monolithic ranking bit for bit — at
// any shard count.
func TestShardScoresMatchMonolith(t *testing.T) {
	ix, _ := buildStudyIndex(t)
	terms := []string{"Coffee", "High School", "Barack Obama", "gun control", "Airport"}
	const k = 48
	for _, n := range []int{1, 2, 3, 4} {
		shards := shardBy(ix, n)
		for _, term := range terms {
			want := ix.Search(term, k)
			var union []Hit
			for _, s := range shards {
				union = append(union, s.Search(term, k)...)
			}
			merged := MergeHits(union, k)
			if len(merged) != len(want) {
				t.Fatalf("n=%d %q: merged %d hits, monolith %d", n, term, len(merged), len(want))
			}
			for i := range want {
				if merged[i].Doc.URL != want[i].Doc.URL {
					t.Fatalf("n=%d %q: rank %d is %s, monolith has %s",
						n, term, i, merged[i].Doc.URL, want[i].Doc.URL)
				}
				if math.Float64bits(merged[i].Score) != math.Float64bits(want[i].Score) {
					t.Fatalf("n=%d %q: rank %d score %v differs from monolith %v (must be bit-identical)",
						n, term, i, merged[i].Score, want[i].Score)
				}
			}
		}
	}
}

// TestShardHonoursCoverageFilter checks that a shard applies the same
// distinct-term coverage filter as the monolith: the matched-term counts
// of a retained document are not diluted by partitioning.
func TestShardHonoursCoverageFilter(t *testing.T) {
	ix := New()
	ix.Add(doc("https://hs/", "Lincoln High School", "A public high school.", "high-school"))
	ix.Add(doc("https://x/", "Tower Guide", "A very high tower.", "tower"))
	ix.Freeze()
	all := ix.Shard(func(webcorpus.Doc) bool { return true })
	want := ix.Search("high school", 10)
	hits := all.Search("high school", 10)
	if len(hits) != len(want) {
		t.Fatalf("all-docs shard returned %d hits, monolith %d", len(hits), len(want))
	}
	for i := range want {
		if hits[i].Doc.URL != want[i].Doc.URL || hits[i].Score != want[i].Score {
			t.Fatalf("rank %d: shard {%s %v} diverged from monolith {%s %v}",
				i, hits[i].Doc.URL, hits[i].Score, want[i].Doc.URL, want[i].Score)
		}
	}
	// The full-coverage doc outranks the half-coverage graze on the shard
	// exactly as on the monolith.
	if hits[0].Doc.URL != "https://hs/" {
		t.Fatalf("shard top hit = %s, want https://hs/", hits[0].Doc.URL)
	}
	none := ix.Shard(func(webcorpus.Doc) bool { return false })
	if hits := none.Search("high school", 10); hits != nil {
		t.Fatalf("empty shard returned hits: %+v", hits)
	}
}

// TestShardRequiresFreeze documents that sharding a mutable index is a
// programming error.
func TestShardRequiresFreeze(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shard before Freeze did not panic")
		}
	}()
	New().Shard(func(webcorpus.Doc) bool { return true })
}
