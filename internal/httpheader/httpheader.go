// Package httpheader is the single home of every custom X-* HTTP header
// name the cluster protocol rides on. The geoserplint headerkey analyzer
// forbids raw "X-*" string literals everywhere else in the module, so a
// header name can only be spelled through these constants — the compiler
// catches a misspelled identifier, whereas a typo'd literal silently
// reads as an absent header: the trace degrades to orphan roots, the
// deadline stops propagating, the partial-page marker vanishes.
//
// Constants are named after the header's suffix (X-Trace-Id -> TraceID)
// so call sites read as the wire protocol does. Add new headers here,
// never inline.
package httpheader

const (
	// TraceID carries the request's trace ID: the stable identity that
	// joins a browser-side fetch span, the router's fan-out legs, and
	// each shard's server spans into one cross-process trace.
	TraceID = "X-Trace-Id"

	// TraceAttempt carries the client's 1-based fetch attempt number
	// beside TraceID. The server folds it into its span IDs so each
	// retry of a request yields distinct, attributable server spans.
	TraceAttempt = "X-Trace-Attempt"

	// ParentSpan carries the caller's span ID across a process boundary
	// beside TraceID, so a server can mint its span as a remote child of
	// the caller's leg and the stitcher can hang it under the right
	// parent.
	ParentSpan = "X-Parent-Span"

	// DeadlineMs carries the client's absolute request deadline as unix
	// milliseconds on the shared virtual clock, letting every hop shed
	// work that cannot finish in time.
	DeadlineMs = "X-Deadline-Ms"

	// Datacenter pins a request to a named replica, emulating a client
	// whose DNS resolved the search frontend to a specific datacenter.
	Datacenter = "X-Datacenter"

	// SerpPartial marks a 200 response whose named vertical was
	// assembled fail-soft after a dependency fault ("web": organic
	// results degraded).
	SerpPartial = "X-Serp-Partial"

	// StatzRing names the ring-buffer window a /statz snapshot was
	// computed over, so scrapers can detect a truncated audit window.
	StatzRing = "X-Statz-Ring"

	// ServedBy echoes the replica that actually served the page, for
	// datacenter-pinning assertions and scatter-gather attribution.
	ServedBy = "X-Served-By"

	// ForwardedFor carries the emulated client IP driving server-side
	// geolocation — the independent variable of the whole study.
	ForwardedFor = "X-Forwarded-For"
)
