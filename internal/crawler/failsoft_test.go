package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"geoserp/internal/browser"
	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/storage"
)

// brokenVantageRig serves every request normally except those from the
// given vantage coordinate, which always receive a 500 — one persistently
// broken location in an otherwise healthy campaign.
func brokenVantageRig(t *testing.T, cfg Config, badLL string) (*simclock.Manual, *Crawler) {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	eng := engine.New(engine.DefaultConfig(), clk)
	inner := serpserver.NewHandler(eng)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("ll") == badLL {
			http.Error(w, "vantage hardware fault", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	cr, err := New(cfg, clk, srv.URL, geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	return clk, cr
}

func TestFailSoftPhaseRecordsFailedObservations(t *testing.T) {
	badLoc := geo.StudyDataset().At(geo.County)[0]
	cfg := DefaultConfig()
	cfg.FailureBudget = 0.1 // 2 failed fetches out of 30 per round
	clk, cr := brokenVantageRig(t, cfg, badLoc.Point.String())

	phase := smallPhase(3, geo.County, 1)
	obs, err := cr.RunCampaignVirtual(clk, []Phase{phase})
	if err != nil {
		t.Fatalf("campaign aborted despite failure budget: %v", err)
	}
	// Every slot is recorded: 3 terms × 15 locations × 2 roles.
	if want := 3 * 15 * 2; len(obs) != want {
		t.Fatalf("observations = %d, want %d", len(obs), want)
	}
	var failed, ok int
	for _, o := range obs {
		if err := o.Validate(); err != nil {
			t.Fatalf("invalid observation: %v", err)
		}
		if o.Failed {
			failed++
			if o.LocationID != badLoc.ID {
				t.Fatalf("unexpected failure at %s: %s", o.LocationID, o.Err)
			}
			if o.Err == "" || o.Page != nil || o.TraceID == "" || o.Phase != "test" {
				t.Fatalf("malformed failed observation: %+v", o)
			}
		} else {
			ok++
			if o.LocationID == badLoc.ID {
				t.Fatal("broken vantage produced a successful observation")
			}
		}
	}
	// The broken vantage fails treatment and control for all 3 terms.
	if failed != 6 {
		t.Fatalf("failed observations = %d, want 6", failed)
	}
	if ok != 3*14*2 {
		t.Fatalf("successful observations = %d", ok)
	}
	// Telemetry: every failure was retried to exhaustion first.
	inst := cr.instruments()
	if got := inst.fetchFailures.With("test").Value(); got != 6 {
		t.Fatalf("crawler_fetch_failures_total{test} = %d, want 6", got)
	}
	wantRetries := uint64(6 * (cfg.RetryAttempts - 1))
	if got := inst.fetchRetries.With("test").Value(); got != wantRetries {
		t.Fatalf("crawler_fetch_retries_total{test} = %d, want %d", got, wantRetries)
	}
}

func TestFailureBudgetZeroAbortsOnFirstFailure(t *testing.T) {
	badLoc := geo.StudyDataset().At(geo.County)[0]
	cfg := DefaultConfig() // FailureBudget 0: strict
	clk, cr := brokenVantageRig(t, cfg, badLoc.Point.String())
	if _, err := cr.RunCampaignVirtual(clk, []Phase{smallPhase(2, geo.County, 1)}); err == nil {
		t.Fatal("zero-budget campaign tolerated a failing vantage")
	}
}

func TestFailureBudgetValidation(t *testing.T) {
	clk := simclock.NewManual(time.Now())
	ds, corpus := geo.StudyDataset(), queries.StudyCorpus()
	bad := DefaultConfig()
	bad.FailureBudget = 1.5
	if _, err := New(bad, clk, "http://x", ds, corpus); err == nil {
		t.Fatal("failure budget > 1 accepted")
	}
	bad = DefaultConfig()
	bad.RetryAttempts = -1
	if _, err := New(bad, clk, "http://x", ds, corpus); err == nil {
		t.Fatal("negative retry attempts accepted")
	}
}

// resumeRig builds a fresh engine+server+crawler trio on its own virtual
// clock; trace-keyed noise makes two rigs with the same seed byte-for-byte
// interchangeable, which is what checkpoint resume relies on.
func resumeRig(t *testing.T) (*simclock.Manual, *Crawler) {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	eng := engine.New(engine.DefaultConfig(), clk)
	srv := httptest.NewServer(serpserver.NewHandler(eng))
	t.Cleanup(srv.Close)
	cr, err := New(DefaultConfig(), clk, srv.URL, geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	return clk, cr
}

func marshalObs(t *testing.T, obs []storage.Observation) string {
	t.Helper()
	data, err := json.MarshalIndent(obs, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// interruptedRun executes the phase with checkpointing on and cancels at
// the first progress report, returning the checkpoint file's bytes.
func interruptedRun(t *testing.T, phase Phase, ckptPath, obsPath string) []byte {
	t.Helper()
	clk, cr := resumeRig(t)
	cr.EnableCheckpoint(ckptPath, obsPath)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cr.Progress = func(string) { cancel() } // first day-complete report kills the run
	if _, err := cr.RunCampaignVirtualContext(ctx, clk, []Phase{phase}); err == nil {
		t.Fatal("cancelled campaign reported success")
	}
	data, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatalf("read checkpoint after interrupted run: %v", err)
	}
	return data
}

func TestResumeReproducesUninterruptedCampaign(t *testing.T) {
	phase := smallPhase(2, geo.County, 2)
	dir := t.TempDir()

	// Reference: the uninterrupted campaign, checkpointing as it goes so
	// its final cursor file can be compared with the resumed run's.
	refCkpt := filepath.Join(dir, "reference.ckpt")
	clkRef, crRef := resumeRig(t)
	crRef.EnableCheckpoint(refCkpt, filepath.Join(dir, "reference.partial.jsonl"))
	want, err := crRef.RunCampaignVirtual(clkRef, []Phase{phase})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpointing on, cancelled after the first day.
	ckptPath := filepath.Join(dir, "campaign.ckpt")
	obsPath := filepath.Join(dir, "campaign.partial.jsonl")
	ckBytes := interruptedRun(t, phase, ckptPath, obsPath)
	ck, ok, err := storage.LoadCheckpoint(ckptPath)
	if err != nil || !ok {
		t.Fatalf("no checkpoint after interrupted run: ok=%v err=%v", ok, err)
	}
	if ck.Sweeps != 2 || ck.Day != 0 {
		t.Fatalf("checkpoint cursor %+v, want 2 day-0 sweeps", ck)
	}

	// A second, identically interrupted run writes a byte-identical
	// checkpoint file: UpdatedAt comes from the campaign clock, not the
	// machine's, so the cursor itself is deterministic.
	ckBytes2 := interruptedRun(t, phase,
		filepath.Join(dir, "campaign2.ckpt"), filepath.Join(dir, "campaign2.partial.jsonl"))
	if !bytes.Equal(ckBytes, ckBytes2) {
		t.Fatalf("identically interrupted runs wrote different checkpoint files:\n%s\nvs\n%s", ckBytes, ckBytes2)
	}

	// Resumed run: a brand-new crawler against a brand-new engine.
	clk2, cr2 := resumeRig(t)
	if err := cr2.Resume(ckptPath, obsPath); err != nil {
		t.Fatal(err)
	}
	got, err := cr2.RunCampaignVirtual(clk2, []Phase{phase})
	if err != nil {
		t.Fatal(err)
	}
	if marshalObs(t, got) != marshalObs(t, want) {
		t.Fatal("resumed campaign's observations differ from the uninterrupted run")
	}
	// Day alignment survived the fast-forward: day-1 pages really were
	// served on engine day 1.
	for _, o := range got {
		if o.Page.Day != o.Day {
			t.Fatalf("crawler day %d served engine day %d after resume", o.Day, o.Page.Day)
		}
	}
	// The resumed run only re-fetched days it had not completed.
	if ck2, ok, err := storage.LoadCheckpoint(ckptPath); err != nil || !ok || ck2.Sweeps != 4 {
		t.Fatalf("final checkpoint %+v ok=%v err=%v, want 4 sweeps", ck2, ok, err)
	}
	// And its final cursor file is byte-identical to the uninterrupted
	// run's: the crash-and-resume left no trace even in the metadata.
	finalRef, err := os.ReadFile(refCkpt)
	if err != nil {
		t.Fatal(err)
	}
	finalResumed, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(finalRef, finalResumed) {
		t.Fatalf("resumed run's final checkpoint differs from the uninterrupted run's:\n%s\nvs\n%s", finalResumed, finalRef)
	}
}

func TestResumeWithoutCheckpointStartsFresh(t *testing.T) {
	dir := t.TempDir()
	clk, cr := resumeRig(t)
	if err := cr.Resume(filepath.Join(dir, "none.ckpt"), filepath.Join(dir, "none.jsonl")); err != nil {
		t.Fatal(err)
	}
	obs, err := cr.RunCampaignVirtual(clk, []Phase{smallPhase(1, geo.County, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1*15*2 {
		t.Fatalf("observations = %d", len(obs))
	}
	// The run wrote a checkpoint as it went.
	if _, ok, err := storage.LoadCheckpoint(filepath.Join(dir, "none.ckpt")); err != nil || !ok {
		t.Fatalf("fresh checkpointed run left no cursor: ok=%v err=%v", ok, err)
	}
}

func TestChaosCampaignCompletesWithinBudget(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	eng := engine.New(engine.DefaultConfig(), clk)
	srv := httptest.NewServer(serpserver.NewHandler(eng))
	t.Cleanup(srv.Close)
	cfg := DefaultConfig()
	cfg.FailureBudget = 0.2
	cr, err := New(cfg, clk, srv.URL, geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	// 5% injected fetch-error rate with latency, slept on the campaign
	// clock so virtual time absorbs it.
	chaos := browser.NewChaosTransport(browser.ChaosConfig{
		Seed:      99,
		ErrorRate: 0.05,
		Latency:   250 * time.Millisecond,
		Clock:     clk,
	}, nil)
	cr.Transport = chaos

	phase := smallPhase(3, geo.County, 2)
	obs, err := cr.RunCampaignVirtual(clk, []Phase{phase})
	if err != nil {
		t.Fatalf("chaos campaign aborted: %v", err)
	}
	if want := 3 * 15 * 2 * 2; len(obs) != want {
		t.Fatalf("observations = %d, want %d (every slot recorded)", len(obs), want)
	}
	if chaos.Injected() == 0 {
		t.Fatal("chaos transport injected nothing at a 5% error rate")
	}
	// With 3 attempts against a 5% error rate, nearly every fetch
	// recovers; the retry counter must show the recovery work happened.
	inst := cr.instruments()
	if inst.fetchRetries.With("test").Value() == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
	failed := 0
	for _, o := range obs {
		if o.Failed {
			failed++
		}
	}
	// 0.05^3 per-fetch residual failure odds: the budget (20% per round)
	// must never have been threatened.
	if failed > len(obs)/10 {
		t.Fatalf("failed observations = %d/%d, retries not absorbing the fault rate", failed, len(obs))
	}
}
