package crawler

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
)

// faultProxy forwards to a real handler but fails every nth request with
// the given status — the crawler-facing failure injection.
type faultProxy struct {
	next    http.Handler
	every   int64
	status  int
	counter atomic.Int64
}

func (f *faultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.counter.Add(1)%f.every == 0 {
		http.Error(w, "injected fault", f.status)
		return
	}
	f.next.ServeHTTP(w, r)
}

func faultRig(t *testing.T, every int64, status int) (*simclock.Manual, *Crawler) {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	eng := engine.New(engine.DefaultConfig(), clk)
	srv := httptest.NewServer(&faultProxy{
		next:   serpserver.NewHandler(eng),
		every:  every,
		status: status,
	})
	t.Cleanup(srv.Close)
	// Single-attempt, zero-budget config: these tests pin the strict
	// failure surface, before retries or the failure budget soften it.
	cfg := DefaultConfig()
	cfg.RetryAttempts = 1
	cr, err := New(cfg, clk, srv.URL, geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	return clk, cr
}

func TestCampaignSurfacesServerFaults(t *testing.T) {
	// A server failing 1-in-5 requests with 500s must fail the campaign
	// loudly — partial, silently corrupted datasets are worse than none.
	clk, cr := faultRig(t, 5, http.StatusInternalServerError)
	_, err := cr.RunCampaignVirtual(clk, []Phase{smallPhase(3, geo.County, 1)})
	if err == nil {
		t.Fatal("campaign succeeded despite injected 500s")
	}
}

func TestCampaignSurfacesGarbageResponses(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("<html>this is not a results page</html>"))
	}))
	t.Cleanup(srv.Close)
	cr, err := New(DefaultConfig(), clk, srv.URL, geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.RunCampaignVirtual(clk, []Phase{smallPhase(1, geo.County, 1)}); err == nil {
		t.Fatal("campaign accepted unparseable pages")
	}
}

func TestCampaignAgainstUnreachableServer(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	// A port that nothing listens on.
	cr, err := New(DefaultConfig(), clk, "http://127.0.0.1:1", geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.RunCampaignVirtual(clk, []Phase{smallPhase(1, geo.County, 1)}); err == nil {
		t.Fatal("campaign succeeded against an unreachable server")
	}
}

func TestValidationSurfacesFaults(t *testing.T) {
	clk, cr := faultRig(t, 3, http.StatusBadGateway)
	terms := queries.StudyCorpus().Category(queries.Controversial)[:2]
	var verr error
	driveClock(clk, func() {
		_, verr = cr.RunValidation(terms, geo.Point{Lat: 41.5, Lon: -81.7}, 8)
	})
	if verr == nil {
		t.Fatal("validation succeeded despite injected 502s")
	}
}
