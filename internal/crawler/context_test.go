package crawler

import (
	"context"
	"errors"
	"testing"
	"time"

	"geoserp/internal/geo"
	"geoserp/internal/storage"
)

func TestRunCampaignContextCancellation(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	ctx, cancel := context.WithCancel(context.Background())

	// Cancel after the first progress callback (first day of sweeps).
	rig.cr.Progress = func(string) { cancel() }

	var obs []storage.Observation
	var err error
	driveClock(rig.clk, func() {
		obs, err = rig.cr.RunCampaignContext(ctx, []Phase{smallPhase(4, geo.County, 5)})
	})
	if err == nil {
		t.Fatal("cancelled campaign completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if obs != nil {
		t.Fatal("cancelled campaign returned partial observations")
	}
}

func TestRunCampaignContextPreCancelled(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rig.cr.RunCampaignContext(ctx, []Phase{smallPhase(1, geo.County, 1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCampaignContextUncancelledCompletes(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var obs []storage.Observation
	var err error
	driveClock(rig.clk, func() {
		obs, err = rig.cr.RunCampaignContext(ctx, []Phase{smallPhase(2, geo.County, 1)})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2*15*2 {
		t.Fatalf("observations = %d", len(obs))
	}
}
