package crawler

import (
	"bytes"
	"strings"
	"testing"

	"geoserp/internal/geo"
	"geoserp/internal/telemetry"
)

func TestPhaseReportsProgressCounters(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	var buf bytes.Buffer
	rig.cr.Logger = telemetry.NewLogger(&buf, "text")
	phase := smallPhase(2, geo.County, 1)
	obs, err := rig.cr.RunCampaignVirtual(rig.clk, []Phase{phase})
	if err != nil {
		t.Fatal(err)
	}

	reg := rig.cr.Telemetry
	if reg == nil {
		t.Fatal("crawler did not create a telemetry registry")
	}
	var rendered bytes.Buffer
	if err := reg.WritePrometheus(&rendered); err != nil {
		t.Fatal(err)
	}
	out := rendered.String()

	// 2 terms × 15 county locations × 2 roles.
	wantQueries := 2 * 15 * 2
	for _, want := range []string{
		"crawler_queries_total 60",
		"crawler_terms_completed_total 2",
		"browser_fetches_total 60",
		"crawler_round_duration_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry missing %q:\n%s", want, out)
		}
	}
	if len(obs) != wantQueries {
		t.Fatalf("observations = %d, want %d", len(obs), wantQueries)
	}

	// Structured day summary reaches the logger.
	log := buf.String()
	for _, want := range []string{"phase day complete", "terms_completed=2", "queries_issued=60"} {
		if !strings.Contains(log, want) {
			t.Fatalf("day summary missing %q:\n%s", want, log)
		}
	}
}

func TestTraceIDsEndToEnd(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	phase := smallPhase(1, geo.County, 1)
	obs, err := rig.cr.RunCampaignVirtual(rig.clk, []Phase{phase})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, o := range obs {
		// The stored ID must match the deterministic mint for the
		// observation's coordinates — proving the crawler-minted ID made
		// the round trip through the wire and the server's echo.
		want := telemetry.MintTraceID(0, phase.Name, o.Granularity, "0", o.Term, o.LocationID, string(o.Role))
		if o.TraceID != want {
			t.Fatalf("observation %s/%s trace = %q, want %q", o.LocationID, o.Role, o.TraceID, want)
		}
		if o.Page.TraceID != o.TraceID {
			t.Fatalf("page trace %q != observation trace %q", o.Page.TraceID, o.TraceID)
		}
		if seen[o.TraceID] {
			t.Fatalf("trace %s minted twice", o.TraceID)
		}
		seen[o.TraceID] = true
	}
}

func TestValidationBrowsersShareRegistry(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	corpus := smallPhase(1, geo.County, 1).Terms
	done := make(chan error, 1)
	go func() {
		_, err := rig.cr.RunValidation(corpus, geo.Point{Lat: 41.4993, Lon: -81.6944}, 3)
		done <- err
	}()
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if got := rig.cr.Telemetry.Counter("browser_fetches_total", "").Value(); got != 3 {
				t.Fatalf("browser_fetches_total = %d, want 3", got)
			}
			return
		default:
			if next, ok := rig.clk.NextDeadline(); ok {
				rig.clk.AdvanceTo(next)
			}
		}
	}
}
