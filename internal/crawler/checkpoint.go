package crawler

import (
	"fmt"

	"geoserp/internal/simclock"
	"geoserp/internal/storage"
)

// checkpointState tracks campaign progress persistence. The cursor is a
// count of completed term sweeps in the campaign's deterministic iteration
// order (phase → granularity → day → term); on resume the crawler replays
// that order, fast-forwarding over the first ck.Sweeps sweeps and serving
// their observations from the partial observation file.
type checkpointState struct {
	path    string
	obsPath string
	// clk stamps UpdatedAt from the campaign clock, so checkpoints written
	// under virtual time are byte-identical across a run and its resumed
	// re-run (the resume byte-exactness test covers the file itself).
	clk simclock.Clock
	ck  storage.Checkpoint
	// seen counts sweep slots passed this run (skipped or executed).
	seen int
	// prior holds the recovered observations grouped by phase name.
	prior map[string][]storage.Observation
	// priorBySweep indexes the same recovered observations by sweep slot,
	// so skipped sweeps can be replayed to the crawler's SweepSink.
	priorBySweep map[sweepSlot][]storage.Observation
}

// sweepSlot identifies one term sweep in the campaign's deterministic
// iteration order.
type sweepSlot struct {
	phase       string
	granularity string
	day         int
	term        string
}

// priorFor returns the recovered observations of one checkpointed sweep.
func (cs *checkpointState) priorFor(phase, gran string, day int, term string) []storage.Observation {
	return cs.priorBySweep[sweepSlot{phase, gran, day, term}]
}

// skipping reports whether the next sweep slot is already covered by the
// loaded checkpoint.
func (cs *checkpointState) skipping() bool { return cs.seen < cs.ck.Sweeps }

// record persists one completed sweep: its observations are appended to the
// observation file first, then the cursor is atomically advanced. A crash
// between the two leaves extra observation records past the cursor, which
// resume discards and re-fetches — never the reverse, a cursor claiming
// records that were not written.
func (cs *checkpointState) record(phase, gran string, day int, term string, obs []storage.Observation) error {
	if err := storage.AppendJSONL(cs.obsPath, obs); err != nil {
		return fmt.Errorf("crawler: checkpoint observations: %w", err)
	}
	cs.seen++
	cs.ck.Sweeps = cs.seen
	cs.ck.Observations += len(obs)
	cs.ck.Phase = phase
	cs.ck.Granularity = gran
	cs.ck.Day = day
	cs.ck.Term = term
	cs.ck.UpdatedAt = cs.clk.Now().UTC()
	if err := storage.SaveCheckpoint(cs.path, cs.ck); err != nil {
		return fmt.Errorf("crawler: save checkpoint: %w", err)
	}
	return nil
}

// EnableCheckpoint makes campaign runs persist progress: after every
// completed term sweep the sweep's observations are appended to obsPath and
// the cursor at path is atomically updated. A killed campaign can then be
// restarted with Resume and loses at most the sweep that was in flight.
func (c *Crawler) EnableCheckpoint(path, obsPath string) {
	c.ckpt = &checkpointState{
		path:         path,
		obsPath:      obsPath,
		clk:          c.clock,
		prior:        make(map[string][]storage.Observation),
		priorBySweep: make(map[sweepSlot][]storage.Observation),
	}
}

// Resume enables checkpointing and, when a checkpoint exists at path, loads
// it: completed sweeps will be fast-forwarded and their observations
// recovered from obsPath instead of re-fetched. A missing checkpoint means
// a fresh start. The observation file is truncated to exactly the records
// the cursor acknowledges, dropping any sweep that was torn by the crash.
func (c *Crawler) Resume(path, obsPath string) error {
	ck, ok, err := storage.LoadCheckpoint(path)
	if err != nil {
		return fmt.Errorf("crawler: resume: %w", err)
	}
	c.EnableCheckpoint(path, obsPath)
	if !ok {
		return nil
	}
	obs, err := storage.LoadCheckpointObservations(obsPath, ck)
	if err != nil {
		return fmt.Errorf("crawler: resume: %w", err)
	}
	// Rewrite the file to the acknowledged prefix so subsequent appends
	// continue from a state the cursor agrees with.
	if err := storage.SaveJSONL(obsPath, obs); err != nil {
		return fmt.Errorf("crawler: resume: truncate observations: %w", err)
	}
	c.ckpt.ck = ck
	for _, o := range obs {
		c.ckpt.prior[o.Phase] = append(c.ckpt.prior[o.Phase], o)
		slot := sweepSlot{o.Phase, o.Granularity, o.Day, o.Term}
		c.ckpt.priorBySweep[slot] = append(c.ckpt.priorBySweep[slot], o)
	}
	return nil
}
