package crawler

import (
	"time"

	"geoserp/internal/geo"
	"geoserp/internal/storage"
)

// SweepInfo describes one completed lock-step sweep: a single term queried
// from every vantage of one granularity, treatment and control, on one
// campaign day.
type SweepInfo struct {
	Phase       string `json:"phase"`
	Granularity string `json:"granularity"`
	Term        string `json:"term"`
	Day         int    `json:"day"`
	// Sweep is the 0-based campaign-wide sweep index, contiguous across
	// phases, granularities, and days in the campaign's deterministic
	// iteration order.
	Sweep int `json:"sweep"`
	// At is the campaign-clock instant the sweep's lock-step slot was
	// scheduled — the same instant every observation in the sweep carries
	// as FetchedAt. The slot instant, not the completion instant: how far
	// a sweep's retry tail ran past its slot depends on wall-clock
	// scheduling (which concurrent fetches the admission gate shed, and
	// therefore which chaos draws their retries hit), so stamping
	// completion would make otherwise byte-identical same-seed campaign
	// timelines diverge. The schedule is absolute, so the slot instant is
	// deterministic under a Manual clock, never wall time.
	At time.Time `json:"at"`
	// Recovered marks a sweep served from a resume checkpoint instead of
	// fetched this run.
	Recovered bool `json:"recovered,omitempty"`
}

// SweepSink consumes completed sweeps. ObserveSweep is called from the
// scheduling goroutine after the sweep's observations are final (and
// checkpointed, when checkpointing is on); a slow sink therefore delays
// the campaign, and implementations are expected to be fast or to hand
// off internally. The obs slice must not be mutated or retained.
type SweepSink interface {
	ObserveSweep(info SweepInfo, obs []storage.Observation)
}

// ProgressSnapshot is a point-in-time view of a campaign's progress, safe
// to read from any goroutine via Crawler.ProgressState.
type ProgressSnapshot struct {
	// Phase, Granularity, and Day locate the most recently completed
	// sweep.
	Phase       string `json:"phase"`
	Granularity string `json:"granularity"`
	Day         int    `json:"day"`
	// SweepsDone / SweepsTotal count term sweeps, recovered ones
	// included; SweepsTotal is fixed when the campaign plan is laid out.
	SweepsDone  int `json:"sweeps_done"`
	SweepsTotal int `json:"sweeps_total"`
	// Observations, Failed, and Shed tally the captured slots so far.
	Observations int `json:"observations"`
	Failed       int `json:"failed"`
	Shed         int `json:"shed"`
	// FailureBudget and ShedBudget echo the per-round budget
	// configuration, so a live dashboard can show consumption against
	// allowance.
	FailureBudget float64 `json:"failure_budget"`
	ShedBudget    float64 `json:"shed_budget"`
	// VirtualNow is the campaign-clock instant of the last completed
	// sweep; VirtualETA is the campaign-clock instant the schedule ends
	// (start + one 24h block per granularity-day).
	VirtualNow time.Time `json:"virtual_now"`
	VirtualETA time.Time `json:"virtual_eta"`
}

// ProgressState returns the current campaign progress. It is safe to call
// concurrently with a running campaign.
func (c *Crawler) ProgressState() ProgressSnapshot {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	return c.prog
}

// planCampaign lays out the progress plan: total sweep count and the
// virtual-clock ETA, both derived from the phase list alone (the lock-step
// schedule is absolute, so the ETA is exact for campaigns that finish).
func (c *Crawler) planCampaign(phases []Phase) {
	now := c.clock.Now()
	total := 0
	var span time.Duration
	for _, p := range phases {
		total += len(p.Granularities) * p.Days * len(p.Terms)
		span += time.Duration(len(p.Granularities)*p.Days) * 24 * time.Hour
	}
	c.progMu.Lock()
	c.prog = ProgressSnapshot{
		SweepsTotal:   total,
		FailureBudget: c.cfg.FailureBudget,
		ShedBudget:    c.cfg.ShedBudget,
		VirtualNow:    now,
		VirtualETA:    now.Add(span),
	}
	c.progMu.Unlock()
}

// notifySweep advances the progress state for one completed sweep and
// forwards it to the sink (outside the progress lock). at is the sweep's
// absolute slot instant from the lock-step schedule (see SweepInfo.At).
func (c *Crawler) notifySweep(phase string, g geo.Granularity, day int, term string, at time.Time, obs []storage.Observation, recovered bool) {
	c.progMu.Lock()
	info := SweepInfo{
		Phase:       phase,
		Granularity: g.Short(),
		Term:        term,
		Day:         day,
		Sweep:       c.prog.SweepsDone,
		At:          at,
		Recovered:   recovered,
	}
	c.prog.SweepsDone++
	c.prog.Phase = phase
	c.prog.Granularity = g.Short()
	c.prog.Day = day
	c.prog.Observations += len(obs)
	for i := range obs {
		if obs[i].Failed {
			c.prog.Failed++
		}
		if obs[i].Shed {
			c.prog.Shed++
		}
	}
	c.prog.VirtualNow = info.At
	c.progMu.Unlock()
	if c.Sink != nil {
		c.Sink.ObserveSweep(info, obs)
	}
}
