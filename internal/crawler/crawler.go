// Package crawler implements the study's measurement harness (§2.2): a
// pool of crawl machines in one /24 subnet, scripted browsers with spoofed
// Geolocation coordinates, lock-step scheduling (every treatment of a term
// fires at the same instant), simultaneous treatment/control pairs, static
// datacenter pinning, an 11-minute spacing between successive queries from
// the same browser, and multi-day campaign phases.
package crawler

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"geoserp/internal/browser"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/serp"
	"geoserp/internal/simclock"
	"geoserp/internal/storage"
	"geoserp/internal/telemetry"
)

// Config describes the crawl infrastructure.
type Config struct {
	// Machines is the number of crawl machines (the study used 44).
	Machines int
	// Subnet is the /24 the machines share, e.g. "10.44.7".
	Subnet string
	// WaitBetweenTerms is the spacing between successive queries from
	// the same set of browsers — 11 minutes in the study, comfortably
	// past the engine's 10-minute history window.
	WaitBetweenTerms time.Duration
	// PinnedDatacenter fixes which replica serves every query (the
	// study's static DNS mapping). Empty means unpinned.
	PinnedDatacenter string
	// ClearCookies controls whether browsers reset cookies after every
	// query (the study's protocol; disable only for methodology
	// experiments).
	ClearCookies bool
	// RetryAttempts is the total tries per fetch (browser.WithRetry
	// semantics). 0 or 1 means a single attempt; negative is rejected.
	RetryAttempts int
	// RetryBackoff is the linear backoff base between retry attempts,
	// slept on the campaign clock — virtual-time campaigns absorb it
	// instantly.
	RetryBackoff time.Duration
	// FetchTimeout bounds each fetch attempt in wall time (0 keeps the
	// browser's 30s default).
	FetchTimeout time.Duration
	// FailureBudget is the fraction of fetches in one lock-step round
	// allowed to fail — after retries are exhausted — before the phase
	// aborts. Failures inside the budget are recorded as Failed
	// observations and the campaign continues; 0 keeps the strict
	// historical behaviour where any failure aborts the phase. Fetches
	// the server shed under admission control are charged to ShedBudget
	// instead — being told "not now" is a different signal from a broken
	// fetch.
	FailureBudget float64
	// ShedBudget is the fraction of fetches in one round allowed to end
	// shed (503 after the browser's shed-retry policy gave up). 0 aborts
	// on any terminal shed — the right default when the server is
	// expected to keep up with the campaign.
	ShedBudget float64
	// BreakerThreshold, when positive, arms a per-browser circuit
	// breaker: that many consecutive failed attempts against the search
	// endpoint fail fast for BreakerCooldown before a probe is let
	// through. 0 leaves the breaker off.
	BreakerThreshold int
	// BreakerCooldown is the open-state dwell; required positive when
	// BreakerThreshold is set.
	BreakerCooldown time.Duration
	// DeadlineBudget, when positive, gives every fetch an absolute
	// deadline that far ahead on the campaign clock, propagated to the
	// server (X-Deadline-Ms) so it can shed or abandon doomed work. 0
	// propagates no deadline.
	DeadlineBudget time.Duration
	// MaxBodyBytes, when positive, caps how much of a response body a
	// browser will read; oversized pages fail permanently (no retry). 0
	// keeps the browser's default cap.
	MaxBodyBytes int64
}

// DefaultConfig mirrors the study's infrastructure.
func DefaultConfig() Config {
	return Config{
		Machines:         44,
		Subnet:           "10.44.7",
		WaitBetweenTerms: 11 * time.Minute,
		PinnedDatacenter: "dc-0",
		ClearCookies:     true,
		RetryAttempts:    3,
		RetryBackoff:     30 * time.Second,
	}
}

// Phase is one sweep of a term set over a location set for several days —
// the study ran two: local+controversial for 5 days, then politicians for
// 5 days, each at all three granularities.
type Phase struct {
	// Name labels the phase in logs.
	Name string
	// Terms are the queries to execute.
	Terms []queries.Query
	// Granularities selects the vantage-point sets.
	Granularities []geo.Granularity
	// Days is how many consecutive days to repeat the sweep.
	Days int
}

// StudyPhases returns the paper's two campaign phases over the given
// corpus.
func StudyPhases(corpus *queries.Corpus) []Phase {
	localAndControversial := append([]queries.Query{}, corpus.Category(queries.Local)...)
	localAndControversial = append(localAndControversial, corpus.Category(queries.Controversial)...)
	return []Phase{
		{
			Name:          "local+controversial",
			Terms:         localAndControversial,
			Granularities: geo.Granularities,
			Days:          5,
		},
		{
			Name:          "politicians",
			Terms:         corpus.Category(queries.Politician),
			Granularities: geo.Granularities,
			Days:          5,
		},
	}
}

// Crawler runs campaigns against a search service.
type Crawler struct {
	cfg     Config
	clock   simclock.Clock
	baseURL string
	ds      *geo.Dataset
	corpus  *queries.Corpus
	// Progress is called (if set) after each term sweep with a short
	// status line.
	Progress func(string)
	// Logger, when set, receives structured progress records (Info) and
	// one per-fetch record with the minted trace ID (Debug).
	Logger *slog.Logger
	// Telemetry is the registry the campaign reports through: per-phase
	// progress counters, the lock-step round-duration histogram, and
	// the browser pool's fetch/429/retry counters. Lazily created when
	// nil; set it to share one registry with the rest of a process.
	Telemetry *telemetry.Registry
	// Transport, when set, is installed in every browser the crawler
	// builds. Fault-injection tests pass a browser.ChaosTransport here;
	// production leaves it nil.
	Transport http.RoundTripper
	// Spans, when set, records the campaign timeline: one span per
	// campaign, phase, and term sweep (nested), plus one "browser.fetch"
	// span per fetch attempt across the pool. Campaigns on a Manual clock
	// record a deterministic timeline; cmd/crawl and cmd/repro write it
	// out in Chrome trace-event format via -trace-out.
	Spans *telemetry.SpanRecorder
	// Sink, when set, receives every completed term sweep — executed or
	// recovered from a checkpoint — from the scheduling goroutine, in
	// campaign order. This is how the streaming analysis layer (and its
	// /statz surface) watches a campaign converge; see internal/statz.
	Sink SweepSink

	inst *crawlInstruments
	ckpt *checkpointState
	// progMu guards prog: the scheduler updates it per sweep, the /statz
	// handler reads it from request goroutines.
	progMu sync.Mutex
	prog   ProgressSnapshot
	// planned marks that RunCampaignContext already sized the progress
	// plan, so nested RunPhaseContext calls don't re-plan per phase.
	planned bool
	// wall times lock-step rounds for the round-duration histogram: the
	// campaign clock may be virtual, but the histogram reports how long
	// the hardware took.
	wall simclock.Clock
}

// crawlInstruments are the crawler's registered metrics.
type crawlInstruments struct {
	queries       *telemetry.Counter    // crawler_queries_total
	terms         *telemetry.Counter    // crawler_terms_completed_total
	limited       *telemetry.Counter    // browser_rate_limited_total (shared with the pool)
	roundDur      *telemetry.Histogram  // crawler_round_duration_seconds
	fetchFailures *telemetry.CounterVec // crawler_fetch_failures_total{phase}
	fetchRetries  *telemetry.CounterVec // crawler_fetch_retries_total{phase}
	fetchShed     *telemetry.CounterVec // crawler_fetch_shed_total{phase}
}

// instruments lazily registers the crawler's metrics. Called from the
// scheduling goroutine only.
func (c *Crawler) instruments() *crawlInstruments {
	if c.inst == nil {
		if c.Telemetry == nil {
			c.Telemetry = telemetry.NewRegistry()
		}
		c.inst = &crawlInstruments{
			queries: c.Telemetry.Counter("crawler_queries_total", "Queries issued across all vantages and roles."),
			terms:   c.Telemetry.Counter("crawler_terms_completed_total", "Lock-step term sweeps completed."),
			limited: c.Telemetry.Counter("browser_rate_limited_total", "429 responses observed across the browser pool."),
			roundDur: c.Telemetry.Histogram("crawler_round_duration_seconds",
				"Wall-clock time of one lock-step round (every vantage, treatment and control).", nil),
			fetchFailures: c.Telemetry.CounterVec("crawler_fetch_failures_total",
				"Fetches that still failed after the retry policy, by phase.", "phase"),
			fetchRetries: c.Telemetry.CounterVec("crawler_fetch_retries_total",
				"Fetch retry attempts across the browser pool, by phase.", "phase"),
			fetchShed: c.Telemetry.CounterVec("crawler_fetch_shed_total",
				"Fetches that ended shed by server admission control, by phase.", "phase"),
		}
	}
	return c.inst
}

// New builds a crawler. The clock must be the same clock the engine uses
// when both run in-process (virtual-time campaigns); against a remote
// server use simclock.Wall().
func New(cfg Config, clk simclock.Clock, baseURL string, ds *geo.Dataset, corpus *queries.Corpus) (*Crawler, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("crawler: need at least one machine")
	}
	if cfg.Subnet == "" {
		return nil, fmt.Errorf("crawler: subnet must be set")
	}
	if baseURL == "" {
		return nil, fmt.Errorf("crawler: base URL must be set")
	}
	if cfg.RetryAttempts < 0 {
		return nil, fmt.Errorf("crawler: negative retry attempts %d", cfg.RetryAttempts)
	}
	if cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("crawler: negative retry backoff %s", cfg.RetryBackoff)
	}
	if cfg.FailureBudget < 0 || cfg.FailureBudget > 1 {
		return nil, fmt.Errorf("crawler: failure budget %v outside [0, 1]", cfg.FailureBudget)
	}
	if cfg.ShedBudget < 0 || cfg.ShedBudget > 1 {
		return nil, fmt.Errorf("crawler: shed budget %v outside [0, 1]", cfg.ShedBudget)
	}
	if cfg.BreakerThreshold < 0 {
		return nil, fmt.Errorf("crawler: negative breaker threshold %d", cfg.BreakerThreshold)
	}
	if cfg.BreakerThreshold > 0 && cfg.BreakerCooldown <= 0 {
		return nil, fmt.Errorf("crawler: breaker threshold %d needs a positive cooldown", cfg.BreakerThreshold)
	}
	if cfg.DeadlineBudget < 0 {
		return nil, fmt.Errorf("crawler: negative deadline budget %s", cfg.DeadlineBudget)
	}
	if cfg.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("crawler: negative body cap %d", cfg.MaxBodyBytes)
	}
	return &Crawler{cfg: cfg, clock: clk, baseURL: baseURL, ds: ds, corpus: corpus, wall: simclock.Wall()}, nil
}

// MachineIPs returns the crawl machines' addresses: .1 through .N in the
// configured /24.
func (c *Crawler) MachineIPs() []string {
	out := make([]string, c.cfg.Machines)
	for i := range out {
		out[i] = fmt.Sprintf("%s.%d", c.cfg.Subnet, i+1)
	}
	return out
}

// vantage is one browser pair stationed at a location.
type vantage struct {
	loc       geo.Location
	treatment *browser.Browser
	control   *browser.Browser
}

// newVantages builds the treatment/control browser pairs for a location
// set, spreading them across the machine pool so no single IP carries
// enough load to trip the engine's rate limiter.
func (c *Crawler) newVantages(locs []geo.Location) ([]vantage, error) {
	c.instruments() // ensure c.Telemetry exists for the browser pool
	machines := c.MachineIPs()
	out := make([]vantage, 0, len(locs))
	for i, loc := range locs {
		mkBrowser := func(slot int) (*browser.Browser, error) {
			opts := []browser.Option{
				browser.WithSourceIP(machines[slot%len(machines)]),
				browser.WithTelemetry(c.Telemetry),
			}
			if c.cfg.PinnedDatacenter != "" {
				opts = append(opts, browser.WithPinnedDatacenter(c.cfg.PinnedDatacenter))
			}
			opts = append(opts, c.reliabilityOptions()...)
			b, err := browser.New(c.baseURL, opts...)
			if err != nil {
				return nil, err
			}
			b.OverrideGeolocation(loc.Point)
			return b, nil
		}
		t, err := mkBrowser(2 * i)
		if err != nil {
			return nil, fmt.Errorf("crawler: vantage %s: %w", loc.ID, err)
		}
		ctl, err := mkBrowser(2*i + 1)
		if err != nil {
			return nil, fmt.Errorf("crawler: vantage %s: %w", loc.ID, err)
		}
		out = append(out, vantage{loc: loc, treatment: t, control: ctl})
	}
	return out, nil
}

// reliabilityOptions translates the crawl config's retry policy into
// browser options shared by every browser the crawler builds. Retries back
// off on the campaign clock, so virtual-time campaigns replay a 30-second
// backoff instantly while wall-clock deployments genuinely wait.
func (c *Crawler) reliabilityOptions() []browser.Option {
	var opts []browser.Option
	if c.cfg.RetryAttempts > 0 {
		opts = append(opts, browser.WithRetry(c.cfg.RetryAttempts, c.cfg.RetryBackoff))
	}
	if c.cfg.FetchTimeout > 0 {
		opts = append(opts, browser.WithTimeout(c.cfg.FetchTimeout))
	}
	if c.cfg.BreakerThreshold > 0 {
		opts = append(opts, browser.WithBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown))
	}
	if c.cfg.DeadlineBudget > 0 {
		opts = append(opts, browser.WithDeadline(c.cfg.DeadlineBudget))
	}
	if c.cfg.MaxBodyBytes > 0 {
		opts = append(opts, browser.WithMaxBodySize(c.cfg.MaxBodyBytes))
	}
	if c.Transport != nil {
		opts = append(opts, browser.WithTransport(c.Transport))
	}
	if c.Spans != nil {
		opts = append(opts, browser.WithSpans(c.Spans))
	}
	opts = append(opts, browser.WithClock(c.clock))
	return opts
}

// sleepUntil parks the scheduler until an absolute instant on the campaign
// clock, doing nothing when the instant has already passed (a sweep that
// overran its slot starts the next one immediately).
func (c *Crawler) sleepUntil(t time.Time) {
	if d := t.Sub(c.clock.Now()); d > 0 {
		c.clock.Sleep(d)
	}
}

// startSpan opens a span on the campaign recorder: a child of the span
// already on ctx when there is one, else a root of the campaign trace.
// A crawler without Spans gets nil no-op spans throughout.
func (c *Crawler) startSpan(ctx context.Context, name string) (context.Context, *telemetry.Span) {
	if c.Spans == nil {
		return ctx, nil
	}
	if telemetry.SpanRecorderFrom(ctx) == nil {
		ctx = telemetry.WithSpanRecorder(ctx, c.Spans)
	}
	if telemetry.TraceID(ctx) == "" {
		ctx = telemetry.WithTraceID(ctx, telemetry.MintTraceID(0, "campaign"))
	}
	return telemetry.StartSpan(ctx, name)
}

// fetchResult carries one worker's outcome back to the scheduler.
type fetchResult struct {
	obs     storage.Observation
	err     error
	shed    bool // err is a terminal server shed, charged to ShedBudget
	retries int
}

// RunPhase executes one phase and returns every captured observation,
// sorted by (day, granularity, term, location, role) for deterministic
// downstream processing.
func (c *Crawler) RunPhase(p Phase) ([]storage.Observation, error) {
	return c.RunPhaseContext(context.Background(), p)
}

// RunPhaseContext is RunPhase with cancellation: the context is checked at
// every term boundary, so a cancelled multi-day campaign stops within one
// lock-step sweep (plus its inter-term wait on a wall clock).
func (c *Crawler) RunPhaseContext(ctx context.Context, p Phase) ([]storage.Observation, error) {
	if p.Days <= 0 {
		return nil, fmt.Errorf("crawler: phase %q has no days", p.Name)
	}
	ctx, span := c.startSpan(ctx, "crawler.phase")
	span.SetAttr("phase", p.Name)
	span.SetAttr("days", fmt.Sprint(p.Days))
	defer span.End()
	if !c.planned {
		// A standalone phase run plans just itself; campaigns plan the
		// whole phase list up front in RunCampaignContext.
		c.planCampaign([]Phase{p})
	}
	var all []storage.Observation
	if c.ckpt != nil {
		// Observations recovered from the checkpoint file slot in ahead of
		// anything fetched this run; the final sort interleaves them
		// exactly as an uninterrupted campaign would have produced them.
		all = append(all, c.ckpt.prior[p.Name]...)
	}
	_, manualClock := c.clock.(*simclock.Manual)
	for _, g := range p.Granularities {
		locs := c.ds.At(g)
		if len(locs) == 0 {
			return nil, fmt.Errorf("crawler: no locations at %s", g)
		}
		vans, err := c.newVantages(locs)
		if err != nil {
			return nil, err
		}
		for day := 0; day < p.Days; day++ {
			dayStart := c.clock.Now()
			executedThisDay := false
			for ti, q := range p.Terms {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("crawler: phase %q cancelled: %w", p.Name, err)
				}
				// The lock-step schedule is ABSOLUTE: sweep i+1 starts at
				// dayStart + (i+1)*WaitBetweenTerms regardless of how much
				// (virtual) time sweep i burned on retries, Retry-After
				// waits, or breaker cooldowns. Sleeping a relative
				// WaitBetweenTerms instead would let in-round recovery work
				// push every later sweep's timestamps — and the engine's
				// history/day state — off schedule, breaking byte-for-byte
				// reproducibility whenever a fault schedule perturbs one
				// round. The study's cron-style firing behaves the same way.
				slotStart := dayStart.Add(time.Duration(ti) * c.cfg.WaitBetweenTerms)
				nextSlot := dayStart.Add(time.Duration(ti+1) * c.cfg.WaitBetweenTerms)
				if c.ckpt != nil && c.ckpt.skipping() {
					// Fast-forward over a sweep the checkpoint already
					// holds. Under a virtual clock the slot is still slept
					// out so the resumed campaign's timeline — and with it
					// the engine's day counter — replays exactly; under a
					// wall clock re-waiting would cost real hours for
					// nothing. The recovered observations still flow to the
					// sink: a resumed campaign's streaming scorecard must
					// cover the sweeps it did not re-fetch.
					c.ckpt.seen++
					c.notifySweep(p.Name, g, day, q.Term, slotStart,
						c.ckpt.priorFor(p.Name, g.Short(), day, q.Term), true)
					if manualClock {
						c.sleepUntil(nextSlot)
					}
					continue
				}
				executedThisDay = true
				obs, err := c.sweepTerm(ctx, p.Name, q, g, day, vans)
				if err != nil {
					return nil, err
				}
				all = append(all, obs...)
				if c.ckpt != nil {
					if err := c.ckpt.record(p.Name, g.Short(), day, q.Term, obs); err != nil {
						return nil, err
					}
				}
				c.notifySweep(p.Name, g, day, q.Term, slotStart, obs, false)
				// Park until the next term's slot (11 minutes after this
				// one began, in the study).
				c.sleepUntil(nextSlot)
			}
			// Park until the next day boundary so the crawl's "day d"
			// labels coincide with the engine's day counter (news
			// rotation, Fig 8's day-by-day series). A wall-clock resume
			// skips the park for days it never touched.
			if rem := 24*time.Hour - c.clock.Now().Sub(dayStart); rem > 0 && (manualClock || executedThisDay) {
				c.clock.Sleep(rem)
			}
			if c.Progress != nil {
				c.Progress(fmt.Sprintf("phase %s: %s day %d/%d done (%d observations)",
					p.Name, g.Short(), day+1, p.Days, len(all)))
			}
			if c.Logger != nil {
				inst := c.instruments()
				c.Logger.Info("phase day complete",
					"phase", p.Name,
					"granularity", g.Short(),
					"day", day+1,
					"days", p.Days,
					"terms_completed", inst.terms.Value(),
					"queries_issued", inst.queries.Value(),
					"rate_limited_429s", inst.limited.Value(),
					"observations", len(all))
			}
		}
	}
	sortObservations(all)
	return all, nil
}

// RunCampaignVirtual runs a campaign under a Manual clock, driving virtual
// time forward whenever the crawler parks in its inter-query or day-boundary
// sleeps. This is how "30 days" of crawling completes in seconds: the
// lock-step semantics are preserved exactly, only the idle waiting is
// elided.
func (c *Crawler) RunCampaignVirtual(clk *simclock.Manual, phases []Phase) ([]storage.Observation, error) {
	return c.RunCampaignVirtualContext(context.Background(), clk, phases)
}

// RunCampaignVirtualContext is RunCampaignVirtual with cancellation. The
// clock keeps driving until the campaign goroutine has fully unwound, so a
// cancelled campaign never strands workers parked in virtual sleeps.
func (c *Crawler) RunCampaignVirtualContext(ctx context.Context, clk *simclock.Manual, phases []Phase) ([]storage.Observation, error) {
	type result struct {
		obs []storage.Observation
		err error
	}
	done := make(chan result, 1)
	stop := make(chan struct{})
	go func() {
		obs, err := c.RunCampaignContext(ctx, phases)
		done <- result{obs, err}
		close(stop)
	}()
	// Block-free driving: hop to each pending deadline, park between
	// sleeps. No polling loop — the driver burns no core while fetches
	// are in flight.
	clk.DriveUntil(stop)
	r := <-done
	return r.obs, r.err
}

// RunCampaign executes every phase in order.
func (c *Crawler) RunCampaign(phases []Phase) ([]storage.Observation, error) {
	return c.RunCampaignContext(context.Background(), phases)
}

// RunCampaignContext is RunCampaign with cancellation.
func (c *Crawler) RunCampaignContext(ctx context.Context, phases []Phase) ([]storage.Observation, error) {
	ctx, span := c.startSpan(ctx, "crawler.campaign")
	span.SetAttr("phases", fmt.Sprint(len(phases)))
	defer span.End()
	c.planCampaign(phases)
	c.planned = true
	defer func() { c.planned = false }()
	var all []storage.Observation
	for _, p := range phases {
		obs, err := c.RunPhaseContext(ctx, p)
		if err != nil {
			return nil, fmt.Errorf("crawler: phase %q: %w", p.Name, err)
		}
		all = append(all, obs...)
	}
	return all, nil
}

// sweepTerm issues the query from every vantage — treatment and control —
// in lock-step: all fetches run concurrently at the same (virtual) instant.
// Each fetch carries a trace ID minted deterministically from its
// experimental coordinates, so repro campaigns stay byte-for-byte
// reproducible while every stored page joins back to its request.
//
// The sweep is fail-soft: a fetch that still fails after the retry policy
// becomes a Failed observation — slot recorded, page absent — instead of
// aborting the phase, as long as the round's failures stay within
// Config.FailureBudget. Cancellation is different from failure: once ctx is
// done the sweep returns the context's error without charging the budget.
func (c *Crawler) sweepTerm(ctx context.Context, phase string, q queries.Query, g geo.Granularity, day int, vans []vantage) ([]storage.Observation, error) {
	inst := c.instruments()
	ctx, span := c.startSpan(ctx, "crawler.sweep")
	span.SetAttr("term", q.Term)
	span.SetAttr("granularity", g.Short())
	span.SetAttr("day", fmt.Sprint(day))
	defer span.End()
	results := make(chan fetchResult, len(vans)*2)
	var wg sync.WaitGroup
	now := c.clock.Now()
	roundStart := c.wall.Now()
	// Hold the virtual clock per worker from *before* launch: the driver
	// may not hop to a parked retry deadline while any fetch in this round
	// is still runnable but not yet on the wire. Workers release on exit;
	// backoff sleeps inside SearchContext go through SleepHeld.
	holder := simclock.HolderOf(c.clock)
	fetchCtx := simclock.WithHeld(ctx, holder)
	for _, v := range vans {
		for _, role := range []storage.Role{storage.Treatment, storage.Control} {
			b := v.treatment
			if role == storage.Control {
				b = v.control
			}
			trace := telemetry.MintTraceID(0, phase, g.Short(), fmt.Sprint(day), q.Term, v.loc.ID, string(role))
			wg.Add(1)
			if holder != nil {
				holder.Hold()
			}
			go func(v vantage, role storage.Role, b *browser.Browser, trace string) {
				defer wg.Done()
				if holder != nil {
					defer holder.Release()
				}
				inst.queries.Inc()
				if c.Logger != nil {
					c.Logger.Debug("fetch",
						"trace", trace, "phase", phase, "term", q.Term,
						"location", v.loc.ID, "role", string(role), "day", day)
				}
				b.SetTraceID(trace)
				retriesBefore := b.Retries()
				page, err := b.SearchContext(fetchCtx, q.Term)
				if c.cfg.ClearCookies {
					b.ClearCookies()
				}
				obs := storage.Observation{
					Phase:       phase,
					Term:        q.Term,
					Category:    q.Category.Short(),
					Granularity: g.Short(),
					LocationID:  v.loc.ID,
					Role:        role,
					Day:         day,
					MachineIP:   b.SourceIP(),
					TraceID:     trace,
					FetchedAt:   now,
				}
				if err != nil {
					obs.Failed = true
					obs.Err = err.Error()
					obs.Shed = browser.IsShed(err)
					results <- fetchResult{
						obs:     obs,
						err:     fmt.Errorf("crawler: %s %s %q: %w", v.loc.ID, role, q.Term, err),
						shed:    obs.Shed,
						retries: b.Retries() - retriesBefore,
					}
					return
				}
				obs.Datacenter = page.Datacenter
				obs.TraceID = page.TraceID
				obs.Page = page
				results <- fetchResult{obs: obs, retries: b.Retries() - retriesBefore}
			}(v, role, b, trace)
		}
	}
	wg.Wait()
	close(results)
	inst.roundDur.ObserveSince(roundStart)

	// Shutdown, not flakiness: report the cancellation itself.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("crawler: sweep %q cancelled: %w", q.Term, err)
	}

	out := make([]storage.Observation, 0, len(vans)*2)
	failed, shed := 0, 0
	var firstErr, firstShedErr error
	for r := range results {
		if r.retries > 0 {
			inst.fetchRetries.With(phase).Add(uint64(r.retries))
		}
		if r.err != nil {
			// Sheds and failures are charged to separate budgets: a 503
			// under admission control means the server chose not to serve,
			// which an operator tolerates (or not) independently of broken
			// fetches.
			if r.shed {
				shed++
				inst.fetchShed.With(phase).Inc()
				if firstShedErr == nil {
					firstShedErr = r.err
				}
			} else {
				failed++
				inst.fetchFailures.With(phase).Inc()
				if firstErr == nil {
					firstErr = r.err
				}
			}
			if c.Logger != nil {
				c.Logger.Warn("fetch failed", "trace", r.obs.TraceID, "phase", phase,
					"term", q.Term, "location", r.obs.LocationID, "role", string(r.obs.Role),
					"day", day, "shed", r.shed, "err", r.obs.Err)
			}
		}
		out = append(out, r.obs)
	}
	total := len(vans) * 2
	if budget := int(c.cfg.FailureBudget * float64(total)); failed > budget {
		return nil, fmt.Errorf("crawler: %d/%d fetches failed (budget %d): %w",
			failed, total, budget, firstErr)
	}
	if budget := int(c.cfg.ShedBudget * float64(total)); shed > budget {
		return nil, fmt.Errorf("crawler: %d/%d fetches shed by the server (budget %d): %w",
			shed, total, budget, firstShedErr)
	}
	inst.terms.Inc()
	// Fetches land on the results channel in completion order, which the
	// scheduler decides. Canonicalize before the sweep is checkpointed or
	// handed to a SweepSink: recovered and re-executed sweeps must replay
	// byte-identically across runs.
	sortObservations(out)
	return out, nil
}

// RunValidation reproduces the §2.2 validation experiment: identical
// queries with the same GPS coordinate issued from vantage machines spread
// across unrelated networks (the study used 50 PlanetLab sites across the
// US). It returns the fetched pages grouped by term, in vantage order.
// Vantage browsers are deliberately NOT datacenter-pinned: the experiment
// measures how much the serving path and IP address matter once GPS is
// fixed.
func (c *Crawler) RunValidation(terms []queries.Query, gps geo.Point, nVantage int) (map[string][]*serp.Page, error) {
	if nVantage <= 0 {
		return nil, fmt.Errorf("crawler: need at least one vantage")
	}
	c.instruments() // ensure c.Telemetry exists for the browser pool
	_, span := c.startSpan(context.Background(), "crawler.validation")
	span.SetAttr("vantages", fmt.Sprint(nVantage))
	span.SetAttr("terms", fmt.Sprint(len(terms)))
	defer span.End()
	browsers := make([]*browser.Browser, nVantage)
	for i := range browsers {
		// Spread vantages across distinct /8s, like PlanetLab sites at
		// different universities.
		ip := fmt.Sprintf("%d.%d.10.7", 11+(i*5)%200, (i*13)%250)
		opts := append([]browser.Option{
			browser.WithSourceIP(ip),
			browser.WithTelemetry(c.Telemetry),
		}, c.reliabilityOptions()...)
		b, err := browser.New(c.baseURL, opts...)
		if err != nil {
			return nil, err
		}
		b.OverrideGeolocation(gps)
		browsers[i] = b
	}
	out := make(map[string][]*serp.Page, len(terms))
	for _, q := range terms {
		pages := make([]*serp.Page, nVantage)
		errs := make([]error, nVantage)
		var wg sync.WaitGroup
		holder := simclock.HolderOf(c.clock)
		fetchCtx := simclock.WithHeld(context.Background(), holder)
		for i, b := range browsers {
			wg.Add(1)
			if holder != nil {
				holder.Hold()
			}
			go func(i int, b *browser.Browser) {
				defer wg.Done()
				if holder != nil {
					defer holder.Release()
				}
				// Trace-keyed like campaign fetches, so the validation
				// pages — printed first by cmd/repro — are reproducible
				// regardless of goroutine arrival order.
				b.SetTraceID(telemetry.MintTraceID(0, "validation", q.Term, fmt.Sprint(i)))
				p, err := b.SearchContext(fetchCtx, q.Term)
				if c.cfg.ClearCookies {
					b.ClearCookies()
				}
				pages[i], errs[i] = p, err
			}(i, b)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("crawler: validation vantage %d term %q: %w", i, q.Term, err)
			}
		}
		out[q.Term] = pages
		c.clock.Sleep(c.cfg.WaitBetweenTerms)
	}
	return out, nil
}

func sortObservations(obs []storage.Observation) {
	sort.Slice(obs, func(i, j int) bool {
		a, b := obs[i], obs[j]
		switch {
		case a.Day != b.Day:
			return a.Day < b.Day
		case a.Granularity != b.Granularity:
			return a.Granularity < b.Granularity
		case a.Term != b.Term:
			return a.Term < b.Term
		case a.LocationID != b.LocationID:
			return a.LocationID < b.LocationID
		default:
			return a.Role < b.Role
		}
	})
}
