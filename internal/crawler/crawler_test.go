package crawler

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/metrics"
	"geoserp/internal/queries"
	"geoserp/internal/serp"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/storage"
)

// testRig wires an in-process engine+server to a crawler sharing one
// virtual clock.
type testRig struct {
	clk *simclock.Manual
	eng *engine.Engine
	srv *httptest.Server
	cr  *Crawler
}

func newRig(t *testing.T, ccfg Config, mutate func(*engine.Config)) *testRig {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	ecfg := engine.DefaultConfig()
	if mutate != nil {
		mutate(&ecfg)
	}
	eng := engine.New(ecfg, clk)
	srv := httptest.NewServer(serpserver.NewHandler(eng))
	t.Cleanup(srv.Close)
	cr, err := New(ccfg, clk, srv.URL, geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{clk: clk, eng: eng, srv: srv, cr: cr}
}

func smallPhase(nTerms int, g geo.Granularity, days int) Phase {
	c := queries.StudyCorpus()
	terms := c.Category(queries.Local)[:nTerms]
	return Phase{Name: "test", Terms: terms, Granularities: []geo.Granularity{g}, Days: days}
}

func TestNewValidation(t *testing.T) {
	clk := simclock.NewManual(time.Now())
	ds := geo.StudyDataset()
	corpus := queries.StudyCorpus()
	if _, err := New(Config{Machines: 0, Subnet: "10.0.0"}, clk, "http://x", ds, corpus); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := New(Config{Machines: 4}, clk, "http://x", ds, corpus); err == nil {
		t.Fatal("empty subnet accepted")
	}
	if _, err := New(Config{Machines: 4, Subnet: "10.0.0"}, clk, "", ds, corpus); err == nil {
		t.Fatal("empty base URL accepted")
	}
}

func TestMachineIPs(t *testing.T) {
	clk := simclock.NewManual(time.Now())
	cr, err := New(DefaultConfig(), clk, "http://x", geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	ips := cr.MachineIPs()
	if len(ips) != 44 {
		t.Fatalf("machines = %d, want 44 (the study's pool)", len(ips))
	}
	if ips[0] != "10.44.7.1" || ips[43] != "10.44.7.44" {
		t.Fatalf("machine addressing wrong: %s .. %s", ips[0], ips[43])
	}
	for _, ip := range ips {
		if !strings.HasPrefix(ip, "10.44.7.") {
			t.Fatalf("machine %s outside the /24", ip)
		}
	}
}

func TestRunPhaseProducesPairedObservations(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	phase := smallPhase(3, geo.County, 2)
	obs, err := rig.cr.RunCampaignVirtual(rig.clk, []Phase{phase})
	if err != nil {
		t.Fatal(err)
	}
	// 3 terms × 15 county locations × 2 roles × 2 days.
	want := 3 * 15 * 2 * 2
	if len(obs) != want {
		t.Fatalf("observations = %d, want %d", len(obs), want)
	}
	// Every (term, location, day) must have exactly one treatment and one
	// control fetched at the same instant.
	type key struct {
		term, loc string
		day       int
	}
	pairs := map[key]map[storage.Role]time.Time{}
	for _, o := range obs {
		if err := o.Validate(); err != nil {
			t.Fatalf("invalid observation: %v", err)
		}
		k := key{o.Term, o.LocationID, o.Day}
		if pairs[k] == nil {
			pairs[k] = map[storage.Role]time.Time{}
		}
		if _, dup := pairs[k][o.Role]; dup {
			t.Fatalf("duplicate %v %v", k, o.Role)
		}
		pairs[k][o.Role] = o.FetchedAt
	}
	for k, roles := range pairs {
		tr, okT := roles[storage.Treatment]
		ctl, okC := roles[storage.Control]
		if !okT || !okC {
			t.Fatalf("%v missing a role", k)
		}
		if !tr.Equal(ctl) {
			t.Fatalf("%v treatment and control not simultaneous: %v vs %v", k, tr, ctl)
		}
	}
}

func TestLockStepAcrossLocations(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	phase := smallPhase(2, geo.County, 1)
	obs, err := rig.cr.RunCampaignVirtual(rig.clk, []Phase{phase})
	if err != nil {
		t.Fatal(err)
	}
	// All observations of one term on one day share a fetch instant
	// (lock-step), and distinct terms are >= 11 virtual minutes apart.
	byTerm := map[string]time.Time{}
	for _, o := range obs {
		if prev, ok := byTerm[o.Term]; ok {
			if !prev.Equal(o.FetchedAt) {
				t.Fatalf("term %q not lock-step: %v vs %v", o.Term, prev, o.FetchedAt)
			}
		} else {
			byTerm[o.Term] = o.FetchedAt
		}
	}
	if len(byTerm) != 2 {
		t.Fatalf("terms = %d", len(byTerm))
	}
	var times []time.Time
	for _, ts := range byTerm {
		times = append(times, ts)
	}
	gap := times[0].Sub(times[1])
	if gap < 0 {
		gap = -gap
	}
	if gap < 11*time.Minute {
		t.Fatalf("terms only %v apart, want >= 11m", gap)
	}
}

func TestDatacenterPinningInCampaign(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PinnedDatacenter = "dc-1"
	rig := newRig(t, cfg, nil)
	obs, err := rig.cr.RunCampaignVirtual(rig.clk, []Phase{smallPhase(2, geo.County, 1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if o.Datacenter != "dc-1" {
			t.Fatalf("observation served by %q, want dc-1", o.Datacenter)
		}
	}
}

func TestDayAlignmentWithEngine(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	obs, err := rig.cr.RunCampaignVirtual(rig.clk, []Phase{smallPhase(2, geo.County, 3)})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if o.Page.Day != o.Day {
			t.Fatalf("crawler day %d but engine served day %d", o.Day, o.Page.Day)
		}
	}
}

func TestMachineSpreadAvoidsRateLimits(t *testing.T) {
	// With the engine's default (stingy) rate limiter and the full
	// machine pool, a 15-location sweep must succeed — the point of
	// distributing load over 44 machines.
	rig := newRig(t, DefaultConfig(), nil)
	if _, err := rig.cr.RunCampaignVirtual(rig.clk, []Phase{smallPhase(4, geo.County, 1)}); err != nil {
		t.Fatalf("campaign tripped the rate limiter: %v", err)
	}
	// Sanity: a single-machine crawler with the same limiter fails.
	// Retries are disabled: with backoff on the virtual clock the limiter
	// would refill and mask the overload this test exists to observe.
	cfg := DefaultConfig()
	cfg.Machines = 1
	cfg.RetryAttempts = 1
	clk2 := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	eng2 := engine.New(engine.DefaultConfig(), clk2)
	srv2 := httptest.NewServer(serpserver.NewHandler(eng2))
	defer srv2.Close()
	cr2, err := New(cfg, clk2, srv2.URL, geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	phase := Phase{
		Name:          "overload",
		Terms:         queries.StudyCorpus().Category(queries.Local),
		Granularities: []geo.Granularity{geo.State},
		Days:          1,
	}
	if _, err := cr2.RunCampaignVirtual(clk2, []Phase{phase}); err == nil {
		t.Fatal("single-machine crawl did not trip the rate limiter")
	}
}

// driveClock advances the virtual clock until fn (run in a goroutine)
// completes, mirroring RunCampaignVirtual's driver loop for arbitrary
// crawler entry points.
func driveClock(clk *simclock.Manual, fn func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	clk.DriveUntil(done)
}

func TestRunValidationGPSDominates(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	terms := queries.StudyCorpus().Category(queries.Controversial)[:6]
	gps := geo.Point{Lat: 41.4993, Lon: -81.6944}
	var out map[string][]*serp.Page
	var err error
	driveClock(rig.clk, func() {
		out, err = rig.cr.RunValidation(terms, gps, 12)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports "94% of the search results received by the
	// machines are identical" — a per-result overlap across vantage
	// points, which we measure as the mean Jaccard index against the
	// first vantage.
	var overlapSum float64
	var n int
	for term, ps := range out {
		if len(ps) != 12 {
			t.Fatalf("term %q has %d pages", term, len(ps))
		}
		for i := 1; i < len(ps); i++ {
			overlapSum += metrics.Jaccard(ps[0].Links(), ps[i].Links())
			n++
		}
		for _, p := range ps {
			if p.Location != gps.String() {
				t.Fatalf("term %q: page personalized for %q, want spoofed GPS %q",
					term, p.Location, gps.String())
			}
		}
	}
	frac := overlapSum / float64(n)
	if frac < 0.85 {
		t.Fatalf("only %.0f%% of validation results identical; GPS not dominating IP (paper: 94%%)", frac*100)
	}
}

func TestStudyPhases(t *testing.T) {
	phases := StudyPhases(queries.StudyCorpus())
	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(phases))
	}
	if len(phases[0].Terms) != 120 || len(phases[1].Terms) != 120 {
		t.Fatalf("phase terms = %d/%d, want 120/120",
			len(phases[0].Terms), len(phases[1].Terms))
	}
	for _, p := range phases {
		if p.Days != 5 {
			t.Fatalf("phase %s days = %d, want 5", p.Name, p.Days)
		}
		if len(p.Granularities) != 3 {
			t.Fatalf("phase %s granularities = %d", p.Name, len(p.Granularities))
		}
	}
}

func TestObservationsSorted(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	obs, err := rig.cr.RunCampaignVirtual(rig.clk, []Phase{smallPhase(3, geo.County, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(obs); i++ {
		a, b := obs[i-1], obs[i]
		if a.Day > b.Day {
			t.Fatal("observations not sorted by day")
		}
		if a.Day == b.Day && a.Term > b.Term {
			t.Fatal("observations not sorted by term within day")
		}
	}
}
