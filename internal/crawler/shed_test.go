package crawler

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/simclock"
)

// sheddingRig points a crawler at a server that sheds every request — an
// admission gate that never finds a free slot.
func sheddingRig(t *testing.T, cfg Config) (*simclock.Manual, *Crawler, *atomic.Int64) {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		count.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server overloaded, request shed (queue_full)", http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	cr, err := New(cfg, clk, srv.URL, geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	return clk, cr, &count
}

func TestShedBudgetRecordsShedObservations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ShedBudget = 1.0 // tolerate a fully shedding server
	cfg.RetryBackoff = time.Second
	clk, cr, count := sheddingRig(t, cfg)

	obs, err := cr.RunCampaignVirtual(clk, []Phase{smallPhase(2, geo.County, 1)})
	if err != nil {
		t.Fatalf("campaign aborted despite shed budget: %v", err)
	}
	if want := 2 * 15 * 2; len(obs) != want {
		t.Fatalf("observations = %d, want %d (every slot recorded)", len(obs), want)
	}
	for _, o := range obs {
		if verr := o.Validate(); verr != nil {
			t.Fatalf("invalid observation: %v", verr)
		}
		if !o.Failed || !o.Shed {
			t.Fatalf("shed slot recorded as failed=%v shed=%v", o.Failed, o.Shed)
		}
	}
	// Every query rode out the full shed-retry wave before giving up.
	if got := count.Load(); got < int64(len(obs))*2 {
		t.Fatalf("requests = %d: sheds were not retried", got)
	}
	// Sheds are budgeted apart from failures: the default (strict, zero)
	// failure budget never fired, and the shed counter owns every loss.
	inst := cr.instruments()
	if got := inst.fetchShed.With("test").Value(); got != uint64(len(obs)) {
		t.Fatalf("crawler_fetch_shed_total{test} = %d, want %d", got, len(obs))
	}
	if got := inst.fetchFailures.With("test").Value(); got != 0 {
		t.Fatalf("crawler_fetch_failures_total{test} = %d, want 0 — sheds leaked into the failure ledger", got)
	}
}

func TestShedBudgetZeroAbortsOnFirstShed(t *testing.T) {
	cfg := DefaultConfig() // ShedBudget 0: strict
	cfg.RetryBackoff = time.Second
	clk, cr, _ := sheddingRig(t, cfg)
	_, err := cr.RunCampaignVirtual(clk, []Phase{smallPhase(2, geo.County, 1)})
	if err == nil {
		t.Fatal("zero-shed-budget campaign tolerated a shedding server")
	}
	if !strings.Contains(err.Error(), "shed") {
		t.Fatalf("abort error does not name shedding: %v", err)
	}
}

func TestShedBudgetValidation(t *testing.T) {
	clk := simclock.NewManual(time.Now())
	ds, corpus := geo.StudyDataset(), queries.StudyCorpus()
	bad := DefaultConfig()
	bad.ShedBudget = 1.5
	if _, err := New(bad, clk, "http://x", ds, corpus); err == nil {
		t.Fatal("shed budget > 1 accepted")
	}
	bad = DefaultConfig()
	bad.BreakerThreshold = 2 // cooldown left zero
	bad.BreakerCooldown = 0
	if _, err := New(bad, clk, "http://x", ds, corpus); err == nil {
		t.Fatal("breaker threshold without a cooldown accepted")
	}
	bad = DefaultConfig()
	bad.MaxBodyBytes = -1
	if _, err := New(bad, clk, "http://x", ds, corpus); err == nil {
		t.Fatal("negative body cap accepted")
	}
}
