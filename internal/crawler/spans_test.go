package crawler

import (
	"bytes"
	"net/http/httptest"
	"sort"
	"strconv"
	"testing"
	"time"

	"geoserp/internal/browser"
	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// spanRig builds a full traced stack — crawler, chaos transport, real
// HTTP server, engine — sharing one virtual clock and one span recorder,
// the in-test equivalent of `crawl -trace-out` against a flaky network.
func spanRig(t *testing.T, cfg Config, chaosCfg browser.ChaosConfig) (*simclock.Manual, *Crawler, *telemetry.SpanRecorder) {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	rec := telemetry.NewSpanRecorder(1<<16, clk)
	eng := engine.New(engine.DefaultConfig(), clk)
	srv := httptest.NewServer(serpserver.NewHandler(eng, serpserver.WithSpans(rec)))
	t.Cleanup(srv.Close)
	cr, err := New(cfg, clk, srv.URL, geo.StudyDataset(), queries.StudyCorpus())
	if err != nil {
		t.Fatal(err)
	}
	chaosCfg.Clock = clk
	cr.Transport = browser.NewChaosTransport(chaosCfg, srv.Client().Transport)
	cr.Spans = rec
	return clk, cr, rec
}

// chaosSpanConfig is shared by the attempt-span and determinism tests so
// both exercise the identical fault schedule.
func chaosSpanConfig() (Config, browser.ChaosConfig) {
	cfg := DefaultConfig()
	cfg.RetryAttempts = 3
	cfg.RetryBackoff = time.Second
	cfg.FailureBudget = 0.5
	return cfg, browser.ChaosConfig{Seed: 7, ErrorRate: 0.2}
}

// TestChaosRetriesRecordOneSpanPerAttempt pins the client-side span
// contract: under an injected-fault transport, every retried fetch leaves
// one "browser.fetch" span per attempt, numbered 1..n, with every
// non-final attempt recording outcome=retry.
func TestChaosRetriesRecordOneSpanPerAttempt(t *testing.T) {
	cfg, chaos := chaosSpanConfig()
	clk, cr, rec := spanRig(t, cfg, chaos)
	if _, err := cr.RunCampaignVirtual(clk, []Phase{smallPhase(2, geo.County, 1)}); err != nil {
		t.Fatal(err)
	}

	byTrace := map[string][]telemetry.SpanRecord{}
	for _, s := range rec.Snapshot() {
		if s.Name == "browser.fetch" {
			byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
		}
	}
	// 2 terms × 15 county locations × 2 roles = 60 fetch slots.
	if len(byTrace) != 60 {
		t.Fatalf("fetch traces = %d, want 60", len(byTrace))
	}
	retried := 0
	for trace, spans := range byTrace {
		sort.Slice(spans, func(i, j int) bool {
			return spans[i].Attr("attempt") < spans[j].Attr("attempt")
		})
		for i, s := range spans {
			if got, _ := strconv.Atoi(s.Attr("attempt")); got != i+1 {
				t.Fatalf("trace %s: attempt attrs not 1..n: %+v", trace, spans)
			}
			outcome := s.Attr("outcome")
			switch {
			case i < len(spans)-1 && outcome != "retry":
				t.Fatalf("trace %s attempt %d: outcome = %q, want retry", trace, i, outcome)
			case i == len(spans)-1 && outcome == "retry":
				t.Fatalf("trace %s: final attempt still marked retry", trace)
			}
			if s.Attr("term") == "" {
				t.Fatalf("trace %s attempt %d: missing term attr", trace, i)
			}
		}
		if len(spans) > cfg.RetryAttempts {
			t.Fatalf("trace %s: %d attempts exceed the retry cap %d", trace, len(spans), cfg.RetryAttempts)
		}
		if len(spans) > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("chaos transport injected no retries; the test exercises nothing")
	}
}

// TestChaosCampaignTimelineIsByteDeterministic runs the same chaos
// campaign twice at one seed and requires the exported Chrome trace —
// fetch attempts, server spans, engine stages, crawler hierarchy — to be
// byte-identical: span IDs come from stable keys and times from the
// virtual clock, so goroutine scheduling cannot perturb the file.
func TestChaosCampaignTimelineIsByteDeterministic(t *testing.T) {
	run := func() []byte {
		cfg, chaos := chaosSpanConfig()
		clk, cr, rec := spanRig(t, cfg, chaos)
		if _, err := cr.RunCampaignVirtual(clk, []Phase{smallPhase(2, geo.County, 1)}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteChromeTrace(&buf, rec.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("chaos campaign timelines differ: %d vs %d bytes", len(a), len(b))
	}
}

// TestCampaignSpanHierarchy checks the crawler-side span tree: one
// campaign root, one phase child per phase, one sweep span per
// (term, granularity, day) parented under its phase.
func TestCampaignSpanHierarchy(t *testing.T) {
	cfg := DefaultConfig()
	clk, cr, rec := spanRig(t, cfg, browser.ChaosConfig{})
	phase := smallPhase(2, geo.County, 2)
	if _, err := cr.RunCampaignVirtual(clk, []Phase{phase}); err != nil {
		t.Fatal(err)
	}
	var campaign, phases, sweeps []telemetry.SpanRecord
	for _, s := range rec.Snapshot() {
		switch s.Name {
		case "crawler.campaign":
			campaign = append(campaign, s)
		case "crawler.phase":
			phases = append(phases, s)
		case "crawler.sweep":
			sweeps = append(sweeps, s)
		}
	}
	if len(campaign) != 1 || len(phases) != 1 {
		t.Fatalf("campaign spans = %d, phase spans = %d; want 1 and 1", len(campaign), len(phases))
	}
	// 2 terms × 1 granularity × 2 days.
	if len(sweeps) != 4 {
		t.Fatalf("sweep spans = %d, want 4", len(sweeps))
	}
	if phases[0].ParentID != campaign[0].SpanID {
		t.Fatal("phase span not parented under the campaign span")
	}
	for _, s := range sweeps {
		if s.ParentID != phases[0].SpanID {
			t.Fatalf("sweep %q not parented under its phase", s.Attr("term"))
		}
		if s.TraceID != campaign[0].TraceID {
			t.Fatal("sweep span left the campaign trace")
		}
	}
	if got := campaign[0].Attr("phases"); got != "1" {
		t.Fatalf("campaign phases attr = %q, want 1", got)
	}
}
