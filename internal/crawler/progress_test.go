package crawler

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"geoserp/internal/analysis"
	"geoserp/internal/geo"
	"geoserp/internal/storage"
)

// collectSink records every sweep delivered to it.
type collectSink struct {
	infos []SweepInfo
	obs   [][]storage.Observation
}

func (c *collectSink) ObserveSweep(info SweepInfo, obs []storage.Observation) {
	c.infos = append(c.infos, info)
	c.obs = append(c.obs, append([]storage.Observation(nil), obs...))
}

func (c *collectSink) flat() []storage.Observation {
	var out []storage.Observation
	for _, sw := range c.obs {
		out = append(out, sw...)
	}
	return out
}

func TestSinkReceivesEveryCampaignSweep(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	sink := &collectSink{}
	rig.cr.Sink = sink
	start := rig.clk.Now()
	phase := smallPhase(2, geo.County, 2)
	obs, err := rig.cr.RunCampaignVirtual(rig.clk, []Phase{phase})
	if err != nil {
		t.Fatal(err)
	}

	if len(sink.infos) != 4 {
		t.Fatalf("sweeps delivered = %d, want 4 (2 terms x 2 days)", len(sink.infos))
	}
	var total int
	for i, info := range sink.infos {
		if info.Sweep != i {
			t.Fatalf("sweep %d delivered with index %d (must be contiguous campaign order)", i, info.Sweep)
		}
		if info.Recovered {
			t.Fatalf("sweep %d marked recovered in a fresh run", i)
		}
		if info.Phase != "test" || info.Granularity != "county" {
			t.Fatalf("sweep %d labeled %s/%s", i, info.Phase, info.Granularity)
		}
		if i > 0 && info.At.Before(sink.infos[i-1].At) {
			t.Fatalf("sweep %d completed at %v, before sweep %d at %v — campaign clock ran backwards",
				i, info.At, i-1, sink.infos[i-1].At)
		}
		if len(sink.obs[i]) != 15*2 {
			t.Fatalf("sweep %d carried %d observations, want 30", i, len(sink.obs[i]))
		}
		total += len(sink.obs[i])
	}
	if total != len(obs) {
		t.Fatalf("sink saw %d observations, campaign returned %d", total, len(obs))
	}

	prog := rig.cr.ProgressState()
	if prog.SweepsDone != 4 || prog.SweepsTotal != 4 {
		t.Fatalf("progress %d/%d, want 4/4", prog.SweepsDone, prog.SweepsTotal)
	}
	if prog.Observations != total || prog.Failed != 0 || prog.Shed != 0 {
		t.Fatalf("progress tallies %+v", prog)
	}
	if !prog.VirtualNow.Equal(sink.infos[3].At) {
		t.Fatalf("VirtualNow %v, want last sweep instant %v", prog.VirtualNow, sink.infos[3].At)
	}
	// One granularity over two days: the plan's ETA is exactly two 24h
	// lock-step blocks past the campaign start.
	if want := start.Add(48 * time.Hour); !prog.VirtualETA.Equal(want) {
		t.Fatalf("VirtualETA %v, want %v", prog.VirtualETA, want)
	}
}

func TestStandalonePhaseAlsoFeedsSink(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	sink := &collectSink{}
	rig.cr.Sink = sink
	// Drive RunPhase (not RunCampaign) under the manual clock: the
	// standalone path must lay out its own single-phase progress plan.
	var err error
	stop := make(chan struct{})
	go func() {
		_, err = rig.cr.RunPhase(smallPhase(1, geo.County, 1))
		close(stop)
	}()
	rig.clk.DriveUntil(stop)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.infos) != 1 {
		t.Fatalf("sweeps delivered = %d, want 1", len(sink.infos))
	}
	if prog := rig.cr.ProgressState(); prog.SweepsTotal != 1 || prog.SweepsDone != 1 {
		t.Fatalf("standalone phase progress %+v", prog)
	}
}

// TestSinkStreamMatchesBatchOnRealCampaign is the end-to-end parity
// invariant at the crawler layer: feeding the sink's sweeps into the
// streaming aggregator yields the exact scorecard the batch pipeline
// computes from the campaign's full observation list.
func TestSinkStreamMatchesBatchOnRealCampaign(t *testing.T) {
	rig := newRig(t, DefaultConfig(), nil)
	sink := &collectSink{}
	rig.cr.Sink = sink
	obs, err := rig.cr.RunCampaignVirtual(rig.clk, []Phase{smallPhase(3, geo.County, 2)})
	if err != nil {
		t.Fatal(err)
	}
	s := analysis.NewStream()
	for i := range sink.infos {
		if err := s.IngestSweep(sink.infos[i].At, sink.obs[i]); err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	d, err := analysis.NewDataset(obs)
	if err != nil {
		t.Fatal(err)
	}
	batch, live := d.Scorecard(), s.Scorecard()
	if !reflect.DeepEqual(batch, live) {
		t.Fatalf("streaming scorecard diverged from batch on a real campaign:\nbatch: %+v\nstream: %+v", batch, live)
	}
}

func TestResumeReplaysRecoveredSweepsToSink(t *testing.T) {
	dir := t.TempDir()
	phase := smallPhase(2, geo.County, 2)
	ckptPath := filepath.Join(dir, "campaign.ckpt")
	obsPath := filepath.Join(dir, "campaign.partial.jsonl")

	// Reference: the uninterrupted campaign, sink attached.
	clkRef, crRef := resumeRig(t)
	ref := &collectSink{}
	crRef.Sink = ref
	crRef.EnableCheckpoint(filepath.Join(dir, "ref.ckpt"), filepath.Join(dir, "ref.partial.jsonl"))
	if _, err := crRef.RunCampaignVirtual(clkRef, []Phase{phase}); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancelled after the first completed day (2 sweeps).
	clk1, cr1 := resumeRig(t)
	cr1.EnableCheckpoint(ckptPath, obsPath)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cr1.Progress = func(string) { cancel() }
	if _, err := cr1.RunCampaignVirtualContext(ctx, clk1, []Phase{phase}); err == nil {
		t.Fatal("cancelled campaign reported success")
	}

	// Resumed run: recovered sweeps must flow through the sink exactly
	// like executed ones, flagged Recovered, so a streaming aggregator
	// attached on resume still sees the whole campaign.
	clk2, cr2 := resumeRig(t)
	sink := &collectSink{}
	cr2.Sink = sink
	if err := cr2.Resume(ckptPath, obsPath); err != nil {
		t.Fatal(err)
	}
	if _, err := cr2.RunCampaignVirtual(clk2, []Phase{phase}); err != nil {
		t.Fatal(err)
	}

	if len(sink.infos) != 4 {
		t.Fatalf("resumed run delivered %d sweeps, want all 4", len(sink.infos))
	}
	for i, info := range sink.infos {
		if info.Sweep != i {
			t.Fatalf("resumed sweep %d indexed %d", i, info.Sweep)
		}
		wantRecovered := i < 2
		if info.Recovered != wantRecovered {
			t.Fatalf("sweep %d recovered=%v, want %v", i, info.Recovered, wantRecovered)
		}
	}
	if marshalObs(t, sink.flat()) != marshalObs(t, ref.flat()) {
		t.Fatal("resumed run's sink feed differs from the uninterrupted run's")
	}
	if prog := cr2.ProgressState(); prog.SweepsDone != 4 || prog.SweepsTotal != 4 {
		t.Fatalf("resumed progress %+v", prog)
	}

	// And the streaming scorecard built from the resumed feed matches the
	// one built from the uninterrupted feed.
	build := func(c *collectSink) []analysis.Check {
		s := analysis.NewStream()
		for i := range c.infos {
			if err := s.IngestSweep(c.infos[i].At, c.obs[i]); err != nil {
				t.Fatalf("sweep %d: %v", i, err)
			}
		}
		return s.Scorecard()
	}
	if !reflect.DeepEqual(build(sink), build(ref)) {
		t.Fatal("resumed streaming scorecard diverged from the uninterrupted run's")
	}
}
