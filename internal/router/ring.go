// Package router implements the multi-node SERP cluster: a consistent-hash
// ring that partitions the document corpus across N shard nodes, an HTTP
// shard server exposing per-shard retrieval, and a scatter-gather client
// that fans a query out to every shard, merges the per-shard rankings
// deterministically, and degrades to partial results when shards are
// unreachable. The router node itself is an ordinary serpd front end whose
// engine swaps the in-process inverted index for the scatter-gather client
// (engine.WithRetriever), so Places, News, and every personalization layer
// run once at the coordinator while only web retrieval is distributed.
package router

import (
	"sort"
	"strconv"

	"geoserp/internal/detrand"
)

// DefaultVirtualNodes is the virtual-node count per shard on the ring. 64
// points per shard keeps the partition imbalance on the study corpus
// within a few percent without making ring construction noticeable. (This
// is purely a hashing knob — it has nothing to do with data replication,
// which is ClusterConfig.Replicas.)
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring assigning string keys (document URLs) to
// shard IDs. The assignment is a pure function of (shards, virtualNodes,
// key) — no process state — so every node that builds a ring with the same
// parameters agrees on ownership without coordination, and re-sharding a
// corpus from N to N+1 shards moves only ~1/(N+1) of the documents.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash, ascending
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over shards×virtualNodes points. shards must be
// at least 1; virtualNodes <= 0 selects DefaultVirtualNodes.
func NewRing(shards, virtualNodes int) *Ring {
	if shards < 1 {
		panic("router: ring needs at least one shard")
	}
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*virtualNodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < virtualNodes; v++ {
			h := mix64(detrand.Hash("router.ring", "node", strconv.Itoa(s), strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between virtual nodes is vanishingly
		// unlikely; break it by shard ID so the sort — and therefore
		// ownership — stays total and deterministic anyway.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// mix64 is the MurmurHash3 finalizer. FNV-1a avalanches weakly in the
// high bits for short inputs that differ only near the end — exactly the
// shape of "node 3 vnode 17" labels — and ring position is decided by the
// FULL 64-bit ordering, so without a finalizer the ring clumps badly (one
// shard owning most of the keyspace). The finalizer is a bijection, so
// determinism and collision-freedom are unchanged.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning key: the first virtual node clockwise
// from the key's hash, wrapping at the top of the ring.
func (r *Ring) Owner(key string) int {
	h := mix64(detrand.Hash("router.ring", "key", key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
