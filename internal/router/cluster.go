package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/index"
	"geoserp/internal/queries"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
	"geoserp/internal/webcorpus"
)

// ClusterConfig assembles a complete in-process cluster: N shard nodes plus
// a router front end, wired through an in-memory transport so no sockets
// are involved. The soak harness and the cluster tests both drive this —
// it is the same code path cmd/serprouter and cmd/serpd take, minus the
// network.
type ClusterConfig struct {
	// Shards is the shard count (>= 1).
	Shards int
	// Replicas is the data replication factor: every shard runs this many
	// identical replica nodes (<= 0 selects 1), and the router fails a
	// fan-out leg over between them. Distinct from VirtualNodes, the
	// ring's hashing knob.
	Replicas int
	// VirtualNodes is the ring's virtual-node count per shard (<= 0
	// selects DefaultVirtualNodes). Every node in a real deployment must
	// agree on it.
	VirtualNodes int
	// Engine configures the coordinator engine (seed, datacenters,
	// buckets, ...). The shard indexes are built from the same seed, so
	// shards and coordinator see the identical deterministic corpus.
	Engine engine.Config
	// Clock drives the coordinator engine, shard deadline checks, and
	// breaker cooldowns — the campaign clock in virtual-time rigs.
	Clock simclock.Clock
	// ShardAdmission, when enabled, gates each shard's /shard/search with
	// the serpserver FIFO admission machinery (each shard gets its own
	// gate and metrics registry).
	ShardAdmission serpserver.AdmissionConfig
	// ShardMiddleware, when set, wraps each replica's handler chain —
	// between the admission gate (outermost) and the shard handler — so a
	// chaos rig can inject per-node faults.
	ShardMiddleware func(shard, replica int, next http.Handler) http.Handler
	// ShardTimeout bounds one fan-out request on the wall clock (<= 0: no
	// per-shard timeout).
	ShardTimeout time.Duration
	// BreakerThreshold / BreakerCooldown configure the router's
	// per-replica circuit breakers; threshold <= 0 disables them.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeAfter, when > 0, arms the client's hedged requests (see
	// ClientConfig.HedgeAfter).
	HedgeAfter time.Duration
	// ProbeInterval, when > 0, starts the client's background /healthz
	// probe loop re-admitting recovered replicas (see
	// ClientConfig.ProbeInterval); stop it via LocalCluster.StopProber.
	ProbeInterval time.Duration
	// SpanCapacity, when > 0, installs span recorders (router and shards)
	// with that ring-buffer capacity.
	SpanCapacity int
	// Registry, when set, receives the router-side metrics (engine, HTTP
	// front end, scatter-gather) instead of a fresh private registry — so
	// a harness can read engine and router counters off one registry.
	// Shards always get their own registries.
	Registry *telemetry.Registry
	// RouterSpans, when set, is used as the router handler's span
	// recorder instead of a fresh one (SpanCapacity then only sizes the
	// per-shard recorders).
	RouterSpans *telemetry.SpanRecorder
	// RouterOptions are extra options for the router's serpserver.Handler
	// (logger, etc). Spans are installed automatically per RouterSpans /
	// SpanCapacity.
	RouterOptions []serpserver.HandlerOption
}

// LocalCluster is the assembled in-process cluster.
type LocalCluster struct {
	// Handler is the router front end — serve /search on it exactly like a
	// monolithic serpd handler. Callers add chaos / admission wrapping on
	// top if they want the router gated too.
	Handler *serpserver.Handler
	// Engine is the coordinator engine behind Handler.
	Engine *engine.Engine
	// Client is the scatter-gather retriever the engine uses.
	Client *Client
	// Registry is the router-side telemetry registry (engine + HTTP +
	// scatter-gather metrics).
	Registry *telemetry.Registry
	// Spans is the router-side span recorder (nil when SpanCapacity == 0).
	Spans *telemetry.SpanRecorder
	// ShardHandlers are the raw shard nodes, indexed [shard][replica].
	ShardHandlers [][]*ShardHandler
	// ShardChains are the replicas' full serving chains (admission gate
	// around middleware around handler) as mounted in the transport,
	// indexed [shard][replica].
	ShardChains [][]http.Handler
	// StopProber stops the background health prober; a no-op function
	// when ProbeInterval was 0. Idempotent.
	StopProber func()
}

// NewLocalCluster partitions the corpus, builds every shard node and the
// router, and wires them together. The partition is exhaustive and
// disjoint (ring ownership over document URLs), and every shard view keeps
// full-corpus IDF statistics, so the merged cluster ranking is
// byte-identical to a monolithic engine at any shard count.
func NewLocalCluster(cfg ClusterConfig) *LocalCluster {
	if cfg.Shards < 1 {
		panic("router: cluster needs at least one shard")
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Wall()
	}

	// Build the full index once from the same deterministic world the
	// coordinator engine generates, then carve per-shard views off it.
	// (Real shard processes each rebuild the world from the seed instead —
	// same corpus, no shared memory; see cmd/serpd's shard mode.)
	regions := make([]webcorpus.Region, 0)
	for _, ri := range engine.StudyRegions() {
		regions = append(regions, ri.Region)
	}
	web := webcorpus.NewWeb(cfg.Engine.Seed, queries.StudyCorpus(), regions)
	full := index.BuildFromWeb(web)
	ring := NewRing(cfg.Shards, cfg.VirtualNodes)
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 1
	}

	hosts := make(map[string]http.Handler, cfg.Shards*replicas)
	handlers := make([][]*ShardHandler, cfg.Shards)
	chains := make([][]http.Handler, cfg.Shards)
	urls := make([][]string, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		i := i
		// One frozen view per shard, shared by its replicas — exactly what
		// a real deployment gets from every replica regenerating the
		// identical world from the seed.
		view := full.Shard(func(d webcorpus.Doc) bool { return ring.Owner(d.URL) == i })
		handlers[i] = make([]*ShardHandler, replicas)
		chains[i] = make([]http.Handler, replicas)
		urls[i] = make([]string, replicas)
		for r := 0; r < replicas; r++ {
			opts := []ShardOption{WithShardClock(cfg.Clock), WithShardReplica(r)}
			var shardSpans *telemetry.SpanRecorder
			if cfg.SpanCapacity > 0 {
				shardSpans = telemetry.NewSpanRecorder(cfg.SpanCapacity, cfg.Clock)
				opts = append(opts, WithShardSpans(shardSpans))
			}
			sh := NewShardHandler(i, view, opts...)
			var chain http.Handler = sh
			if cfg.ShardMiddleware != nil {
				chain = cfg.ShardMiddleware(i, r, chain)
			}
			if cfg.ShardAdmission.Enabled() {
				ac := cfg.ShardAdmission
				if ac.Clock == nil {
					ac.Clock = cfg.Clock
				}
				adm := serpserver.NewAdmission(ac, sh.Telemetry(), shardSpans, chain)
				if g, ok := adm.(*serpserver.Admission); ok {
					// Deadline sheds at the handler advertise the gate's
					// backlog-derived Retry-After instead of a constant.
					sh.SetRetryAfter(g.RetryAfter)
				}
				chain = adm
			}
			handlers[i][r] = sh
			chains[i][r] = chain
			host := ShardNodeName(i, r)
			hosts[host] = chain
			urls[i][r] = "http://" + host
		}
	}

	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	client := NewClient(ClientConfig{
		Shards:           urls,
		Timeout:          cfg.ShardTimeout,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
		HedgeAfter:       cfg.HedgeAfter,
		ProbeInterval:    cfg.ProbeInterval,
		Clock:            cfg.Clock,
		Transport:        &memTransport{hosts: hosts},
	}, reg)

	eng := engine.NewCustom(cfg.Engine, cfg.Clock,
		engine.WithTelemetry(reg), engine.WithRetriever(client))
	hOpts := append([]serpserver.HandlerOption(nil), cfg.RouterOptions...)
	spans := cfg.RouterSpans
	if spans == nil && cfg.SpanCapacity > 0 {
		spans = telemetry.NewSpanRecorder(cfg.SpanCapacity, cfg.Clock)
	}
	if spans != nil {
		hOpts = append(hOpts, serpserver.WithSpans(spans))
	}
	handler := serpserver.NewHandler(eng, hOpts...)

	return &LocalCluster{
		Handler:       handler,
		Engine:        eng,
		Client:        client,
		Registry:      reg,
		Spans:         spans,
		ShardHandlers: handlers,
		ShardChains:   chains,
		StopProber:    client.StartProber(),
	}
}

// BuildShardIndex rebuilds the deterministic corpus from seed and returns
// shard shardID's view of a shardCount-way partition. This is how a
// standalone shard process (cmd/serpd -shard-id/-shard-count) obtains its
// slice without any data distribution: every node regenerates the
// identical world from the seed and keeps only the documents the ring
// assigns it. corpus may be nil for the study corpus; virtualNodes <= 0
// selects DefaultVirtualNodes (every node must agree on both). Replicas
// of one shard all build the identical view — replication is running this
// same partition more than once.
func BuildShardIndex(seed uint64, corpus *queries.Corpus, shardID, shardCount, virtualNodes int) *index.Index {
	if shardID < 0 || shardID >= shardCount {
		panic("router: shard ID out of range")
	}
	if corpus == nil {
		corpus = queries.StudyCorpus()
	}
	regions := make([]webcorpus.Region, 0)
	for _, ri := range engine.StudyRegions() {
		regions = append(regions, ri.Region)
	}
	web := webcorpus.NewWeb(seed, corpus, regions)
	full := index.BuildFromWeb(web)
	ring := NewRing(shardCount, virtualNodes)
	return full.Shard(func(d webcorpus.Doc) bool { return ring.Owner(d.URL) == shardID })
}

// memTransport dispatches shard requests to in-process handlers by host
// name — full HTTP serialization, no sockets. Unknown hosts fail like a
// connection refusal (a breaker-eligible transport error).
type memTransport struct {
	hosts map[string]http.Handler
}

func (t *memTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	h, ok := t.hosts[r.URL.Host]
	if !ok {
		return nil, fmt.Errorf("memtransport: no such host %q", r.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	resp := rec.Result()
	resp.Request = r
	return resp, nil
}
