package router

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/httpheader"
	"geoserp/internal/serpserver"
	"geoserp/internal/simclock"
)

var epoch = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

// testConfig returns an engine config with rate limiting effectively off,
// so request sequences in these tests never draw 429s.
func testConfig(seed uint64) engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Seed = seed
	cfg.RateBurst = 100000
	cfg.RatePerMinute = 100000
	return cfg
}

func TestRingDeterministicExhaustiveBalanced(t *testing.T) {
	a := NewRing(4, 0)
	b := NewRing(4, 0)
	counts := make([]int, 4)
	const keys = 4000
	for i := 0; i < keys; i++ {
		key := "http://example.org/page-" + strconv.Itoa(i)
		own := a.Owner(key)
		if got := b.Owner(key); got != own {
			t.Fatalf("rings disagree on %q: %d vs %d", key, own, got)
		}
		if own < 0 || own >= 4 {
			t.Fatalf("Owner(%q) = %d out of range", key, own)
		}
		counts[own]++
	}
	// Consistent hashing with 64 virtual nodes is not perfectly uniform,
	// but every shard must own a substantial slice — an empty or
	// overwhelmingly dominant shard means the ring is broken.
	for s, c := range counts {
		if c < keys/16 {
			t.Fatalf("shard %d owns only %d/%d keys: %v", s, c, keys, counts)
		}
	}
}

func TestRingMinimalMovementOnGrowth(t *testing.T) {
	small, big := NewRing(3, 0), NewRing(4, 0)
	moved := 0
	const keys = 4000
	for i := 0; i < keys; i++ {
		key := "http://example.org/page-" + strconv.Itoa(i)
		o1, o2 := small.Owner(key), big.Owner(key)
		if o1 != o2 {
			moved++
			if o2 != 3 {
				t.Fatalf("key %q moved between pre-existing shards %d -> %d", key, o1, o2)
			}
		}
	}
	// Expect ~1/4 of keys to move to the new shard; far more means the
	// hash is not consistent.
	if moved > keys/2 {
		t.Fatalf("%d/%d keys moved when growing 3 -> 4 shards", moved, keys)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	var events []string
	br := newBreaker(3, 45*time.Second)
	br.onTransition = func(l string) { events = append(events, l) }
	now := epoch

	// Failures below the threshold keep it closed; a success resets.
	br.failure(now)
	br.failure(now)
	br.success()
	br.failure(now)
	br.failure(now)
	if !br.allow(now) {
		t.Fatal("breaker tripped below threshold")
	}
	// Third consecutive failure trips it. The trip is deferred to the next
	// clock instant: siblings sharing the tripping request's instant are
	// still admitted (interleaving-independent), later instants fail fast.
	br.failure(now)
	if !br.allow(now) {
		t.Fatal("breaker denied a request sharing the trip instant")
	}
	if br.allow(now.Add(time.Millisecond)) {
		t.Fatal("open breaker admitted a request after the trip instant")
	}
	if br.stateName() != "open" {
		t.Fatalf("state = %q, want open", br.stateName())
	}

	// After the cooldown exactly one probe goes through.
	later := now.Add(45 * time.Second)
	if !br.allow(later) {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if br.allow(later) {
		t.Fatal("second concurrent probe admitted")
	}
	// Failed probe reopens for another full cooldown.
	br.failure(later)
	if br.allow(later.Add(44 * time.Second)) {
		t.Fatal("reopened breaker admitted before cooldown")
	}
	probeAt := later.Add(45 * time.Second)
	if !br.allow(probeAt) {
		t.Fatal("no probe after reopen cooldown")
	}
	// Pushback resolves the probe slot without closing or reopening.
	br.pushback()
	if br.stateName() != "half-open" {
		t.Fatalf("state after pushback = %q, want half-open", br.stateName())
	}
	if !br.allow(probeAt) {
		t.Fatal("pushback did not free the probe slot")
	}
	br.success()
	if br.stateName() != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", br.stateName())
	}

	want := []string{"open", "half_open", "reopen", "half_open", "close"}
	if strings.Join(events, ",") != strings.Join(want, ",") {
		t.Fatalf("transitions = %v, want %v", events, want)
	}
	// Pushback while closed must not count toward the failure streak.
	br.failure(probeAt)
	br.failure(probeAt)
	br.pushback()
	br.failure(probeAt)
	if br.stateName() != "open" {
		t.Fatal("three failures with interleaved pushback did not trip")
	}
}

// fetch issues one /search against h and returns status, the partial
// header, and the body.
func fetch(t *testing.T, h http.Handler, query, trace, ip string) (int, string, string) {
	t.Helper()
	r := httptest.NewRequest(http.MethodGet, "/search?q="+strings.ReplaceAll(query, " ", "+")+"&ll=41.4993,-81.6944&format=json", nil)
	r.Header.Set("User-Agent", "Mozilla/5.0 (Linux; Android 5.1) Mobile")
	r.Header.Set(httpheader.ForwardedFor, ip)
	if trace != "" {
		r.Header.Set(httpheader.TraceID, trace)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w.Code, w.Header().Get(httpheader.SerpPartial), w.Body.String()
}

var clusterQueries = []string{
	"pizza", "coffee shop", "high school", "joe's crab shack",
	"barack obama", "gun control", "car repair", "university",
}

// runSequence drives the same deterministic request sequence against a
// handler and returns the concatenated JSON pages.
func runSequence(t *testing.T, h http.Handler) []string {
	t.Helper()
	out := make([]string, 0, len(clusterQueries))
	for i, q := range clusterQueries {
		code, _, body := fetch(t, h, q, "trace-"+strconv.Itoa(i), "10.1.2.3")
		if code != http.StatusOK {
			t.Fatalf("query %q: status %d: %s", q, code, body)
		}
		out = append(out, body)
	}
	return out
}

// TestClusterMatchesMonolith is the tentpole acceptance test: a sharded
// cluster's pages are byte-identical to a monolithic engine's, at every
// shard count, and same-seed runs are byte-identical to each other.
func TestClusterMatchesMonolith(t *testing.T) {
	cfg := testConfig(7)
	mono := serpserver.NewHandler(engine.NewCustom(cfg, simclock.NewManual(epoch)))
	want := runSequence(t, mono)

	for _, shards := range []int{1, 2, 3} {
		for run := 0; run < 2; run++ {
			cl := NewLocalCluster(ClusterConfig{
				Shards: shards,
				Engine: cfg,
				Clock:  simclock.NewManual(epoch),
			})
			got := runSequence(t, cl.Handler)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d run=%d query %q: cluster page differs from monolith\ncluster:  %s\nmonolith: %s",
						shards, run, clusterQueries[i], got[i], want[i])
				}
			}
			if p := cl.Client.BreakerStates(); len(p) != shards {
				t.Fatalf("BreakerStates = %v, want %d entries", p, shards)
			}
		}
	}
}

// shardFault is a ShardMiddleware hook: while broken, the wrapped shard
// answers 500 to every request.
type shardFault struct{ broken bool }

func (f *shardFault) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.broken {
			http.Error(w, "injected fault", http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// TestClusterPartialDegradation covers the graded-degradation ladder: a
// failing shard yields 200s marked partial (never an error), the breaker
// trips after the threshold and fails fast, and after the shard heals the
// half-open probe recloses the breaker and pages go complete again.
func TestClusterPartialDegradation(t *testing.T) {
	clock := simclock.NewManual(epoch)
	fault := &shardFault{}
	cl := NewLocalCluster(ClusterConfig{
		Shards:           3,
		Engine:           testConfig(7),
		Clock:            clock,
		BreakerThreshold: 3,
		BreakerCooldown:  45 * time.Second,
		ShardMiddleware: func(shard, replica int, next http.Handler) http.Handler {
			if shard == 1 {
				return fault.middleware(next)
			}
			return next
		},
	})

	// Healthy cluster: complete pages, no partial marker.
	code, partial, _ := fetch(t, cl.Handler, "pizza", "t-0", "10.0.0.1")
	if code != http.StatusOK || partial != "" {
		t.Fatalf("healthy cluster: code=%d partial=%q", code, partial)
	}

	// Break shard 1: every page is still a 200, marked partial.
	fault.broken = true
	for i := 0; i < 6; i++ {
		code, partial, body := fetch(t, cl.Handler, "pizza", "t-bad-"+strconv.Itoa(i), "10.0.0.1")
		if code != http.StatusOK {
			t.Fatalf("degraded fetch %d: status %d: %s", i, code, body)
		}
		if partial != "web" {
			t.Fatalf("degraded fetch %d: partial header = %q, want \"web\"", i, partial)
		}
	}
	// After threshold=3 failures the breaker is open and failing fast.
	if s := cl.Client.BreakerStates()[1][0]; s != "open" {
		t.Fatalf("shard 1 breaker = %q after failure streak, want open", s)
	}
	// Heal the shard; before the cooldown the breaker still fails fast
	// (pages stay partial), after it the probe succeeds and recloses. The
	// clock moves first: a trip only takes effect after its own instant
	// (same-instant siblings are admitted, interleaving-independent).
	fault.broken = false
	clock.Advance(time.Second)
	_, partial, _ = fetch(t, cl.Handler, "pizza", "t-heal-0", "10.0.0.1")
	if partial != "web" {
		t.Fatal("breaker open but page not partial before cooldown")
	}
	clock.Advance(46 * time.Second)
	_, partial, _ = fetch(t, cl.Handler, "pizza", "t-heal-1", "10.0.0.1")
	if partial != "" {
		t.Fatalf("probe after cooldown did not restore complete pages (partial=%q)", partial)
	}
	if s := cl.Client.BreakerStates()[1][0]; s != "closed" {
		t.Fatalf("shard 1 breaker = %q after successful probe, want closed", s)
	}
}

// TestClusterAllShardsDown: when no shard contributes, /search answers 503
// with Retry-After — a shed, not a broken page.
func TestClusterAllShardsDown(t *testing.T) {
	cl := NewLocalCluster(ClusterConfig{
		Shards: 2,
		Engine: testConfig(7),
		Clock:  simclock.NewManual(epoch),
		ShardMiddleware: func(shard, replica int, next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "down", http.StatusInternalServerError)
			})
		},
	})
	r := httptest.NewRequest(http.MethodGet, "/search?q=pizza&format=json", nil)
	r.Header.Set("User-Agent", "Mozilla/5.0 (Linux; Android 5.1) Mobile")
	w := httptest.NewRecorder()
	cl.Handler.ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("all shards down: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After hint")
	}
}

// TestShardHandlerSurface covers the shard node's own HTTP contract.
func TestShardHandlerSurface(t *testing.T) {
	clock := simclock.NewManual(epoch)
	cl := NewLocalCluster(ClusterConfig{Shards: 2, Engine: testConfig(7), Clock: clock})
	sh := cl.ShardHandlers[0][0]

	// A normal search returns JSON hits from this shard only.
	r := httptest.NewRequest(http.MethodGet, SearchPath+"?q=pizza&k=5", nil)
	w := httptest.NewRecorder()
	sh.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("shard search: status %d: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "\"shard\":0") {
		t.Fatalf("shard response missing shard id: %s", w.Body.String())
	}

	// An already-expired propagated deadline is refused as a shed.
	r = httptest.NewRequest(http.MethodGet, SearchPath+"?q=pizza", nil)
	r.Header.Set(httpheader.DeadlineMs, strconv.FormatInt(epoch.Add(-time.Second).UnixMilli(), 10))
	w = httptest.NewRecorder()
	sh.ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d, want 503", w.Code)
	}

	// Empty query and malformed k are client errors.
	for _, path := range []string{SearchPath, SearchPath + "?q=pizza&k=bogus"} {
		r = httptest.NewRequest(http.MethodGet, path, nil)
		w = httptest.NewRecorder()
		sh.ServeHTTP(w, r)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, w.Code)
		}
	}

	// The partition is exhaustive: the shard views' docs sum to the
	// monolithic corpus.
	total := 0
	for _, s := range cl.ShardHandlers {
		total += s[0].Docs()
	}
	mono := NewLocalCluster(ClusterConfig{Shards: 1, Engine: testConfig(7), Clock: simclock.NewManual(epoch)})
	if want := mono.ShardHandlers[0][0].Docs(); total != want {
		t.Fatalf("shard docs sum to %d, monolithic corpus has %d", total, want)
	}
}
