package router

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"

	"geoserp/internal/telemetry"
)

// ClusterTracezPath is the path the coordinator serves the cluster-wide
// trace surface on.
const ClusterTracezPath = "/clustertracez"

// ClusterTracez is the coordinator's cluster-wide trace surface: on every
// request it drains the router's own span ring plus each shard's /spanz
// export (over the scatter-gather client's transport), stitches them into
// cross-process traces, and serves critical-path reports.
//
//	GET /clustertracez                  JSON, every stitched trace
//	GET /clustertracez?trace=<id>       one trace (deterministic body:
//	                                    no ring totals, only trace content)
//	GET /clustertracez?limit=N          at most N most recent traces
//	GET /clustertracez?format=html      human-readable summary
//	GET /clustertracez?format=chrome    multi-process Chrome trace export,
//	                                    one process lane per node
type ClusterTracez struct {
	node   string
	spans  *telemetry.SpanRecorder
	client *Client
}

// NewClusterTracez builds the surface over the coordinator's recorder
// (named node "router" in exports) and its scatter-gather client.
func NewClusterTracez(spans *telemetry.SpanRecorder, client *Client) *ClusterTracez {
	return &ClusterTracez{node: "router", spans: spans, client: client}
}

// Collect snapshots every node's spans, router lane first then shards in
// shard order, plus one error string per lane ("" on success).
func (h *ClusterTracez) Collect() ([]telemetry.NodeSpans, []string) {
	nodes := []telemetry.NodeSpans{{Node: h.node, Spans: h.spans.Snapshot()}}
	errs := []string{""}
	shardNodes, shardErrs := h.client.CollectSpanz()
	nodes = append(nodes, shardNodes...)
	for _, err := range shardErrs {
		if err != nil {
			errs = append(errs, err.Error())
		} else {
			errs = append(errs, "")
		}
	}
	return nodes, errs
}

// clusterNode is one lane's collection summary.
type clusterNode struct {
	Node  string `json:"node"`
	Spans int    `json:"spans"`
	Error string `json:"error,omitempty"`
}

// clusterTraceView is one stitched trace with its attribution report.
type clusterTraceView struct {
	Report TraceReport              `json:"report"`
	Spans  []telemetry.StitchedSpan `json:"spans"`
}

func (h *ClusterTracez) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	want := r.URL.Query().Get("trace")
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/html") {
		format = "html"
	}

	nodes, errs := h.Collect()
	traces := telemetry.Stitch(nodes)
	if want != "" {
		if spans := telemetry.SpansOf(traces, want); spans != nil {
			traces = []telemetry.StitchedTrace{{TraceID: want, Spans: spans}}
		} else {
			traces = nil
		}
	}
	// Most recent trace first, like /tracez; Stitch returns oldest first.
	views := make([]clusterTraceView, 0, len(traces))
	for i := len(traces) - 1; i >= 0; i-- {
		if limit > 0 && len(views) >= limit {
			break
		}
		views = append(views, clusterTraceView{Report: Analyze(traces[i]), Spans: traces[i].Spans})
	}

	switch format {
	case "chrome":
		h.writeChrome(w, nodes, views)
	case "html":
		h.writeHTML(w, nodes, errs, views, want)
	default:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if want != "" {
			// A filtered body carries only trace content — no ring
			// totals, which drift with unrelated traffic — so same-seed
			// probes export byte-identical bodies.
			enc.Encode(struct {
				Version int                `json:"version"`
				Traces  []clusterTraceView `json:"traces"`
			}{telemetry.SpanzVersion, views})
			return
		}
		lanes := make([]clusterNode, len(nodes))
		for i, n := range nodes {
			lanes[i] = clusterNode{Node: n.Node, Spans: len(n.Spans), Error: errs[i]}
		}
		enc.Encode(struct {
			Version int                `json:"version"`
			Nodes   []clusterNode      `json:"nodes"`
			Traces  []clusterTraceView `json:"traces"`
		}{telemetry.SpanzVersion, lanes, views})
	}
}

// writeChrome renders the (possibly trace-filtered) stitched spans as a
// multi-process Chrome trace: one process lane per node, in collection
// order (router, shard-0, shard-1, …), so a fan-out reads as parallel
// tracks across lanes.
func (h *ClusterTracez) writeChrome(w http.ResponseWriter, nodes []telemetry.NodeSpans, views []clusterTraceView) {
	byNode := make(map[string][]telemetry.SpanRecord, len(nodes))
	// Walk views oldest-first so lane content is chronological.
	for i := len(views) - 1; i >= 0; i-- {
		for _, s := range views[i].Spans {
			byNode[s.Node] = append(byNode[s.Node], s.SpanRecord)
		}
	}
	procs := make([]telemetry.ProcessSpans, 0, len(nodes))
	for _, n := range nodes {
		procs = append(procs, telemetry.ProcessSpans{Name: n.Node, Spans: byNode[n.Node]})
	}
	w.Header().Set("Content-Type", "application/json")
	telemetry.WriteChromeTraceProcs(w, procs)
}

func (h *ClusterTracez) writeHTML(w http.ResponseWriter, nodes []telemetry.NodeSpans, errs []string, views []clusterTraceView, want string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<!doctype html><title>clustertracez</title>" +
		"<style>body{font-family:monospace}li{list-style:none}</style>" +
		"<h1>clustertracez</h1><p>")
	for i, n := range nodes {
		if i > 0 {
			b.WriteString(" · ")
		}
		fmt.Fprintf(&b, "%s: %d spans", html.EscapeString(n.Node), len(n.Spans))
		if errs[i] != "" {
			fmt.Fprintf(&b, " (error: %s)", html.EscapeString(errs[i]))
		}
	}
	b.WriteString("</p>")
	if want != "" && len(views) == 0 {
		fmt.Fprintf(&b, "<p>trace %s not found on any node</p>", html.EscapeString(want))
	}
	for _, v := range views {
		rep := v.Report
		fmt.Fprintf(&b, "<h2>trace %s</h2><p>%d request span(s), %d shed(s), complete=%v</p><ul>",
			html.EscapeString(rep.TraceID), rep.Requests, rep.Sheds, rep.Complete)
		for _, ret := range rep.Retrievals {
			fmt.Fprintf(&b, "<li>retrieve %s · fanout %s · straggler shard %d (%s, %s)</li>",
				ret.SpanID[:8], ret.FanoutDur, ret.Straggler,
				html.EscapeString(ret.StragglerOutcome), ret.StragglerDur)
			for _, l := range ret.Legs {
				fmt.Fprintf(&b, "<li>&nbsp;&nbsp;&nbsp;&nbsp;shard %d · %s · client %s",
					l.Shard, html.EscapeString(l.Outcome), l.ClientDur)
				if l.Replica >= 0 {
					fmt.Fprintf(&b, " · replica %d", l.Replica)
				}
				if l.Hedge != "" {
					fmt.Fprintf(&b, " · hedge %s", html.EscapeString(l.Hedge))
				}
				if l.Stitched {
					fmt.Fprintf(&b, " · server %s on %s", l.ServerDur, html.EscapeString(l.Node))
				}
				if l.Error != "" {
					fmt.Fprintf(&b, " · %s", html.EscapeString(l.Error))
				}
				b.WriteString("</li>")
				for _, la := range l.Attempts {
					fmt.Fprintf(&b, "<li>&nbsp;&nbsp;&nbsp;&nbsp;&nbsp;&nbsp;&nbsp;&nbsp;replica %d · %s",
						la.Replica, html.EscapeString(la.Outcome))
					if la.Hedge {
						b.WriteString(" · hedged")
					}
					if la.Stitched {
						fmt.Fprintf(&b, " · server %s on %s", la.ServerDur, html.EscapeString(la.Node))
					}
					if la.Error != "" {
						fmt.Fprintf(&b, " · %s", html.EscapeString(la.Error))
					}
					b.WriteString("</li>")
				}
			}
		}
		b.WriteString("</ul>")
	}
	fmt.Fprint(w, b.String())
}
