package router

import (
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/simclock"
)

// BenchmarkRouterMerge measures the full scatter-gather retrieval: fan-out
// to three in-process shards, HTTP round-trip and JSON decode per shard,
// and the deterministic merge of the per-shard rankings. This is the
// router's per-query overhead versus a monolithic in-process index lookup.
func BenchmarkRouterMerge(b *testing.B) {
	cl := NewLocalCluster(ClusterConfig{
		Shards: 3,
		Engine: testConfig(1),
		Clock:  simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)),
	})
	req := engine.RetrieveRequest{Query: "coffee", K: 48}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cl.Client.Retrieve(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Hits) == 0 {
			b.Fatal("no hits")
		}
	}
}
