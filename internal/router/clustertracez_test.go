package router

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// span hand-builds one stitched span for analyzer tests.
func span(node, id, parent, name string, startMs, endMs int, attrs ...telemetry.Attr) telemetry.StitchedSpan {
	return telemetry.StitchedSpan{
		Node: node,
		SpanRecord: telemetry.SpanRecord{
			TraceID:  "t-1",
			SpanID:   id,
			ParentID: parent,
			Name:     name,
			Start:    epoch.Add(time.Duration(startMs) * time.Millisecond),
			End:      epoch.Add(time.Duration(endMs) * time.Millisecond),
			Attrs:    attrs,
		},
	}
}

func attr(k, v string) telemetry.Attr { return telemetry.Attr{Key: k, Val: v} }

// TestAnalyzeAttribution pins the critical-path report over a hand-built
// stitched trace: straggler selection skips breaker-open legs, ok legs must
// stitch to their server span for completeness, and outcome counting spans
// every leg.
func TestAnalyzeAttribution(t *testing.T) {
	tr := telemetry.StitchedTrace{TraceID: "t-1", Spans: []telemetry.StitchedSpan{
		span("router", "req-1", "", "serpd.request", 0, 100),
		span("router", "ret-1", "req-1", "engine.retrieve", 10, 80),
		// Legs deliberately out of shard order; the report sorts them.
		span("router", "leg-2", "ret-1", "router.shard", 10, 60,
			attr("shard", "2"), attr("outcome", "error"), attr("error", "status: 500")),
		span("router", "leg-0", "ret-1", "router.shard", 10, 40,
			attr("shard", "0"), attr("outcome", "ok"), attr("hits", "7")),
		span("router", "leg-1", "ret-1", "router.shard", 10, 15,
			attr("shard", "1"), attr("outcome", "shed")),
		// Breaker-open leg with the longest client duration: must never be
		// named the straggler (it was skipped, not waited on).
		span("router", "leg-3", "ret-1", "router.shard", 10, 80,
			attr("shard", "3"), attr("outcome", "breaker_open")),
		span("shard-0", "srv-0", "leg-0", "shard.search", 12, 38,
			attr("shard", "0")),
	}}

	rep := Analyze(tr)
	if rep.Requests != 1 || rep.Sheds != 0 {
		t.Fatalf("requests=%d sheds=%d, want 1/0", rep.Requests, rep.Sheds)
	}
	if len(rep.Retrievals) != 1 {
		t.Fatalf("retrievals = %d, want 1", len(rep.Retrievals))
	}
	ret := rep.Retrievals[0]
	if ret.FanoutDur != 70*time.Millisecond {
		t.Fatalf("fanout dur = %v", ret.FanoutDur)
	}
	if len(ret.Legs) != 4 {
		t.Fatalf("legs = %d, want 4", len(ret.Legs))
	}
	for i, l := range ret.Legs {
		if l.Shard != i {
			t.Fatalf("legs not sorted by shard: %+v", ret.Legs)
		}
	}
	if !ret.Legs[0].Stitched || ret.Legs[0].Node != "shard-0" || ret.Legs[0].ServerDur != 26*time.Millisecond {
		t.Fatalf("ok leg not stitched to its server span: %+v", ret.Legs[0])
	}
	if ret.Legs[2].Error != "status: 500" {
		t.Fatalf("error leg detail = %q", ret.Legs[2].Error)
	}
	if ret.Straggler != 2 || ret.StragglerOutcome != "error" || ret.StragglerDur != 50*time.Millisecond {
		t.Fatalf("straggler = shard %d (%s, %v), want shard 2 (error, 50ms)",
			ret.Straggler, ret.StragglerOutcome, ret.StragglerDur)
	}
	if !ret.Partial {
		t.Fatal("retrieval with non-ok legs not marked partial")
	}
	if !ret.Complete || !rep.Complete {
		t.Fatal("every ok leg stitched, but report not complete")
	}
	want := map[string]int{"ok": 1, "shed": 1, "error": 1, "breaker_open": 1}
	for k, v := range want {
		if rep.Outcomes[k] != v {
			t.Fatalf("outcomes = %v, want %v", rep.Outcomes, want)
		}
	}
}

// TestAnalyzeStragglerSkipsShedLegs pins the shed-exclusion rule: a leg
// the shard's admission gate shed — even one with the longest client
// duration, because it sat in the gate's queue until the deadline — did
// no retrieval work the coordinator waited on, so straggler attribution
// must skip it exactly as it skips breaker-open legs, and blame the
// slowest leg that actually ran.
func TestAnalyzeStragglerSkipsShedLegs(t *testing.T) {
	tr := telemetry.StitchedTrace{TraceID: "t-1", Spans: []telemetry.StitchedSpan{
		span("router", "req-1", "", "serpd.request", 0, 100),
		span("router", "ret-1", "req-1", "engine.retrieve", 10, 95),
		span("router", "leg-1", "ret-1", "router.shard", 10, 90,
			attr("shard", "1"), attr("outcome", "shed")),
		span("router", "leg-0", "ret-1", "router.shard", 10, 40,
			attr("shard", "0"), attr("outcome", "ok"), attr("hits", "3")),
		span("shard-0", "srv-0", "leg-0", "shard.search", 12, 38,
			attr("shard", "0")),
	}}
	rep := Analyze(tr)
	if len(rep.Retrievals) != 1 {
		t.Fatalf("retrievals = %d, want 1", len(rep.Retrievals))
	}
	ret := rep.Retrievals[0]
	if ret.Straggler != 0 || ret.StragglerOutcome != "ok" || ret.StragglerDur != 30*time.Millisecond {
		t.Fatalf("straggler = shard %d (%s, %v), want shard 0 (ok, 30ms): shed legs must never be blamed",
			ret.Straggler, ret.StragglerOutcome, ret.StragglerDur)
	}
	if !ret.Partial {
		t.Fatal("retrieval with a shed leg not marked partial")
	}
}

// TestAnalyzeIncomplete: an ok leg whose server span never surfaced (lost
// export) makes the retrieval — and the report — incomplete, and a trace
// with only shed spans reports zero requests and incomplete.
func TestAnalyzeIncomplete(t *testing.T) {
	tr := telemetry.StitchedTrace{TraceID: "t-1", Spans: []telemetry.StitchedSpan{
		span("router", "req-1", "", "serpd.request", 0, 100),
		span("router", "ret-1", "req-1", "engine.retrieve", 10, 80),
		span("router", "leg-0", "ret-1", "router.shard", 10, 40,
			attr("shard", "0"), attr("outcome", "ok")),
	}}
	rep := Analyze(tr)
	if rep.Retrievals[0].Complete || rep.Complete {
		t.Fatal("unstitched ok leg reported complete")
	}
	if rep.Retrievals[0].Straggler != 0 {
		t.Fatalf("straggler = %d, want 0", rep.Retrievals[0].Straggler)
	}

	shedOnly := telemetry.StitchedTrace{TraceID: "t-2", Spans: []telemetry.StitchedSpan{
		span("router", "shed-1", "", "serpd.shed", 0, 1),
	}}
	rep = Analyze(shedOnly)
	if rep.Requests != 0 || rep.Sheds != 1 || rep.Complete {
		t.Fatalf("shed-only trace: requests=%d sheds=%d complete=%v", rep.Requests, rep.Sheds, rep.Complete)
	}
}

// TestClusterTracezEndToEnd drives a live two-shard cluster and exercises
// the whole surface: collection over the in-memory transport, stitching,
// per-trace filtering with byte-identical repeat bodies, the Chrome export,
// the HTML view, and parameter validation.
func TestClusterTracezEndToEnd(t *testing.T) {
	cl := NewLocalCluster(ClusterConfig{
		Shards:       2,
		Engine:       testConfig(7),
		Clock:        simclock.NewManual(epoch),
		SpanCapacity: 256,
	})
	for i, q := range []string{"pizza", "coffee shop"} {
		code, _, body := fetch(t, cl.Handler, q, "ct-trace-"+strconv.Itoa(i), "10.9.9.9")
		if code != http.StatusOK {
			t.Fatalf("query %q: status %d: %s", q, code, body)
		}
	}
	ct := NewClusterTracez(cl.Spans, cl.Client)

	get := func(target string) (int, http.Header, string) {
		r := httptest.NewRequest(http.MethodGet, target, nil)
		w := httptest.NewRecorder()
		ct.ServeHTTP(w, r)
		return w.Code, w.Header(), w.Body.String()
	}

	// Full JSON body: all three lanes collected, both traces stitched and
	// complete (router + every contacted shard).
	code, hdr, body := get("/clustertracez")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("full body: code=%d type=%q", code, hdr.Get("Content-Type"))
	}
	var full struct {
		Version int `json:"version"`
		Nodes   []struct {
			Node  string `json:"node"`
			Spans int    `json:"spans"`
			Error string `json:"error"`
		} `json:"nodes"`
		Traces []struct {
			Report TraceReport `json:"report"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if full.Version != telemetry.SpanzVersion {
		t.Fatalf("version = %d", full.Version)
	}
	if len(full.Nodes) != 3 || full.Nodes[0].Node != "router" ||
		full.Nodes[1].Node != "shard-0" || full.Nodes[2].Node != "shard-1" {
		t.Fatalf("nodes = %+v", full.Nodes)
	}
	for _, n := range full.Nodes {
		if n.Error != "" || n.Spans == 0 {
			t.Fatalf("lane %s: %d spans, error %q", n.Node, n.Spans, n.Error)
		}
	}
	if len(full.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(full.Traces))
	}
	// Most recent first.
	if full.Traces[0].Report.TraceID != "ct-trace-1" || full.Traces[1].Report.TraceID != "ct-trace-0" {
		t.Fatalf("trace order: %s, %s", full.Traces[0].Report.TraceID, full.Traces[1].Report.TraceID)
	}
	for _, tr := range full.Traces {
		if !tr.Report.Complete {
			t.Fatalf("trace %s not complete: %+v", tr.Report.TraceID, tr.Report)
		}
		if tr.Report.Outcomes["ok"] != 2 {
			t.Fatalf("trace %s outcomes = %v", tr.Report.TraceID, tr.Report.Outcomes)
		}
	}

	// ?limit caps the view; bad limits are rejected.
	code, _, body = get("/clustertracez?limit=1")
	if code != http.StatusOK || strings.Contains(body, "ct-trace-0") {
		t.Fatalf("limit=1 still carries the older trace: %d\n%s", code, body)
	}
	if code, _, _ := get("/clustertracez?limit=x"); code != http.StatusBadRequest {
		t.Fatalf("bad limit: code=%d, want 400", code)
	}

	// Filtered body: only the wanted trace, no lane totals, and — with no
	// traffic in between — byte-identical on repeat collection.
	code, _, first := get("/clustertracez?trace=ct-trace-0")
	if code != http.StatusOK {
		t.Fatalf("filtered: code=%d", code)
	}
	if strings.Contains(first, `"nodes"`) || strings.Contains(first, "ct-trace-1") {
		t.Fatalf("filtered body leaks ring state or other traces:\n%s", first)
	}
	_, _, second := get("/clustertracez?trace=ct-trace-0")
	if first != second {
		t.Fatalf("repeat filtered collection not byte-identical:\n%s\n----\n%s", first, second)
	}
	if _, _, missing := get("/clustertracez?trace=nope"); !strings.Contains(missing, `"traces": []`) {
		t.Fatalf("unknown trace body: %s", missing)
	}

	// Chrome export: one named process lane per node.
	code, hdr, chrome := get("/clustertracez?trace=ct-trace-0&format=chrome")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("chrome: code=%d type=%q", code, hdr.Get("Content-Type"))
	}
	for _, lane := range []string{`"router"`, `"shard-0"`, `"shard-1"`} {
		if !strings.Contains(chrome, `"process_name","args":{"name":`+lane+`}`) {
			t.Fatalf("chrome export missing process lane %s:\n%s", lane, chrome)
		}
	}

	// HTML view, both via ?format and via Accept sniffing.
	code, hdr, page := get("/clustertracez?format=html")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "text/html") ||
		!strings.Contains(page, "straggler shard") {
		t.Fatalf("html: code=%d type=%q\n%s", code, hdr.Get("Content-Type"), page)
	}
	r := httptest.NewRequest(http.MethodGet, "/clustertracez", nil)
	r.Header.Set("Accept", "text/html,application/xhtml+xml")
	w := httptest.NewRecorder()
	ct.ServeHTTP(w, r)
	if !strings.Contains(w.Header().Get("Content-Type"), "text/html") {
		t.Fatal("Accept: text/html not sniffed")
	}
}

// TestClusterTracezDegraded: with a shard erroring, the report attributes
// the fault (error outcome on that shard's leg) and the page goes partial —
// and traces remain "complete" in the stitching sense, since the failed leg
// never owed a server span.
func TestClusterTracezDegraded(t *testing.T) {
	cl := NewLocalCluster(ClusterConfig{
		Shards:       2,
		Engine:       testConfig(7),
		Clock:        simclock.NewManual(epoch),
		SpanCapacity: 256,
		ShardMiddleware: func(shard, replica int, next http.Handler) http.Handler {
			if shard != 1 {
				return next
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == SearchPath {
					http.Error(w, "injected fault", http.StatusInternalServerError)
					return
				}
				next.ServeHTTP(w, r)
			})
		},
	})
	code, partial, _ := fetch(t, cl.Handler, "pizza", "ct-deg", "10.9.9.9")
	if code != http.StatusOK || partial != "web" {
		t.Fatalf("degraded fetch: code=%d partial=%q", code, partial)
	}

	ct := NewClusterTracez(cl.Spans, cl.Client)
	r := httptest.NewRequest(http.MethodGet, "/clustertracez?trace=ct-deg", nil)
	w := httptest.NewRecorder()
	ct.ServeHTTP(w, r)
	var got struct {
		Traces []struct {
			Report TraceReport `json:"report"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil || len(got.Traces) != 1 {
		t.Fatalf("decode: %v\n%s", err, w.Body.String())
	}
	rep := got.Traces[0].Report
	if !rep.Complete {
		t.Fatalf("degraded trace incomplete: %+v", rep)
	}
	ret := rep.Retrievals[0]
	if !ret.Partial || ret.Legs[1].Outcome != "error" || ret.Legs[1].Stitched {
		t.Fatalf("fault not attributed to shard 1: %+v", ret)
	}
	if ret.Legs[0].Outcome != "ok" || !ret.Legs[0].Stitched {
		t.Fatalf("healthy leg mis-reported: %+v", ret.Legs[0])
	}
}
