package router

import (
	"sync"
	"time"
)

// The router keeps one circuit breaker per shard so a dead or misbehaving
// shard is skipped outright — its portion of the corpus degrades to a
// partial result — instead of every query paying a timeout for it. The
// machine is the classic three-state breaker (closed → open after a streak
// of failures → half-open probe after a cooldown), mirroring the crawler's
// per-endpoint breaker in internal/browser, but unlike that one it must be
// safe for concurrent use: many scatter-gather fan-outs consult the same
// shard's breaker at once, and in half-open state exactly ONE of them may
// carry the probe.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Transition labels reported through router_breaker_transitions_total.
// "open" counts trips from closed, "reopen" failed half-open probes; at
// quiescence (every shard healthy again) open == close, which the cluster
// soak asserts.
const (
	breakerTransOpen     = "open"
	breakerTransReopen   = "reopen"
	breakerTransHalfOpen = "half_open"
	breakerTransClose    = "close"
)

// breaker is one shard's circuit breaker. Like the crawler's, it is driven
// entirely by the clock instants its owner passes in — it never reads a
// clock itself — so under a Manual campaign clock its transitions are a
// pure function of the deterministic failure sequence and same-seed chaos
// runs replay identical breaker timelines.
type breaker struct {
	threshold int           // consecutive failures that trip the breaker
	cooldown  time.Duration // open-state dwell before a half-open probe

	mu       sync.Mutex
	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // instant of the most recent trip
	probing  bool      // half-open: a probe is in flight

	// onTransition, when set, observes every state change (metric hook).
	// Called under the breaker lock; keep it to a counter bump.
	onTransition func(label string)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

func (br *breaker) transition(state int, label string) {
	br.state = state
	if br.onTransition != nil {
		br.onTransition(label)
	}
}

// allow reports whether a request to the shard may be issued at instant
// now. Open fails fast until the cooldown elapses, then moves to half-open
// and admits a single probe; while that probe is outstanding every other
// caller keeps failing fast.
func (br *breaker) allow(now time.Time) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch br.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(br.openedAt) < br.cooldown {
			return false
		}
		br.transition(breakerHalfOpen, breakerTransHalfOpen)
		br.probing = true
		return true
	default: // half-open
		if br.probing {
			return false
		}
		br.probing = true
		return true
	}
}

// success records a request the shard answered usefully. A successful
// half-open probe closes the breaker; in the closed state it resets the
// failure streak.
func (br *breaker) success() {
	br.mu.Lock()
	defer br.mu.Unlock()
	if br.state == breakerHalfOpen {
		br.probing = false
		br.transition(breakerClosed, breakerTransClose)
	}
	br.failures = 0
}

// failure records a breaker-eligible failure at instant now: transport
// errors, timeouts, and 5xx responses other than admission sheds. A failed
// half-open probe reopens the breaker for another full cooldown.
func (br *breaker) failure(now time.Time) {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch br.state {
	case breakerHalfOpen:
		br.probing = false
		br.openedAt = now
		br.transition(breakerOpen, breakerTransReopen)
	case breakerClosed:
		br.failures++
		if br.failures >= br.threshold {
			br.openedAt = now
			br.transition(breakerOpen, breakerTransOpen)
		}
	}
}

// pushback records explicit shard pushback — a 503 admission shed, where
// the shard is alive and asking for patience. It must not trip the breaker
// (the shard has not stopped answering) and must not count as success (the
// shard did no retrieval work). Its only effect: a half-open probe that
// drew a shed resolves the probe slot so the next fan-out can try again.
func (br *breaker) pushback() {
	br.mu.Lock()
	defer br.mu.Unlock()
	if br.state == breakerHalfOpen {
		br.probing = false
	}
}

// stateName renders the state for spans and /statz surfaces.
func (br *breaker) stateName() string {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch br.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
