package router

import (
	"sync"
	"time"
)

// The router keeps one circuit breaker per shard REPLICA so a dead or
// misbehaving node is skipped outright — its leg fails over to the next
// replica of the same shard — instead of every query paying a timeout for
// it. The
// machine is the classic three-state breaker (closed → open after a streak
// of failures → half-open probe after a cooldown), mirroring the crawler's
// per-endpoint breaker in internal/browser, but unlike that one it must be
// safe for concurrent use: many scatter-gather fan-outs consult the same
// shard's breaker at once, and in half-open state exactly ONE of them may
// carry the probe.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Transition labels reported through router_breaker_transitions_total.
// "open" counts trips from closed, "reopen" failed half-open probes; at
// quiescence (every shard healthy again) open == close, which the cluster
// soak asserts.
const (
	breakerTransOpen     = "open"
	breakerTransReopen   = "reopen"
	breakerTransHalfOpen = "half_open"
	breakerTransClose    = "close"
)

// breaker is one shard's circuit breaker. Like the crawler's, it is driven
// entirely by the clock instants its owner passes in — it never reads a
// clock itself — so under a Manual campaign clock its transitions are a
// pure function of the deterministic failure sequence and same-seed chaos
// runs replay identical breaker timelines.
type breaker struct {
	threshold int           // consecutive failures that trip the breaker
	cooldown  time.Duration // open-state dwell before a half-open probe

	mu        sync.Mutex
	state     int
	failures  int       // consecutive failures while closed
	openedAt  time.Time // instant of the most recent trip
	trippedAt time.Time // instant of the most recent closed→open trip
	probing   bool      // half-open: a probe is in flight

	// onTransition, when set, observes every state change (metric hook).
	// Called under the breaker lock; keep it to a counter bump.
	onTransition func(label string)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

func (br *breaker) transition(state int, label string) {
	br.state = state
	if br.onTransition != nil {
		br.onTransition(label)
	}
}

// allow reports whether a request to the shard may be issued at instant
// now. Open fails fast until the cooldown elapses, then moves to half-open
// and admits a single probe; while that probe is outstanding every other
// caller keeps failing fast. Requests sharing the trip's own clock instant
// are still admitted — the trip becomes visible at the next instant — so
// admission is a pure function of (state-before-now, now), never of how
// concurrent same-instant callers interleave.
func (br *breaker) allow(now time.Time) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch br.state {
	case breakerClosed:
		return true
	case breakerOpen:
		// A trip takes effect strictly AFTER the clock instant it happened
		// at. Fan-outs sharing the tripping request's instant were already
		// committed when the threshold failure landed, so they are admitted
		// (their failures are no-ops — the breaker is already open). Without
		// the deferral, whether a same-instant sibling contacts the replica
		// or fails fast would depend on goroutine interleaving, and failover
		// tallies would diverge across same-seed runs. Reopens after a
		// failed probe do NOT defer: same-instant siblings were denied both
		// before the reopen (half-open, probe slot taken) and after it
		// (cooldown restarted), so there is no interleaving to hide.
		if now.Equal(br.trippedAt) {
			return true
		}
		if now.Sub(br.openedAt) < br.cooldown {
			return false
		}
		br.transition(breakerHalfOpen, breakerTransHalfOpen)
		br.probing = true
		return true
	default: // half-open
		if br.probing {
			return false
		}
		br.probing = true
		return true
	}
}

// success records a request the shard answered usefully. A successful
// half-open probe closes the breaker; in the closed state it resets the
// failure streak.
func (br *breaker) success() {
	br.mu.Lock()
	defer br.mu.Unlock()
	if br.state == breakerHalfOpen {
		br.probing = false
		br.transition(breakerClosed, breakerTransClose)
	}
	br.failures = 0
}

// failure records a breaker-eligible failure at instant now: transport
// errors, timeouts, and 5xx responses other than admission sheds. A failed
// half-open probe reopens the breaker for another full cooldown.
func (br *breaker) failure(now time.Time) {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch br.state {
	case breakerHalfOpen:
		br.probing = false
		br.openedAt = now
		br.transition(breakerOpen, breakerTransReopen)
	case breakerClosed:
		br.failures++
		if br.failures >= br.threshold {
			br.openedAt = now
			br.trippedAt = now
			br.transition(breakerOpen, breakerTransOpen)
		}
	}
}

// pushback records explicit shard pushback — a 503 admission shed, where
// the shard is alive and asking for patience. It must not trip the breaker
// (the shard has not stopped answering) and must not count as success (the
// shard did no retrieval work). Its only effect: a half-open probe that
// drew a shed resolves the probe slot so the next fan-out can try again.
func (br *breaker) pushback() {
	br.mu.Lock()
	defer br.mu.Unlock()
	if br.state == breakerHalfOpen {
		br.probing = false
	}
}

// probeDue reports whether the breaker has sat open for at least its
// cooldown at instant now — the background health prober's admission
// test. Half-open breakers are not due: a search-path probe already owns
// the slot, and closed breakers need no re-admission.
func (br *breaker) probeDue(now time.Time) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.state == breakerOpen && now.Sub(br.openedAt) >= br.cooldown
}

// probeClose closes an open breaker on the strength of an out-of-band
// /healthz probe, reporting whether it transitioned. It emits the same
// "close" label as a successful half-open probe, so the open/close ledger
// the soak asserts stays balanced no matter which path re-admitted the
// replica. A breaker that moved on since probeDue (a concurrent fan-out
// took it half-open) is left alone — the in-flight probe decides.
func (br *breaker) probeClose() bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	if br.state != breakerOpen {
		return false
	}
	br.failures = 0
	br.transition(breakerClosed, breakerTransClose)
	return true
}

// stateName renders the state for spans and /statz surfaces.
func (br *breaker) stateName() string {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch br.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
