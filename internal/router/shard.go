package router

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"geoserp/internal/httpheader"
	"geoserp/internal/index"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// SearchPath is the shard retrieval endpoint. The admission gate in
// internal/serpserver recognizes it alongside /search, so a shard node
// reuses the exact FIFO admission machinery the monolith serves under.
const SearchPath = "/shard/search"

// defaultShardK bounds a shard reply when the router omits k. It matches
// the engine's retrieval depth so a bare query still returns a full page's
// candidates.
const defaultShardK = 48

// maxShardK caps how many hits one shard response will carry, whatever the
// client asked for.
const maxShardK = 512

// ShardResponse is the wire format of one shard's answer. Scores are
// float64s serialized by encoding/json, which emits the shortest decimal
// that round-trips — so the router decodes bit-identical scores and the
// merged ranking equals the monolith's exactly.
type ShardResponse struct {
	// Shard echoes the answering shard's ID (mismatch = misrouted query).
	Shard int `json:"shard"`
	// Replica echoes the answering node's replica ID within the shard's
	// ReplicaSet (mismatch = misrouted query). Every replica serves the
	// identical document slice, so this is a topology check, not a data
	// property.
	Replica int `json:"replica"`
	// Hits is the shard's top-k, already in merge order (score descending,
	// URL ascending).
	Hits []index.Hit `json:"hits"`
}

// ShardNodeName is the canonical node name for replica r of shard s, used
// for span lanes, spanz exports, and the in-process cluster's host names.
// Replica 0 keeps the legacy bare "shard-<s>" name so single-replica
// topologies are indistinguishable from pre-replication ones.
func ShardNodeName(shard, replica int) string {
	if replica <= 0 {
		return "shard-" + strconv.Itoa(shard)
	}
	return "shard-" + strconv.Itoa(shard) + "-r" + strconv.Itoa(replica)
}

// ShardHandler is one shard node's HTTP surface: GET /shard/search over a
// document-partitioned shard view of the inverted index (see index.Shard),
// plus the standard /healthz, /metricsz, and /tracez operability
// endpoints. It carries no personalization state — shards rank with global
// IDF and return raw TF-IDF candidates; everything location- or
// session-dependent happens at the router.
type ShardHandler struct {
	id      int
	replica int
	idx     *index.Index
	mux     *http.ServeMux
	tel     *telemetry.Registry
	spans   *telemetry.SpanRecorder
	clock   simclock.Clock

	// retryAfter, when set (SetRetryAfter), supplies the backlog-derived
	// Retry-After hint for deadline sheds.
	retryAfter func() time.Duration

	requests *telemetry.Counter    // shard_requests_total
	errors   *telemetry.CounterVec // shard_errors_total{reason}
	hits     *telemetry.Counter    // shard_hits_returned_total
	duration *telemetry.Histogram  // shard_search_duration_seconds
	wall     simclock.Clock
}

// ShardOption configures a ShardHandler.
type ShardOption func(*ShardHandler)

// WithShardTelemetry registers the shard's metrics on an existing registry
// (default: a private one).
func WithShardTelemetry(reg *telemetry.Registry) ShardOption {
	return func(h *ShardHandler) { h.tel = reg }
}

// WithShardSpans installs a span recorder: every retrieval gets a
// "shard.search" span keyed off the propagated X-Trace-Id (a remote child
// of the router's fan-out leg when X-Parent-Span is present), and the
// handler mounts GET /tracez and the GET /spanz export over the recorder.
func WithShardSpans(rec *telemetry.SpanRecorder) ShardOption {
	return func(h *ShardHandler) { h.spans = rec }
}

// WithShardClock sets the clock used for deadline checks — the campaign
// clock in virtual-time rigs. Defaults to the wall clock.
func WithShardClock(c simclock.Clock) ShardOption {
	return func(h *ShardHandler) { h.clock = c }
}

// WithShardReplica sets this node's replica ID within its shard's
// ReplicaSet (default 0). It is echoed in every ShardResponse and
// /healthz body and names the node's span lane (see ShardNodeName); the
// served documents are identical across replicas by construction.
func WithShardReplica(r int) ShardOption {
	return func(h *ShardHandler) { h.replica = r }
}

// NewShardHandler builds a shard node serving the given (already frozen)
// shard index view as shard id.
func NewShardHandler(id int, idx *index.Index, opts ...ShardOption) *ShardHandler {
	h := &ShardHandler{id: id, idx: idx, mux: http.NewServeMux(), wall: simclock.Wall()}
	for _, o := range opts {
		o(h)
	}
	if h.tel == nil {
		h.tel = telemetry.NewRegistry()
	}
	if h.clock == nil {
		h.clock = simclock.Wall()
	}
	h.requests = h.tel.Counter("shard_requests_total", "Retrieval requests received by this shard.")
	h.errors = h.tel.CounterVec("shard_errors_total", "Shard requests answered with an error status, by reason.", "reason")
	h.hits = h.tel.Counter("shard_hits_returned_total", "Hits returned across all shard responses.")
	h.duration = h.tel.Histogram("shard_search_duration_seconds", "Wall-clock shard retrieval time.", nil)
	h.mux.HandleFunc("GET "+SearchPath, h.handleSearch)
	h.mux.HandleFunc("GET /healthz", h.handleHealth)
	h.mux.Handle("GET /metricsz", h.tel.MetricsHandler())
	if h.spans != nil {
		h.mux.Handle("GET /tracez", telemetry.TracezHandler(h.spans))
		h.mux.Handle("GET "+telemetry.SpanzPath,
			telemetry.SpanzHandler(h.spans, ShardNodeName(h.id, h.replica)))
	}
	return h
}

// Telemetry returns the registry backing /metricsz.
func (h *ShardHandler) Telemetry() *telemetry.Registry { return h.tel }

// Spans returns the installed span recorder (nil when none).
func (h *ShardHandler) Spans() *telemetry.SpanRecorder { return h.spans }

// Docs returns how many documents this shard owns.
func (h *ShardHandler) Docs() int { return h.idx.Len() }

// SetRetryAfter wires the admission gate's backlog-derived retry hint
// into deadline sheds, so router-side clients back off proportionally to
// the queue actually in front of them instead of a hard-coded second.
func (h *ShardHandler) SetRetryAfter(hint func() time.Duration) { h.retryAfter = hint }

// retryAfterSeconds renders the Retry-After value for a deadline shed:
// the gate's backlog estimate when one is wired, else the 1-second floor.
func (h *ShardHandler) retryAfterSeconds() string {
	if h.retryAfter != nil {
		if d := h.retryAfter(); d > time.Second {
			return strconv.Itoa(int((d + time.Second - 1) / time.Second))
		}
	}
	return "1"
}

func (h *ShardHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *ShardHandler) handleSearch(w http.ResponseWriter, r *http.Request) {
	h.requests.Inc()
	start := h.wall.Now()
	defer h.duration.ObserveSince(start)

	var sp *telemetry.Span
	if h.spans != nil {
		attempt := 0
		if v := r.Header.Get(httpheader.TraceAttempt); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				attempt = n
			}
		}
		// The router names its fan-out leg in X-Parent-Span, so this span
		// joins the caller's trace as a remote child — the stitcher needs
		// no heuristics. Callers without the header still get a root.
		sp = h.spans.StartRemoteChild(r.Header.Get(httpheader.TraceID), "shard.search",
			r.Header.Get(httpheader.ParentSpan), attempt)
		sp.SetAttr("shard", strconv.Itoa(h.id))
		defer sp.End()
	}

	// A propagated deadline that already passed means the router (or its
	// client) has given up; refuse the work instead of ranking a partition
	// nobody will merge.
	if dl := parseDeadline(r); !dl.IsZero() && h.clock.Now().After(dl) {
		h.errors.With("deadline").Inc()
		sp.SetAttr("error", "deadline")
		w.Header().Set("Retry-After", h.retryAfterSeconds())
		http.Error(w, "deadline exceeded", http.StatusServiceUnavailable)
		return
	}

	q := r.URL.Query().Get("q")
	if q == "" {
		h.errors.With("empty_query").Inc()
		sp.SetAttr("error", "empty_query")
		http.Error(w, "empty query", http.StatusBadRequest)
		return
	}
	sp.SetAttr("query", q)

	k := defaultShardK
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			h.errors.With("bad_k").Inc()
			sp.SetAttr("error", "bad_k")
			http.Error(w, "bad k", http.StatusBadRequest)
			return
		}
		k = n
	}
	if k > maxShardK {
		k = maxShardK
	}

	res := h.idx.Search(q, k)
	h.hits.Add(uint64(len(res)))
	sp.SetAttr("hits", strconv.Itoa(len(res)))

	w.Header().Set("Content-Type", "application/json")
	if trace := r.Header.Get(httpheader.TraceID); trace != "" {
		w.Header().Set(httpheader.TraceID, trace)
	}
	if err := json.NewEncoder(w).Encode(ShardResponse{Shard: h.id, Replica: h.replica, Hits: res}); err != nil {
		// The client went away mid-write; nothing useful to do.
		h.errors.With("write").Inc()
	}
}

func (h *ShardHandler) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":  "ok",
		"shard":   h.id,
		"replica": h.replica,
		"docs":    h.idx.Len(),
	})
}
