package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/httpheader"
	"geoserp/internal/index"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// Per-shard fan-out outcomes, as exposed through
// router_shard_requests_total{outcome}.
const (
	outcomeOK          = "ok"           // shard answered with hits
	outcomeShed        = "shed"         // shard pushed back (503 admission shed)
	outcomeBreakerOpen = "breaker_open" // skipped: breaker failing fast
	outcomeError       = "error"        // transport error, timeout, or 5xx
)

// ClientConfig configures the scatter-gather client.
type ClientConfig struct {
	// Shards are the shard base URLs ("http://host:port"), indexed by
	// shard ID. Order matters: it must match the ring the corpus was
	// partitioned with.
	Shards []string
	// Timeout bounds one shard request on the wall clock. <= 0 means no
	// per-shard timeout (the propagated X-Deadline-Ms still applies at the
	// shard).
	Timeout time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// shard's breaker; <= 0 disables breakers entirely.
	BreakerThreshold int
	// BreakerCooldown is the open-state dwell before a half-open probe.
	BreakerCooldown time.Duration
	// Clock supplies the instants driving breaker cooldowns — the campaign
	// clock in virtual-time rigs, so same-seed chaos runs replay identical
	// breaker timelines. Defaults to the wall clock.
	Clock simclock.Clock
	// Transport issues the shard requests. Defaults to
	// http.DefaultTransport; cluster tests and the soak rig install an
	// in-process transport so no sockets are involved.
	Transport http.RoundTripper
}

// Client fans one retrieval out to every shard concurrently, merges the
// per-shard top-k rankings with the same comparator the index itself uses
// (score descending, URL ascending — URLs are unique across the disjoint
// partition, so the merged order is total and identical run to run no
// matter which shard answers first), and implements engine.Retriever so a
// coordinator engine is just engine.NewCustom(..., WithRetriever(client)).
//
// Degradation is graded: a shard that sheds, times out, errors, or sits
// behind an open breaker merely makes the result Partial — the engine
// still assembles a page from the reachable partition, marked with
// X-Serp-Partial at the front end. Only when NO shard contributes does
// Retrieve return engine.ErrRetrievalUnavailable (served as a 503).
type Client struct {
	cfg      ClientConfig
	breakers []*breaker

	retrievals  *telemetry.Counter    // router_retrievals_total
	partial     *telemetry.Counter    // router_partial_results_total
	unavailable *telemetry.Counter    // router_unavailable_total
	perShard    *telemetry.CounterVec // router_shard_requests_total{outcome}
	transitions *telemetry.CounterVec // router_breaker_transitions_total{event}
}

// NewClient builds a scatter-gather client over cfg.Shards, registering
// its metrics on reg (a private registry when nil).
func NewClient(cfg ClientConfig, reg *telemetry.Registry) *Client {
	if len(cfg.Shards) == 0 {
		panic("router: client needs at least one shard URL")
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Wall()
	}
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Client{
		cfg: cfg,
		retrievals: reg.Counter("router_retrievals_total",
			"Scatter-gather retrievals issued by the router."),
		partial: reg.Counter("router_partial_results_total",
			"Retrievals that merged fewer than all shards (degraded pages)."),
		unavailable: reg.Counter("router_unavailable_total",
			"Retrievals where no shard contributed (served as 503)."),
		perShard: reg.CounterVec("router_shard_requests_total",
			"Per-shard fan-out outcomes.", "outcome"),
		transitions: reg.CounterVec("router_breaker_transitions_total",
			"Shard breaker state transitions, by event.", "event"),
	}
	c.breakers = make([]*breaker, len(cfg.Shards))
	for i := range c.breakers {
		if cfg.BreakerThreshold > 0 {
			br := newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
			br.onTransition = func(label string) { c.transitions.With(label).Inc() }
			c.breakers[i] = br
		}
	}
	return c
}

// Shards returns the configured shard count.
func (c *Client) Shards() int { return len(c.cfg.Shards) }

// BreakerStates returns each shard breaker's current state name, for
// /statz surfaces ("disabled" when breakers are off).
func (c *Client) BreakerStates() []string {
	out := make([]string, len(c.breakers))
	for i, br := range c.breakers {
		if br == nil {
			out[i] = "disabled"
		} else {
			out[i] = br.stateName()
		}
	}
	return out
}

// shardOutcome is one shard's contribution to a scatter-gather round.
type shardOutcome struct {
	outcome string
	hits    []index.Hit
	dur     time.Duration // client-observed leg duration on cfg.Clock
}

// Retrieve implements engine.Retriever: concurrent fan-out, deterministic
// merge, graded degradation.
func (c *Client) Retrieve(req engine.RetrieveRequest) (engine.RetrieveResult, error) {
	c.retrievals.Inc()
	n := len(c.cfg.Shards)
	outcomes := make([]shardOutcome, n)

	// Child spans are started sequentially, in shard order, BEFORE the
	// fan-out: span IDs mix a per-parent sequence number, and minting them
	// from racing goroutines would leak scheduling order into the trace,
	// breaking same-seed byte-identical trace output.
	spans := make([]*telemetry.Span, n)
	for i := 0; i < n; i++ {
		spans[i] = req.Span.StartChild("router.shard")
		spans[i].SetAttr("shard", strconv.Itoa(i))
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			legStart := c.cfg.Clock.Now()
			outcomes[i] = c.callShard(i, req, spans[i])
			outcomes[i].dur = c.cfg.Clock.Now().Sub(legStart)
		}(i)
	}
	wg.Wait()
	// Ended sequentially after the barrier for the same reason they were
	// started sequentially: recorder commit order must not depend on which
	// shard's goroutine finished first.
	for i := 0; i < n; i++ {
		spans[i].End()
	}

	var merged []index.Hit
	ok := 0
	for i, o := range outcomes {
		c.perShard.With(o.outcome).Inc()
		// Wide-event legs are recorded here, after the barrier, so the
		// event never sees concurrent writers.
		req.Wide.Shard(i, o.outcome, o.dur)
		if o.outcome == outcomeOK {
			ok++
			merged = append(merged, o.hits...)
		}
	}
	switch {
	case ok == 0:
		c.unavailable.Inc()
		return engine.RetrieveResult{}, fmt.Errorf("router: 0/%d shards answered: %w", n, engine.ErrRetrievalUnavailable)
	case ok < n:
		c.partial.Inc()
		return engine.RetrieveResult{Hits: index.MergeHits(merged, req.K), Partial: true}, nil
	default:
		return engine.RetrieveResult{Hits: index.MergeHits(merged, req.K), Partial: false}, nil
	}
}

// callShard performs one shard request and classifies the outcome. The
// passed span is annotated but NOT ended here — the caller owns its
// lifecycle.
func (c *Client) callShard(i int, req engine.RetrieveRequest, sp *telemetry.Span) shardOutcome {
	br := c.breakers[i]
	if br != nil && !br.allow(c.cfg.Clock.Now()) {
		sp.SetAttr("outcome", outcomeBreakerOpen)
		return shardOutcome{outcome: outcomeBreakerOpen}
	}

	u := c.cfg.Shards[i] + SearchPath + "?q=" + url.QueryEscape(req.Query) +
		"&k=" + strconv.Itoa(req.K)
	hreq, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return c.fail(br, sp, "bad_url: "+err.Error())
	}
	if req.TraceID != "" {
		hreq.Header.Set(httpheader.TraceID, req.TraceID)
	}
	if id := sp.ID(); id != "" {
		// Name the exact fan-out leg as the server span's parent, so the
		// stitcher joins each attempt's legs unambiguously even when a
		// trace fans out more than once (retries).
		hreq.Header.Set(httpheader.ParentSpan, id)
	}
	if !req.Deadline.IsZero() {
		hreq.Header.Set(httpheader.DeadlineMs, strconv.FormatInt(req.Deadline.UnixMilli(), 10))
	}

	httpc := &http.Client{Transport: c.cfg.Transport, Timeout: c.cfg.Timeout}
	resp, err := httpc.Do(hreq)
	if err != nil {
		return c.fail(br, sp, "transport: "+err.Error())
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusOK:
		var sr ShardResponse
		if derr := json.NewDecoder(resp.Body).Decode(&sr); derr != nil {
			return c.fail(br, sp, "decode: "+derr.Error())
		}
		if sr.Shard != i {
			// A reply from the wrong shard means the topology is
			// misconfigured; merging it would silently corrupt rankings.
			return c.fail(br, sp, "misrouted: got shard "+strconv.Itoa(sr.Shard))
		}
		if br != nil {
			br.success()
		}
		sp.SetAttr("outcome", outcomeOK)
		sp.SetAttr("hits", strconv.Itoa(len(sr.Hits)))
		return shardOutcome{outcome: outcomeOK, hits: sr.Hits}
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Admission shed: the shard is alive and asked for patience.
		// Pushback must not trip the breaker — see breaker.pushback.
		_, _ = io.Copy(io.Discard, resp.Body)
		if br != nil {
			br.pushback()
		}
		sp.SetAttr("outcome", outcomeShed)
		return shardOutcome{outcome: outcomeShed}
	default:
		_, _ = io.Copy(io.Discard, resp.Body)
		return c.fail(br, sp, "status: "+resp.Status)
	}
}

// fail classifies a breaker-eligible failure.
func (c *Client) fail(br *breaker, sp *telemetry.Span, detail string) shardOutcome {
	if br != nil {
		br.failure(c.cfg.Clock.Now())
	}
	sp.SetAttr("outcome", outcomeError)
	sp.SetAttr("error", detail)
	return shardOutcome{outcome: outcomeError}
}

// CollectSpanz drains every shard's /spanz export over the client's own
// transport, returning one NodeSpans per shard, in shard order, plus
// per-shard fetch errors (nil entries on success). A shard that cannot be
// reached still yields a named, empty lane so stitched output keeps its
// process order.
func (c *Client) CollectSpanz() ([]telemetry.NodeSpans, []error) {
	httpc := &http.Client{Transport: c.cfg.Transport, Timeout: c.cfg.Timeout}
	nodes := make([]telemetry.NodeSpans, len(c.cfg.Shards))
	errs := make([]error, len(c.cfg.Shards))
	for i, base := range c.cfg.Shards {
		ns, err := telemetry.FetchSpanz(httpc, base)
		if ns.Node == "" {
			ns.Node = "shard-" + strconv.Itoa(i)
		}
		nodes[i] = ns
		errs[i] = err
	}
	return nodes, errs
}

// parseDeadline reads the propagated absolute deadline from X-Deadline-Ms
// (unix milliseconds); absent or malformed values mean no deadline.
func parseDeadline(r *http.Request) time.Time {
	v := r.Header.Get(httpheader.DeadlineMs)
	if v == "" {
		return time.Time{}
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}
	}
	return time.UnixMilli(ms)
}
