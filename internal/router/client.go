package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/httpheader"
	"geoserp/internal/index"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// Per-leg fan-out outcomes, as exposed through
// router_shard_requests_total{outcome}; the first four also classify
// individual replica attempts (router_replica_requests_total{outcome}),
// which additionally use "canceled" for hedge losers.
const (
	outcomeOK          = "ok"           // shard answered with hits
	outcomeShed        = "shed"         // shard pushed back (503 admission shed)
	outcomeBreakerOpen = "breaker_open" // skipped: breaker failing fast
	outcomeError       = "error"        // transport error, timeout, or 5xx
	outcomeCanceled    = "canceled"     // attempt lost a hedge race and was cancelled
)

// Hedge results, as exposed through router_hedges_total{result}.
const (
	hedgeWon  = "won"
	hedgeLost = "lost"
)

// ClientConfig configures the scatter-gather client.
type ClientConfig struct {
	// Shards are the replica base URLs ("http://host:port") per shard:
	// Shards[i] is shard i's ReplicaSet, in replica-ID order. Shard order
	// matters (it must match the ring the corpus was partitioned with);
	// every replica of one shard serves the identical document slice, so
	// which replica answers never changes a byte of the merged page.
	// SingleReplica wraps a flat one-URL-per-shard list.
	Shards [][]string
	// Timeout bounds one replica request on the wall clock. <= 0 means no
	// per-request timeout (the propagated X-Deadline-Ms still applies at
	// the shard).
	Timeout time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// replica's breaker; <= 0 disables breakers entirely.
	BreakerThreshold int
	// BreakerCooldown is the open-state dwell before a half-open probe.
	BreakerCooldown time.Duration
	// HedgeAfter, when > 0, arms hedged requests: a fan-out leg whose
	// current replica has not answered after this long on cfg.Clock fires
	// a backup request at the next healthy replica of the same shard; the
	// first useful answer wins and the loser is cancelled. Measured on the
	// campaign clock, so same-seed virtual-time runs hedge at identical
	// instants.
	HedgeAfter time.Duration
	// ProbeInterval, when > 0, is the cadence of the background health
	// prober started by StartProber: each tick probes GET /healthz on
	// every replica whose breaker has been open past its cooldown, and a
	// 200 re-closes the breaker — re-admitting a recovered replica even
	// when no search traffic arrives to half-open probe it.
	ProbeInterval time.Duration
	// Clock supplies the instants driving breaker cooldowns, hedge delays,
	// and probe ticks — the campaign clock in virtual-time rigs, so
	// same-seed chaos runs replay identical timelines. Defaults to the
	// wall clock.
	Clock simclock.Clock
	// Transport issues the shard requests. Defaults to
	// http.DefaultTransport; cluster tests and the soak rig install an
	// in-process transport so no sockets are involved.
	Transport http.RoundTripper
}

// SingleReplica wraps a flat shard URL list — one replica per shard — in
// the ReplicaSet shape ClientConfig.Shards takes.
func SingleReplica(urls []string) [][]string {
	out := make([][]string, len(urls))
	for i, u := range urls {
		out[i] = []string{u}
	}
	return out
}

// Client fans one retrieval out to every shard concurrently, merges the
// per-shard top-k rankings with the same comparator the index itself uses
// (score descending, URL ascending — URLs are unique across the disjoint
// partition, so the merged order is total and identical run to run no
// matter which shard answers first), and implements engine.Retriever so a
// coordinator engine is just engine.NewCustom(..., WithRetriever(client)).
//
// Each fan-out leg walks its shard's ReplicaSet: a preferred replica
// chosen deterministically from the trace ID, then the remaining replicas
// in ring order on transport error, breaker-open, or shed — optionally
// racing a hedged backup after HedgeAfter. A leg degrades the page only
// when EVERY replica of its shard fails; only when no shard contributes
// at all does Retrieve return engine.ErrRetrievalUnavailable (503).
type Client struct {
	cfg      ClientConfig
	breakers [][]*breaker // [shard][replica]; nil entries when disabled

	retrievals  *telemetry.Counter    // router_retrievals_total
	partial     *telemetry.Counter    // router_partial_results_total
	unavailable *telemetry.Counter    // router_unavailable_total
	perShard    *telemetry.CounterVec // router_shard_requests_total{outcome}
	perReplica  *telemetry.CounterVec // router_replica_requests_total{outcome}
	failovers   *telemetry.Counter    // router_replica_failovers_total
	hedges      *telemetry.CounterVec // router_hedges_total{result}
	probes      *telemetry.CounterVec // router_replica_probes_total{outcome}
	readmits    *telemetry.Counter    // router_replica_readmissions_total
	transitions *telemetry.CounterVec // router_breaker_transitions_total{event}
}

// NewClient builds a scatter-gather client over cfg.Shards, registering
// its metrics on reg (a private registry when nil).
func NewClient(cfg ClientConfig, reg *telemetry.Registry) *Client {
	if len(cfg.Shards) == 0 {
		panic("router: client needs at least one shard")
	}
	for i, reps := range cfg.Shards {
		if len(reps) == 0 {
			panic("router: shard " + strconv.Itoa(i) + " has no replica URLs")
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Wall()
	}
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Client{
		cfg: cfg,
		retrievals: reg.Counter("router_retrievals_total",
			"Scatter-gather retrievals issued by the router."),
		partial: reg.Counter("router_partial_results_total",
			"Retrievals that merged fewer than all shards (degraded pages)."),
		unavailable: reg.Counter("router_unavailable_total",
			"Retrievals where no shard contributed (served as 503)."),
		perShard: reg.CounterVec("router_shard_requests_total",
			"Per-shard fan-out leg outcomes (after replica failover).", "outcome"),
		perReplica: reg.CounterVec("router_replica_requests_total",
			"Per-replica attempt outcomes within fan-out legs.", "outcome"),
		failovers: reg.Counter("router_replica_failovers_total",
			"Replica attempts beyond the first within a fan-out leg, contacted or skipped — legs not served by their preferred replica on the first try."),
		hedges: reg.CounterVec("router_hedges_total",
			"Hedged backup requests fired, by result.", "result"),
		probes: reg.CounterVec("router_replica_probes_total",
			"Background replica health probes, by outcome.", "outcome"),
		readmits: reg.Counter("router_replica_readmissions_total",
			"Open replica breakers re-closed by a successful health probe."),
		transitions: reg.CounterVec("router_breaker_transitions_total",
			"Replica breaker state transitions, by event.", "event"),
	}
	c.breakers = make([][]*breaker, len(cfg.Shards))
	for i, reps := range cfg.Shards {
		c.breakers[i] = make([]*breaker, len(reps))
		for r := range reps {
			if cfg.BreakerThreshold > 0 {
				br := newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
				br.onTransition = func(label string) { c.transitions.With(label).Inc() }
				c.breakers[i][r] = br
			}
		}
	}
	return c
}

// Shards returns the configured shard count.
func (c *Client) Shards() int { return len(c.cfg.Shards) }

// BreakerStates returns each replica breaker's current state name,
// indexed [shard][replica], for /statz surfaces ("disabled" when breakers
// are off).
func (c *Client) BreakerStates() [][]string {
	out := make([][]string, len(c.breakers))
	for i, reps := range c.breakers {
		out[i] = make([]string, len(reps))
		for r, br := range reps {
			if br == nil {
				out[i][r] = "disabled"
			} else {
				out[i][r] = br.stateName()
			}
		}
	}
	return out
}

// replicaAttempt is one replica contact (or breaker fail-fast skip)
// within a leg, in chain order.
type replicaAttempt struct {
	replica int
	hedge   bool
	outcome string
	detail  string
	span    *telemetry.Span
	dur     time.Duration
}

// shardOutcome is one shard leg's contribution to a scatter-gather round.
type shardOutcome struct {
	outcome  string
	hits     []index.Hit
	dur      time.Duration // client-observed leg duration on cfg.Clock
	replica  int           // replica that delivered the hits; -1 when none
	attempts []replicaAttempt
	hedged   bool // a hedged backup request fired on this leg
	hedgeWon bool // ... and delivered the winning answer
}

// Retrieve implements engine.Retriever: concurrent fan-out, deterministic
// merge, graded degradation.
func (c *Client) Retrieve(req engine.RetrieveRequest) (engine.RetrieveResult, error) {
	c.retrievals.Inc()
	n := len(c.cfg.Shards)
	outcomes := make([]shardOutcome, n)

	// Leg spans are started sequentially, in shard order, BEFORE the
	// fan-out: span IDs mix a per-parent sequence number, and minting them
	// from racing goroutines would leak scheduling order into the trace,
	// breaking same-seed byte-identical trace output. (Attempt spans
	// below each leg are minted by that leg's single controller goroutine,
	// so their per-leg sequence is deterministic too.)
	spans := make([]*telemetry.Span, n)
	for i := 0; i < n; i++ {
		spans[i] = req.Span.StartChild(spanShardLeg)
		spans[i].SetAttr("shard", strconv.Itoa(i))
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			legStart := c.cfg.Clock.Now()
			outcomes[i] = c.callShard(i, req, spans[i])
			outcomes[i].dur = c.cfg.Clock.Now().Sub(legStart)
		}(i)
	}
	wg.Wait()
	// Spans are ended sequentially after the barrier for the same reason
	// they were started sequentially: recorder commit order must not
	// depend on which shard's goroutine finished first. Attempt spans
	// commit before their leg span, legs in shard order.
	for i := 0; i < n; i++ {
		for _, a := range outcomes[i].attempts {
			a.span.End()
		}
		spans[i].End()
	}

	var merged []index.Hit
	ok := 0
	for i := range outcomes {
		o := &outcomes[i]
		c.perShard.With(o.outcome).Inc()
		for _, a := range o.attempts {
			c.perReplica.With(a.outcome).Inc()
			// Wide-event attempts are recorded here, after the barrier, so
			// the event never sees concurrent writers.
			req.Wide.Shard(i, a.replica, a.outcome, a.hedge, a.dur)
		}
		// Failovers count every attempt beyond the leg's first, breaker-open
		// skips included: the deterministic fact is "this leg was not served
		// by its preferred replica on the first try". Whether the walk paid
		// for a doomed request or skipped it depends on the breaker's state
		// at the leg's instant — and WHICH instant a trace lands on shifts
		// with admission-gate retries, so counting only contacted attempts
		// would make the tally scheduling-dependent. Attempt-count per leg
		// is invariant: a dark replica costs its legs exactly one extra
		// attempt however the breaker absorbs it.
		if n := len(o.attempts); n > 1 {
			c.failovers.Add(uint64(n - 1))
		}
		if o.hedged {
			if o.hedgeWon {
				c.hedges.With(hedgeWon).Inc()
			} else {
				c.hedges.With(hedgeLost).Inc()
			}
			req.Wide.Hedge(o.hedgeWon)
		}
		if o.outcome == outcomeOK {
			ok++
			merged = append(merged, o.hits...)
		}
	}
	switch {
	case ok == 0:
		c.unavailable.Inc()
		return engine.RetrieveResult{}, fmt.Errorf("router: 0/%d shards answered: %w", n, engine.ErrRetrievalUnavailable)
	case ok < n:
		c.partial.Inc()
		return engine.RetrieveResult{Hits: index.MergeHits(merged, req.K), Partial: true}, nil
	default:
		return engine.RetrieveResult{Hits: index.MergeHits(merged, req.K), Partial: false}, nil
	}
}

// doRequest performs one replica request and classifies the result. It
// never touches breakers or spans — the leg controller owns those — so it
// is safe to run concurrently with a hedged sibling.
func (c *Client) doRequest(ctx context.Context, shard, replica int, req engine.RetrieveRequest, parentSpan string) attemptResult {
	u := c.cfg.Shards[shard][replica] + SearchPath + "?q=" + url.QueryEscape(req.Query) +
		"&k=" + strconv.Itoa(req.K)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return attemptResult{outcome: outcomeError, detail: "bad_url: " + err.Error()}
	}
	if req.TraceID != "" {
		hreq.Header.Set(httpheader.TraceID, req.TraceID)
	}
	if parentSpan != "" {
		// Name the exact replica attempt as the server span's parent, so
		// the stitcher joins every attempt — first try, failover, or hedge
		// — to the server span it caused.
		hreq.Header.Set(httpheader.ParentSpan, parentSpan)
	}
	if !req.Deadline.IsZero() {
		hreq.Header.Set(httpheader.DeadlineMs, strconv.FormatInt(req.Deadline.UnixMilli(), 10))
	}

	httpc := &http.Client{Transport: c.cfg.Transport, Timeout: c.cfg.Timeout}
	resp, err := httpc.Do(hreq)
	if err != nil {
		return attemptResult{outcome: outcomeError, detail: "transport: " + err.Error()}
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusOK:
		var sr ShardResponse
		if derr := json.NewDecoder(resp.Body).Decode(&sr); derr != nil {
			return attemptResult{outcome: outcomeError, detail: "decode: " + derr.Error()}
		}
		if sr.Shard != shard {
			// A reply from the wrong shard means the topology is
			// misconfigured; merging it would silently corrupt rankings.
			return attemptResult{outcome: outcomeError, detail: "misrouted: got shard " + strconv.Itoa(sr.Shard)}
		}
		if sr.Replica != replica {
			return attemptResult{outcome: outcomeError, detail: "misrouted: got replica " + strconv.Itoa(sr.Replica)}
		}
		return attemptResult{outcome: outcomeOK, hits: sr.Hits}
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Admission shed: the replica is alive and asked for patience.
		// Pushback must not trip the breaker — see breaker.pushback.
		_, _ = io.Copy(io.Discard, resp.Body)
		return attemptResult{outcome: outcomeShed}
	default:
		_, _ = io.Copy(io.Discard, resp.Body)
		return attemptResult{outcome: outcomeError, detail: "status: " + resp.Status}
	}
}

// CollectSpanz drains every replica's /spanz export over the client's own
// transport, returning one NodeSpans per replica in (shard, replica)
// order, plus per-node fetch errors (nil entries on success). A node that
// cannot be reached still yields a named, empty lane so stitched output
// keeps its process order.
func (c *Client) CollectSpanz() ([]telemetry.NodeSpans, []error) {
	httpc := &http.Client{Transport: c.cfg.Transport, Timeout: c.cfg.Timeout}
	var nodes []telemetry.NodeSpans
	var errs []error
	for i, reps := range c.cfg.Shards {
		for r, base := range reps {
			ns, err := telemetry.FetchSpanz(httpc, base)
			if ns.Node == "" {
				ns.Node = ShardNodeName(i, r)
			}
			nodes = append(nodes, ns)
			errs = append(errs, err)
		}
	}
	return nodes, errs
}

// parseDeadline reads the propagated absolute deadline from X-Deadline-Ms
// (unix milliseconds); absent or malformed values mean no deadline.
func parseDeadline(r *http.Request) time.Time {
	v := r.Header.Get(httpheader.DeadlineMs)
	if v == "" {
		return time.Time{}
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}
	}
	return time.UnixMilli(ms)
}
