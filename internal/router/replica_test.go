package router

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geoserp/internal/simclock"
)

// replicaDown fails replica r of every shard: retrieval 500s and — so the
// background prober sees the node dark too — /healthz as well. The switch
// is atomic so tests can heal the replica mid-run.
type replicaDown struct {
	replica int
	down    atomic.Bool
}

func (f *replicaDown) middleware(shard, replica int, next http.Handler) http.Handler {
	if replica != f.replica {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.down.Load() && (r.URL.Path == SearchPath || r.URL.Path == "/healthz") {
			http.Error(w, "injected replica outage", http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// TestReplicaFailoverMatchesMonolith is the replication acceptance test:
// with replica 0 of EVERY shard dark for the whole run, a 2-replica
// cluster still serves every page byte-identical to a monolith — zero
// partial pages — because each leg that prefers the dead replica fails
// over to its healthy sibling (and, once the breaker trips, skips the
// dead one without even paying for the error).
func TestReplicaFailoverMatchesMonolith(t *testing.T) {
	cfg := testConfig(7)
	monoClock := simclock.NewManual(epoch)
	mono := NewLocalCluster(ClusterConfig{
		Shards: 1,
		Engine: cfg,
		Clock:  monoClock,
	})

	fault := &replicaDown{replica: 0}
	fault.down.Store(true)
	clock := simclock.NewManual(epoch)
	cl := NewLocalCluster(ClusterConfig{
		Shards:           3,
		Replicas:         2,
		Engine:           cfg,
		Clock:            clock,
		BreakerThreshold: 3,
		BreakerCooldown:  45 * time.Second,
		ShardMiddleware:  fault.middleware,
	})
	// Both clocks advance in lockstep, one second per query: requests land
	// on distinct instants (so tripped breakers are visible to later
	// queries — a trip only takes effect after its own instant) while the
	// monolith sees the identical timeline for byte comparison.
	for i, q := range clusterQueries {
		monoClock.Advance(time.Second)
		clock.Advance(time.Second)
		wantCode, _, want := fetch(t, mono.Handler, q, "trace-"+strconv.Itoa(i), "10.1.2.3")
		if wantCode != http.StatusOK {
			t.Fatalf("monolith query %q: status %d: %s", q, wantCode, want)
		}
		code, partial, body := fetch(t, cl.Handler, q, "trace-"+strconv.Itoa(i), "10.1.2.3")
		if code != http.StatusOK {
			t.Fatalf("query %q: status %d: %s", q, code, body)
		}
		if partial != "" {
			t.Fatalf("query %q went partial (%q) despite a healthy replica per shard", q, partial)
		}
		if body != want {
			t.Fatalf("query %q: replicated page differs from monolith\nreplicated: %s\nmonolith:   %s", q, body, want)
		}
	}
	// Vacuity guards: the dead replica was actually routed to (failover
	// happened), and errors plus breaker_open skips were both recorded.
	if cl.Client.failovers.Value() == 0 {
		t.Fatal("no leg ever failed over — every trace preferred the healthy replica, the test proved nothing")
	}
	got := cl.Client.perReplica.Values()
	if got["error"] == 0 || got["breaker_open"] == 0 || got["ok"] == 0 {
		t.Fatalf("replica attempt outcomes = %v, want ok, error, and breaker_open all exercised", got)
	}
	// Every leg itself must still read ok: replication absorbed the fault.
	if legs := cl.Client.perShard.Values(); len(legs) != 1 || legs["ok"] == 0 {
		t.Fatalf("leg outcomes = %v, want only ok", legs)
	}
}

// TestClusterAllReplicasDown: when every replica of a shard is gone the
// cluster degrades exactly as the single-replica topology did — here with
// every shard fully dark, /search answers 503 with Retry-After, a shed,
// never a broken page.
func TestClusterAllReplicasDown(t *testing.T) {
	cl := NewLocalCluster(ClusterConfig{
		Shards:   2,
		Replicas: 2,
		Engine:   testConfig(7),
		Clock:    simclock.NewManual(epoch),
		ShardMiddleware: func(shard, replica int, next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "down", http.StatusInternalServerError)
			})
		},
	})
	r := httptest.NewRequest(http.MethodGet, "/search?q=pizza&format=json", nil)
	r.Header.Set("User-Agent", "Mozilla/5.0 (Linux; Android 5.1) Mobile")
	w := httptest.NewRecorder()
	cl.Handler.ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("all replicas down: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After hint")
	}
}

// hangingReplica parks every retrieval against replica 0 until the
// request context is cancelled — the canonical straggler a hedged backup
// request must absorb.
func hangingReplica(shard, replica int, next http.Handler) http.Handler {
	if replica != 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != SearchPath {
			next.ServeHTTP(w, r)
			return
		}
		<-r.Context().Done()
		http.Error(w, "cancelled", http.StatusInternalServerError)
	})
}

// hedgeTrace returns a trace ID whose preferred replica is 0 on BOTH
// shards of a 2x2 cluster. With replica 0 hanging, every leg then stalls
// until its hedge fires — no leg resolves synchronously, so the test's
// clock advancement is the only schedule and runs replay byte-identically
// even under -race scheduling jitter.
func hedgeTrace() string {
	for i := 0; ; i++ {
		trace := "hedge-trace-" + strconv.Itoa(i)
		if preferredReplica(trace, 0, 2) == 0 && preferredReplica(trace, 1, 2) == 0 {
			return trace
		}
	}
}

// hedgeRun drives one query against a 2x2 cluster whose replica 0 hangs
// forever, advancing the Manual clock past HedgeAfter only once every
// leg's hedge timer is parked — the deterministic schedule the soak's
// campaign driver produces — and returns the page plus the filtered
// /clustertracez and Chrome exports for byte comparison.
func hedgeRun(t *testing.T, trace string) (page, tracez, chrome string) {
	t.Helper()
	const hedgeAfter = 30 * time.Second
	clock := simclock.NewManual(epoch)
	cl := NewLocalCluster(ClusterConfig{
		Shards:          2,
		Replicas:        2,
		Engine:          testConfig(7),
		Clock:           clock,
		HedgeAfter:      hedgeAfter,
		SpanCapacity:    256,
		ShardMiddleware: hangingReplica,
	})

	type result struct {
		code    int
		partial string
		body    string
	}
	done := make(chan result, 1)
	go func() {
		code, partial, body := fetch(t, cl.Handler, "pizza", trace, "10.1.2.3")
		done <- result{code, partial, body}
	}()
	// One hedge timer parks per fan-out leg, and — by hedgeTrace's
	// construction — both legs stall on the hanging preferred replica, so
	// nothing can resolve until the clock moves. Advancing exactly
	// HedgeAfter fires both timers and the backup requests win against
	// the stalled primaries.
	clock.WaitForSleepers(2)
	clock.Advance(hedgeAfter)
	res := <-done
	if res.code != http.StatusOK {
		t.Fatalf("hedged fetch: status %d: %s", res.code, res.body)
	}
	if res.partial != "" {
		t.Fatalf("hedged fetch went partial (%q): the backup request must deliver the full leg", res.partial)
	}
	if won := cl.Client.hedges.Values()[hedgeWon]; won == 0 {
		t.Fatalf("hedges = %v, want at least one win over the hanging replica", cl.Client.hedges.Values())
	}

	ct := NewClusterTracez(cl.Spans, cl.Client)
	serve := func(target string) string {
		r := httptest.NewRequest(http.MethodGet, target, nil)
		w := httptest.NewRecorder()
		ct.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", target, w.Code)
		}
		return w.Body.String()
	}
	return res.body, serve("/clustertracez?trace=" + trace), serve("/clustertracez?trace=" + trace + "&format=chrome")
}

// TestHedgedRequestsDeterministic: hedging never changes page bytes — the
// hedged cluster's page equals an unhedged healthy monolith's — and two
// same-seed hedged runs reproduce byte-identical pages AND byte-identical
// stitched trace exports: the hedge instant, the winner, and the losing
// attempt's cancellation are all functions of the seed and the clock.
func TestHedgedRequestsDeterministic(t *testing.T) {
	trace := hedgeTrace()
	mono := NewLocalCluster(ClusterConfig{
		Shards: 1,
		Engine: testConfig(7),
		Clock:  simclock.NewManual(epoch),
	})
	code, _, want := fetch(t, mono.Handler, "pizza", trace, "10.1.2.3")
	if code != http.StatusOK {
		t.Fatalf("monolith fetch: status %d", code)
	}

	page1, tracez1, chrome1 := hedgeRun(t, trace)
	page2, tracez2, chrome2 := hedgeRun(t, trace)
	if page1 != want {
		t.Fatalf("hedged page differs from monolith\nhedged:   %s\nmonolith: %s", page1, want)
	}
	if page1 != page2 {
		t.Fatalf("same-seed hedged pages diverged\nfirst:  %s\nsecond: %s", page1, page2)
	}
	if tracez1 != tracez2 {
		t.Fatalf("same-seed hedged /clustertracez exports diverged\nfirst:\n%s\nsecond:\n%s", tracez1, tracez2)
	}
	if chrome1 != chrome2 {
		t.Fatalf("same-seed hedged Chrome exports diverged\nfirst:\n%s\nsecond:\n%s", chrome1, chrome2)
	}
	// The export must actually carry the hedge story: a backup attempt
	// marked hedge and a cancelled loser.
	if !strings.Contains(tracez1, `"hedge"`) || !strings.Contains(tracez1, `"canceled"`) {
		t.Fatalf("hedged trace export missing hedge/canceled attempts:\n%s", tracez1)
	}
}

// TestProberReadmitsRecoveredReplica: a replica that dies, trips its
// breaker, and then heals is re-admitted by the background /healthz
// prober alone — no search traffic spends a half-open probe on it.
func TestProberReadmitsRecoveredReplica(t *testing.T) {
	const interval = time.Minute
	clock := simclock.NewManual(epoch)
	fault := &replicaDown{replica: 0}
	fault.down.Store(true)
	cl := NewLocalCluster(ClusterConfig{
		Shards:           1,
		Replicas:         2,
		Engine:           testConfig(7),
		Clock:            clock,
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Second,
		ProbeInterval:    interval,
		ShardMiddleware:  fault.middleware,
	})
	defer cl.StopProber()

	// Find a trace that prefers the dead replica so one fetch trips its
	// threshold-1 breaker.
	trace := ""
	for i := 0; ; i++ {
		trace = "probe-trace-" + strconv.Itoa(i)
		if preferredReplica(trace, 0, 2) == 0 {
			break
		}
	}
	code, partial, _ := fetch(t, cl.Handler, "pizza", trace, "10.1.2.3")
	if code != http.StatusOK || partial != "" {
		t.Fatalf("outage fetch: code=%d partial=%q, want failover to the healthy replica", code, partial)
	}
	if s := cl.Client.BreakerStates()[0][0]; s != "open" {
		t.Fatalf("replica 0 breaker = %q after the failed attempt, want open", s)
	}

	// awaitSweep advances the clock across the prober's next tick (the
	// prober parks passively, so only this advancement can wake it) and
	// waits out the sweep it triggers. It waits for the prober to park
	// first — launched asynchronously by NewLocalCluster, it may not have
	// reached its first sleep yet, and an advance before the park would
	// push its whole tick grid past everything this test drives.
	awaitSweep := func() {
		before := cl.Client.probes.Total()
		clock.WaitForSleepers(1)
		clock.Advance(interval + probePhase)
		deadline := time.Now().Add(5 * time.Second)
		for cl.Client.probes.Total() == before {
			if time.Now().After(deadline) {
				t.Fatal("prober never swept after the clock crossed its tick")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// While the replica is still dark the probe fails and the breaker
	// stays open.
	awaitSweep()
	if cl.Client.probes.Values()[outcomeError] == 0 {
		t.Fatalf("probes = %v, want a failed probe against the dark replica", cl.Client.probes.Values())
	}
	if s := cl.Client.BreakerStates()[0][0]; s != "open" {
		t.Fatalf("replica 0 breaker = %q after probing a dark replica, want open", s)
	}

	// Heal it; the next sweep re-closes the breaker with no search
	// traffic at all.
	fault.down.Store(false)
	awaitSweep()
	if s := cl.Client.BreakerStates()[0][0]; s != "closed" {
		t.Fatalf("replica 0 breaker = %q after probing the healed replica, want closed", s)
	}
	if n := cl.Client.readmits.Value(); n != 1 {
		t.Fatalf("readmissions = %d, want exactly 1", n)
	}

	// The re-admitted replica serves again: the same trace now lands on
	// replica 0 directly, no failover.
	before := cl.Client.failovers.Value()
	code, partial, _ = fetch(t, cl.Handler, "pizza", trace, "10.1.2.3")
	if code != http.StatusOK || partial != "" {
		t.Fatalf("post-readmission fetch: code=%d partial=%q", code, partial)
	}
	if cl.Client.failovers.Value() != before {
		t.Fatal("re-admitted replica still failed over")
	}
}

// TestBreakerProbeElection pins the half-open race satellite: when many
// concurrent fan-outs hit an open breaker whose cooldown has elapsed,
// exactly ONE is elected to carry the probe — run under -race this also
// proves the state machine's locking. A failed probe re-arms the
// election for the next cooldown; a successful one re-opens the floor to
// everyone.
func TestBreakerProbeElection(t *testing.T) {
	br := newBreaker(1, 45*time.Second)
	br.failure(epoch)
	if br.stateName() != "open" {
		t.Fatalf("state = %q, want open", br.stateName())
	}

	elect := func(now time.Time) int {
		const fanouts = 32
		var admitted atomic.Int32
		var wg sync.WaitGroup
		wg.Add(fanouts)
		start := make(chan struct{})
		for i := 0; i < fanouts; i++ {
			go func() {
				defer wg.Done()
				<-start
				if br.allow(now) {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		return int(admitted.Load())
	}

	probeAt := epoch.Add(45 * time.Second)
	if n := elect(probeAt); n != 1 {
		t.Fatalf("%d concurrent fan-outs admitted past the open breaker, want exactly 1 probe", n)
	}
	// The elected probe fails: the breaker re-opens and a fresh election
	// happens only after another full cooldown.
	br.failure(probeAt)
	if n := elect(probeAt.Add(44 * time.Second)); n != 0 {
		t.Fatalf("%d fan-outs admitted before the reopen cooldown elapsed, want 0", n)
	}
	reprobeAt := probeAt.Add(45 * time.Second)
	if n := elect(reprobeAt); n != 1 {
		t.Fatalf("%d fan-outs admitted at the second election, want exactly 1", n)
	}
	// While that probe is outstanding the out-of-band prober must not
	// interfere: the breaker is half-open, so it is neither due nor
	// force-closable.
	if br.probeDue(reprobeAt.Add(time.Hour)) {
		t.Fatal("half-open breaker reported probeDue — the search-path probe owns the slot")
	}
	if br.probeClose() {
		t.Fatal("probeClose closed a half-open breaker over the in-flight probe's head")
	}
	// The probe succeeds: closed, everyone admitted again.
	br.success()
	if n := elect(reprobeAt); n != 32 {
		t.Fatalf("%d fan-outs admitted through the closed breaker, want all 32", n)
	}
}
