package router

import (
	"sort"
	"strconv"
	"time"

	"geoserp/internal/telemetry"
)

// The critical-path analyzer turns one stitched cross-process trace into
// an attribution report: which shard was the straggler each fan-out waited
// on, how much of the fan-out window was spent waiting for it, and whether
// any leg was lost to a shed, an open breaker, or a deadline. It reads
// only span names and attributes the router and shard layers already
// record — no extra instrumentation on the hot path.

// Span names the analyzer keys on (matching what serpserver, the engine,
// the router client, and the shard handler record).
const (
	spanRequest     = "serpd.request"
	spanShed        = "serpd.shed"
	spanRetrieve    = "engine.retrieve"
	spanShardLeg    = "router.shard"
	spanAttempt     = "router.attempt"
	spanShardSearch = "shard.search"
)

// LegAttempt is one replica contact (or breaker fail-fast skip) within a
// fan-out leg, joined (when possible) with the replica-side server span
// it caused.
type LegAttempt struct {
	Replica int `json:"replica"`
	// Hedge marks a backup request fired after the hedge delay.
	Hedge   bool   `json:"hedge,omitempty"`
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// Stitched reports that the replica-side server span was found; Node
	// and ServerDur come from it.
	Stitched  bool          `json:"stitched,omitempty"`
	Node      string        `json:"node,omitempty"`
	ServerDur time.Duration `json:"server_dur_ns,omitempty"`
}

// ShardLeg is one fan-out leg of a retrieval, joined (when possible) with
// the shard-side server span it caused.
type ShardLeg struct {
	Shard   int    `json:"shard"`
	Outcome string `json:"outcome"`
	// Replica is the replica that delivered the leg's answer; -1 when
	// unknown (failed legs, or traces recorded before replica attempts).
	Replica int `json:"replica"`
	// ClientDur is the leg's duration as the router's span saw it.
	ClientDur time.Duration `json:"client_dur_ns"`
	// Stitched reports that the serving replica's server span was found;
	// Node and ServerDur come from it.
	Stitched  bool          `json:"stitched"`
	Node      string        `json:"node,omitempty"`
	ServerDur time.Duration `json:"server_dur_ns,omitempty"`
	Error     string        `json:"error,omitempty"`
	// Attempts is the leg's replica failover chain (empty for legacy
	// traces recorded before per-replica attempts).
	Attempts []LegAttempt `json:"attempts,omitempty"`
	// Hedge summarizes hedging on this leg: "" (none fired), "won" (the
	// hedged backup delivered the page), or "lost".
	Hedge string `json:"hedge,omitempty"`
}

// Retrieval is one scatter-gather round's breakdown.
type Retrieval struct {
	SpanID string `json:"span_id"`
	// FanoutDur is the engine.retrieve span's duration: the whole
	// scatter-gather window including the merge.
	FanoutDur time.Duration `json:"fanout_dur_ns"`
	Legs      []ShardLeg    `json:"legs"`
	// Straggler is the contacted shard with the longest client-observed
	// leg (ties break to the lowest shard ID); -1 when no shard did
	// retrieval work (all legs breaker-open or shed).
	Straggler        int           `json:"straggler_shard"`
	StragglerOutcome string        `json:"straggler_outcome,omitempty"`
	StragglerDur     time.Duration `json:"straggler_dur_ns"`
	// Partial reports that at least one leg did not contribute hits.
	Partial bool `json:"partial"`
	// Complete reports that every ok leg stitched to its server span.
	Complete bool `json:"complete"`
}

// TraceReport is the critical-path attribution for one stitched trace.
type TraceReport struct {
	TraceID string `json:"trace_id"`
	// Requests counts coordinator serpd.request spans (one per admitted
	// attempt); Sheds counts serpd.shed spans (admission refusals).
	Requests   int            `json:"requests"`
	Sheds      int            `json:"sheds"`
	Retrievals []Retrieval    `json:"retrievals"`
	Outcomes   map[string]int `json:"outcomes,omitempty"`
	// Complete reports that the trace saw at least one coordinator span
	// and every retrieval stitched completely — the soak's per-request
	// completeness invariant.
	Complete bool `json:"complete"`
}

// Analyze builds the critical-path report for one stitched trace.
func Analyze(tr telemetry.StitchedTrace) TraceReport {
	rep := TraceReport{TraceID: tr.TraceID, Outcomes: map[string]int{}}

	// Index shard-side server spans by the router span that caused them
	// (their remote parent — a replica attempt span, or the leg span
	// itself in legacy pre-replica traces). Attempts that never reached a
	// replica (breaker open, transport error) have no entry. Attempt spans
	// are indexed by their leg so each leg can render its failover chain.
	serverByParent := make(map[string]telemetry.StitchedSpan)
	attemptsByLeg := make(map[string][]telemetry.StitchedSpan)
	for _, s := range tr.Spans {
		switch s.Name {
		case spanRequest:
			rep.Requests++
		case spanShed:
			rep.Sheds++
		case spanAttempt:
			if s.ParentID != "" {
				attemptsByLeg[s.ParentID] = append(attemptsByLeg[s.ParentID], s)
			}
		case spanShardSearch:
			if s.ParentID != "" {
				serverByParent[s.ParentID] = s
			}
		}
	}

	for _, s := range tr.Spans {
		if s.Name != spanRetrieve {
			continue
		}
		ret := Retrieval{SpanID: s.SpanID, FanoutDur: s.Dur(), Straggler: -1, Complete: true}
		for _, leg := range tr.Spans {
			if leg.Name != spanShardLeg || leg.ParentID != s.SpanID {
				continue
			}
			shard, err := strconv.Atoi(leg.Attr("shard"))
			if err != nil {
				shard = -1
			}
			l := ShardLeg{
				Shard:     shard,
				Outcome:   leg.Attr("outcome"),
				Replica:   -1,
				ClientDur: leg.Dur(),
				Error:     leg.Attr("error"),
			}
			if rv, rerr := strconv.Atoi(leg.Attr("replica")); rerr == nil {
				l.Replica = rv
			}
			if atts := attemptsByLeg[leg.SpanID]; len(atts) > 0 {
				for _, as := range atts {
					la := LegAttempt{
						Replica: -1,
						Hedge:   as.Attr("hedge") == "true",
						Outcome: as.Attr("outcome"),
						Error:   as.Attr("error"),
					}
					if rv, rerr := strconv.Atoi(as.Attr("replica")); rerr == nil {
						la.Replica = rv
					}
					if srv, ok := serverByParent[as.SpanID]; ok {
						la.Stitched = true
						la.Node = srv.Node
						la.ServerDur = srv.Dur()
					}
					if la.Outcome == outcomeOK {
						// The serving attempt lends the leg its server-side
						// join, and its replica when the leg span lacks one.
						l.Stitched = la.Stitched
						l.Node = la.Node
						l.ServerDur = la.ServerDur
						if l.Replica < 0 {
							l.Replica = la.Replica
						}
					}
					if la.Hedge && l.Hedge == "" {
						l.Hedge = "lost"
					}
					if la.Hedge && la.Outcome == outcomeOK {
						l.Hedge = "won"
					}
					l.Attempts = append(l.Attempts, la)
				}
			} else if srv, ok := serverByParent[leg.SpanID]; ok {
				// Legacy trace: the server span joined the leg directly.
				l.Stitched = true
				l.Node = srv.Node
				l.ServerDur = srv.Dur()
			}
			rep.Outcomes[l.Outcome]++
			if l.Outcome != outcomeOK {
				ret.Partial = true
			}
			if l.Outcome == outcomeOK && !l.Stitched {
				ret.Complete = false
			}
			ret.Legs = append(ret.Legs, l)
		}
		sort.Slice(ret.Legs, func(i, j int) bool { return ret.Legs[i].Shard < ret.Legs[j].Shard })
		for _, l := range ret.Legs {
			// Breaker-open legs were never contacted and shed legs were
			// refused by the gate without retrieval work; neither is the
			// shard the fan-out did ranking work waiting on.
			if l.Outcome == outcomeBreakerOpen || l.Outcome == outcomeShed {
				continue
			}
			if ret.Straggler < 0 || l.ClientDur > ret.StragglerDur {
				ret.Straggler = l.Shard
				ret.StragglerOutcome = l.Outcome
				ret.StragglerDur = l.ClientDur
			}
		}
		rep.Retrievals = append(rep.Retrievals, ret)
	}
	// Retrievals inherit the stitched span order — chronological with
	// deterministic tie-breaks — so reports are stable run to run.

	rep.Complete = rep.Requests > 0
	for _, r := range rep.Retrievals {
		if !r.Complete {
			rep.Complete = false
		}
	}
	if len(rep.Outcomes) == 0 {
		rep.Outcomes = nil
	}
	return rep
}
