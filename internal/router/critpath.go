package router

import (
	"sort"
	"strconv"
	"time"

	"geoserp/internal/telemetry"
)

// The critical-path analyzer turns one stitched cross-process trace into
// an attribution report: which shard was the straggler each fan-out waited
// on, how much of the fan-out window was spent waiting for it, and whether
// any leg was lost to a shed, an open breaker, or a deadline. It reads
// only span names and attributes the router and shard layers already
// record — no extra instrumentation on the hot path.

// Span names the analyzer keys on (matching what serpserver, the engine,
// the router client, and the shard handler record).
const (
	spanRequest     = "serpd.request"
	spanShed        = "serpd.shed"
	spanRetrieve    = "engine.retrieve"
	spanShardLeg    = "router.shard"
	spanShardSearch = "shard.search"
)

// ShardLeg is one fan-out leg of a retrieval, joined (when possible) with
// the shard-side server span it caused.
type ShardLeg struct {
	Shard   int    `json:"shard"`
	Outcome string `json:"outcome"`
	// ClientDur is the leg's duration as the router's span saw it.
	ClientDur time.Duration `json:"client_dur_ns"`
	// Stitched reports that the shard-side server span was found; Node
	// and ServerDur come from it.
	Stitched  bool          `json:"stitched"`
	Node      string        `json:"node,omitempty"`
	ServerDur time.Duration `json:"server_dur_ns,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// Retrieval is one scatter-gather round's breakdown.
type Retrieval struct {
	SpanID string `json:"span_id"`
	// FanoutDur is the engine.retrieve span's duration: the whole
	// scatter-gather window including the merge.
	FanoutDur time.Duration `json:"fanout_dur_ns"`
	Legs      []ShardLeg    `json:"legs"`
	// Straggler is the contacted shard with the longest client-observed
	// leg (ties break to the lowest shard ID); -1 when no shard was
	// contacted (all breakers open).
	Straggler        int           `json:"straggler_shard"`
	StragglerOutcome string        `json:"straggler_outcome,omitempty"`
	StragglerDur     time.Duration `json:"straggler_dur_ns"`
	// Partial reports that at least one leg did not contribute hits.
	Partial bool `json:"partial"`
	// Complete reports that every ok leg stitched to its server span.
	Complete bool `json:"complete"`
}

// TraceReport is the critical-path attribution for one stitched trace.
type TraceReport struct {
	TraceID string `json:"trace_id"`
	// Requests counts coordinator serpd.request spans (one per admitted
	// attempt); Sheds counts serpd.shed spans (admission refusals).
	Requests   int            `json:"requests"`
	Sheds      int            `json:"sheds"`
	Retrievals []Retrieval    `json:"retrievals"`
	Outcomes   map[string]int `json:"outcomes,omitempty"`
	// Complete reports that the trace saw at least one coordinator span
	// and every retrieval stitched completely — the soak's per-request
	// completeness invariant.
	Complete bool `json:"complete"`
}

// Analyze builds the critical-path report for one stitched trace.
func Analyze(tr telemetry.StitchedTrace) TraceReport {
	rep := TraceReport{TraceID: tr.TraceID, Outcomes: map[string]int{}}

	// Index shard-side server spans by the router leg that caused them
	// (their remote parent). Legs that never reached a shard (breaker
	// open, transport error) have no entry.
	serverByParent := make(map[string]telemetry.StitchedSpan)
	for _, s := range tr.Spans {
		switch s.Name {
		case spanRequest:
			rep.Requests++
		case spanShed:
			rep.Sheds++
		case spanShardSearch:
			if s.ParentID != "" {
				serverByParent[s.ParentID] = s
			}
		}
	}

	for _, s := range tr.Spans {
		if s.Name != spanRetrieve {
			continue
		}
		ret := Retrieval{SpanID: s.SpanID, FanoutDur: s.Dur(), Straggler: -1, Complete: true}
		for _, leg := range tr.Spans {
			if leg.Name != spanShardLeg || leg.ParentID != s.SpanID {
				continue
			}
			shard, err := strconv.Atoi(leg.Attr("shard"))
			if err != nil {
				shard = -1
			}
			l := ShardLeg{
				Shard:     shard,
				Outcome:   leg.Attr("outcome"),
				ClientDur: leg.Dur(),
				Error:     leg.Attr("error"),
			}
			if srv, ok := serverByParent[leg.SpanID]; ok {
				l.Stitched = true
				l.Node = srv.Node
				l.ServerDur = srv.Dur()
			}
			rep.Outcomes[l.Outcome]++
			if l.Outcome != outcomeOK {
				ret.Partial = true
			}
			if l.Outcome == outcomeOK && !l.Stitched {
				ret.Complete = false
			}
			ret.Legs = append(ret.Legs, l)
		}
		sort.Slice(ret.Legs, func(i, j int) bool { return ret.Legs[i].Shard < ret.Legs[j].Shard })
		for _, l := range ret.Legs {
			// Breaker-open legs were never contacted; they cannot be the
			// shard the fan-out waited on.
			if l.Outcome == outcomeBreakerOpen {
				continue
			}
			if ret.Straggler < 0 || l.ClientDur > ret.StragglerDur {
				ret.Straggler = l.Shard
				ret.StragglerOutcome = l.Outcome
				ret.StragglerDur = l.ClientDur
			}
		}
		rep.Retrievals = append(rep.Retrievals, ret)
	}
	// Retrievals inherit the stitched span order — chronological with
	// deterministic tie-breaks — so reports are stable run to run.

	rep.Complete = rep.Requests > 0
	for _, r := range rep.Retrievals {
		if !r.Complete {
			rep.Complete = false
		}
	}
	if len(rep.Outcomes) == 0 {
		rep.Outcomes = nil
	}
	return rep
}
