package router

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"geoserp/internal/detrand"
	"geoserp/internal/engine"
	"geoserp/internal/index"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// This file is the replica layer of the scatter-gather client: every
// shard is an interchangeable ReplicaSet, and each fan-out leg walks it
// deterministically — preferred replica from the trace ID, failover in
// ring order, optional hedged backup on the campaign clock — so that a
// single-replica fault never degrades a page and same-seed runs replay
// identical replica choices, hedge instants, and trace bytes.

// preferredReplica picks the replica a leg contacts first: a stable hash
// of the trace ID and shard, so same-seed runs route identically while
// distinct traces spread load across the replica set. The failover chain
// continues round-robin from it.
func preferredReplica(traceID string, shard, replicas int) int {
	if replicas <= 1 {
		return 0
	}
	h := detrand.Hash("router.replica", traceID, strconv.Itoa(shard))
	// Fold the high half in before taking the modulus: FNV-1a's low bits
	// are near-linear in the final input bytes, so with single-digit
	// shard labels h%2 would be the same parity bit for every even shard
	// and its complement for every odd one — replica choice must instead
	// depend on the whole (trace, shard) pair.
	h ^= h >> 32
	return int(h % uint64(replicas))
}

// attemptResult classifies one finished replica request.
type attemptResult struct {
	outcome string
	detail  string
	hits    []index.Hit
}

// attempt is one in-flight replica request. The leg controller goroutine
// owns it exclusively: it alone touches the span, applies breaker
// effects, and appends the attempt record, so nothing about an attempt
// depends on which goroutine's I/O finished first.
type attempt struct {
	replica int
	hedge   bool
	br      *breaker
	span    *telemetry.Span
	start   time.Time
	cancel  context.CancelFunc
	done    chan attemptResult // buffered; the request goroutine sends exactly once
}

// callShard runs one shard's leg: walk the replica failover chain until a
// replica answers or the set is exhausted, hedging stragglers when
// configured. The leg span is annotated but NOT ended here — Retrieve
// owns its lifecycle (and that of every attempt span, via out.attempts).
func (c *Client) callShard(shard int, req engine.RetrieveRequest, legSpan *telemetry.Span) shardOutcome {
	n := len(c.cfg.Shards[shard])
	out := shardOutcome{replica: -1}
	start := preferredReplica(req.TraceID, shard, n)
	next := 0 // offset into the failover chain

	// nextAttempt starts a request against the next replica in the
	// deterministic chain (preferred first, then successors mod n).
	// Replicas whose breakers fail fast are recorded as breaker_open
	// attempts and skipped without a request. Returns nil when the chain
	// is exhausted.
	nextAttempt := func(hedge bool) *attempt {
		for next < n {
			r := (start + next) % n
			next++
			br := c.breakers[shard][r]
			if br != nil && !br.allow(c.cfg.Clock.Now()) {
				sp := startAttemptSpan(legSpan, r, hedge)
				sp.SetAttr("outcome", outcomeBreakerOpen)
				out.attempts = append(out.attempts, replicaAttempt{
					replica: r, hedge: hedge, outcome: outcomeBreakerOpen, span: sp,
				})
				continue
			}
			return c.startAttempt(shard, r, br, req, legSpan, hedge)
		}
		return nil
	}

	for {
		prim := nextAttempt(false)
		if prim == nil {
			break // every replica tried or skipped
		}
		res, served := c.awaitLeg(prim, nextAttempt, &out)
		if res.outcome == outcomeOK {
			out.outcome = outcomeOK
			out.hits = res.hits
			out.replica = served
			legSpan.SetAttr("outcome", outcomeOK)
			legSpan.SetAttr("replica", strconv.Itoa(served))
			legSpan.SetAttr("hits", strconv.Itoa(len(res.hits)))
			return out
		}
	}

	// No replica delivered. Classify the leg by the worst failure class
	// seen — error dominates shed dominates breaker_open — so the leg
	// span and metrics name why the whole replica set failed.
	out.outcome = outcomeBreakerOpen
	detail := ""
	for _, a := range out.attempts {
		switch a.outcome {
		case outcomeError:
			if out.outcome != outcomeError {
				out.outcome = outcomeError
				detail = a.detail
			}
		case outcomeShed:
			if out.outcome == outcomeBreakerOpen {
				out.outcome = outcomeShed
			}
		}
	}
	legSpan.SetAttr("outcome", out.outcome)
	if detail != "" {
		legSpan.SetAttr("error", detail)
	}
	return out
}

// startAttemptSpan mints the per-replica attempt span under the leg span.
// Only the leg's controller goroutine calls it, so the leg's child
// sequence — and therefore every attempt span ID — is deterministic.
func startAttemptSpan(legSpan *telemetry.Span, replica int, hedge bool) *telemetry.Span {
	sp := legSpan.StartChild(spanAttempt)
	sp.SetAttr("replica", strconv.Itoa(replica))
	if hedge {
		sp.SetAttr("hedge", "true")
	}
	return sp
}

// startAttempt launches one replica request in its own goroutine and
// returns the controller's handle to it.
func (c *Client) startAttempt(shard, replica int, br *breaker, req engine.RetrieveRequest, legSpan *telemetry.Span, hedge bool) *attempt {
	sp := startAttemptSpan(legSpan, replica, hedge)
	ctx, cancel := context.WithCancel(context.Background())
	a := &attempt{
		replica: replica,
		hedge:   hedge,
		br:      br,
		span:    sp,
		start:   c.cfg.Clock.Now(),
		cancel:  cancel,
		done:    make(chan attemptResult, 1),
	}
	go func() {
		a.done <- c.doRequest(ctx, shard, replica, req, sp.ID())
	}()
	return a
}

// awaitLeg waits out one primary attempt, hedging it with the next
// replica in the chain when the primary stalls past HedgeAfter on the
// campaign clock. Attempt records are appended in chain order — primary
// before hedge — regardless of which resolved first, so the recorded
// trace never depends on goroutine scheduling. The returned int is the
// replica that served an OK result (-1 otherwise).
func (c *Client) awaitLeg(prim *attempt, nextAttempt func(bool) *attempt, out *shardOutcome) (attemptResult, int) {
	if c.cfg.HedgeAfter <= 0 {
		res := <-prim.done
		c.settle(prim, res, out)
		return res, prim.replica
	}

	// The timer goroutine parks on the campaign clock. When the primary
	// answers before the delay elapses the firing is simply never read;
	// the goroutine exits on its own once the clock passes the deadline.
	hedgeFire := make(chan struct{})
	go func() {
		c.cfg.Clock.Sleep(c.cfg.HedgeAfter)
		close(hedgeFire)
	}()

	var hedge *attempt
	var primRes *attemptResult
	select {
	case r := <-prim.done:
		primRes = &r
	case <-hedgeFire:
		hedge = nextAttempt(true)
	}
	if primRes != nil || hedge == nil {
		// Primary answered in time, or the hedge found no healthy backup
		// replica left in the chain: the leg is down to the primary alone.
		if primRes == nil {
			r := <-prim.done
			primRes = &r
		}
		c.settle(prim, *primRes, out)
		if primRes.outcome == outcomeOK {
			return *primRes, prim.replica
		}
		return *primRes, -1
	}
	out.hedged = true

	// Race primary and hedge: first useful answer wins, the loser is
	// cancelled and awaited, then both are settled in chain order.
	var first *attempt
	var firstRes attemptResult
	select {
	case r := <-prim.done:
		first, firstRes = prim, r
	case r := <-hedge.done:
		first, firstRes = hedge, r
	}
	if firstRes.outcome == outcomeOK {
		if first == prim {
			hedge.cancel()
			<-hedge.done
			c.settle(prim, firstRes, out)
			c.settleCanceled(hedge, out)
			return firstRes, prim.replica
		}
		prim.cancel()
		<-prim.done
		c.settleCanceled(prim, out)
		c.settle(hedge, firstRes, out)
		out.hedgeWon = true
		return firstRes, hedge.replica
	}
	// The first answer was a failure; wait the other attempt out in full —
	// it may still deliver the page.
	if first == prim {
		secRes := <-hedge.done
		c.settle(prim, firstRes, out)
		c.settle(hedge, secRes, out)
		if secRes.outcome == outcomeOK {
			out.hedgeWon = true
			return secRes, hedge.replica
		}
		return firstRes, -1
	}
	secRes := <-prim.done
	c.settle(prim, secRes, out)
	c.settle(hedge, firstRes, out)
	if secRes.outcome == outcomeOK {
		return secRes, prim.replica
	}
	return secRes, -1
}

// settle applies an attempt's breaker effect, annotates its span, and
// appends its record. Controller-only.
func (c *Client) settle(a *attempt, res attemptResult, out *shardOutcome) {
	switch res.outcome {
	case outcomeOK:
		if a.br != nil {
			a.br.success()
		}
		a.span.SetAttr("hits", strconv.Itoa(len(res.hits)))
	case outcomeShed:
		if a.br != nil {
			a.br.pushback()
		}
	default:
		if a.br != nil {
			a.br.failure(c.cfg.Clock.Now())
		}
	}
	a.span.SetAttr("outcome", res.outcome)
	if res.detail != "" {
		a.span.SetAttr("error", res.detail)
	}
	a.cancel() // release the request context either way
	out.attempts = append(out.attempts, replicaAttempt{
		replica: a.replica,
		hedge:   a.hedge,
		outcome: res.outcome,
		detail:  res.detail,
		span:    a.span,
		dur:     c.cfg.Clock.Now().Sub(a.start),
	})
}

// settleCanceled records a hedge-race loser. The record is normalized to
// "canceled" no matter how the request actually ended — it lost the race
// and its answer is discarded — and its breaker sees a pushback, never a
// failure: losing a hedge race is no evidence the replica is unhealthy,
// but a half-open probe slot it may hold must be released.
func (c *Client) settleCanceled(a *attempt, out *shardOutcome) {
	if a.br != nil {
		a.br.pushback()
	}
	a.span.SetAttr("outcome", outcomeCanceled)
	out.attempts = append(out.attempts, replicaAttempt{
		replica: a.replica,
		hedge:   a.hedge,
		outcome: outcomeCanceled,
		span:    a.span,
		dur:     c.cfg.Clock.Now().Sub(a.start),
	})
}

// probePhase offsets every health-probe tick by half a second. All other
// virtual instants in the chaos rigs land on whole seconds (campaign
// slots, retry backoffs, breaker cooldowns, deadlines), and a Manual
// clock releases same-deadline sleepers in insertion order — which is
// scheduling-dependent. The half-second phase keeps probe instants
// disjoint from every request instant, so breaker re-admission order is a
// pure function of the schedule and same-seed runs replay it
// byte-identically.
const probePhase = 500 * time.Millisecond

// StartProber launches the background health loop when
// cfg.ProbeInterval > 0: every interval (plus a fixed half-second phase)
// it sweeps the replica breakers in (shard, replica) order and probes
// GET /healthz on each one open past its cooldown; a 200 re-closes the
// breaker, re-admitting the recovered replica even when no search traffic
// arrives to half-open probe it. On a Manual campaign clock the loop uses
// the Holder rehold protocol, so each sweep completes atomically at its
// virtual instant before the campaign driver advances further — and it
// parks *passively* (SleepHeldPassive): the prober wakes whenever the
// campaign's own advancement crosses a tick, but its permanently
// re-parked sleeper never hands the driver a deadline of its own, which
// would let virtual time race ahead at wall speed whenever the campaign
// workers are momentarily between sleeps.
//
// The returned stop function is idempotent (a no-op one when probing is
// disabled). Note a stopped prober parked on a Manual clock only observes
// the stop at its next tick; a loop parked on a clock that never advances
// again simply stays parked, which rigs that tear the whole world down
// accept as a bounded leak.
func (c *Client) StartProber() (stop func()) {
	if c.cfg.ProbeInterval <= 0 {
		return func() {}
	}
	stopCh := make(chan struct{})
	go c.probeLoop(stopCh)
	var once sync.Once
	return func() { once.Do(func() { close(stopCh) }) }
}

func (c *Client) probeLoop(stop <-chan struct{}) {
	clk := c.cfg.Clock
	h := simclock.HolderOf(clk)
	if h != nil {
		h.Hold()
		defer h.Release()
	}
	sleep := func(d time.Duration) {
		switch {
		case h == nil:
			clk.Sleep(d)
		default:
			if p, ok := h.(simclock.PassiveHolder); ok {
				p.SleepHeldPassive(d)
			} else {
				h.SleepHeld(d)
			}
		}
	}
	// Ticks stay on the start + k*interval + probePhase grid even when a
	// coarse advance overshoots one: the loop sweeps once on wake, then
	// re-parks at the next grid instant still in the future.
	next := clk.Now().Add(c.cfg.ProbeInterval + probePhase)
	for {
		sleep(next.Sub(clk.Now()))
		select {
		case <-stop:
			return
		default:
		}
		c.probeSweep()
		now := clk.Now()
		for next = next.Add(c.cfg.ProbeInterval); !next.After(now); {
			next = next.Add(c.cfg.ProbeInterval)
		}
	}
}

// probeSweep probes every due replica, sequentially and in (shard,
// replica) order on purpose: probe order — and therefore breaker
// re-admission order — must not depend on goroutine scheduling.
func (c *Client) probeSweep() {
	now := c.cfg.Clock.Now()
	httpc := &http.Client{Transport: c.cfg.Transport, Timeout: c.cfg.Timeout}
	for i, reps := range c.breakers {
		for r, br := range reps {
			if br == nil || !br.probeDue(now) {
				continue
			}
			resp, err := httpc.Get(c.cfg.Shards[i][r] + "/healthz")
			healthy := err == nil && resp.StatusCode == http.StatusOK
			if resp != nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if !healthy {
				c.probes.With(outcomeError).Inc()
				continue
			}
			c.probes.With(outcomeOK).Inc()
			if br.probeClose() {
				c.readmits.Inc()
			}
		}
	}
}
