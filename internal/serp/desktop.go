package serp

import (
	"fmt"
	"html"
	"strings"
)

// The study deliberately targeted the MOBILE search page: only mobile used
// the JavaScript Geolocation API, so only mobile could be fed arbitrary GPS
// coordinates; prior work ([11], Bobble) measured the desktop page, whose
// location signal was the IP address. This file implements that desktop
// surface — a classic ten-blue-links layout with optional Maps/News
// oneboxes — so both methodologies can be exercised against one engine.
//
// RenderDesktopHTML and ParseDesktopHTML are the desktop counterparts of
// RenderHTML/ParseHTML; ParseAnyHTML dispatches on the surface marker.

// desktopMarker distinguishes the two surfaces in parsed documents.
const desktopMarker = `<body class="desktop-serp">`

// RenderDesktopHTML renders the page as a desktop results document.
func RenderDesktopHTML(p *Page) string {
	var b strings.Builder
	b.Grow(4096)
	b.WriteString("<!doctype html>\n<html><head><meta charset=\"utf-8\">")
	fmt.Fprintf(&b, "<title>%s - Search</title></head>\n", html.EscapeString(p.Query))
	b.WriteString(desktopMarker + "\n")
	fmt.Fprintf(&b, "<div id=\"searchform\"><input value=\"%s\"></div>\n",
		html.EscapeString(p.Query))
	b.WriteString("<div id=\"res\">\n")
	for i, c := range p.Cards {
		switch c.Type {
		case Maps:
			fmt.Fprintf(&b, "<div class=\"onebox maps-onebox\" data-type=\"maps\" data-index=\"%d\">\n", i)
			b.WriteString("  <div class=\"lu-map\"></div>\n  <table class=\"lu-results\">\n")
			for _, r := range c.Results {
				fmt.Fprintf(&b, "    <tr><td><a class=\"res-link\" href=\"%s\">%s</a></td></tr>\n",
					html.EscapeString(r.URL), html.EscapeString(r.Title))
			}
			b.WriteString("  </table>\n</div><!--/onebox-->\n")
		case News:
			fmt.Fprintf(&b, "<div class=\"onebox news-onebox\" data-type=\"news\" data-index=\"%d\">\n", i)
			b.WriteString("  <h3>In the news</h3>\n")
			for _, r := range c.Results {
				fmt.Fprintf(&b, "  <div class=\"news-row\"><a class=\"res-link\" href=\"%s\">%s</a></div>\n",
					html.EscapeString(r.URL), html.EscapeString(r.Title))
			}
			b.WriteString("</div><!--/onebox-->\n")
		default:
			fmt.Fprintf(&b, "<div class=\"g\" data-type=\"organic\" data-index=\"%d\">\n", i)
			for _, r := range c.Results {
				fmt.Fprintf(&b, "  <h3><a class=\"res-link\" href=\"%s\">%s</a></h3>\n",
					html.EscapeString(r.URL), html.EscapeString(r.Title))
			}
			b.WriteString("</div><!--/g-->\n")
		}
	}
	b.WriteString("</div>\n")
	fmt.Fprintf(&b, "<div id=\"foot\" data-location=\"%s\" data-datacenter=\"%s\" data-day=\"%d\">Location used: %s</div>\n",
		html.EscapeString(p.Location), html.EscapeString(p.Datacenter), p.Day,
		html.EscapeString(p.Location))
	b.WriteString("</body></html>\n")
	return b.String()
}

// IsDesktopHTML reports whether the document is a desktop results page.
func IsDesktopHTML(doc string) bool {
	return strings.Contains(doc, desktopMarker)
}

// ParseDesktopHTML parses a desktop results document back into a Page.
func ParseDesktopHTML(doc string) (*Page, error) {
	if !IsDesktopHTML(doc) {
		return nil, fmt.Errorf("serp: not a desktop results page")
	}
	p := &Page{}
	title, err := between(doc, "<title>", "</title>")
	if err != nil {
		return nil, fmt.Errorf("serp: parse desktop: %w", err)
	}
	p.Query = html.UnescapeString(strings.TrimSuffix(title, " - Search"))

	if foot, err := between(doc, "<div id=\"foot\"", ">"); err == nil {
		p.Location = html.UnescapeString(attr(foot, "data-location"))
		p.Datacenter = html.UnescapeString(attr(foot, "data-datacenter"))
		fmt.Sscanf(attr(foot, "data-day"), "%d", &p.Day)
	} else {
		return nil, fmt.Errorf("serp: parse desktop: missing footer")
	}

	rest := doc
	for {
		// The next block is whichever container starts first.
		gIdx := strings.Index(rest, `<div class="g"`)
		oIdx := strings.Index(rest, `<div class="onebox`)
		var start int
		var closeMark string
		switch {
		case gIdx < 0 && oIdx < 0:
			goto done
		case oIdx < 0 || (gIdx >= 0 && gIdx < oIdx):
			start, closeMark = gIdx, "</div><!--/g-->"
		default:
			start, closeMark = oIdx, "</div><!--/onebox-->"
		}
		end := strings.Index(rest[start:], closeMark)
		if end < 0 {
			return nil, fmt.Errorf("serp: parse desktop: unterminated block")
		}
		block := rest[start : start+end]
		rest = rest[start+end+len(closeMark):]

		head, _ := between(block, "<div", ">")
		typeLabel := attr(head, "data-type")
		ct, err := ParseCardType(typeLabel)
		if err != nil {
			return nil, fmt.Errorf("serp: parse desktop: %w", err)
		}
		card := Card{Type: ct}
		linkRest := block
		for {
			a := strings.Index(linkRest, `<a class="res-link"`)
			if a < 0 {
				break
			}
			tag := linkRest[a:]
			closeTag := strings.Index(tag, "</a>")
			if closeTag < 0 {
				return nil, fmt.Errorf("serp: parse desktop: unterminated anchor")
			}
			anchor := tag[:closeTag]
			href := attr(anchor, "href")
			gt := strings.Index(anchor, ">")
			if gt < 0 || href == "" {
				return nil, fmt.Errorf("serp: parse desktop: malformed anchor %q", anchor)
			}
			card.Results = append(card.Results, Result{
				URL:   html.UnescapeString(href),
				Title: html.UnescapeString(strings.TrimSpace(anchor[gt+1:])),
			})
			linkRest = tag[closeTag:]
		}
		if len(card.Results) == 0 {
			return nil, fmt.Errorf("serp: parse desktop: block with no links")
		}
		p.Cards = append(p.Cards, card)
	}
done:
	if len(p.Cards) == 0 {
		return nil, fmt.Errorf("serp: parse desktop: no results found")
	}
	return p, nil
}

// ParseAnyHTML parses either surface, dispatching on the desktop marker.
func ParseAnyHTML(doc string) (*Page, error) {
	if IsDesktopHTML(doc) {
		return ParseDesktopHTML(doc)
	}
	return ParseHTML(doc)
}
