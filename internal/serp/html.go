package serp

import (
	"fmt"
	"html"
	"strings"
)

// This file implements the mobile HTML wire format. RenderHTML is what the
// SERP server sends; ParseHTML is what the crawler's browser applies to the
// response body — the counterpart of the study's PhantomJS script scraping
// Google's mobile markup. The markup is deliberately "real-world shaped"
// (nested divs, classes, a location footer) so the parser has to do actual
// extraction work rather than reading a convenient JSON blob.

// RenderHTML renders the page as a mobile results document.
func RenderHTML(p *Page) string {
	var b strings.Builder
	b.Grow(4096)
	b.WriteString("<!doctype html>\n<html><head><meta charset=\"utf-8\">")
	fmt.Fprintf(&b, "<title>%s - Search</title>", html.EscapeString(p.Query))
	b.WriteString("<meta name=\"viewport\" content=\"width=device-width\"></head>\n<body>\n")
	fmt.Fprintf(&b, "<header class=\"searchbox\"><input value=\"%s\"></header>\n",
		html.EscapeString(p.Query))
	b.WriteString("<main id=\"results\">\n")
	for i, c := range p.Cards {
		fmt.Fprintf(&b, "<div class=\"card\" data-type=\"%s\" data-index=\"%d\">\n", c.Type, i)
		switch c.Type {
		case Maps:
			b.WriteString("  <div class=\"map-frame\"><span class=\"map-pin\">&#9679;</span></div>\n")
			b.WriteString("  <ul class=\"map-list\">\n")
			for _, r := range c.Results {
				fmt.Fprintf(&b, "    <li><a class=\"serp-link\" href=\"%s\">%s</a><span class=\"biz-meta\">&#9733;</span></li>\n",
					html.EscapeString(r.URL), html.EscapeString(r.Title))
			}
			b.WriteString("  </ul>\n")
		case News:
			b.WriteString("  <h3 class=\"news-header\">In the News</h3>\n")
			for _, r := range c.Results {
				fmt.Fprintf(&b, "  <div class=\"news-item\"><a class=\"serp-link\" href=\"%s\">%s</a></div>\n",
					html.EscapeString(r.URL), html.EscapeString(r.Title))
			}
		default:
			for j, r := range c.Results {
				cls := "serp-link"
				if j > 0 {
					cls = "serp-link sublink"
				}
				fmt.Fprintf(&b, "  <a class=\"%s\" href=\"%s\">%s</a>\n",
					cls, html.EscapeString(r.URL), html.EscapeString(r.Title))
			}
		}
		b.WriteString("</div><!--/card-->\n")
	}
	b.WriteString("</main>\n")
	fmt.Fprintf(&b, "<footer id=\"geo-footer\" data-location=\"%s\" data-datacenter=\"%s\" data-day=\"%d\">Results for <b>%s</b></footer>\n",
		html.EscapeString(p.Location), html.EscapeString(p.Datacenter), p.Day,
		html.EscapeString(p.Location))
	b.WriteString("</body></html>\n")
	return b.String()
}

// ParseHTML parses a rendered results document back into a Page. It is a
// scanning parser purpose-built for this markup (the same engineering
// stance as the study's parser, which was built for Google's markup of the
// day) and fails loudly on documents that do not look like result pages.
func ParseHTML(doc string) (*Page, error) {
	p := &Page{}
	// Query from <title>.
	title, err := between(doc, "<title>", "</title>")
	if err != nil {
		return nil, fmt.Errorf("serp: parse: %w", err)
	}
	p.Query = html.UnescapeString(strings.TrimSuffix(title, " - Search"))

	// Footer metadata.
	if footer, err := between(doc, "<footer id=\"geo-footer\"", ">"); err == nil {
		p.Location = html.UnescapeString(attr(footer, "data-location"))
		p.Datacenter = html.UnescapeString(attr(footer, "data-datacenter"))
		fmt.Sscanf(attr(footer, "data-day"), "%d", &p.Day)
	} else {
		return nil, fmt.Errorf("serp: parse: missing geo footer")
	}

	// Cards.
	rest := doc
	for {
		start := strings.Index(rest, "<div class=\"card\"")
		if start < 0 {
			break
		}
		end := strings.Index(rest[start:], "</div><!--/card-->")
		if end < 0 {
			return nil, fmt.Errorf("serp: parse: unterminated card")
		}
		block := rest[start : start+end]
		rest = rest[start+end+len("</div><!--/card-->"):]

		head, _ := between(block, "<div class=\"card\"", ">")
		typeLabel := attr(head, "data-type")
		ct, err := ParseCardType(typeLabel)
		if err != nil {
			return nil, fmt.Errorf("serp: parse: %w", err)
		}
		card := Card{Type: ct}
		linkRest := block
		for {
			a := strings.Index(linkRest, "<a class=\"serp-link")
			if a < 0 {
				break
			}
			tag := linkRest[a:]
			closeTag := strings.Index(tag, "</a>")
			if closeTag < 0 {
				return nil, fmt.Errorf("serp: parse: unterminated anchor")
			}
			anchor := tag[:closeTag]
			href := attr(anchor, "href")
			gt := strings.Index(anchor, ">")
			if gt < 0 || href == "" {
				return nil, fmt.Errorf("serp: parse: malformed anchor %q", anchor)
			}
			card.Results = append(card.Results, Result{
				URL:   html.UnescapeString(href),
				Title: html.UnescapeString(strings.TrimSpace(anchor[gt+1:])),
			})
			linkRest = tag[closeTag:]
		}
		if len(card.Results) == 0 {
			return nil, fmt.Errorf("serp: parse: card with no links")
		}
		p.Cards = append(p.Cards, card)
	}
	if len(p.Cards) == 0 {
		return nil, fmt.Errorf("serp: parse: no cards found")
	}
	return p, nil
}

// between returns the substring of s strictly between the first occurrence
// of open and the next occurrence of close.
func between(s, open, close string) (string, error) {
	i := strings.Index(s, open)
	if i < 0 {
		return "", fmt.Errorf("marker %q not found", open)
	}
	s = s[i+len(open):]
	j := strings.Index(s, close)
	if j < 0 {
		return "", fmt.Errorf("closing %q not found", close)
	}
	return s[:j], nil
}

// attr extracts a double-quoted attribute value from a tag fragment.
func attr(tag, name string) string {
	marker := name + "=\""
	i := strings.Index(tag, marker)
	if i < 0 {
		return ""
	}
	rest := tag[i+len(marker):]
	j := strings.Index(rest, "\"")
	if j < 0 {
		return ""
	}
	return rest[:j]
}
