package serp

import (
	"strings"
	"testing"
)

func TestDesktopRoundTrip(t *testing.T) {
	p := samplePage()
	doc := RenderDesktopHTML(p)
	if !IsDesktopHTML(doc) {
		t.Fatal("desktop marker missing")
	}
	got, err := ParseDesktopHTML(doc)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, doc)
	}
	assertPagesEqual(t, p, got)
}

func TestDesktopVsMobileMarkupDiffers(t *testing.T) {
	p := samplePage()
	mobile := RenderHTML(p)
	desktop := RenderDesktopHTML(p)
	if IsDesktopHTML(mobile) {
		t.Fatal("mobile page carries desktop marker")
	}
	if !strings.Contains(desktop, "onebox") || strings.Contains(mobile, "onebox") {
		t.Fatal("surfaces not distinct")
	}
	// Both surfaces carry the same links in the same order.
	mp, err := ParseAnyHTML(mobile)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := ParseAnyHTML(desktop)
	if err != nil {
		t.Fatal(err)
	}
	ml, dl := mp.Links(), dp.Links()
	if len(ml) != len(dl) {
		t.Fatalf("link counts differ: %d vs %d", len(ml), len(dl))
	}
	for i := range ml {
		if ml[i] != dl[i] {
			t.Fatalf("link %d differs: %s vs %s", i, ml[i], dl[i])
		}
	}
}

func TestParseAnyHTMLDispatch(t *testing.T) {
	p := samplePage()
	for _, doc := range []string{RenderHTML(p), RenderDesktopHTML(p)} {
		got, err := ParseAnyHTML(doc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Query != p.Query {
			t.Fatalf("query = %q", got.Query)
		}
	}
}

func TestParseDesktopErrors(t *testing.T) {
	cases := map[string]string{
		"not desktop": "<html><body>x</body></html>",
		"no title":    desktopMarker,
		"no footer":   "<title>x - Search</title>" + desktopMarker,
		"bad type": "<title>x - Search</title>" + desktopMarker +
			`<div id="foot" data-location="" data-datacenter="" data-day="0">f</div>` +
			`<div class="g" data-type="weird"><a class="res-link" href="u">t</a></div><!--/g-->`,
		"unterminated": "<title>x - Search</title>" + desktopMarker +
			`<div id="foot" data-location="" data-datacenter="" data-day="0">f</div>` +
			`<div class="g" data-type="organic"><a class="res-link" href="u">t</a>`,
		"no results": "<title>x - Search</title>" + desktopMarker +
			`<div id="foot" data-location="" data-datacenter="" data-day="0">f</div>`,
	}
	for name, doc := range cases {
		if _, err := ParseDesktopHTML(doc); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestDesktopEscaping(t *testing.T) {
	p := &Page{
		Query:    `q <script>`,
		Location: "1.000000,2.000000",
		Cards: []Card{{Type: Organic, Results: []Result{{
			URL: "https://x.example/?a=1&b=2", Title: `T & "T"`,
		}}}},
	}
	doc := RenderDesktopHTML(p)
	if strings.Contains(doc, "<script>") {
		t.Fatal("unescaped markup")
	}
	got, err := ParseDesktopHTML(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Query != p.Query || got.Cards[0].Results[0] != p.Cards[0].Results[0] {
		t.Fatalf("round-trip = %+v", got)
	}
}
