// Package serp models pages of mobile search results the way the paper's
// crawler saw them: a vertical stack of "cards", where a card is either a
// single organic result, a Maps meta-result listing several nearby places,
// or an "In the News" meta-result listing several articles.
//
// The package owns both directions of the wire format: the server renders a
// Page to mobile HTML, and the crawler parses that HTML back into a Page
// (the equivalent of the study's PhantomJS parsing of Google's markup). It
// also implements the paper's link-extraction rule (§2.2): take the first
// link of every card, except Maps and News cards, from which every link is
// taken — yielding the 12–22 links per page the analysis compares.
package serp

import (
	"encoding/json"
	"fmt"
	"strings"
)

// CardType distinguishes the three card families the paper analyzes.
type CardType int

const (
	// Organic is a typical single-result card.
	Organic CardType = iota
	// Maps is a map meta-card listing nearby places.
	Maps
	// News is an "In the News" meta-card listing articles.
	News
)

// CardTypes lists all card types.
var CardTypes = []CardType{Organic, Maps, News}

// String returns the wire label for the card type.
func (t CardType) String() string {
	switch t {
	case Organic:
		return "organic"
	case Maps:
		return "maps"
	case News:
		return "news"
	default:
		return fmt.Sprintf("cardtype%d", int(t))
	}
}

// ParseCardType converts a wire label back to a CardType.
func ParseCardType(s string) (CardType, error) {
	switch s {
	case "organic":
		return Organic, nil
	case "maps":
		return Maps, nil
	case "news":
		return News, nil
	}
	return 0, fmt.Errorf("serp: unknown card type %q", s)
}

// MarshalJSON encodes the card type as its wire label.
func (t CardType) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON decodes a wire label.
func (t *CardType) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	ct, err := ParseCardType(s)
	if err != nil {
		return err
	}
	*t = ct
	return nil
}

// Result is one link on a card.
type Result struct {
	URL   string `json:"url"`
	Title string `json:"title"`
}

// Card is one card on the page.
type Card struct {
	Type    CardType `json:"type"`
	Results []Result `json:"results"`
}

// Page is one page of search results, as served (or as parsed back).
type Page struct {
	// Query is the search term.
	Query string `json:"query"`
	// Location is the location the engine personalized for, in
	// "lat,lon" form — Google Search reports the user's precise location
	// at the bottom of the page, which the paper used to verify its GPS
	// spoofing worked.
	Location string `json:"location"`
	// Datacenter identifies the replica that served the page.
	Datacenter string `json:"datacenter,omitempty"`
	// TraceID is the request's telemetry trace ID, propagated from the
	// crawler via the X-Trace-Id header and kept with the stored record
	// so a divergent result can be joined back to the exact request,
	// machine, and serving decision that produced it. Empty for
	// untraced requests.
	TraceID string `json:"trace_id,omitempty"`
	// Day is the simulation day the page was served (0-based).
	Day int `json:"day"`
	// Cards is the card stack, top to bottom.
	Cards []Card `json:"cards"`
}

// Links applies the paper's extraction rule and returns the page's link
// list in rank order: the first link of each Organic card, every link of
// each Maps or News card.
func (p *Page) Links() []string {
	var out []string
	for _, c := range p.Cards {
		if len(c.Results) == 0 {
			continue
		}
		switch c.Type {
		case Maps, News:
			for _, r := range c.Results {
				out = append(out, r.URL)
			}
		default:
			out = append(out, c.Results[0].URL)
		}
	}
	return out
}

// LinksOfType is Links restricted to cards of one type; the analysis uses
// it to attribute noise and personalization to Maps vs News vs "other"
// results (Figures 4 and 7).
func (p *Page) LinksOfType(t CardType) []string {
	var out []string
	for _, c := range p.Cards {
		if c.Type != t || len(c.Results) == 0 {
			continue
		}
		switch c.Type {
		case Maps, News:
			for _, r := range c.Results {
				out = append(out, r.URL)
			}
		default:
			out = append(out, c.Results[0].URL)
		}
	}
	return out
}

// LinkCount returns the number of links the extraction rule yields.
func (p *Page) LinkCount() int { return len(p.Links()) }

// CardCount returns the number of cards of type t.
func (p *Page) CardCount(t CardType) int {
	n := 0
	for _, c := range p.Cards {
		if c.Type == t {
			n++
		}
	}
	return n
}

// Validate checks structural sanity: non-empty query, every card non-empty,
// meta-cards only of known types.
func (p *Page) Validate() error {
	if strings.TrimSpace(p.Query) == "" {
		return fmt.Errorf("serp: page has empty query")
	}
	for i, c := range p.Cards {
		if len(c.Results) == 0 {
			return fmt.Errorf("serp: card %d (%s) has no results", i, c.Type)
		}
		for j, r := range c.Results {
			if r.URL == "" {
				return fmt.Errorf("serp: card %d result %d has empty URL", i, j)
			}
		}
		if c.Type == Organic && len(c.Results) != 1 {
			return fmt.Errorf("serp: organic card %d has %d results, want 1", i, len(c.Results))
		}
	}
	return nil
}

// MarshalPage encodes a page as JSON (the storage format).
func MarshalPage(p *Page) ([]byte, error) { return json.Marshal(p) }

// UnmarshalPage decodes a JSON page.
func UnmarshalPage(b []byte) (*Page, error) {
	var p Page
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("serp: decode page: %w", err)
	}
	return &p, nil
}
