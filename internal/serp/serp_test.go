package serp

import (
	"strings"
	"testing"
	"testing/quick"
)

func samplePage() *Page {
	return &Page{
		Query:      "coffee",
		Location:   "41.499300,-81.694400",
		Datacenter: "dc-1",
		Day:        2,
		Cards: []Card{
			{Type: Organic, Results: []Result{{URL: "https://encyclopedia.example/wiki/coffee", Title: "Coffee - Encyclopedia"}}},
			{Type: Maps, Results: []Result{
				{URL: "https://riverside-cafe.coffee.example/", Title: "Riverside Cafe"},
				{URL: "https://oakwood-roasters.coffee.example/", Title: "Oakwood Roasters"},
				{URL: "https://lakeview-espresso.coffee.example/", Title: "Lakeview Espresso Bar"},
			}},
			{Type: Organic, Results: []Result{{URL: "https://yellowpages.example/c/coffee", Title: "Find a Coffee Near You"}}},
			{Type: News, Results: []Result{
				{URL: "https://worldwire.example/coffee/day2-0", Title: "Coffee: developments"},
				{URL: "https://theledger.example/coffee/day2-1", Title: "Coffee prices rise"},
			}},
			{Type: Organic, Results: []Result{{URL: "https://reviewhub.example/c/coffee", Title: "Best Coffee Options"}}},
		},
	}
}

func TestLinksExtractionRule(t *testing.T) {
	p := samplePage()
	links := p.Links()
	// 1 + 3 (maps: all) + 1 + 2 (news: all) + 1 = 8
	if len(links) != 8 {
		t.Fatalf("extracted %d links, want 8: %v", len(links), links)
	}
	if links[0] != "https://encyclopedia.example/wiki/coffee" {
		t.Fatalf("first link = %s", links[0])
	}
	if links[1] != "https://riverside-cafe.coffee.example/" {
		t.Fatalf("maps links not in order: %v", links)
	}
}

func TestLinksOfType(t *testing.T) {
	p := samplePage()
	if got := p.LinksOfType(Maps); len(got) != 3 {
		t.Fatalf("maps links = %d, want 3", len(got))
	}
	if got := p.LinksOfType(News); len(got) != 2 {
		t.Fatalf("news links = %d, want 2", len(got))
	}
	if got := p.LinksOfType(Organic); len(got) != 3 {
		t.Fatalf("organic links = %d, want 3", len(got))
	}
	if p.LinkCount() != 8 {
		t.Fatalf("LinkCount = %d", p.LinkCount())
	}
}

func TestCardCount(t *testing.T) {
	p := samplePage()
	if p.CardCount(Organic) != 3 || p.CardCount(Maps) != 1 || p.CardCount(News) != 1 {
		t.Fatalf("card counts = %d/%d/%d", p.CardCount(Organic), p.CardCount(Maps), p.CardCount(News))
	}
}

func TestValidate(t *testing.T) {
	if err := samplePage().Validate(); err != nil {
		t.Fatalf("valid page rejected: %v", err)
	}
	bad := &Page{Query: " "}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty query accepted")
	}
	bad = &Page{Query: "x", Cards: []Card{{Type: Organic}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty card accepted")
	}
	bad = &Page{Query: "x", Cards: []Card{{Type: Organic, Results: []Result{{URL: ""}}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty URL accepted")
	}
	bad = &Page{Query: "x", Cards: []Card{{Type: Organic, Results: []Result{{URL: "a"}, {URL: "b"}}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("multi-result organic card accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := samplePage()
	b, err := MarshalPage(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPage(b)
	if err != nil {
		t.Fatal(err)
	}
	assertPagesEqual(t, p, got)
	if !strings.Contains(string(b), `"type":"maps"`) {
		t.Fatalf("JSON does not use wire labels: %s", b)
	}
}

func TestUnmarshalPageErrors(t *testing.T) {
	if _, err := UnmarshalPage([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := UnmarshalPage([]byte(`{"cards":[{"type":"hologram"}]}`)); err == nil {
		t.Fatal("unknown card type accepted")
	}
}

func TestHTMLRoundTrip(t *testing.T) {
	p := samplePage()
	doc := RenderHTML(p)
	got, err := ParseHTML(doc)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, doc)
	}
	assertPagesEqual(t, p, got)
}

func assertPagesEqual(t *testing.T, want, got *Page) {
	t.Helper()
	if got.Query != want.Query || got.Location != want.Location ||
		got.Datacenter != want.Datacenter || got.Day != want.Day {
		t.Fatalf("metadata mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	if len(got.Cards) != len(want.Cards) {
		t.Fatalf("card count %d, want %d", len(got.Cards), len(want.Cards))
	}
	for i := range want.Cards {
		if got.Cards[i].Type != want.Cards[i].Type {
			t.Fatalf("card %d type %v, want %v", i, got.Cards[i].Type, want.Cards[i].Type)
		}
		if len(got.Cards[i].Results) != len(want.Cards[i].Results) {
			t.Fatalf("card %d results %d, want %d", i, len(got.Cards[i].Results), len(want.Cards[i].Results))
		}
		for j := range want.Cards[i].Results {
			if got.Cards[i].Results[j] != want.Cards[i].Results[j] {
				t.Fatalf("card %d result %d = %+v, want %+v",
					i, j, got.Cards[i].Results[j], want.Cards[i].Results[j])
			}
		}
	}
}

func TestHTMLEscaping(t *testing.T) {
	p := &Page{
		Query:    `coffee <script>"&'`,
		Location: "1.000000,2.000000",
		Cards: []Card{
			{Type: Organic, Results: []Result{{
				URL:   "https://x.example/?a=1&b=2",
				Title: `Tom & Jerry's <Best> "Cafe"`,
			}}},
		},
	}
	doc := RenderHTML(p)
	if strings.Contains(doc, "<script>") {
		t.Fatal("unescaped script tag in output")
	}
	got, err := ParseHTML(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Query != p.Query {
		t.Fatalf("query round-trip = %q, want %q", got.Query, p.Query)
	}
	if got.Cards[0].Results[0] != p.Cards[0].Results[0] {
		t.Fatalf("result round-trip = %+v", got.Cards[0].Results[0])
	}
}

func TestParseHTMLErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"no title":           "<html><body></body></html>",
		"no footer":          "<title>x - Search</title><div class=\"card\" data-type=\"organic\"><a class=\"serp-link\" href=\"u\">t</a></div><!--/card-->",
		"no cards":           "<title>x - Search</title><footer id=\"geo-footer\" data-location=\"\" data-datacenter=\"\" data-day=\"0\">f</footer>",
		"bad card type":      "<title>x - Search</title><footer id=\"geo-footer\" data-location=\"\" data-datacenter=\"\" data-day=\"0\">f</footer><div class=\"card\" data-type=\"mystery\"><a class=\"serp-link\" href=\"u\">t</a></div><!--/card-->",
		"unterminated":       "<title>x - Search</title><footer id=\"geo-footer\" data-location=\"\" data-datacenter=\"\" data-day=\"0\">f</footer><div class=\"card\" data-type=\"organic\"><a class=\"serp-link\" href=\"u\">t</a>",
		"card without links": "<title>x - Search</title><footer id=\"geo-footer\" data-location=\"\" data-datacenter=\"\" data-day=\"0\">f</footer><div class=\"card\" data-type=\"organic\"></div><!--/card-->",
	}
	for name, doc := range cases {
		if _, err := ParseHTML(doc); err == nil {
			t.Fatalf("%s: parse succeeded, want error", name)
		}
	}
}

func TestCardTypeLabels(t *testing.T) {
	for _, ct := range CardTypes {
		back, err := ParseCardType(ct.String())
		if err != nil || back != ct {
			t.Fatalf("round-trip %v failed", ct)
		}
	}
	if _, err := ParseCardType("bogus"); err == nil {
		t.Fatal("bogus type accepted")
	}
	if CardType(9).String() == "" {
		t.Fatal("unknown type empty label")
	}
}

func TestLinksEmptyAndDegenerate(t *testing.T) {
	p := &Page{Query: "x"}
	if got := p.Links(); len(got) != 0 {
		t.Fatalf("empty page links = %v", got)
	}
	p.Cards = []Card{{Type: Maps}} // no results
	if got := p.Links(); len(got) != 0 {
		t.Fatalf("empty maps card links = %v", got)
	}
}

// Property: HTML round-trip preserves any structurally valid page built
// from URL-safe strings.
func TestHTMLRoundTripProperty(t *testing.T) {
	f := func(nCards uint8, seeds []uint16) bool {
		p := &Page{Query: "q", Location: "1.000000,2.000000", Datacenter: "dc-0"}
		n := int(nCards%6) + 1
		for i := 0; i < n; i++ {
			seed := 0
			if len(seeds) > 0 {
				seed = int(seeds[i%len(seeds)])
			}
			ct := CardTypes[(i+seed)%len(CardTypes)]
			nr := 1
			if ct != Organic {
				nr = seed%4 + 1
			}
			var card Card
			card.Type = ct
			for j := 0; j < nr; j++ {
				card.Results = append(card.Results, Result{
					URL:   strings.Repeat("u", j+1) + ".example/" + ct.String(),
					Title: "Title " + ct.String(),
				})
			}
			p.Cards = append(p.Cards, card)
		}
		got, err := ParseHTML(RenderHTML(p))
		if err != nil {
			return false
		}
		if len(got.Cards) != len(p.Cards) {
			return false
		}
		for i := range p.Cards {
			if got.Cards[i].Type != p.Cards[i].Type ||
				len(got.Cards[i].Results) != len(p.Cards[i].Results) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
