package serpserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/httpheader"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// admissionRig wraps next in admission control per cfg, backed by a real
// handler whose registry the assertions read.
func admissionRig(t *testing.T, cfg AdmissionConfig, next http.Handler) (*Handler, *httptest.Server) {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	h := NewHandler(engine.New(engine.DefaultConfig(), clk))
	srv := httptest.NewServer(WithAdmission(cfg, h, next))
	t.Cleanup(srv.Close)
	return h, srv
}

// waitGauge polls until the named gauge reaches want; queued requests park
// asynchronously, so tests must observe the gauge rather than sleep.
func waitGauge(t *testing.T, reg *telemetry.Registry, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Gauge(name, "").Value() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s never reached %v", name, want)
}

// httpGet fetches url over the wire and returns the status code, body,
// and headers (the package's get helper drives handlers in-process).
func httpGet(t *testing.T, client *http.Client, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body), resp.Header
}

// getCode is httpGet for concurrent callers (goroutines must not t.Fatal):
// transport errors surface as -1.
func getCode(client *http.Client, url string) int {
	resp, err := client.Get(url)
	if err != nil {
		return -1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- r.URL.Query().Get("q")
		<-release
		w.WriteHeader(http.StatusOK)
	})
	h, srv := admissionRig(t, AdmissionConfig{MaxInflight: 1, QueueDepth: 1, ServiceTime: 2 * time.Second}, next)
	client := srv.Client()

	codes := make(chan int, 2)
	go func() { codes <- getCode(client, srv.URL+"/search?q=a") }()
	<-entered // a holds the only slot
	go func() { codes <- getCode(client, srv.URL+"/search?q=b") }()
	waitGauge(t, h.Telemetry(), "serpd_admission_queued", 1)

	// Slot busy, queue full: the third request is shed with an honest hint.
	code, body, hdr := httpGet(t, client, srv.URL+"/search?q=c")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", code)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", hdr.Get("Retry-After"))
	}
	if !strings.Contains(body, "queue_full") {
		t.Fatalf("shed body does not name the reason: %q", body)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if c := <-codes; c != http.StatusOK {
			t.Fatalf("blocked request finished %d, want 200", c)
		}
	}
	// The freed slot was handed to the queued request, not re-acquired.
	if q := <-entered; q != "b" {
		t.Fatalf("second admitted request was %q, want the queued b", q)
	}
	reg := h.Telemetry()
	if got := reg.Counter("serpd_admission_admitted_total", "").Value(); got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
	sheds := reg.CounterVec("serpd_admission_shed_total", "", "reason").Values()
	if sheds["queue_full"] != 1 || len(sheds) != 1 {
		t.Fatalf("sheds = %v, want exactly one queue_full", sheds)
	}
}

func TestAdmissionHandsSlotsFIFO(t *testing.T) {
	var order []string // appended only from inside the single slot
	entered := make(chan string, 8)
	release := make(chan struct{})
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		order = append(order, q)
		entered <- q
		<-release
		w.WriteHeader(http.StatusOK)
	})
	h, srv := admissionRig(t, AdmissionConfig{MaxInflight: 1, QueueDepth: 2}, next)
	client := srv.Client()

	codes := make(chan int, 3)
	go func() { codes <- getCode(client, srv.URL+"/search?q=a") }()
	<-entered
	go func() { codes <- getCode(client, srv.URL+"/search?q=b") }()
	waitGauge(t, h.Telemetry(), "serpd_admission_queued", 1)
	go func() { codes <- getCode(client, srv.URL+"/search?q=c") }()
	waitGauge(t, h.Telemetry(), "serpd_admission_queued", 2)

	// Each departure hands the slot to the oldest waiter, so the arrival
	// order is the service order.
	close(release)
	for i := 0; i < 3; i++ {
		if c := <-codes; c != http.StatusOK {
			t.Fatalf("request finished %d, want 200", c)
		}
	}
	<-entered
	<-entered
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("service order = %q, want abc (FIFO)", got)
	}
}

func TestAdmissionShedsDeadOnArrival(t *testing.T) {
	var reached atomic.Int64
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		reached.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	h, srv := admissionRig(t, AdmissionConfig{MaxInflight: 4, QueueDepth: 4}, next)

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/search?q=x", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(httpheader.DeadlineMs, strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10))
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 for a dead-on-arrival request", resp.StatusCode)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("shed body does not name the reason: %q", body)
	}
	if reached.Load() != 0 {
		t.Fatal("dead-on-arrival request still consumed a slot")
	}
	// The same request with a live deadline sails through an idle gate.
	req.Header.Set(httpheader.DeadlineMs, strconv.FormatInt(time.Now().Add(time.Hour).UnixMilli(), 10))
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || reached.Load() != 1 {
		t.Fatalf("live-deadline request: status=%d reached=%d", resp.StatusCode, reached.Load())
	}
	sheds := h.Telemetry().CounterVec("serpd_admission_shed_total", "", "reason").Values()
	if sheds["deadline"] != 1 {
		t.Fatalf("sheds = %v, want one deadline shed", sheds)
	}
}

func TestAdmissionRefusesToQueueDoomedRequests(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	h, srv := admissionRig(t, AdmissionConfig{MaxInflight: 1, QueueDepth: 4, ServiceTime: 10 * time.Second}, next)
	client := srv.Client()

	done := make(chan int, 1)
	go func() { done <- getCode(client, srv.URL+"/search?q=a") }()
	<-entered

	// The queue has room, but a 1-second deadline cannot survive a 10-second
	// backlog estimate: shed immediately instead of queueing to time out.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/search?q=b", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(httpheader.DeadlineMs, strconv.FormatInt(time.Now().Add(time.Second).UnixMilli(), 10))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 for a doomed request", resp.StatusCode)
	}
	sheds := h.Telemetry().CounterVec("serpd_admission_shed_total", "", "reason").Values()
	if sheds["deadline"] != 1 {
		t.Fatalf("sheds = %v, want one deadline shed", sheds)
	}
	close(release)
	if c := <-done; c != http.StatusOK {
		t.Fatalf("admitted request finished %d", c)
	}
}

func TestAdmissionGatesOnlySearch(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/search" {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	_, srv := admissionRig(t, AdmissionConfig{MaxInflight: 1, QueueDepth: 0}, next)
	client := srv.Client()

	done := make(chan int, 1)
	go func() { done <- getCode(client, srv.URL+"/search?q=a") }()
	<-entered

	// Saturated for /search — but observability paths bypass the gate, so
	// the server can still be diagnosed precisely while it is drowning.
	if code, _, _ := httpGet(t, client, srv.URL+"/statsz"); code != http.StatusNoContent {
		t.Fatalf("/statsz through a saturated gate = %d, want 204", code)
	}
	if code, _, _ := httpGet(t, client, srv.URL+"/search?q=b"); code != http.StatusServiceUnavailable {
		t.Fatalf("second /search = %d, want 503 with no queue", code)
	}
	close(release)
	if c := <-done; c != http.StatusOK {
		t.Fatalf("admitted request finished %d", c)
	}
}

func TestParseDeadline(t *testing.T) {
	mk := func(v string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, "/search", nil)
		if v != "" {
			r.Header.Set(httpheader.DeadlineMs, v)
		}
		return r
	}
	for _, v := range []string{"", "garbage", "-5", "0", "1.5e3"} {
		if got := parseDeadline(mk(v)); !got.IsZero() {
			t.Fatalf("parseDeadline(%q) = %v, want zero", v, got)
		}
	}
	want := time.UnixMilli(1433116800000)
	if got := parseDeadline(mk("1433116800000")); !got.Equal(want) {
		t.Fatalf("parseDeadline = %v, want %v", got, want)
	}
}

// nopHandler is a comparable http.Handler, so the disabled-gate test can
// assert WithAdmission returned next itself rather than a wrapper.
type nopHandler struct{}

func (nopHandler) ServeHTTP(http.ResponseWriter, *http.Request) {}

func TestWithAdmissionDisabledReturnsNext(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	h := NewHandler(engine.New(engine.DefaultConfig(), clk))
	next := nopHandler{}
	if got := WithAdmission(AdmissionConfig{}, h, next); got != http.Handler(next) {
		t.Fatal("disabled admission config still wrapped the handler")
	}
}
