package serpserver

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"geoserp/internal/detrand"
	"geoserp/internal/httpheader"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// ChaosConfig describes server-side fault injection: serpd can be asked to
// misbehave deliberately (the -chaos-* flags) so crawler deployments can
// rehearse their fail-soft behaviour against a real wire. Faults only hit
// /search — health, stats, and metrics endpoints stay reliable so the
// injected failures remain observable.
//
// Draws are keyed on the request's trace ID plus a per-trace attempt
// counter (global sequence number for untraced traffic), making a chaos
// run with a fixed seed exactly reproducible.
type ChaosConfig struct {
	// Seed keys every fault draw.
	Seed uint64
	// AbortRate is the probability the connection is severed before any
	// response bytes are written — the client sees a transport error.
	AbortRate float64
	// ServerErrorRate is the probability the request is answered 500.
	ServerErrorRate float64
	// TruncateRate is the probability the response body is cut off
	// half-way, with a Content-Length promising the full page.
	TruncateRate float64
	// Latency, when positive, delays every affected request (slept on
	// Clock, so virtual-time rigs absorb it).
	Latency time.Duration
	// Clock times the injected latency; defaults to the wall clock.
	Clock simclock.Clock
}

// Enabled reports whether any fault is configured.
func (c ChaosConfig) Enabled() bool {
	return c.AbortRate > 0 || c.ServerErrorRate > 0 || c.TruncateRate > 0 || c.Latency > 0
}

// chaosMiddleware injects faults in front of next.
type chaosMiddleware struct {
	cfg   ChaosConfig
	next  http.Handler
	ctr   *telemetry.CounterVec // serpd_chaos_injected_total{kind}
	spans *telemetry.SpanRecorder

	mu       sync.Mutex
	attempts map[string]int
	seq      atomic.Uint64
}

// chaosNoteKey carries the injected-fault kind to the handler's request
// span when the handler still runs (the truncate fault renders the full
// page before the cut, so the fault is only visible as an attribute).
type chaosNoteKey struct{}

// chaosNote returns the fault kind the chaos middleware noted on the
// context ("" when none).
func chaosNote(ctx context.Context) string {
	kind, _ := ctx.Value(chaosNoteKey{}).(string)
	return kind
}

// WithChaos wraps a handler with fault injection per cfg. The injected
// fault counts are exposed through reg (the handler's own registry) as
// serpd_chaos_injected_total{kind}; when the handler records spans, faults
// that short-circuit it (abort, 5xx) are recorded as "serpd.chaos" spans
// so the timeline still explains the client-visible failure.
func WithChaos(cfg ChaosConfig, h *Handler) http.Handler {
	return NewChaos(cfg, h.Telemetry(), h.spans, h)
}

// NewChaos is WithChaos for servers that are not a full SERP Handler — a
// cluster shard node injects faults on its /shard/search endpoint with the
// same draw keying, registering the fault counters and chaos spans on its
// own registry and recorder. spans may be nil (no chaos spans).
func NewChaos(cfg ChaosConfig, reg *telemetry.Registry, spans *telemetry.SpanRecorder, next http.Handler) http.Handler {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Wall()
	}
	return &chaosMiddleware{
		cfg:  cfg,
		next: next,
		ctr: reg.CounterVec("serpd_chaos_injected_total",
			"Faults deliberately injected by the chaos middleware, by kind.", "kind"),
		spans:    spans,
		attempts: make(map[string]int),
	}
}

// maxTrackedTraces bounds the legacy per-trace attempt map: once it holds
// this many traces it is reset wholesale. The bound only matters for
// traced clients that omit X-Trace-Attempt; the repo's browser always
// sends it, so campaign-length runs never grow the map at all.
const maxTrackedTraces = 4096

// attempt identifies one /search arrival: its trace ID ("" untraced), its
// 1-based per-trace attempt number (a global sequence number untraced),
// and the key that feeds the fault draws. The attempt number is read from
// the X-Trace-Attempt header the browser sends with every try — a
// growth-free, arrival-order-independent key; header-less traced requests
// fall back to a bounded counting map.
func (c *chaosMiddleware) attempt(r *http.Request) (trace string, n int, key string) {
	trace = r.Header.Get(httpheader.TraceID)
	if trace == "" {
		n = int(c.seq.Add(1))
		return "", n, fmt.Sprintf("seq-%d", n)
	}
	if v := r.Header.Get(httpheader.TraceAttempt); v != "" {
		if an, err := strconv.Atoi(v); err == nil && an > 0 {
			return trace, an, fmt.Sprintf("%s-%d", trace, an)
		}
	}
	c.mu.Lock()
	if len(c.attempts) >= maxTrackedTraces {
		// Resetting restarts attempt numbering for in-flight traces, which
		// at worst replays a fault — acceptable for the legacy path, and
		// far better than one map entry per trace for a whole campaign.
		clear(c.attempts)
	}
	c.attempts[trace]++
	n = c.attempts[trace]
	c.mu.Unlock()
	return trace, n, fmt.Sprintf("%s-%d", trace, n)
}

// chaosSpan records an injected fault that short-circuits the handler.
func (c *chaosMiddleware) chaosSpan(trace string, n int, kind string) {
	if c.spans == nil {
		return
	}
	s := c.spans.StartRootSeq(trace, "serpd.chaos", n)
	s.SetAttr("kind", kind)
	s.End()
}

func (c *chaosMiddleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/search" && r.URL.Path != "/shard/search" {
		c.next.ServeHTTP(w, r)
		return
	}
	trace, n, key := c.attempt(r)
	rng := detrand.NewKeyed(c.cfg.Seed, "serpd-chaos", key)
	if c.cfg.Latency > 0 {
		c.cfg.Clock.Sleep(c.cfg.Latency)
	}
	switch {
	case rng.Bool(c.cfg.AbortRate):
		c.ctr.With("abort").Inc()
		c.chaosSpan(trace, n, "abort")
		// Sever the connection without a response: net/http treats this
		// panic as a deliberate abort, and the client sees a transport
		// error.
		panic(http.ErrAbortHandler)
	case rng.Bool(c.cfg.ServerErrorRate):
		c.ctr.With("5xx").Inc()
		c.chaosSpan(trace, n, "5xx")
		http.Error(w, "chaos: injected server error", http.StatusInternalServerError)
	case rng.Bool(c.cfg.TruncateRate):
		c.ctr.With("truncate").Inc()
		// Render the full response into a buffer, promise its full length,
		// deliver half, then abort — the client observes a mid-body cut,
		// not a short-but-complete page. The handler runs normally, so its
		// own span carries the fault as a chaos=truncate attribute.
		var buf bytes.Buffer
		bw := &bufferedResponse{header: make(http.Header), body: &buf}
		c.next.ServeHTTP(bw, r.WithContext(
			context.WithValue(r.Context(), chaosNoteKey{}, "truncate")))
		for k, vs := range bw.header {
			w.Header()[k] = vs
		}
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		w.WriteHeader(bw.status())
		w.Write(buf.Bytes()[:buf.Len()/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	default:
		c.next.ServeHTTP(w, r)
	}
}

// bufferedResponse captures a handler's full response for the truncation
// fault.
type bufferedResponse struct {
	header     http.Header
	body       *bytes.Buffer
	statusCode int
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.statusCode == 0 {
		b.statusCode = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.statusCode == 0 {
		b.statusCode = http.StatusOK
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) status() int {
	if b.statusCode == 0 {
		return http.StatusOK
	}
	return b.statusCode
}
