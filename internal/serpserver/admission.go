package serpserver

import (
	"container/list"
	"net/http"
	"strconv"
	"sync"
	"time"

	"geoserp/internal/httpheader"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// AdmissionConfig bounds concurrent /search work. MaxInflight requests run
// at once; up to QueueDepth more wait in FIFO order for a slot; everything
// beyond that is shed with 503 and a Retry-After hint so well-behaved
// clients back off instead of hammering an overloaded server. Only /search
// is gated — health, stats, metrics, and trace endpoints must stay
// reachable precisely when the server is drowning.
type AdmissionConfig struct {
	// MaxInflight is the concurrency bound; <= 0 disables admission
	// control entirely.
	MaxInflight int
	// QueueDepth bounds how many requests may wait for a slot. 0 means no
	// queue: a full server sheds immediately.
	QueueDepth int
	// ServiceTime is the operator's estimate of one request's service
	// time. It scales the Retry-After hint (queue backlog x estimate /
	// slots) and the shed-on-arrival prediction for deadlined requests.
	// Defaults to one second.
	ServiceTime time.Duration
	// Clock supplies the instants for deadline checks and Retry-After
	// arithmetic — the campaign clock in virtual-time rigs. Defaults to
	// the wall clock. Queue WAITING never sleeps on this clock: waiters
	// block on channel handoff from a releasing request, so a held
	// virtual clock cannot deadlock the gate.
	Clock simclock.Clock
}

// Enabled reports whether admission control is configured.
func (c AdmissionConfig) Enabled() bool { return c.MaxInflight > 0 }

// Shed reasons, as exposed through serpd_admission_shed_total{reason}.
const (
	shedQueueFull = "queue_full" // all slots busy and the queue is full
	shedDeadline  = "deadline"   // the request could not make its deadline
	shedCanceled  = "canceled"   // the client gave up while queued
)

// Admission is the gate middleware, built by WithAdmission/NewAdmission.
// The slot accounting lives behind a plain mutex; a request that frees a
// slot hands it directly to the oldest live waiter through that waiter's
// channel, so admission order is FIFO and a handoff never wakes more
// goroutines than slots. The type is exported so co-located handlers can
// read RetryAfter; construct it only through the constructors.
type Admission struct {
	cfg   AdmissionConfig
	next  http.Handler
	spans *telemetry.SpanRecorder
	wall  simclock.Clock

	admitted  *telemetry.Counter    // serpd_admission_admitted_total
	shed      *telemetry.CounterVec // serpd_admission_shed_total{reason}
	inflightG *telemetry.Gauge      // serpd_admission_inflight
	queuedG   *telemetry.Gauge      // serpd_admission_queued
	queueWait *telemetry.Histogram  // serpd_admission_queue_wait_seconds

	gate *gate
}

// WithAdmission wraps next (usually h itself, possibly already wrapped in
// chaos middleware — admission sits outermost so deliberate faults cannot
// bypass the gate) with admission control per cfg. Metrics register on h's
// telemetry registry; when h records spans, every shed produces a
// "serpd.shed" span carrying the reason and the Retry-After hint.
func WithAdmission(cfg AdmissionConfig, h *Handler, next http.Handler) http.Handler {
	return NewAdmission(cfg, h.Telemetry(), h.spans, next)
}

// NewAdmission is WithAdmission for servers that are not a full SERP
// Handler — a cluster shard node gates its /shard/search endpoint with
// exactly the same FIFO machinery, registering metrics and shed spans on
// its own registry and recorder. spans may be nil (no shed spans).
func NewAdmission(cfg AdmissionConfig, reg *telemetry.Registry, spans *telemetry.SpanRecorder, next http.Handler) http.Handler {
	if !cfg.Enabled() {
		return next
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Wall()
	}
	return &Admission{
		cfg:   cfg,
		next:  next,
		spans: spans,
		wall:  simclock.Wall(),
		admitted: reg.Counter("serpd_admission_admitted_total",
			"Search requests admitted past the concurrency gate."),
		shed: reg.CounterVec("serpd_admission_shed_total",
			"Search requests shed by the admission gate, by reason.", "reason"),
		inflightG: reg.Gauge("serpd_admission_inflight",
			"Search requests currently executing."),
		queuedG: reg.Gauge("serpd_admission_queued",
			"Search requests currently waiting for an execution slot."),
		queueWait: reg.Histogram("serpd_admission_queue_wait_seconds",
			"Wall-clock time admitted requests spent queued for a slot.", nil),
		gate: newGate(cfg.MaxInflight, cfg.QueueDepth),
	}
}

func (a *Admission) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/search" && r.URL.Path != "/shard/search" {
		a.next.ServeHTTP(w, r)
		return
	}
	deadline := parseDeadline(r)
	now := a.cfg.Clock.Now()
	if !deadline.IsZero() && now.After(deadline) {
		// Already dead on arrival: even an idle server cannot answer in
		// time, so don't waste a slot rendering a page nobody will read.
		a.shedRequest(w, r, shedDeadline)
		return
	}

	ticket, verdict := a.gate.acquire(func(queuedAhead int) bool {
		// Enqueue predicate, called under the gate lock when no slot is
		// free: a deadlined request only queues if the backlog ahead of it
		// can plausibly drain in time. Refusing here turns a guaranteed
		// timeout into an immediate, cheap shed with an honest hint.
		if deadline.IsZero() {
			return true
		}
		est := a.cfg.ServiceTime * time.Duration(queuedAhead+1) / time.Duration(a.cfg.MaxInflight)
		return !now.Add(est).After(deadline)
	})
	switch verdict {
	case gateQueueFull:
		a.shedRequest(w, r, shedQueueFull)
		return
	case gateWontMakeIt:
		a.shedRequest(w, r, shedDeadline)
		return
	}

	if ticket != nil { // queued: wait for a handoff, not a clock tick
		a.queuedG.Add(1)
		waitStart := a.wall.Now()
		select {
		case <-ticket.ready:
			a.queuedG.Add(-1)
			a.queueWait.Observe(a.wall.Now().Sub(waitStart).Seconds())
			if !deadline.IsZero() && a.cfg.Clock.Now().After(deadline) {
				// The slot arrived too late; pass it straight on.
				a.gate.release()
				a.shedRequest(w, r, shedDeadline)
				return
			}
		case <-r.Context().Done():
			a.queuedG.Add(-1)
			if a.gate.abandon(ticket) {
				// The handoff raced our cancellation and won; the slot is
				// ours to return.
				a.gate.release()
			}
			a.shed.With(shedCanceled).Inc()
			a.shedSpan(r, shedCanceled, 0)
			return
		}
	}

	a.admitted.Inc()
	a.inflightG.Add(1)
	defer func() {
		// Deferred so a chaos-injected panic (http.ErrAbortHandler) still
		// returns the slot — a fault rehearsal must not leak capacity.
		a.inflightG.Add(-1)
		a.gate.release()
	}()
	a.next.ServeHTTP(w, r)
}

// RetryAfter computes the shed hint: the estimated time for the current
// backlog to drain through the configured slots, in whole seconds, at
// least one. Derived from gate state and config only — no randomness — so
// seeded campaigns see reproducible hints. Exported so co-located
// handlers behind the same gate (a shard node's deadline shed) advertise
// the identical back-off the gate itself would.
func (a *Admission) RetryAfter() time.Duration {
	backlog := a.gate.backlog() + 1
	est := a.cfg.ServiceTime * time.Duration(backlog) / time.Duration(a.cfg.MaxInflight)
	secs := (est + time.Second - 1) / time.Second
	if secs < 1 {
		secs = 1
	}
	return secs * time.Second
}

// shedRequest answers a request the gate refused: 503 with a Retry-After
// hint, plus the shed counter and span.
func (a *Admission) shedRequest(w http.ResponseWriter, r *http.Request, reason string) {
	ra := a.RetryAfter()
	a.shed.With(reason).Inc()
	a.shedSpan(r, reason, ra)
	w.Header().Set("Retry-After", strconv.Itoa(int(ra/time.Second)))
	http.Error(w, "server overloaded, request shed ("+reason+")", http.StatusServiceUnavailable)
}

// shedSpan records the shed on the request's trace so campaign timelines
// show why the fetch bounced.
func (a *Admission) shedSpan(r *http.Request, reason string, ra time.Duration) {
	if a.spans == nil {
		return
	}
	attempt := 0
	if v := r.Header.Get(httpheader.TraceAttempt); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			attempt = n
		}
	}
	s := a.spans.StartRootSeq(r.Header.Get(httpheader.TraceID), "serpd.shed", attempt)
	s.SetAttr("reason", reason)
	if ra > 0 {
		s.SetAttr("retry_after", ra.String())
	}
	s.End()
}

// parseDeadline reads the propagated absolute deadline from X-Deadline-Ms
// (unix milliseconds); absent or malformed values mean no deadline.
func parseDeadline(r *http.Request) time.Time {
	v := r.Header.Get(httpheader.DeadlineMs)
	if v == "" {
		return time.Time{}
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}
	}
	return time.UnixMilli(ms)
}

// gate verdicts from acquire.
const (
	gateAdmitted = iota // slot granted immediately, ticket is nil
	gateQueued          // no slot; wait on the returned ticket
	gateQueueFull
	gateWontMakeIt // the mayQueue predicate refused
)

// ticket is one queued request's place in line. ready is buffered so a
// releasing request can hand a slot to a waiter that is simultaneously
// abandoning — the abandon path detects the race and re-releases.
type ticket struct {
	ready chan struct{}
	elem  *list.Element
}

// gate is the slot ledger: a count of running requests plus a FIFO of
// waiting tickets. All methods are safe for concurrent use.
type gate struct {
	max, depth int

	mu       sync.Mutex
	inflight int
	queue    *list.List // of *ticket
}

func newGate(max, depth int) *gate {
	return &gate{max: max, depth: depth, queue: list.New()}
}

// acquire claims a slot. mayQueue is consulted (under the lock, with the
// number of requests already queued) only when the request would have to
// wait; returning false sheds instead of queueing.
func (g *gate) acquire(mayQueue func(queuedAhead int) bool) (*ticket, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight < g.max {
		g.inflight++
		return nil, gateAdmitted
	}
	if g.queue.Len() >= g.depth {
		return nil, gateQueueFull
	}
	if mayQueue != nil && !mayQueue(g.queue.Len()) {
		return nil, gateWontMakeIt
	}
	t := &ticket{ready: make(chan struct{}, 1)}
	t.elem = g.queue.PushBack(t)
	return t, gateQueued
}

// release returns a slot: the oldest waiter inherits it directly (the
// inflight count is unchanged — the slot never goes idle while the queue
// is non-empty); with no waiters the count drops.
func (g *gate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if front := g.queue.Front(); front != nil {
		t := g.queue.Remove(front).(*ticket)
		t.elem = nil
		//lint:allow lockhold ready has capacity 1 and exactly one sender; the handoff send never blocks
		t.ready <- struct{}{}
		return
	}
	g.inflight--
}

// abandon removes a canceled waiter from the queue. It reports true when
// the ticket was already dequeued — meaning a handoff won the race and the
// abandoning caller must release the slot it was just given.
func (g *gate) abandon(t *ticket) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.elem == nil {
		return true
	}
	g.queue.Remove(t.elem)
	t.elem = nil
	return false
}

// backlog reports inflight plus queued, the load figure behind Retry-After.
func (g *gate) backlog() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight + g.queue.Len()
}
