package serpserver

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/httpheader"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

func spanHandler(t *testing.T, mutate func(*engine.Config), extra ...HandlerOption) (*Handler, *telemetry.SpanRecorder) {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := engine.DefaultConfig()
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	if mutate != nil {
		mutate(&cfg)
	}
	rec := telemetry.NewSpanRecorder(256, clk)
	opts := append([]HandlerOption{WithSpans(rec)}, extra...)
	return NewHandler(engine.New(cfg, clk), opts...), rec
}

// TestRequestSpanRecorded: a traced /search leaves one "serpd.request"
// span carrying the request's trace ID, status, and serving datacenter,
// with the engine stage spans parented under it.
func TestRequestSpanRecorded(t *testing.T) {
	h, rec := spanHandler(t, nil)
	w := get(t, h, "/search?q=Coffee&ll=41.4993,-81.6944", map[string]string{
		httpheader.TraceID: "cafe0123cafe0123",
	})
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	var reqSpan *telemetry.SpanRecord
	stages := 0
	for _, s := range rec.Snapshot() {
		s := s
		if s.TraceID != "cafe0123cafe0123" {
			t.Fatalf("span %s minted under trace %q", s.Name, s.TraceID)
		}
		switch {
		case s.Name == "serpd.request":
			reqSpan = &s
		case len(s.Name) > 7 && s.Name[:7] == "engine.":
			stages++
		}
	}
	if reqSpan == nil {
		t.Fatal("no serpd.request span recorded")
	}
	if got := reqSpan.Attr("status"); got != "200" {
		t.Fatalf("status attr = %q", got)
	}
	if reqSpan.Attr("datacenter") == "" {
		t.Fatal("request span missing datacenter attr")
	}
	if stages < 5 {
		t.Fatalf("engine stage spans = %d, want >= 5 (parse/noise/retrieve/rerank/assemble)", stages)
	}
	for _, s := range rec.Snapshot() {
		if s.Name == "engine.parse" && s.ParentID != reqSpan.SpanID {
			t.Fatal("engine.parse not parented under serpd.request")
		}
	}
}

// TestTracezMountedWithSpans: the /tracez endpoint exists exactly when a
// recorder is configured.
func TestTracezMountedWithSpans(t *testing.T) {
	h, _ := spanHandler(t, nil)
	get(t, h, "/search?q=Coffee&ll=41.5,-81.7", map[string]string{
		httpheader.TraceID: "beef0123beef0123",
	})
	w := get(t, h, "/tracez", nil)
	if w.Code != 200 {
		t.Fatalf("/tracez status = %d", w.Code)
	}
	var body struct {
		Capacity int `json:"capacity"`
		Traces   []struct {
			TraceID string `json:"trace_id"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("/tracez is not JSON: %v", err)
	}
	if body.Capacity != 256 || len(body.Traces) == 0 {
		t.Fatalf("tracez = %+v", body)
	}
	if body.Traces[0].TraceID != "beef0123beef0123" {
		t.Fatalf("trace id = %q", body.Traces[0].TraceID)
	}

	// Without a recorder, the endpoint does not exist.
	bare := testHandler(t, nil)
	if w := get(t, bare, "/tracez", nil); w.Code != 404 {
		t.Fatalf("/tracez without spans = %d, want 404", w.Code)
	}
}

// TestChaosDecisionsAttributedInSpans: injected faults are visible in the
// span stream — a 500 shows up as a "serpd.chaos" span keyed to the same
// trace, so a slow or failed fetch can be attributed server-side.
func TestChaosDecisionsAttributedInSpans(t *testing.T) {
	h, rec := spanHandler(t, nil)
	chaos := WithChaos(ChaosConfig{Seed: 3, ServerErrorRate: 1}, h)
	srv := httptest.NewServer(chaos)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/search?q=Coffee&ll=41.5,-81.7")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d, want injected 500", resp.StatusCode)
	}
	found := false
	for _, s := range rec.Snapshot() {
		if s.Name == "serpd.chaos" {
			found = true
			if got := s.Attr("kind"); got != "5xx" {
				t.Fatalf("chaos span kind = %q, want 5xx", got)
			}
		}
	}
	if !found {
		t.Fatal("no serpd.chaos span for an injected 500")
	}
}
