package serpserver

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/httpheader"
	"geoserp/internal/simclock"
)

func chaosServer(t *testing.T, cfg ChaosConfig) (*httptest.Server, *Handler) {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	ecfg := engine.DefaultConfig()
	ecfg.RateBurst = 1 << 30
	ecfg.RatePerMinute = 1 << 30
	h := NewHandler(engine.New(ecfg, clk))
	srv := httptest.NewServer(WithChaos(cfg, h))
	t.Cleanup(srv.Close)
	return srv, h
}

func searchOnce(t *testing.T, srv *httptest.Server, trace string) (status int, body []byte, err error) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/search?q=Coffee&ll=41.499300,-81.694400", nil)
	if trace != "" {
		req.Header.Set(httpheader.TraceID, trace)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	return resp.StatusCode, body, rerr
}

func TestChaosAbortSeversConnection(t *testing.T) {
	srv, h := chaosServer(t, ChaosConfig{Seed: 1, AbortRate: 1})
	_, _, err := searchOnce(t, srv, "t-abort")
	if err == nil {
		t.Fatal("aborted request returned a response")
	}
	if got := h.Telemetry().CounterVec("serpd_chaos_injected_total", "", "kind").With("abort").Value(); got == 0 {
		t.Fatal("abort injection not counted")
	}
}

func TestChaosServerErrorAnswers500(t *testing.T) {
	srv, _ := chaosServer(t, ChaosConfig{Seed: 1, ServerErrorRate: 1})
	status, _, err := searchOnce(t, srv, "t-5xx")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", status)
	}
}

func TestChaosTruncationCutsBody(t *testing.T) {
	srv, _ := chaosServer(t, ChaosConfig{Seed: 1, TruncateRate: 1})
	_, _, err := searchOnce(t, srv, "t-cut")
	if err == nil {
		t.Fatal("truncated response read cleanly")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestChaosSparesOtherEndpoints(t *testing.T) {
	srv, _ := chaosServer(t, ChaosConfig{Seed: 1, AbortRate: 1, ServerErrorRate: 1, TruncateRate: 1})
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz hit by chaos: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestChaosFaultsAreTraceKeyed(t *testing.T) {
	observe := func() []bool {
		srv, _ := chaosServer(t, ChaosConfig{Seed: 11, ServerErrorRate: 0.4})
		var outcomes []bool
		for i := 0; i < 30; i++ {
			status, _, err := searchOnce(t, srv, fmt.Sprintf("trace-%d", i))
			if err != nil {
				t.Fatal(err)
			}
			outcomes = append(outcomes, status == http.StatusOK)
		}
		return outcomes
	}
	a, b := observe(), observe()
	mixed := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace-%d drew different faults across runs", i)
		}
		if a[i] != a[0] {
			mixed = true
		}
	}
	if !mixed {
		t.Fatal("all outcomes identical at a 40% rate; draws not varying by trace")
	}
}
