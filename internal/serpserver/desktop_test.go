package serpserver

import (
	"net/http"
	"strings"
	"testing"

	"geoserp/internal/serp"
)

const desktopUA = "Mozilla/5.0 (X11; Linux x86_64; rv:38.0) Gecko/20100101 Firefox/38.0"
const mobileUA = "Mozilla/5.0 (iPhone; CPU iPhone OS 8_0 like Mac OS X) Safari/600.1.4"

func TestDesktopSurfaceServed(t *testing.T) {
	h := testHandler(t, nil)
	w := get(t, h, "/search?q=Coffee&ll=41.4993,-81.6944",
		map[string]string{"User-Agent": desktopUA})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	doc := w.Body.String()
	if !serp.IsDesktopHTML(doc) {
		t.Fatal("desktop UA did not receive the desktop surface")
	}
	page, err := serp.ParseAnyHTML(doc)
	if err != nil {
		t.Fatal(err)
	}
	// The desktop surface has no Geolocation API: the ll parameter must
	// be IGNORED and the location derived from the IP instead.
	if strings.HasPrefix(page.Location, "41.4993") {
		t.Fatalf("desktop page honoured the Geolocation coordinate: %s", page.Location)
	}
}

func TestMobileSurfaceHonoursGPS(t *testing.T) {
	h := testHandler(t, nil)
	w := get(t, h, "/search?q=Coffee&ll=41.4993,-81.6944",
		map[string]string{"User-Agent": mobileUA})
	page, err := serp.ParseAnyHTML(w.Body.String())
	if err != nil {
		t.Fatal(err)
	}
	if serp.IsDesktopHTML(w.Body.String()) {
		t.Fatal("mobile UA received the desktop surface")
	}
	if !strings.HasPrefix(page.Location, "41.4993") {
		t.Fatalf("mobile page ignored the Geolocation coordinate: %s", page.Location)
	}
}

func TestUnknownUADefaultsToMobile(t *testing.T) {
	h := testHandler(t, nil)
	w := get(t, h, "/search?q=Coffee&ll=41.4993,-81.6944",
		map[string]string{"User-Agent": "Go-http-client/1.1"})
	if serp.IsDesktopHTML(w.Body.String()) {
		t.Fatal("ambiguous UA received the desktop surface")
	}
}

func TestIsDesktopUA(t *testing.T) {
	cases := map[string]bool{
		desktopUA: true,
		mobileUA:  false,
		"Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.36 Chrome/43.0 Safari/537.36": true,
		"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10) Safari/600.5.17":             true,
		"Mozilla/5.0 (Linux; Android 5.1; Nexus 5) Chrome/43.0 Mobile":              false,
		"Mozilla/5.0 (iPad; CPU OS 8_0 like Mac OS X) Safari/600.1.4":               false,
		"curl/7.81.0": false,
		"":            false,
	}
	for ua, want := range cases {
		if got := isDesktopUA(ua); got != want {
			t.Errorf("isDesktopUA(%q) = %v, want %v", ua, got, want)
		}
	}
}
