package serpserver

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/httpheader"
	"geoserp/internal/serp"
	"geoserp/internal/simclock"
)

func testHandler(t *testing.T, mutate func(*engine.Config)) *Handler {
	t.Helper()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := engine.DefaultConfig()
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	if mutate != nil {
		mutate(&cfg)
	}
	return NewHandler(engine.New(cfg, clk))
}

func get(t *testing.T, h http.Handler, url string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	req.RemoteAddr = "192.0.2.10:54321"
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestSearchHTML(t *testing.T) {
	h := testHandler(t, nil)
	w := get(t, h, "/search?q=Coffee&ll=41.4993,-81.6944", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	page, err := serp.ParseHTML(w.Body.String())
	if err != nil {
		t.Fatalf("served HTML does not parse: %v", err)
	}
	if page.Query != "Coffee" {
		t.Fatalf("parsed query = %q", page.Query)
	}
	if n := page.LinkCount(); n < 10 || n > 22 {
		t.Fatalf("served page has %d links", n)
	}
	if !strings.HasPrefix(page.Location, "41.4993") {
		t.Fatalf("page location %q does not echo the spoofed GPS", page.Location)
	}
	if w.Header().Get(httpheader.ServedBy) == "" {
		t.Fatal("missing X-Served-By header")
	}
}

func TestSearchJSON(t *testing.T) {
	h := testHandler(t, nil)
	w := get(t, h, "/search?q=School&ll=41.4993,-81.6944&format=json", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var page serp.Page
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if page.Query != "School" || len(page.Cards) == 0 {
		t.Fatalf("page = %+v", page)
	}
}

func TestSearchParamValidation(t *testing.T) {
	h := testHandler(t, nil)
	if w := get(t, h, "/search", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("missing q: status = %d", w.Code)
	}
	if w := get(t, h, "/search?q=", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("empty q: status = %d", w.Code)
	}
	if w := get(t, h, "/search?q=Coffee&ll=banana", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bad ll: status = %d", w.Code)
	}
	if w := get(t, h, "/search?q=Coffee&ll=999,0", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range ll: status = %d", w.Code)
	}
}

func TestNoGPSFallsBackToIP(t *testing.T) {
	h := testHandler(t, nil)
	w := get(t, h, "/search?q=Coffee", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	page, err := serp.ParseHTML(w.Body.String())
	if err != nil {
		t.Fatal(err)
	}
	if page.Location == "" {
		t.Fatal("no location inferred from IP")
	}
}

func TestXForwardedForAttribution(t *testing.T) {
	h := testHandler(t, func(cfg *engine.Config) {
		cfg.RateBurst = 2
		cfg.RatePerMinute = 0.001
	})
	// Two requests from machine A exhaust its budget...
	hdrA := map[string]string{httpheader.ForwardedFor: "10.0.0.1"}
	for i := 0; i < 2; i++ {
		if w := get(t, h, "/search?q=Coffee&ll=41.5,-81.7", hdrA); w.Code != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, w.Code)
		}
	}
	w := get(t, h, "/search?q=Coffee&ll=41.5,-81.7", hdrA)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// ...while machine B in the same pool is unaffected.
	hdrB := map[string]string{httpheader.ForwardedFor: "10.0.1.1"}
	if w := get(t, h, "/search?q=Coffee&ll=41.5,-81.7", hdrB); w.Code != http.StatusOK {
		t.Fatalf("machine B status = %d", w.Code)
	}
}

func TestDatacenterPinningHeader(t *testing.T) {
	h := testHandler(t, nil)
	w := get(t, h, "/search?q=Coffee&ll=41.5,-81.7",
		map[string]string{httpheader.Datacenter: "dc-1"})
	if got := w.Header().Get(httpheader.ServedBy); got != "dc-1" {
		t.Fatalf("served by %q, want dc-1", got)
	}
}

func TestSessionCookieRoundTrip(t *testing.T) {
	h := testHandler(t, nil)
	req := httptest.NewRequest("GET", "/search?q=Coffee&ll=41.5,-81.7", nil)
	req.RemoteAddr = "192.0.2.10:54321"
	req.AddCookie(&http.Cookie{Name: SessionCookie, Value: "sess-42"})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	found := false
	for _, c := range w.Result().Cookies() {
		if c.Name == SessionCookie && c.Value == "sess-42" {
			found = true
		}
	}
	if !found {
		t.Fatal("session cookie not refreshed")
	}
	// Cookieless requests are minted a fresh session.
	w2 := get(t, h, "/search?q=Coffee&ll=41.5,-81.7", nil)
	mintedNew := false
	for _, c := range w2.Result().Cookies() {
		if c.Name == SessionCookie && c.Value != "" && c.Value != "sess-42" {
			mintedNew = true
		}
	}
	if !mintedNew {
		t.Fatal("cookieless request was not minted a session")
	}
}

func TestHealthAndStats(t *testing.T) {
	h := testHandler(t, nil)
	if w := get(t, h, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}
	get(t, h, "/search?q=Coffee&ll=41.5,-81.7", nil)
	w := get(t, h, "/statz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("statz = %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 1 || st.Requests < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRealServerOverTCP(t *testing.T) {
	h := testHandler(t, nil)
	srv, err := Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()

	resp, err := http.Get(srv.URL() + "/search?q=Hospital&ll=41.4993,-81.6944")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page, err := serp.ParseHTML(string(body))
	if err != nil {
		t.Fatal(err)
	}
	if page.Query != "Hospital" {
		t.Fatalf("query = %q", page.Query)
	}
}

func TestServerShutdownIdempotent(t *testing.T) {
	h := testHandler(t, nil)
	srv, err := Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Second shutdown must not panic or error fatally.
	_ = srv.Shutdown(ctx)
}

func TestClientIPFallsBackToRemoteAddr(t *testing.T) {
	req := httptest.NewRequest("GET", "/search?q=x", nil)
	req.RemoteAddr = "203.0.113.7:9999"
	if got := clientIP(req); got != "203.0.113.7" {
		t.Fatalf("clientIP = %q", got)
	}
	req.Header.Set(httpheader.ForwardedFor, "198.51.100.1, 10.0.0.1")
	if got := clientIP(req); got != "198.51.100.1" {
		t.Fatalf("clientIP with XFF = %q", got)
	}
	req.Header.Set(httpheader.ForwardedFor, " ")
	req.RemoteAddr = "noport"
	if got := clientIP(req); got != "noport" {
		t.Fatalf("clientIP fallback = %q", got)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := testHandler(t, nil)
	req := httptest.NewRequest("POST", "/search?q=Coffee", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", w.Code)
	}
}
