package serpserver

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/httpheader"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

func TestAccessLogging(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := engine.DefaultConfig()
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	var buf bytes.Buffer
	h := NewHandler(engine.New(cfg, clk),
		WithLogger(slog.New(telemetry.NewLogHandler(&buf, "text", slog.LevelInfo))))

	req := httptest.NewRequest("GET", "/search?q=Coffee&ll=41.5,-81.7", nil)
	req.RemoteAddr = "192.0.2.10:5555"
	req.Header.Set(httpheader.TraceID, "deadbeef00000001")
	h.ServeHTTP(httptest.NewRecorder(), req)

	bad := httptest.NewRequest("GET", "/search?q=&ll=41.5,-81.7", nil)
	bad.RemoteAddr = "192.0.2.10:5555"
	h.ServeHTTP(httptest.NewRecorder(), bad)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("log lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "status=200") || !strings.Contains(lines[0], "ip=192.0.2.10") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[0], "trace=deadbeef00000001") {
		t.Fatalf("line 0 missing trace ID: %q", lines[0])
	}
	if !strings.Contains(lines[1], "status=400") {
		t.Fatalf("line 1 = %q", lines[1])
	}
}

func TestAccessLoggingJSONFormat(t *testing.T) {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := engine.DefaultConfig()
	cfg.RateBurst = 1 << 20
	cfg.RatePerMinute = 1 << 20
	var buf bytes.Buffer
	h := NewHandler(engine.New(cfg, clk),
		WithLogger(slog.New(telemetry.NewLogHandler(&buf, "json", slog.LevelInfo))))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, buf.String())
	}
	if rec["path"] != "/healthz" || rec["status"] != float64(200) {
		t.Fatalf("JSON record = %v", rec)
	}
}

func TestStatsPerDatacenter(t *testing.T) {
	h := testHandler(t, func(cfg *engine.Config) { cfg.Datacenters = 3 })
	for _, dc := range []string{"dc-0", "dc-1", "dc-1"} {
		w := get(t, h, "/search?q=Coffee&ll=41.5,-81.7", map[string]string{httpheader.Datacenter: dc})
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d", w.Code)
		}
	}
	w := get(t, h, "/statz", nil)
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ServedByDatacenter["dc-0"] != 1 || st.ServedByDatacenter["dc-1"] != 2 {
		t.Fatalf("per-DC stats = %v", st.ServedByDatacenter)
	}
	if st.Served != 3 {
		t.Fatalf("served = %d", st.Served)
	}
}
