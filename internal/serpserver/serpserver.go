// Package serpserver exposes the synthetic engine over HTTP as the mobile
// search endpoint the crawler scrapes. The wire contract mirrors what the
// study depended on:
//
//	GET /search?q=<term>&ll=<lat>,<lon>[&format=json]
//
// where ll is the coordinate the client's (spoofed) Geolocation API
// reported. The handler reads the session cookie (search-history
// personalization), honours X-Datacenter pinning (the study's static DNS
// mapping), attributes the request to a client IP (X-Forwarded-For from
// the crawl machines, else the socket address), and returns the mobile
// card HTML — or 429 when the per-IP rate limiter trips.
package serpserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/serp"
)

// SessionCookie is the cookie carrying the session ID.
const SessionCookie = "SID"

// DatacenterHeader pins a request to a named replica, emulating a client
// that statically resolved the service hostname to one datacenter.
const DatacenterHeader = "X-Datacenter"

// Handler is the HTTP front end over an Engine.
type Handler struct {
	eng      *engine.Engine
	mux      *http.ServeMux
	requests atomic.Uint64
	errors   atomic.Uint64
	sessions atomic.Uint64
	// logf, when set, receives one access-log line per request.
	logf func(format string, args ...any)
}

// HandlerOption configures a Handler.
type HandlerOption func(*Handler)

// WithAccessLog installs an access logger (e.g. log.Printf). Each request
// produces one line: method, path, client IP, status, and duration.
func WithAccessLog(logf func(format string, args ...any)) HandlerOption {
	return func(h *Handler) { h.logf = logf }
}

// NewHandler builds the front end.
func NewHandler(eng *engine.Engine, opts ...HandlerOption) *Handler {
	h := &Handler{eng: eng, mux: http.NewServeMux()}
	for _, o := range opts {
		o(h)
	}
	h.mux.HandleFunc("GET /search", h.handleSearch)
	h.mux.HandleFunc("GET /healthz", h.handleHealth)
	h.mux.HandleFunc("GET /statz", h.handleStats)
	return h
}

// statusRecorder captures the response status for access logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.requests.Add(1)
	if h.logf == nil {
		h.mux.ServeHTTP(w, r)
		return
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	h.mux.ServeHTTP(rec, r)
	h.logf("%s %s ip=%s status=%d dur=%s",
		r.Method, r.URL.Path, clientIP(r), rec.status, time.Since(start).Round(time.Microsecond))
}

// isDesktopUA conservatively detects desktop browsers: a known desktop
// platform token without a mobile token. Unknown or ambiguous user agents
// get the mobile surface (the study's default).
func isDesktopUA(ua string) bool {
	if strings.Contains(ua, "Mobile") || strings.Contains(ua, "iPhone") ||
		strings.Contains(ua, "Android") || strings.Contains(ua, "iPad") {
		return false
	}
	return strings.Contains(ua, "Windows NT") ||
		strings.Contains(ua, "Macintosh") ||
		strings.Contains(ua, "X11")
}

// clientIP attributes the request to a source address: the first
// X-Forwarded-For hop when present (the crawl machines identify themselves
// this way), otherwise the socket's remote host.
func clientIP(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		first := strings.TrimSpace(strings.Split(xff, ",")[0])
		if first != "" {
			return first
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (h *Handler) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		h.errors.Add(1)
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}

	// The ll parameter models the coordinate the MOBILE page obtains from
	// the JavaScript Geolocation API. The desktop surface has no such
	// pathway — its only location signal is the IP address — which is
	// precisely why the study targeted mobile (§2.2) while prior work,
	// limited to desktop, could only study IP geolocation.
	desktop := isDesktopUA(r.UserAgent())
	var gps *geo.Point
	if ll := r.URL.Query().Get("ll"); ll != "" && !desktop {
		pt, err := geo.ParsePoint(ll)
		if err != nil {
			h.errors.Add(1)
			http.Error(w, "malformed ll parameter", http.StatusBadRequest)
			return
		}
		gps = &pt
	}

	// Visitors without a session cookie are minted one, the way real
	// engines tag first-time visitors; a crawler that clears cookies
	// after every query therefore gets a fresh, history-free session
	// each time (the study's browser-state control, §2.2).
	session := ""
	if c, err := r.Cookie(SessionCookie); err == nil && c.Value != "" {
		session = c.Value
	} else {
		session = fmt.Sprintf("sid-%d", h.sessions.Add(1))
	}

	req := engine.Request{
		Query:      q,
		GPS:        gps,
		ClientIP:   clientIP(r),
		SessionID:  session,
		Datacenter: r.Header.Get(DatacenterHeader),
		UserAgent:  r.UserAgent(),
	}
	resp, err := h.eng.Search(req)
	switch {
	case errors.Is(err, engine.ErrRateLimited):
		h.errors.Add(1)
		w.Header().Set("Retry-After", "60")
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	case errors.Is(err, engine.ErrEmptyQuery):
		h.errors.Add(1)
		http.Error(w, "empty query", http.StatusBadRequest)
		return
	case err != nil:
		h.errors.Add(1)
		http.Error(w, "internal error", http.StatusInternalServerError)
		return
	}

	http.SetCookie(w, &http.Cookie{Name: SessionCookie, Value: session, Path: "/"})
	w.Header().Set("X-Served-By", resp.Datacenter)

	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp.Page); err != nil {
			h.errors.Add(1)
		}
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if desktop {
		fmt.Fprint(w, serp.RenderDesktopHTML(resp.Page))
		return
	}
	fmt.Fprint(w, serp.RenderHTML(resp.Page))
}

func (h *Handler) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Stats is the payload of /statz.
type Stats struct {
	Requests           uint64            `json:"requests"`
	Errors             uint64            `json:"errors"`
	Served             uint64            `json:"served"`
	RateLimited        uint64            `json:"rate_limited"`
	Day                int               `json:"day"`
	ServedByDatacenter map[string]uint64 `json:"served_by_datacenter"`
}

func (h *Handler) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(Stats{
		Requests:           h.requests.Load(),
		Errors:             h.errors.Load(),
		Served:             h.eng.Served(),
		RateLimited:        h.eng.RateLimited(),
		Day:                h.eng.Day(),
		ServedByDatacenter: h.eng.ServedByDatacenter(),
	})
}

// Server wraps Handler in a managed net/http server with graceful
// shutdown, for cmd/serpd and the examples.
type Server struct {
	httpSrv *http.Server
	lis     net.Listener
}

// Listen binds addr (e.g. "127.0.0.1:0") and returns a ready-to-Serve
// server.
func Listen(addr string, h *Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serpserver: listen %s: %w", addr, err)
	}
	return &Server{
		httpSrv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 10 * time.Second,
		},
		lis: lis,
	}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Serve blocks serving requests until Shutdown (or a fatal error).
func (s *Server) Serve() error {
	err := s.httpSrv.Serve(s.lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Start serves in a background goroutine and returns immediately.
func (s *Server) Start() {
	go func() { _ = s.Serve() }()
}

// Shutdown drains connections and stops the server.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}
