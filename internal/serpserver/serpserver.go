// Package serpserver exposes the synthetic engine over HTTP as the mobile
// search endpoint the crawler scrapes. The wire contract mirrors what the
// study depended on:
//
//	GET /search?q=<term>&ll=<lat>,<lon>[&format=json]
//
// where ll is the coordinate the client's (spoofed) Geolocation API
// reported. The handler reads the session cookie (search-history
// personalization), honours X-Datacenter pinning (the study's static DNS
// mapping), attributes the request to a client IP (X-Forwarded-For from
// the crawl machines, else the socket address), and returns the mobile
// card HTML — or 429 when the per-IP rate limiter trips.
package serpserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"geoserp/internal/engine"
	"geoserp/internal/geo"
	"geoserp/internal/httpheader"
	"geoserp/internal/serp"
	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

// SessionCookie is the cookie carrying the session ID.
const SessionCookie = "SID"

// Replica pinning and fail-soft marking ride on the shared wire headers:
// httpheader.Datacenter pins a request to a named replica (a client that
// statically resolved the service hostname to one datacenter), and
// httpheader.SerpPartial marks a 200 response whose web vertical was
// assembled from an incomplete retrieval backend — shards shed, timed
// out, or behind an open breaker. The page is still well-formed; the
// header lets clients and audits distinguish degraded from complete.

// Handler is the HTTP front end over an Engine. It reports through the
// engine's telemetry registry (exposed at /metricsz) and, when a logger is
// installed, emits one structured access-log line per request.
type Handler struct {
	eng    *engine.Engine
	mux    *http.ServeMux
	tel    *telemetry.Registry
	logger *slog.Logger
	spans  *telemetry.SpanRecorder
	node   string
	// wideLog, when set, gets ONE canonical wide-event line per /search:
	// per-stage durations, per-shard outcomes, partial flag, status, trace
	// ID — the flat record the continuous-audit pipeline greps.
	wideLog  *slog.Logger
	widePool sync.Pool // of *wideSlot
	// wall times request handling for the duration histogram and access
	// log: those measure real hardware latency regardless of the virtual
	// campaign clock driving the engine.
	wall simclock.Clock
	inst httpInstruments
}

// wideSlot is a pooled wide event plus its formatting buffer, so steady-
// state wide logging allocates only inside slog itself.
type wideSlot struct {
	ev  telemetry.WideEvent
	buf []byte
}

// httpInstruments are the handler's registered metrics.
type httpInstruments struct {
	requests *telemetry.Counter    // serpd_http_requests_total
	errors   *telemetry.Counter    // serpd_http_errors_total
	sessions *telemetry.Counter    // serpd_sessions_minted_total
	byCode   *telemetry.CounterVec // serpd_http_responses_total{code}
	byCard   *telemetry.CounterVec // serpd_cards_served_total{type}
	duration *telemetry.Histogram  // serpd_http_request_duration_seconds
}

// HandlerOption configures a Handler.
type HandlerOption func(*Handler)

// WithLogger installs a structured access logger: one record per request
// with method, path, client IP, status, duration, and trace ID.
func WithLogger(l *slog.Logger) HandlerOption {
	return func(h *Handler) { h.logger = l }
}

// WithSpans installs a span recorder: every /search request gets a
// "serpd.request" span (keyed off the incoming X-Trace-Id and
// X-Trace-Attempt headers, so retried fetches get distinct spans) with the
// engine's stage spans as children, and the handler mounts GET /tracez
// over the recorder.
func WithSpans(rec *telemetry.SpanRecorder) HandlerOption {
	return func(h *Handler) { h.spans = rec }
}

// WithNode names this process in the /spanz span export (default "serpd").
// The coordinator of a cluster passes "router" so stitched traces label
// lanes by role.
func WithNode(name string) HandlerOption {
	return func(h *Handler) { h.node = name }
}

// WithWideEvents installs the wide-event canonical request log: one
// structured "search.wide" line per /search on l, carrying the whole
// request story (stage durations, shard outcomes, partial flag, trace ID).
func WithWideEvents(l *slog.Logger) HandlerOption {
	return func(h *Handler) { h.wideLog = l }
}

// NewHandler builds the front end. Its metrics live on the engine's
// telemetry registry, so constructing the engine with
// engine.WithTelemetry(reg) makes /metricsz expose both layers from one
// registry.
func NewHandler(eng *engine.Engine, opts ...HandlerOption) *Handler {
	h := &Handler{eng: eng, mux: http.NewServeMux(), tel: eng.Telemetry(), wall: simclock.Wall(), node: "serpd"}
	for _, o := range opts {
		o(h)
	}
	h.widePool.New = func() any { return &wideSlot{buf: make([]byte, 0, 512)} }
	h.inst = httpInstruments{
		requests: h.tel.Counter("serpd_http_requests_total", "HTTP requests received."),
		errors:   h.tel.Counter("serpd_http_errors_total", "Requests answered with an error status."),
		sessions: h.tel.Counter("serpd_sessions_minted_total", "Fresh session cookies minted for cookieless visitors."),
		byCode:   h.tel.CounterVec("serpd_http_responses_total", "HTTP responses, by status code.", "code"),
		byCard:   h.tel.CounterVec("serpd_cards_served_total", "Cards on served result pages, by card type.", "type"),
		duration: h.tel.Histogram("serpd_http_request_duration_seconds", "Wall-clock HTTP request handling time.", nil),
	}
	h.mux.HandleFunc("GET /search", h.handleSearch)
	h.mux.HandleFunc("GET /healthz", h.handleHealth)
	h.mux.HandleFunc("GET /statz", h.handleStats)
	h.mux.Handle("GET /metricsz", h.tel.MetricsHandler())
	if h.spans != nil {
		h.mux.Handle("GET /tracez", telemetry.TracezHandler(h.spans))
		h.mux.Handle("GET "+telemetry.SpanzPath, telemetry.SpanzHandler(h.spans, h.node))
	}
	return h
}

// Telemetry returns the registry backing /metricsz and /statz.
func (h *Handler) Telemetry() *telemetry.Registry { return h.tel }

// statusRecorder captures the response status for access logging and the
// per-status-code counter. A handler that writes a body without calling
// WriteHeader — or never writes at all — is recorded as 200, matching
// net/http's implicit behaviour.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Status returns the recorded status, defaulting to 200 when the handler
// never wrote one.
func (r *statusRecorder) Status() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.inst.requests.Inc()
	trace := r.Header.Get(httpheader.TraceID)
	if trace != "" {
		// Echo the trace so clients can attach it to the stored page
		// record, completing the crawler → wire → log → storage chain.
		w.Header().Set(httpheader.TraceID, trace)
		r = r.WithContext(telemetry.WithTraceID(r.Context(), trace))
	}
	rec := &statusRecorder{ResponseWriter: w}
	var slot *wideSlot
	if h.wideLog != nil && r.URL.Path == "/search" {
		slot = h.widePool.Get().(*wideSlot)
		slot.ev.Reset()
		r = r.WithContext(telemetry.WithWideEvent(r.Context(), &slot.ev))
	}
	var span *telemetry.Span
	if h.spans != nil && r.URL.Path == "/search" {
		// One server span per fetch attempt: the attempt header folds into
		// the span ID, so each retry of a trace is a distinct span even
		// though trace ID and span name repeat.
		attempt := 0
		if v := r.Header.Get(httpheader.TraceAttempt); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				attempt = n
			}
		}
		span = h.spans.StartRootSeq(trace, "serpd.request", attempt)
		r = r.WithContext(telemetry.WithSpan(
			telemetry.WithSpanRecorder(r.Context(), h.spans), span))
	}
	start := h.wall.Now()
	h.mux.ServeHTTP(rec, r)
	dur := h.wall.Now().Sub(start)
	h.inst.duration.Observe(dur.Seconds())
	h.inst.byCode.With(strconv.Itoa(rec.Status())).Inc()
	if span != nil {
		span.SetAttr("status", strconv.Itoa(rec.Status()))
		if rec.Status() == http.StatusTooManyRequests {
			span.SetAttr("ratelimited", "true")
		}
		if dc := rec.Header().Get(httpheader.ServedBy); dc != "" {
			span.SetAttr("datacenter", dc)
		}
		if kind := chaosNote(r.Context()); kind != "" {
			span.SetAttr("chaos", kind)
		}
		span.End()
	}
	if slot != nil {
		ev := &slot.ev
		ev.TraceID = trace
		ev.Status = rec.Status()
		ev.Dur = dur
		ev.Partial = rec.Header().Get(httpheader.SerpPartial)
		slot.buf = ev.AppendText(slot.buf[:0])
		h.wideLog.LogAttrs(r.Context(), slog.LevelInfo, "search.wide",
			slog.String("record", string(slot.buf)))
		h.widePool.Put(slot)
	}
	if h.logger != nil {
		h.logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"ip", clientIP(r),
			"status", rec.Status(),
			"dur", dur.Round(time.Microsecond).String(),
			"trace", trace)
	}
}

// isDesktopUA conservatively detects desktop browsers: a known desktop
// platform token without a mobile token. Unknown or ambiguous user agents
// get the mobile surface (the study's default).
func isDesktopUA(ua string) bool {
	if strings.Contains(ua, "Mobile") || strings.Contains(ua, "iPhone") ||
		strings.Contains(ua, "Android") || strings.Contains(ua, "iPad") {
		return false
	}
	return strings.Contains(ua, "Windows NT") ||
		strings.Contains(ua, "Macintosh") ||
		strings.Contains(ua, "X11")
}

// clientIP attributes the request to a source address: the first
// X-Forwarded-For hop when present (the crawl machines identify themselves
// this way), otherwise the socket's remote host.
func clientIP(r *http.Request) string {
	if xff := r.Header.Get(httpheader.ForwardedFor); xff != "" {
		first := strings.TrimSpace(strings.Split(xff, ",")[0])
		if first != "" {
			return first
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (h *Handler) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		h.inst.errors.Inc()
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}

	// The ll parameter models the coordinate the MOBILE page obtains from
	// the JavaScript Geolocation API. The desktop surface has no such
	// pathway — its only location signal is the IP address — which is
	// precisely why the study targeted mobile (§2.2) while prior work,
	// limited to desktop, could only study IP geolocation.
	desktop := isDesktopUA(r.UserAgent())
	var gps *geo.Point
	if ll := r.URL.Query().Get("ll"); ll != "" && !desktop {
		pt, err := geo.ParsePoint(ll)
		if err != nil {
			h.inst.errors.Inc()
			http.Error(w, "malformed ll parameter", http.StatusBadRequest)
			return
		}
		gps = &pt
	}

	// Visitors without a session cookie are minted one, the way real
	// engines tag first-time visitors; a crawler that clears cookies
	// after every query therefore gets a fresh, history-free session
	// each time (the study's browser-state control, §2.2).
	session := ""
	if c, err := r.Cookie(SessionCookie); err == nil && c.Value != "" {
		session = c.Value
	} else {
		session = fmt.Sprintf("sid-%d", h.inst.sessions.Inc())
	}

	wide := telemetry.WideEventFrom(r.Context())
	req := engine.Request{
		Query:      q,
		GPS:        gps,
		ClientIP:   clientIP(r),
		SessionID:  session,
		Datacenter: r.Header.Get(httpheader.Datacenter),
		UserAgent:  r.UserAgent(),
		TraceID:    telemetry.TraceID(r.Context()),
		Span:       telemetry.SpanFrom(r.Context()),
		Deadline:   parseDeadline(r),
		Wide:       wide,
	}
	resp, err := h.eng.Search(req)
	switch {
	case errors.Is(err, engine.ErrRateLimited):
		h.inst.errors.Inc()
		wide.SetErr("ratelimited")
		w.Header().Set("Retry-After", "60")
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	case errors.Is(err, engine.ErrDeadlineExceeded):
		// The client's propagated deadline passed mid-pipeline and the
		// engine abandoned the request. Answer as a shed: by the time the
		// client backs off and retries, the deadline verdict is its own to
		// make.
		h.inst.errors.Inc()
		wide.SetErr("deadline")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "deadline exceeded, request abandoned", http.StatusServiceUnavailable)
		return
	case errors.Is(err, engine.ErrRetrievalUnavailable):
		// Every retrieval shard is down or breaker-open: there is no page
		// to degrade to. Answer as a shed — the backend coming back is a
		// matter of time, so clients should back off and retry.
		h.inst.errors.Inc()
		wide.SetErr("retrieval_unavailable")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "retrieval backend unavailable", http.StatusServiceUnavailable)
		return
	case errors.Is(err, engine.ErrEmptyQuery):
		h.inst.errors.Inc()
		wide.SetErr("empty_query")
		http.Error(w, "empty query", http.StatusBadRequest)
		return
	case err != nil:
		h.inst.errors.Inc()
		wide.SetErr("internal")
		http.Error(w, "internal error", http.StatusInternalServerError)
		return
	}

	resp.Page.TraceID = telemetry.TraceID(r.Context())
	for _, c := range resp.Page.Cards {
		h.inst.byCard.With(c.Type.String()).Inc()
	}

	http.SetCookie(w, &http.Cookie{Name: SessionCookie, Value: session, Path: "/"})
	w.Header().Set(httpheader.ServedBy, resp.Datacenter)
	if resp.Partial {
		w.Header().Set(httpheader.SerpPartial, "web")
	}

	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp.Page); err != nil {
			h.inst.errors.Inc()
		}
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if desktop {
		fmt.Fprint(w, serp.RenderDesktopHTML(resp.Page))
		return
	}
	fmt.Fprint(w, serp.RenderHTML(resp.Page))
}

func (h *Handler) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Stats is the payload of /statz. The JSON shape predates the telemetry
// registry and is kept backward-compatible; the values are now read from
// the registry (the same numbers /metricsz exposes).
type Stats struct {
	Requests           uint64            `json:"requests"`
	Errors             uint64            `json:"errors"`
	Sessions           uint64            `json:"sessions"`
	Served             uint64            `json:"served"`
	RateLimited        uint64            `json:"rate_limited"`
	Day                int               `json:"day"`
	ServedByDatacenter map[string]uint64 `json:"served_by_datacenter"`
	// Build identifies the binary: toolchain, VCS revision, dirty flag.
	Build telemetry.Build `json:"build"`
}

func (h *Handler) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(Stats{
		Build:              telemetry.ReadBuild(),
		Requests:           h.inst.requests.Value(),
		Errors:             h.inst.errors.Value(),
		Sessions:           h.inst.sessions.Value(),
		Served:             h.eng.Served(),
		RateLimited:        h.eng.RateLimited(),
		Day:                h.eng.Day(),
		ServedByDatacenter: h.eng.ServedByDatacenter(),
	})
}

// Server wraps Handler in a managed net/http server with graceful
// shutdown, for cmd/serpd and the examples.
type Server struct {
	httpSrv *http.Server
	lis     net.Listener
}

// Listen binds addr (e.g. "127.0.0.1:0") and returns a ready-to-Serve
// server. h is usually a *Handler, optionally wrapped (WithChaos).
func Listen(addr string, h http.Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serpserver: listen %s: %w", addr, err)
	}
	return &Server{
		httpSrv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 10 * time.Second,
		},
		lis: lis,
	}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Serve blocks serving requests until Shutdown (or a fatal error).
func (s *Server) Serve() error {
	err := s.httpSrv.Serve(s.lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Start serves in a background goroutine and returns immediately.
func (s *Server) Start() {
	go func() { _ = s.Serve() }()
}

// Shutdown drains connections and stops the server.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}
