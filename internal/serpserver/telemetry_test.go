package serpserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"geoserp/internal/engine"
	"geoserp/internal/httpheader"
	"geoserp/internal/serp"
)

// TestStatzJSONKeysUnchanged is the /statz wire-format regression test:
// the keys existed before the telemetry registry and dashboards depend on
// them, so reading from the registry must not rename or drop any.
func TestStatzJSONKeysUnchanged(t *testing.T) {
	h := testHandler(t, nil)
	get(t, h, "/search?q=Coffee&ll=41.5,-81.7", nil)
	w := get(t, h, "/statz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests", "errors", "sessions",
		"served", "rate_limited", "day", "served_by_datacenter", "build",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/statz missing key %q", key)
		}
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	// The build block identifies the binary serving the audit surface; the
	// Go version is the one field present even without VCS stamping.
	if st.Build.GoVersion == "" {
		t.Error("/statz build block missing go_version")
	}
	// Two requests so far: /search and this /statz is not yet counted in
	// its own snapshot — the search plus the statz request itself race
	// only in ordering, not in count, because ServeHTTP counts before
	// routing.
	if st.Requests < 1 || st.Served != 1 || st.Sessions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHealthz(t *testing.T) {
	h := testHandler(t, nil)
	w := get(t, h, "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if strings.TrimSpace(w.Body.String()) != "ok" {
		t.Fatalf("body = %q", w.Body.String())
	}
}

func TestMetricszExposition(t *testing.T) {
	h := testHandler(t, func(cfg *engine.Config) {
		cfg.RateBurst = 2
		cfg.RatePerMinute = 0.001
	})
	// Two served, one rate-limited, one bad request.
	get(t, h, "/search?q=Coffee&ll=41.5,-81.7", nil)
	get(t, h, "/search?q=Coffee&ll=41.5,-81.7", nil)
	if w := get(t, h, "/search?q=Coffee&ll=41.5,-81.7", nil); w.Code != http.StatusTooManyRequests {
		t.Fatalf("third search status = %d, want 429", w.Code)
	}
	if w := get(t, h, "/search?q=&ll=bad", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bad search status = %d, want 400", w.Code)
	}

	w := get(t, h, "/metricsz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metricsz status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	out := w.Body.String()
	for _, want := range []string{
		`serpd_http_responses_total{code="200"} 2`,
		`serpd_http_responses_total{code="429"} 1`,
		`serpd_http_responses_total{code="400"} 1`,
		`serpd_cards_served_total{type="organic"}`,
		"# TYPE serpd_http_request_duration_seconds histogram",
		"serpd_http_request_duration_seconds_count 4",
		"# TYPE engine_rank_duration_seconds histogram",
		"engine_ratelimited_total 1",
		`engine_requests_total{datacenter=`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metricsz missing %q:\n%s", want, out)
		}
	}
}

func TestStatusRecorderDefaultsTo200(t *testing.T) {
	// Body written without WriteHeader: implicit 200.
	rec := &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	rec.Write([]byte("hi"))
	if rec.Status() != http.StatusOK {
		t.Fatalf("implicit write status = %d", rec.Status())
	}
	// Handler that never writes anything at all: still 200, never 0.
	rec = &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	if rec.Status() != http.StatusOK {
		t.Fatalf("no-write status = %d", rec.Status())
	}
	// Explicit status wins, and only the first one counts.
	rec = &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	rec.WriteHeader(http.StatusTeapot)
	rec.Write([]byte("tea"))
	if rec.Status() != http.StatusTeapot {
		t.Fatalf("explicit status = %d", rec.Status())
	}
}

func TestTraceEchoAndPageRecord(t *testing.T) {
	h := testHandler(t, nil)
	const trace = "00c0ffee00c0ffee"
	w := get(t, h, "/search?q=Coffee&ll=41.5,-81.7&format=json",
		map[string]string{httpheader.TraceID: trace})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if got := w.Header().Get(httpheader.TraceID); got != trace {
		t.Fatalf("echoed trace = %q, want %q", got, trace)
	}
	var page serp.Page
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.TraceID != trace {
		t.Fatalf("page trace = %q, want %q", page.TraceID, trace)
	}
	// Untraced requests stay untraced: no header, no trace_id field.
	w = get(t, h, "/search?q=Coffee&ll=41.5,-81.7&format=json", nil)
	if got := w.Header().Get(httpheader.TraceID); got != "" {
		t.Fatalf("untraced request echoed %q", got)
	}
	if strings.Contains(w.Body.String(), "trace_id") {
		t.Fatal("untraced page carries a trace_id field")
	}
}
