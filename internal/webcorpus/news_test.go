package webcorpus

import (
	"testing"
)

func TestNewsTopicalDeterministic(t *testing.T) {
	a := NewNewsWire(1, DefaultRegions())
	b := NewNewsWire(1, DefaultRegions())
	for day := 0; day < 5; day++ {
		as := a.Topical("gay-marriage", day)
		bs := b.Topical("gay-marriage", day)
		if len(as) != len(bs) {
			t.Fatalf("day %d counts differ: %d vs %d", day, len(as), len(bs))
		}
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("day %d differs at %d", day, i)
			}
		}
	}
}

func TestNewsRotatesByDay(t *testing.T) {
	n := NewNewsWire(1, DefaultRegions())
	d0 := n.Topical("health", 0)
	d3 := n.Topical("health", 3)
	if len(d0) == 0 || len(d3) == 0 {
		t.Fatal("empty news days")
	}
	set0 := map[string]bool{}
	for _, a := range d0 {
		set0[a.URL] = true
	}
	allShared := true
	for _, a := range d3 {
		if !set0[a.URL] {
			allShared = false
			break
		}
	}
	if allShared && len(d0) == len(d3) {
		t.Fatal("news did not rotate between day 0 and day 3")
	}
}

func TestNewsWindowAndFreshness(t *testing.T) {
	n := NewNewsWire(1, DefaultRegions())
	for day := 0; day < 6; day++ {
		arts := n.Topical("abortion", day)
		if len(arts) == 0 {
			t.Fatalf("no articles on day %d", day)
		}
		prev := 2.0
		for _, a := range arts {
			if a.Day > day || a.Day < day-2 {
				t.Fatalf("article from day %d in day-%d pool", a.Day, day)
			}
			if a.Freshness <= 0 || a.Freshness > 1 {
				t.Fatalf("freshness = %v", a.Freshness)
			}
			if a.Freshness > prev+1e-12 {
				t.Fatal("articles not sorted by freshness")
			}
			prev = a.Freshness
			if a.Topic != "abortion" {
				t.Fatalf("topic = %q", a.Topic)
			}
		}
	}
}

func TestNewsDay0HasNoNegativeDays(t *testing.T) {
	n := NewNewsWire(1, DefaultRegions())
	for _, a := range n.Topical("health", 0) {
		if a.Day != 0 {
			t.Fatalf("day-0 pool has article from day %d", a.Day)
		}
	}
}

func TestNewsRegionalCoverageExists(t *testing.T) {
	n := NewNewsWire(1, DefaultRegions())
	// Over many topics and days, some regional articles must appear
	// (each topic/region/day has a 4% chance).
	topics := []string{"health", "abortion", "gun-control", "obamacare",
		"climate-change", "minimum-wage", "gay-marriage", "fracking"}
	regional, national := 0, 0
	for _, topic := range topics {
		for day := 0; day < 5; day++ {
			for _, a := range n.Topical(topic, day) {
				if a.Region != "" {
					regional++
				} else {
					national++
				}
			}
		}
	}
	if regional == 0 {
		t.Fatal("no regional articles generated across 8 topics x 5 days")
	}
	if national == 0 {
		t.Fatal("no national articles generated")
	}
	if regional >= national {
		t.Fatalf("regional (%d) should be rarer than national (%d)", regional, national)
	}
}

func TestNewsDistinctTopicsDistinctArticles(t *testing.T) {
	n := NewNewsWire(1, DefaultRegions())
	seen := map[string]string{}
	for _, topic := range []string{"health", "abortion"} {
		for _, a := range n.Topical(topic, 2) {
			if prev, dup := seen[a.URL]; dup {
				t.Fatalf("URL %s shared by topics %s and %s", a.URL, prev, topic)
			}
			seen[a.URL] = topic
		}
	}
}
