// Package webcorpus synthesizes the web that the search engine indexes and
// serves. It stands in for the real web the paper's crawler observed through
// Google Search, and is organized — like a production engine's backends —
// into three verticals:
//
//   - Web:    static documents (official sites, encyclopedias, directories,
//     government and campaign pages, namesake profiles).
//   - Places: a geo-generative business directory that deterministically
//     populates the map with establishments, the backend for Maps
//     cards and for location-ranked organic results.
//   - News:   a time-dependent wire of national and regional articles, the
//     backend for "In the News" cards.
//
// Everything is generated deterministically from a root seed, so two engine
// replicas constructed with the same seed serve the same web (the noise the
// paper measures comes from the engine layer, not from the corpus).
package webcorpus

import (
	"fmt"
	"strings"
)

// DocKind classifies a static web document. The engine's ranker uses the
// kind to assign base authority, and the analysis layer never sees it —
// exactly like the real study, which could only observe URLs.
type DocKind int

const (
	// KindOfficial is a brand's or institution's own site.
	KindOfficial DocKind = iota
	// KindEncyclopedia is a reference article (wikipedia-like).
	KindEncyclopedia
	// KindDirectory is a national listing/review site page.
	KindDirectory
	// KindGov is a government page.
	KindGov
	// KindCampaign is a politician's campaign site.
	KindCampaign
	// KindProfile is a social or professional profile page.
	KindProfile
	// KindAdvocacy is an issue-advocacy page for controversial topics.
	KindAdvocacy
	// KindBlog is commentary/long-tail content.
	KindBlog
)

// String returns a short label for the kind.
func (k DocKind) String() string {
	switch k {
	case KindOfficial:
		return "official"
	case KindEncyclopedia:
		return "encyclopedia"
	case KindDirectory:
		return "directory"
	case KindGov:
		return "gov"
	case KindCampaign:
		return "campaign"
	case KindProfile:
		return "profile"
	case KindAdvocacy:
		return "advocacy"
	case KindBlog:
		return "blog"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// Doc is a static web document in the Web vertical.
type Doc struct {
	// URL uniquely identifies the document.
	URL string
	// Title is the page title shown on result cards.
	Title string
	// Snippet is the short abstract shown under the title.
	Snippet string
	// Kind drives base authority in the ranker.
	Kind DocKind
	// Topic is the query ID this document is primarily about.
	Topic string
	// Authority is the query-independent base score in [0, 1].
	Authority float64
	// Region is the state slug this document is tied to ("ohio"), or ""
	// for nationally relevant documents. Region-matching documents get a
	// mild boost for queries issued from that region — one of the two
	// mechanisms (with Places) behind location personalization of
	// "typical" results.
	Region string
}

// slug lowercases s and maps runs of non-alphanumerics to single dashes.
func slug(s string) string {
	var b strings.Builder
	lastDash := true // trim leading dashes
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}
