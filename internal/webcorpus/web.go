package webcorpus

import (
	"fmt"
	"sort"
	"strings"

	"geoserp/internal/detrand"
	"geoserp/internal/queries"
)

// Region names a state-scale region the corpus generates regional content
// for (regional directories, local news outlets, namesake profiles).
type Region struct {
	// Slug is the stable identifier, e.g. "ohio".
	Slug string
	// Name is the display name, e.g. "Ohio".
	Name string
}

// Web is the static-document vertical: everything that is not a business
// listing or a dated news article. Documents are generated once, up front,
// deterministically from the root seed and the query corpus.
type Web struct {
	seed    uint64
	regions []Region
	byTopic map[string][]Doc
	byURL   map[string]Doc
}

// NewWeb generates the static web for the given query corpus and regions.
func NewWeb(seed uint64, corpus *queries.Corpus, regions []Region) *Web {
	w := &Web{
		seed:    seed,
		regions: regions,
		byTopic: make(map[string][]Doc),
		byURL:   make(map[string]Doc),
	}
	for _, q := range corpus.All() {
		var docs []Doc
		switch {
		case q.Category == queries.Local && q.Brand:
			docs = w.brandDocs(q)
		case q.Category == queries.Local:
			docs = w.genericLocalDocs(q)
		case q.Category == queries.Controversial:
			docs = w.controversialDocs(q)
		default:
			docs = w.politicianDocs(q)
		}
		sort.Slice(docs, func(i, j int) bool {
			if docs[i].Authority != docs[j].Authority {
				return docs[i].Authority > docs[j].Authority
			}
			return docs[i].URL < docs[j].URL
		})
		w.byTopic[q.ID()] = docs
		for _, d := range docs {
			w.byURL[d.URL] = d
		}
	}
	return w
}

// Docs returns the static documents about the given topic (a query ID),
// sorted by authority descending. The slice must not be mutated.
func (w *Web) Docs(topic string) []Doc { return w.byTopic[topic] }

// ByURL looks a document up by URL.
func (w *Web) ByURL(url string) (Doc, bool) {
	d, ok := w.byURL[url]
	return d, ok
}

// Topics returns all topics with documents, sorted.
func (w *Web) Topics() []string {
	out := make([]string, 0, len(w.byTopic))
	for t := range w.byTopic {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Size returns the total number of documents.
func (w *Web) Size() int { return len(w.byURL) }

// add constructs a Doc with templated snippet text that mentions the topic
// term (so the inverted index retrieves it for the query's tokens).
func (w *Web) add(docs []Doc, q queries.Query, kind DocKind, url, title, snippetTmpl string, authority float64, region string) []Doc {
	return append(docs, Doc{
		URL:       url,
		Title:     title,
		Snippet:   fmt.Sprintf(snippetTmpl, q.Term),
		Kind:      kind,
		Topic:     q.ID(),
		Authority: authority,
		Region:    region,
	})
}

// jitter derives a small deterministic authority perturbation for an entity
// so same-kind documents for different topics do not tie exactly.
func (w *Web) jitter(parts ...string) float64 {
	rng := detrand.NewKeyed(w.seed, parts...)
	return rng.Range(-0.03, 0.03)
}

func (w *Web) brandDocs(q queries.Query) []Doc {
	id := q.ID()
	var docs []Doc
	docs = w.add(docs, q, KindOfficial,
		fmt.Sprintf("https://www.%s.example/", id),
		q.Term, "%s — official site. Find menus, offers, and locations.",
		0.95+w.jitter(id, "official"), "")
	docs = w.add(docs, q, KindOfficial,
		fmt.Sprintf("https://www.%s.example/menu", id),
		q.Term+" Menu", "Full menu and nutrition information for %s.",
		0.72+w.jitter(id, "menu"), "")
	docs = w.add(docs, q, KindEncyclopedia,
		fmt.Sprintf("https://encyclopedia.example/wiki/%s", id),
		q.Term+" - Encyclopedia", "%s is an American restaurant chain.",
		0.85+w.jitter(id, "wiki"), "")
	docs = w.add(docs, q, KindDirectory,
		fmt.Sprintf("https://reviewhub.example/chains/%s", id),
		q.Term+" Reviews", "Customer reviews and ratings for %s.",
		0.58+w.jitter(id, "reviews"), "")
	docs = w.add(docs, q, KindOfficial,
		fmt.Sprintf("https://careers.%s.example/", id),
		q.Term+" Careers", "Jobs and careers at %s.",
		0.48+w.jitter(id, "careers"), "")
	docs = w.add(docs, q, KindBlog,
		fmt.Sprintf("https://foodblog.example/%s-secret-menu", id),
		"The "+q.Term+" Items Everyone Orders", "What to order at %s, according to fans.",
		0.40+w.jitter(id, "blog"), "")
	// A handful of long-tail commentary pages deepen the candidate pool.
	docs = w.appendLongTail(docs, q, 4, 0.20, 0.38)
	return docs
}

func (w *Web) genericLocalDocs(q queries.Query) []Doc {
	id := q.ID()
	var docs []Doc
	docs = w.add(docs, q, KindEncyclopedia,
		fmt.Sprintf("https://encyclopedia.example/wiki/%s", id),
		q.Term+" - Encyclopedia", "%s: definition, history, and practice.",
		0.85+w.jitter(id, "wiki"), "")
	docs = w.add(docs, q, KindDirectory,
		fmt.Sprintf("https://yellowpages.example/c/%s", id),
		"Find a "+q.Term+" Near You", "National directory of %s listings.",
		0.70+w.jitter(id, "yp"), "")
	docs = w.add(docs, q, KindDirectory,
		fmt.Sprintf("https://reviewhub.example/c/%s", id),
		"Best "+q.Term+" Options — Reviewed", "Top-rated %s options, ranked by reviewers.",
		0.62+w.jitter(id, "rh"), "")
	docs = w.add(docs, q, KindEncyclopedia,
		fmt.Sprintf("https://howitworks.example/%s", id),
		"How a "+q.Term+" Works", "An explainer on how a %s operates.",
		0.50+w.jitter(id, "how"), "")
	// Regional directory pages: one per region, mildly authoritative, tied
	// to that region. These are the "typical" organic results that change
	// with location — the surprising bulk of personalization in Fig. 7.
	for _, r := range w.regions {
		docs = w.add(docs, q, KindDirectory,
			fmt.Sprintf("https://%s.localguide.example/%s", r.Slug, id),
			fmt.Sprintf("%s in %s — Local Guide", q.Term, r.Name),
			"Guide to every %s in the area, with hours and directions.",
			0.52+w.jitter(id, "guide", r.Slug), r.Slug)
		docs = w.add(docs, q, KindBlog,
			fmt.Sprintf("https://%s-living.example/best-%s", r.Slug, id),
			fmt.Sprintf("Best %s Picks in %s", q.Term, r.Name),
			"Our local picks for %s this year.",
			0.44+w.jitter(id, "living", r.Slug), r.Slug)
	}
	docs = w.appendLongTail(docs, q, 6, 0.18, 0.40)
	return docs
}

func (w *Web) controversialDocs(q queries.Query) []Doc {
	id := q.ID()
	var docs []Doc
	docs = w.add(docs, q, KindEncyclopedia,
		fmt.Sprintf("https://encyclopedia.example/wiki/%s", id),
		q.Term+" - Encyclopedia", "%s: overview, arguments, and history of the debate.",
		0.90+w.jitter(id, "wiki"), "")
	docs = w.add(docs, q, KindAdvocacy,
		fmt.Sprintf("https://procon.example/%s", id),
		q.Term+" — Pros and Cons", "Balanced arguments for and against %s.",
		0.78+w.jitter(id, "procon"), "")
	rng := detrand.NewKeyed(w.seed, "controversial", id)
	if rng.Bool(0.4) {
		docs = w.add(docs, q, KindGov,
			fmt.Sprintf("https://policy.usa.gov.example/%s", id),
			q.Term+" — Federal Policy", "Official federal policy resources on %s.",
			0.74+w.jitter(id, "gov"), "")
	}
	nAdvocacy := 3 + rng.Intn(3)
	stances := []string{"for", "against", "facts", "action", "truth", "coalition"}
	for i := 0; i < nAdvocacy; i++ {
		stance := stances[i%len(stances)]
		docs = w.add(docs, q, KindAdvocacy,
			fmt.Sprintf("https://%s-%s.example/", id, stance),
			fmt.Sprintf("%s: the case %s", q.Term, stance),
			"Advocacy resources about %s.",
			rng.Range(0.42, 0.68), "")
	}
	// A couple of regions host notable opinion pages on some topics.
	for _, r := range w.regions {
		if detrand.NewKeyed(w.seed, "oped", id, r.Slug).Bool(0.18) {
			docs = w.add(docs, q, KindBlog,
				fmt.Sprintf("https://%s-observer.example/opinion/%s", r.Slug, id),
				fmt.Sprintf("%s: a view from %s", q.Term, r.Name),
				"Regional perspective on %s.",
				0.38+w.jitter(id, "oped", r.Slug), r.Slug)
		}
	}
	docs = w.appendLongTail(docs, q, 5, 0.18, 0.40)
	return docs
}

// scopeDomains maps politician scope to the domain of the official page and
// the authority tier of the entity's web presence: county officials have a
// thinner, more local web footprint than members of Congress.
func scopeProfile(scope queries.PoliticianScope) (domain string, officialAuth, wikiAuth float64) {
	switch scope {
	case queries.ScopeCountyBoard:
		return "council.cuyahogacounty.example", 0.62, 0.40
	case queries.ScopeStateLegislature:
		return "legislature.ohio.example", 0.72, 0.55
	case queries.ScopeUSCongressOhio, queries.ScopeUSCongressOther:
		return "congress.example", 0.90, 0.86
	default: // national figures
		return "whitehouse.example", 0.97, 0.95
	}
}

func (w *Web) politicianDocs(q queries.Query) []Doc {
	id := q.ID()
	domain, officialAuth, wikiAuth := scopeProfile(q.Scope)
	homeRegion := "ohio"
	if q.Scope == queries.ScopeUSCongressOther || q.Scope == queries.ScopeNationalFigure {
		homeRegion = "" // nationally covered
	}
	var docs []Doc
	docs = w.add(docs, q, KindGov,
		fmt.Sprintf("https://%s/members/%s", domain, id),
		q.Term+" — Official Page", "Official page of %s: biography, contact, votes.",
		officialAuth+w.jitter(id, "official"), "")
	docs = w.add(docs, q, KindEncyclopedia,
		fmt.Sprintf("https://encyclopedia.example/wiki/%s", id),
		q.Term+" - Encyclopedia", "%s is an American politician.",
		wikiAuth+w.jitter(id, "wiki"), "")
	docs = w.add(docs, q, KindDirectory,
		fmt.Sprintf("https://ballotfacts.example/%s", id),
		q.Term+" — Ballot Facts", "Election history and positions of %s.",
		0.68+w.jitter(id, "ballot"), "")
	docs = w.add(docs, q, KindDirectory,
		fmt.Sprintf("https://votetracker.example/%s", id),
		q.Term+" — Voting Record", "Complete voting record for %s.",
		0.58+w.jitter(id, "votes"), "")
	docs = w.add(docs, q, KindCampaign,
		fmt.Sprintf("https://%s-for-office.example/", id),
		q.Term+" for Office", "Campaign site of %s.",
		0.52+w.jitter(id, "campaign"), "")
	docs = w.add(docs, q, KindProfile,
		fmt.Sprintf("https://chirper.example/%s", id),
		q.Term+" (@"+id+")", "Latest posts from %s.",
		0.50+w.jitter(id, "social"), "")
	if homeRegion != "" {
		docs = w.add(docs, q, KindBlog,
			fmt.Sprintf("https://%s-observer.example/politics/%s", homeRegion, id),
			q.Term+" — Local Coverage", "Hometown reporting on %s.",
			0.49+w.jitter(id, "localnews"), homeRegion)
	}
	// Namesakes: common names share the web with unrelated people whose
	// pages are regionally anchored, so which namesake wins depends on
	// where the query comes from. The paper attributes the elevated
	// personalization of "Bill Johnson"/"Tim Ryan" to exactly this.
	if q.CommonName {
		professions := []string{"Realtor", "Attorney", "DDS", "Photography", "Auto Group", "Fitness"}
		rng := detrand.NewKeyed(w.seed, "namesakes", id)
		picked := detrand.Sample(rng, w.regions, min(6, len(w.regions)))
		for i, r := range picked {
			prof := professions[i%len(professions)]
			docs = w.add(docs, q, KindProfile,
				fmt.Sprintf("https://%s-%s.%s.example/", id, slug(prof), r.Slug),
				fmt.Sprintf("%s %s — %s", q.Term, prof, r.Name),
				"Website of %s (no relation).",
				rng.Range(0.45, 0.72), r.Slug)
		}
	}
	docs = w.appendLongTail(docs, q, 4, 0.18, 0.40)
	return docs
}

// appendLongTail adds n low-authority commentary pages about q, giving the
// ranker a deeper pool below the fold.
func (w *Web) appendLongTail(docs []Doc, q queries.Query, n int, authLo, authHi float64) []Doc {
	id := q.ID()
	rng := detrand.NewKeyed(w.seed, "longtail", id)
	sites := []string{"forumland", "diggest", "answerbox", "mediumrare", "pressroom", "threadline"}
	for i := 0; i < n; i++ {
		site := sites[(i+rng.Intn(len(sites)))%len(sites)]
		docs = w.add(docs, q, KindBlog,
			fmt.Sprintf("https://%s.example/t/%s-%d", site, id, i+1),
			fmt.Sprintf("Discussion: %s (%d)", q.Term, i+1),
			"Community discussion about %s.",
			rng.Range(authLo, authHi), "")
	}
	return docs
}

// RegionsFromNames builds Region values from display names.
func RegionsFromNames(names []string) []Region {
	out := make([]Region, len(names))
	for i, n := range names {
		out[i] = Region{Slug: slug(n), Name: n}
	}
	return out
}

// DefaultRegions returns the 22 state regions of the study.
func DefaultRegions() []Region {
	return RegionsFromNames([]string{
		"Alabama", "Arizona", "California", "Colorado", "Florida", "Georgia",
		"Illinois", "Kansas", "Kentucky", "Massachusetts", "Michigan",
		"Minnesota", "Missouri", "New York", "North Carolina", "Ohio",
		"Oregon", "Pennsylvania", "Texas", "Virginia", "Washington",
		"Wisconsin",
	})
}

// TitleCase is a tiny helper exported for examples that synthesize display
// names from slugs.
func TitleCase(s string) string {
	words := strings.Split(strings.ReplaceAll(s, "-", " "), " ")
	for i, w := range words {
		if w == "" {
			continue
		}
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}
