package webcorpus

import (
	"testing"

	"geoserp/internal/geo"
)

var cleveland = geo.Point{Lat: 41.4993, Lon: -81.6944}

func TestPlacesDeterministicAcrossInstances(t *testing.T) {
	a := NewPlaces(1)
	b := NewPlaces(1)
	ba := a.Near(cleveland, "coffee", 8)
	bb := b.Near(cleveland, "coffee", 8)
	if len(ba) == 0 {
		t.Fatal("no coffee shops near Cleveland")
	}
	if len(ba) != len(bb) {
		t.Fatalf("replicas disagree on count: %d vs %d", len(ba), len(bb))
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("replicas disagree at %d: %+v vs %+v", i, ba[i], bb[i])
		}
	}
}

func TestPlacesSeedChangesWorld(t *testing.T) {
	a := NewPlaces(1).Near(cleveland, "coffee", 8)
	b := NewPlaces(2).Near(cleveland, "coffee", 8)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Point != b[i].Point {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical world")
		}
	}
}

func TestPlacesNearSortedByDistance(t *testing.T) {
	p := NewPlaces(1)
	bs := p.Near(cleveland, "restaurant", 10)
	if len(bs) < 5 {
		t.Fatalf("only %d restaurants within 10km, want several", len(bs))
	}
	prev := -1.0
	for _, b := range bs {
		d := geo.DistanceKm(cleveland, b.Point)
		if d < prev-1e-9 {
			t.Fatalf("results not sorted by distance: %v after %v", d, prev)
		}
		if d > 10+1e-9 {
			t.Fatalf("business %s at %.2fkm exceeds radius", b.ID, d)
		}
		prev = d
	}
}

func TestPlacesRadiusMonotone(t *testing.T) {
	p := NewPlaces(1)
	small := p.CountNear(cleveland, "bank", 4)
	large := p.CountNear(cleveland, "bank", 12)
	if small > large {
		t.Fatalf("count at 4km (%d) exceeds count at 12km (%d)", small, large)
	}
	// The small set must be a prefix-subset of the large set.
	smallSet := map[string]bool{}
	for _, b := range p.Near(cleveland, "bank", 4) {
		smallSet[b.ID] = true
	}
	largeSet := map[string]bool{}
	for _, b := range p.Near(cleveland, "bank", 12) {
		largeSet[b.ID] = true
	}
	for id := range smallSet {
		if !largeSet[id] {
			t.Fatalf("business %s in 4km set but not 12km set", id)
		}
	}
}

func TestPlacesDensityOrdering(t *testing.T) {
	p := NewPlaces(1)
	// Dense kinds must typically outnumber sparse kinds over a sizeable
	// radius. Airports are the sparsest kind in the corpus.
	restaurants := p.CountNear(cleveland, "restaurant", 15)
	airports := p.CountNear(cleveland, "airport", 15)
	if restaurants <= airports {
		t.Fatalf("restaurants (%d) should outnumber airports (%d)", restaurants, airports)
	}
	if airports == 0 {
		// Widen until we find at least one airport: sparse, not absent.
		if p.CountNear(cleveland, "airport", 60) == 0 {
			t.Fatal("no airport within 60km — density too low")
		}
	}
}

func TestPlacesNearbyPointsShareWorld(t *testing.T) {
	p := NewPlaces(1)
	// Two points one mile apart (the paper's county granularity) must see
	// mostly the same businesses within an 8km radius.
	a := cleveland
	b := geo.Destination(cleveland, 90, geo.KmPerMile) // 1 mile east
	setA := map[string]bool{}
	for _, x := range p.Near(a, "school", 8) {
		setA[x.ID] = true
	}
	shared, total := 0, 0
	for _, x := range p.Near(b, "school", 8) {
		total++
		if setA[x.ID] {
			shared++
		}
	}
	if total == 0 {
		t.Fatal("no schools near point B")
	}
	if frac := float64(shared) / float64(total); frac < 0.7 {
		t.Fatalf("1-mile-apart points share only %.0f%% of schools", frac*100)
	}
}

func TestPlacesDistantPointsShareNothing(t *testing.T) {
	p := NewPlaces(1)
	columbus := geo.Point{Lat: 39.9612, Lon: -82.9988}
	setA := map[string]bool{}
	for _, x := range p.Near(cleveland, "school", 8) {
		setA[x.ID] = true
	}
	for _, x := range p.Near(columbus, "school", 8) {
		if setA[x.ID] {
			t.Fatalf("Cleveland and Columbus share school %s", x.ID)
		}
	}
}

func TestPlacesBrandNaming(t *testing.T) {
	p := NewPlaces(1)
	bs := p.Near(cleveland, "starbucks", 15)
	if len(bs) == 0 {
		t.Fatal("no Starbucks within 15km of Cleveland")
	}
	for _, b := range bs {
		if got := b.Kind; got != "starbucks" {
			t.Fatalf("kind = %q", got)
		}
		if want := "Starbucks"; len(b.Name) < len(want) || b.Name[:len(want)] != want {
			t.Fatalf("brand name = %q, want %q prefix", b.Name, want)
		}
		if b.Rating < 2.5 || b.Rating > 5.0 {
			t.Fatalf("rating = %v", b.Rating)
		}
		if b.Popularity < 0 || b.Popularity >= 1 {
			t.Fatalf("popularity = %v", b.Popularity)
		}
	}
}

func TestPlacesUnknownKindAndBadRadius(t *testing.T) {
	p := NewPlaces(1)
	if got := p.Near(cleveland, "spaceport", 10); got != nil {
		t.Fatalf("unknown kind returned %d businesses", len(got))
	}
	if got := p.Near(cleveland, "coffee", 0); got != nil {
		t.Fatalf("zero radius returned %d businesses", len(got))
	}
	if got := p.Near(cleveland, "coffee", -5); got != nil {
		t.Fatalf("negative radius returned %d businesses", len(got))
	}
}

func TestPlacesKindsCoverAllLocalTerms(t *testing.T) {
	p := NewPlaces(1)
	kinds := p.Kinds()
	if len(kinds) != 33 {
		t.Fatalf("places has %d kinds, want 33 (one per local term)", len(kinds))
	}
	if _, ok := p.Kind("airport"); !ok {
		t.Fatal("missing kind airport")
	}
	if _, ok := p.Kind("nope"); ok {
		t.Fatal("Kind returned ok for unknown key")
	}
	brand, _ := p.Kind("kfc")
	if !brand.Brand {
		t.Fatal("kfc not marked as brand")
	}
	generic, _ := p.Kind("hospital")
	if generic.Brand {
		t.Fatal("hospital marked as brand")
	}
}

func TestPlacesUniqueIDs(t *testing.T) {
	p := NewPlaces(1)
	seen := map[string]bool{}
	for _, kind := range []string{"coffee", "bank", "school"} {
		for _, b := range p.Near(cleveland, kind, 12) {
			if seen[b.ID] {
				t.Fatalf("duplicate business ID %s", b.ID)
			}
			seen[b.ID] = true
		}
	}
}
