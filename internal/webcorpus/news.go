package webcorpus

import (
	"fmt"
	"sort"

	"geoserp/internal/detrand"
)

// Article is a dated news story in the News vertical.
type Article struct {
	// URL uniquely identifies the article.
	URL string
	// Title is the headline.
	Title string
	// Source is the outlet slug ("worldwire", "ohio-observer").
	Source string
	// Region is the state slug of a regional outlet, or "" for a
	// national one.
	Region string
	// Topic is the query ID the article covers.
	Topic string
	// Day is the simulation day the article was published (0-based).
	Day int
	// Freshness scores how prominently the article is featured on a
	// given day; it decays as the article ages.
	Freshness float64
}

// nationalOutlets are the wire's national sources.
var nationalOutlets = []string{
	"worldwire", "capitoldaily", "theledger", "newsline",
	"nationalpost", "thecurrent", "metrotimes", "dispatchwire",
}

// NewsWire is the time-dependent news vertical. For every controversial
// topic it maintains a rolling set of national articles plus occasional
// regional coverage; the set rotates day by day, which is what makes News
// cards the (small) noise source for controversial queries in §3.1 and the
// growing personalization component in Fig. 7.
type NewsWire struct {
	seed    uint64
	regions []Region
}

// NewNewsWire creates the News vertical with the given root seed.
func NewNewsWire(seed uint64, regions []Region) *NewsWire {
	return &NewsWire{seed: seed, regions: regions}
}

// Topical returns the articles available for topic on the given simulation
// day, sorted by freshness descending (ties by URL). Day is 0-based; the
// window spans the article's publication day and the following two days.
func (n *NewsWire) Topical(topic string, day int) []Article {
	var out []Article
	// Articles published on day d remain in the pool through day d+2
	// with decaying freshness.
	for age := 0; age <= 2; age++ {
		pub := day - age
		if pub < 0 {
			continue
		}
		out = append(out, n.publishedOn(topic, pub, age)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freshness != out[j].Freshness {
			return out[i].Freshness > out[j].Freshness
		}
		return out[i].URL < out[j].URL
	})
	return out
}

// publishedOn generates the articles for topic published on day pub, scored
// for an observer age days later.
func (n *NewsWire) publishedOn(topic string, pub, age int) []Article {
	rng := detrand.NewKeyed(n.seed, "news", topic, fmt.Sprintf("day%d", pub))
	// 1–3 national stories per topic per day.
	count := 1 + rng.Intn(3)
	decay := 1.0 / float64(1+age)
	out := make([]Article, 0, count+1)
	for k := 0; k < count; k++ {
		src := detrand.Pick(rng, nationalOutlets)
		out = append(out, Article{
			URL:       fmt.Sprintf("https://%s.example/%s/day%d-%d", src, topic, pub, k),
			Title:     fmt.Sprintf("%s: developments (day %d)", TitleCase(topic), pub),
			Source:    src,
			Topic:     topic,
			Day:       pub,
			Freshness: rng.Range(0.5, 1.0) * decay,
		})
	}
	// Occasional regional coverage: a state outlet picks the story up.
	// Regional stories are mildly boosted for queries from that region by
	// the engine, which is why the News share of personalization grows
	// with distance for controversial terms (Fig. 7).
	for _, r := range n.regions {
		if detrand.NewKeyed(n.seed, "regionalnews", topic, r.Slug, fmt.Sprintf("day%d", pub)).Bool(0.04) {
			out = append(out, Article{
				URL:       fmt.Sprintf("https://%s-observer.example/news/%s/day%d", r.Slug, topic, pub),
				Title:     fmt.Sprintf("%s: what it means for %s", TitleCase(topic), r.Name),
				Source:    r.Slug + "-observer",
				Region:    r.Slug,
				Topic:     topic,
				Day:       pub,
				Freshness: detrand.NewKeyed(n.seed, "regfresh", topic, r.Slug, fmt.Sprintf("day%d", pub)).Range(0.35, 0.8) * decay,
			})
		}
	}
	return out
}
