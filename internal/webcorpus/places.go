package webcorpus

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"geoserp/internal/detrand"
	"geoserp/internal/geo"
)

// Business is an establishment in the Places vertical.
type Business struct {
	// ID is globally unique and stable across replicas.
	ID string
	// Name is the establishment's display name.
	Name string
	// Kind is the place-kind key (a local query's ID, e.g. "coffee",
	// "starbucks", "high-school").
	Kind string
	// Point is the establishment's coordinate.
	Point geo.Point
	// Rating is a review score in [2.5, 5.0].
	Rating float64
	// Popularity is a query-independent prominence prior in [0, 1];
	// prominent places rank well even when slightly farther away, the
	// way real map search prefers a well-known airport over a close
	// airstrip.
	Popularity float64
	// URL is the establishment's web page.
	URL string
}

// PlaceKind describes how densely a kind of establishment occurs and how it
// is named.
type PlaceKind struct {
	// Key is the kind identifier (matches local query IDs).
	Key string
	// Density is the expected number of establishments per grid cell
	// (one cell is roughly 2 × 2.5 miles).
	Density float64
	// Brand marks chain brands: all establishments share the brand name
	// and a store-locator-style URL. The paper finds brands do not yield
	// Maps cards and show little noise.
	Brand bool
	// NameSuffixes are generic-name templates ("X High School").
	NameSuffixes []string
}

// placeKinds enumerates the place kinds for all 33 local study terms.
// Densities are tuned so that sparse civic kinds (airport, hospital,
// college) have few nearby candidates — making their rankings the most
// sensitive to the query coordinate, as Figures 3 and 6 show.
var placeKinds = []PlaceKind{
	// Brand chains.
	{Key: "chipotle", Density: 0.22, Brand: true},
	{Key: "starbucks", Density: 0.85, Brand: true},
	{Key: "dairy-queen", Density: 0.25, Brand: true},
	{Key: "mcdonalds", Density: 0.70, Brand: true},
	{Key: "subway", Density: 0.80, Brand: true},
	{Key: "burger-king", Density: 0.45, Brand: true},
	{Key: "kfc", Density: 0.35, Brand: true},
	{Key: "wendy-s", Density: 0.45, Brand: true},
	{Key: "chick-fil-a", Density: 0.20, Brand: true},
	// Dense generic establishments.
	{Key: "restaurant", Density: 2.6, NameSuffixes: []string{"Family Restaurant", "Grill", "Diner", "Bistro", "Kitchen"}},
	{Key: "fast-food", Density: 1.9, NameSuffixes: []string{"Express Burgers", "Quick Eats", "Drive-Thru", "Snack Shack"}},
	{Key: "coffee", Density: 1.5, NameSuffixes: []string{"Coffee House", "Espresso Bar", "Roasters", "Cafe"}},
	{Key: "bank", Density: 1.4, NameSuffixes: []string{"Savings Bank", "Credit Union", "National Bank", "Trust"}},
	{Key: "burger", Density: 1.1, NameSuffixes: []string{"Burger Joint", "Burgers", "Burger Bar"}},
	{Key: "sushi", Density: 0.55, NameSuffixes: []string{"Sushi Bar", "Sushi House", "Japanese Restaurant"}},
	{Key: "park", Density: 1.8, NameSuffixes: []string{"Park", "Memorial Park", "Community Park", "Playground"}},
	{Key: "school", Density: 1.7, NameSuffixes: []string{"School", "Community School", "Academy"}},
	{Key: "elementary-school", Density: 1.0, NameSuffixes: []string{"Elementary School"}},
	{Key: "middle-school", Density: 0.6, NameSuffixes: []string{"Middle School"}},
	{Key: "high-school", Density: 0.6, NameSuffixes: []string{"High School"}},
	{Key: "bus", Density: 1.9, NameSuffixes: []string{"Bus Terminal", "Transit Center", "Bus Stop"}},
	// Medium-density civic establishments.
	{Key: "post-office", Density: 0.50, NameSuffixes: []string{"Post Office"}},
	{Key: "polling-place", Density: 0.85, NameSuffixes: []string{"Polling Station", "Community Center", "Precinct Hall"}},
	{Key: "police-station", Density: 0.40, NameSuffixes: []string{"Police Department", "Police Station"}},
	{Key: "fire-station", Density: 0.55, NameSuffixes: []string{"Fire Station", "Fire Department"}},
	{Key: "station", Density: 0.65, NameSuffixes: []string{"Station", "Transit Station", "Central Station"}},
	{Key: "train", Density: 0.35, NameSuffixes: []string{"Train Station", "Rail Depot"}},
	{Key: "rail", Density: 0.30, NameSuffixes: []string{"Rail Station", "Light Rail Stop"}},
	{Key: "football", Density: 0.50, NameSuffixes: []string{"Football Field", "Stadium", "Athletic Complex"}},
	// Sparse institutions: few candidates near any point, so ranking is
	// highly coordinate-sensitive.
	{Key: "hospital", Density: 0.22, NameSuffixes: []string{"General Hospital", "Medical Center", "Regional Hospital"}},
	{Key: "college", Density: 0.18, NameSuffixes: []string{"College", "Community College"}},
	{Key: "university", Density: 0.14, NameSuffixes: []string{"University", "State University"}},
	{Key: "airport", Density: 0.05, NameSuffixes: []string{"Regional Airport", "Municipal Airport", "International Airport"}},
}

// brandDisplay maps brand kind keys to display names.
var brandDisplay = map[string]string{
	"chipotle":    "Chipotle Mexican Grill",
	"starbucks":   "Starbucks",
	"dairy-queen": "Dairy Queen",
	"mcdonalds":   "McDonald's",
	"subway":      "Subway",
	"burger-king": "Burger King",
	"kfc":         "KFC",
	"wendy-s":     "Wendy's",
	"chick-fil-a": "Chick-fil-A",
}

// neighborhoodNames seed generic establishment names.
var neighborhoodNames = []string{
	"Riverside", "Oakwood", "Lakeview", "Maplewood", "Hillcrest",
	"Brookside", "Fairview", "Parkdale", "Westgate", "Eastmoor",
	"Northfield", "Southpoint", "Cedar Hills", "Willow Creek", "Birchwood",
	"Stonebridge", "Meadowbrook", "Highland", "Glenville", "Summit Ridge",
}

// Places is the geo-generative business directory. Establishments are
// generated per grid cell, deterministically from the root seed, so any two
// queries — from any replica — agree exactly on which businesses exist.
//
// The grid uses cells of cellLatDeg × cellLonDeg degrees (~2 × ~2.5 miles at
// Ohio latitudes). Nearby coordinates therefore share almost all of their
// candidate businesses, coordinates ~100 miles apart share none — the
// geometric root of the paper's "personalization grows with distance".
type Places struct {
	seed       uint64
	kinds      map[string]PlaceKind
	cellLatDeg float64
	cellLonDeg float64

	// cache memoizes generated cells: a crawl queries the same vantage
	// points tens of thousands of times, and generation is deterministic,
	// so the cache is a pure win. Guarded by mu.
	mu    sync.RWMutex
	cache map[cellKindKey][]Business
}

type cellKindKey struct {
	c    cell
	kind string
}

// NewPlaces creates the Places vertical with the given root seed and the
// study's 33 place kinds.
func NewPlaces(seed uint64) *Places {
	return NewPlacesCustom(seed, placeKinds)
}

// NewPlacesCustom creates a Places vertical with caller-supplied kinds —
// the extension point for studies of other countries or term sets. Kinds
// with empty keys or non-positive densities are skipped; a non-brand kind
// without name suffixes gets a generic one.
func NewPlacesCustom(seed uint64, kinds []PlaceKind) *Places {
	p := &Places{
		seed:       seed,
		kinds:      make(map[string]PlaceKind, len(kinds)),
		cellLatDeg: 0.030,
		cellLonDeg: 0.038,
		cache:      make(map[cellKindKey][]Business),
	}
	for _, k := range kinds {
		if k.Key == "" || k.Density <= 0 {
			continue
		}
		if !k.Brand && len(k.NameSuffixes) == 0 {
			k.NameSuffixes = []string{TitleCase(k.Key)}
		}
		p.kinds[k.Key] = k
	}
	return p
}

// DefaultPlaceKinds returns a copy of the study's 33 place kinds, usable
// as a starting point for custom corpora.
func DefaultPlaceKinds() []PlaceKind {
	out := make([]PlaceKind, len(placeKinds))
	copy(out, placeKinds)
	return out
}

// Kind returns the PlaceKind for key, if it exists.
func (p *Places) Kind(key string) (PlaceKind, bool) {
	k, ok := p.kinds[key]
	return k, ok
}

// Kinds returns all kind keys, sorted.
func (p *Places) Kinds() []string {
	out := make([]string, 0, len(p.kinds))
	for k := range p.kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// cell identifies one grid cell.
type cell struct{ i, j int }

// cellOf returns the cell containing pt.
func (p *Places) cellOf(pt geo.Point) cell {
	return cell{
		i: int(math.Floor(pt.Lat / p.cellLatDeg)),
		j: int(math.Floor(pt.Lon / p.cellLonDeg)),
	}
}

// Near returns every establishment of the given kind within radiusKm of pt,
// sorted by distance from pt (ties broken by ID for determinism).
func (p *Places) Near(pt geo.Point, kindKey string, radiusKm float64) []Business {
	kind, ok := p.kinds[kindKey]
	if !ok || radiusKm <= 0 {
		return nil
	}
	center := p.cellOf(pt)
	// Conservative cell radius: one cell is ~3.3 km tall and ~3.2 km wide
	// at 41°N; pad by one cell to avoid boundary misses.
	latKmPerCell := p.cellLatDeg * 111.32
	lonKmPerCell := p.cellLonDeg * 111.32 * math.Cos(pt.Lat*math.Pi/180)
	if lonKmPerCell < 0.5 {
		lonKmPerCell = 0.5
	}
	di := int(math.Ceil(radiusKm/latKmPerCell)) + 1
	dj := int(math.Ceil(radiusKm/lonKmPerCell)) + 1

	var out []Business
	for i := center.i - di; i <= center.i+di; i++ {
		for j := center.j - dj; j <= center.j+dj; j++ {
			for _, b := range p.cellBusinessesCached(cell{i, j}, kind) {
				if geo.DistanceKm(pt, b.Point) <= radiusKm {
					out = append(out, b)
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		da := geo.DistanceKm(pt, out[a].Point)
		db := geo.DistanceKm(pt, out[b].Point)
		if da != db {
			return da < db
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// cellBusinessesCached returns the memoized establishments of one kind in
// one cell, generating them on first access.
func (p *Places) cellBusinessesCached(c cell, kind PlaceKind) []Business {
	key := cellKindKey{c: c, kind: kind.Key}
	p.mu.RLock()
	bs, ok := p.cache[key]
	p.mu.RUnlock()
	if ok {
		return bs
	}
	bs = p.cellBusinesses(c, kind)
	p.mu.Lock()
	p.cache[key] = bs
	p.mu.Unlock()
	return bs
}

// cellBusinesses deterministically generates the establishments of one kind
// within one grid cell.
func (p *Places) cellBusinesses(c cell, kind PlaceKind) []Business {
	rng := detrand.NewKeyed(p.seed, "places", kind.Key, fmt.Sprintf("%d:%d", c.i, c.j))
	// Sample a count with mean kind.Density: floor + Bernoulli remainder.
	n := int(kind.Density)
	if rng.Bool(kind.Density - float64(n)) {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]Business, 0, n)
	for k := 0; k < n; k++ {
		lat := (float64(c.i) + rng.Float64()) * p.cellLatDeg
		lon := (float64(c.j) + rng.Float64()) * p.cellLonDeg
		id := fmt.Sprintf("%s-%d-%d-%d", kind.Key, c.i, c.j, k)
		var name, url string
		if kind.Brand {
			display := brandDisplay[kind.Key]
			if display == "" {
				display = TitleCase(kind.Key)
			}
			hood := detrand.Pick(rng, neighborhoodNames)
			name = fmt.Sprintf("%s — %s", display, hood)
			url = fmt.Sprintf("https://locations.%s.example/store/%d-%d-%d", kind.Key, c.i, c.j, k)
		} else {
			hood := detrand.Pick(rng, neighborhoodNames)
			suffix := detrand.Pick(rng, kind.NameSuffixes)
			name = fmt.Sprintf("%s %s", hood, suffix)
			url = fmt.Sprintf("https://%s.%s.example/", slug(name), kind.Key)
		}
		out = append(out, Business{
			ID:         id,
			Name:       name,
			Kind:       kind.Key,
			Point:      geo.Point{Lat: lat, Lon: lon},
			Rating:     math.Round(rng.Range(2.5, 5.0)*10) / 10,
			Popularity: rng.Float64(),
			URL:        url,
		})
	}
	return out
}

// CountNear returns the number of establishments of kindKey within radiusKm
// of pt; cheaper than Near when only the count matters.
func (p *Places) CountNear(pt geo.Point, kindKey string, radiusKm float64) int {
	return len(p.Near(pt, kindKey, radiusKm))
}
