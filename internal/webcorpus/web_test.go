package webcorpus

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"geoserp/internal/queries"
)

func testWeb(t *testing.T) *Web {
	t.Helper()
	return NewWeb(1, queries.StudyCorpus(), DefaultRegions())
}

func TestWebCoversEveryQuery(t *testing.T) {
	w := testWeb(t)
	c := queries.StudyCorpus()
	if got := len(w.Topics()); got != c.Len() {
		t.Fatalf("web has %d topics, want %d", got, c.Len())
	}
	for _, q := range c.All() {
		docs := w.Docs(q.ID())
		if len(docs) < 5 {
			t.Fatalf("topic %q has only %d docs", q.ID(), len(docs))
		}
	}
}

func TestWebDocsSortedByAuthority(t *testing.T) {
	w := testWeb(t)
	for _, topic := range []string{"coffee", "gay-marriage", "barack-obama", "starbucks"} {
		docs := w.Docs(topic)
		for i := 1; i < len(docs); i++ {
			if docs[i-1].Authority < docs[i].Authority {
				t.Fatalf("topic %s docs not sorted at %d", topic, i)
			}
		}
	}
}

func TestWebDocFields(t *testing.T) {
	w := testWeb(t)
	seen := map[string]bool{}
	for _, topic := range w.Topics() {
		for _, d := range w.Docs(topic) {
			if d.URL == "" || d.Title == "" || d.Snippet == "" {
				t.Fatalf("doc with empty field: %+v", d)
			}
			if !strings.HasPrefix(d.URL, "https://") {
				t.Fatalf("non-https URL %q", d.URL)
			}
			if d.Topic != topic {
				t.Fatalf("doc topic %q filed under %q", d.Topic, topic)
			}
			if d.Authority < 0 || d.Authority > 1 {
				t.Fatalf("authority %v for %s", d.Authority, d.URL)
			}
			if seen[d.URL] {
				t.Fatalf("duplicate URL across corpus: %s", d.URL)
			}
			seen[d.URL] = true
		}
	}
}

func TestWebBrandVsGenericStructure(t *testing.T) {
	w := testWeb(t)
	// Brands get an official site as the top result.
	top := w.Docs("starbucks")[0]
	if top.Kind != KindOfficial {
		t.Fatalf("top starbucks doc kind = %v, want official", top.Kind)
	}
	// Generic terms get regional directory pages; brands do not.
	regional := 0
	for _, d := range w.Docs("coffee") {
		if d.Region != "" {
			regional++
		}
	}
	if regional < 22 {
		t.Fatalf("coffee has %d regional docs, want >= 22 (one per region)", regional)
	}
	for _, d := range w.Docs("starbucks") {
		if d.Region != "" {
			t.Fatalf("brand topic has regional doc %s", d.URL)
		}
	}
}

func TestWebCommonNameNamesakes(t *testing.T) {
	w := testWeb(t)
	countProfiles := func(topic string) (regional int) {
		for _, d := range w.Docs(topic) {
			if d.Kind == KindProfile && d.Region != "" {
				regional++
			}
		}
		return regional
	}
	if got := countProfiles("bill-johnson"); got < 4 {
		t.Fatalf("bill-johnson has %d regional namesake profiles, want >= 4", got)
	}
	if got := countProfiles("barack-obama"); got != 0 {
		t.Fatalf("barack-obama has %d regional namesake profiles, want 0", got)
	}
}

func TestWebPoliticianScopeAuthority(t *testing.T) {
	w := testWeb(t)
	topAuth := func(topic string) float64 {
		return w.Docs(topic)[0].Authority
	}
	// National figures must have a stronger top result than county-board
	// members — the mechanism behind "politicians essentially unaffected"
	// nationally vs. slight local coverage differences for local officials.
	obama := topAuth("barack-obama")
	board := topAuth("margaret-kowalski")
	if obama <= board {
		t.Fatalf("obama top authority %v <= county board %v", obama, board)
	}
}

func TestWebByURL(t *testing.T) {
	w := testWeb(t)
	d := w.Docs("coffee")[0]
	got, ok := w.ByURL(d.URL)
	if !ok || got.URL != d.URL {
		t.Fatalf("ByURL round-trip failed for %s", d.URL)
	}
	if _, ok := w.ByURL("https://nope.example/"); ok {
		t.Fatal("ByURL ok for missing URL")
	}
}

func TestWebDeterministic(t *testing.T) {
	a := NewWeb(7, queries.StudyCorpus(), DefaultRegions())
	b := NewWeb(7, queries.StudyCorpus(), DefaultRegions())
	if a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for _, topic := range []string{"coffee", "tim-ryan", "health"} {
		da, db := a.Docs(topic), b.Docs(topic)
		if len(da) != len(db) {
			t.Fatalf("topic %s doc counts differ", topic)
		}
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("topic %s differs at %d:\n%+v\n%+v", topic, i, da[i], db[i])
			}
		}
	}
}

func TestRegionsFromNames(t *testing.T) {
	rs := RegionsFromNames([]string{"New York", "Ohio"})
	if rs[0].Slug != "new-york" || rs[0].Name != "New York" {
		t.Fatalf("region = %+v", rs[0])
	}
	if rs[1].Slug != "ohio" {
		t.Fatalf("region = %+v", rs[1])
	}
	if len(DefaultRegions()) != 22 {
		t.Fatalf("DefaultRegions = %d, want 22", len(DefaultRegions()))
	}
}

func TestSlugAndTitleCase(t *testing.T) {
	cases := map[string]string{
		"Chick-fil-A":     "chick-fil-a",
		"Wendy's":         "wendy-s",
		"  Post  Office ": "post-office",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Fatalf("slug(%q) = %q, want %q", in, got, want)
		}
	}
	if got := TitleCase("gay-marriage"); got != "Gay Marriage" {
		t.Fatalf("TitleCase = %q", got)
	}
}

func TestDocKindString(t *testing.T) {
	kinds := []DocKind{KindOfficial, KindEncyclopedia, KindDirectory, KindGov,
		KindCampaign, KindProfile, KindAdvocacy, KindBlog}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad kind label %q", s)
		}
		seen[s] = true
	}
	if DocKind(99).String() == "" {
		t.Fatal("unknown kind empty label")
	}
}

// TestWorldFingerprint hashes the entire generated world — every static
// doc, a sample of places, and a week of news — and compares two
// independently built instances. Any nondeterminism in corpus generation
// would break campaign reproducibility, so this is the canary.
func TestWorldFingerprint(t *testing.T) {
	fingerprint := func() uint64 {
		h := fnv.New64a()
		w := NewWeb(3, queries.StudyCorpus(), DefaultRegions())
		for _, topic := range w.Topics() {
			for _, d := range w.Docs(topic) {
				fmt.Fprintf(h, "%s|%s|%.9f|%s\n", d.URL, d.Title, d.Authority, d.Region)
			}
		}
		p := NewPlaces(3)
		for _, kind := range p.Kinds() {
			for _, b := range p.Near(cleveland, kind, 12) {
				fmt.Fprintf(h, "%s|%s|%.9f|%.9f\n", b.ID, b.Name, b.Point.Lat, b.Point.Lon)
			}
		}
		n := NewNewsWire(3, DefaultRegions())
		for day := 0; day < 7; day++ {
			for _, a := range n.Topical("gay-marriage", day) {
				fmt.Fprintf(h, "%s|%.9f\n", a.URL, a.Freshness)
			}
		}
		return h.Sum64()
	}
	if fingerprint() != fingerprint() {
		t.Fatal("world generation is not deterministic")
	}
}
