package report

import (
	"fmt"
	"strings"

	"geoserp/internal/analysis"
	"geoserp/internal/stats"
	"geoserp/internal/storage"
)

// This file renders the follow-up analyses the paper proposes in §5 —
// location clustering, domain-level content analysis, and the continuous
// personalization-vs-distance curve.

// Clusters renders the location-clustering analysis (the paper's Figure 8a
// observation that some county locations receive near-identical results).
func Clusters(granularity string, clusters []analysis.Cluster, threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Location clusters at %s granularity (link threshold %.2f):\n", granularity, threshold)
	b.WriteString(strings.Repeat("-", 66) + "\n")
	for i, c := range clusters {
		fmt.Fprintf(&b, "cluster %d (%d locations, intra-dist %.2f):\n", i+1, len(c.Locations), c.MeanIntraDist)
		for _, loc := range c.Locations {
			fmt.Fprintf(&b, "    %s\n", loc)
		}
	}
	if len(clusters) == 0 {
		b.WriteString("  (no locations)\n")
	}
	return b.String()
}

// ClustersCSV exports the clustering as a table.
func ClustersCSV(granularity string, clusters []analysis.Cluster) *storage.Table {
	t := &storage.Table{Header: []string{"granularity", "cluster", "location", "intra_dist"}}
	for i, c := range clusters {
		for _, loc := range c.Locations {
			t.AddRow(granularity, fmt.Sprint(i+1), loc, fmtF(c.MeanIntraDist))
		}
	}
	return t
}

// DomainBias renders the content analysis: the most location-biased
// domains.
func DomainBias(rows []analysis.DomainBias, limit int) string {
	var b strings.Builder
	b.WriteString("Content analysis (§5 follow-up): domains served unevenly across locations.\n")
	fmt.Fprintf(&b, "%-44s %10s %8s  %s\n", "domain", "presence", "spread", "top location")
	b.WriteString(strings.Repeat("-", 92) + "\n")
	for i, r := range rows {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&b, "  … %d more\n", len(rows)-limit)
			break
		}
		fmt.Fprintf(&b, "%-44s %10s %8s  %s (%.2f)\n",
			r.Domain, fmtF(r.MeanPresence), fmtF(r.Spread), r.TopLocation, r.TopPresence)
	}
	return b.String()
}

// DomainBiasCSV exports the content analysis.
func DomainBiasCSV(rows []analysis.DomainBias) *storage.Table {
	t := &storage.Table{Header: []string{"domain", "mean_presence", "spread", "top_location", "top_presence"}}
	for _, r := range rows {
		t.AddRow(r.Domain, fmtF(r.MeanPresence), fmtF(r.Spread), r.TopLocation, fmtF(r.TopPresence))
	}
	return t
}

// ScopeBreakdown renders the politician-scope analysis (§2.1's open
// question: how are officials treated inside vs outside their home
// territory?).
func ScopeBreakdown(cells []analysis.ScopeCell) string {
	var b strings.Builder
	b.WriteString("Politician personalization by office scope (§2.1 follow-up):\n")
	fmt.Fprintf(&b, "%-20s %-22s %10s %10s %12s %6s\n",
		"scope", "granularity", "edit", "jaccard", "noise_edit", "n")
	b.WriteString(strings.Repeat("-", 86) + "\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-20s %-22s %10s %10s %12s %6d\n",
			c.Scope, c.Granularity,
			fmtF(c.Edit.Mean), fmtF(c.Jaccard.Mean), fmtF(c.NoiseEdit), c.Edit.N)
	}
	return b.String()
}

// ScopeBreakdownCSV exports the scope analysis.
func ScopeBreakdownCSV(cells []analysis.ScopeCell) *storage.Table {
	t := &storage.Table{Header: []string{"scope", "granularity", "edit_mean", "jaccard_mean", "noise_edit", "n"}}
	for _, c := range cells {
		t.AddRow(c.Scope, c.Granularity, fmtF(c.Edit.Mean), fmtF(c.Jaccard.Mean),
			fmtF(c.NoiseEdit), fmt.Sprint(c.Edit.N))
	}
	return t
}

// CommonNames renders the name-ambiguity contrast (the paper's "Bill
// Johnson"/"Tim Ryan" observation).
func CommonNames(cells []analysis.CommonNameCell) string {
	var b strings.Builder
	b.WriteString("Common-name ambiguity: ambiguous politician names vs the rest (§3.2):\n")
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "granularity", "common edit", "others edit")
	b.WriteString(strings.Repeat("-", 54) + "\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-22s %14s %14s\n", c.Granularity, fmtF(c.CommonEdit), fmtF(c.OtherEdit))
	}
	return b.String()
}

// DistanceDecay renders the continuous personalization-vs-distance curve.
func DistanceDecay(bins []analysis.DecayBin, fit stats.Linear) string {
	var b strings.Builder
	b.WriteString("Personalization vs distance (continuous; geometric distance bins):\n")
	fmt.Fprintf(&b, "%16s %12s %12s %8s  %s\n", "distance", "edit", "jaccard", "n", "")
	b.WriteString(strings.Repeat("-", 66) + "\n")
	for _, bin := range bins {
		bar := ""
		if bin.Edit.Mean > 0 {
			n := int(bin.Edit.Mean)
			if n > 30 {
				n = 30
			}
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&b, "%6.0f-%-6.0fkm %12s %12s %8d  %s\n",
			bin.LoKm, bin.HiKm, fmtF(bin.Edit.Mean), fmtF(bin.Jaccard.Mean), bin.Edit.N, bar)
	}
	fmt.Fprintf(&b, "fit: edit ≈ %.2f·log10(km) + %.2f  (R²=%.2f)\n", fit.Slope, fit.Intercept, fit.R2)
	return b.String()
}

// DistanceDecayCSV exports the decay curve.
func DistanceDecayCSV(bins []analysis.DecayBin) *storage.Table {
	t := &storage.Table{Header: []string{"lo_km", "hi_km", "edit_mean", "jaccard_mean", "n"}}
	for _, bin := range bins {
		t.AddRow(fmt.Sprintf("%.0f", bin.LoKm), fmt.Sprintf("%.0f", bin.HiKm),
			fmtF(bin.Edit.Mean), fmtF(bin.Jaccard.Mean), fmt.Sprint(bin.Edit.N))
	}
	return t
}

// Reordering renders the composition-vs-reordering decomposition built on
// Kendall's tau and RBO.
func Reordering(cells []analysis.ReorderCell) string {
	var b strings.Builder
	b.WriteString("Composition vs reordering (Kendall tau / RBO decomposition):\n")
	fmt.Fprintf(&b, "%-14s %-22s %12s %12s %10s\n",
		"category", "granularity", "composition", "reordering", "rbo")
	b.WriteString(strings.Repeat("-", 76) + "\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-14s %-22s %12s %12s %10s\n",
			c.Category, c.Granularity,
			fmtF(c.Composition.Mean), fmtF(c.Reordering.Mean), fmtF(c.RBO.Mean))
	}
	b.WriteString("(composition = 1-Jaccard; reordering = normalized Kendall disagreement of shared results)\n")
	return b.String()
}

// ReorderingCSV exports the decomposition.
func ReorderingCSV(cells []analysis.ReorderCell) *storage.Table {
	t := &storage.Table{Header: []string{"category", "granularity", "composition", "reordering", "rbo"}}
	for _, c := range cells {
		t.AddRow(c.Category, c.Granularity,
			fmtF(c.Composition.Mean), fmtF(c.Reordering.Mean), fmtF(c.RBO.Mean))
	}
	return t
}
