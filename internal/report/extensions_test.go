package report

import (
	"strings"
	"testing"

	"geoserp/internal/analysis"
	"geoserp/internal/stats"
)

func TestClustersRendering(t *testing.T) {
	clusters := []analysis.Cluster{
		{Locations: []string{"d/1", "d/2"}, MeanIntraDist: 0.5},
		{Locations: []string{"d/3"}},
	}
	out := Clusters("county", clusters, 4.5)
	for _, want := range []string{"county", "4.50", "cluster 1 (2 locations", "d/3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(Clusters("county", nil, 1), "(no locations)") {
		t.Fatal("empty clusters not rendered")
	}
	tbl := ClustersCSV("county", clusters)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestDomainBiasRendering(t *testing.T) {
	rows := []analysis.DomainBias{
		{Domain: "ohio.localguide.example", MeanPresence: 0.3, Spread: 0.9, TopLocation: "county/cuyahoga", TopPresence: 0.95},
		{Domain: "encyclopedia.example", MeanPresence: 1.0, Spread: 0.0, TopLocation: "county/athens", TopPresence: 1.0},
	}
	out := DomainBias(rows, 0)
	if !strings.Contains(out, "ohio.localguide.example") || !strings.Contains(out, "0.900") {
		t.Fatalf("out = %s", out)
	}
	limited := DomainBias(rows, 1)
	if !strings.Contains(limited, "… 1 more") {
		t.Fatalf("limit not applied: %s", limited)
	}
	if tbl := DomainBiasCSV(rows); len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestDistanceDecayRendering(t *testing.T) {
	bins := []analysis.DecayBin{
		{LoKm: 1, HiKm: 2, Edit: stats.Summary{N: 4, Mean: 2}, Jaccard: stats.Summary{N: 4, Mean: 0.9}},
		{LoKm: 256, HiKm: 512, Edit: stats.Summary{N: 9, Mean: 9.5}, Jaccard: stats.Summary{N: 9, Mean: 0.5}},
	}
	fit := stats.Linear{Slope: 2.5, Intercept: 1.2, R2: 0.8}
	out := DistanceDecay(bins, fit)
	for _, want := range []string{"2.50·log10", "256-512", "9.500", "#########"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if tbl := DistanceDecayCSV(bins); len(tbl.Rows) != 2 || tbl.Rows[1][0] != "256" {
		t.Fatalf("csv = %+v", DistanceDecayCSV(bins).Rows)
	}
}
