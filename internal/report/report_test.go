package report

import (
	"bytes"
	"strings"
	"testing"

	"geoserp/internal/analysis"
	"geoserp/internal/stats"
)

func sampleNoise() []analysis.NoiseCell {
	return []analysis.NoiseCell{
		{Granularity: "county", Category: "local",
			Jaccard: stats.Summary{N: 10, Mean: 0.92, StdDev: 0.05},
			Edit:    stats.Summary{N: 10, Mean: 3.4, StdDev: 1.2}},
		{Granularity: "state", Category: "politician",
			Jaccard: stats.Summary{N: 8, Mean: 0.99, StdDev: 0.01},
			Edit:    stats.Summary{N: 8, Mean: 0.4, StdDev: 0.3}},
	}
}

func TestFigure2Rendering(t *testing.T) {
	out := Figure2(sampleNoise())
	for _, want := range []string{"Figure 2", "county", "local", "0.920", "3.400"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure2 output missing %q:\n%s", want, out)
		}
	}
	tbl := Figure2CSV(sampleNoise())
	if len(tbl.Rows) != 2 {
		t.Fatalf("csv rows = %d", len(tbl.Rows))
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "county,local,0.920") {
		t.Fatalf("csv = %s", buf.String())
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1([]string{"Gay Marriage", "Progressive Tax"})
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Gay Marriage") {
		t.Fatalf("out = %s", out)
	}
}

func TestPerTermFigures(t *testing.T) {
	terms := []analysis.TermSeries{
		{Term: "Starbucks", EditByGranularity: map[string]float64{"county": 1, "state": 2, "national": 3}},
		{Term: "School", EditByGranularity: map[string]float64{"county": 4, "state": 8, "national": 12}},
	}
	f3 := Figure3(terms)
	f6 := Figure6(terms)
	if !strings.Contains(f3, "Figure 3") || !strings.Contains(f6, "Figure 6") {
		t.Fatal("figure titles missing")
	}
	if !strings.Contains(f3, "Starbucks") || !strings.Contains(f3, "12.000") {
		t.Fatalf("f3 = %s", f3)
	}
	if tbl := Figure3CSV(terms); len(tbl.Rows) != 2 || tbl.Rows[1][3] != "12.000" {
		t.Fatalf("csv = %+v", tbl.Rows)
	}
	if tbl := Figure6CSV(terms); len(tbl.Rows) != 2 {
		t.Fatalf("csv rows = %d", len(tbl.Rows))
	}
}

func TestFigure4Rendering(t *testing.T) {
	attr := []analysis.TypeAttribution{{Term: "School", All: 4, Maps: 1, News: 0}}
	out := Figure4(attr)
	if !strings.Contains(out, "School") || !strings.Contains(out, "4.000") {
		t.Fatalf("out = %s", out)
	}
	if tbl := Figure4CSV(attr); tbl.Rows[0][1] != "4.000" {
		t.Fatalf("csv = %+v", tbl.Rows)
	}
}

func TestFigure5Rendering(t *testing.T) {
	cells := []analysis.PersonalizationCell{{
		Granularity: "national", Category: "local",
		Jaccard:      stats.Summary{N: 5, Mean: 0.55},
		Edit:         stats.Summary{N: 5, Mean: 8.9},
		NoiseJaccard: 0.91, NoiseEdit: 4.0,
	}}
	out := Figure5(cells)
	for _, want := range []string{"Figure 5", "national", "8.900", "4.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %s", want, out)
		}
	}
	if tbl := Figure5CSV(cells); tbl.Rows[0][3] != "8.900" {
		t.Fatalf("csv = %+v", tbl.Rows)
	}
}

func TestFigure7Rendering(t *testing.T) {
	cells := []analysis.BreakdownCell{{
		Category: "local", Granularity: "state",
		All: 7, Maps: 2, News: 0, Other: 4,
	}}
	out := Figure7(cells)
	if !strings.Contains(out, "0.333") { // maps share 2/6
		t.Fatalf("maps share missing: %s", out)
	}
	if tbl := Figure7CSV(cells); tbl.Rows[0][6] != "0.333" {
		t.Fatalf("csv = %+v", tbl.Rows)
	}
}

func TestFigure8Rendering(t *testing.T) {
	series := []analysis.ConsistencySeries{{
		Granularity: "county",
		Baseline:    "district/district-01",
		Days:        []int{0, 1},
		NoiseFloor:  []float64{3.0, 3.1},
		PerLocation: map[string][]float64{
			"district/district-02": {5.0, 5.2},
			"district/district-03": {4.0, 4.1},
		},
	}}
	out := Figure8(series)
	for _, want := range []string{"Figure 8", "baseline=district/district-01",
		"noise (control)", "district/district-02", "5.200"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	tbl := Figure8CSV(series)
	// 2 noise rows + 2 locations × 2 days.
	if len(tbl.Rows) != 6 {
		t.Fatalf("csv rows = %d", len(tbl.Rows))
	}
	// Locations must come out sorted.
	if tbl.Rows[2][1] != "district/district-02" {
		t.Fatalf("rows = %+v", tbl.Rows)
	}
}

func TestValidationAndDemographics(t *testing.T) {
	res := analysis.ValidationResult{
		Terms: 6, Comparisons: 66, MeanResultOverlap: 0.94, FractionIdenticalPages: 0.5,
	}
	out := Validation(res)
	if !strings.Contains(out, "94.0%") {
		t.Fatalf("out = %s", out)
	}
	rows := []analysis.FeatureCorrelation{
		{Feature: "distance_miles", Pearson: 0.12, Spearman: 0.10, N: 105},
		{Feature: "median_income", Pearson: -0.03, Spearman: -0.02, N: 105},
	}
	dout := Demographics(rows)
	if !strings.Contains(dout, "median_income") || !strings.Contains(dout, "-0.030") {
		t.Fatalf("dout = %s", dout)
	}
	if tbl := DemographicsCSV(rows); len(tbl.Rows) != 2 {
		t.Fatalf("csv rows = %d", len(tbl.Rows))
	}
}
