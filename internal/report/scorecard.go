package report

import (
	"fmt"
	"strings"

	"geoserp/internal/analysis"
)

// Scorecard renders the fidelity scorecard: one PASS/FAIL line per paper
// claim, with the measured values.
func Scorecard(checks []analysis.Check) string {
	var b strings.Builder
	b.WriteString("Fidelity scorecard: the paper's findings vs this dataset.\n")
	b.WriteString(strings.Repeat("=", 74) + "\n")
	pass := 0
	for _, c := range checks {
		mark := "FAIL"
		if c.Pass {
			mark = "PASS"
			pass++
		}
		fmt.Fprintf(&b, "[%s] %s\n       %s\n", mark, c.Claim, c.Detail)
	}
	fmt.Fprintf(&b, "%d/%d claims reproduced\n", pass, len(checks))
	return b.String()
}
