package report

import (
	"encoding/xml"
	"strings"
	"testing"

	"geoserp/internal/analysis"
	"geoserp/internal/stats"
)

func assertSVG(t *testing.T, svg string, wants ...string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	for _, w := range wants {
		if !strings.Contains(svg, w) {
			t.Fatalf("SVG missing %q", w)
		}
	}
}

func TestFigure2SVG(t *testing.T) {
	cells := sampleNoise()
	assertSVG(t, Figure2SVG(cells), "Figure 2", "County (Cuyahoga)", "Local", "<rect")
	assertSVG(t, Figure2JaccardSVG(cells), "Jaccard")
}

func TestFigure5SVG(t *testing.T) {
	cells := []analysis.PersonalizationCell{
		{Granularity: "county", Category: "local",
			Edit: stats.Summary{Mean: 6.7, StdDev: 2.1}, NoiseEdit: 4.3},
		{Granularity: "national", Category: "local",
			Edit: stats.Summary{Mean: 9.2, StdDev: 2.4}, NoiseEdit: 4.2},
	}
	svg := Figure5SVG(cells)
	assertSVG(t, svg, "Figure 5", "stroke-dasharray", "National (USA)")
}

func TestFigure3And6SVG(t *testing.T) {
	terms := []analysis.TermSeries{
		{Term: "Starbucks", EditByGranularity: map[string]float64{"county": 1, "state": 2, "national": 3}},
		{Term: "School", EditByGranularity: map[string]float64{"county": 4, "national": 12}}, // missing state → NaN skip
	}
	assertSVG(t, Figure3SVG(terms), "Figure 3", "Starbucks", "<polyline")
	assertSVG(t, Figure6SVG(terms), "Figure 6", "School")
}

func TestFigure4SVG(t *testing.T) {
	attr := []analysis.TypeAttribution{
		{Term: "Airport", All: 2.4, Maps: 1.0, News: 0},
		{Term: "Bank", All: 6.6, Maps: 1.3, News: 0},
	}
	svg := Figure4SVG(attr)
	assertSVG(t, svg, "Figure 4", "Airport", "Maps")
	if got := strings.Count(svg, "<polyline"); got != 3 {
		t.Fatalf("polylines = %d, want 3 (All/Maps/News)", got)
	}
}

func TestFigure7SVG(t *testing.T) {
	cells := []analysis.BreakdownCell{
		{Category: "local", Granularity: "state", Maps: 2.4, News: 0, Other: 5.5},
	}
	assertSVG(t, Figure7SVG(cells), "Figure 7", "Local / State (Ohio)")
}

func TestFigure8SVG(t *testing.T) {
	s := analysis.ConsistencySeries{
		Granularity: "county",
		Baseline:    "district/district-01",
		Days:        []int{0, 1, 2},
		NoiseFloor:  []float64{4.1, 4.3, 4.0},
		PerLocation: map[string][]float64{
			"district/district-02": {6, 6.1, 6.2},
			"district/district-03": {7, 7.1, 7.2},
		},
	}
	svg := Figure8SVG(s)
	assertSVG(t, svg, "Figure 8", "day 2", "#CC0000")
	if got := strings.Count(svg, "<polyline"); got != 3 {
		t.Fatalf("polylines = %d, want 3", got)
	}
}

func TestDistanceDecaySVG(t *testing.T) {
	bins := []analysis.DecayBin{
		{LoKm: 1, HiKm: 2, Edit: stats.Summary{Mean: 6.3}},
		{LoKm: 2, HiKm: 4, Edit: stats.Summary{Mean: 7.3}},
	}
	assertSVG(t, DistanceDecaySVG(bins), "distance", "1-2km")
}
