// Package report renders the analysis layer's outputs as the paper's
// tables and figures: aligned text for terminals and storage.Table values
// for CSV export. Every figure of the paper has a Figure*N* function here
// and a matching Figure*N*CSV.
package report

import (
	"fmt"
	"sort"
	"strings"

	"geoserp/internal/analysis"
	"geoserp/internal/storage"
)

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// Table1 renders the paper's Table 1: example controversial search terms.
func Table1(terms []string) string {
	var b strings.Builder
	b.WriteString("Table 1: Example controversial search terms.\n")
	b.WriteString(strings.Repeat("-", 44) + "\n")
	for _, t := range terms {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	return b.String()
}

// Figure2 renders average noise levels across query types and
// granularities (Jaccard and edit distance, with standard deviations).
func Figure2(cells []analysis.NoiseCell) string {
	var b strings.Builder
	b.WriteString("Figure 2: Average noise levels across query types and granularities.\n")
	fmt.Fprintf(&b, "%-22s %-14s %10s %8s %10s %8s %6s\n",
		"granularity", "category", "jaccard", "±sd", "edit", "±sd", "n")
	b.WriteString(strings.Repeat("-", 84) + "\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-22s %-14s %10s %8s %10s %8s %6d\n",
			c.Granularity, c.Category,
			fmtF(c.Jaccard.Mean), fmtF(c.Jaccard.StdDev),
			fmtF(c.Edit.Mean), fmtF(c.Edit.StdDev), c.Edit.N)
	}
	return b.String()
}

// Figure2CSV exports Figure 2 as a table.
func Figure2CSV(cells []analysis.NoiseCell) *storage.Table {
	t := &storage.Table{Header: []string{
		"granularity", "category", "jaccard_mean", "jaccard_sd", "edit_mean", "edit_sd", "n"}}
	for _, c := range cells {
		t.AddRow(c.Granularity, c.Category,
			fmtF(c.Jaccard.Mean), fmtF(c.Jaccard.StdDev),
			fmtF(c.Edit.Mean), fmtF(c.Edit.StdDev), fmt.Sprint(c.Edit.N))
	}
	return t
}

// granularityCols is the column order for per-term figures.
var granularityCols = []string{"county", "state", "national"}

// perTerm renders Figures 3 and 6 (per-term lines across granularities).
func perTerm(title string, terms []analysis.TermSeries) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-28s %10s %10s %10s\n", "term", "county", "state", "national")
	b.WriteString(strings.Repeat("-", 62) + "\n")
	for _, ts := range terms {
		fmt.Fprintf(&b, "%-28s %10s %10s %10s\n", ts.Term,
			fmtF(ts.EditByGranularity["county"]),
			fmtF(ts.EditByGranularity["state"]),
			fmtF(ts.EditByGranularity["national"]))
	}
	return b.String()
}

// Figure3 renders per-term noise for local queries.
func Figure3(terms []analysis.TermSeries) string {
	return perTerm("Figure 3: Noise levels for local queries across three granularities (avg edit distance).", terms)
}

// Figure6 renders per-term personalization for local queries.
func Figure6(terms []analysis.TermSeries) string {
	return perTerm("Figure 6: Personalization of each search term for local queries (avg edit distance).", terms)
}

// perTermCSV exports a per-term figure.
func perTermCSV(terms []analysis.TermSeries) *storage.Table {
	t := &storage.Table{Header: []string{"term", "county", "state", "national"}}
	for _, ts := range terms {
		row := []string{ts.Term}
		for _, g := range granularityCols {
			row = append(row, fmtF(ts.EditByGranularity[g]))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure3CSV exports Figure 3.
func Figure3CSV(terms []analysis.TermSeries) *storage.Table { return perTermCSV(terms) }

// Figure6CSV exports Figure 6.
func Figure6CSV(terms []analysis.TermSeries) *storage.Table { return perTermCSV(terms) }

// Figure4 renders the noise attribution by result type for local queries.
func Figure4(attr []analysis.TypeAttribution) string {
	var b strings.Builder
	b.WriteString("Figure 4: Amount of noise caused by different types of search results (local queries, county).\n")
	fmt.Fprintf(&b, "%-28s %10s %10s %10s\n", "term", "all", "maps", "news")
	b.WriteString(strings.Repeat("-", 62) + "\n")
	for _, a := range attr {
		fmt.Fprintf(&b, "%-28s %10s %10s %10s\n", a.Term, fmtF(a.All), fmtF(a.Maps), fmtF(a.News))
	}
	return b.String()
}

// Figure4CSV exports Figure 4.
func Figure4CSV(attr []analysis.TypeAttribution) *storage.Table {
	t := &storage.Table{Header: []string{"term", "all", "maps", "news"}}
	for _, a := range attr {
		t.AddRow(a.Term, fmtF(a.All), fmtF(a.Maps), fmtF(a.News))
	}
	return t
}

// Figure5 renders average personalization with noise floors.
func Figure5(cells []analysis.PersonalizationCell) string {
	var b strings.Builder
	b.WriteString("Figure 5: Average personalization across query types and granularities\n")
	b.WriteString("(black bars = the matching noise floors from Figure 2).\n")
	fmt.Fprintf(&b, "%-22s %-14s %10s %10s %12s %12s %6s\n",
		"granularity", "category", "jaccard", "edit", "noise_jacc", "noise_edit", "n")
	b.WriteString(strings.Repeat("-", 92) + "\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-22s %-14s %10s %10s %12s %12s %6d\n",
			c.Granularity, c.Category,
			fmtF(c.Jaccard.Mean), fmtF(c.Edit.Mean),
			fmtF(c.NoiseJaccard), fmtF(c.NoiseEdit), c.Edit.N)
	}
	return b.String()
}

// Figure5CSV exports Figure 5.
func Figure5CSV(cells []analysis.PersonalizationCell) *storage.Table {
	t := &storage.Table{Header: []string{
		"granularity", "category", "jaccard_mean", "edit_mean", "noise_jaccard", "noise_edit", "n"}}
	for _, c := range cells {
		t.AddRow(c.Granularity, c.Category,
			fmtF(c.Jaccard.Mean), fmtF(c.Edit.Mean),
			fmtF(c.NoiseJaccard), fmtF(c.NoiseEdit), fmt.Sprint(c.Edit.N))
	}
	return t
}

// Figure7 renders the personalization decomposition by result type.
func Figure7(cells []analysis.BreakdownCell) string {
	var b strings.Builder
	b.WriteString("Figure 7: Amount of personalization caused by different types of search results.\n")
	fmt.Fprintf(&b, "%-14s %-22s %8s %8s %8s %8s %10s %10s\n",
		"category", "granularity", "all", "maps", "news", "other", "maps_share", "news_share")
	b.WriteString(strings.Repeat("-", 96) + "\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-14s %-22s %8s %8s %8s %8s %10s %10s\n",
			c.Category, c.Granularity,
			fmtF(c.All), fmtF(c.Maps), fmtF(c.News), fmtF(c.Other),
			fmtF(c.MapsShare()), fmtF(c.NewsShare()))
	}
	return b.String()
}

// Figure7CSV exports Figure 7.
func Figure7CSV(cells []analysis.BreakdownCell) *storage.Table {
	t := &storage.Table{Header: []string{
		"category", "granularity", "all", "maps", "news", "other", "maps_share", "news_share"}}
	for _, c := range cells {
		t.AddRow(c.Category, c.Granularity,
			fmtF(c.All), fmtF(c.Maps), fmtF(c.News), fmtF(c.Other),
			fmtF(c.MapsShare()), fmtF(c.NewsShare()))
	}
	return t
}

// Figure8 renders the day-by-day consistency series, one panel per
// granularity: the noise floor (the paper's red line) and each location's
// per-day average edit distance against the baseline.
func Figure8(series []analysis.ConsistencySeries) string {
	var b strings.Builder
	b.WriteString("Figure 8: Personalization of locations compared to a baseline, per day\n")
	b.WriteString("(noise = the baseline's treatment/control distance, the paper's red line).\n")
	for _, s := range series {
		fmt.Fprintf(&b, "\n[%s] baseline=%s\n", s.Granularity, s.Baseline)
		fmt.Fprintf(&b, "%-28s", "series")
		for _, d := range s.Days {
			fmt.Fprintf(&b, " day%-7d", d+1)
		}
		b.WriteString("\n" + strings.Repeat("-", 28+11*len(s.Days)) + "\n")
		fmt.Fprintf(&b, "%-28s", "noise (control)")
		for _, v := range s.NoiseFloor {
			fmt.Fprintf(&b, " %-10s", fmtF(v))
		}
		b.WriteString("\n")
		for _, loc := range sortedLocations(s) {
			fmt.Fprintf(&b, "%-28s", loc)
			for _, v := range s.PerLocation[loc] {
				fmt.Fprintf(&b, " %-10s", fmtF(v))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func sortedLocations(s analysis.ConsistencySeries) []string {
	out := make([]string, 0, len(s.PerLocation))
	for loc := range s.PerLocation {
		out = append(out, loc)
	}
	sort.Strings(out)
	return out
}

// Figure8CSV exports Figure 8 (long form: granularity, series, day, value).
func Figure8CSV(series []analysis.ConsistencySeries) *storage.Table {
	t := &storage.Table{Header: []string{"granularity", "series", "day", "edit_mean"}}
	for _, s := range series {
		for i, d := range s.Days {
			t.AddRow(s.Granularity, "noise", fmt.Sprint(d+1), fmtF(s.NoiseFloor[i]))
		}
		for _, loc := range sortedLocations(s) {
			for i, d := range s.Days {
				t.AddRow(s.Granularity, loc, fmt.Sprint(d+1), fmtF(s.PerLocation[loc][i]))
			}
		}
	}
	return t
}

// Validation renders the §2.2 GPS-vs-IP experiment summary.
func Validation(res analysis.ValidationResult) string {
	var b strings.Builder
	b.WriteString("Validation (§2.2): identical queries, fixed GPS, many vantage IPs.\n")
	fmt.Fprintf(&b, "  terms compared:          %d\n", res.Terms)
	fmt.Fprintf(&b, "  vantage-pair comparisons: %d\n", res.Comparisons)
	fmt.Fprintf(&b, "  mean result overlap:     %.1f%%  (paper: 94%% of results identical)\n",
		res.MeanResultOverlap*100)
	fmt.Fprintf(&b, "  identical full pages:    %.1f%%\n", res.FractionIdenticalPages*100)
	return b.String()
}

// Demographics renders the §3.2 demographics-correlation table.
func Demographics(rows []analysis.FeatureCorrelation) string {
	var b strings.Builder
	b.WriteString("Demographics (§3.2): correlation of pairwise feature deltas vs result distance.\n")
	fmt.Fprintf(&b, "%-24s %10s %10s %6s\n", "feature", "pearson", "spearman", "n")
	b.WriteString(strings.Repeat("-", 54) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10s %10s %6d\n", r.Feature, fmtF(r.Pearson), fmtF(r.Spearman), r.N)
	}
	b.WriteString("(paper's finding: no feature explains result clustering — all |r| small)\n")
	return b.String()
}

// DemographicsCSV exports the demographics table.
func DemographicsCSV(rows []analysis.FeatureCorrelation) *storage.Table {
	t := &storage.Table{Header: []string{"feature", "pearson", "spearman", "n"}}
	for _, r := range rows {
		t.AddRow(r.Feature, fmtF(r.Pearson), fmtF(r.Spearman), fmt.Sprint(r.N))
	}
	return t
}
