package report

import (
	"fmt"
	"math"
	"sort"

	"geoserp/internal/analysis"
	"geoserp/internal/plot"
)

// This file renders the paper's figures as SVG images (cmd/analyze -svg).
// Each function mirrors the corresponding text renderer in report.go.

// displayGranularity maps short labels to the paper's axis labels.
func displayGranularity(g string) string {
	switch g {
	case "county":
		return "County (Cuyahoga)"
	case "state":
		return "State (Ohio)"
	case "national":
		return "National (USA)"
	}
	return g
}

// displayCategory maps short labels to the paper's legend labels.
func displayCategory(c string) string {
	switch c {
	case "politician":
		return "Politicians"
	case "controversial":
		return "Controversial"
	case "local":
		return "Local"
	}
	return c
}

// Figure2SVG renders the noise bars (edit-distance panel of Figure 2).
func Figure2SVG(cells []analysis.NoiseCell) string {
	return noiseBars("Figure 2: Average noise levels across query types and granularities",
		cells, func(c analysis.NoiseCell) (float64, float64) {
			return c.Edit.Mean, c.Edit.StdDev
		}, "Avg. Edit Distance")
}

// Figure2JaccardSVG renders the Jaccard panel of Figure 2.
func Figure2JaccardSVG(cells []analysis.NoiseCell) string {
	return noiseBars("Figure 2 (Jaccard panel): Average noise levels",
		cells, func(c analysis.NoiseCell) (float64, float64) {
			return c.Jaccard.Mean, c.Jaccard.StdDev
		}, "Avg. Jaccard Index")
}

func noiseBars(title string, cells []analysis.NoiseCell, pick func(analysis.NoiseCell) (float64, float64), ylabel string) string {
	byGran := map[string]map[string]analysis.NoiseCell{}
	var granOrder, catOrder []string
	seenG, seenC := map[string]bool{}, map[string]bool{}
	for _, c := range cells {
		if byGran[c.Granularity] == nil {
			byGran[c.Granularity] = map[string]analysis.NoiseCell{}
		}
		byGran[c.Granularity][c.Category] = c
		if !seenG[c.Granularity] {
			seenG[c.Granularity] = true
			granOrder = append(granOrder, c.Granularity)
		}
		if !seenC[c.Category] {
			seenC[c.Category] = true
			catOrder = append(catOrder, c.Category)
		}
	}
	spec := plot.BarChartSpec{Title: title, YLabel: ylabel}
	for _, cat := range catOrder {
		spec.Series = append(spec.Series, displayCategory(cat))
	}
	for _, g := range granOrder {
		grp := plot.BarGroup{Label: displayGranularity(g)}
		for _, cat := range catOrder {
			v, e := pick(byGran[g][cat])
			grp.Values = append(grp.Values, v)
			grp.Errors = append(grp.Errors, e)
		}
		spec.Groups = append(spec.Groups, grp)
	}
	return plot.BarChart(spec)
}

// Figure5SVG renders the personalization bars with the mean noise floor as
// a dashed reference line (the paper's black bars).
func Figure5SVG(cells []analysis.PersonalizationCell) string {
	byGran := map[string]map[string]analysis.PersonalizationCell{}
	var granOrder, catOrder []string
	seenG, seenC := map[string]bool{}, map[string]bool{}
	var noiseSum float64
	for _, c := range cells {
		if byGran[c.Granularity] == nil {
			byGran[c.Granularity] = map[string]analysis.PersonalizationCell{}
		}
		byGran[c.Granularity][c.Category] = c
		noiseSum += c.NoiseEdit
		if !seenG[c.Granularity] {
			seenG[c.Granularity] = true
			granOrder = append(granOrder, c.Granularity)
		}
		if !seenC[c.Category] {
			seenC[c.Category] = true
			catOrder = append(catOrder, c.Category)
		}
	}
	spec := plot.BarChartSpec{
		Title:  "Figure 5: Average personalization across query types and granularities",
		YLabel: "Avg. Edit Distance",
	}
	for _, cat := range catOrder {
		spec.Series = append(spec.Series, displayCategory(cat))
	}
	for _, g := range granOrder {
		grp := plot.BarGroup{Label: displayGranularity(g)}
		for _, cat := range catOrder {
			c := byGran[g][cat]
			grp.Values = append(grp.Values, c.Edit.Mean)
			grp.Errors = append(grp.Errors, c.Edit.StdDev)
		}
		spec.Groups = append(spec.Groups, grp)
	}
	if len(cells) > 0 {
		spec.Baselines = []float64{noiseSum / float64(len(cells))}
	}
	return plot.BarChart(spec)
}

// perTermSVG renders Figures 3 and 6: per-term lines at three granularities.
func perTermSVG(title string, terms []analysis.TermSeries) string {
	spec := plot.LineChartSpec{
		Title:  title,
		YLabel: "Avg. Edit Distance",
		XLabel: "term",
	}
	grans := []string{"county", "state", "national"}
	series := make([]plot.LineSeries, len(grans))
	for i, g := range grans {
		series[i] = plot.LineSeries{Name: displayGranularity(g)}
	}
	for _, ts := range terms {
		spec.XLabels = append(spec.XLabels, ts.Term)
		for i, g := range grans {
			v, ok := ts.EditByGranularity[g]
			if !ok {
				v = math.NaN()
			}
			series[i].Values = append(series[i].Values, v)
		}
	}
	spec.Series = series
	return plot.LineChart(spec)
}

// Figure3SVG renders per-term noise for local queries.
func Figure3SVG(terms []analysis.TermSeries) string {
	return perTermSVG("Figure 3: Noise levels for local queries", terms)
}

// Figure6SVG renders per-term personalization for local queries.
func Figure6SVG(terms []analysis.TermSeries) string {
	return perTermSVG("Figure 6: Personalization of each local search term", terms)
}

// Figure4SVG renders noise attribution by result type for local queries.
func Figure4SVG(attr []analysis.TypeAttribution) string {
	spec := plot.LineChartSpec{
		Title:  "Figure 4: Noise caused by different types of search results (local, county)",
		YLabel: "Avg. Edit Distance",
	}
	all := plot.LineSeries{Name: "All"}
	maps := plot.LineSeries{Name: "Maps"}
	news := plot.LineSeries{Name: "News"}
	for _, a := range attr {
		spec.XLabels = append(spec.XLabels, a.Term)
		all.Values = append(all.Values, a.All)
		maps.Values = append(maps.Values, a.Maps)
		news.Values = append(news.Values, a.News)
	}
	spec.Series = []plot.LineSeries{all, maps, news}
	return plot.LineChart(spec)
}

// Figure7SVG renders the personalization type decomposition as grouped bars.
func Figure7SVG(cells []analysis.BreakdownCell) string {
	spec := plot.BarChartSpec{
		Title:  "Figure 7: Personalization caused by different types of search results",
		YLabel: "Avg. Edit Distance",
		Series: []string{"Maps", "News", "Other"},
	}
	for _, c := range cells {
		spec.Groups = append(spec.Groups, plot.BarGroup{
			Label:  fmt.Sprintf("%s / %s", displayCategory(c.Category), displayGranularity(c.Granularity)),
			Values: []float64{c.Maps, c.News, c.Other},
		})
	}
	return plot.BarChart(spec)
}

// Figure8SVG renders one consistency panel (per granularity) as a line
// chart: the red noise line plus every location's day-by-day series.
func Figure8SVG(s analysis.ConsistencySeries) string {
	spec := plot.LineChartSpec{
		Title: fmt.Sprintf("Figure 8 (%s): personalization vs baseline %s over days",
			displayGranularity(s.Granularity), s.Baseline),
		YLabel: "Avg. Edit Distance",
	}
	for _, d := range s.Days {
		spec.XLabels = append(spec.XLabels, fmt.Sprintf("day %d", d+1))
	}
	spec.Series = append(spec.Series, plot.LineSeries{
		Name: "noise (control)", Values: s.NoiseFloor, Emphasize: true,
	})
	locs := make([]string, 0, len(s.PerLocation))
	for loc := range s.PerLocation {
		locs = append(locs, loc)
	}
	sort.Strings(locs)
	for _, loc := range locs {
		spec.Series = append(spec.Series, plot.LineSeries{Name: loc, Values: s.PerLocation[loc]})
	}
	return plot.LineChart(spec)
}

// DistanceDecaySVG renders the continuous distance curve.
func DistanceDecaySVG(bins []analysis.DecayBin) string {
	spec := plot.LineChartSpec{
		Title:  "Personalization vs distance",
		YLabel: "Avg. Edit Distance",
	}
	s := plot.LineSeries{Name: "edit distance"}
	for _, b := range bins {
		spec.XLabels = append(spec.XLabels, fmt.Sprintf("%.0f-%.0fkm", b.LoKm, b.HiKm))
		s.Values = append(s.Values, b.Edit.Mean)
	}
	spec.Series = []plot.LineSeries{s}
	return plot.LineChart(spec)
}
