package report

import (
	"strings"
	"testing"

	"geoserp/internal/analysis"
	"geoserp/internal/geo"
	"geoserp/internal/serp"
	"geoserp/internal/storage"
	"html/template"
	"time"
)

func TestRenderHTMLEscapesText(t *testing.T) {
	r := HTMLReport{
		Title:    `Report <script>alert(1)</script>`,
		Subtitle: "sub",
		Sections: []HTMLSection{
			{Heading: "H & M", PreText: "a < b", SVG: template.HTML("<svg></svg>")},
		},
	}
	doc, err := RenderHTML(r)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(doc, "<script>alert") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(doc, "a &lt; b") {
		t.Fatal("pre text not escaped")
	}
	if !strings.Contains(doc, "<svg></svg>") {
		t.Fatal("SVG escaped (should be inlined)")
	}
}

func TestBuildHTMLReportFromDataset(t *testing.T) {
	page := func(links ...string) *serp.Page {
		p := &serp.Page{Query: "Coffee", Location: "41.000000,-81.000000"}
		for _, l := range links {
			p.Cards = append(p.Cards, serp.Card{
				Type:    serp.Organic,
				Results: []serp.Result{{URL: l, Title: l}},
			})
		}
		return p
	}
	locs := geo.StudyDataset().At(geo.County)
	mk := func(loc string, role storage.Role, links ...string) storage.Observation {
		return storage.Observation{
			Term: "Coffee", Category: "local", Granularity: "county",
			LocationID: loc, Role: role, Day: 0, MachineIP: "10.0.0.1",
			FetchedAt: time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC),
			Page:      page(links...),
		}
	}
	d, err := analysis.NewDataset([]storage.Observation{
		mk(locs[0].ID, storage.Treatment, "a", "b"),
		mk(locs[0].ID, storage.Control, "a", "b"),
		mk(locs[1].ID, storage.Treatment, "a", "c"),
		mk(locs[1].ID, storage.Control, "a", "c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := BuildHTMLReport(d, geo.StudyDataset())
	if len(r.Sections) < 10 {
		t.Fatalf("sections = %d, want >= 10", len(r.Sections))
	}
	doc, err := RenderHTML(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Figure 2", "Figure 8", "Demographics", "<svg"} {
		if !strings.Contains(doc, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
