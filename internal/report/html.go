package report

import (
	"fmt"
	"html/template"
	"strings"

	"geoserp/internal/analysis"
	"geoserp/internal/geo"
	"geoserp/internal/queries"
)

// HTMLSection is one block of the self-contained HTML report: a heading,
// the text rendering of a table/figure, and (optionally) its SVG image.
type HTMLSection struct {
	Heading string
	PreText string
	// SVG is inlined verbatim (it is produced by internal/plot, not user
	// input).
	SVG template.HTML
}

// HTMLReport is the input to RenderHTML.
type HTMLReport struct {
	Title    string
	Subtitle string
	Sections []HTMLSection
}

var htmlTemplate = template.Must(template.New("report").Parse(`<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
 body { font-family: Georgia, serif; max-width: 880px; margin: 2em auto; color: #222; }
 h1 { font-size: 1.6em; border-bottom: 2px solid #444; padding-bottom: 0.3em; }
 h2 { font-size: 1.2em; margin-top: 2em; }
 pre { background: #f7f7f4; padding: 1em; overflow-x: auto; font-size: 12px; line-height: 1.35; }
 .subtitle { color: #666; font-style: italic; }
 figure { margin: 1em 0; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="subtitle">{{.Subtitle}}</p>
{{range .Sections}}
<h2>{{.Heading}}</h2>
{{if .SVG}}<figure>{{.SVG}}</figure>{{end}}
{{if .PreText}}<pre>{{.PreText}}</pre>{{end}}
{{end}}
</body>
</html>
`))

// RenderHTML renders the report document.
func RenderHTML(r HTMLReport) (string, error) {
	var b strings.Builder
	if err := htmlTemplate.Execute(&b, r); err != nil {
		return "", fmt.Errorf("report: render html: %w", err)
	}
	return b.String(), nil
}

// BuildHTMLReport assembles the full study report — every table and
// figure, the scorecard, and the demographics analysis — from a dataset.
func BuildHTMLReport(d *analysis.Dataset, locs *geo.Dataset) HTMLReport {
	r := HTMLReport{
		Title: "Location, Location, Location — reproduction report",
		Subtitle: "Kliman-Silver, Hannák, Lazer, Wilson, Mislove (IMC 2015), " +
			"reproduced against the geoserp synthetic engine.",
	}
	add := func(heading, pre string, svg string) {
		r.Sections = append(r.Sections, HTMLSection{
			Heading: heading,
			PreText: pre,
			SVG:     template.HTML(svg),
		})
	}

	add("Fidelity scorecard", Scorecard(d.Scorecard()), "")
	add("Table 1 — controversial search terms", Table1(queries.Table1Terms()), "")

	noise := d.NoiseByGranularity()
	add("Figure 2 — noise levels", Figure2(noise), Figure2SVG(noise))

	noiseTerms := d.NoisePerTerm("local")
	add("Figure 3 — per-term noise (local)", Figure3(noiseTerms), Figure3SVG(noiseTerms))

	attr := d.NoiseByResultType("local", "county")
	add("Figure 4 — noise by result type", Figure4(attr), Figure4SVG(attr))

	pers := d.PersonalizationByGranularity()
	add("Figure 5 — personalization", Figure5(pers), Figure5SVG(pers))

	persTerms := d.PersonalizationPerTerm("local")
	add("Figure 6 — per-term personalization (local)", Figure6(persTerms), Figure6SVG(persTerms))

	breakdown := d.PersonalizationByResultType()
	add("Figure 7 — personalization by result type", Figure7(breakdown), Figure7SVG(breakdown))

	series := d.ConsistencyOverTime("local")
	add("Figure 8 — consistency over time", Figure8(series), "")
	for _, s := range series {
		add(fmt.Sprintf("Figure 8 (%s)", displayGranularity(s.Granularity)), "", Figure8SVG(s))
	}

	add("Demographics (§3.2)", Demographics(d.DemographicCorrelations(locs, "local")), "")

	bins, fit := d.DistanceDecay(locs, "local")
	add("Personalization vs distance", DistanceDecay(bins, fit), DistanceDecaySVG(bins))

	return r
}
