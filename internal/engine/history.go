package engine

import (
	"sync"
	"time"
)

// historyStore remembers each session's recent searches. Google Search
// personalizes on searches from the previous 10 minutes (the paper cites
// its prior work for this), which is exactly why the study's crawler waits
// 11 minutes between queries and clears cookies; the store exists so that
// discipline is load-bearing in our reproduction too.
type historyStore struct {
	mu       sync.Mutex
	window   time.Duration
	sessions map[string][]historyEntry
}

type historyEntry struct {
	topic string
	at    time.Time
}

func newHistoryStore(window time.Duration) *historyStore {
	return &historyStore{
		window:   window,
		sessions: make(map[string][]historyEntry),
	}
}

// recent returns the distinct topics the session searched within the
// window ending at now, most recent first.
func (h *historyStore) recent(session string, now time.Time) []string {
	if session == "" {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	entries := h.sessions[session]
	// Prune expired entries in place while we are here.
	kept := entries[:0]
	var topics []string
	seen := make(map[string]bool)
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if now.Sub(e.at) > h.window {
			continue
		}
		if !seen[e.topic] {
			seen[e.topic] = true
			topics = append(topics, e.topic)
		}
	}
	for _, e := range entries {
		if now.Sub(e.at) <= h.window {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		delete(h.sessions, session)
	} else {
		h.sessions[session] = kept
	}
	return topics
}

// record notes that the session searched the topic at the given time.
func (h *historyStore) record(session, topic string, at time.Time) {
	if session == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sessions[session] = append(h.sessions[session], historyEntry{topic: topic, at: at})
}

// pruneExpired drops every session whose entries have all aged out of the
// window. Crawlers that clear cookies create a fresh session per query and
// never return to it, so without periodic pruning a long crawl would grow
// the store without bound.
func (h *historyStore) pruneExpired(now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for session, entries := range h.sessions {
		live := false
		for _, e := range entries {
			if now.Sub(e.at) <= h.window {
				live = true
				break
			}
		}
		if !live {
			delete(h.sessions, session)
		}
	}
}

// sessionCount reports how many sessions have live history (for stats
// endpoints and tests).
func (h *historyStore) sessionCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sessions)
}
