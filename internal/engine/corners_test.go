package engine

import (
	"testing"

	"geoserp/internal/geo"
	"geoserp/internal/serp"
)

// Corner-case behaviours of the ranking pipeline.

func TestSparseKindExpandsRadius(t *testing.T) {
	// Airports are the sparsest kind (density 0.05/cell): the radius
	// expansion must still find enough candidates to fill a maps card.
	e, _ := newQuietEngine()
	r, err := e.Search(Request{Query: "Airport", GPS: &cleveland, ClientIP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Page.CardCount(serp.Maps) != 1 {
		t.Fatal("sparse kind produced no maps card")
	}
	for _, c := range r.Page.Cards {
		if c.Type == serp.Maps && len(c.Results) < 3 {
			t.Fatalf("maps card has %d results, want >= 3", len(c.Results))
		}
	}
}

func TestRemoteLocationStillServes(t *testing.T) {
	// A coordinate in the middle of nowhere (rural Nevada) must still get
	// a structurally valid page for every category: radius expansion caps
	// out and the page falls back to web results.
	e, _ := newQuietEngine()
	nowhere := geo.Point{Lat: 39.5, Lon: -116.8}
	for _, term := range []string{"Airport", "School", "Starbucks", "Gay Marriage"} {
		r, err := e.Search(Request{Query: term, GPS: &nowhere, ClientIP: "1.2.3.4"})
		if err != nil {
			t.Fatalf("%s: %v", term, err)
		}
		if err := r.Page.Validate(); err != nil {
			t.Fatalf("%s: %v", term, err)
		}
		if r.Page.LinkCount() < 5 {
			t.Fatalf("%s: only %d links in the middle of nowhere", term, r.Page.LinkCount())
		}
	}
}

func TestHistoryAcrossDifferentTopics(t *testing.T) {
	// Searching topic A then topic B within the window must boost A's
	// documents in B's results when they leak in via shared tokens —
	// verify at minimum that cross-topic history does not corrupt pages.
	e, clk := newQuietEngine()
	_ = clk
	session := "cross-topic"
	if _, err := e.Search(Request{Query: "High School", GPS: &cleveland, ClientIP: "1.2.3.4", SessionID: session}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Search(Request{Query: "School", GPS: &cleveland, ClientIP: "1.2.3.4", SessionID: session})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Page.Validate(); err != nil {
		t.Fatal(err)
	}
	// The fresh (no-history) page for "School" must differ: high-school
	// docs got boosted by the session's previous query.
	fresh, err := e.Search(Request{Query: "School", GPS: &cleveland, ClientIP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	if equalStrings(r.Page.Links(), fresh.Page.Links()) {
		t.Fatal("related-topic history had no effect")
	}
}

func TestPoleAdjacentCoordinates(t *testing.T) {
	// Extreme (but valid) coordinates must not panic or produce invalid
	// pages — the geometry code runs near its edge cases.
	e, _ := newQuietEngine()
	for _, pt := range []geo.Point{
		{Lat: 89.9, Lon: 0},
		{Lat: -89.9, Lon: 179.9},
		{Lat: 0, Lon: -179.9},
	} {
		p := pt
		r, err := e.Search(Request{Query: "Coffee", GPS: &p, ClientIP: "1.2.3.4"})
		if err != nil {
			t.Fatalf("%v: %v", pt, err)
		}
		if err := r.Page.Validate(); err != nil {
			t.Fatalf("%v: %v", pt, err)
		}
	}
}

func TestDayBeforeEpochClamps(t *testing.T) {
	// The engine's day counter is derived from the clock; a clock at the
	// epoch gives day 0 and the news vertical must not receive negative
	// days through any path.
	e, _ := newQuietEngine()
	if e.Day() != 0 {
		t.Fatalf("day = %d", e.Day())
	}
	r, err := e.Search(Request{Query: "Health", GPS: &cleveland, ClientIP: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Page.Day != 0 {
		t.Fatalf("page day = %d", r.Page.Day)
	}
}
