package engine

import (
	"errors"
	"time"

	"geoserp/internal/index"
	"geoserp/internal/telemetry"
)

// ErrRetrievalUnavailable is returned when the engine's web-vertical
// retrieval backend cannot answer at all — in a sharded cluster, when
// every shard failed, timed out, or sat behind an open breaker. The HTTP
// front end answers it as a 503 shed so clients back off and retry; a
// PARTIAL backend failure is not an error (see RetrieveResult.Partial).
var ErrRetrievalUnavailable = errors.New("engine: retrieval backend unavailable")

// RetrieveRequest is one web-vertical retrieval as the backend sees it.
type RetrieveRequest struct {
	// Query is the raw search term (backends tokenize it themselves, so
	// every backend applies the single index.Tokenize pipeline).
	Query string
	// K bounds how many hits the engine wants back.
	K int
	// TraceID is the request's X-Trace-Id ("" = untraced); remote
	// backends propagate it so shard spans join the request's timeline.
	TraceID string
	// Deadline is the request's absolute deadline (zero = none); remote
	// backends propagate it via X-Deadline-Ms so a shard can refuse work
	// the client has already given up on.
	Deadline time.Time
	// Span, when non-nil, is the engine's retrieve-stage span; backends
	// may hang per-shard child spans off it. A nil Span costs nothing.
	Span *telemetry.Span
	// Wide, when non-nil, is the request's wide-event record; distributed
	// backends append one leg per shard contacted (outcome + duration). A
	// nil Wide costs nothing.
	Wide *telemetry.WideEvent
}

// RetrieveResult is a retrieval backend's answer.
type RetrieveResult struct {
	// Hits are the top-K documents, ordered by score descending with
	// URL-ascending tie-break (index.MergeHits order).
	Hits []index.Hit
	// Partial reports that one or more shards of a distributed backend
	// did not contribute (shed, timed out, or breaker-open) and Hits
	// covers only the reachable partition. The engine still assembles a
	// page — degraded results beat an error page — and the front end
	// marks it with the X-Serp-Partial header.
	Partial bool
}

// Retriever is the engine's web-vertical retrieval dependency. The
// default is the in-process inverted index; the cluster router swaps in a
// scatter-gather client over N shard nodes (internal/router). Retrieve
// must be safe for concurrent use.
type Retriever interface {
	Retrieve(req RetrieveRequest) (RetrieveResult, error)
}

// localRetriever adapts the in-process inverted index: never partial,
// never fails.
type localRetriever struct {
	idx *index.Index
}

func (l localRetriever) Retrieve(req RetrieveRequest) (RetrieveResult, error) {
	return RetrieveResult{Hits: l.idx.Search(req.Query, req.K)}, nil
}
