package engine

import (
	"strings"

	"geoserp/internal/detrand"
	"geoserp/internal/geo"
)

// ipGeolocator models IP-address geolocation: the coarse, database-driven
// location inference the engine falls back on when a request carries no GPS
// coordinate. The paper's prior work found Google infers location from IP;
// this study's contribution is spoofing GPS *past* that inference, which
// the validation experiment (§2.2) confirms takes priority.
//
// Real geolocation databases are city-accurate at best: tens of kilometres
// of error is typical. The locator therefore perturbs even *registered*
// prefixes by a deterministic per-prefix offset of up to errorKm — which is
// exactly why IP-based measurement (all prior work could do) cannot resolve
// the paper's county-level question, and GPS spoofing was needed.
type ipGeolocator struct {
	seed uint64
	// errorKm bounds the per-prefix database error applied to registered
	// entries (0 = perfect database).
	errorKm float64
	// table holds explicit prefix→location mappings ("known databases");
	// unknown prefixes are hashed to a deterministic pseudo-location.
	table map[string]geo.Point
	// bounds constrain synthesized pseudo-locations (continental US).
	latLo, latHi float64
	lonLo, lonHi float64
}

func newIPGeolocator(seed uint64, errorKm float64) *ipGeolocator {
	if errorKm < 0 {
		errorKm = 0
	}
	return &ipGeolocator{
		seed:    seed,
		errorKm: errorKm,
		table:   make(map[string]geo.Point),
		latLo:   30, latHi: 47,
		lonLo: -120, lonHi: -75,
	}
}

// prefix24 returns the /24 prefix of a dotted-quad IP (the granularity real
// geolocation databases typically resolve), or the whole string when it
// does not look like an IPv4 address.
func prefix24(ip string) string {
	parts := strings.Split(ip, ".")
	if len(parts) != 4 {
		return ip
	}
	return strings.Join(parts[:3], ".")
}

// register pins a prefix (the /24 of ip) to a known location. Lookups
// still carry the database error.
func (g *ipGeolocator) register(ip string, pt geo.Point) {
	g.table[prefix24(ip)] = pt
}

// locate returns the inferred location for ip. Deterministic: the same IP
// always geolocates to the same place (including the same error offset).
func (g *ipGeolocator) locate(ip string) geo.Point {
	p24 := prefix24(ip)
	if pt, ok := g.table[p24]; ok {
		if g.errorKm <= 0 {
			return pt
		}
		rng := detrand.NewKeyed(g.seed, "ipgeo-error", p24)
		bearing := rng.Range(0, 360)
		dist := rng.Float64() * g.errorKm
		return geo.Destination(pt, bearing, dist)
	}
	rng := detrand.NewKeyed(g.seed, "ipgeo", p24)
	return geo.Point{
		Lat: rng.Range(g.latLo, g.latHi),
		Lon: rng.Range(g.lonLo, g.lonHi),
	}
}
