package engine

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"geoserp/internal/geo"
	"geoserp/internal/simclock"
)

func traceTestEngine() *Engine {
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	cfg := DefaultConfig()
	cfg.RateBurst = 1 << 30
	cfg.RatePerMinute = 1 << 30
	return New(cfg, clk)
}

// TestTraceKeyedNoiseIsOrderIndependent: the repro-determinism contract —
// a traced request's noise draws depend only on its trace ID, never on how
// many requests the engine served before it.
func TestTraceKeyedNoiseIsOrderIndependent(t *testing.T) {
	gps := geo.Point{Lat: 41.4993, Lon: -81.6944}
	req := Request{Query: "Coffee", GPS: &gps, ClientIP: "10.0.0.1", Datacenter: "dc-0", TraceID: "00c0ffee00c0ffee"}

	e1 := traceTestEngine()
	r1, err := e1.Search(req)
	if err != nil {
		t.Fatal(err)
	}

	// Same engine config, but 100 interleaved untraced requests first: the
	// sequence counter is far ahead when the traced request arrives.
	e2 := traceTestEngine()
	for i := 0; i < 100; i++ {
		other := Request{Query: "Pizza", GPS: &gps, ClientIP: fmt.Sprintf("10.0.1.%d", i%250)}
		if _, err := e2.Search(other); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := e2.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Bucket != r2.Bucket {
		t.Fatalf("bucket draw depends on arrival order: %d vs %d", r1.Bucket, r2.Bucket)
	}
	if !reflect.DeepEqual(r1.Page, r2.Page) {
		t.Fatal("traced page depends on arrival order")
	}
}

// TestDistinctTracesStillDrawNoise: treatment and control mint distinct
// trace IDs, and those distinct keys must keep producing the independent
// noise draws the treatment/control design measures.
func TestDistinctTracesStillDrawNoise(t *testing.T) {
	e := traceTestEngine()
	gps := geo.Point{Lat: 41.4993, Lon: -81.6944}
	differed := false
	for i := 0; i < 12 && !differed; i++ {
		mk := func(role string) *Response {
			r, err := e.Search(Request{
				Query: "Coffee", GPS: &gps, ClientIP: "10.0.0.1", Datacenter: "dc-0",
				TraceID: fmt.Sprintf("t-%d-%s", i, role),
			})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		tr, ctl := mk("treatment"), mk("control")
		if tr.Bucket != ctl.Bucket || !reflect.DeepEqual(tr.Page, ctl.Page) {
			differed = true
		}
	}
	if !differed {
		t.Fatal("12 treatment/control pairs drew identical noise — trace keying killed the noise model")
	}
}

// TestUntracedRequestsKeepSequenceNoise: legacy untraced traffic still
// draws per-arrival noise (the pre-trace behaviour).
func TestUntracedRequestsKeepSequenceNoise(t *testing.T) {
	e := traceTestEngine()
	gps := geo.Point{Lat: 41.4993, Lon: -81.6944}
	differed := false
	req := Request{Query: "Coffee", GPS: &gps, ClientIP: "10.0.0.1", Datacenter: "dc-0"}
	var prev *Response
	for i := 0; i < 12 && !differed; i++ {
		r, err := e.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && (r.Bucket != prev.Bucket || !reflect.DeepEqual(r.Page, prev.Page)) {
			differed = true
		}
		prev = r
	}
	if !differed {
		t.Fatal("12 successive untraced requests drew identical noise")
	}
}
