package engine

import (
	"testing"

	"geoserp/internal/geo"
)

func TestDiagPageComposition(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	e := newTestEngine()
	pt := geo.Point{Lat: 41.4993, Lon: -81.6944}
	for _, term := range []string{"School", "Airport", "Coffee"} {
		r, _ := e.Search(Request{Query: term, GPS: &pt, ClientIP: "10.9.0.1"})
		t.Logf("=== %s (links=%d)", term, r.Page.LinkCount())
		for _, c := range r.Page.Cards {
			for _, res := range c.Results {
				t.Logf("  [%s] %s", c.Type, res.URL)
			}
		}
	}
}
