package engine

import (
	"errors"
	"testing"
	"time"

	"geoserp/internal/simclock"
	"geoserp/internal/telemetry"
)

func TestSearchAbandonsPastDeadline(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := simclock.NewManual(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
	e := NewCustom(DefaultConfig(), clk, WithTelemetry(reg))

	req := Request{Query: "Coffee", ClientIP: "1.2.3.4", Deadline: clk.Now().Add(-time.Millisecond)}
	if _, err := e.Search(req); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	abandoned := reg.Counter("engine_deadline_abandoned_total", "")
	if got := abandoned.Value(); got != 1 {
		t.Fatalf("engine_deadline_abandoned_total = %d, want 1", got)
	}

	// A deadline still in the future is honoured without abandoning.
	req.Deadline = clk.Now().Add(time.Hour)
	if _, err := e.Search(req); err != nil {
		t.Fatalf("future-deadline search failed: %v", err)
	}
	// And the zero value means no deadline at all.
	req.Deadline = time.Time{}
	if _, err := e.Search(req); err != nil {
		t.Fatalf("deadline-free search failed: %v", err)
	}
	if got := abandoned.Value(); got != 1 {
		t.Fatalf("engine_deadline_abandoned_total = %d after live requests, want still 1", got)
	}
}
