package engine

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"geoserp/internal/geo"
	"geoserp/internal/serp"
)

// Property tests: structural invariants of served pages that must hold for
// ANY coordinate and any study query, under the full noisy configuration.

func TestPagePropertiesOverRandomCoordinates(t *testing.T) {
	e := newTestEngine()
	terms := []string{"School", "Coffee", "Airport", "Starbucks",
		"Gay Marriage", "Barack Obama", "Tim Ryan", "Health"}
	i := 0
	f := func(latSeed, lonSeed float64, termSeed uint8) bool {
		if math.IsNaN(latSeed) || math.IsInf(latSeed, 0) ||
			math.IsNaN(lonSeed) || math.IsInf(lonSeed, 0) {
			return true
		}
		// Continental-US-ish coordinates.
		pt := geo.Point{
			Lat: 25 + math.Mod(math.Abs(latSeed), 24),
			Lon: -70 - math.Mod(math.Abs(lonSeed), 50),
		}
		term := terms[int(termSeed)%len(terms)]
		i++
		r, err := e.Search(Request{Query: term, GPS: &pt, ClientIP: fmt.Sprintf("10.3.%d.1", i%250)})
		if err != nil {
			t.Logf("search error: %v", err)
			return false
		}
		p := r.Page
		// Invariant 1: structurally valid.
		if err := p.Validate(); err != nil {
			t.Logf("invalid page: %v", err)
			return false
		}
		// Invariant 2: the paper's observed link range.
		if n := p.LinkCount(); n < 8 || n > 22 {
			t.Logf("link count %d for %q at %v", n, term, pt)
			return false
		}
		// Invariant 3: at most one maps card and one news card.
		if p.CardCount(serp.Maps) > 1 || p.CardCount(serp.News) > 1 {
			t.Logf("duplicate meta-cards for %q", term)
			return false
		}
		// Invariant 4: no duplicate organic URLs.
		seen := map[string]bool{}
		for _, c := range p.Cards {
			if c.Type != serp.Organic {
				continue
			}
			u := c.Results[0].URL
			if seen[u] {
				t.Logf("duplicate organic URL %s for %q", u, term)
				return false
			}
			seen[u] = true
		}
		// Invariant 5: the page echoes the personalization coordinate.
		if p.Location != pt.String() {
			t.Logf("location echo mismatch: %q vs %q", p.Location, pt.String())
			return false
		}
		// Invariant 6: HTML round-trips losslessly.
		back, err := serp.ParseHTML(serp.RenderHTML(p))
		if err != nil {
			t.Logf("render/parse: %v", err)
			return false
		}
		if len(back.Cards) != len(p.Cards) || back.LinkCount() != p.LinkCount() {
			t.Logf("HTML round-trip changed structure for %q", term)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCardPolicyInvariants(t *testing.T) {
	e := newTestEngine()
	pt := geo.Point{Lat: 41.4993, Lon: -81.6944}
	// Across many requests: brands never get maps; local never gets news;
	// controversial never gets maps.
	for trial := 0; trial < 30; trial++ {
		r, err := e.Search(Request{Query: "Starbucks", GPS: &pt, ClientIP: "10.4.0.1"})
		if err != nil {
			t.Fatal(err)
		}
		if r.Page.CardCount(serp.Maps) != 0 {
			t.Fatal("brand query received a maps card")
		}
		r, err = e.Search(Request{Query: "School", GPS: &pt, ClientIP: "10.4.0.1"})
		if err != nil {
			t.Fatal(err)
		}
		if r.Page.CardCount(serp.News) != 0 {
			t.Fatal("local query received a news card")
		}
		r, err = e.Search(Request{Query: "Abortion", GPS: &pt, ClientIP: "10.4.0.1"})
		if err != nil {
			t.Fatal(err)
		}
		if r.Page.CardCount(serp.Maps) != 0 {
			t.Fatal("controversial query received a maps card")
		}
	}
}

func TestEveryStudyQueryServes(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus sweep is slow")
	}
	e := newTestEngine()
	pt := geo.Point{Lat: 41.4993, Lon: -81.6944}
	for _, q := range e.corpus.All() {
		r, err := e.Search(Request{Query: q.Term, GPS: &pt, ClientIP: "10.4.0.2"})
		if err != nil {
			t.Fatalf("%q: %v", q.Term, err)
		}
		if err := r.Page.Validate(); err != nil {
			t.Fatalf("%q: %v", q.Term, err)
		}
		if n := r.Page.LinkCount(); n < 8 {
			t.Fatalf("%q: only %d links", q.Term, n)
		}
	}
}
